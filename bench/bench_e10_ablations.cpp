// Experiment E10 — design ablations:
//  (a) seed-selection strategy: exhaustive vs bitwise conditional
//      expectations (result quality identical in guarantee; work differs);
//  (b) chunk-assignment discipline: proper G^{4τ} coloring vs
//      per-node-unique chunks vs deliberately shared chunks (the failure
//      mode Lemma 10's power coloring exists to prevent);
//  (c) Theorem-12 recursion depth (middle_passes) vs how much the greedy
//      tail has to absorb.

#include <cstdint>
#include <iostream>

#include "pdc/d1lc/solver.hpp"
#include "pdc/derand/lemma10.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/procedures.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/prg/kwise_source.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/table.hpp"
#include "pdc/util/timer.hpp"

using namespace pdc;
using derand::SeedStrategy;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  Graph g = gen::gnp(2500, 0.012, 19);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 50, 12, 3);
  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc proc(
      cfg, hknt::TryRandomColorProc::Ssp::kSlackTwiceDegree, "e10");

  Table ta("E10a: exhaustive vs conditional-expectations seed search",
           {"strategy", "seed_bits", "evals", "sweeps", "legacy_sweeps",
            "failures", "mean", "wall_ms"});
  std::string regression;
  for (int d : {6, 8, 10}) {
    for (SeedStrategy s :
         {SeedStrategy::kExhaustive, SeedStrategy::kConditionalExpectation}) {
      derand::ColoringState state(inst.graph, inst.palettes);
      derand::Lemma10Options opt;
      opt.strategy = s;
      opt.seed_bits = d;
      Timer timer;
      auto rep = derand::derandomize_procedure(proc, state, opt, nullptr);
      // The pre-engine scalar route paid one full-graph aggregation
      // sweep per cost evaluation: 2^d for exhaustive, 2^{d+1}-2 (+1
      // final) for the enumerated conditional expectations.
      const std::uint64_t legacy_sweeps =
          s == SeedStrategy::kExhaustive ? (1ULL << d)
                                         : (1ULL << (d + 1)) - 1;
      ta.row({s == SeedStrategy::kExhaustive ? "exhaustive" : "cond-exp",
              std::to_string(d), std::to_string(rep.seed_evaluations),
              std::to_string(rep.search.sweeps),
              std::to_string(legacy_sweeps),
              std::to_string(rep.ssp_failures), Table::num(rep.mean_failures, 2),
              Table::num(timer.millis(), 1)});
      // Reported after the table prints so a CI failure still shows
      // the full accounting (same discipline as bench_e1 / bench_e4).
      if (regression.empty() && rep.search.sweeps >= legacy_sweeps) {
        regression = "REGRESSION: engine sweeps (" +
                     std::to_string(rep.search.sweeps) +
                     ") not below the pre-engine baseline (" +
                     std::to_string(legacy_sweeps) + ")";
      }
      if (regression.empty() &&
          static_cast<double>(rep.ssp_failures) > rep.mean_failures) {
        regression = "REGRESSION: chosen seed's failures (" +
                     std::to_string(rep.ssp_failures) +
                     ") exceed the seed-space mean (" +
                     std::to_string(rep.mean_failures) + ")";
      }
    }
  }
  ta.print();
  if (!regression.empty()) {
    std::cout << regression << "\n";
    return 1;
  }

  Table tb("E10b: chunk-assignment discipline (TryRandomColor progress)",
           {"chunk_mode", "chunks", "colored", "ssp_failures"});
  struct ChunkCase {
    const char* name;
    bool force_unique;
    std::uint32_t shared;
  };
  for (auto c : {ChunkCase{"power-coloring(G^4)", false, 0},
                 ChunkCase{"unique-per-node", true, 0},
                 ChunkCase{"shared-16(violates)", false, 16},
                 ChunkCase{"shared-2(violates)", false, 2}}) {
    derand::ColoringState state(inst.graph, inst.palettes);
    derand::Lemma10Options opt;
    opt.strategy = SeedStrategy::kExhaustive;
    opt.seed_bits = 6;
    opt.force_unique_chunks = c.force_unique;
    opt.shared_chunk_count = c.shared;
    auto rep = derand::derandomize_procedure(proc, state, opt, nullptr);
    std::uint64_t colored =
        state.num_nodes() - state.count_uncolored();
    tb.row({c.name, std::to_string(rep.chunks), std::to_string(colored),
            std::to_string(rep.ssp_failures)});
  }
  tb.print();

  Table tc("E10c: Theorem-12 recursion depth vs greedy-tail size",
           {"middle_passes", "colored_middle", "colored_low_degree",
            "rounds", "valid"});
  Graph g2 = gen::core_periphery(1500, 80, 0.012, 0.3, 23);
  D1lcInstance inst2 = make_degree_plus_one(g2);
  for (int passes : {0, 1, 2, 3}) {
    d1lc::SolverOptions opt;
    opt.middle_passes = passes;
    opt.l10.seed_bits = 5;
    auto r = solve_d1lc(inst2, opt);
    tc.row({std::to_string(passes), std::to_string(r.colored_middle),
            std::to_string(r.colored_low_degree),
            std::to_string(r.ledger.rounds()), r.valid ? "yes" : "NO"});
  }
  tc.print();

  // (d) Bounded independence vs full randomness — the Related-Work
  // contrast motivating PRGs: hash families cap the independence, and
  // coloring-trial success should track the cap only mildly on sparse
  // instances but matter where analyses need Δ-wise independence.
  Table td("E10d: k-wise independence vs full randomness (TryRandomColor)",
           {"source", "committed", "ssp_failures"});
  {
    hknt::TryRandomColorProc p2(
        cfg, hknt::TryRandomColorProc::Ssp::kSlackTwiceDegree, "e10d");
    auto run_with = [&](const prg::BitSourceFactory& src, const char* name) {
      derand::ColoringState state(inst.graph, inst.palettes);
      auto run = p2.simulate(state, src);
      std::uint64_t committed = 0, failures = 0;
      for (NodeId v = 0; v < state.num_nodes(); ++v) {
        committed += (run.proposed[v] != kNoColor);
        failures += !p2.ssp(state, run, v);
      }
      td.row({name, std::to_string(committed), std::to_string(failures)});
    };
    for (int k : {1, 2, 4, 16}) {
      prg::KWiseSource src(k, 77);
      run_with(src, ("k-wise(k=" + std::to_string(k) + ")").c_str());
    }
    prg::TrueRandomSource full(77);
    run_with(full, "full-independence");
  }
  td.print();

  std::cout << "Claim check: (a) both searches satisfy failures <= mean;\n"
               "the engine's node-major batched sweeps aggregate a whole\n"
               "seed block per pass, so sweeps << evals (the pre-engine\n"
               "scalar route paid one sweep per evaluation, ~2x of them\n"
               "for enumerated conditional expectations);\n"
               "(b) shared chunks crater progress — nearby nodes draw\n"
               "identical bits and collide (why Lemma 10 colors G^{4τ});\n"
               "(c) more passes shift work from the low-degree finisher to\n"
               "the ColorMiddle machinery.\n";
  return 0;
}
