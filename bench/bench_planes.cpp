// bench_planes — per-plane throughput of the batched member evaluators
// (AnalyticOracle::eval_members / PessimisticEstimator::term_batch,
// structure-of-arrays + SIMD lanes) against the scalar eval_analytic
// path, for every formula-plane oracle: the Lemma-23 h1/h2 partition
// objectives, the low-degree trial objective, and a Lemma-10
// pessimistic estimator.
//
// Doubles as the CI throughput gate: exits non-zero if the batched
// path is not strictly faster than the scalar path on ANY plane (the
// SIMD pass must never regress a plane), and prints the best speedup
// (the issue's 2-4x target is expected from the h1/h2 param-table
// amortization alone). Also gates the hard exactness contract at the
// engine level: Selections with SearchOptions::use_batched_members on
// vs off must be bit-identical on the shared-memory AND sharded
// backends at machine counts {1, 4, 9}.
//
// Also the pdc::obs disabled-overhead gate: re-times each plane's
// batched pass with one disabled PDC_SPAN per item visit and exits
// non-zero if that costs more than 2% over the plain pass — the
// "observability is free when off" guarantee the instrumented hot
// loops rely on.
//
// --json <path> writes one {plane, mode, terms_per_sec, wall_ms}
// record per measurement (mode scalar|batched) plus one
// {plane, mode: "obs-overhead", plain_ms, spanned_ms, overhead}
// record per plane.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <numeric>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "pdc/d1lc/partition.hpp"
#include "pdc/d1lc/partition_oracles.hpp"
#include "pdc/d1lc/trial_oracle.hpp"
#include "pdc/derand/estimator.hpp"
#include "pdc/derand/lemma10.hpp"
#include "pdc/engine/sharded/sharded_search.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/params.hpp"
#include "pdc/hknt/procedures.hpp"
#include "pdc/mpc/cluster.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/util/bench_json.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/table.hpp"
#include "pdc/util/timer.hpp"

using namespace pdc;

namespace {

struct PlaneTiming {
  std::string plane;
  double scalar_ms = 0.0;
  double batched_ms = 0.0;
  std::uint64_t terms = 0;  // (item, member) evaluations per timed run
  double plain_ms = 0.0;    // obs gate: pass without spans
  double spanned_ms = 0.0;  // obs gate: same pass, disabled PDC_SPAN/item

  double scalar_tps() const { return 1e3 * double(terms) / scalar_ms; }
  double batched_tps() const { return 1e3 * double(terms) / batched_ms; }
  double speedup() const { return scalar_ms / batched_ms; }
  double span_overhead() const {
    return plain_ms > 0.0 ? spanned_ms / plain_ms : 1.0;
  }
};

/// Times one full (items x members) pass over `oracle`, repeated until
/// the clock has something to measure; best-of-reps to shed timer and
/// allocator noise. `batched` selects eval_members vs eval_analytic —
/// the sink totals of the two paths are compared bit for bit, the
/// oracle-level statement of the exactness contract.
double time_plane(const engine::AnalyticOracle& oracle, std::uint64_t members,
                  bool batched, std::vector<double>& totals) {
  const std::size_t items = oracle.item_count();
  std::vector<double> sink(members, 0.0);
  totals.assign(members, 0.0);
  for (std::size_t i = 0; i < items; ++i) {
    // One warm, counted pass also produces the totals for the
    // exactness check.
    std::fill(sink.begin(), sink.end(), 0.0);
    if (batched) {
      oracle.eval_members(0, members, i, sink.data());
    } else {
      oracle.eval_analytic(0, members, i, sink.data());
    }
    for (std::uint64_t j = 0; j < members; ++j) totals[j] += sink[j];
  }
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t;
    for (std::size_t i = 0; i < items; ++i) {
      std::fill(sink.begin(), sink.end(), 0.0);
      if (batched) {
        oracle.eval_members(0, members, i, sink.data());
      } else {
        oracle.eval_analytic(0, members, i, sink.data());
      }
    }
    best = std::min(best, t.millis());
  }
  return best;
}

/// The obs disabled-overhead leg: the identical batched pass with one
/// disabled PDC_SPAN per item visit. A 2% gate on a shared CI box
/// cannot compare whole-pass timings (machine-wide noise is +-10% at
/// that granularity), so the two variants interleave at *item*
/// granularity and each item keeps its best-of-7 time per variant —
/// scheduler preemption lands in single ~100us slices and the min
/// discards them, while any genuine per-visit span cost survives in
/// every sample. Variant order alternates per rep so cache warmth
/// favors neither side. The span's whole disabled lifecycle is one
/// relaxed atomic load and a branch.
std::pair<double, double> time_disabled_overhead(
    const engine::AnalyticOracle& oracle, std::uint64_t members,
    double pass_ms_hint) {
  using clock = std::chrono::steady_clock;
  const std::size_t items = oracle.item_count();
  std::vector<double> sink(members, 0.0);
  // Keep each timed slice >= ~20us: fast planes (the estimator's
  // tables answer an item visit in single-digit us) repeat the visit
  // inside the slice so clock quantization cannot masquerade as span
  // overhead.
  int inner = 1;
  const double per_item_ms =
      items > 0 ? pass_ms_hint / static_cast<double>(items) : 1.0;
  if (per_item_ms > 0.0 && per_item_ms < 0.02) {
    inner = std::min(32, static_cast<int>(0.02 / per_item_ms) + 1);
  }
  constexpr std::uint64_t kInf = ~0ULL;
  std::vector<std::uint64_t> best_plain(items, kInf), best_spanned(items, kInf);
  const auto eval_plain = [&](std::size_t i) {
    const auto t0 = clock::now();
    for (int k = 0; k < inner; ++k) {
      std::fill(sink.begin(), sink.end(), 0.0);
      oracle.eval_members(0, members, i, sink.data());
    }
    const auto t1 = clock::now();
    best_plain[i] = std::min(
        best_plain[i],
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
  };
  const auto eval_spanned = [&](std::size_t i) {
    const auto t0 = clock::now();
    for (int k = 0; k < inner; ++k) {
      PDC_SPAN("bench.item_pass");
      std::fill(sink.begin(), sink.end(), 0.0);
      oracle.eval_members(0, members, i, sink.data());
    }
    const auto t1 = clock::now();
    best_spanned[i] = std::min(
        best_spanned[i],
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
  };
  for (int rep = 0; rep < 7; ++rep) {
    for (std::size_t i = 0; i < items; ++i) {
      if (rep % 2 == 0) {
        eval_plain(i);
        eval_spanned(i);
      } else {
        eval_spanned(i);
        eval_plain(i);
      }
    }
  }
  double plain_ns = 0.0, spanned_ns = 0.0;
  for (std::size_t i = 0; i < items; ++i) {
    plain_ns += static_cast<double>(best_plain[i]);
    spanned_ns += static_cast<double>(best_spanned[i]);
  }
  return {plain_ns / (1e6 * inner), spanned_ns / (1e6 * inner)};
}

PlaneTiming measure(const std::string& plane, engine::AnalyticOracle& oracle,
                    std::uint64_t members, std::string& regression) {
  oracle.begin_search(members);
  PlaneTiming out;
  out.plane = plane;
  out.terms = static_cast<std::uint64_t>(oracle.item_count()) * members;
  std::vector<double> scalar_totals, batched_totals;
  out.scalar_ms = time_plane(oracle, members, /*batched=*/false,
                             scalar_totals);
  out.batched_ms = time_plane(oracle, members, /*batched=*/true,
                              batched_totals);
  std::tie(out.plain_ms, out.spanned_ms) =
      time_disabled_overhead(oracle, members, out.batched_ms);
  oracle.end_search();
  if (regression.empty() && scalar_totals != batched_totals) {
    regression = "REGRESSION: " + plane +
                 ": eval_members totals differ from eval_analytic "
                 "(exactness contract broken)";
  }
  return out;
}

void expect_same(const engine::Selection& a, const engine::Selection& b,
                 const std::string& where, std::string& regression) {
  if (!regression.empty()) return;
  if (a.seed != b.seed || a.cost != b.cost || a.mean_cost != b.mean_cost) {
    regression = "REGRESSION: " + where +
                 ": batched and scalar Selections differ (seed " +
                 std::to_string(a.seed) + " vs " + std::to_string(b.seed) +
                 ")";
  }
}

mpc::Config cluster_config(std::uint32_t machines, std::uint64_t n) {
  mpc::Config c;
  c.n = n;
  c.phi = 0.5;
  c.local_space_words = 1 << 16;
  c.num_machines = machines;
  return c;
}

/// Engine-level bit-identity: the same oracle searched with the
/// batched member path on and off, shared-memory and sharded at
/// p in {1, 4, 9}, must select identically.
void gate_selections(engine::CostOracle& oracle, std::uint64_t members,
                     NodeId n, const std::string& plane,
                     std::string& regression) {
  engine::SearchOptions batched_on;  // default: use_batched_members = true
  engine::SearchOptions batched_off;
  batched_off.use_batched_members = false;
  engine::Selection on =
      engine::SeedSearch(oracle, batched_on).exhaustive(members);
  engine::Selection off =
      engine::SeedSearch(oracle, batched_off).exhaustive(members);
  expect_same(on, off, plane + " shared-memory", regression);

  for (std::uint32_t p : {1u, 4u, 9u}) {
    mpc::Cluster cluster(cluster_config(p, n), /*strict=*/true);
    engine::sharded::ShardedOptions sopt_on, sopt_off;
    sopt_off.search.use_batched_members = false;
    engine::sharded::ShardedSeedSearch s_on(oracle, cluster, sopt_on);
    engine::Selection sh_on = s_on.exhaustive(members);
    engine::sharded::ShardedSeedSearch s_off(oracle, cluster, sopt_off);
    engine::Selection sh_off = s_off.exhaustive(members);
    expect_same(sh_on, sh_off,
                plane + " sharded p=" + std::to_string(p), regression);
    expect_same(sh_on, on, plane + " sharded-vs-shared p=" + std::to_string(p),
                regression);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  const int mbits = static_cast<int>(args.get_int("member-bits", 10));
  const std::uint64_t members = 1ULL << mbits;  // 1024 by default
  std::string regression;
  std::vector<PlaneTiming> timings;

  // ---- h1 / h2: the Lemma-23 partition objectives. ----
  const NodeId n = static_cast<NodeId>(args.get_int("n", 2000));
  Graph g = gen::gnp(n, 48.0 / static_cast<double>(n), 11);
  D1lcInstance inst = make_degree_plus_one(g);
  const std::uint32_t nbins = 6, color_bins = 5, cap = 16;
  std::vector<NodeId> high;
  for (NodeId v = 0; v < n; ++v)
    if (g.degree(v) > cap) high.push_back(v);
  EnumerablePairwiseFamily f1(101, mbits), f2(102, mbits);
  std::vector<std::uint32_t> bin_of(n, d1lc::Partition::kMid);
  for (NodeId v : high)
    bin_of[v] = static_cast<std::uint32_t>(f1.eval(3, v, nbins));

  d1lc::H1DegreeOracle h1(g, high, f1, nbins, cap);
  timings.push_back(measure("h1", h1, members, regression));
  gate_selections(h1, members, n, "h1", regression);

  d1lc::H2PaletteOracle h2(g, inst, high, bin_of, f2, nbins, color_bins);
  timings.push_back(measure("h2", h2, members, regression));
  gate_selections(h2, members, n, "h2", regression);

  // ---- trial: the low-degree hash-trial objective. ----
  Graph gt = gen::gnp(800, 0.02, 31);
  D1lcInstance inst_t = make_degree_plus_one(gt);
  EnumerablePairwiseFamily ft(55, mbits);
  Coloring none(gt.num_nodes(), kNoColor);
  std::vector<NodeId> items(gt.num_nodes());
  std::iota(items.begin(), items.end(), NodeId{0});
  std::vector<std::uint8_t> active(gt.num_nodes(), 1);
  d1lc::AvailLists avail = d1lc::AvailLists::from_instance(inst_t, none);
  d1lc::TrialOracle trial(gt, items, active, avail, ft);
  timings.push_back(measure("trial", trial, members, regression));
  gate_selections(trial, members, gt.num_nodes(), "trial", regression);

  // ---- estimator: a Lemma-10 pessimistic estimator (TryRandomColor). --
  Graph ge = gen::gnp(500, 0.02, 13);
  D1lcInstance inst_e = make_random_lists(
      ge, static_cast<Color>(ge.max_degree()) + 25, 12, 5);
  derand::ColoringState state(inst_e.graph, inst_e.palettes);
  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc try_proc(
      cfg, hknt::TryRandomColorProc::Ssp::kSlackTwiceDegree, "bench");
  std::unique_ptr<derand::PessimisticEstimator> est = try_proc.estimator();
  derand::Lemma10Options l10;
  l10.seed_bits = mbits;
  derand::ChunkAssignment chunks = derand::assign_chunks(ge, 1, l10, nullptr);
  prg::PrgFamily family = derand::lemma10_family(l10);
  derand::SspEstimatorOracle est_oracle(*est, state, family,
                                        chunks.chunk_of);
  timings.push_back(
      measure("estimator", est_oracle, family.num_seeds(), regression));
  gate_selections(est_oracle, family.num_seeds(), ge.num_nodes(),
                  "estimator", regression);

  // ---- Report + throughput gate. ----
  Table t("bench_planes: scalar vs batched member evaluation "
          "(" + std::to_string(members) + " members)",
          {"plane", "items", "terms", "scalar_ms", "batched_ms",
           "scalar_terms/s", "batched_terms/s", "speedup"});
  util::BenchJson json;
  double best_speedup = 0.0;
  for (const PlaneTiming& pt : timings) {
    t.row({pt.plane, std::to_string(pt.terms / members),
           std::to_string(pt.terms), Table::num(pt.scalar_ms, 2),
           Table::num(pt.batched_ms, 2), Table::num(pt.scalar_tps(), 0),
           Table::num(pt.batched_tps(), 0), Table::num(pt.speedup(), 2)});
    json.obj()
        .field("plane", pt.plane)
        .field("mode", "scalar")
        .field("terms_per_sec", pt.scalar_tps())
        .field("wall_ms", pt.scalar_ms);
    json.obj()
        .field("plane", pt.plane)
        .field("mode", "batched")
        .field("terms_per_sec", pt.batched_tps())
        .field("wall_ms", pt.batched_ms);
    best_speedup = std::max(best_speedup, pt.speedup());
    if (regression.empty() && !(pt.batched_tps() > pt.scalar_tps())) {
      regression = "REGRESSION: plane " + pt.plane +
                   ": batched terms/sec (" +
                   Table::num(pt.batched_tps(), 0) +
                   ") not strictly above scalar (" +
                   Table::num(pt.scalar_tps(), 0) + ")";
    }
  }
  t.print();
  std::cout << "best speedup: " << Table::num(best_speedup, 2) << "x\n";

  // ---- pdc::obs disabled-overhead gate. ----
  // Collection is off unless --trace/--metrics was passed; only gate in
  // the off state, where the Span lifecycle must be one relaxed load.
  Table ot("bench_planes: disabled-span overhead per plane "
           "(gate: spanned <= 1.02 x plain)",
           {"plane", "plain_ms", "spanned_ms", "overhead"});
  const bool obs_off = !obs::collection_active();
  for (const PlaneTiming& pt : timings) {
    ot.row({pt.plane, Table::num(pt.plain_ms, 3),
            Table::num(pt.spanned_ms, 3),
            Table::num(pt.span_overhead(), 4) + "x"});
    json.obj()
        .field("plane", pt.plane)
        .field("mode", "obs-overhead")
        .field("plain_ms", pt.plain_ms)
        .field("spanned_ms", pt.spanned_ms)
        .field("overhead", pt.span_overhead());
    if (obs_off && regression.empty() &&
        pt.spanned_ms > 1.02 * pt.plain_ms) {
      regression = "REGRESSION: plane " + pt.plane +
                   ": disabled-span overhead " +
                   Table::num(pt.span_overhead(), 4) +
                   "x exceeds the 1.02x gate (plain " +
                   Table::num(pt.plain_ms, 3) + " ms, spanned " +
                   Table::num(pt.spanned_ms, 3) + " ms)";
    }
  }
  ot.print();

  if (args.has("json")) json.write(args.get("json", ""));

  if (!regression.empty()) {
    std::cout << regression << "\n";
    return 1;
  }
  std::cout << "Gate: batched > scalar on every plane; batched/scalar\n"
               "Selections bit-identical on both backends at p in\n"
               "{1, 4, 9}; disabled pdc::obs spans cost <= 2% on every\n"
               "plane's batched pass.\n";
  return 0;
}
