// Experiment E3 — Lemma 10: derandomizing one normal procedure defers
// few nodes, and seed selection never does worse than the seed-space
// mean.
//
// One TryRandomColor procedure (SSP: colored or slack >= 2*degree) on a
// slack-rich instance; strategies compared: true randomness, fixed seed
// (no search), exhaustive argmin, bitwise conditional expectations, the
// MSB-first prefix walk. Also sweeps the PRG seed length d.
//
// E3e compares the enumerating (simulate-per-seed) searches against
// the pessimistic-estimator plane (EstimatorMode::kPrefer): same
// strategies, zero search-phase simulations — the only simulate() left
// is the commit replay. CI gate (exit 1):
//   * estimator searches must pay zero enumeration sweeps (each sweep
//     is a block of full-procedure simulations, so zero sweeps <=>
//     simulation sweeps == commit replays) and be attributed to the
//     analytic/prefix planes;
//   * the selected seed's measured failures must not exceed the
//     reported estimator mean;
//   * the estimator searches' total wall time must beat the
//     enumerating baseline's.

// --json <path> writes the per-row experiment records (strategy,
// failures, means, wall times) as a JSON array for CI/plotting.

#include <iostream>

#include "pdc/derand/lemma10.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/procedures.hpp"
#include "pdc/util/bench_json.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/table.hpp"

using namespace pdc;
using derand::EstimatorMode;
using derand::SeedStrategy;

namespace {

const char* strategy_name(SeedStrategy s) {
  switch (s) {
    case SeedStrategy::kTrueRandom: return "true-random";
    case SeedStrategy::kFirstSeed: return "fixed-seed";
    case SeedStrategy::kExhaustive: return "exhaustive";
    case SeedStrategy::kConditionalExpectation: return "cond-exp";
    case SeedStrategy::kPrefixWalk: return "prefix-walk";
  }
  return "?";
}

const char* plane_name(engine::PlaneTag t) {
  switch (t) {
    case engine::PlaneTag::kNone: return "-";
    case engine::PlaneTag::kEnumerating: return "enum";
    case engine::PlaneTag::kAnalytic: return "analytic";
    case engine::PlaneTag::kPrefix: return "prefix";
    case engine::PlaneTag::kMixed: return "mixed";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  util::BenchJson json;
  Graph g = gen::gnp(3000, 0.01, 7);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 60, 15, 3);
  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc proc(
      cfg, hknt::TryRandomColorProc::Ssp::kSlackTwiceDegree, "e3");

  int failures = 0;
  const SeedStrategy search_strategies[] = {
      SeedStrategy::kExhaustive, SeedStrategy::kConditionalExpectation,
      SeedStrategy::kPrefixWalk};

  Table t("E3 / Lemma 10: defer fraction by seed strategy (d = 8 bits)",
          {"strategy", "participants", "ssp_failures", "defer_frac",
           "mean_failures", "seed_evals", "lemma10_bound", "wsp_viol"});
  double enum_wall_ms = 0.0;
  for (SeedStrategy s :
       {SeedStrategy::kTrueRandom, SeedStrategy::kFirstSeed,
        SeedStrategy::kExhaustive, SeedStrategy::kConditionalExpectation,
        SeedStrategy::kPrefixWalk}) {
    derand::ColoringState state(inst.graph, inst.palettes);
    derand::Lemma10Options opt;
    opt.strategy = s;
    opt.seed_bits = 8;
    auto rep = derand::derandomize_procedure(proc, state, opt, nullptr);
    if (s == SeedStrategy::kExhaustive ||
        s == SeedStrategy::kConditionalExpectation)
      enum_wall_ms += rep.search.wall_ms;
    t.row({strategy_name(s), std::to_string(rep.participants),
           std::to_string(rep.ssp_failures), Table::num(rep.defer_fraction, 4),
           Table::num(rep.mean_failures, 2),
           std::to_string(rep.seed_evaluations),
           Table::num(rep.lemma10_bound, 2),
           std::to_string(rep.wsp_violations)});
    json.obj()
        .field("table", "e3_defer_by_strategy")
        .field("strategy", strategy_name(s))
        .field("ssp_failures", static_cast<std::uint64_t>(rep.ssp_failures))
        .field("defer_frac", rep.defer_fraction)
        .field("mean_failures", rep.mean_failures)
        .field("wall_ms", rep.search.wall_ms);
  }
  t.print();

  Table t2("E3b: seed length d vs chosen-seed failures (exhaustive)",
           {"seed_bits", "ssp_failures", "mean_failures", "defer_frac"});
  for (int d : {2, 4, 6, 8, 10}) {
    derand::ColoringState state(inst.graph, inst.palettes);
    derand::Lemma10Options opt;
    opt.strategy = SeedStrategy::kExhaustive;
    opt.seed_bits = d;
    auto rep = derand::derandomize_procedure(proc, state, opt, nullptr);
    t2.row({std::to_string(d), std::to_string(rep.ssp_failures),
            Table::num(rep.mean_failures, 2),
            Table::num(rep.defer_fraction, 4)});
    json.obj()
        .field("table", "e3b_seed_length")
        .field("seed_bits", static_cast<std::int64_t>(d))
        .field("ssp_failures", static_cast<std::uint64_t>(rep.ssp_failures))
        .field("defer_frac", rep.defer_fraction);
  }
  t2.print();

  // ---- E3e: the pessimistic-estimator plane (zero search-phase
  // simulations; the guarantee binds the estimator mean). ----
  Table t3("E3e: estimator plane vs enumerating baseline (d = 8 bits)",
           {"strategy", "ssp_failures", "est_mean", "defer_frac", "sweeps",
            "plane", "an_searches", "px_walks", "wall_ms"});
  double est_wall_ms = 0.0;
  for (SeedStrategy s : search_strategies) {
    derand::ColoringState state(inst.graph, inst.palettes);
    derand::Lemma10Options opt;
    opt.strategy = s;
    opt.seed_bits = 8;
    opt.use_estimator = EstimatorMode::kRequire;
    auto rep = derand::derandomize_procedure(proc, state, opt, nullptr);
    if (s != SeedStrategy::kPrefixWalk) est_wall_ms += rep.search.wall_ms;
    t3.row({strategy_name(s), std::to_string(rep.ssp_failures),
            Table::num(rep.estimator_mean, 2),
            Table::num(rep.defer_fraction, 4),
            std::to_string(rep.search.sweeps), plane_name(rep.search.route),
            std::to_string(rep.search.analytic.searches),
            std::to_string(rep.search.prefix.walks),
            Table::num(rep.search.wall_ms, 2)});
    json.obj()
        .field("table", "e3e_estimator_plane")
        .field("strategy", strategy_name(s))
        .field("plane", plane_name(rep.search.route))
        .field("ssp_failures", static_cast<std::uint64_t>(rep.ssp_failures))
        .field("estimator_mean", rep.estimator_mean)
        .field("sweeps", static_cast<std::uint64_t>(rep.search.sweeps))
        .field("wall_ms", rep.search.wall_ms);

    if (!rep.estimator_used || rep.search.sweeps != 0) {
      std::cout << "REGRESSION: estimator-mode " << strategy_name(s)
                << " paid " << rep.search.sweeps
                << " enumeration sweeps (search-phase simulations); "
                   "expected zero — only the commit replay simulates\n";
      failures = 1;
    }
    const bool analytic_plane = rep.search.route ==
                                    engine::PlaneTag::kAnalytic &&
                                rep.search.analytic.searches >= 1;
    const bool prefix_plane =
        rep.search.route == engine::PlaneTag::kPrefix &&
        rep.search.prefix.walks >= 1;
    if (s == SeedStrategy::kPrefixWalk ? !prefix_plane : !analytic_plane) {
      std::cout << "REGRESSION: estimator-mode " << strategy_name(s)
                << " not attributed to the analytic/prefix planes\n";
      failures = 1;
    }
    if (static_cast<double>(rep.ssp_failures) > rep.estimator_mean + 1e-9) {
      std::cout << "REGRESSION: measured failures (" << rep.ssp_failures
                << ") exceed the estimator mean (" << rep.estimator_mean
                << ") for " << strategy_name(s) << "\n";
      failures = 1;
    }
  }
  t3.print();

  if (est_wall_ms >= enum_wall_ms) {
    std::cout << "REGRESSION: estimator searches (" << est_wall_ms
              << " ms) not faster than the enumerating baseline ("
              << enum_wall_ms << " ms)\n";
    failures = 1;
  }

  std::cout << "Claim check: search-strategy failures <= mean_failures\n"
               "(the conditional-expectations guarantee); defer fractions\n"
               "small and shrinking with larger seed spaces; wsp_viol = 0;\n"
               "estimator searches pay zero simulation sweeps (only the\n"
               "commit replay simulates), bind failures by the estimator\n"
               "mean, and beat the enumerating wall time ("
            << Table::num(est_wall_ms, 1) << " ms vs "
            << Table::num(enum_wall_ms, 1) << " ms).\n";
  if (args.has("json")) json.write(args.get("json", ""));
  return failures;
}
