// Experiment E3 — Lemma 10: derandomizing one normal procedure defers
// few nodes, and seed selection never does worse than the seed-space
// mean.
//
// One TryRandomColor procedure (SSP: colored or slack >= 2*degree) on a
// slack-rich instance; strategies compared: true randomness, fixed seed
// (no search), exhaustive argmin, bitwise conditional expectations.
// Also sweeps the PRG seed length d.

#include <iostream>

#include "pdc/derand/lemma10.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/procedures.hpp"
#include "pdc/util/table.hpp"

using namespace pdc;
using derand::SeedStrategy;

namespace {

const char* strategy_name(SeedStrategy s) {
  switch (s) {
    case SeedStrategy::kTrueRandom: return "true-random";
    case SeedStrategy::kFirstSeed: return "fixed-seed";
    case SeedStrategy::kExhaustive: return "exhaustive";
    case SeedStrategy::kConditionalExpectation: return "cond-exp";
  }
  return "?";
}

}  // namespace

int main() {
  Graph g = gen::gnp(3000, 0.01, 7);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 60, 15, 3);
  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc proc(
      cfg, hknt::TryRandomColorProc::Ssp::kSlackTwiceDegree, "e3");

  Table t("E3 / Lemma 10: defer fraction by seed strategy (d = 8 bits)",
          {"strategy", "participants", "ssp_failures", "defer_frac",
           "mean_failures", "seed_evals", "lemma10_bound", "wsp_viol"});
  for (SeedStrategy s :
       {SeedStrategy::kTrueRandom, SeedStrategy::kFirstSeed,
        SeedStrategy::kExhaustive, SeedStrategy::kConditionalExpectation}) {
    derand::ColoringState state(inst.graph, inst.palettes);
    derand::Lemma10Options opt;
    opt.strategy = s;
    opt.seed_bits = 8;
    auto rep = derand::derandomize_procedure(proc, state, opt, nullptr);
    t.row({strategy_name(s), std::to_string(rep.participants),
           std::to_string(rep.ssp_failures), Table::num(rep.defer_fraction, 4),
           Table::num(rep.mean_failures, 2),
           std::to_string(rep.seed_evaluations),
           Table::num(rep.lemma10_bound, 2),
           std::to_string(rep.wsp_violations)});
  }
  t.print();

  Table t2("E3b: seed length d vs chosen-seed failures (exhaustive)",
           {"seed_bits", "ssp_failures", "mean_failures", "defer_frac"});
  for (int d : {2, 4, 6, 8, 10}) {
    derand::ColoringState state(inst.graph, inst.palettes);
    derand::Lemma10Options opt;
    opt.strategy = SeedStrategy::kExhaustive;
    opt.seed_bits = d;
    auto rep = derand::derandomize_procedure(proc, state, opt, nullptr);
    t2.row({std::to_string(d), std::to_string(rep.ssp_failures),
            Table::num(rep.mean_failures, 2),
            Table::num(rep.defer_fraction, 4)});
  }
  t2.print();

  std::cout << "Claim check: exhaustive/cond-exp failures <= mean_failures\n"
               "(the conditional-expectations guarantee); defer fractions\n"
               "small and shrinking with larger seed spaces; wsp_viol = 0.\n";
  return 0;
}
