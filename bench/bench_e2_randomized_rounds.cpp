// Experiment E2 — Lemma 4: the randomized MPC D1LC implementation runs
// in O(log log log n) rounds w.h.p. for Delta <= sqrt(s).
//
// Sweeps n and random seeds; reports rounds, success of the pre-fallback
// pipeline (fraction colored by the ColorMiddle passes before the
// deterministic low-degree finish), and validity.

#include <iostream>

#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/stats.hpp"
#include "pdc/util/table.hpp"
#include "pdc/util/timer.hpp"

using namespace pdc;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  Table t("E2 / Lemma 4: randomized D1LC rounds vs n",
          {"n", "Delta", "rounds(mean)", "rounds(max)", "middle_frac",
           "ssp_fail_frac", "valid_runs", "wall_ms(mean)"});

  for (NodeId n : {500u, 1000u, 2000u, 4000u, 8000u}) {
    Summary rounds, wall, middle_frac, fail_frac;
    int valid = 0;
    const int kRuns = 5;
    for (int run = 0; run < kRuns; ++run) {
      Graph g = gen::gnp(n, 16.0 / static_cast<double>(n), 100 + run);
      D1lcInstance inst = make_degree_plus_one(g);
      d1lc::SolverOptions opt;
      opt.mode = d1lc::Mode::kRandomized;
      opt.seed = 1000 + run;
      opt.middle_passes = 2;
      Timer timer;
      d1lc::SolveResult r = solve_d1lc(inst, opt);
      wall.add(timer.millis());
      rounds.add(static_cast<double>(r.ledger.rounds()));
      middle_frac.add(static_cast<double>(r.colored_middle) /
                      static_cast<double>(n));
      std::uint64_t participants = 0, failures = 0;
      for (const auto& mr : r.middle_reports) {
        for (const auto& s : mr.steps) {
          participants += s.participants;
          failures += s.ssp_failures;
        }
      }
      fail_frac.add(participants ? static_cast<double>(failures) /
                                       static_cast<double>(participants)
                                 : 0.0);
      valid += r.valid;
    }
    t.row({std::to_string(n), "~16", Table::num(rounds.mean(), 1),
           Table::num(rounds.max(), 0), Table::num(middle_frac.mean(), 3),
           Table::num(fail_frac.mean(), 4),
           std::to_string(valid) + "/" + std::to_string(kRuns),
           Table::num(wall.mean(), 1)});
  }
  t.print();
  std::cout << "Claim check: rounds flat in n (log log log n shape), all\n"
               "runs valid, per-step SSP failure fraction small (the w.h.p.\n"
               "guarantee of the randomized subroutines).\n";
  return 0;
}
