// Sharded-backend CI smoke: one Lemma-10 seed search executed on a
// small mpc::Cluster (strict capacity checks on) must return the exact
// Selection the shared-memory engine returns, with the converge-cast
// word volume on budget — every non-root machine ships one block-wide
// partial per sweep, so words == (p - 1) * evaluations — and the
// cluster ledger advancing by exactly the rounds the search reports.
// Exits non-zero on any mismatch; CI runs it after the unit tests.

#include <cstdint>
#include <iostream>

#include "pdc/derand/lemma10.hpp"
#include "pdc/engine/sharded/sharded_search.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/procedures.hpp"
#include "pdc/mpc/cluster.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/table.hpp"

using namespace pdc;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  // Dense enough, with tight degree+1 palettes, that some seeds do
  // produce SSP failures — a flat objective would make the equality
  // check vacuous.
  Graph g = gen::gnp(400, 0.06, 77);
  D1lcInstance inst = make_degree_plus_one(g);
  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc proc(
      cfg, hknt::TryRandomColorProc::Ssp::kSlackTwiceDegree, "smoke");
  derand::ColoringState state(inst.graph, inst.palettes);

  derand::Lemma10Options opt;
  opt.strategy = derand::SeedStrategy::kConditionalExpectation;
  opt.seed_bits = 6;
  derand::ChunkAssignment chunks =
      derand::assign_chunks(g, proc.tau(), opt, nullptr);

  engine::Selection shared =
      derand::lemma10_seed_selection(proc, state, chunks, opt);

  const std::uint32_t p = 9;
  mpc::Config mcfg;
  mcfg.n = g.num_nodes();
  mcfg.phi = 0.5;
  mcfg.local_space_words = 256;  // tight: forces a small fan-in tree
  mcfg.num_machines = p;
  mpc::Cluster cluster(mcfg, /*strict=*/true);
  opt.search.backend = engine::SearchBackend::kSharded;
  opt.search.cluster = &cluster;
  engine::Selection dist =
      derand::lemma10_seed_selection(proc, state, chunks, opt);

  Table t("Sharded smoke: Lemma-10 search, shared vs sharded backend",
          {"backend", "seed", "cost", "mean", "evals", "sweeps", "rounds",
           "cc_words", "max_load"});
  t.row({"shared", std::to_string(shared.seed), Table::num(shared.cost, 1),
         Table::num(shared.mean_cost, 3),
         std::to_string(shared.stats.evaluations),
         std::to_string(shared.stats.sweeps), "-", "-", "-"});
  t.row({"sharded", std::to_string(dist.seed), Table::num(dist.cost, 1),
         Table::num(dist.mean_cost, 3),
         std::to_string(dist.stats.evaluations),
         std::to_string(dist.stats.sweeps),
         std::to_string(dist.stats.sharded.rounds),
         std::to_string(dist.stats.sharded.words),
         std::to_string(dist.stats.sharded.max_machine_load)});
  t.print();

  if (dist.seed != shared.seed || dist.cost != shared.cost ||
      dist.mean_cost != shared.mean_cost) {
    std::cout << "REGRESSION: sharded Selection differs from the "
                 "shared-memory engine's\n";
    return 1;
  }
  const std::uint64_t word_budget =
      static_cast<std::uint64_t>(p - 1) * dist.stats.evaluations;
  if (dist.stats.sharded.words > word_budget) {
    std::cout << "REGRESSION: converge-cast words ("
              << dist.stats.sharded.words << ") exceed the budget ("
              << word_budget << ")\n";
    return 1;
  }
  if (cluster.ledger().rounds() != dist.stats.sharded.rounds ||
      dist.stats.sharded.rounds == 0) {
    std::cout << "REGRESSION: ledger rounds (" << cluster.ledger().rounds()
              << ") disagree with the search's accounting ("
              << dist.stats.sharded.rounds << ")\n";
    return 1;
  }
  if (!cluster.ledger().violations().empty()) {
    std::cout << "REGRESSION: capacity violations recorded:\n";
    for (const auto& v : cluster.ledger().violations())
      std::cout << "  " << v << "\n";
    return 1;
  }
  std::cout << "Claim check: identical Selection, words on budget, ledger\n"
               "rounds == the search's converge-cast accounting — the\n"
               "Lemma-10 aggregation ran genuinely on the substrate.\n";
  return 0;
}
