// Experiment E11 — shared-memory thread scaling of the simulator (the
// repro target is a multicore laptop). Google-benchmark over thread
// counts for the hot kernels: a randomized ColorMiddle pass, the
// exhaustive seed search, and parameter computation.

#include <benchmark/benchmark.h>

#include "pdc/derand/lemma10.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/color_middle.hpp"
#include "pdc/util/parallel.hpp"

using namespace pdc;

namespace {

void BM_ColorMiddleRandomized(benchmark::State& state) {
  set_threads(static_cast<int>(state.range(0)));
  Graph g = gen::gnp(3000, 0.01, 7);
  D1lcInstance inst = make_degree_plus_one(g);
  for (auto _ : state) {
    derand::ColoringState cs(inst.graph, inst.palettes);
    hknt::MiddleOptions mo;
    mo.l10.strategy = derand::SeedStrategy::kTrueRandom;
    mo.l10.defer_failures = false;
    hknt::MiddleReport rep = hknt::color_middle(cs, inst, mo, nullptr);
    benchmark::DoNotOptimize(rep.colored);
  }
}
BENCHMARK(BM_ColorMiddleRandomized)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->
    UseRealTime()->Unit(benchmark::kMillisecond);

void BM_SeedSearchExhaustive(benchmark::State& state) {
  set_threads(static_cast<int>(state.range(0)));
  Graph g = gen::gnp(1500, 0.015, 9);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 40, 10, 3);
  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc proc(cfg, hknt::TryRandomColorProc::Ssp::kNone,
                                "bm");
  for (auto _ : state) {
    derand::ColoringState cs(inst.graph, inst.palettes);
    derand::Lemma10Options opt;
    opt.seed_bits = 7;
    auto rep = derand::derandomize_procedure(proc, cs, opt, nullptr);
    benchmark::DoNotOptimize(rep.seed);
  }
}
BENCHMARK(BM_SeedSearchExhaustive)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->
    UseRealTime()->Unit(benchmark::kMillisecond);

void BM_ComputeParams(benchmark::State& state) {
  set_threads(static_cast<int>(state.range(0)));
  Graph g = gen::gnp(4000, 0.01, 11);
  D1lcInstance inst = make_degree_plus_one(g);
  for (auto _ : state) {
    auto p = hknt::compute_params(inst, nullptr);
    benchmark::DoNotOptimize(p.sparsity.data());
  }
}
BENCHMARK(BM_ComputeParams)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->
    UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
