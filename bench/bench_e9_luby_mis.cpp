// Experiment E9 — Section 4.1's worked example: Luby's MIS is a normal
// distributed procedure and derandomizes under the framework. Compares
// randomized vs derandomized rounds and the undecided-node decay, and
// verifies validity (independence + maximality) of both outputs.

#include <iostream>

#include "pdc/baseline/luby.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/table.hpp"

using namespace pdc;
using namespace pdc::baseline;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  Table t("E9 / Sec 4.1: Luby MIS randomized vs derandomized",
          {"n", "avg_deg", "rand_rounds", "derand_rounds", "greedy_tail",
           "rand_valid", "derand_valid"});
  for (NodeId n : {500u, 1000u, 2000u, 4000u}) {
    Graph g = gen::gnp(n, 10.0 / static_cast<double>(n), 31);
    MisResult rnd = luby_mis(g, 5);
    derand::Lemma10Options opt;
    opt.seed_bits = 6;
    MisResult det = luby_mis_derandomized(g, opt, 32);
    auto [ri, rm] = check_mis(g, rnd.in_mis);
    auto [di, dm] = check_mis(g, det.in_mis);
    t.row({std::to_string(n), "~10", std::to_string(rnd.rounds),
           std::to_string(det.rounds), std::to_string(det.greedy_added),
           (ri && rm) ? "yes" : "NO", (di && dm) ? "yes" : "NO"});
  }
  t.print();

  // Undecided decay per round (the seed search should match or beat the
  // randomized decay since it picks the best seed each round).
  Graph g = gen::gnp(3000, 0.004, 7);
  MisResult rnd = luby_mis(g, 5);
  derand::Lemma10Options opt;
  opt.seed_bits = 6;
  MisResult det = luby_mis_derandomized(g, opt, 32);
  Table t2("E9b: undecided fraction per round (n=3000)",
           {"round", "randomized", "derandomized"});
  std::size_t rounds =
      std::max(rnd.undecided_after_round.size(),
               det.undecided_after_round.size());
  for (std::size_t r = 0; r < rounds; ++r) {
    auto get = [&](const std::vector<double>& v) {
      return r < v.size() ? Table::num(v[r], 4) : std::string("0 (done)");
    };
    t2.row({std::to_string(r + 1), get(rnd.undecided_after_round),
            get(det.undecided_after_round)});
  }
  t2.print();
  std::cout << "Claim check: both valid; derandomized decay at least as\n"
               "fast per round (each round commits the best seed found).\n";
  return 0;
}
