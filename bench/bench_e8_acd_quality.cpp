// Experiment E8 — Definition 3: ACD quality. On planted-clique
// instances the decomposition should recover the planted structure with
// zero property violations at low noise, degrading gracefully; on sparse
// instances everything should classify sparse.

#include <iostream>

#include "pdc/graph/generators.hpp"
#include "pdc/hknt/acd.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/table.hpp"

using namespace pdc;
using namespace pdc::hknt;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  Table t("E8 / Definition 3: ACD on planted cliques vs noise",
          {"noise", "cliques_found(true=8)", "dense_frac", "demoted",
           "viol(i)", "viol(ii)", "viol(iii)", "viol(iv)"});
  HkntConfig cfg;
  for (double noise : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    auto pc = gen::planted_cliques(8, 24, noise, 21);
    D1lcInstance inst = make_degree_plus_one(pc.graph);
    NodeParams p = compute_params(inst, nullptr);
    Acd acd = compute_acd(inst, p, cfg, nullptr);
    AcdViolations viol = check_acd(inst, p, acd, cfg);
    std::uint64_t dense = 0;
    for (NodeId v = 0; v < pc.graph.num_nodes(); ++v)
      dense += acd.is_dense(v);
    t.row({Table::num(noise, 2), std::to_string(acd.num_cliques),
           Table::num(double(dense) / pc.graph.num_nodes(), 3),
           std::to_string(acd.demoted), std::to_string(viol.sparse_not_sparse),
           std::to_string(viol.uneven_not_uneven),
           std::to_string(viol.degree_vs_clique),
           std::to_string(viol.clique_vs_inside)});
  }
  t.print();

  Table t2("E8b: classification on other families",
           {"instance", "sparse", "uneven", "dense", "cliques"});
  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"gnp-sparse", gen::gnp(2000, 0.01, 5)});
  cases.push_back({"star-500", gen::star(500)});
  cases.push_back({"grid-40x40", gen::grid(40, 40)});
  cases.push_back({"core-periphery", gen::core_periphery(1500, 80, 0.01, 0.3, 9)});
  for (auto& [name, g] : cases) {
    D1lcInstance inst = make_degree_plus_one(g);
    NodeParams p = compute_params(inst, nullptr);
    Acd acd = compute_acd(inst, p, cfg, nullptr);
    std::uint64_t sparse = 0, uneven = 0, dense = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      sparse += acd.is_sparse(v);
      uneven += acd.is_uneven(v);
      dense += acd.is_dense(v);
    }
    t2.row({name, std::to_string(sparse), std::to_string(uneven),
            std::to_string(dense), std::to_string(acd.num_cliques)});
  }
  t2.print();
  std::cout << "Claim check: 8/8 cliques recovered with 0 violations at low\n"
               "noise; sparse instances fully sparse; star leaves uneven;\n"
               "the core-periphery core shows up as dense cliques.\n";
  return 0;
}
