// Experiment E13 — the shattering premise: after a randomized ColorMiddle
// pass (the pre-shattering phase of [HKNT22]), the still-uncolored nodes
// form only small connected components — which is why the deterministic
// post-processing (low-degree solver / deferred recursion) is cheap.
// Reports the component-size distribution of the failed set vs n.

#include <iostream>

#include "pdc/graph/components.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/color_middle.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/stats.hpp"
#include "pdc/util/table.hpp"

using namespace pdc;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  // The shattering guarantee covers nodes the SSPs actually constrain:
  // degree >= the log^7-analog threshold. The sub-threshold residue is
  // *meant* to flow to the deterministic low-degree stage and is
  // reported separately (it can and does clump).
  Table t("E13: components of the failed set after one randomized pass",
          {"n", "low_cap", "failed_all", "failed_hi", "hi_components",
           "hi_largest", "hi_largest/n"});
  hknt::HkntConfig cfg;
  for (NodeId n : {1000u, 2000u, 4000u, 8000u, 16000u}) {
    Graph g = gen::gnp(n, 14.0 / static_cast<double>(n), 77);
    D1lcInstance inst = make_degree_plus_one(g);
    derand::ColoringState state(inst.graph, inst.palettes);
    hknt::MiddleOptions mo;
    mo.l10.strategy = derand::SeedStrategy::kTrueRandom;
    mo.l10.defer_failures = false;
    mo.l10.true_random_seed = 3;
    hknt::color_middle(state, inst, mo, nullptr);

    const std::uint32_t low_cap = cfg.low_degree(n);
    std::vector<std::uint8_t> failed_hi(n, 0);
    std::uint64_t failed_all = 0, failed_hi_count = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (state.is_colored(v)) continue;
      ++failed_all;
      if (g.degree(v) >= low_cap) {
        failed_hi[v] = 1;
        ++failed_hi_count;
      }
    }
    Components comp = connected_components(g, &failed_hi);
    t.row({std::to_string(n), std::to_string(low_cap),
           std::to_string(failed_all), std::to_string(failed_hi_count),
           std::to_string(comp.count), std::to_string(comp.largest),
           Table::num(static_cast<double>(comp.largest) /
                          static_cast<double>(n), 4)});
  }
  t.print();
  std::cout << "Claim check: among SSP-covered (degree >= low_cap) nodes the\n"
               "failed set shatters — many small components, largest a\n"
               "vanishing fraction of n. The sub-threshold residue is the\n"
               "low-degree stage's input by design, not a failure of the\n"
               "shattering argument.\n";
  return 0;
}
