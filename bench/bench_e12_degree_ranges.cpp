// Experiment E12 — Section 3's degree-range structure: coloring by
// descending degree ranges (the [HKNT22] LOCAL driver) vs a single
// whole-graph pass. On degree-skewed instances the range scheduler
// matches the paper's O(log* n)-range decomposition; low ranges benefit
// from slack created by colored high ranges.

#include <iostream>

#include "pdc/graph/generators.hpp"
#include "pdc/hknt/degree_ranges.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/table.hpp"

using namespace pdc;
using namespace pdc::hknt;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  Table t0("E12: degree-range thresholds (log-exponent 3)",
           {"n", "thresholds"});
  for (std::uint64_t n : {1000ull, 100'000ull, 10'000'000ull}) {
    RangeScheduleOptions ro;
    auto th = degree_range_thresholds(n, ro);
    std::string s;
    for (auto x : th) s += std::to_string(x) + " ";
    t0.row({std::to_string(n), s});
  }
  t0.print();

  Table t("E12b: range scheduler vs single pass (randomized)",
          {"instance", "driver", "ranges", "colored_frac", "uncolored_frac"});
  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"ba-skewed", gen::preferential_attachment(3000, 4, 5)});
  cases.push_back({"powerlaw", gen::power_law(2000, 2.3, 10.0, 7)});
  cases.push_back({"gnp-flat", gen::gnp(3000, 0.005, 9)});

  for (auto& [name, g] : cases) {
    D1lcInstance inst = make_degree_plus_one(g);
    MiddleOptions mo;
    mo.l10.strategy = derand::SeedStrategy::kTrueRandom;
    mo.l10.defer_failures = false;
    mo.l10.true_random_seed = 17;
    RangeScheduleOptions ro;
    // Fractions are over the nodes the range schedule covers (degree >=
    // floor); sub-floor nodes go to the low-degree solver in the full
    // pipeline either way.
    std::uint64_t covered = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      covered += (g.degree(v) >= ro.floor);
    covered = std::max<std::uint64_t>(covered, 1);
    {
      derand::ColoringState state(inst.graph, inst.palettes);
      auto rep = color_by_degree_ranges(state, inst, mo, ro, nullptr);
      std::uint64_t colored_cov = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        colored_cov += (g.degree(v) >= ro.floor && state.is_colored(v));
      t.row({name, "by-ranges", std::to_string(rep.ranges.size()),
             Table::num(double(colored_cov) / double(covered), 3),
             Table::num(1.0 - double(colored_cov) / double(covered), 3)});
    }
    {
      derand::ColoringState state(inst.graph, inst.palettes);
      color_middle(state, inst, mo, nullptr);
      std::uint64_t colored_cov = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        colored_cov += (g.degree(v) >= ro.floor && state.is_colored(v));
      t.row({name, "single-pass", "1",
             Table::num(double(colored_cov) / double(covered), 3),
             Table::num(1.0 - double(colored_cov) / double(covered), 3)});
    }
  }
  t.print();
  std::cout << "Claim check: O(log* n) thresholds (3-4 ranges even at 10^7);\n"
               "on skewed instances the range driver colors at least as\n"
               "large a fraction as the single pass (high-degree nodes\n"
               "colored first hand slack to the rest).\n";
  return 0;
}
