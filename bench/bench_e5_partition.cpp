// Experiment E5 — Lemma 23: LowSpacePartition's deterministically
// selected hashes give (a) per-bin degree d'(v) < 2 d(v)/nbins for
// (almost) all nodes, (b) valid palettes d'(v) < p'(v), and the
// recursion has O(1) depth.
//
// Sweeps delta (bin-count exponent) and n; also runs the full solver on
// a high-degree instance and reports achieved recursion depth, and a
// sharded leg proving the h1/h2 searches select identical hashes on the
// cluster. SearchStats columns are gated the way E1/E4 gate their sweep
// budgets: the partition searches run on the engine's analytic plane
// (closed-form Lemma-23 costs), so any enumeration sweep — or a search
// that did not route through the analytic plane at all — is a
// regression and exits non-zero.

// --json <path> writes the per-row experiment records (partition
// quality, backend selections, wall times) as a JSON array for
// CI/plotting.

#include <iostream>

#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/mpc/cluster.hpp"
#include "pdc/util/bench_json.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/table.hpp"

using namespace pdc;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  util::BenchJson json;
  Table t("E5 / Lemma 23: partition quality vs delta",
          {"n", "delta", "nbins", "high_nodes", "deg_violations",
           "palette_viol", "max_deg_ratio", "seed_evals", "enum_sweeps",
           "an_blocks", "formula_evals", "wall_ms"});
  std::string regression;
  auto gate_analytic = [&](const engine::SearchStats& st,
                           const std::string& where) {
    // The analytic-path discipline: every partition search must be
    // served by closed forms (zero enumeration sweeps, both hash
    // selections routed through the analytic plane).
    if (!regression.empty()) return;
    if (st.sweeps > 0) {
      regression = "REGRESSION: " + where + ": " +
                   std::to_string(st.sweeps) +
                   " enumeration sweep(s) on the analytic path";
    } else if (st.analytic.searches != 2 || st.evaluations == 0) {
      regression = "REGRESSION: " + where +
                   ": h1/h2 searches did not route through the analytic "
                   "plane (analytic.searches=" +
                   std::to_string(st.analytic.searches) + ")";
    }
  };

  for (NodeId n : {2000u, 6000u}) {
    Graph g = gen::gnp(n, 48.0 / static_cast<double>(n), 11);
    D1lcInstance inst = make_degree_plus_one(g);
    for (double delta : {0.15, 0.25, 0.35}) {
      d1lc::PartitionOptions opt;
      opt.delta = delta;
      opt.mid_degree_cap = 16;
      d1lc::Partition part = d1lc::low_space_partition(inst, opt, nullptr);
      std::uint64_t high = 0;
      for (NodeId v = 0; v < n; ++v) high += (g.degree(v) > 16);
      t.row({std::to_string(n), Table::num(delta, 2),
             std::to_string(part.nbins), std::to_string(high),
             std::to_string(part.degree_violations),
             std::to_string(part.palette_violations),
             Table::num(part.max_degree_ratio, 2),
             std::to_string(part.search.evaluations),
             std::to_string(part.search.sweeps),
             std::to_string(part.search.analytic.blocks),
             std::to_string(part.search.analytic.formula_evals),
             Table::num(part.search.wall_ms, 1)});
      gate_analytic(part.search,
                    "n=" + std::to_string(n) + " delta=" + Table::num(delta, 2));
      json.obj()
          .field("table", "e5_quality_vs_delta")
          .field("n", static_cast<std::uint64_t>(n))
          .field("delta", delta)
          .field("deg_violations",
                 static_cast<std::uint64_t>(part.degree_violations))
          .field("palette_violations",
                 static_cast<std::uint64_t>(part.palette_violations))
          .field("wall_ms", part.search.wall_ms);
    }
  }
  t.print();

  // Sharded leg: the same searches as capacity-checked cluster rounds —
  // identical hashes at every machine count, still zero enumeration.
  Table ts("E5s: h1/h2 selection on the sharded backend (n=2000)",
           {"machines", "h1_idx", "h2_idx", "matches_shared", "rounds",
            "cc_words", "enum_sweeps"});
  {
    const NodeId n = 2000;
    Graph g = gen::gnp(n, 48.0 / static_cast<double>(n), 11);
    D1lcInstance inst = make_degree_plus_one(g);
    d1lc::PartitionOptions opt;
    opt.mid_degree_cap = 16;
    d1lc::Partition shared = d1lc::low_space_partition(inst, opt, nullptr);
    for (std::uint32_t p : {1u, 4u, 9u}) {
      mpc::Config cfg;
      cfg.n = n;
      cfg.phi = 0.5;
      cfg.local_space_words = 1 << 14;
      cfg.num_machines = p;
      mpc::Cluster cluster(cfg, /*strict=*/true);
      d1lc::PartitionOptions sopt = opt;
      sopt.search.backend = engine::SearchBackend::kSharded;
      sopt.search.cluster = &cluster;
      d1lc::Partition dist = d1lc::low_space_partition(inst, sopt, nullptr);
      const bool match = dist.h1_index == shared.h1_index &&
                         dist.h2_index == shared.h2_index &&
                         dist.bin_of == shared.bin_of;
      ts.row({std::to_string(p), std::to_string(dist.h1_index),
              std::to_string(dist.h2_index), match ? "yes" : "NO",
              std::to_string(dist.search.sharded.rounds),
              std::to_string(dist.search.sharded.words),
              std::to_string(dist.search.sweeps)});
      gate_analytic(dist.search, "sharded p=" + std::to_string(p));
      json.obj()
          .field("table", "e5s_sharded_selection")
          .field("machines", static_cast<std::uint64_t>(p))
          .field("matches_shared", match)
          .field("rounds",
                 static_cast<std::uint64_t>(dist.search.sharded.rounds));
      if (regression.empty() && !match) {
        regression = "REGRESSION: sharded partition selection diverged from "
                     "shared memory at p=" + std::to_string(p);
      }
    }
  }
  ts.print();

  // Prefix leg: the same Lemma-23 selections on the engine's prefix
  // plane (junta-fooling walks, family 2^7). Gated three ways: the
  // walk must pay zero enumeration sweeps, do strictly less formula
  // work than the analytic member loop (seed-constant items never
  // enumerate), and select exactly the hashes its totals-walk
  // reference selects.
  Table tp("E5p: h1/h2 selection on the prefix plane (family 2^7)",
           {"n", "deg_viol", "pal_viol", "walks", "bit_steps",
            "junta_evals", "an_formula_evals", "enum_sweeps",
            "matches_ref", "wall_ms"});
  for (NodeId n : {2000u, 6000u}) {
    Graph g = gen::gnp(n, 48.0 / static_cast<double>(n), 11);
    D1lcInstance inst = make_degree_plus_one(g);
    d1lc::PartitionOptions aopt;
    aopt.mid_degree_cap = 16;
    d1lc::Partition analytic = d1lc::low_space_partition(inst, aopt, nullptr);

    d1lc::PartitionOptions popt = aopt;
    popt.use_prefix_walk = true;
    d1lc::Partition walk = d1lc::low_space_partition(inst, popt, nullptr);

    d1lc::PartitionOptions ropt = popt;
    ropt.search.options.use_prefix = false;  // same walk over totals
    d1lc::Partition ref = d1lc::low_space_partition(inst, ropt, nullptr);
    const bool match = walk.h1_index == ref.h1_index &&
                       walk.h2_index == ref.h2_index &&
                       walk.bin_of == ref.bin_of;

    tp.row({std::to_string(n), std::to_string(walk.degree_violations),
            std::to_string(walk.palette_violations),
            std::to_string(walk.search.prefix.walks),
            std::to_string(walk.search.prefix.bit_steps),
            std::to_string(walk.search.prefix.junta_evals),
            std::to_string(analytic.search.analytic.formula_evals),
            std::to_string(walk.search.sweeps), match ? "yes" : "NO",
            Table::num(walk.search.wall_ms, 1)});
    json.obj()
        .field("table", "e5p_prefix_plane")
        .field("n", static_cast<std::uint64_t>(n))
        .field("matches_ref", match)
        .field("junta_evals",
               static_cast<std::uint64_t>(walk.search.prefix.junta_evals))
        .field("wall_ms", walk.search.wall_ms);
    if (regression.empty()) {
      const std::string where = "prefix n=" + std::to_string(n);
      if (walk.search.sweeps > 0) {
        regression = "REGRESSION: " + where + ": " +
                     std::to_string(walk.search.sweeps) +
                     " enumeration sweep(s) on the prefix plane";
      } else if (walk.search.prefix.walks != 2 ||
                 walk.search.route != engine::PlaneTag::kPrefix) {
        regression = "REGRESSION: " + where +
                     ": h1/h2 searches did not route through the prefix "
                     "plane (walks=" +
                     std::to_string(walk.search.prefix.walks) + ")";
      } else if (walk.search.prefix.junta_evals >=
                 analytic.search.analytic.formula_evals) {
        regression = "REGRESSION: " + where + ": junta_evals (" +
                     std::to_string(walk.search.prefix.junta_evals) +
                     ") not below the analytic member loop (" +
                     std::to_string(analytic.search.analytic.formula_evals) +
                     ")";
      } else if (!match) {
        regression = "REGRESSION: " + where +
                     ": oracle-backed walk diverged from its totals "
                     "reference";
      }
    }
  }
  tp.print();

  Table t2("E5b: full-solver recursion depth on high-degree instances",
           {"n", "Delta", "mid_cap(sqrt s)", "levels", "valid"});
  for (NodeId n : {1000u, 3000u}) {
    Graph g = gen::core_periphery(n, n / 5, 0.004, 0.5, 13);
    D1lcInstance inst = make_degree_plus_one(g);
    d1lc::SolverOptions opt;
    opt.phi = 0.5;           // small s to force partitioning
    opt.space_headroom = 2.0;
    opt.l10.seed_bits = 4;
    d1lc::SolveResult r = solve_d1lc(inst, opt);
    mpc::Config mcfg = mpc::Config::sublinear(
        n, opt.phi, g.num_edges() * 2 + inst.palettes.total_size(),
        opt.space_headroom);
    t2.row({std::to_string(n), std::to_string(g.max_degree()),
            std::to_string(static_cast<std::uint64_t>(
                std::sqrt(double(mcfg.local_space_words)))),
            std::to_string(r.partition_levels), r.valid ? "yes" : "NO"});
  }
  t2.print();

  if (args.has("json")) json.write(args.get("json", ""));

  if (!regression.empty()) {
    std::cout << regression << "\n";
    return 1;
  }

  std::cout << "Claim check: degree/palette violations a vanishing share of\n"
               "high_nodes; max_deg_ratio <= ~1 (the 2 d(v)/nbins bound);\n"
               "recursion depth O(1); enum_sweeps identically 0 (closed\n"
               "forms, not enumeration, drive the hash selection); the\n"
               "sharded backend selects identical hashes at every p; and\n"
               "the prefix plane (E5p) pays zero sweeps and strictly fewer\n"
               "formula evals than the analytic member loop while matching\n"
               "its totals-walk reference exactly.\n";
  return 0;
}
