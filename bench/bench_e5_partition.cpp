// Experiment E5 — Lemma 23: LowSpacePartition's deterministically
// selected hashes give (a) per-bin degree d'(v) < 2 d(v)/nbins for
// (almost) all nodes, (b) valid palettes d'(v) < p'(v), and the
// recursion has O(1) depth.
//
// Sweeps delta (bin-count exponent) and n; also runs the full solver on
// a high-degree instance and reports achieved recursion depth.

#include <iostream>

#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/util/table.hpp"

using namespace pdc;

int main() {
  Table t("E5 / Lemma 23: partition quality vs delta",
          {"n", "delta", "nbins", "high_nodes", "deg_violations",
           "palette_viol", "max_deg_ratio"});
  for (NodeId n : {2000u, 6000u}) {
    Graph g = gen::gnp(n, 48.0 / static_cast<double>(n), 11);
    D1lcInstance inst = make_degree_plus_one(g);
    for (double delta : {0.15, 0.25, 0.35}) {
      d1lc::PartitionOptions opt;
      opt.delta = delta;
      opt.mid_degree_cap = 16;
      d1lc::Partition part = d1lc::low_space_partition(inst, opt, nullptr);
      std::uint64_t high = 0;
      for (NodeId v = 0; v < n; ++v) high += (g.degree(v) > 16);
      t.row({std::to_string(n), Table::num(delta, 2),
             std::to_string(part.nbins), std::to_string(high),
             std::to_string(part.degree_violations),
             std::to_string(part.palette_violations),
             Table::num(part.max_degree_ratio, 2)});
    }
  }
  t.print();

  Table t2("E5b: full-solver recursion depth on high-degree instances",
           {"n", "Delta", "mid_cap(sqrt s)", "levels", "valid"});
  for (NodeId n : {1000u, 3000u}) {
    Graph g = gen::core_periphery(n, n / 5, 0.004, 0.5, 13);
    D1lcInstance inst = make_degree_plus_one(g);
    d1lc::SolverOptions opt;
    opt.phi = 0.5;           // small s to force partitioning
    opt.space_headroom = 2.0;
    opt.l10.seed_bits = 4;
    d1lc::SolveResult r = solve_d1lc(inst, opt);
    mpc::Config mcfg = mpc::Config::sublinear(
        n, opt.phi, g.num_edges() * 2 + inst.palettes.total_size(),
        opt.space_headroom);
    t2.row({std::to_string(n), std::to_string(g.max_degree()),
            std::to_string(static_cast<std::uint64_t>(
                std::sqrt(double(mcfg.local_space_words)))),
            std::to_string(r.partition_levels), r.valid ? "yes" : "NO"});
  }
  t2.print();

  std::cout << "Claim check: degree/palette violations a vanishing share of\n"
               "high_nodes; max_deg_ratio <= ~1 (the 2 d(v)/nbins bound);\n"
               "recursion depth O(1) (each level divides degrees by n^delta).\n";
  return 0;
}
