// Experiment E7 — MPC substrate: the [GSZ11]-style primitives run in
// O(1) communication rounds with the space caps enforced. Reports the
// actual rounds used by sort/broadcast/prefix/Lemma-17 gather at several
// scales, plus google-benchmark wall-time throughput for the sort.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <iostream>
#include <numeric>
#include <string>

#include "pdc/d1lc/trial_oracle.hpp"
#include "pdc/engine/search.hpp"
#include "pdc/graph/coloring.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/mpc/cluster.hpp"
#include "pdc/mpc/dgraph.hpp"
#include "pdc/mpc/primitives.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/bench_json.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/rng.hpp"
#include "pdc/util/table.hpp"

using namespace pdc;
using namespace pdc::mpc;

namespace {

Config cfg_for(std::size_t records, std::uint32_t machines) {
  Config c;
  c.n = records;
  c.phi = 0.5;
  // Records are 2 words; sample sort needs ~2x headroom over the
  // balanced share for splitter skew on the receive side.
  c.local_space_words =
      std::max<std::uint64_t>(4096, 8 * records / machines + 2048);
  c.num_machines = machines;
  return c;
}

void print_round_table(util::BenchJson& json) {
  Table t("E7: communication rounds of MPC primitives (O(1) claim)",
          {"primitive", "records", "machines", "rounds", "violations"});
  auto record = [&](const char* primitive, std::uint64_t records,
                    std::uint64_t machines, std::uint64_t rounds,
                    std::uint64_t violations) {
    t.row({primitive, records ? std::to_string(records) : "-",
           std::to_string(machines), std::to_string(rounds),
           std::to_string(violations)});
    json.obj()
        .field("leg", "rounds")
        .field("primitive", primitive)
        .field("records", records)
        .field("machines", machines)
        .field("rounds", rounds)
        .field("violations", violations);
  };
  for (std::size_t n : {1000u, 10000u, 50000u}) {
    Xoshiro256 rng(n);
    std::vector<Record> recs(n);
    for (auto& r : recs) r = {rng(), rng()};
    Cluster c(cfg_for(n, 16));
    scatter_records(c, recs);
    std::uint64_t before = c.ledger().rounds();
    sample_sort(c);
    record("sample_sort", n, 16, c.ledger().rounds() - before,
           c.ledger().violations().size());
  }
  {
    Cluster c(cfg_for(1000, 25));
    std::vector<Word> payload(64, 7);
    std::vector<std::vector<Word>> recv;
    int rounds = broadcast(c, 3, payload, recv);
    record("broadcast(64w)", 0, 25, static_cast<std::uint64_t>(rounds),
           c.ledger().violations().size());
  }
  {
    Cluster c(cfg_for(1000, 25));
    std::vector<Word> vals(25, 3);
    std::uint64_t before = c.ledger().rounds();
    exclusive_prefix(c, vals);
    record("exclusive_prefix", 0, 25, c.ledger().rounds() - before,
           c.ledger().violations().size());
  }
  {
    Graph g = gen::gnp(300, 0.05, 3);
    Cluster c(cfg_for(20000, 8));
    DistributedGraph dg(c, g);
    std::uint64_t before = c.ledger().rounds();
    dg.gather_neighbor_lists();
    record("lemma17_gather", g.num_edges() * 2, 8,
           c.ledger().rounds() - before, c.ledger().violations().size());
  }
  t.print();
}

/// E7x: the shared-vs-sharded wall-time crossover the kAuto policy is
/// calibrated against — now per execution substrate. One production
/// family search (the low-degree trial oracle at family 2^7) per
/// (n, p) cell, timed on the shared-memory backend and on the sharded
/// backend twice: once on the sequential reference substrate (`seq_ms`)
/// and once on the thread-pool substrate with --threads workers
/// (`tpool_ms`, `tp_speedup` = seq/tpool). The `auto` column shows what
/// ExecutionPolicy::kAuto with an `auto_items` items-per-machine floor
/// would pick for the thread-pool cluster, and `cutover` prints the
/// resolved item floor ((auto_items / concurrency) * p) that decision
/// compared n against. `auto_items` comes from --auto-items (default:
/// the ExecutionPolicy default), which is the measurement hook for
/// calibrating the floor on a real cluster: re-run the table with
/// candidate floors until the `auto` column tracks the measured ratio.
/// On a sequential substrate the sharded path serializes machine steps
/// on one host, so shared memory wins until shards carry real
/// per-member formula work; the thread-pool substrate divides the step
/// wall across its workers and moves that crossover proportionally
/// earlier — exactly the concurrency division resolve_backend encodes.
void print_crossover_table(std::size_t auto_items, std::uint32_t threads,
                           util::BenchJson& json) {
  Table t("E7x: seed-search backend crossover (trial oracle, family 2^7)",
          {"n", "machines", "shared_ms", "seq_ms", "tpool_ms", "tp_speedup",
           "auto", "cutover"});
  for (NodeId n : {2000u, 8000u}) {
    Graph g = gen::gnp(n, 24.0 / static_cast<double>(n), 7);
    D1lcInstance inst = make_degree_plus_one(g);
    EnumerablePairwiseFamily family(0xE7, 7);
    Coloring none(n, kNoColor);
    std::vector<NodeId> items(n);
    std::iota(items.begin(), items.end(), NodeId{0});
    std::vector<std::uint8_t> active(n, 1);
    d1lc::AvailLists avail = d1lc::AvailLists::from_instance(inst, none);
    for (std::uint32_t p : {1u, 4u, 8u, 16u}) {
      mpc::Config cfg;
      cfg.n = n;
      cfg.phi = 0.5;
      cfg.local_space_words = 1 << 14;
      cfg.num_machines = p;
      mpc::Cluster cluster(cfg);
      mpc::Config tp_cfg = cfg;
      tp_cfg.substrate = mpc::SubstrateKind::kThreadPool;
      tp_cfg.substrate_threads = threads;
      mpc::Cluster tp_cluster(tp_cfg);

      d1lc::TrialOracle sh_oracle(g, items, active, avail, family);
      engine::ExecutionPolicy shared_policy;
      engine::Selection shared = engine::search(
          sh_oracle,
          engine::SearchRequest::exhaustive(family.size(), shared_policy));

      d1lc::TrialOracle cl_oracle(g, items, active, avail, family);
      engine::ExecutionPolicy sharded_policy;
      sharded_policy.backend = engine::SearchBackend::kSharded;
      sharded_policy.cluster = &cluster;
      engine::Selection sharded = engine::search(
          cl_oracle,
          engine::SearchRequest::exhaustive(family.size(), sharded_policy));

      d1lc::TrialOracle tp_oracle(g, items, active, avail, family);
      engine::ExecutionPolicy tp_policy;
      tp_policy.backend = engine::SearchBackend::kSharded;
      tp_policy.cluster = &tp_cluster;
      engine::Selection tpool = engine::search(
          tp_oracle,
          engine::SearchRequest::exhaustive(family.size(), tp_policy));
      if (tpool.seed != sharded.seed || tpool.cost != sharded.cost) {
        std::cout << "WARNING: thread-pool Selection diverged at n=" << n
                  << " p=" << p << "\n";
      }

      engine::ExecutionPolicy auto_policy;
      auto_policy.backend = engine::SearchBackend::kAuto;
      auto_policy.cluster = &tp_cluster;
      auto_policy.auto_items_per_machine = auto_items;
      const bool auto_sharded =
          engine::resolve_backend(auto_policy, n) ==
          engine::SearchBackend::kSharded;
      const unsigned conc =
          std::max(1u, tp_cluster.substrate_concurrency());
      const std::size_t cutover =
          std::max<std::size_t>(1, auto_items / conc) * p;

      const double tp_speedup = tpool.stats.wall_ms > 0.0
                                    ? sharded.stats.wall_ms /
                                          tpool.stats.wall_ms
                                    : 0.0;
      t.row({std::to_string(n), std::to_string(p),
             Table::num(shared.stats.wall_ms, 1),
             Table::num(sharded.stats.wall_ms, 1),
             Table::num(tpool.stats.wall_ms, 1), Table::num(tp_speedup, 2),
             auto_sharded ? "sharded" : "shared", std::to_string(cutover)});
      json.obj()
          .field("leg", "crossover")
          .field("n", static_cast<std::uint64_t>(n))
          .field("machines", static_cast<std::uint64_t>(p))
          .field("threads", static_cast<std::uint64_t>(conc))
          .field("shared_ms", shared.stats.wall_ms)
          .field("seq_ms", sharded.stats.wall_ms)
          .field("tpool_ms", tpool.stats.wall_ms)
          .field("tp_speedup", tp_speedup)
          .field("auto", auto_sharded ? "sharded" : "shared")
          .field("cutover", static_cast<std::uint64_t>(cutover));
    }
  }
  t.print();
}

void BM_SampleSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(n);
  std::vector<Record> recs(n);
  for (auto& r : recs) r = {rng(), rng()};
  for (auto _ : state) {
    Cluster c(cfg_for(n, 16));
    scatter_records(c, recs);
    sample_sort(c);
    benchmark::DoNotOptimize(c.storage(0).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_SampleSort)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Lemma17Gather(benchmark::State& state) {
  Graph g = gen::gnp(static_cast<NodeId>(state.range(0)), 0.05, 3);
  for (auto _ : state) {
    Cluster c(cfg_for(1u << 18, 8));
    DistributedGraph dg(c, g);
    auto lists = dg.gather_neighbor_lists();
    benchmark::DoNotOptimize(lists.data());
  }
}
BENCHMARK(BM_Lemma17Gather)->Arg(100)->Arg(300);

}  // namespace

int main(int argc, char** argv) {
  // --auto-items overrides ExecutionPolicy::auto_items_per_machine for
  // the E7x `auto`/`cutover` columns — the real-cluster calibration
  // hook (ROADMAP) — and --threads sets the thread-pool substrate's
  // worker count for the tpool_ms column (0 = hardware concurrency).
  // Our flags (--auto-items/--threads/--json/--trace/--metrics) are
  // stripped below before benchmark::Initialize, which errors on flags
  // it does not know; anything else falls through to it.
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  util::BenchJson json;
  const std::size_t auto_items = static_cast<std::size_t>(args.get_int(
      "auto-items",
      static_cast<std::int64_t>(engine::ExecutionPolicy{}
                                    .auto_items_per_machine)));
  const std::uint32_t threads =
      static_cast<std::uint32_t>(args.get_int("threads", 0));
  print_round_table(json);
  print_crossover_table(auto_items, threads, json);
  if (args.has("json")) json.write(args.get("json", ""));
  std::cout << "Claim check: rounds constant across input sizes, zero space\n"
               "violations; E7x seq_ms > shared_ms at laptop scale (the\n"
               "sequential substrate serializes machine steps on one host),\n"
               "with tp_speedup approaching the worker count as per-shard\n"
               "work grows — the measurement ExecutionPolicy::kAuto's\n"
               "cutover encodes (items-per-machine floor " << auto_items
            << ", divided by the substrate concurrency;\n"
               "tune with --auto-items / --threads).\n\n";
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const bool ours = a.rfind("--auto-items", 0) == 0 ||
                      a.rfind("--threads", 0) == 0 ||
                      a.rfind("--json", 0) == 0 ||
                      a.rfind("--trace", 0) == 0 ||
                      a.rfind("--metrics", 0) == 0;
    if (ours) {
      // Separate-value form consumes the next token too (the CliArgs
      // rule: a non-flag token after a flag is its value).
      if (a.find('=') == std::string::npos && i + 1 < argc &&
          std::strncmp(argv[i + 1], "--", 2) != 0) {
        ++i;
      }
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
