// Experiment E4 — Lemma 13: each HKNT22 subroutine is a normal
// procedure, i.e. its strong success property holds w.h.p. under true
// randomness.
//
// For each subroutine we run the pipeline to the point where that
// subroutine executes, then measure the SSP satisfaction rate of its
// participants across random seeds, on a sparse instance (GenerateSlack,
// TryRandomColor, MultiTrial path) and a dense instance
// (SynchColorTrial, PutAside path).

#include <iostream>

#include "pdc/graph/generators.hpp"
#include "pdc/hknt/color_middle.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/bench_json.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/stats.hpp"
#include "pdc/util/table.hpp"

using namespace pdc;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  util::BenchJson json;
  Table t("E4 / Lemma 13: per-subroutine SSP satisfaction (randomized)",
          {"instance", "subroutine", "participants(mean)", "ssp_rate",
           "runs"});

  struct Inst {
    const char* name;
    D1lcInstance inst;
  };
  std::vector<Inst> instances;
  instances.push_back({"sparse-gnp",
                       make_degree_plus_one(gen::gnp(2000, 0.015, 5))});
  instances.push_back(
      {"planted-cliques",
       make_degree_plus_one(gen::planted_cliques(8, 20, 0.4, 7).graph)});
  instances.push_back(
      {"core-periphery",
       make_degree_plus_one(gen::core_periphery(1500, 60, 0.01, 0.3, 9))});

  const int kRuns = 5;
  for (auto& [name, inst] : instances) {
    // Aggregate SSP stats per procedure name prefix across runs.
    std::map<std::string, std::pair<Summary, Summary>> by_proc;  // part, rate
    for (int run = 0; run < kRuns; ++run) {
      derand::ColoringState state(inst.graph, inst.palettes);
      hknt::MiddleOptions mo;
      mo.l10.strategy = derand::SeedStrategy::kTrueRandom;
      mo.l10.defer_failures = false;
      mo.l10.true_random_seed = 40 + run;
      hknt::MiddleReport rep = hknt::color_middle(state, inst, mo, nullptr);
      for (const auto& s : rep.steps) {
        if (s.participants == 0) continue;
        // Bucket by procedure family (strip the instance-specific label).
        std::string key = s.procedure.substr(0, s.procedure.find('/'));
        by_proc[key].first.add(static_cast<double>(s.participants));
        by_proc[key].second.add(
            1.0 - static_cast<double>(s.ssp_failures) /
                      static_cast<double>(s.participants));
      }
    }
    for (auto& [proc, stats] : by_proc) {
      t.row({name, proc, Table::num(stats.first.mean(), 0),
             Table::num(stats.second.mean(), 4), std::to_string(kRuns)});
      json.obj()
          .field("leg", "randomized")
          .field("instance", name)
          .field("subroutine", proc)
          .field("participants_mean", stats.first.mean())
          .field("ssp_rate", stats.second.mean())
          .field("runs", static_cast<std::int64_t>(kRuns));
    }
  }
  t.print();

  // Derandomized leg: the same subroutines with conditional-expectations
  // seed selection, so the engine's per-procedure SearchStats reach this
  // harness too (E4 previously only saw seed_evaluations). The sweep
  // budget is asserted the way bench_e10 does: batched sweeps must stay
  // strictly below one-pass-per-evaluation.
  Table ts("E4 derandomized: per-subroutine seed-search accounting",
           {"instance", "subroutine", "seed_evals", "sweeps", "batch",
            "wall_ms"});
  std::string regression;
  for (auto& [name, inst] : instances) {
    derand::ColoringState state(inst.graph, inst.palettes);
    hknt::MiddleOptions mo;
    mo.l10.strategy = derand::SeedStrategy::kConditionalExpectation;
    mo.l10.seed_bits = 4;
    hknt::MiddleReport rep = hknt::color_middle(state, inst, mo, nullptr);
    std::map<std::string, engine::SearchStats> by_proc;
    for (const auto& s : rep.steps) {
      std::string key = s.procedure.substr(0, s.procedure.find('/'));
      by_proc[key].absorb(s.search);
    }
    for (auto& [proc, st] : by_proc) {
      ts.row({name, proc, std::to_string(st.evaluations),
              std::to_string(st.sweeps), std::to_string(st.batch),
              Table::num(st.wall_ms, 1)});
      json.obj()
          .field("leg", "derandomized")
          .field("instance", name)
          .field("subroutine", proc)
          .field("seed_evals", st.evaluations)
          .field("sweeps", st.sweeps)
          .field("batch", st.batch)
          .field("wall_ms", st.wall_ms);
      // Reported after the table prints so a CI failure still shows
      // the full accounting.
      if (regression.empty() && st.evaluations > 0 &&
          st.sweeps >= st.evaluations) {
        regression = "REGRESSION: " + proc + " on " + name +
                     ": engine sweeps (" + std::to_string(st.sweeps) +
                     ") not below evaluations (" +
                     std::to_string(st.evaluations) + ")";
      }
    }
  }
  ts.print();
  if (args.has("json")) json.write(args.get("json", ""));
  if (!regression.empty()) {
    std::cout << regression << "\n";
    return 1;
  }

  std::cout << "Claim check: ssp_rate near 1.0 for every subroutine — the\n"
               "'succeeds w.h.p.' premise of Definition 5 / Lemma 13. Rates\n"
               "dip only where participants have little slack (the nodes\n"
               "the framework defers and recurses on). The derandomized\n"
               "table shows every subroutine's search paying sweeps <<\n"
               "evaluations through the engine's batched passes.\n";
  return 0;
}
