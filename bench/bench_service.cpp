// Service bench: what does coloring-as-a-service buy over re-running
// the one-shot pipeline per delta?
//
//   leg 1  query throughput      — 1M query_color round trips
//   leg 1b reader scaling        — batched snapshot reads, 1 thread vs
//                                  T threads (the lock-free read path)
//   leg 2  incremental recolor   — single-edge conflict deltas served
//                                  by the damaged-region path (cache
//                                  stats reported from the same leg)
//   leg 3  full re-solve         — the same delta shape with
//                                  full_resolve_fraction=0, i.e. the
//                                  cost of NOT being incremental; a
//                                  concurrent reader samples per-query
//                                  latency WHILE the re-solves run
//                                  (readers must never block on the
//                                  writer)
//
// Claim gates: incremental single-edge deltas at n=50k must be >= 5x
// faster than the full-re-solve path (ISSUE 9); with >= 8 reader
// threads aggregate read throughput must be >= 4x single-thread —
// skip-passed with a printed note on hosts with < 4 cores — and p99
// read latency during an in-flight full re-solve must stay bounded
// (ISSUE 10). Exits 1 when a gate fails; --no-gate reports without
// enforcing.
//
//   bench_service [--n N] [--p P] [--queries Q] [--deltas K]
//                 [--readers T] [--read-ops R] [--read-batch B]
//                 [--json out.json] [--no-gate]

#include <algorithm>
#include <atomic>
#include <iostream>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/service/service.hpp"
#include "pdc/util/bench_json.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/table.hpp"
#include "pdc/util/timer.hpp"

using namespace pdc;
using service::ColoringService;
using service::Mutation;

namespace {

/// The next conflict-delta candidate: two same-colored non-adjacent
/// live nodes (smallest color class first, deterministic). Inserting
/// that edge forces a 1-node damaged region.
std::pair<NodeId, NodeId> find_conflict_pair(const ColoringService& svc) {
  std::map<Color, std::vector<NodeId>> groups;
  const auto& g = svc.graph();
  for (NodeId v = 0; v < g.capacity(); ++v)
    if (g.alive(v)) groups[svc.color_of(v)].push_back(v);
  for (const auto& [c, nodes] : groups)
    for (std::size_t i = 0; i < nodes.size(); ++i)
      for (std::size_t j = i + 1; j < nodes.size() && j < i + 16; ++j)
        if (!g.has_edge(nodes[i], nodes[j])) return {nodes[i], nodes[j]};
  return {kInvalidNode, kInvalidNode};
}

/// Mean wall ms per single-edge conflict delta on `svc`.
double time_conflict_deltas(ColoringService& svc, int deltas,
                            std::uint64_t& damaged_total) {
  double total_ms = 0.0;
  for (int k = 0; k < deltas; ++k) {
    auto [u, v] = find_conflict_pair(svc);
    PDC_CHECK_MSG(u != kInvalidNode, "no conflict pair left at delta " << k);
    const std::uint64_t t0 = Timer::now_us();
    service::MutationResult r = svc.apply(Mutation::insert_edge(u, v));
    total_ms += static_cast<double>(Timer::now_us() - t0) / 1000.0;
    PDC_CHECK_MSG(r.valid, "delta " << k << " left an invalid coloring");
    damaged_total += r.damaged;
  }
  return total_ms / deltas;
}

/// Aggregate reads/sec with `nthreads` readers hammering batched
/// snapshot lookups (query_colors amortizes one snapshot bind over the
/// batch — the serving-traffic shape). Each thread does `ops` lookups.
double timed_reads(ColoringService& svc, int nthreads, std::uint64_t ops,
                   std::size_t batch, NodeId n, std::uint64_t& checksum) {
  std::atomic<std::uint64_t> sink{0};
  const std::uint64_t t0 = Timer::now_us();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    pool.emplace_back([&, t]() {
      std::vector<NodeId> ids(batch);
      std::uint64_t local = 0;
      std::mt19937_64 rng(17 + t);
      for (std::uint64_t done = 0; done < ops; done += batch) {
        for (NodeId& id : ids) id = static_cast<NodeId>(rng() % n);
        for (Color c : svc.query_colors(ids))
          local += static_cast<std::uint64_t>(c);
      }
      sink.fetch_add(local);
    });
  }
  for (auto& th : pool) th.join();
  const double ms = static_cast<double>(Timer::now_us() - t0) / 1000.0;
  checksum += sink.load();
  return static_cast<double>(nthreads) * static_cast<double>(ops) /
         (ms / 1000.0);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  const NodeId n = static_cast<NodeId>(args.get_int("n", 50000));
  const double p = args.get_double("p", 0.0004);
  const std::uint64_t queries = args.get_int("queries", 1'000'000);
  const int deltas = static_cast<int>(args.get_int("deltas", 32));
  const int full_deltas = static_cast<int>(args.get_int("full-deltas", 3));
  const int readers = static_cast<int>(args.get_int("readers", 8));
  const std::uint64_t read_ops = args.get_int("read-ops", 2'000'000);
  const std::size_t read_batch =
      static_cast<std::size_t>(args.get_int("read-batch", 64));

  Graph g = gen::gnp(n, p, 1);
  D1lcInstance inst = make_degree_plus_one(g);
  std::cout << "instance: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " Delta=" << g.max_degree() << "\n";

  // Same laptop-scale calibration as pdc_solve's CLI defaults (the
  // library default of 10 seed bits costs 16x the sweep work).
  d1lc::SolverOptions opt;
  opt.l10.seed_bits = static_cast<int>(args.get_int("seed-bits", 6));

  // One pipeline solve warm-starts BOTH services, so the bench times
  // deltas, not two initial solves.
  const std::uint64_t t0 = Timer::now_us();
  d1lc::SolveResult base = d1lc::solve_d1lc(inst, opt);
  const double solve_ms = static_cast<double>(Timer::now_us() - t0) / 1000.0;
  PDC_CHECK(base.valid);

  service::ServiceConfig incr_cfg;
  incr_cfg.solver = opt;
  ColoringService incr(inst, base.coloring, incr_cfg);
  service::ServiceConfig full_cfg;
  full_cfg.solver = opt;
  full_cfg.full_resolve_fraction = 0.0;  // every delta pays a re-solve
  ColoringService full(inst, base.coloring, full_cfg);

  // --- Leg 1: query throughput. ---
  const std::uint64_t q0 = Timer::now_us();
  std::uint64_t checksum = 0;
  for (std::uint64_t i = 0; i < queries; ++i)
    checksum += incr.query_color(static_cast<NodeId>(i % n));
  const double query_ms = static_cast<double>(Timer::now_us() - q0) / 1000.0;
  const double qps = queries / (query_ms / 1000.0);

  // --- Leg 1b: reader scaling, 1 thread vs T threads on the same
  // lock-free snapshot path. ---
  const unsigned cores = std::thread::hardware_concurrency();
  const double single_qps =
      timed_reads(incr, 1, read_ops, read_batch, n, checksum);
  const double multi_qps =
      timed_reads(incr, readers, read_ops, read_batch, n, checksum);
  const double scaling = single_qps > 0.0 ? multi_qps / single_qps : 0.0;

  // --- Leg 2: incremental single-edge conflict deltas (+ cache). ---
  std::uint64_t incr_damaged = 0;
  const double incr_mean_ms = time_conflict_deltas(incr, deltas, incr_damaged);
  const auto& cache = incr.stats().cache;

  // --- Leg 3: the same delta shape, forced through full re-solves,
  // with a concurrent reader sampling per-query latency. The samples
  // prove readers make progress while multi-second recolors are in
  // flight — the old locked read path would have stalled for the whole
  // re-solve. ---
  std::atomic<bool> resolve_done{false};
  std::vector<double> sample_us;
  std::atomic<std::uint64_t> sampler_sink{0};
  std::thread sampler([&]() {
    std::vector<NodeId> ids(256);
    std::mt19937_64 rng(99);
    std::uint64_t local = 0;
    while (!resolve_done.load(std::memory_order_relaxed)) {
      // Bulk untimed reads keep the duty cycle realistic; one timed
      // read per iteration keeps the sample vector small.
      for (NodeId& id : ids) id = static_cast<NodeId>(rng() % n);
      for (Color c : full.query_colors(ids))
        local += static_cast<std::uint64_t>(c);
      const std::uint64_t s0 = Timer::now_us();
      local += static_cast<std::uint64_t>(
          full.query_color(static_cast<NodeId>(rng() % n)));
      sample_us.push_back(static_cast<double>(Timer::now_us() - s0));
    }
    sampler_sink.store(local);
  });
  std::uint64_t full_damaged = 0;
  const double full_mean_ms =
      time_conflict_deltas(full, full_deltas, full_damaged);
  resolve_done.store(true);
  sampler.join();
  checksum += sampler_sink.load();

  double p99_ms = 0.0, max_ms = 0.0;
  if (!sample_us.empty()) {
    std::sort(sample_us.begin(), sample_us.end());
    p99_ms = sample_us[sample_us.size() * 99 / 100 == sample_us.size()
                           ? sample_us.size() - 1
                           : sample_us.size() * 99 / 100] /
             1000.0;
    max_ms = sample_us.back() / 1000.0;
  }

  const double speedup = incr_mean_ms > 0.0 ? full_mean_ms / incr_mean_ms : 0.0;

  Table t("Service: lock-free reads + incremental recolor vs full re-solve",
          {"leg", "ops", "mean_ms", "note"});
  t.row({"initial-solve", "1", Table::num(solve_ms, 1), "pipeline, one-shot"});
  t.row({"query", std::to_string(queries),
         Table::num(query_ms / static_cast<double>(queries), 6),
         Table::num(qps / 1e6, 2) + "M q/s"});
  t.row({"read-1thread", std::to_string(read_ops), "",
         Table::num(single_qps / 1e6, 2) + "M q/s"});
  t.row({"read-" + std::to_string(readers) + "thread",
         std::to_string(read_ops * static_cast<std::uint64_t>(readers)), "",
         Table::num(multi_qps / 1e6, 2) + "M q/s (" + Table::num(scaling, 2) +
             "x)"});
  t.row({"incremental", std::to_string(deltas), Table::num(incr_mean_ms, 3),
         "cache " + std::to_string(cache.hits) + "h/" +
             std::to_string(cache.misses) + "m"});
  t.row({"full-resolve", std::to_string(full_deltas),
         Table::num(full_mean_ms, 1), "fraction=0"});
  t.row({"read-under-resolve", std::to_string(sample_us.size()),
         Table::num(p99_ms, 3), "p99, max " + Table::num(max_ms, 3) + "ms"});
  t.row({"speedup", "", Table::num(speedup, 1), "full / incremental"});
  t.print();

  if (args.has("json")) {
    util::BenchJson json;
    json.obj()
        .field("bench", "service")
        .field("n", static_cast<std::uint64_t>(n))
        .field("m", g.num_edges())
        .field("cores", static_cast<std::uint64_t>(cores))
        .field("initial_solve_ms", solve_ms)
        .field("queries", queries)
        .field("queries_per_sec", qps)
        .field("query_checksum", checksum)
        .field("reader_threads", static_cast<std::uint64_t>(readers))
        .field("read_batch", static_cast<std::uint64_t>(read_batch))
        .field("single_reader_qps", single_qps)
        .field("multi_reader_qps", multi_qps)
        .field("reader_scaling", scaling)
        .field("read_samples_during_resolve",
               static_cast<std::uint64_t>(sample_us.size()))
        .field("read_p99_ms_during_resolve", p99_ms)
        .field("read_max_ms_during_resolve", max_ms)
        .field("deltas", static_cast<std::uint64_t>(deltas))
        .field("incremental_mean_ms", incr_mean_ms)
        .field("incremental_damaged", incr_damaged)
        .field("cache_hits", cache.hits)
        .field("cache_misses", cache.misses)
        .field("full_deltas", static_cast<std::uint64_t>(full_deltas))
        .field("full_mean_ms", full_mean_ms)
        .field("speedup", speedup);
    json.write(args.get("json", ""));
  }
  obs_session.flush();

  if (!incr.query_validate() || !full.query_validate()) {
    std::cout << "REGRESSION: a service left an invalid coloring\n";
    return 1;
  }
  if (!args.has("no-gate")) {
    if (speedup < 5.0) {
      std::cout << "REGRESSION: incremental recolor is only " << speedup
                << "x faster than a full re-solve per single-edge delta "
                   "(gate: >= 5x)\n";
      return 1;
    }
    // Reader-scaling gate: >= 8 readers must aggregate >= 4x the
    // single-thread rate. Meaningless below 4 cores — skip-pass with a
    // note so low-core hosts (and 1-core CI shards) stay green.
    if (cores >= 4 && readers >= 8) {
      if (scaling < 4.0) {
        std::cout << "REGRESSION: " << readers
                  << " reader threads aggregate only " << scaling
                  << "x single-thread read throughput (gate: >= 4x on "
                  << cores << " cores)\n";
        return 1;
      }
    } else {
      std::cout << "note: reader-scaling gate skipped (cores=" << cores
                << ", readers=" << readers
                << "; needs >= 4 cores and >= 8 readers) — measured "
                << scaling << "x\n";
    }
    // Bounded-latency gate: a reader must never be stalled for the
    // duration of an in-flight full re-solve (seconds); p99 stays in
    // scheduler-noise territory.
    if (sample_us.empty() || p99_ms > 250.0) {
      std::cout << "REGRESSION: reads during an in-flight full re-solve "
                   "show p99="
                << p99_ms << "ms over " << sample_us.size()
                << " samples (gate: non-empty, p99 <= 250ms)\n";
      return 1;
    }
  }
  std::cout << "Claim check: single-edge deltas served " << speedup
            << "x faster than per-delta full re-solves at n=" << n << "; "
            << readers << "-thread reads " << scaling
            << "x single-thread; p99 read latency " << p99_ms
            << "ms during full re-solves.\n";
  return 0;
}
