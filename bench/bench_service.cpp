// Service bench: what does coloring-as-a-service buy over re-running
// the one-shot pipeline per delta?
//
//   leg 1  query throughput      — 1M query_color round trips
//   leg 2  incremental recolor   — single-edge conflict deltas served
//                                  by the damaged-region path (cache
//                                  stats reported from the same leg)
//   leg 3  full re-solve         — the same delta shape with
//                                  full_resolve_fraction=0, i.e. the
//                                  cost of NOT being incremental
//
// Claim gate (ISSUE 9 acceptance): incremental single-edge deltas at
// n=50k must be >= 5x faster than the full-re-solve path. Exits 1 when
// the gate fails; --no-gate reports without enforcing (for small --n
// sweeps where both paths are milliseconds).
//
//   bench_service [--n N] [--p P] [--queries Q] [--deltas K]
//                 [--json out.json] [--no-gate]

#include <iostream>
#include <map>
#include <vector>

#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/service/service.hpp"
#include "pdc/util/bench_json.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/table.hpp"
#include "pdc/util/timer.hpp"

using namespace pdc;
using service::ColoringService;
using service::Mutation;

namespace {

/// The next conflict-delta candidate: two same-colored non-adjacent
/// live nodes (smallest color class first, deterministic). Inserting
/// that edge forces a 1-node damaged region.
std::pair<NodeId, NodeId> find_conflict_pair(const ColoringService& svc) {
  std::map<Color, std::vector<NodeId>> groups;
  const auto& g = svc.graph();
  for (NodeId v = 0; v < g.capacity(); ++v)
    if (g.alive(v)) groups[svc.color_of(v)].push_back(v);
  for (const auto& [c, nodes] : groups)
    for (std::size_t i = 0; i < nodes.size(); ++i)
      for (std::size_t j = i + 1; j < nodes.size() && j < i + 16; ++j)
        if (!g.has_edge(nodes[i], nodes[j])) return {nodes[i], nodes[j]};
  return {kInvalidNode, kInvalidNode};
}

/// Mean wall ms per single-edge conflict delta on `svc`.
double time_conflict_deltas(ColoringService& svc, int deltas,
                            std::uint64_t& damaged_total) {
  double total_ms = 0.0;
  for (int k = 0; k < deltas; ++k) {
    auto [u, v] = find_conflict_pair(svc);
    PDC_CHECK_MSG(u != kInvalidNode, "no conflict pair left at delta " << k);
    const std::uint64_t t0 = Timer::now_us();
    service::MutationResult r = svc.apply(Mutation::insert_edge(u, v));
    total_ms += static_cast<double>(Timer::now_us() - t0) / 1000.0;
    PDC_CHECK_MSG(r.valid, "delta " << k << " left an invalid coloring");
    damaged_total += r.damaged;
  }
  return total_ms / deltas;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  const NodeId n = static_cast<NodeId>(args.get_int("n", 50000));
  const double p = args.get_double("p", 0.0004);
  const std::uint64_t queries = args.get_int("queries", 1'000'000);
  const int deltas = static_cast<int>(args.get_int("deltas", 32));
  const int full_deltas = static_cast<int>(args.get_int("full-deltas", 3));

  Graph g = gen::gnp(n, p, 1);
  D1lcInstance inst = make_degree_plus_one(g);
  std::cout << "instance: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " Delta=" << g.max_degree() << "\n";

  // Same laptop-scale calibration as pdc_solve's CLI defaults (the
  // library default of 10 seed bits costs 16x the sweep work).
  d1lc::SolverOptions opt;
  opt.l10.seed_bits = static_cast<int>(args.get_int("seed-bits", 6));

  // One pipeline solve warm-starts BOTH services, so the bench times
  // deltas, not two initial solves.
  const std::uint64_t t0 = Timer::now_us();
  d1lc::SolveResult base = d1lc::solve_d1lc(inst, opt);
  const double solve_ms = static_cast<double>(Timer::now_us() - t0) / 1000.0;
  PDC_CHECK(base.valid);

  service::ServiceConfig incr_cfg;
  incr_cfg.solver = opt;
  ColoringService incr(inst, base.coloring, incr_cfg);
  service::ServiceConfig full_cfg;
  full_cfg.solver = opt;
  full_cfg.full_resolve_fraction = 0.0;  // every delta pays a re-solve
  ColoringService full(inst, base.coloring, full_cfg);

  // --- Leg 1: query throughput. ---
  const std::uint64_t q0 = Timer::now_us();
  std::uint64_t checksum = 0;
  for (std::uint64_t i = 0; i < queries; ++i)
    checksum += incr.query_color(static_cast<NodeId>(i % n));
  const double query_ms = static_cast<double>(Timer::now_us() - q0) / 1000.0;
  const double qps = queries / (query_ms / 1000.0);

  // --- Leg 2: incremental single-edge conflict deltas (+ cache). ---
  std::uint64_t incr_damaged = 0;
  const double incr_mean_ms = time_conflict_deltas(incr, deltas, incr_damaged);
  const auto& cache = incr.stats().cache;

  // --- Leg 3: the same delta shape, forced through full re-solves. ---
  std::uint64_t full_damaged = 0;
  const double full_mean_ms =
      time_conflict_deltas(full, full_deltas, full_damaged);

  const double speedup = incr_mean_ms > 0.0 ? full_mean_ms / incr_mean_ms : 0.0;

  Table t("Service: incremental recolor vs full re-solve per delta",
          {"leg", "ops", "mean_ms", "note"});
  t.row({"initial-solve", "1", Table::num(solve_ms, 1), "pipeline, one-shot"});
  t.row({"query", std::to_string(queries),
         Table::num(query_ms / static_cast<double>(queries), 6),
         Table::num(qps / 1e6, 2) + "M q/s"});
  t.row({"incremental", std::to_string(deltas), Table::num(incr_mean_ms, 3),
         "cache " + std::to_string(cache.hits) + "h/" +
             std::to_string(cache.misses) + "m"});
  t.row({"full-resolve", std::to_string(full_deltas),
         Table::num(full_mean_ms, 1), "fraction=0"});
  t.row({"speedup", "", Table::num(speedup, 1), "full / incremental"});
  t.print();

  if (args.has("json")) {
    util::BenchJson json;
    json.obj()
        .field("bench", "service")
        .field("n", static_cast<std::uint64_t>(n))
        .field("m", g.num_edges())
        .field("initial_solve_ms", solve_ms)
        .field("queries", queries)
        .field("queries_per_sec", qps)
        .field("query_checksum", checksum)
        .field("deltas", static_cast<std::uint64_t>(deltas))
        .field("incremental_mean_ms", incr_mean_ms)
        .field("incremental_damaged", incr_damaged)
        .field("cache_hits", cache.hits)
        .field("cache_misses", cache.misses)
        .field("full_deltas", static_cast<std::uint64_t>(full_deltas))
        .field("full_mean_ms", full_mean_ms)
        .field("speedup", speedup);
    json.write(args.get("json", ""));
  }
  obs_session.flush();

  if (!incr.query_validate() || !full.query_validate()) {
    std::cout << "REGRESSION: a service left an invalid coloring\n";
    return 1;
  }
  if (!args.has("no-gate") && speedup < 5.0) {
    std::cout << "REGRESSION: incremental recolor is only " << speedup
              << "x faster than a full re-solve per single-edge delta "
                 "(gate: >= 5x)\n";
    return 1;
  }
  std::cout << "Claim check: single-edge deltas served " << speedup
            << "x faster than per-delta full re-solves at n=" << n << ".\n";
  return !args.has("no-gate") && speedup < 5.0 ? 1 : 0;
}
