// Substrate CI smoke: the thread-pool substrate must (a) return exactly
// the totals the sequential reference returns on the E7 converge-cast
// workload, and (b) actually be faster than the reference at p >= 8
// when the host has cores to parallelize across. Exits non-zero on a
// totals mismatch, on capacity violations, or on a speedup <= 1.0x;
// when the host reports fewer than 2 hardware threads the speedup gate
// is skipped (printed as such) — a single core cannot run machine
// steps concurrently, so the ratio would measure barrier overhead, not
// the substrate.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "pdc/engine/sharded/converge_cast.hpp"
#include "pdc/mpc/cluster.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/rng.hpp"
#include "pdc/util/table.hpp"
#include "pdc/util/timer.hpp"

using namespace pdc;
using engine::sharded::converge_cast_sum;

namespace {

constexpr std::uint32_t kMachines = 16;
constexpr std::size_t kWidth = 8;
constexpr int kCasts = 8;
// Per-machine shard-scoring work per cast — heavy enough that the step
// phase dominates the barriers (the regime the thread-pool exists for).
constexpr std::uint64_t kItemsPerMachine = 60000;

mpc::Config make_config(mpc::SubstrateKind kind, std::uint32_t threads) {
  mpc::Config c;
  c.n = 1 << 16;
  c.phi = 0.5;
  c.local_space_words = 4096;
  c.num_machines = kMachines;
  c.substrate = kind;
  c.substrate_threads = threads;
  return c;
}

/// Simulated shard scoring: every machine hashes its items into
/// width-wide integer partials, the exact shape ShardedSeedSearch's
/// compute rounds have.
void score_shard(mpc::MachineId m, std::int64_t* acc) {
  for (std::size_t k = 0; k < kWidth; ++k) acc[k] = 0;
  for (std::uint64_t i = 0; i < kItemsPerMachine; ++i) {
    const std::uint64_t h = mix64(hash_combine(m, i));
    acc[h % kWidth] += static_cast<std::int64_t>(h % 9) - 4;
  }
}

struct RunResult {
  std::vector<std::int64_t> totals;
  double wall_ms = 0.0;
  std::uint64_t rounds = 0;
  std::uint64_t violations = 0;
  mpc::SubstrateStats stats;
};

RunResult run(mpc::SubstrateKind kind, std::uint32_t threads) {
  mpc::Cluster cluster(make_config(kind, threads));
  RunResult r;
  const std::uint64_t t0 = Timer::now_us();
  for (int c = 0; c < kCasts; ++c) {
    auto totals = converge_cast_sum(cluster, kWidth, 4, score_shard, nullptr);
    if (c == 0) r.totals = totals;
    if (totals != r.totals) r.totals.clear();  // nondeterminism → mismatch
  }
  r.wall_ms = static_cast<double>(Timer::now_us() - t0) / 1000.0;
  r.rounds = cluster.ledger().rounds();
  r.violations = cluster.ledger().violations().size();
  r.stats = cluster.substrate_stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  RunResult seq = run(mpc::SubstrateKind::kSequential, 0);
  RunResult tp = run(mpc::SubstrateKind::kThreadPool, 0);
  const double speedup = tp.wall_ms > 0.0 ? seq.wall_ms / tp.wall_ms : 0.0;

  Table t("Substrate smoke: E7 converge-cast, sequential vs thread-pool",
          {"substrate", "wall_ms", "rounds", "step_ms", "exchange_ms",
           "barrier_ms", "speedup"});
  t.row({"sequential", Table::num(seq.wall_ms, 1),
         std::to_string(seq.rounds), Table::num(seq.stats.step_ms, 1),
         Table::num(seq.stats.exchange_ms, 1),
         Table::num(seq.stats.barrier_wait_ms, 1), "1.00"});
  t.row({"thread-pool", Table::num(tp.wall_ms, 1), std::to_string(tp.rounds),
         Table::num(tp.stats.step_ms, 1), Table::num(tp.stats.exchange_ms, 1),
         Table::num(tp.stats.barrier_wait_ms, 1), Table::num(speedup, 2)});
  t.print();

  if (seq.totals.empty() || tp.totals.empty() || seq.totals != tp.totals) {
    std::cout << "REGRESSION: thread-pool converge-cast totals differ from "
                 "the sequential reference\n";
    return 1;
  }
  if (seq.rounds != tp.rounds) {
    std::cout << "REGRESSION: ledger rounds differ across substrates ("
              << seq.rounds << " vs " << tp.rounds << ")\n";
    return 1;
  }
  if (seq.violations != 0 || tp.violations != 0) {
    std::cout << "REGRESSION: capacity violations recorded\n";
    return 1;
  }
  if (cores < 2) {
    std::cout << "Claim check: identical totals and ledgers; speedup gate\n"
                 "SKIPPED (hardware_concurrency=" << cores
              << " — one core cannot run machine steps concurrently).\n";
    return 0;
  }
  if (speedup <= 1.0) {
    std::cout << "REGRESSION: thread-pool substrate is not faster than the\n"
                 "sequential reference on " << cores << " cores (speedup "
              << speedup << "x <= 1.0x)\n";
    return 1;
  }
  std::cout << "Claim check: identical totals and ledgers, thread-pool "
            << speedup << "x faster\nthan the sequential reference on "
            << cores << " cores at p=" << kMachines << ".\n";
  return 0;
}
