// Experiment E14 — sensitivity of the "suitable constants": the paper
// (and [HKNT22]) leave ε_sparse, ε_ac and the SlackColor κ unspecified.
// This sweep shows how classification mass and end-to-end progress move
// with them, documenting the calibration DESIGN.md §5 describes.

#include <iostream>

#include "pdc/graph/generators.hpp"
#include "pdc/hknt/color_middle.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/table.hpp"

using namespace pdc;
using namespace pdc::hknt;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  Graph g = gen::core_periphery(1500, 90, 0.012, 0.3, 3);
  D1lcInstance inst = make_degree_plus_one(g);

  Table t1("E14a: eps_sparse sweep (classification + pass progress)",
           {"eps_sparse", "sparse", "uneven", "dense", "cliques",
            "colored_frac"});
  for (double eps : {0.02, 0.05, 0.10, 0.20, 0.40}) {
    MiddleOptions mo;
    mo.cfg.eps_sparse = eps;
    mo.l10.strategy = derand::SeedStrategy::kTrueRandom;
    mo.l10.defer_failures = false;
    mo.l10.true_random_seed = 7;
    derand::ColoringState state(inst.graph, inst.palettes);
    MiddleReport rep = color_middle(state, inst, mo, nullptr);
    t1.row({Table::num(eps, 2), std::to_string(rep.sparse),
            std::to_string(rep.uneven), std::to_string(rep.dense),
            std::to_string(rep.num_cliques),
            Table::num(double(rep.colored) / rep.n, 3)});
  }
  t1.print();

  Table t2("E14b: kappa sweep (SlackColor schedule length vs progress)",
           {"kappa", "procedures_run", "colored_frac"});
  for (double kappa : {0.15, 0.27, 0.5, 0.9}) {
    MiddleOptions mo;
    mo.cfg.kappa = kappa;
    mo.l10.strategy = derand::SeedStrategy::kTrueRandom;
    mo.l10.defer_failures = false;
    mo.l10.true_random_seed = 7;
    derand::ColoringState state(inst.graph, inst.palettes);
    MiddleReport rep = color_middle(state, inst, mo, nullptr);
    t2.row({Table::num(kappa, 2), std::to_string(rep.steps.size()),
            Table::num(double(rep.colored) / rep.n, 3)});
  }
  t2.print();

  Table t3("E14c: eps_ac sweep (clique tolerance vs demotions)",
           {"eps_ac", "dense", "cliques", "acd_violations"});
  for (double eps : {0.2, 0.35, 0.5, 0.8}) {
    HkntConfig cfg;
    cfg.eps_ac = eps;
    NodeParams p = compute_params(inst, nullptr);
    Acd acd = compute_acd(inst, p, cfg, nullptr);
    AcdViolations viol = check_acd(inst, p, acd, cfg);
    std::uint64_t dense = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) dense += acd.is_dense(v);
    t3.row({Table::num(eps, 2), std::to_string(dense),
            std::to_string(acd.num_cliques), std::to_string(viol.total())});
  }
  t3.print();

  std::cout << "Claim check: progress is robust across a wide band of each\n"
               "constant (the 'suitable constants' of the paper are not\n"
               "knife-edge); extremes shift mass between the sparse and\n"
               "dense pipelines as the definitions predict.\n";
  return 0;
}
