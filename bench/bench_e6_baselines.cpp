// Experiment E6 — baseline comparison: the deterministic pipeline solves
// exactly what the randomized one (and classical baselines) solve, with
// deterministic output. Reports wall time, colors used and validity for
// greedy, Jones–Plassmann, randomized MPC and deterministic MPC across
// instance families.

#include <iostream>

#include "pdc/baseline/greedy.hpp"
#include "pdc/baseline/jones_plassmann.hpp"
#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/table.hpp"
#include "pdc/util/timer.hpp"

using namespace pdc;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  Table t("E6: algorithm comparison across instance families",
          {"instance", "algorithm", "wall_ms", "colors", "valid"});

  struct Inst {
    std::string name;
    D1lcInstance inst;
  };
  std::vector<Inst> instances;
  {
    Graph g = gen::gnp(4000, 0.004, 3);
    instances.push_back({"gnp-4000", make_degree_plus_one(g)});
  }
  {
    Graph g = gen::planted_cliques(10, 24, 0.5, 5).graph;
    instances.push_back({"cliques-240", make_degree_plus_one(g)});
  }
  {
    Graph g = gen::power_law(2000, 2.5, 10.0, 7);
    instances.push_back(
        {"powerlaw-2000",
         make_random_lists(g, static_cast<Color>(g.max_degree()) + 20, 4, 9)});
  }

  for (auto& [name, inst] : instances) {
    {
      Timer timer;
      Coloring c = baseline::greedy_d1lc(inst, baseline::GreedyOrder::kIndex);
      t.row({name, "greedy", Table::num(timer.millis(), 1),
             std::to_string(count_colors_used(c)),
             check_coloring(inst, c).complete_proper() ? "yes" : "NO"});
    }
    {
      Timer timer;
      Coloring c =
          baseline::greedy_d1lc(inst, baseline::GreedyOrder::kDegeneracy);
      t.row({name, "greedy-degeneracy", Table::num(timer.millis(), 1),
             std::to_string(count_colors_used(c)),
             check_coloring(inst, c).complete_proper() ? "yes" : "NO"});
    }
    {
      Timer timer;
      auto r = baseline::jones_plassmann(inst, 17);
      t.row({name, "jones-plassmann", Table::num(timer.millis(), 1),
             std::to_string(count_colors_used(r.coloring)),
             check_coloring(inst, r.coloring).complete_proper() ? "yes"
                                                                : "NO"});
    }
    {
      Timer timer;
      d1lc::SolverOptions opt;
      opt.mode = d1lc::Mode::kRandomized;
      auto r = solve_d1lc(inst, opt);
      t.row({name, "mpc-randomized", Table::num(timer.millis(), 1),
             std::to_string(count_colors_used(r.coloring)),
             r.valid ? "yes" : "NO"});
    }
    {
      Timer timer;
      d1lc::SolverOptions opt;
      opt.mode = d1lc::Mode::kDeterministic;
      opt.l10.seed_bits = 5;
      auto r = solve_d1lc(inst, opt);
      t.row({name, "mpc-deterministic", Table::num(timer.millis(), 1),
             std::to_string(count_colors_used(r.coloring)),
             r.valid ? "yes" : "NO"});
    }
  }
  t.print();
  std::cout << "Claim check: every algorithm valid on every family; the\n"
               "deterministic pipeline pays a constant-factor wall-time\n"
               "premium (seed search) but matches the randomized pipeline's\n"
               "output quality — determinism is the deliverable, not speed.\n";
  return 0;
}
