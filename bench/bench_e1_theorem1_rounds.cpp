// Experiment E1 — Theorem 1: deterministic D1LC in O(log log log n) MPC
// rounds with local space s = n^phi and global space O(m + n^{1+phi}).
//
// We sweep n at fixed expected degree and report the charged MPC rounds,
// their growth ratio (which should flatten out — log log log n is
// essentially constant at these scales), peak local space against the
// budget, validity, and the per-phase round attribution at the largest n.

#include <iostream>

#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/bench_json.hpp"
#include "pdc/util/cli.hpp"
#include "pdc/util/table.hpp"
#include "pdc/util/timer.hpp"

using namespace pdc;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  obs::CliSession obs_session(args);
  util::BenchJson json;
  Table t("E1 / Theorem 1: deterministic D1LC rounds vs n",
          {"n", "m", "Delta", "rounds", "ratio_vs_prev", "peak_local",
           "space_budget", "valid", "seed_evals", "sweeps", "batch",
           "wall_ms"});

  std::uint64_t prev_rounds = 0;
  std::string regression;
  d1lc::SolverOptions opt;
  opt.mode = d1lc::Mode::kDeterministic;
  opt.l10.seed_bits = 5;
  opt.middle_passes = 2;

  mpc::Ledger last_ledger;
  for (NodeId n : {500u, 1000u, 2000u, 4000u, 8000u}) {
    Graph g = gen::gnp(n, 16.0 / static_cast<double>(n), 42);
    D1lcInstance inst = make_degree_plus_one(g);
    Timer timer;
    d1lc::SolveResult r = solve_d1lc(inst, opt);
    double ratio = prev_rounds
                       ? static_cast<double>(r.ledger.rounds()) /
                             static_cast<double>(prev_rounds)
                       : 1.0;
    prev_rounds = r.ledger.rounds();
    mpc::Config mcfg = mpc::Config::sublinear(
        n, opt.phi, g.num_edges() * 2 + inst.palettes.total_size(),
        opt.space_headroom);
    t.row({std::to_string(n), std::to_string(g.num_edges()),
           std::to_string(g.max_degree()), std::to_string(r.ledger.rounds()),
           Table::num(ratio, 2), std::to_string(r.ledger.peak_local_space()),
           std::to_string(mcfg.local_space_words),
           r.valid ? "yes" : "NO",
           std::to_string(r.seed_search.evaluations),
           std::to_string(r.seed_search.sweeps),
           std::to_string(r.seed_search.batch),
           Table::num(timer.millis(), 1)});
    json.obj()
        .field("n", static_cast<std::uint64_t>(n))
        .field("m", static_cast<std::uint64_t>(g.num_edges()))
        .field("max_degree", static_cast<std::uint64_t>(g.max_degree()))
        .field("rounds", r.ledger.rounds())
        .field("ratio_vs_prev", ratio)
        .field("peak_local", r.ledger.peak_local_space())
        .field("space_budget", mcfg.local_space_words)
        .field("valid", r.valid)
        .field("seed_evals", r.seed_search.evaluations)
        .field("sweeps", r.seed_search.sweeps)
        .field("batch", r.seed_search.batch)
        .field("wall_ms", timer.millis());
    last_ledger = r.ledger;
    // Sweep budget (the bench_e10 discipline): the engine's batched
    // item-major sweeps must aggregate many evaluations per pass — a
    // sweep count at or above the evaluation count means the run fell
    // back to the pre-engine one-pass-per-seed behavior. Detected here,
    // reported after the tables so a CI failure still shows the full
    // per-n accounting.
    if (regression.empty() && r.seed_search.evaluations > 0 &&
        r.seed_search.sweeps >= r.seed_search.evaluations) {
      regression = "REGRESSION: engine sweeps (" +
                   std::to_string(r.seed_search.sweeps) +
                   ") not below evaluations (" +
                   std::to_string(r.seed_search.evaluations) +
                   ") at n=" + std::to_string(n);
    }
  }
  t.print();

  Table p("E1 round attribution by phase (largest n)", {"phase", "rounds"});
  for (auto& [phase, rounds] : last_ledger.rounds_by_phase()) {
    p.row({phase, std::to_string(rounds)});
    json.obj().field("phase", phase).field("phase_rounds", rounds);
  }
  p.print();

  if (obs_session.metrics()) last_ledger.publish(obs::Metrics::global());
  if (args.has("json")) json.write(args.get("json", ""));

  if (!regression.empty()) {
    std::cout << regression << "\n";
    return 1;
  }

  std::cout << "Claim check: ratio_vs_prev should stay near 1 (rounds are\n"
               "~log log log n, i.e. effectively flat while n doubles) and\n"
               "every row must be valid with peak_local <= space_budget.\n";
  return 0;
}
