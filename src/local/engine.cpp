#include "pdc/local/engine.hpp"

#include "pdc/util/parallel.hpp"

namespace pdc::local {

void Engine::round(const StepFn& step) {
  const NodeId n = g_->num_nodes();
  parallel_for(n, [&](std::size_t v) {
    Context ctx(*this, static_cast<NodeId>(v));
    step(ctx);
  });
  // Deliver: clear inboxes, then route queued sends (serial per dest to
  // stay race-free; message volume here is O(m) per round).
  for (auto& ib : inbox_) ib.clear();
  for (NodeId v = 0; v < n; ++v) {
    for (auto& [to, msg] : outbox_[v]) {
      inbox_[to].push_back(std::move(msg));
    }
    outbox_[v].clear();
  }
  ++rounds_;
}

}  // namespace pdc::local
