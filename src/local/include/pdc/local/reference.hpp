#pragma once
// Message-passing reference implementations of the coloring trials on
// the LOCAL engine.
//
// The production procedures (pdc/hknt/procedures.hpp) simulate their
// LOCAL semantics with shared arrays for speed. These reference versions
// run the *actual* message exchanges of Algorithms 3 and 4 — pick,
// send to neighbors, receive conflict set, commit, announce — and exist
// so tests can cross-check the array semantics (conflict freedom,
// success-rate agreement) against the model-faithful execution.

#include <cstdint>
#include <vector>

#include "pdc/graph/coloring.hpp"
#include "pdc/graph/palette.hpp"

namespace pdc::local {

struct TrialResult {
  Coloring committed;            // kNoColor where the node failed
  std::uint64_t engine_rounds = 0;
};

/// Algorithm 3 (TryRandomColor) over the engine: one pick round, one
/// conflict round, one announce round. `coloring` holds pre-existing
/// colors (those nodes do not participate; their colors block palettes).
TrialResult try_random_color_local(const Graph& g, const PaletteSet& palettes,
                                   const Coloring& coloring,
                                   std::uint64_t seed);

/// Algorithm 4 (MultiTrial(x)) over the engine.
TrialResult multi_trial_local(const Graph& g, const PaletteSet& palettes,
                              const Coloring& coloring, std::uint32_t x,
                              std::uint64_t seed);

}  // namespace pdc::local
