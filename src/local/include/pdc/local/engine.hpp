#pragma once
// Synchronous LOCAL-model engine.
//
// The LOCAL model: per round, every node performs local computation and
// exchanges one message with each neighbor; there is no bandwidth limit.
// Node steps run OpenMP-parallel with double-buffered mailboxes, so a
// node always reads messages from the *previous* round — exactly the
// synchronous semantics the HKNT22 pseudocode assumes.
//
// This engine hosts the message-level reference implementations used by
// tests to cross-check the array-based NormalProcedure simulations, and
// the Luby-MIS exemplar of Definition 5.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pdc/graph/graph.hpp"

namespace pdc::local {

/// One message: sender plus a small word payload.
struct Message {
  NodeId from = kInvalidNode;
  std::vector<std::int64_t> payload;
};

class Engine {
 public:
  explicit Engine(const Graph& g) : g_(&g), inbox_(g.num_nodes()),
                                    outbox_(g.num_nodes()) {}

  const Graph& graph() const { return *g_; }

  /// Node step: reads its inbox (messages delivered from last round),
  /// queues sends for this round via `send`/`broadcast`.
  class Context {
   public:
    Context(Engine& e, NodeId v) : e_(&e), v_(v) {}
    NodeId self() const { return v_; }
    std::span<const Message> inbox() const { return e_->inbox_[v_]; }
    void send(NodeId to, std::vector<std::int64_t> payload) {
      e_->outbox_[v_].push_back({to, {v_, std::move(payload)}});
    }
    void broadcast(std::vector<std::int64_t> payload) {
      for (NodeId u : e_->g_->neighbors(v_)) send(u, payload);
    }

   private:
    Engine* e_;
    NodeId v_;
  };

  using StepFn = std::function<void(Context&)>;

  /// Run one synchronous round for all nodes.
  void round(const StepFn& step);

  std::uint64_t rounds_run() const { return rounds_; }

 private:
  const Graph* g_;
  std::vector<std::vector<Message>> inbox_;
  // Queued sends: (dest, message), per sender to stay race-free.
  std::vector<std::vector<std::pair<NodeId, Message>>> outbox_;
  std::uint64_t rounds_ = 0;
};

}  // namespace pdc::local
