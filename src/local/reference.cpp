#include "pdc/local/reference.hpp"

#include <algorithm>

#include "pdc/local/engine.hpp"
#include "pdc/util/rng.hpp"

namespace pdc::local {

namespace {

std::vector<Color> available(const Graph& g, const PaletteSet& palettes,
                             const Coloring& coloring, NodeId v) {
  std::vector<Color> blocked;
  for (NodeId u : g.neighbors(v))
    if (coloring[u] != kNoColor) blocked.push_back(coloring[u]);
  std::sort(blocked.begin(), blocked.end());
  std::vector<Color> out;
  for (Color c : palettes.palette(v))
    if (!std::binary_search(blocked.begin(), blocked.end(), c))
      out.push_back(c);
  return out;
}

}  // namespace

TrialResult try_random_color_local(const Graph& g, const PaletteSet& palettes,
                                   const Coloring& coloring,
                                   std::uint64_t seed) {
  Engine engine(g);
  const NodeId n = g.num_nodes();
  std::vector<Color> pick(n, kNoColor);

  // Round 1: pick ψ_v u.a.r. from the current palette, send to all
  // conflicting (uncolored) neighbors.
  engine.round([&](Engine::Context& ctx) {
    NodeId v = ctx.self();
    if (coloring[v] != kNoColor) return;
    auto avail = available(g, palettes, coloring, v);
    if (avail.empty()) return;
    auto rng = substream(seed, v);
    pick[v] = avail[rng.below(avail.size())];
    ctx.broadcast({pick[v]});
  });

  // Round 2: receive the conflict set T; commit iff ψ_v ∉ T; announce
  // the permanent color (the announcement round exists in Algorithm 3;
  // receivers would prune palettes — our caller recomputes instead).
  TrialResult out;
  out.committed.assign(n, kNoColor);
  engine.round([&](Engine::Context& ctx) {
    NodeId v = ctx.self();
    if (pick[v] == kNoColor) return;
    for (const auto& m : ctx.inbox()) {
      if (!m.payload.empty() && m.payload[0] == pick[v]) return;
    }
    out.committed[v] = pick[v];
    ctx.broadcast({pick[v]});
  });
  engine.round([](Engine::Context&) {});  // announcement delivery
  out.engine_rounds = engine.rounds_run();
  return out;
}

TrialResult multi_trial_local(const Graph& g, const PaletteSet& palettes,
                              const Coloring& coloring, std::uint32_t x,
                              std::uint64_t seed) {
  Engine engine(g);
  const NodeId n = g.num_nodes();
  std::vector<std::vector<Color>> picks(n);

  engine.round([&](Engine::Context& ctx) {
    NodeId v = ctx.self();
    if (coloring[v] != kNoColor) return;
    auto avail = available(g, palettes, coloring, v);
    auto rng = substream(seed, v);
    // Partial Fisher–Yates sample of min(x, |avail|) colors.
    std::uint32_t want = std::min<std::uint32_t>(
        x, static_cast<std::uint32_t>(avail.size()));
    for (std::uint32_t i = 0; i < want; ++i) {
      std::uint64_t j = i + rng.below(avail.size() - i);
      std::swap(avail[i], avail[j]);
    }
    avail.resize(want);
    std::sort(avail.begin(), avail.end());
    picks[v] = avail;
    std::vector<std::int64_t> payload(picks[v].begin(), picks[v].end());
    ctx.broadcast(std::move(payload));
  });

  TrialResult out;
  out.committed.assign(n, kNoColor);
  engine.round([&](Engine::Context& ctx) {
    NodeId v = ctx.self();
    if (picks[v].empty()) return;
    // Union of neighbors' sampled sets.
    std::vector<Color> taken;
    for (const auto& m : ctx.inbox())
      taken.insert(taken.end(), m.payload.begin(), m.payload.end());
    std::sort(taken.begin(), taken.end());
    for (Color c : picks[v]) {
      if (!std::binary_search(taken.begin(), taken.end(), c)) {
        out.committed[v] = c;
        break;
      }
    }
  });
  out.engine_rounds = engine.rounds_run();
  return out;
}

}  // namespace pdc::local
