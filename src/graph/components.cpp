#include "pdc/graph/components.hpp"

#include <algorithm>

namespace pdc {

Components connected_components(const Graph& g,
                                const std::vector<std::uint8_t>* mask) {
  const NodeId n = g.num_nodes();
  Components out;
  out.component_of.assign(n, Components::kNoComponent);
  auto in_mask = [&](NodeId v) { return mask == nullptr || mask->empty() || (*mask)[v] != 0; };

  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (!in_mask(start) ||
        out.component_of[start] != Components::kNoComponent) {
      continue;
    }
    const std::uint32_t id = out.count++;
    std::uint32_t size = 0;
    stack.push_back(start);
    out.component_of[start] = id;
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      ++size;
      for (NodeId u : g.neighbors(v)) {
        if (in_mask(u) && out.component_of[u] == Components::kNoComponent) {
          out.component_of[u] = id;
          stack.push_back(u);
        }
      }
    }
    out.sizes.push_back(size);
    out.largest = std::max(out.largest, size);
  }
  return out;
}

}  // namespace pdc
