#include "pdc/graph/coloring.hpp"

#include <algorithm>

#include "pdc/util/parallel.hpp"

namespace pdc {

ColoringCheck check_coloring(const Graph& g, std::span<const Color> coloring,
                             const PaletteSet* palettes) {
  PDC_CHECK(coloring.size() == g.num_nodes());
  ColoringCheck out;
  out.uncolored =
      parallel_count(g.num_nodes(), [&](std::size_t v) {
        return coloring[v] == kNoColor;
      });
  out.monochromatic_edges =
      parallel_count(g.num_nodes(), [&](std::size_t v) {
        if (coloring[v] == kNoColor) return false;
        for (NodeId u : g.neighbors(static_cast<NodeId>(v))) {
          // Count each edge once from its lower endpoint.
          if (u > v && coloring[u] == coloring[v]) return true;
        }
        return false;
      });
  // The count above flags nodes, not edges; recount exactly (edges can be
  // multiple per node). Cheap second pass only if the flag pass found any.
  if (out.monochromatic_edges > 0) {
    std::uint64_t exact = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (coloring[v] == kNoColor) continue;
      for (NodeId u : g.neighbors(v))
        if (u > v && coloring[u] == coloring[v]) ++exact;
    }
    out.monochromatic_edges = exact;
  }
  if (palettes != nullptr) {
    out.palette_violations = parallel_count(g.num_nodes(), [&](std::size_t v) {
      return coloring[v] != kNoColor &&
             !palettes->contains(static_cast<NodeId>(v), coloring[v]);
    });
  }
  return out;
}

bool is_proper_coloring(const Graph& g, std::span<const Color> coloring,
                        const PaletteSet* palettes) {
  return check_coloring(g, coloring, palettes).complete_proper();
}

bool validate_partial(const Graph& g, std::span<const Color> coloring,
                      std::span<const NodeId> region,
                      const PaletteSet* palettes) {
  PDC_CHECK(coloring.size() == g.num_nodes());
  for (NodeId v : region) {
    PDC_CHECK(v < g.num_nodes());
    if (coloring[v] == kNoColor) return false;
    if (palettes != nullptr && !palettes->contains(v, coloring[v]))
      return false;
    for (NodeId u : g.neighbors(v))
      if (coloring[u] == coloring[v]) return false;
  }
  return true;
}

std::uint64_t count_colors_used(std::span<const Color> coloring) {
  std::vector<Color> used(coloring.begin(), coloring.end());
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  std::uint64_t n = used.size();
  if (!used.empty() && used.front() == kNoColor) --n;
  return n;
}

void lift_coloring(std::span<const NodeId> to_parent,
                   std::span<const Color> sub_coloring, Coloring& parent) {
  PDC_CHECK(to_parent.size() == sub_coloring.size());
  for (std::size_t i = 0; i < to_parent.size(); ++i) {
    if (sub_coloring[i] != kNoColor) parent[to_parent[i]] = sub_coloring[i];
  }
}

}  // namespace pdc
