#include "pdc/graph/palette.hpp"

#include <algorithm>

#include "pdc/util/parallel.hpp"
#include "pdc/util/rng.hpp"

namespace pdc {

PaletteSet PaletteSet::from_lists(std::vector<std::vector<Color>> lists) {
  PaletteSet ps;
  ps.offsets_.assign(lists.size() + 1, 0);
  for (std::size_t v = 0; v < lists.size(); ++v) {
    auto& l = lists[v];
    std::sort(l.begin(), l.end());
    l.erase(std::unique(l.begin(), l.end()), l.end());
    ps.offsets_[v + 1] = ps.offsets_[v] + l.size();
  }
  ps.colors_.resize(ps.offsets_.back());
  for (std::size_t v = 0; v < lists.size(); ++v) {
    std::copy(lists[v].begin(), lists[v].end(),
              ps.colors_.begin() + static_cast<std::ptrdiff_t>(ps.offsets_[v]));
  }
  return ps;
}

bool PaletteSet::contains(NodeId v, Color c) const {
  auto p = palette(v);
  return std::binary_search(p.begin(), p.end(), c);
}

NodeId D1lcInstance::first_palette_violation() const {
  PDC_CHECK(palettes.num_nodes() == graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (palettes.size(v) < graph.degree(v) + 1) return v;
  }
  return kInvalidNode;
}

D1lcInstance make_delta_plus_one(const Graph& g) {
  const Color top = static_cast<Color>(g.max_degree());
  std::vector<std::vector<Color>> lists(g.num_nodes());
  for (auto& l : lists) {
    l.resize(static_cast<std::size_t>(top) + 1);
    for (Color c = 0; c <= top; ++c) l[static_cast<std::size_t>(c)] = c;
  }
  return {g, PaletteSet::from_lists(std::move(lists))};
}

D1lcInstance make_degree_plus_one(const Graph& g) {
  std::vector<std::vector<Color>> lists(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    lists[v].resize(g.degree(v) + 1);
    for (std::uint32_t c = 0; c <= g.degree(v); ++c)
      lists[v][c] = static_cast<Color>(c);
  }
  return {g, PaletteSet::from_lists(std::move(lists))};
}

D1lcInstance make_random_lists(const Graph& g, Color universe,
                               std::uint32_t extra, std::uint64_t seed) {
  PDC_CHECK_MSG(universe >= static_cast<Color>(g.max_degree() + 1 + extra),
                "universe too small for degree+1+extra lists");
  std::vector<std::vector<Color>> lists(g.num_nodes());
  parallel_for(g.num_nodes(), [&](std::size_t v) {
    auto rng = substream(seed, v);
    const std::uint32_t want = g.degree(static_cast<NodeId>(v)) + 1 + extra;
    // Floyd's sampling of `want` distinct values from [0, universe).
    std::vector<Color> sample;
    sample.reserve(want);
    for (Color j = universe - static_cast<Color>(want); j < universe; ++j) {
      Color t = static_cast<Color>(rng.below(static_cast<std::uint64_t>(j) + 1));
      if (std::find(sample.begin(), sample.end(), t) == sample.end()) {
        sample.push_back(t);
      } else {
        sample.push_back(j);
      }
    }
    lists[v] = std::move(sample);
  });
  return {g, PaletteSet::from_lists(std::move(lists))};
}

ResidualInstance residual(const Graph& g, const PaletteSet& palettes,
                          std::span<const Color> coloring) {
  PDC_CHECK(coloring.size() == g.num_nodes());
  std::vector<NodeId> uncolored;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (coloring[v] == kNoColor) uncolored.push_back(v);

  InducedSubgraph sub = induce(g, uncolored);
  std::vector<std::vector<Color>> lists(sub.to_parent.size());
  parallel_for(sub.to_parent.size(), [&](std::size_t i) {
    NodeId p = sub.to_parent[i];
    auto pal = palettes.palette(p);
    std::vector<Color> blocked;
    for (NodeId u : g.neighbors(p))
      if (coloring[u] != kNoColor) blocked.push_back(coloring[u]);
    std::sort(blocked.begin(), blocked.end());
    std::vector<Color> keep;
    keep.reserve(pal.size());
    for (Color c : pal)
      if (!std::binary_search(blocked.begin(), blocked.end(), c))
        keep.push_back(c);
    lists[i] = std::move(keep);
  });
  ResidualInstance out;
  out.instance.graph = std::move(sub.graph);
  out.instance.palettes = PaletteSet::from_lists(std::move(lists));
  out.to_parent = std::move(sub.to_parent);
  return out;
}

}  // namespace pdc
