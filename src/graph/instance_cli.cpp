#include "pdc/graph/instance_cli.hpp"

#include <algorithm>

#include "pdc/graph/generators.hpp"
#include "pdc/graph/io.hpp"

namespace pdc::io {

Graph make_cli_graph(const CliArgs& args, const CliGraphDefaults& dflt) {
  if (args.has("graph")) return load_graph(args.get("graph", ""));
  const std::string kind = args.get("gen", dflt.kind);
  const NodeId n = static_cast<NodeId>(
      args.get_int("n", static_cast<std::int64_t>(dflt.n)));
  const double p = args.get_double("p", dflt.p);
  const std::uint32_t d =
      static_cast<std::uint32_t>(args.get_int("d", dflt.d));
  const std::uint64_t seed =
      args.get_int("gen-seed", static_cast<std::int64_t>(dflt.seed));

  if (kind == "gnp") return gen::gnp(n, p, seed);
  if (kind == "regular") return gen::near_regular(n, d, seed);
  if (kind == "cliques")
    return gen::planted_cliques(std::max<NodeId>(2, n / 20), 20, 0.3, seed)
        .graph;
  if (kind == "powerlaw") return gen::power_law(n, 2.5, 8.0, seed);
  if (kind == "smallworld") return gen::small_world(n, d, 0.1, seed);
  if (kind == "ba") return gen::preferential_attachment(n, d, seed);
  if (kind == "tree") return gen::random_tree(n, seed);
  if (kind == "grid") {
    NodeId side = 1;
    while ((side + 1) * (side + 1) <= n) ++side;
    return gen::grid(side, side);
  }
  if (kind == "hypercube") {
    int dims = 1;
    while ((NodeId{1} << (dims + 1)) <= n) ++dims;
    return gen::hypercube(dims);
  }
  if (kind == "core") return gen::core_periphery(n, n / 10, p, 0.3, seed);
  PDC_CHECK_MSG(false, "unknown --gen " << kind
                       << " (gnp|regular|cliques|powerlaw|smallworld|ba|"
                          "tree|grid|hypercube|core)");
}

D1lcInstance make_cli_instance(const CliArgs& args,
                               const CliGraphDefaults& dflt) {
  if (args.has("instance")) return load_instance(args.get("instance", ""));
  Graph g = make_cli_graph(args, dflt);
  const std::uint32_t extra =
      static_cast<std::uint32_t>(args.get_int("extra", 0));
  const std::uint64_t seed =
      args.get_int("gen-seed", static_cast<std::int64_t>(dflt.seed));
  if (extra > 0) {
    return make_random_lists(g, static_cast<Color>(g.max_degree()) + 2 * extra,
                             extra, seed + 1);
  }
  return make_degree_plus_one(g);
}

const char* cli_graph_help() {
  return "  --graph F | --instance F | --gen KIND   input selection\n"
         "  --n N --p P --d D --gen-seed S --extra K generator knobs\n"
         "  kinds: gnp regular cliques powerlaw smallworld ba tree grid\n"
         "         hypercube core\n";
}

PaletteSet pad_lists_to_degree_plus_one(const Graph& g,
                                        std::vector<std::vector<Color>> lists,
                                        Color first_overflow) {
  PDC_CHECK(lists.size() == g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    Color overflow = first_overflow;
    while (lists[v].size() < g.degree(v) + 1) {
      // Overflow colors must be fresh per node, or dedup inside
      // from_lists would leave the list short of degree+1.
      if (std::find(lists[v].begin(), lists[v].end(), overflow) ==
          lists[v].end())
        lists[v].push_back(overflow);
      ++overflow;
    }
  }
  return PaletteSet::from_lists(std::move(lists));
}

}  // namespace pdc::io
