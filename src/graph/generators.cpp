#include "pdc/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "pdc/util/check.hpp"
#include "pdc/util/rng.hpp"

namespace pdc::gen {

namespace {
using EdgeList = std::vector<std::pair<NodeId, NodeId>>;
}  // namespace

Graph gnp(NodeId n, double p, std::uint64_t seed) {
  PDC_CHECK(p >= 0.0 && p <= 1.0);
  EdgeList edges;
  if (p > 0 && n > 1) {
    Xoshiro256 rng(seed);
    // Skip-sampling (geometric jumps) over the n*(n-1)/2 pair indices.
    const double log1mp = std::log1p(-p);
    std::uint64_t total =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    std::uint64_t idx = 0;
    if (p >= 1.0) {
      return complete(n);
    }
    while (true) {
      double u = (static_cast<double>(rng()) + 1.0) / 18446744073709551616.0;
      std::uint64_t skip =
          static_cast<std::uint64_t>(std::floor(std::log(u) / log1mp));
      idx += skip;
      if (idx >= total) break;
      // Invert pair index -> (i, j), i < j, row-major over the upper
      // triangle: row r holds n-1-r pairs and starts at
      // r(n-1) - r(r-1)/2.
      auto row_start = [&](std::uint64_t r) {
        return r * (n - 1) - r * (r - 1) / 2;
      };
      std::uint64_t i = static_cast<std::uint64_t>(std::min<double>(
          static_cast<double>(n) - 2.0,
          std::max(0.0,
                   static_cast<double>(n) - 1.5 -
                       std::sqrt(std::max(
                           0.0, (static_cast<double>(n) - 0.5) *
                                        (static_cast<double>(n) - 1.5) -
                                    2.0 * static_cast<double>(idx))))));
      // Correct floating-point drift at the boundaries.
      while (i > 0 && row_start(i) > idx) --i;
      while (i + 2 < n && row_start(i + 1) <= idx) ++i;
      std::uint64_t j = idx - row_start(i) + i + 1;
      PDC_CHECK(i < j && j < n);
      edges.emplace_back(static_cast<NodeId>(i), static_cast<NodeId>(j));
      ++idx;
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph near_regular(NodeId n, std::uint32_t d, std::uint64_t seed) {
  PDC_CHECK(n >= 2);
  EdgeList edges;
  Xoshiro256 rng(seed);
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  // d superimposed random near-perfect matchings: shuffle and pair up.
  for (std::uint32_t r = 0; r < d; ++r) {
    std::shuffle(perm.begin(), perm.end(), rng);
    for (NodeId i = 0; i + 1 < n; i += 2) edges.emplace_back(perm[i], perm[i + 1]);
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph complete(NodeId n) {
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  return Graph::from_edges(n, std::move(edges));
}

Graph cycle(NodeId n) {
  PDC_CHECK(n >= 3);
  EdgeList edges;
  edges.reserve(n);
  for (NodeId i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return Graph::from_edges(n, std::move(edges));
}

Graph grid(NodeId rows, NodeId cols) {
  EdgeList edges;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph::from_edges(rows * cols, std::move(edges));
}

Graph star(NodeId n) {
  PDC_CHECK(n >= 2);
  EdgeList edges;
  for (NodeId i = 1; i < n; ++i) edges.emplace_back(0, i);
  return Graph::from_edges(n, std::move(edges));
}

PlantedCliques planted_cliques(NodeId num_cliques, NodeId clique_size,
                               double noise_p, std::uint64_t seed) {
  const NodeId n = num_cliques * clique_size;
  EdgeList edges;
  PlantedCliques out;
  out.clique_of.resize(n);
  for (NodeId c = 0; c < num_cliques; ++c) {
    const NodeId base = c * clique_size;
    for (NodeId i = 0; i < clique_size; ++i) {
      out.clique_of[base + i] = c;
      for (NodeId j = i + 1; j < clique_size; ++j)
        edges.emplace_back(base + i, base + j);
    }
  }
  if (noise_p > 0 && num_cliques > 1) {
    Xoshiro256 rng(seed);
    // Sample expected noise_p * n inter-clique edges.
    std::uint64_t tries = static_cast<std::uint64_t>(
        noise_p * static_cast<double>(n) + 1);
    for (std::uint64_t t = 0; t < tries; ++t) {
      NodeId u = static_cast<NodeId>(rng.below(n));
      NodeId v = static_cast<NodeId>(rng.below(n));
      if (u != v && out.clique_of[u] != out.clique_of[v])
        edges.emplace_back(u, v);
    }
  }
  out.graph = Graph::from_edges(n, std::move(edges));
  return out;
}

Graph power_law(NodeId n, double beta, double avg_degree,
                std::uint64_t seed) {
  PDC_CHECK(beta > 2.0);
  std::vector<double> w(n);
  for (NodeId i = 0; i < n; ++i)
    w[i] = std::pow(static_cast<double>(i) + 1.0, -1.0 / (beta - 1.0));
  double sum_w = std::accumulate(w.begin(), w.end(), 0.0);
  // Scale so the expected average degree matches.
  double scale = avg_degree * static_cast<double>(n) / (sum_w * sum_w);
  Xoshiro256 rng(seed);
  EdgeList edges;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      double p = std::min(1.0, scale * w[i] * w[j]);
      // Fast skip for the (dominant) tiny-p tail: bail to skip-sampling
      // within the row once p is uniformly small would complicate the
      // weight coupling; n used with this generator is <= ~20k.
      if (p >= 1.0 ||
          static_cast<double>(rng()) / 18446744073709551616.0 < p) {
        edges.emplace_back(i, j);
      }
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph clique_barbell(NodeId k, NodeId len) {
  PDC_CHECK(k >= 2);
  const NodeId n = 2 * k + len;
  EdgeList edges;
  for (NodeId i = 0; i < k; ++i)
    for (NodeId j = i + 1; j < k; ++j) {
      edges.emplace_back(i, j);                  // left clique
      edges.emplace_back(k + len + i, k + len + j);  // right clique
    }
  // Path bridging node k-1 ... k+len ... k+len (first node of right clique).
  NodeId prev = k - 1;
  for (NodeId i = 0; i < len; ++i) {
    edges.emplace_back(prev, k + i);
    prev = k + i;
  }
  edges.emplace_back(prev, k + len);
  return Graph::from_edges(n, std::move(edges));
}

Graph core_periphery(NodeId n, NodeId core_size, double periphery_p,
                     double attach_p, std::uint64_t seed) {
  PDC_CHECK(core_size <= n);
  EdgeList edges;
  for (NodeId i = 0; i < core_size; ++i)
    for (NodeId j = i + 1; j < core_size; ++j) edges.emplace_back(i, j);
  Xoshiro256 rng(seed);
  const NodeId np = n - core_size;
  if (np > 1 && periphery_p > 0) {
    Graph periphery = gnp(np, periphery_p, hash_combine(seed, 1));
    for (NodeId v = 0; v < np; ++v)
      for (NodeId u : periphery.neighbors(v))
        if (u > v) edges.emplace_back(core_size + v, core_size + u);
  }
  // Random attachment edges core <-> periphery.
  std::uint64_t attach = static_cast<std::uint64_t>(
      attach_p * static_cast<double>(np) + 1);
  for (std::uint64_t t = 0; t < attach && np > 0; ++t) {
    NodeId c = static_cast<NodeId>(rng.below(core_size));
    NodeId p = core_size + static_cast<NodeId>(rng.below(np));
    edges.emplace_back(c, p);
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph bipartite(NodeId a, NodeId b, double p, std::uint64_t seed) {
  PDC_CHECK(p >= 0.0 && p <= 1.0);
  Xoshiro256 rng(seed);
  EdgeList edges;
  const std::uint64_t den = 1u << 24;
  const std::uint64_t num = static_cast<std::uint64_t>(p * den);
  for (NodeId i = 0; i < a; ++i) {
    for (NodeId j = 0; j < b; ++j) {
      if (rng.below(den) < num) edges.emplace_back(i, a + j);
    }
  }
  return Graph::from_edges(a + b, std::move(edges));
}

Graph random_tree(NodeId n, std::uint64_t seed) {
  PDC_CHECK(n >= 1);
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(n);
  for (NodeId v = 1; v < n; ++v) {
    edges.emplace_back(static_cast<NodeId>(rng.below(v)), v);
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph ring_of_cliques(NodeId k, NodeId s) {
  PDC_CHECK(k >= 2 && s >= 2);
  EdgeList edges;
  for (NodeId c = 0; c < k; ++c) {
    const NodeId base = c * s;
    for (NodeId i = 0; i < s; ++i)
      for (NodeId j = i + 1; j < s; ++j)
        edges.emplace_back(base + i, base + j);
    // Bridge: last node of clique c to first node of clique c+1.
    const NodeId next_base = ((c + 1) % k) * s;
    edges.emplace_back(base + s - 1, next_base);
  }
  return Graph::from_edges(k * s, std::move(edges));
}

Graph hypercube(int dims) {
  PDC_CHECK(dims >= 1 && dims <= 20);
  const NodeId n = NodeId{1} << dims;
  EdgeList edges;
  for (NodeId v = 0; v < n; ++v) {
    for (int d = 0; d < dims; ++d) {
      NodeId u = v ^ (NodeId{1} << d);
      if (u > v) edges.emplace_back(v, u);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph small_world(NodeId n, std::uint32_t k, double beta,
                  std::uint64_t seed) {
  PDC_CHECK(n > 2 * k);
  Xoshiro256 rng(seed);
  EdgeList edges;
  const std::uint64_t den = 1u << 24;
  const std::uint64_t num = static_cast<std::uint64_t>(beta * den);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t j = 1; j <= k; ++j) {
      NodeId u = (v + j) % n;
      if (rng.below(den) < num) {
        // Rewire to a uniform non-self target (duplicates collapse in
        // from_edges, slightly lowering degree — standard WS behavior).
        NodeId w = static_cast<NodeId>(rng.below(n));
        if (w != v) u = w;
      }
      edges.emplace_back(v, u);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph preferential_attachment(NodeId n, std::uint32_t m,
                              std::uint64_t seed) {
  PDC_CHECK(n > m && m >= 1);
  Xoshiro256 rng(seed);
  EdgeList edges;
  // Repeated-endpoints list: sampling a uniform entry is sampling
  // proportional to degree.
  std::vector<NodeId> endpoints;
  // Seed clique on m+1 nodes.
  for (NodeId i = 0; i <= m; ++i) {
    for (NodeId j = i + 1; j <= m; ++j) {
      edges.emplace_back(i, j);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  for (NodeId v = m + 1; v < n; ++v) {
    std::vector<NodeId> targets;
    while (targets.size() < m) {
      NodeId t = endpoints[rng.below(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      edges.emplace_back(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

}  // namespace pdc::gen
