#include "pdc/graph/graph.hpp"

#include <algorithm>

#include "pdc/util/parallel.hpp"

namespace pdc {

Graph Graph::from_edges(NodeId n,
                        std::vector<std::pair<NodeId, NodeId>> edges) {
  // Count-degrees / prefix-sum / scatter, then per-node sort + dedup in
  // place. The old builder materialized and globally sorted a doubled
  // (u, v)/(v, u) pair list — a ~3x peak over the CSR itself on large
  // inputs; this one allocates the adjacency once, up front, and never
  // holds more than input + CSR.
  Graph g;
  g.n_ = n;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (auto [u, v] : edges) {
    PDC_CHECK_MSG(u < n && v < n, "edge endpoint out of range");
    if (u == v) continue;
    g.offsets_[u + 1]++;
    g.offsets_[v + 1]++;
  }
  for (NodeId v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.adjacency_.resize(g.offsets_[n]);
  {
    std::vector<std::uint64_t> cursor(g.offsets_.begin(),
                                      g.offsets_.end() - 1);
    for (auto [u, v] : edges) {
      if (u == v) continue;
      g.adjacency_[cursor[u]++] = v;
      g.adjacency_[cursor[v]++] = u;
    }
  }
  edges.clear();
  edges.shrink_to_fit();
  // Sort each neighbor list, drop duplicate edges, compact leftward.
  std::uint64_t write = 0;
  std::uint64_t read_lo = 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t read_hi = g.offsets_[v + 1];
    const auto first = g.adjacency_.begin() +
                       static_cast<std::ptrdiff_t>(read_lo);
    const auto last = g.adjacency_.begin() +
                      static_cast<std::ptrdiff_t>(read_hi);
    std::sort(first, last);
    const auto uniq = std::unique(first, last);
    g.offsets_[v] = write;  // after read_lo is captured for this node
    // write <= read_lo, so the forward copy never overtakes its source.
    write = static_cast<std::uint64_t>(
        std::copy(first, uniq,
                  g.adjacency_.begin() + static_cast<std::ptrdiff_t>(write)) -
        g.adjacency_.begin());
    read_lo = read_hi;
  }
  g.offsets_[n] = write;
  g.adjacency_.resize(write);
  for (NodeId v = 0; v < n; ++v)
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  return g;
}

Graph Graph::from_csr(std::vector<std::uint64_t>&& offsets,
                      std::vector<NodeId>&& adjacency) {
  Graph g;
  PDC_CHECK(!offsets.empty());
  g.n_ = static_cast<NodeId>(offsets.size() - 1);
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  PDC_CHECK(g.offsets_.front() == 0 && g.offsets_.back() == g.adjacency_.size());
#ifndef NDEBUG
  for (NodeId v = 0; v < g.n_; ++v) {
    auto nb = g.neighbors(v);
    PDC_ASSERT(std::is_sorted(nb.begin(), nb.end()));
    for (NodeId u : nb) PDC_ASSERT(u < g.n_ && u != v);
  }
#endif
  for (NodeId v = 0; v < g.n_; ++v)
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::uint64_t Graph::induced_edge_count(std::span<const NodeId> nodes) const {
  // For each node in the set, count sorted-list intersections with the
  // set itself. Each edge inside the set is seen twice.
  std::vector<NodeId> sorted(nodes.begin(), nodes.end());
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t twice = 0;
  for (NodeId v : sorted) {
    auto nb = neighbors(v);
    // Merge-intersect nb with sorted.
    std::size_t i = 0, j = 0;
    while (i < nb.size() && j < sorted.size()) {
      if (nb[i] < sorted[j]) {
        ++i;
      } else if (nb[i] > sorted[j]) {
        ++j;
      } else {
        ++twice;
        ++i;
        ++j;
      }
    }
  }
  return twice / 2;
}

InducedSubgraph induce(const Graph& g, std::span<const NodeId> nodes) {
  InducedSubgraph out;
  out.to_parent.assign(nodes.begin(), nodes.end());
  std::sort(out.to_parent.begin(), out.to_parent.end());
#ifndef NDEBUG
  PDC_ASSERT(std::adjacent_find(out.to_parent.begin(), out.to_parent.end()) ==
             out.to_parent.end());
#endif
  const NodeId nsub = static_cast<NodeId>(out.to_parent.size());

  // parent id -> local id (dense map; graphs here are in-memory anyway).
  std::vector<NodeId> to_local(g.num_nodes(), kInvalidNode);
  for (NodeId i = 0; i < nsub; ++i) to_local[out.to_parent[i]] = i;

  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(nsub) + 1, 0);
  // First pass: count surviving neighbors.
  parallel_for(nsub, [&](std::size_t i) {
    NodeId p = out.to_parent[i];
    std::uint64_t c = 0;
    for (NodeId u : g.neighbors(p))
      if (to_local[u] != kInvalidNode) ++c;
    offsets[i + 1] = c;
  });
  for (NodeId i = 0; i < nsub; ++i) offsets[i + 1] += offsets[i];
  std::vector<NodeId> adj(offsets[nsub]);
  parallel_for(nsub, [&](std::size_t i) {
    NodeId p = out.to_parent[i];
    std::uint64_t k = offsets[i];
    for (NodeId u : g.neighbors(p)) {
      NodeId lu = to_local[u];
      if (lu != kInvalidNode) adj[k++] = lu;
    }
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(offsets[i]),
              adj.begin() + static_cast<std::ptrdiff_t>(k));
  });
  out.graph = Graph::from_csr(std::move(offsets), std::move(adj));
  return out;
}

}  // namespace pdc
