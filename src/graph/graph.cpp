#include "pdc/graph/graph.hpp"

#include <algorithm>

#include "pdc/util/parallel.hpp"

namespace pdc {

Graph Graph::from_edges(NodeId n,
                        std::vector<std::pair<NodeId, NodeId>> edges) {
  // Symmetrize, drop self-loops, sort, dedup.
  std::vector<std::pair<NodeId, NodeId>> dir;
  dir.reserve(edges.size() * 2);
  for (auto [u, v] : edges) {
    PDC_CHECK_MSG(u < n && v < n, "edge endpoint out of range");
    if (u == v) continue;
    dir.emplace_back(u, v);
    dir.emplace_back(v, u);
  }
  std::sort(dir.begin(), dir.end());
  dir.erase(std::unique(dir.begin(), dir.end()), dir.end());

  Graph g;
  g.n_ = n;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (auto [u, v] : dir) g.offsets_[u + 1]++;
  for (NodeId v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.adjacency_.resize(dir.size());
  {
    std::vector<std::uint64_t> cursor(g.offsets_.begin(),
                                      g.offsets_.end() - 1);
    for (auto [u, v] : dir) g.adjacency_[cursor[u]++] = v;
  }
  for (NodeId v = 0; v < n; ++v)
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  return g;
}

Graph Graph::from_csr(std::vector<std::uint64_t> offsets,
                      std::vector<NodeId> adjacency) {
  Graph g;
  PDC_CHECK(!offsets.empty());
  g.n_ = static_cast<NodeId>(offsets.size() - 1);
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  PDC_CHECK(g.offsets_.front() == 0 && g.offsets_.back() == g.adjacency_.size());
#ifndef NDEBUG
  for (NodeId v = 0; v < g.n_; ++v) {
    auto nb = g.neighbors(v);
    PDC_ASSERT(std::is_sorted(nb.begin(), nb.end()));
    for (NodeId u : nb) PDC_ASSERT(u < g.n_ && u != v);
  }
#endif
  for (NodeId v = 0; v < g.n_; ++v)
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::uint64_t Graph::induced_edge_count(std::span<const NodeId> nodes) const {
  // For each node in the set, count sorted-list intersections with the
  // set itself. Each edge inside the set is seen twice.
  std::vector<NodeId> sorted(nodes.begin(), nodes.end());
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t twice = 0;
  for (NodeId v : sorted) {
    auto nb = neighbors(v);
    // Merge-intersect nb with sorted.
    std::size_t i = 0, j = 0;
    while (i < nb.size() && j < sorted.size()) {
      if (nb[i] < sorted[j]) {
        ++i;
      } else if (nb[i] > sorted[j]) {
        ++j;
      } else {
        ++twice;
        ++i;
        ++j;
      }
    }
  }
  return twice / 2;
}

InducedSubgraph induce(const Graph& g, std::span<const NodeId> nodes) {
  InducedSubgraph out;
  out.to_parent.assign(nodes.begin(), nodes.end());
  std::sort(out.to_parent.begin(), out.to_parent.end());
#ifndef NDEBUG
  PDC_ASSERT(std::adjacent_find(out.to_parent.begin(), out.to_parent.end()) ==
             out.to_parent.end());
#endif
  const NodeId nsub = static_cast<NodeId>(out.to_parent.size());

  // parent id -> local id (dense map; graphs here are in-memory anyway).
  std::vector<NodeId> to_local(g.num_nodes(), kInvalidNode);
  for (NodeId i = 0; i < nsub; ++i) to_local[out.to_parent[i]] = i;

  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(nsub) + 1, 0);
  // First pass: count surviving neighbors.
  parallel_for(nsub, [&](std::size_t i) {
    NodeId p = out.to_parent[i];
    std::uint64_t c = 0;
    for (NodeId u : g.neighbors(p))
      if (to_local[u] != kInvalidNode) ++c;
    offsets[i + 1] = c;
  });
  for (NodeId i = 0; i < nsub; ++i) offsets[i + 1] += offsets[i];
  std::vector<NodeId> adj(offsets[nsub]);
  parallel_for(nsub, [&](std::size_t i) {
    NodeId p = out.to_parent[i];
    std::uint64_t k = offsets[i];
    for (NodeId u : g.neighbors(p)) {
      NodeId lu = to_local[u];
      if (lu != kInvalidNode) adj[k++] = lu;
    }
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(offsets[i]),
              adj.begin() + static_cast<std::ptrdiff_t>(k));
  });
  out.graph = Graph::from_csr(std::move(offsets), std::move(adj));
  return out;
}

}  // namespace pdc
