#include "pdc/graph/power.hpp"

#include <algorithm>

#include "pdc/util/check.hpp"

namespace pdc {

std::vector<NodeId> ball(const Graph& g, NodeId v, int dist) {
  PDC_CHECK(dist >= 1);
  std::vector<NodeId> frontier{v};
  std::vector<NodeId> seen{v};
  for (int h = 0; h < dist; ++h) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      for (NodeId w : g.neighbors(u)) {
        next.push_back(w);
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    // next \ seen
    std::vector<NodeId> fresh;
    std::set_difference(next.begin(), next.end(), seen.begin(), seen.end(),
                        std::back_inserter(fresh));
    if (fresh.empty()) break;
    std::vector<NodeId> merged;
    std::merge(seen.begin(), seen.end(), fresh.begin(), fresh.end(),
               std::back_inserter(merged));
    seen = std::move(merged);
    frontier = std::move(fresh);
  }
  // Exclude v itself.
  std::vector<NodeId> out;
  out.reserve(seen.size() - 1);
  for (NodeId u : seen)
    if (u != v) out.push_back(u);
  return out;
}

DistanceColoring distance_coloring(const Graph& g, int dist) {
  DistanceColoring dc;
  dc.chunk_of.assign(g.num_nodes(), static_cast<std::uint32_t>(-1));
  // Greedy in node order: v takes the smallest chunk unused in its ball.
  // Sequential (the chunk coloring is a preprocessing step charged
  // O(τ + log* n) rounds in Theorem 12; here we care about determinism).
  std::vector<std::uint32_t> blocked;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    blocked.clear();
    for (NodeId u : ball(g, v, dist)) {
      if (dc.chunk_of[u] != static_cast<std::uint32_t>(-1))
        blocked.push_back(dc.chunk_of[u]);
    }
    std::sort(blocked.begin(), blocked.end());
    blocked.erase(std::unique(blocked.begin(), blocked.end()), blocked.end());
    std::uint32_t c = 0;
    for (std::uint32_t b : blocked) {
      if (b == c) {
        ++c;
      } else if (b > c) {
        break;
      }
    }
    dc.chunk_of[v] = c;
    dc.num_chunks = std::max(dc.num_chunks, c + 1);
  }
  return dc;
}

std::uint64_t ball_work_upper_bound(const Graph& g, int dist) {
  // sum_v min(n, Δ^dist) with overflow care.
  const std::uint64_t n = g.num_nodes();
  const std::uint64_t d = std::max<std::uint64_t>(1, g.max_degree());
  std::uint64_t per = 1;
  for (int i = 0; i < dist; ++i) {
    if (per > n / std::max<std::uint64_t>(d, 1) + 1) {
      per = n;
      break;
    }
    per *= d;
  }
  per = std::min(per, n);
  return n * per;
}

}  // namespace pdc
