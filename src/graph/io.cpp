#include "pdc/graph/io.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pdc/util/check.hpp"

namespace pdc::io {

namespace {

bool is_comment(const std::string& line) {
  for (char ch : line) {
    if (ch == ' ' || ch == '\t') continue;
    return ch == '#' || ch == '%';
  }
  return true;  // blank line
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId n = 0;
  bool n_pinned = false;
  std::string line;
  while (std::getline(in, line)) {
    if (is_comment(line)) continue;
    std::istringstream ls(line);
    std::string head;
    ls >> head;
    if (head == "n") {
      std::uint64_t count = 0;
      ls >> count;
      n = static_cast<NodeId>(count);
      n_pinned = true;
      continue;
    }
    if (head == "c") continue;  // palette line (instance format)
    std::uint64_t u = std::stoull(head), v = 0;
    ls >> v;
    PDC_CHECK_MSG(!ls.fail(), "malformed edge line: " << line);
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
    if (!n_pinned) {
      n = std::max<NodeId>(n, static_cast<NodeId>(std::max(u, v)) + 1);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# pdc edge list\n";
  out << "n " << g.num_nodes() << "\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (u > v) out << v << " " << u << "\n";
    }
  }
}

Graph read_dimacs(std::istream& in) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId n = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'c') continue;
    if (kind == 'p') {
      std::string fmt;
      std::uint64_t nn = 0, mm = 0;
      ls >> fmt >> nn >> mm;
      PDC_CHECK_MSG(fmt == "edge" || fmt == "col",
                    "unsupported DIMACS problem type: " << fmt);
      n = static_cast<NodeId>(nn);
      continue;
    }
    if (kind == 'e') {
      std::uint64_t u = 0, v = 0;
      ls >> u >> v;
      PDC_CHECK_MSG(u >= 1 && v >= 1, "DIMACS ids are 1-based");
      edges.emplace_back(static_cast<NodeId>(u - 1),
                         static_cast<NodeId>(v - 1));
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

void write_dimacs(std::ostream& out, const Graph& g) {
  out << "c pdc DIMACS export\n";
  out << "p edge " << g.num_nodes() << " " << g.num_edges() << "\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (u > v) out << "e " << v + 1 << " " << u + 1 << "\n";
    }
  }
}

D1lcInstance read_instance(std::istream& in) {
  // First pass: buffer the stream so the edge reader and palette reader
  // both see it (instances are file-sized, not streams).
  std::stringstream buf;
  buf << in.rdbuf();
  std::string body = buf.str();

  std::istringstream pass1(body);
  Graph g = read_edge_list(pass1);

  std::vector<std::vector<Color>> lists(g.num_nodes());
  std::istringstream pass2(body);
  std::string line;
  bool any_palette = false;
  while (std::getline(pass2, line)) {
    if (is_comment(line)) continue;
    std::istringstream ls(line);
    std::string head;
    ls >> head;
    if (head != "c") continue;
    std::uint64_t v = 0, k = 0;
    ls >> v >> k;
    PDC_CHECK_MSG(v < g.num_nodes(), "palette for unknown node " << v);
    lists[v].resize(k);
    for (std::uint64_t i = 0; i < k; ++i) ls >> lists[v][i];
    PDC_CHECK_MSG(!ls.fail(), "malformed palette line: " << line);
    any_palette = true;
  }
  if (!any_palette) return make_degree_plus_one(g);
  D1lcInstance inst{std::move(g), PaletteSet::from_lists(std::move(lists))};
  PDC_CHECK_MSG(inst.valid(), "instance violates the degree+1 invariant");
  return inst;
}

void write_instance(std::ostream& out, const D1lcInstance& inst) {
  write_edge_list(out, inst.graph);
  out << "# palettes: c <node> <k> <colors...>\n";
  for (NodeId v = 0; v < inst.graph.num_nodes(); ++v) {
    auto pal = inst.palettes.palette(v);
    out << "c " << v << " " << pal.size();
    for (Color c : pal) out << " " << c;
    out << "\n";
  }
}

namespace {
std::ifstream open_in(const std::string& path) {
  std::ifstream f(path);
  PDC_CHECK_MSG(f.good(), "cannot open " << path);
  return f;
}
std::ofstream open_out(const std::string& path) {
  std::ofstream f(path);
  PDC_CHECK_MSG(f.good(), "cannot open " << path);
  return f;
}
bool ends_with(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}
}  // namespace

Graph load_graph(const std::string& path) {
  auto f = open_in(path);
  return ends_with(path, ".col") ? read_dimacs(f) : read_edge_list(f);
}

void save_graph(const std::string& path, const Graph& g) {
  auto f = open_out(path);
  if (ends_with(path, ".col")) {
    write_dimacs(f, g);
  } else {
    write_edge_list(f, g);
  }
}

D1lcInstance load_instance(const std::string& path) {
  auto f = open_in(path);
  return read_instance(f);
}

void save_instance(const std::string& path, const D1lcInstance& inst) {
  auto f = open_out(path);
  write_instance(f, inst);
}

}  // namespace pdc::io
