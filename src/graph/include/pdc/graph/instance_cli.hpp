#pragma once
// Shared graph-loading / generation dispatch for the command-line
// tools and examples (pdc_solve, pdc_gen, edge_coloring, ...). Every
// CLI used to carry its own copy of the generator switch and the
// degree+1 padding loop; this is the single home for both.
//
//   Graph g = io::make_cli_graph(args, {.kind = "smallworld", .n = 600});
//   D1lcInstance inst = io::make_cli_instance(args);
//
// Flags understood (all optional, defaults from CliGraphDefaults):
//   --graph F      load a graph file (.col => DIMACS)
//   --instance F   load a full D1LC instance (make_cli_instance only)
//   --gen KIND     generator: gnp regular cliques powerlaw smallworld
//                  ba tree grid hypercube core
//   --n N --p P --d D --gen-seed S    generator knobs
//   --extra K      make_cli_instance: random lists with K extra colors

#include <string>
#include <vector>

#include "pdc/graph/palette.hpp"
#include "pdc/util/cli.hpp"

namespace pdc::io {

/// Per-tool defaults for the generator knobs; flags override.
struct CliGraphDefaults {
  std::string kind = "gnp";
  NodeId n = 2000;
  double p = 0.01;
  std::uint32_t d = 4;
  std::uint64_t seed = 1;
};

/// The generator switch shared by every CLI: --graph loads a file,
/// otherwise --gen picks a family from pdc::gen. Throws check_error on
/// an unknown kind.
Graph make_cli_graph(const CliArgs& args, const CliGraphDefaults& dflt = {});

/// Full instance dispatch: --instance loads one, --graph wraps the
/// graph in degree+1 palettes, otherwise generate via make_cli_graph
/// (with --extra K: random lists with K extra colors per node).
D1lcInstance make_cli_instance(const CliArgs& args,
                               const CliGraphDefaults& dflt = {});

/// Help lines describing the shared flags, for the tools' --help.
const char* cli_graph_help();

/// Pads per-node feasible lists up to degree+1 with fresh overflow
/// colors starting at `first_overflow` — the exam-scheduling /
/// register-allocation move that turns "preferred colors" into a valid
/// D1LC instance (you can always schedule if you allow enough
/// overflow). Lists are consumed; the padded PaletteSet is returned.
PaletteSet pad_lists_to_degree_plus_one(const Graph& g,
                                        std::vector<std::vector<Color>> lists,
                                        Color first_overflow);

}  // namespace pdc::io
