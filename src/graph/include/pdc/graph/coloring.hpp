#pragma once
// Coloring representation and validation.

#include <cstdint>
#include <span>
#include <vector>

#include "pdc/graph/graph.hpp"
#include "pdc/graph/palette.hpp"

namespace pdc {

using Coloring = std::vector<Color>;

/// Result of validating a (possibly partial) coloring.
struct ColoringCheck {
  std::uint64_t uncolored = 0;
  std::uint64_t monochromatic_edges = 0;   // both endpoints colored, equal
  std::uint64_t palette_violations = 0;    // colored outside own palette
  bool proper_partial() const {
    return monochromatic_edges == 0 && palette_violations == 0;
  }
  bool complete_proper() const { return proper_partial() && uncolored == 0; }
};

/// Validates `coloring` against the instance. Palette check skipped when
/// `palettes == nullptr` (plain proper-coloring check).
ColoringCheck check_coloring(const Graph& g, std::span<const Color> coloring,
                             const PaletteSet* palettes);

inline ColoringCheck check_coloring(const D1lcInstance& inst,
                                    std::span<const Color> coloring) {
  return check_coloring(inst.graph, coloring, &inst.palettes);
}

/// True iff every node is colored, no edge is monochromatic, and (when
/// `palettes` is given) every color is drawn from its node's palette —
/// the pipeline's end-to-end guarantee as a single predicate. Prefer
/// this over hand-rolled neighbor loops in tests and smoke paths;
/// check_coloring() returns the per-violation counts when they matter.
bool is_proper_coloring(const Graph& g, std::span<const Color> coloring,
                        const PaletteSet* palettes = nullptr);

inline bool is_proper_coloring(const D1lcInstance& inst,
                               std::span<const Color> coloring) {
  return is_proper_coloring(inst.graph, coloring, &inst.palettes);
}

/// Validates only the constraints incident to `region`: every region
/// node must be colored, within its palette (when `palettes` is given),
/// and conflict-free against ALL of its neighbors — colored exterior
/// neighbors included. Nodes outside the region are never required to
/// be colored, so this is the partial-coloring invariant an incremental
/// recolor must restore after touching exactly `region`.
bool validate_partial(const Graph& g, std::span<const Color> coloring,
                      std::span<const NodeId> region,
                      const PaletteSet* palettes = nullptr);

/// Number of distinct colors used (ignores uncolored nodes).
std::uint64_t count_colors_used(std::span<const Color> coloring);

/// Writes colors of `sub` nodes back into the parent coloring through the
/// id mapping; only overwrites parent entries the sub-coloring colored.
void lift_coloring(std::span<const NodeId> to_parent,
                   std::span<const Color> sub_coloring, Coloring& parent);

}  // namespace pdc
