#pragma once
// Coloring representation and validation.

#include <cstdint>
#include <span>
#include <vector>

#include "pdc/graph/graph.hpp"
#include "pdc/graph/palette.hpp"

namespace pdc {

using Coloring = std::vector<Color>;

/// Result of validating a (possibly partial) coloring.
struct ColoringCheck {
  std::uint64_t uncolored = 0;
  std::uint64_t monochromatic_edges = 0;   // both endpoints colored, equal
  std::uint64_t palette_violations = 0;    // colored outside own palette
  bool proper_partial() const {
    return monochromatic_edges == 0 && palette_violations == 0;
  }
  bool complete_proper() const { return proper_partial() && uncolored == 0; }
};

/// Validates `coloring` against the instance. Palette check skipped when
/// `palettes == nullptr` (plain proper-coloring check).
ColoringCheck check_coloring(const Graph& g, std::span<const Color> coloring,
                             const PaletteSet* palettes);

inline ColoringCheck check_coloring(const D1lcInstance& inst,
                                    std::span<const Color> coloring) {
  return check_coloring(inst.graph, coloring, &inst.palettes);
}

/// Number of distinct colors used (ignores uncolored nodes).
std::uint64_t count_colors_used(std::span<const Color> coloring);

/// Writes colors of `sub` nodes back into the parent coloring through the
/// id mapping; only overwrites parent entries the sub-coloring colored.
void lift_coloring(std::span<const NodeId> to_parent,
                   std::span<const Color> sub_coloring, Coloring& parent);

}  // namespace pdc
