#pragma once
// Color palettes and D1LC problem instances.
//
// In the (degree+1)-list coloring problem every node v carries a palette
// Ψ(v) with |Ψ(v)| >= d(v) + 1. Palettes shrink as neighbors get colored
// (self-reducibility, Definition 11), so PaletteSet supports building
// residual instances efficiently.

#include <cstdint>
#include <span>
#include <vector>

#include "pdc/graph/graph.hpp"

namespace pdc {

using Color = std::int64_t;
inline constexpr Color kNoColor = -1;

/// Flat storage of per-node sorted color lists.
class PaletteSet {
 public:
  PaletteSet() = default;

  /// From per-node lists (each list is sorted + deduped internally).
  static PaletteSet from_lists(std::vector<std::vector<Color>> lists);

  NodeId num_nodes() const {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }

  std::span<const Color> palette(NodeId v) const {
    PDC_ASSERT(v + 1 < offsets_.size() + 0ull + 1);
    return {colors_.data() + offsets_[v], colors_.data() + offsets_[v + 1]};
  }

  std::uint32_t size(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  bool contains(NodeId v, Color c) const;

  std::uint64_t total_size() const { return colors_.size(); }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<Color> colors_;
};

/// A D1LC instance: graph + palettes with |Ψ(v)| >= d(v)+1.
struct D1lcInstance {
  Graph graph;
  PaletteSet palettes;

  /// Verifies the degree+1 palette invariant; returns the first violating
  /// node, or kInvalidNode if valid.
  NodeId first_palette_violation() const;
  bool valid() const { return first_palette_violation() == kInvalidNode; }
};

/// Classic (Δ+1)-coloring as a D1LC instance: every palette is
/// {0, ..., Δ}. This is the reduction noted in the paper's introduction.
D1lcInstance make_delta_plus_one(const Graph& g);

/// Per-node palette {0, ..., d(v)} — the tightest valid D1LC instance.
D1lcInstance make_degree_plus_one(const Graph& g);

/// Random palettes: each node draws d(v)+1+extra distinct colors from a
/// universe of `universe` colors (universe >= Δ+1+extra enforced).
/// Exercises the list-coloring generality (palettes disagree between
/// neighbors, driving disparity/discrepancy in Definition 2).
D1lcInstance make_random_lists(const Graph& g, Color universe,
                               std::uint32_t extra, std::uint64_t seed);

/// Residual instance after partially coloring `g`: keep uncolored nodes,
/// remove colors taken by colored neighbors. Always yields a valid D1LC
/// instance (self-reducibility of D1LC).
struct ResidualInstance {
  D1lcInstance instance;
  std::vector<NodeId> to_parent;
};
ResidualInstance residual(const Graph& g, const PaletteSet& palettes,
                          std::span<const Color> coloring);

}  // namespace pdc
