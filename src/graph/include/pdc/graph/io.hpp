#pragma once
// Graph and instance (de)serialization.
//
// Two text formats:
//  * edge list: one "u v" pair per line, '#' comments, 0-based ids;
//    an optional first line "n <count>" pins the node count (isolated
//    trailing nodes are otherwise unrepresentable).
//  * DIMACS .col: "p edge <n> <m>" header, "e u v" lines, 1-based ids —
//    the standard benchmark format for coloring instances.
//
// D1LC instances additionally serialize palettes as "c v k c1..ck"
// lines appended to the edge-list format.

#include <iosfwd>
#include <string>

#include "pdc/graph/palette.hpp"

namespace pdc::io {

Graph read_edge_list(std::istream& in);
void write_edge_list(std::ostream& out, const Graph& g);

Graph read_dimacs(std::istream& in);
void write_dimacs(std::ostream& out, const Graph& g);

/// Instance = edge-list body + palette lines.
D1lcInstance read_instance(std::istream& in);
void write_instance(std::ostream& out, const D1lcInstance& inst);

// File-path conveniences (throw check_error on open failure).
Graph load_graph(const std::string& path);       // by extension: .col => DIMACS
void save_graph(const std::string& path, const Graph& g);
D1lcInstance load_instance(const std::string& path);
void save_instance(const std::string& path, const D1lcInstance& inst);

}  // namespace pdc::io
