#pragma once
// Immutable CSR graph — the shared substrate for the LOCAL and MPC
// simulators and all coloring algorithms.
//
// Graphs are simple and undirected. Neighbor lists are sorted, which the
// parameter computations of Definition 2 exploit (sparsity needs
// |N(u) ∩ N(v)| via sorted intersection).

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "pdc/util/check.hpp"

namespace pdc {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class Graph {
 public:
  Graph() = default;

  /// Builds from an undirected edge list. Self-loops are dropped and
  /// duplicate edges collapsed; endpoints must be < n. The adjacency is
  /// allocated once, up front, and filled by count/scatter — no doubled
  /// edge-list copy.
  static Graph from_edges(NodeId n,
                          std::vector<std::pair<NodeId, NodeId>> edges);

  /// Builds directly from CSR arrays (adjacency must be symmetric,
  /// per-node sorted, no self-loops). Checked in debug builds. Takes
  /// the arrays by move — multi-GB CSRs must not be copied anywhere on
  /// this chain; callers hand ownership over explicitly.
  static Graph from_csr(std::vector<std::uint64_t>&& offsets,
                        std::vector<NodeId>&& adjacency);

  NodeId num_nodes() const { return n_; }
  std::uint64_t num_edges() const { return adjacency_.size() / 2; }

  std::uint32_t degree(NodeId v) const {
    PDC_ASSERT(v < n_);
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::span<const NodeId> neighbors(NodeId v) const {
    PDC_ASSERT(v < n_);
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  std::uint32_t max_degree() const { return max_degree_; }

  bool has_edge(NodeId u, NodeId v) const;

  /// Number of edges inside the subgraph induced by the (sorted) node
  /// set `nodes`. Used by sparsity ζ_v (m(N(v))) and ACD checks.
  std::uint64_t induced_edge_count(std::span<const NodeId> nodes) const;

  const std::vector<std::uint64_t>& offsets() const { return offsets_; }
  const std::vector<NodeId>& adjacency() const { return adjacency_; }

 private:
  NodeId n_ = 0;
  std::uint32_t max_degree_ = 0;
  std::vector<std::uint64_t> offsets_;  // n+1 entries
  std::vector<NodeId> adjacency_;       // 2m entries, per-node sorted
};

/// An induced subgraph together with the mapping back to the parent
/// graph's node ids. Central to the recursion in Theorem 12 (deferred
/// nodes) and LowSpaceColorReduce (degree bins).
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> to_parent;  // local id -> parent id
};

/// Induces the subgraph on `nodes` (need not be sorted; duplicates
/// rejected in debug builds).
InducedSubgraph induce(const Graph& g, std::span<const NodeId> nodes);

}  // namespace pdc
