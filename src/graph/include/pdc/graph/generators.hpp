#pragma once
// Deterministic (seeded) graph generators for tests, examples and the
// experiment harness. Each family targets a regime the paper's analysis
// distinguishes: sparse nodes, uneven nodes, dense almost-cliques, and
// mixtures thereof.

#include <cstdint>
#include <vector>

#include "pdc/graph/graph.hpp"

namespace pdc::gen {

/// Erdos–Renyi G(n, p). Expected degree p(n-1); nodes are sparse
/// (high ζ_v) for small p.
Graph gnp(NodeId n, double p, std::uint64_t seed);

/// Random d-regular-ish graph via d/2 random perfect matchings
/// superposition (may lose a few edges to dedup; degrees in [d-2, d]).
Graph near_regular(NodeId n, std::uint32_t d, std::uint64_t seed);

/// Complete graph K_n (the extreme dense case; one almost-clique).
Graph complete(NodeId n);

/// Cycle C_n.
Graph cycle(NodeId n);

/// 2-D grid (rows x cols) — constant degree, very sparse.
Graph grid(NodeId rows, NodeId cols);

/// Star K_{1,n-1} — the extreme uneven case (leaves see one much
/// higher-degree neighbor).
Graph star(NodeId n);

/// Disjoint cliques of size k joined by a sprinkling of random
/// inter-clique edges: the planted almost-clique-decomposition
/// instance. `noise_p` is the probability of each inter-clique pair
/// (scaled as noise_p / n to keep degrees near k).
struct PlantedCliques {
  Graph graph;
  std::vector<NodeId> clique_of;  // ground-truth clique index per node
};
PlantedCliques planted_cliques(NodeId num_cliques, NodeId clique_size,
                               double noise_p, std::uint64_t seed);

/// Chung–Lu power-law-ish graph: node weights w_i ∝ (i+1)^{-1/(beta-1)},
/// edge (i,j) kept with probability min(1, w_i w_j / sum_w). Produces a
/// skewed degree sequence (mix of sparse and uneven nodes).
Graph power_law(NodeId n, double beta, double avg_degree, std::uint64_t seed);

/// A "barbell of cliques" — two cliques of size k bridged by a path of
/// length len. Stresses leaders/outliers at the clique boundary.
Graph clique_barbell(NodeId k, NodeId len);

/// Union of a dense core (clique of size k) and a sparse G(n-k, p)
/// periphery with random attachment edges. Exercises all three ACD
/// classes in one instance.
Graph core_periphery(NodeId n, NodeId core_size, double periphery_p,
                     double attach_p, std::uint64_t seed);

/// Random bipartite G(a, b, p): sides of size a and b, each cross pair
/// kept with probability p. Bipartite graphs are 2-list-colorable with
/// the right lists and stress the disparity/discrepancy parameters.
Graph bipartite(NodeId a, NodeId b, double p, std::uint64_t seed);

/// Uniform random recursive tree on n nodes (each node attaches to a
/// uniform earlier node). Degeneracy 1; the easiest D1LC instances.
Graph random_tree(NodeId n, std::uint64_t seed);

/// Ring of `k` cliques of size `s`, adjacent cliques joined by a single
/// bridge edge — many well-separated almost-cliques with leaders at the
/// bridge endpoints.
Graph ring_of_cliques(NodeId k, NodeId s);

/// d-dimensional hypercube (n = 2^d nodes): regular, vertex-transitive,
/// sparsity exactly (d-1)/2 everywhere.
Graph hypercube(int dims);

/// Watts–Strogatz small world: ring lattice with k nearest neighbors
/// per side, each edge rewired with probability beta.
Graph small_world(NodeId n, std::uint32_t k, double beta,
                  std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m` existing nodes proportionally to degree. Heavy-tailed degrees —
/// the unevenness-dominated regime.
Graph preferential_attachment(NodeId n, std::uint32_t m, std::uint64_t seed);

}  // namespace pdc::gen
