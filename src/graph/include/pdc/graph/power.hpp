#pragma once
// Distance-bounded neighborhoods and distance colorings.
//
// Lemma 10 assigns pseudorandom chunks via an O(Δ^{8τ})-coloring of the
// power graph G^{4τ}: any two nodes within distance 4τ must receive
// distinct chunks so their PRG bits are disjoint. We never materialize
// G^{4τ}; distance_coloring() colors it directly by bounded BFS, which is
// the same O(n·Δ^{4τ}) work without the edge-list blowup.

#include <cstdint>
#include <vector>

#include "pdc/graph/graph.hpp"

namespace pdc {

/// All nodes within distance <= dist of v (excluding v), in sorted order.
std::vector<NodeId> ball(const Graph& g, NodeId v, int dist);

/// A proper coloring of G^dist (distinct values for any two nodes at
/// distance <= dist), computed greedily in node order. Returns per-node
/// chunk ids in [0, num_chunks). Deterministic.
struct DistanceColoring {
  std::vector<std::uint32_t> chunk_of;
  std::uint32_t num_chunks = 0;
};
DistanceColoring distance_coloring(const Graph& g, int dist);

/// Estimated work (sum over v of |ball(v, dist)|) without running the
/// full BFS — used to decide whether the proper power coloring is
/// affordable or the caller should fall back to per-node-unique chunks.
std::uint64_t ball_work_upper_bound(const Graph& g, int dist);

}  // namespace pdc
