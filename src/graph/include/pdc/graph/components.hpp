#pragma once
// Connected components, including components of a node subset — the
// measurement behind "shattering" arguments: after a randomized coloring
// pass, the failed nodes are supposed to form only small connected
// components (which the post-shattering phase then finishes cheaply).
// Experiment E13 measures exactly this.

#include <cstdint>
#include <vector>

#include "pdc/graph/graph.hpp"

namespace pdc {

struct Components {
  std::vector<std::uint32_t> component_of;  // kNoComponent if outside mask
  std::uint32_t count = 0;
  std::vector<std::uint32_t> sizes;         // indexed by component id
  std::uint32_t largest = 0;

  static constexpr std::uint32_t kNoComponent = static_cast<std::uint32_t>(-1);
};

/// Components of the subgraph induced by {v : mask[v] != 0}. A null/empty
/// mask means the whole graph.
Components connected_components(const Graph& g,
                                const std::vector<std::uint8_t>* mask);

}  // namespace pdc
