#pragma once
// Pseudorandom generators with enumerable seed spaces.
//
// Lemma 10 uses a (Δ^{11τ}, Δ^{-11τ}) PRG with seed length d = Θ(log Δ)
// (Proposition 8). That PRG is non-explicit — it exists by the
// probabilistic method and computing it takes exp(poly) time (Lemma 9),
// which the paper sidesteps by noting it can be precomputed offline.
// We substitute an explicit mixing-based generator with the same
// *interface*: a d-bit seed, lazily expandable into per-chunk bit
// streams. The derandomization machinery only interacts with the seed
// space (enumerate / search with conditional expectations) and the chunk
// streams, so the substitution exercises the identical code path; its
// empirical "fooling" quality is measured by experiment E3 instead of
// assumed. See DESIGN.md §4.

#include <cstdint>

#include "pdc/util/bits.hpp"
#include "pdc/util/check.hpp"
#include "pdc/util/rng.hpp"

namespace pdc::prg {

/// Supplies a BitStream per (node, chunk); the derandomization framework
/// passes one of these to NormalProcedure::simulate. Implementations:
/// PrgFamily::source(seed) and TrueRandomSource.
class BitSourceFactory {
 public:
  virtual ~BitSourceFactory() = default;
  /// Stream for node v whose assigned chunk is `chunk`. Two nodes with
  /// different chunks get disjoint (independently seeded) streams; two
  /// nodes sharing a chunk get *identical* streams — the failure mode
  /// the G^{4τ} distance coloring exists to prevent (ablated in E10).
  virtual BitStream stream(std::uint32_t node, std::uint32_t chunk) const = 0;
};

/// Family of PRGs G_salt : {0,1}^d -> chunked bit streams.
class PrgFamily {
 public:
  PrgFamily(int seed_bits, std::uint64_t salt)
      : seed_bits_(seed_bits), salt_(salt) {
    PDC_CHECK(seed_bits >= 1 && seed_bits <= 30);
  }

  int seed_bits() const { return seed_bits_; }
  std::uint64_t num_seeds() const { return 1ULL << seed_bits_; }

  class Source final : public BitSourceFactory {
   public:
    Source(std::uint64_t salt, std::uint64_t seed) : base_(hash_combine(salt, seed)) {}
    BitStream stream(std::uint32_t /*node*/, std::uint32_t chunk) const override {
      // Chunked expansion: word w of chunk c is a strong mix of
      // (salt ⊕ seed, c, w). Distinct chunks never collide; the node id
      // is deliberately *not* mixed in, so chunk sharing produces the
      // correlated streams the theory predicts will break procedures.
      std::uint64_t chunk_key = hash_combine(base_, chunk);
      return BitStream([chunk_key](std::uint64_t w) {
        return mix64(chunk_key + 0x9E3779B97F4A7C15ULL * (w + 1));
      });
    }

   private:
    std::uint64_t base_;
  };

  Source source(std::uint64_t seed) const {
    PDC_CHECK(seed < num_seeds());
    return Source(salt_, seed);
  }

 private:
  int seed_bits_;
  std::uint64_t salt_;
};

/// Full-entropy source: node v draws from an independent substream of a
/// master seed. This is the "truly random" baseline the PRG replaces;
/// running a procedure with it is the randomized algorithm.
class TrueRandomSource final : public BitSourceFactory {
 public:
  explicit TrueRandomSource(std::uint64_t master_seed) : master_(master_seed) {}
  BitStream stream(std::uint32_t node, std::uint32_t /*chunk*/) const override {
    std::uint64_t node_key = hash_combine(master_, node);
    return BitStream([node_key](std::uint64_t w) {
      return mix64(node_key ^ (0xA0761D6478BD642FULL * (w + 1)));
    });
  }

 private:
  std::uint64_t master_;
};

}  // namespace pdc::prg
