#pragma once
// Bounded-independence bit source.
//
// The pre-PRG derandomization line ([CHPS20], [CDP21b]) compresses seeds
// with k-wise independent hash families instead of PRGs. The paper's
// Related Work explains why that fails for sublogarithmic coloring
// algorithms: their analyses effectively use Δ-wise independence or
// more. This source makes that contrast measurable (E10's independence
// ablation): node v's bits come from a degree-(k-1) polynomial over
// GF(2^61-1) evaluated at per-(node, word) points — any k nodes' bits
// are mutually independent, but k+1 may not be.

#include "pdc/prg/prg.hpp"
#include "pdc/util/hashing.hpp"

namespace pdc::prg {

class KWiseSource final : public BitSourceFactory {
 public:
  /// k >= 1: the independence parameter. Seeds the k coefficients from
  /// `master_seed` deterministically.
  KWiseSource(int k, std::uint64_t master_seed) : hash_(make(k, master_seed)) {}

  BitStream stream(std::uint32_t node, std::uint32_t /*chunk*/) const override {
    const KWiseHash* h = &hash_;
    const std::uint64_t base = static_cast<std::uint64_t>(node) << 32;
    return BitStream([h, base](std::uint64_t w) {
      // 61 pseudorandom bits per evaluation; top 3 bits filled by a
      // second evaluation so consumers see full 64-bit words.
      std::uint64_t lo = (*h)(base + 2 * w);
      std::uint64_t hi = (*h)(base + 2 * w + 1);
      return lo ^ (hi << 61);
    });
  }

  int independence() const { return hash_.independence(); }

 private:
  static KWiseHash make(int k, std::uint64_t master_seed) {
    Xoshiro256 rng(master_seed);
    return KWiseHash::random(k, rng);
  }
  KWiseHash hash_;
};

}  // namespace pdc::prg
