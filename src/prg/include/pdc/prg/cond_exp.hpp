#pragma once
// Seed selection: exhaustive search and the method of conditional
// expectations over an enumerable seed space.
//
// NOTE: these are compatibility shims over pdc::engine::SeedSearch (the
// decomposable, batched seed-search engine). They keep the historical
// opaque-cost interface and SeedChoice semantics for tests and
// ablations; new call sites should implement an engine::CostOracle with
// per-item costs instead — see src/engine/README.md.
//
// Lemma 10 selects a PRG seed for which the number of SSP-failing nodes
// is at most its expectation; the classic derandomization argument is
// that fixing seed bits one at a time, always picking the branch with the
// smaller conditional expectation, ends at such a seed. Both routes are
// implemented (they provably return seeds with cost <= mean cost); the
// E10 ablation contrasts their work and results. Costs are evaluated by
// the caller-provided function — in Lemma 10 that is "simulate the
// procedure under this seed and count SSP failures", which machines can
// evaluate locally and aggregate, matching the MPC implementation of
// [CDP21b].

#include <cstdint>
#include <functional>

namespace pdc::prg {

/// cost(seed) -> aggregate objective (e.g. number of failing nodes).
/// Must be deterministic. May be called concurrently for distinct seeds.
using SeedCostFn = std::function<double(std::uint64_t seed)>;

struct SeedChoice {
  std::uint64_t seed = 0;
  double cost = 0.0;            // objective at chosen seed
  double mean_cost = 0.0;       // expectation over the whole seed space
  std::uint64_t evaluations = 0;
};

/// Evaluate every seed (parallel over seeds), return the argmin.
/// Guarantees cost <= mean_cost.
SeedChoice select_seed_exhaustive(int seed_bits, const SeedCostFn& cost);

/// Method of conditional expectations: fix bits b_0..b_{d-1} in order; at
/// each step compute E[cost | prefix, b_i = 0] and E[cost | prefix,
/// b_i = 1] exactly (by averaging over all completions) and keep the
/// smaller branch. Returns a seed with cost <= mean_cost. The engine
/// shares prefixes: all 2^d completions are evaluated once and every
/// branch mean is a partial sum over the cached totals, so the work is
/// 2^d cost evaluations (the legacy enumeration re-evaluated ~2 * 2^d
/// times) — the method's value in real MPC is that per-node conditional
/// expectations are computed analytically and aggregated, not
/// enumerated; we enumerate because our procedures' success events have
/// no closed form.
SeedChoice select_seed_conditional_expectation(int seed_bits,
                                               const SeedCostFn& cost);

/// Generic argmin over an enumerable hash family (used by Lemma 23's
/// partition-hash selection, where the "seed" indexes the family).
SeedChoice select_index_exhaustive(std::uint64_t family_size,
                                   const SeedCostFn& cost);

}  // namespace pdc::prg
