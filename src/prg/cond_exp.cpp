#include "pdc/prg/cond_exp.hpp"

#include "pdc/engine/seed_search.hpp"
#include "pdc/util/check.hpp"

namespace pdc::prg {

// These entry points are compatibility shims over the decomposable
// seed-search engine (pdc::engine::SeedSearch): the opaque SeedCostFn
// becomes a single-item ScalarOracle, which the engine evaluates with
// the legacy seed-parallel strategy. New call sites should implement a
// decomposed CostOracle instead — see src/engine/README.md.

namespace {

SeedChoice to_choice(const engine::Selection& sel) {
  SeedChoice out;
  out.seed = sel.seed;
  out.cost = sel.cost;
  out.mean_cost = sel.mean_cost;
  out.evaluations = sel.stats.evaluations;
  return out;
}

}  // namespace

SeedChoice select_seed_exhaustive(int seed_bits, const SeedCostFn& cost) {
  PDC_CHECK(seed_bits >= 1 && seed_bits <= 30);
  engine::ScalarOracle oracle(cost);
  engine::SeedSearch search(oracle);
  return to_choice(search.exhaustive_bits(seed_bits));
}

SeedChoice select_seed_conditional_expectation(int seed_bits,
                                               const SeedCostFn& cost) {
  PDC_CHECK(seed_bits >= 1 && seed_bits <= 30);
  engine::ScalarOracle oracle(cost);
  engine::SeedSearch search(oracle);
  return to_choice(search.conditional_expectation(seed_bits));
}

SeedChoice select_index_exhaustive(std::uint64_t family_size,
                                   const SeedCostFn& cost) {
  PDC_CHECK(family_size >= 1);
  engine::ScalarOracle oracle(cost);
  engine::SeedSearch search(oracle);
  return to_choice(search.exhaustive(family_size));
}

}  // namespace pdc::prg
