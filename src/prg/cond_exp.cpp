#include "pdc/prg/cond_exp.hpp"

#include <vector>

#include "pdc/util/check.hpp"
#include "pdc/util/parallel.hpp"

namespace pdc::prg {

SeedChoice select_seed_exhaustive(int seed_bits, const SeedCostFn& cost) {
  PDC_CHECK(seed_bits >= 1 && seed_bits <= 30);
  const std::uint64_t n = 1ULL << seed_bits;
  std::vector<double> c(n);
  parallel_for(n, [&](std::size_t s) { c[s] = cost(s); });
  SeedChoice out;
  out.evaluations = n;
  double total = 0.0;
  double best = c[0];
  std::uint64_t best_seed = 0;
  for (std::uint64_t s = 0; s < n; ++s) {
    total += c[s];
    if (c[s] < best) {
      best = c[s];
      best_seed = s;
    }
  }
  out.seed = best_seed;
  out.cost = best;
  out.mean_cost = total / static_cast<double>(n);
  return out;
}

SeedChoice select_seed_conditional_expectation(int seed_bits,
                                               const SeedCostFn& cost) {
  PDC_CHECK(seed_bits >= 1 && seed_bits <= 30);
  SeedChoice out;
  std::uint64_t prefix = 0;  // bits fixed so far (low bits)
  double overall_mean = 0.0;
  for (int bit = 0; bit < seed_bits; ++bit) {
    const int remaining = seed_bits - bit - 1;
    const std::uint64_t completions = 1ULL << remaining;
    double branch_mean[2] = {0.0, 0.0};
    for (int b = 0; b < 2; ++b) {
      const std::uint64_t base =
          prefix | (static_cast<std::uint64_t>(b) << bit);
      branch_mean[b] =
          parallel_sum(completions,
                       [&](std::size_t t) {
                         std::uint64_t seed =
                             base | (static_cast<std::uint64_t>(t) << (bit + 1));
                         return cost(seed);
                       }) /
          static_cast<double>(completions);
      out.evaluations += completions;
    }
    if (bit == 0) overall_mean = (branch_mean[0] + branch_mean[1]) / 2.0;
    prefix |= (branch_mean[1] < branch_mean[0] ? 1ULL : 0ULL) << bit;
  }
  out.seed = prefix;
  out.cost = cost(prefix);
  ++out.evaluations;
  out.mean_cost = overall_mean;
  return out;
}

SeedChoice select_index_exhaustive(std::uint64_t family_size,
                                   const SeedCostFn& cost) {
  PDC_CHECK(family_size >= 1);
  std::vector<double> c(family_size);
  parallel_for(family_size, [&](std::size_t s) { c[s] = cost(s); });
  SeedChoice out;
  out.evaluations = family_size;
  double total = 0.0;
  double best = c[0];
  std::uint64_t best_idx = 0;
  for (std::uint64_t s = 0; s < family_size; ++s) {
    total += c[s];
    if (c[s] < best) {
      best = c[s];
      best_idx = s;
    }
  }
  out.seed = best_idx;
  out.cost = best;
  out.mean_cost = total / static_cast<double>(family_size);
  return out;
}

}  // namespace pdc::prg
