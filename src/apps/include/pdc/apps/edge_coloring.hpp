#pragma once
// (2Δ-1)-edge-coloring via D1LC on the line graph — one of the two
// benchmark problems the paper's introduction names (edge-coloring
// algorithms consume D1LC as a subroutine, e.g. [Kuh20]).
//
// An edge uv sees deg(u)-1 + deg(v)-1 conflicting edges, so giving it a
// palette of that size + 1 (capped presentation: {0..2Δ-2} suffices)
// makes the line-graph instance exactly D1LC; any D1LC solver then
// yields a proper edge coloring with at most 2Δ-1 colors.

#include <cstdint>
#include <vector>

#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/palette.hpp"

namespace pdc::apps {

/// The line graph L(G): one node per edge of g, adjacency = shared
/// endpoint. `edge_endpoints[i]` maps line-graph node i back to its
/// (u, v) edge.
struct LineGraph {
  Graph graph;
  std::vector<std::pair<NodeId, NodeId>> edge_endpoints;
};
LineGraph build_line_graph(const Graph& g);

/// The induced D1LC instance: palette of edge uv = {0, ...,
/// deg(u)+deg(v)-2}, which has size (line-graph degree) + 1.
D1lcInstance edge_coloring_instance(const LineGraph& lg, const Graph& g);

struct EdgeColoringResult {
  /// Color per edge, indexed like LineGraph::edge_endpoints.
  std::vector<Color> colors;
  std::vector<std::pair<NodeId, NodeId>> edge_endpoints;
  std::uint64_t colors_used = 0;
  bool valid = false;                 // proper + within 2Δ-1
  d1lc::SolveResult solve;            // underlying D1LC result
};

/// End-to-end: line graph -> D1LC -> validation.
EdgeColoringResult edge_color(const Graph& g, const d1lc::SolverOptions& opt);

/// Validates a proper edge coloring of g (no two incident edges share a
/// color, all colors in [0, 2Δ-1)).
bool check_edge_coloring(const Graph& g,
                         const std::vector<std::pair<NodeId, NodeId>>& edges,
                         std::span<const Color> colors);

}  // namespace pdc::apps
