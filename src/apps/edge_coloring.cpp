#include "pdc/apps/edge_coloring.hpp"

#include <algorithm>

#include "pdc/util/parallel.hpp"

namespace pdc::apps {

LineGraph build_line_graph(const Graph& g) {
  LineGraph lg;
  // Enumerate edges (u < v) and remember, per node, its incident edges.
  std::vector<std::vector<NodeId>> incident(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (u > v) {
        NodeId e = static_cast<NodeId>(lg.edge_endpoints.size());
        lg.edge_endpoints.emplace_back(v, u);
        incident[v].push_back(e);
        incident[u].push_back(e);
      }
    }
  }
  std::vector<std::pair<NodeId, NodeId>> ledges;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& inc = incident[v];
    for (std::size_t i = 0; i < inc.size(); ++i)
      for (std::size_t j = i + 1; j < inc.size(); ++j)
        ledges.emplace_back(inc[i], inc[j]);
  }
  lg.graph = Graph::from_edges(
      static_cast<NodeId>(lg.edge_endpoints.size()), std::move(ledges));
  return lg;
}

D1lcInstance edge_coloring_instance(const LineGraph& lg, const Graph& g) {
  std::vector<std::vector<Color>> lists(lg.graph.num_nodes());
  parallel_for(lg.graph.num_nodes(), [&](std::size_t e) {
    auto [u, v] = lg.edge_endpoints[e];
    // deg(u)-1 + deg(v)-1 neighbors in L(G); palette one larger.
    Color size = static_cast<Color>(g.degree(u)) +
                 static_cast<Color>(g.degree(v)) - 1;
    lists[e].resize(static_cast<std::size_t>(size));
    for (Color c = 0; c < size; ++c)
      lists[e][static_cast<std::size_t>(c)] = c;
  });
  return {lg.graph, PaletteSet::from_lists(std::move(lists))};
}

EdgeColoringResult edge_color(const Graph& g,
                              const d1lc::SolverOptions& opt) {
  EdgeColoringResult out;
  LineGraph lg = build_line_graph(g);
  D1lcInstance inst = edge_coloring_instance(lg, g);
  out.solve = d1lc::solve_d1lc(inst, opt);
  out.colors = out.solve.coloring;
  out.edge_endpoints = lg.edge_endpoints;
  out.colors_used = count_colors_used(out.colors);
  out.valid = out.solve.valid &&
              check_edge_coloring(g, out.edge_endpoints, out.colors);
  return out;
}

bool check_edge_coloring(const Graph& g,
                         const std::vector<std::pair<NodeId, NodeId>>& edges,
                         std::span<const Color> colors) {
  if (edges.size() != colors.size()) return false;
  const Color bound = 2 * static_cast<Color>(g.max_degree()) - 1;
  // Group edge colors per endpoint; any duplicate within a node is a
  // conflict.
  std::vector<std::vector<Color>> at_node(g.num_nodes());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (colors[e] == kNoColor || colors[e] < 0 || colors[e] >= bound)
      return false;
    at_node[edges[e].first].push_back(colors[e]);
    at_node[edges[e].second].push_back(colors[e]);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& c = at_node[v];
    std::sort(c.begin(), c.end());
    if (std::adjacent_find(c.begin(), c.end()) != c.end()) return false;
  }
  return true;
}

}  // namespace pdc::apps
