#pragma once
// Round and space accounting for MPC executions.
//
// The theorems this library reproduces bound three observables: rounds,
// per-machine (local) space, and global space. Every simulated operation
// charges this ledger; experiment harnesses read it back. Phases let the
// E1/E2 experiments attribute rounds to pipeline stages (partition /
// chunk-coloring / procedure derandomization / low-degree finish).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pdc/obs/obs.hpp"
#include "pdc/util/check.hpp"

namespace pdc::mpc {

class Ledger {
 public:
  void begin_phase(std::string name) { phase_ = std::move(name); }
  const std::string& phase() const { return phase_; }

  /// Charge `k` synchronous MPC rounds to the current phase.
  void add_rounds(std::uint64_t k) {
    rounds_ += k;
    by_phase_[phase_] += k;
  }

  /// Record a per-machine space observation (peak words used).
  void observe_local_space(std::uint64_t words) {
    peak_local_ = std::max(peak_local_, words);
  }

  /// Record total words resident across machines at some instant.
  void observe_global_space(std::uint64_t words) {
    peak_global_ = std::max(peak_global_, words);
  }

  void record_violation(const std::string& what) { violations_.push_back(what); }

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t peak_local_space() const { return peak_local_; }
  std::uint64_t peak_global_space() const { return peak_global_; }
  const std::map<std::string, std::uint64_t>& rounds_by_phase() const {
    return by_phase_;
  }
  const std::vector<std::string>& violations() const { return violations_; }

  /// Merge a sub-execution (e.g. a recursive LowSpaceColorReduce call,
  /// whose parallel siblings share rounds — the caller decides whether to
  /// add rounds serially or take a max; this helper adds serially).
  void absorb(const Ledger& sub) {
    rounds_ += sub.rounds_;
    for (auto& [k, v] : sub.by_phase_) by_phase_[k] += v;
    peak_local_ = std::max(peak_local_, sub.peak_local_);
    peak_global_ = std::max(peak_global_, sub.peak_global_);
    violations_.insert(violations_.end(), sub.violations_.begin(),
                       sub.violations_.end());
  }

  /// Publish this ledger's accounting into a metrics registry:
  /// `mpc.rounds` as one counter per ledger phase (the phase *is* the
  /// label — round charges carry no route/plane/backend dimension),
  /// the space peaks as gauges, and the violation count. Publishing
  /// the same final ledger twice double-counts the round counters;
  /// call once per execution, on the fully-absorbed ledger (the
  /// pattern the tools' --metrics flag uses).
  void publish(obs::Metrics& metrics) const {
    for (const auto& [phase, rounds] : by_phase_) {
      if (rounds != 0) metrics.add("mpc.rounds", {.phase = phase}, rounds);
    }
    metrics.gauge_max("mpc.peak_local_space", {},
                      static_cast<double>(peak_local_));
    metrics.gauge_max("mpc.peak_global_space", {},
                      static_cast<double>(peak_global_));
    if (!violations_.empty())
      metrics.add("mpc.violations", {}, violations_.size());
  }

  /// For parallel sub-executions: rounds advance to the max of the
  /// siblings (they run concurrently on disjoint machines).
  void absorb_parallel(const std::vector<Ledger>& subs) {
    std::uint64_t max_rounds = 0;
    for (const auto& s : subs) {
      max_rounds = std::max(max_rounds, s.rounds_);
      peak_local_ = std::max(peak_local_, s.peak_local_);
      peak_global_ = std::max(peak_global_, s.peak_global_);
      violations_.insert(violations_.end(), s.violations_.begin(),
                         s.violations_.end());
    }
    rounds_ += max_rounds;
    by_phase_[phase_ + "(parallel)"] += max_rounds;
  }

 private:
  std::string phase_ = "init";
  std::uint64_t rounds_ = 0;
  std::uint64_t peak_local_ = 0;
  std::uint64_t peak_global_ = 0;
  std::map<std::string, std::uint64_t> by_phase_;
  std::vector<std::string> violations_;
};

}  // namespace pdc::mpc
