#pragma once
// MPC model parameters (Section 2.1 of the paper).
//
// The sublinear-space regime fixes local space s = O(n^phi) words for a
// constant phi in (0,1), and requires enough machines to hold the input:
// number of machines = Theta((n + m) / s), with global space O(m + n^{1+phi}).

#include <cmath>
#include <cstdint>

#include "pdc/util/check.hpp"

namespace pdc::mpc {

/// Which execution substrate runs Cluster rounds (pdc/mpc/substrate.hpp).
/// Determinism contract: every substrate produces bit-identical inboxes,
/// storages and ledger accounting, so the choice is purely a performance
/// decision — exactly like the engine's SearchBackend.
enum class SubstrateKind : std::uint8_t {
  /// The reference simulator: machine steps and the message exchange
  /// run serially on the host thread.
  kSequential,
  /// Persistent pinned workers, rounds separated by sense-reversing
  /// barriers, message exchange as a parallel sender-sorted scatter.
  kThreadPool,
};

/// Stable names for trace tags and metric labels
/// ("sequential" / "thread-pool").
const char* to_string(SubstrateKind kind);

struct Config {
  std::uint64_t n = 0;                 // number of graph nodes
  double phi = 0.5;                    // local-space exponent
  std::uint64_t local_space_words = 0; // s
  std::uint32_t num_machines = 0;

  /// Execution substrate for Cluster::round.
  SubstrateKind substrate = SubstrateKind::kSequential;
  /// Thread-pool worker count; 0 derives it from the hardware
  /// concurrency. Always clamped to [1, num_machines] — more workers
  /// than machines would only wait at the barriers.
  std::uint32_t substrate_threads = 0;
  /// Best-effort worker-to-core pinning (Linux affinity; ignored where
  /// unsupported). Off for oversubscribed test pools if contention on
  /// one core matters more than locality.
  bool pin_substrate_threads = true;

  /// Standard sublinear configuration: s = headroom * ceil(n^phi),
  /// machines = ceil(total_input_words / s) + n/s slack so each node can
  /// be assigned a home machine (the paper allows O~(n+m)/s machines and
  /// explicitly "the ability to assign a machine to each node").
  static Config sublinear(std::uint64_t n, double phi,
                          std::uint64_t total_input_words,
                          double headroom = 4.0) {
    PDC_CHECK(phi > 0.0 && phi < 1.0);
    Config c;
    c.n = n;
    c.phi = phi;
    c.local_space_words = static_cast<std::uint64_t>(
        std::ceil(headroom * std::pow(static_cast<double>(n), phi)));
    c.local_space_words = std::max<std::uint64_t>(c.local_space_words, 64);
    std::uint64_t need = total_input_words / c.local_space_words + 1;
    std::uint64_t node_homes = n / c.local_space_words + 1;
    c.num_machines = static_cast<std::uint32_t>(need + node_homes + 1);
    return c;
  }

  std::uint64_t global_space_words() const {
    return static_cast<std::uint64_t>(num_machines) * local_space_words;
  }
};

}  // namespace pdc::mpc
