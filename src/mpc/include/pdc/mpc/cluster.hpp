#pragma once
// Executable MPC cluster: machines, synchronous rounds, capacity-checked
// message exchange, pluggable execution substrate.
//
// Semantics follow Section 2.1: in each round every machine performs
// arbitrary local computation on its resident words, then sends messages
// to named machines; all words sent by a machine and all words received
// by a machine in one round must fit in its local space s.
//
// ## The Substrate contract (pdc/mpc/substrate.hpp)
//
// Cluster::round dispatches the two data-parallel halves of a round —
// the machine steps and the message exchange — through a pluggable
// mpc::Substrate selected by Config::substrate:
//
//   kSequential  the reference simulator: serial machine-step loop,
//                serial sender-order exchange. The semantics oracle
//                every other substrate is differentially tested
//                against (ctest -L substrate).
//   kThreadPool  persistent workers (machine m belongs to worker
//                m % threads), pinned to cores best-effort, with the
//                round phases separated by sense-reversing barriers
//                and the exchange run as a parallel sender-sorted
//                scatter (worker w builds the inboxes of destinations
//                d with d % threads == w).
//
// Every substrate must preserve, bit for bit:
//   - inbox framing: machine d's inbox is the concatenation, over
//     senders m = 0..p-1 in ascending order, of m's messages to d in
//     send order, each preceded by the 2-word {sender, length} header
//     (for_each_message is the one reader of this format);
//   - storage: step(m) is invoked exactly once per machine per round
//     with that machine's previous-round inbox and its storage;
//   - ledger charging: all space checks and round charges run
//     host-side between the phases, in machine order, identically on
//     every substrate (the capacity-violation exception therefore
//     always throws on the host thread, never inside a worker).
// Selections, SearchStats and Ledger round counts of any protocol
// composed on Cluster::round are consequently substrate-invariant —
// the differential suite in tests/test_substrate.cpp pins this for
// the four engine search routes at machine counts 1..17.
//
// Steps run concurrently for distinct machines on parallel substrates
// (they are independent by the model's definition) and must not throw —
// an exception escaping a worker terminates the process; report
// failures through captured state and check host-side, as the
// converge-cast's fold_ok flags do.
//
// This substrate is exercised directly by the E7 experiment and the unit
// tests for sorting/prefix primitives. The coloring pipeline charges its
// (analytically known) round costs to a Ledger instead of routing every
// word through here — see cost_model.hpp — which keeps laptop-scale runs
// tractable while the primitives prove the substrate is real.

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "pdc/mpc/ledger.hpp"
#include "pdc/mpc/model.hpp"

namespace pdc::mpc {

using Word = std::uint64_t;
using MachineId = std::uint32_t;

/// Per-step outbox handed to each machine; collects (dest, payload).
/// Payload words live in one flat arena per machine, so steady-state
/// rounds allocate nothing once capacities have warmed up (the
/// capacity-preserving clear() runs at the top of every round) — the
/// per-message std::vector of the original simulator was the round
/// loop's allocation hot spot.
class Outbox {
 public:
  void send(MachineId to, std::span<const Word> payload) {
    msgs_.push_back({to, words_.size(), payload.size()});
    words_.insert(words_.end(), payload.begin(), payload.end());
  }
  void send(MachineId to, std::initializer_list<Word> payload) {
    send(to, std::span<const Word>(payload.begin(), payload.size()));
  }
  void send(MachineId to, const std::vector<Word>& payload) {
    send(to, std::span<const Word>(payload.data(), payload.size()));
  }
  std::uint64_t words_sent() const { return words_.size(); }

  /// One queued message: destination plus its [offset, offset + len)
  /// window of the arena. Read by the substrates' exchange scatter.
  struct Msg {
    MachineId to;
    std::size_t offset;
    std::size_t len;
  };
  std::span<const Msg> messages() const { return msgs_; }
  std::span<const Word> payload(const Msg& m) const {
    return std::span<const Word>(words_.data() + m.offset, m.len);
  }

  /// Capacity-preserving reset, run by Cluster::round before the steps.
  void clear() {
    msgs_.clear();
    words_.clear();
  }

 private:
  std::vector<Msg> msgs_;
  std::vector<Word> words_;  // arena: every payload, concatenated
};

/// A machine step: read the previous round's inbox, mutate the
/// machine's persistent storage, queue outgoing messages. May run
/// concurrently for distinct machines (see the Substrate contract
/// above); must not throw.
using StepFn = std::function<void(MachineId, const std::vector<Word>& inbox,
                                  std::vector<Word>& storage, Outbox&)>;

class Substrate;  // pluggable round executor — pdc/mpc/substrate.hpp

/// Host-side accounting of where round wall time goes, accumulated by
/// Cluster::round across the cluster's lifetime. Mirrored into
/// mpc.substrate.* metrics (per round, keyed by the open obs phase and
/// the substrate name as the backend label) when metrics collection is
/// on, and tagged onto the per-round substrate.round trace spans.
struct SubstrateStats {
  std::uint64_t rounds = 0;
  /// Wall time in the machine-step phase, milliseconds.
  double step_ms = 0.0;
  /// Wall time in the message-exchange phase, milliseconds.
  double exchange_ms = 0.0;
  /// Time workers spent blocked at the round barriers, summed across
  /// workers (zero on the sequential reference). High barrier wait with
  /// low step time means the round is too fine-grained to parallelize.
  double barrier_wait_ms = 0.0;
};

class Cluster {
 public:
  explicit Cluster(Config cfg, bool strict = true);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const Config& config() const { return cfg_; }
  Ledger& ledger() { return ledger_; }
  const Ledger& ledger() const { return ledger_; }
  MachineId num_machines() const { return cfg_.num_machines; }

  /// Machine-local persistent storage (counts against local space).
  std::vector<Word>& storage(MachineId m) { return storage_[m]; }
  const std::vector<Word>& storage(MachineId m) const { return storage_[m]; }

  /// Messages delivered to machine m in the last exchange, flattened in
  /// (sender-sorted) arrival order as (payload...) concatenation — each
  /// message is preceded by a 2-word header {sender, length}.
  const std::vector<Word>& inbox(MachineId m) const { return inbox_[m]; }

  /// Host-side release of machine m's inbox after an out-of-round
  /// readout (delivery was already capacity-checked), so protocols
  /// composed on one cluster don't mis-frame each other's leftovers.
  void clear_inbox(MachineId m) { inbox_[m].clear(); }

  /// Run one synchronous round: every machine executes `step`, then the
  /// produced messages are exchanged. Charges 1 round to the ledger and
  /// verifies space/communication limits. Step execution and exchange
  /// run on the configured substrate; all checks run host-side.
  using StepFn = mpc::StepFn;
  void round(const StepFn& step);

  /// Convenience: run `k` rounds of the same step.
  void rounds(int k, const StepFn& step) {
    for (int i = 0; i < k; ++i) round(step);
  }

  /// Cumulative substrate timing (all rounds so far).
  const SubstrateStats& substrate_stats() const { return substrate_stats_; }
  /// The configured substrate's stable name ("sequential" /
  /// "thread-pool"); available without instantiating it.
  const char* substrate_name() const;
  /// Workers the configured substrate executes machine steps with
  /// (1 for the sequential reference). The engine's kAuto backend
  /// cutover divides its item floor by this — a parallel substrate
  /// amortizes the sharded backend's per-round overhead, so kSharded
  /// starts paying at proportionally smaller searches.
  unsigned substrate_concurrency() const;

 private:
  Substrate& substrate();
  void check_space(MachineId m, std::uint64_t words, const char* what);

  Config cfg_;
  bool strict_;
  Ledger ledger_;
  std::vector<std::vector<Word>> storage_;
  std::vector<std::vector<Word>> inbox_;
  std::vector<Outbox> outbox_;
  // Per-destination scratch reused across rounds (payload words for the
  // capacity check; message counts for exact inbox reservation).
  std::vector<std::uint64_t> in_payload_;
  std::vector<std::uint64_t> in_msgs_;
  std::unique_ptr<Substrate> substrate_;  // created on first round
  SubstrateStats substrate_stats_;
  std::uint64_t barrier_wait_seen_us_ = 0;
};

/// Walks an inbox's {sender, length, payload...} frames, calling
/// fn(sender, payload) per message — the one implementation of the
/// header format Cluster::round produces.
template <typename Fn>
void for_each_message(const std::vector<Word>& inbox, Fn&& fn) {
  std::size_t i = 0;
  while (i < inbox.size()) {
    const MachineId sender = static_cast<MachineId>(inbox[i]);
    const std::size_t len = static_cast<std::size_t>(inbox[i + 1]);
    fn(sender, std::span<const Word>(inbox.data() + i + 2, len));
    i += 2 + len;
  }
}

}  // namespace pdc::mpc
