#pragma once
// Executable MPC cluster: machines, synchronous rounds, capacity-checked
// message exchange.
//
// Semantics follow Section 2.1: in each round every machine performs
// arbitrary local computation on its resident words, then sends messages
// to named machines; all words sent by a machine and all words received
// by a machine in one round must fit in its local space s. Machine steps
// run OpenMP-parallel (they are independent by the model's definition).
//
// This substrate is exercised directly by the E7 experiment and the unit
// tests for sorting/prefix primitives. The coloring pipeline charges its
// (analytically known) round costs to a Ledger instead of routing every
// word through here — see cost_model.hpp — which keeps laptop-scale runs
// tractable while the primitives prove the substrate is real.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pdc/mpc/ledger.hpp"
#include "pdc/mpc/model.hpp"

namespace pdc::mpc {

using Word = std::uint64_t;
using MachineId = std::uint32_t;

/// Per-step outbox handed to each machine; collects (dest, payload).
class Outbox {
 public:
  void send(MachineId to, std::vector<Word> payload) {
    out_words_ += payload.size();
    msgs_.emplace_back(to, std::move(payload));
  }
  std::uint64_t words_sent() const { return out_words_; }

 private:
  friend class Cluster;
  std::vector<std::pair<MachineId, std::vector<Word>>> msgs_;
  std::uint64_t out_words_ = 0;
};

class Cluster {
 public:
  explicit Cluster(Config cfg, bool strict = true)
      : cfg_(cfg), strict_(strict), storage_(cfg.num_machines),
        inbox_(cfg.num_machines) {}

  const Config& config() const { return cfg_; }
  Ledger& ledger() { return ledger_; }
  const Ledger& ledger() const { return ledger_; }
  MachineId num_machines() const { return cfg_.num_machines; }

  /// Machine-local persistent storage (counts against local space).
  std::vector<Word>& storage(MachineId m) { return storage_[m]; }
  const std::vector<Word>& storage(MachineId m) const { return storage_[m]; }

  /// Messages delivered to machine m in the last exchange, flattened in
  /// (sender-sorted) arrival order as (payload...) concatenation — each
  /// message is preceded by a 2-word header {sender, length}.
  const std::vector<Word>& inbox(MachineId m) const { return inbox_[m]; }

  /// Host-side release of machine m's inbox after an out-of-round
  /// readout (delivery was already capacity-checked), so protocols
  /// composed on one cluster don't mis-frame each other's leftovers.
  void clear_inbox(MachineId m) { inbox_[m].clear(); }

  /// Run one synchronous round: every machine executes `step`, then the
  /// produced messages are exchanged. Charges 1 round to the ledger and
  /// verifies space/communication limits.
  using StepFn = std::function<void(MachineId, const std::vector<Word>& inbox,
                                    std::vector<Word>& storage, Outbox&)>;
  void round(const StepFn& step);

  /// Convenience: run `k` rounds of the same step.
  void rounds(int k, const StepFn& step) {
    for (int i = 0; i < k; ++i) round(step);
  }

 private:
  void check_space(MachineId m, std::uint64_t words, const char* what);

  Config cfg_;
  bool strict_;
  Ledger ledger_;
  std::vector<std::vector<Word>> storage_;
  std::vector<std::vector<Word>> inbox_;
};

/// Walks an inbox's {sender, length, payload...} frames, calling
/// fn(sender, payload) per message — the one implementation of the
/// header format Cluster::round produces.
template <typename Fn>
void for_each_message(const std::vector<Word>& inbox, Fn&& fn) {
  std::size_t i = 0;
  while (i < inbox.size()) {
    const MachineId sender = static_cast<MachineId>(inbox[i]);
    const std::size_t len = static_cast<std::size_t>(inbox[i + 1]);
    fn(sender, std::span<const Word>(inbox.data() + i + 2, len));
    i += 2 + len;
  }
}

}  // namespace pdc::mpc
