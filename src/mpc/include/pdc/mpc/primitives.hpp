#pragma once
// Constant-round MPC primitives (Goodrich–Sitchinava–Zhang style):
// deterministic sample sort, tree broadcast/reduction, prefix sums.
//
// Section 2.1 of the paper leans on [GSZ11]: sorting and prefix sums run
// in O(1) rounds in sublinear-space MPC, which in turn enables gathering
// node neighborhoods onto contiguous machine blocks. These are the
// genuinely message-passed versions, run on the Cluster substrate with
// its space checks active; tests and experiment E7 verify both results
// and round counts.

#include <cstdint>
#include <span>
#include <vector>

#include "pdc/mpc/cluster.hpp"

namespace pdc::mpc {

/// A sortable record: 64-bit key, 64-bit value.
struct Record {
  Word key = 0;
  Word value = 0;
  friend bool operator<(const Record& a, const Record& b) {
    return a.key < b.key || (a.key == b.key && a.value < b.value);
  }
  friend bool operator==(const Record& a, const Record& b) {
    return a.key == b.key && a.value == b.value;
  }
};

/// Loads records into cluster storage, balanced round-robin by blocks.
/// (Input distribution is arbitrary in the model; this is round-free.)
void scatter_records(Cluster& c, std::span<const Record> records);

/// Reads all records back (host-side test/verification helper, not an
/// MPC operation — charges no rounds).
std::vector<Record> collect_records(const Cluster& c);

/// Broadcast `payload` from machine `root` to every machine via a
/// fanout-sqrt(p) tree: O(1) rounds, O(sqrt(p) * |payload|) words per
/// machine per round. Result lands in each machine's inbox-processing;
/// on return every machine's storage tail holds the payload.
/// Returns the number of rounds used.
int broadcast(Cluster& c, MachineId root, std::span<const Word> payload,
              std::vector<std::vector<Word>>& received);

/// Sum-reduction of one word per machine to the root via the same tree;
/// returns the total (also left on root). Rounds used: O(1).
Word reduce_sum(Cluster& c, MachineId root, std::span<const Word> local_values,
                int* rounds_used = nullptr);

/// Exclusive prefix sums across machines: out[m] = sum of in[m'] for
/// m' < m. O(1) rounds via gather-to-root + broadcast.
std::vector<Word> exclusive_prefix(Cluster& c,
                                   std::span<const Word> local_values);

/// Deterministic sample sort of the records resident in cluster storage:
/// local sort, regular sampling, splitter broadcast, routed exchange,
/// local merge. O(1) rounds for inputs with total size <= s * p / 4 and
/// s >= ~p^2 samples capacity (asserted). After return, records are
/// globally sorted across machines in machine order.
void sample_sort(Cluster& c);

}  // namespace pdc::mpc
