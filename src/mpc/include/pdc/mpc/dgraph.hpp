#pragma once
// Distributed graph layout on the Cluster and the Lemma-17 gather.
//
// Edges are distributed as (node, neighbor) records via the deterministic
// sample sort, which places each node's adjacency list on a contiguous
// block of machines and lets us read off degrees — exactly the Section
// 2.1 observation that sorting gives neighborhood gathering "for free".
// gather_neighbor_lists() then implements both Lemma 17 subroutines: each
// node's machine sends its d(v)-word adjacency to each neighbor's home
// machine, so every node learns the edges among its neighbors (its 2-hop
// structure) in O(1) rounds, provided Δ <= sqrt(s).

#include <cstdint>
#include <vector>

#include "pdc/graph/graph.hpp"
#include "pdc/mpc/cluster.hpp"
#include "pdc/mpc/primitives.hpp"

namespace pdc::mpc {

class DistributedGraph {
 public:
  /// Distributes g's edges across the cluster (via sample_sort) and
  /// assigns each node a home machine. Charges the sort's rounds.
  DistributedGraph(Cluster& cluster, const Graph& g);

  MachineId home_of(NodeId v) const {
    return static_cast<MachineId>(v % cluster_->num_machines());
  }

  /// In-MPC degree computation: counts each node's records from the
  /// sorted edge distribution and routes the counts to home machines.
  /// Returns degrees indexed by node. O(1) rounds.
  std::vector<std::uint32_t> compute_degrees();

  /// Lemma 17: every node v receives the adjacency list of each of its
  /// neighbors at its home machine. Returns, per node, the concatenated
  /// (neighbor, neighbor-of-neighbor) pairs received. Requires
  /// Δ <= sqrt(s) (checked by the cluster's space enforcement — each
  /// home machine receives <= Δ lists of <= Δ words for each of its
  /// resident nodes; callers size clusters accordingly).
  std::vector<std::vector<std::pair<NodeId, NodeId>>> gather_neighbor_lists();

  const Graph& graph() const { return *g_; }

 private:
  Cluster* cluster_;
  const Graph* g_;
};

}  // namespace pdc::mpc
