#pragma once
// Round-cost model for the coloring pipeline.
//
// The pipeline's data movement is executed in shared memory for speed,
// but every step charges the Ledger the MPC round cost the paper proves
// for it, with the model's preconditions *checked* (not assumed) at charge
// time — e.g. Lemma 17's gather requires Δ <= sqrt(s) and charges O(1)
// rounds while observing Δ^2 words of local space. The constants below
// are the per-operation round counts of the cited constructions; E1/E2
// report rounds in these units.
//
// The low-level primitives (sort, prefix, broadcast) also exist as real
// message-passing implementations on the Cluster (primitives.hpp); tests
// confirm the charged constants match the rounds those implementations
// actually take at laptop scale.

#include <cmath>
#include <cstdint>

#include "pdc/mpc/ledger.hpp"
#include "pdc/mpc/model.hpp"

namespace pdc::mpc {

class CostModel {
 public:
  CostModel(Config cfg, Ledger& ledger) : cfg_(cfg), ledger_(&ledger) {}

  const Config& config() const { return cfg_; }
  Ledger& ledger() { return *ledger_; }

  /// [GSZ11] deterministic sort / prefix sums: O(1) rounds. The sample-
  /// sort in primitives.cpp uses 4 communication rounds; charge that.
  void charge_sort(std::uint64_t total_words) {
    observe_balanced(total_words);
    ledger_->add_rounds(4);
  }

  /// One round of a LOCAL algorithm simulated in MPC (Section 3):
  /// requires s >= Δ^2 so a machine holds a node's messages and 2-hop
  /// lookups; costs O(1) MPC rounds. Charge 2 (send + receive routing).
  void charge_local_round(std::uint64_t max_degree, int local_rounds = 1) {
    require_degree_sq(max_degree, "LOCAL-round simulation");
    ledger_->add_rounds(2 * static_cast<std::uint64_t>(local_rounds));
  }

  /// Lemma 17: node-centric send of d(v) words to each neighbor, or
  /// collecting edges among neighbors (2-hop); O(1) rounds given
  /// Δ <= sqrt(s). Observes Δ^2 local-space use.
  void charge_neighborhood_gather(std::uint64_t max_degree) {
    require_degree_sq(max_degree, "Lemma-17 gather");
    ledger_->observe_local_space(max_degree * max_degree);
    ledger_->add_rounds(2);
  }

  /// Collecting a radius-r ball of total size `ball_words` onto one
  /// machine (Lemma 10 preprocessing gathers 8τ-hop inputs; Theorem 12
  /// gathers 4τ-radius balls for the power-graph coloring). Takes r
  /// doubling rounds; space must hold the ball.
  void charge_ball_gather(std::uint64_t ball_words, int radius) {
    ledger_->observe_local_space(ball_words);
    if (ball_words > cfg_.local_space_words)
      ledger_->record_violation("ball exceeds local space");
    ledger_->add_rounds(static_cast<std::uint64_t>(radius));
  }

  /// Method of conditional expectations over a d-bit seed, implemented
  /// MPC-style ([CDP21b]): machines aggregate partial expectations and a
  /// coordinator fixes bits in O(1) batches. Charge 2 rounds per batch
  /// of bits with batches = ceil(d / bits_per_batch); the cited
  /// implementations fix Θ(log n) bits per exchange, so one batch here.
  void charge_conditional_expectation(int seed_bits) {
    (void)seed_bits;
    ledger_->add_rounds(2);
  }

  /// Linial-style O(Δ^2)-coloring of a power graph, simulated round by
  /// round (Theorem 12 proof): O(τ + log* n) rounds.
  void charge_power_graph_coloring(int tau, std::uint64_t n) {
    ledger_->add_rounds(static_cast<std::uint64_t>(tau) + log_star(n));
  }

  /// Final greedy completion of n^{o(1)} stragglers on one machine
  /// (Theorem 12): O(1) rounds to collect + color.
  void charge_greedy_finish(std::uint64_t subgraph_words) {
    ledger_->observe_local_space(subgraph_words);
    if (subgraph_words > cfg_.local_space_words)
      ledger_->record_violation("greedy-finish subgraph exceeds local space");
    ledger_->add_rounds(2);
  }

  static std::uint64_t log_star(std::uint64_t n) {
    std::uint64_t r = 0;
    double x = static_cast<double>(n);
    while (x > 1.0) {
      x = std::log2(std::max(x, 1.000001));
      ++r;
      if (r > 8) break;
    }
    return r;
  }

 private:
  void require_degree_sq(std::uint64_t max_degree, const char* what) {
    if (max_degree * max_degree > cfg_.local_space_words) {
      ledger_->record_violation(std::string(what) +
                                ": Δ^2 exceeds local space");
    }
    ledger_->observe_local_space(max_degree * max_degree);
  }

  void observe_balanced(std::uint64_t total_words) {
    std::uint64_t per =
        total_words / std::max<std::uint64_t>(1, cfg_.num_machines) + 1;
    ledger_->observe_local_space(per);
    ledger_->observe_global_space(total_words);
  }

  Config cfg_;
  Ledger* ledger_;
};

}  // namespace pdc::mpc
