#pragma once
// Pluggable execution substrates for mpc::Cluster — the two
// data-parallel halves of a synchronous round (machine steps, message
// exchange) behind one interface, so the simulator and the real
// parallel runtime are interchangeable without touching protocol code.
//
// The contract (documented in full on cluster.hpp): a substrate runs
// step(m) exactly once per machine against that machine's buffers, and
// delivers outboxes into inboxes with sender-sorted framing identical
// to the sequential reference — bit for bit, so Selections and Ledger
// accounting of anything composed on Cluster::round are
// substrate-invariant. All capacity checks and ledger charges stay on
// the host, between the phases; substrates only move data.
//
//   SequentialSubstrate  serial loops on the host thread — the
//                        reference implementation and the semantics
//                        oracle for the differential suite.
//   ThreadPoolSubstrate  persistent workers created once and reused
//                        every round (machine m and inbox-destination
//                        d belong to worker index m % threads), pinned
//                        to cores best-effort, with host and workers
//                        meeting at sense-reversing barriers
//                        (pdc/util/sense_barrier.hpp) twice per phase.
//                        The exchange is a parallel sender-sorted
//                        scatter: each worker walks every machine's
//                        outbox in sender order and copies out only
//                        the messages addressed to its destinations,
//                        reproducing the reference framing with no
//                        write contention.
//
// Worker-count resolution lives in planned_concurrency so the engine's
// kAuto cutover can ask "how parallel would this cluster's rounds be"
// without spinning the pool up.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "pdc/mpc/cluster.hpp"
#include "pdc/util/sense_barrier.hpp"

namespace pdc::mpc {

/// One round's buffers, lent to the substrate by Cluster::round.
/// Indexed per machine; the substrate must not resize the outer
/// vectors. `step` is only valid during run_steps.
struct RoundBuffers {
  const StepFn* step = nullptr;
  std::vector<std::vector<Word>>* inbox = nullptr;
  std::vector<std::vector<Word>>* storage = nullptr;
  std::vector<Outbox>* outbox = nullptr;
  /// Per-destination frame sizes computed by the host validation pass
  /// (payload words + 2 header words per message), so exchange can
  /// reserve each inbox exactly instead of growing it.
  const std::vector<std::uint64_t>* inbox_frame_words = nullptr;
};

class Substrate {
 public:
  virtual ~Substrate() = default;

  /// Stable name for trace tags / metric labels, matching
  /// to_string(SubstrateKind).
  virtual const char* name() const = 0;
  /// Workers executing machine steps (1 for the sequential reference).
  virtual unsigned concurrency() const = 0;

  /// Phase 1: run step(m) once for every machine m, against inbox[m] /
  /// storage[m] / outbox[m]. Outboxes arrive cleared.
  virtual void run_steps(const RoundBuffers& r) = 0;
  /// Phase 2: deliver every outbox message into the destination
  /// inboxes with the reference sender-sorted framing. Called only
  /// after the host validated destinations and capacities.
  virtual void exchange(const RoundBuffers& r) = 0;

  /// Cumulative microseconds workers have spent blocked at round
  /// barriers (0 for substrates without barriers). Cluster::round
  /// diffs successive readings into SubstrateStats::barrier_wait_ms.
  virtual std::uint64_t barrier_wait_us() const { return 0; }
};

/// The worker count Config would resolve to: 1 for kSequential;
/// for kThreadPool, substrate_threads (0 -> hardware concurrency)
/// clamped to [1, num_machines].
unsigned planned_concurrency(const Config& cfg);

/// Builds the configured substrate. The thread-pool variant spawns its
/// workers here — construct once per cluster, not per round (Cluster
/// does this lazily on the first round).
std::unique_ptr<Substrate> make_substrate(const Config& cfg);

/// Reference implementation: both phases as serial host-side loops.
class SequentialSubstrate final : public Substrate {
 public:
  const char* name() const override;
  unsigned concurrency() const override { return 1; }
  void run_steps(const RoundBuffers& r) override;
  void exchange(const RoundBuffers& r) override;
};

/// Persistent worker pool; see the header comment for the round
/// protocol. Thread-safe only in the Cluster::round sense: one host
/// thread drives run_steps / exchange, never concurrently.
class ThreadPoolSubstrate final : public Substrate {
 public:
  ThreadPoolSubstrate(MachineId machines, unsigned threads, bool pin);
  ~ThreadPoolSubstrate() override;

  const char* name() const override;
  unsigned concurrency() const override { return threads_; }
  void run_steps(const RoundBuffers& r) override;
  void exchange(const RoundBuffers& r) override;
  std::uint64_t barrier_wait_us() const override {
    return barrier_wait_us_.load(std::memory_order_relaxed);
  }

 private:
  enum class Phase : std::uint8_t { kStep, kExchange, kStop };

  void worker_main(unsigned w);
  void run_phase(Phase phase, const RoundBuffers* r);

  const MachineId machines_;
  const unsigned threads_;
  const bool pin_;
  // Handshake: the host publishes phase_/round_, then host and workers
  // meet at start_; workers run their machine slice and everyone meets
  // at finish_. Plain (non-atomic) members are safe: they are written
  // strictly before the start_ arrival and read strictly after it, and
  // the barrier's release/acquire pair orders the accesses.
  Phase phase_ = Phase::kStep;
  const RoundBuffers* round_ = nullptr;
  SenseBarrier start_;
  SenseBarrier finish_;
  bool host_start_sense_ = false;
  bool host_finish_sense_ = false;
  std::atomic<std::uint64_t> barrier_wait_us_{0};
  std::vector<std::thread> pool_;
};

}  // namespace pdc::mpc
