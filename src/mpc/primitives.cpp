#include "pdc/mpc/primitives.hpp"

#include <algorithm>
#include <cmath>

namespace pdc::mpc {

namespace {

std::vector<Record> unpack(const std::vector<Word>& words) {
  PDC_CHECK(words.size() % 2 == 0);
  std::vector<Record> out(words.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = {words[2 * i], words[2 * i + 1]};
  return out;
}

void pack_into(std::span<const Record> recs, std::vector<Word>& words) {
  words.clear();
  words.reserve(recs.size() * 2);
  for (const auto& r : recs) {
    words.push_back(r.key);
    words.push_back(r.value);
  }
}

std::uint32_t tree_fanout(MachineId p) {
  return std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(std::ceil(std::sqrt(double(p)))));
}

}  // namespace

void scatter_records(Cluster& c, std::span<const Record> records) {
  const MachineId p = c.num_machines();
  const std::size_t per = (records.size() + p - 1) / p;
  for (MachineId m = 0; m < p; ++m) {
    std::size_t lo = std::min(records.size(), per * m);
    std::size_t hi = std::min(records.size(), per * (m + 1));
    pack_into(records.subspan(lo, hi - lo), c.storage(m));
  }
}

std::vector<Record> collect_records(const Cluster& c) {
  std::vector<Record> out;
  for (MachineId m = 0; m < c.num_machines(); ++m) {
    auto recs = unpack(c.storage(m));
    out.insert(out.end(), recs.begin(), recs.end());
  }
  return out;
}

int broadcast(Cluster& c, MachineId root, std::span<const Word> payload,
              std::vector<std::vector<Word>>& received) {
  const MachineId p = c.num_machines();
  const std::uint32_t f = tree_fanout(p);
  received.assign(p, {});
  received[root].assign(payload.begin(), payload.end());
  // Level 1: root -> relay leaders (machines m with m % f == 0 style
  // grouping on the rotated index space so root is its own leader).
  // We rotate indices so the tree is rooted at `root`.
  auto rot = [&](MachineId m) { return (m + p - root) % p; };    // logical
  auto unrot = [&](MachineId lm) { return (lm + root) % p; };    // physical
  int rounds = 0;

  // Round A: root sends to each group leader (logical indices 0, f, 2f..).
  c.round([&](MachineId m, const std::vector<Word>&, std::vector<Word>&,
              Outbox& out) {
    if (m != root) return;
    for (MachineId leader = 0; leader < p; leader += f) {
      if (leader == 0) continue;  // root is leader of group 0
      out.send(unrot(leader), payload);
    }
  });
  ++rounds;
  // Stash leader copies.
  for (MachineId m = 0; m < p; ++m) {
    for_each_message(c.inbox(m), [&](MachineId, std::span<const Word> pl) {
      received[m].assign(pl.begin(), pl.end());
    });
  }
  // Round B: each leader fans out within its group.
  c.round([&](MachineId m, const std::vector<Word>&, std::vector<Word>&,
              Outbox& out) {
    MachineId lm = rot(m);
    if (lm % f != 0) return;
    if (received[m].empty()) return;
    for (std::uint32_t i = 1; i < f; ++i) {
      MachineId member = lm + i;
      if (member >= p) break;
      out.send(unrot(member), received[m]);
    }
  });
  ++rounds;
  for (MachineId m = 0; m < p; ++m) {
    for_each_message(c.inbox(m), [&](MachineId, std::span<const Word> pl) {
      received[m].assign(pl.begin(), pl.end());
    });
  }
  return rounds;
}

Word reduce_sum(Cluster& c, MachineId root, std::span<const Word> local_values,
                int* rounds_used) {
  const MachineId p = c.num_machines();
  PDC_CHECK(local_values.size() == p);
  const std::uint32_t f = tree_fanout(p);
  auto rot = [&](MachineId m) { return (m + p - root) % p; };
  auto unrot = [&](MachineId lm) { return (lm + root) % p; };

  std::vector<Word> partial(p, 0);
  // Round A: members send to their group leader.
  c.round([&](MachineId m, const std::vector<Word>&, std::vector<Word>&,
              Outbox& out) {
    MachineId lm = rot(m);
    MachineId leader = unrot(lm - lm % f);
    if (leader != m) out.send(leader, {local_values[m]});
  });
  for (MachineId m = 0; m < p; ++m) {
    MachineId lm = rot(m);
    if (lm % f == 0) {
      Word sum = local_values[m];
      for_each_message(c.inbox(m), [&](MachineId, std::span<const Word> pl) {
        sum += pl[0];
      });
      partial[m] = sum;
    }
  }
  // Round B: leaders send partials to root.
  Word total = 0;
  c.round([&](MachineId m, const std::vector<Word>&, std::vector<Word>&,
              Outbox& out) {
    MachineId lm = rot(m);
    if (lm % f == 0 && m != root) out.send(root, {partial[m]});
  });
  total = partial[root];
  for_each_message(c.inbox(root), [&](MachineId, std::span<const Word> pl) {
    total += pl[0];
  });
  if (rounds_used) *rounds_used = 2;
  return total;
}

std::vector<Word> exclusive_prefix(Cluster& c,
                                   std::span<const Word> local_values) {
  const MachineId p = c.num_machines();
  PDC_CHECK(local_values.size() == p);
  // Gather all per-machine values to machine 0 via the two-level tree,
  // compute prefixes locally, broadcast back. O(1) rounds; the gathered
  // vector is p words, within s for the configurations we run (p <= s).
  const std::uint32_t f = tree_fanout(p);
  std::vector<std::vector<Word>> group_vals(p);
  c.round([&](MachineId m, const std::vector<Word>&, std::vector<Word>&,
              Outbox& out) {
    MachineId leader = m - m % f;
    if (leader != m) out.send(leader, {m, local_values[m]});
  });
  for (MachineId m = 0; m < p; m += f) {
    auto& gv = group_vals[m];
    gv.resize(2);
    gv[0] = m;
    gv[1] = local_values[m];
    for_each_message(c.inbox(m), [&](MachineId, std::span<const Word> pl) {
      gv.push_back(pl[0]);
      gv.push_back(pl[1]);
    });
  }
  std::vector<Word> all(p, 0);
  c.round([&](MachineId m, const std::vector<Word>&, std::vector<Word>&,
              Outbox& out) {
    if (m % f == 0 && m != 0) out.send(0, group_vals[m]);
  });
  for (std::size_t i = 0; i + 1 < group_vals[0].size(); i += 2)
    all[group_vals[0][i]] = group_vals[0][i + 1];
  for_each_message(c.inbox(0), [&](MachineId, std::span<const Word> pl) {
    for (std::size_t i = 0; i + 1 < pl.size(); i += 2) all[pl[i]] = pl[i + 1];
  });
  std::vector<Word> prefix(p, 0);
  for (MachineId m = 1; m < p; ++m) prefix[m] = prefix[m - 1] + all[m - 1];
  // Broadcast the prefix vector (p words) to everyone.
  std::vector<std::vector<Word>> received;
  broadcast(c, 0, prefix, received);
  return prefix;
}

void sample_sort(Cluster& c) {
  const MachineId p = c.num_machines();

  // Phase 1 (local): sort each machine's records; pick p regular samples.
  std::vector<std::vector<Record>> local(p);
  for (MachineId m = 0; m < p; ++m) {
    local[m] = unpack(c.storage(m));
    std::sort(local[m].begin(), local[m].end());
  }
  std::vector<std::vector<Word>> samples(p);
  for (MachineId m = 0; m < p; ++m) {
    const auto& l = local[m];
    for (MachineId i = 0; i < p; ++i) {
      if (l.empty()) break;
      samples[m].push_back(l[i * l.size() / p].key);
    }
  }

  // Phase 2: ship samples to machine 0 (<= p^2 words at root — the
  // standard sample-sort constraint s >= p^2; enforced by the cluster's
  // space checks).
  c.round([&](MachineId m, const std::vector<Word>&, std::vector<Word>&,
              Outbox& out) {
    if (m != 0 && !samples[m].empty()) out.send(0, samples[m]);
  });
  std::vector<Word> all_samples = samples[0];
  for_each_message(c.inbox(0), [&](MachineId, std::span<const Word> pl) {
    all_samples.insert(all_samples.end(), pl.begin(), pl.end());
  });
  std::sort(all_samples.begin(), all_samples.end());
  std::vector<Word> splitters;  // p-1 splitters
  for (MachineId i = 1; i < p; ++i) {
    if (all_samples.empty()) break;
    splitters.push_back(all_samples[i * all_samples.size() / p]);
  }

  // Phase 3: broadcast splitters.
  std::vector<std::vector<Word>> recv;
  broadcast(c, 0, splitters, recv);

  // Phase 4: route records to their destination machine.
  c.round([&](MachineId m, const std::vector<Word>&, std::vector<Word>& st,
              Outbox& out) {
    const auto& spl = recv[m];
    std::vector<std::vector<Word>> buckets(p);
    for (const auto& r : local[m]) {
      auto it = std::upper_bound(spl.begin(), spl.end(), r.key);
      MachineId dest = static_cast<MachineId>(it - spl.begin());
      buckets[dest].push_back(r.key);
      buckets[dest].push_back(r.value);
    }
    st.clear();  // records leave this machine
    for (MachineId d = 0; d < p; ++d)
      if (!buckets[d].empty()) out.send(d, buckets[d]);
  });

  // Phase 5 (local): merge received runs into storage.
  for (MachineId m = 0; m < p; ++m) {
    std::vector<Record> mine;
    for_each_message(c.inbox(m), [&](MachineId, std::span<const Word> pl) {
      for (std::size_t i = 0; i + 1 < pl.size(); i += 2)
        mine.push_back({pl[i], pl[i + 1]});
    });
    std::sort(mine.begin(), mine.end());
    pack_into(mine, c.storage(m));
  }
}

}  // namespace pdc::mpc
