#include "pdc/mpc/dgraph.hpp"

#include <algorithm>

namespace pdc::mpc {

DistributedGraph::DistributedGraph(Cluster& cluster, const Graph& g)
    : cluster_(&cluster), g_(&g) {
  // Load directed edge records (u -> v) keyed by u and sort so each
  // node's adjacency sits contiguously across the machine sequence.
  std::vector<Record> records;
  records.reserve(g.num_edges() * 2);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (NodeId u : g.neighbors(v)) records.push_back({v, u});
  scatter_records(*cluster_, records);
  sample_sort(*cluster_);
}

std::vector<std::uint32_t> DistributedGraph::compute_degrees() {
  const MachineId p = cluster_->num_machines();
  // Each machine counts records per key locally and routes (key, count)
  // to the key's home machine; homes sum partial counts (a key's block
  // can straddle two machines).
  std::vector<std::uint32_t> degrees(g_->num_nodes(), 0);
  cluster_->round([&](MachineId m, const std::vector<Word>&,
                      std::vector<Word>& st, Outbox& out) {
    std::vector<std::pair<Word, Word>> counts;  // (node, count), st sorted
    for (std::size_t i = 0; i + 1 < st.size(); i += 2) {
      Word key = st[i];
      if (!counts.empty() && counts.back().first == key) {
        ++counts.back().second;
      } else {
        counts.emplace_back(key, 1);
      }
    }
    // Group by destination home machine.
    std::vector<std::vector<Word>> outbound(p);
    for (auto [node, cnt] : counts) {
      MachineId h = home_of(static_cast<NodeId>(node));
      outbound[h].push_back(node);
      outbound[h].push_back(cnt);
    }
    for (MachineId d = 0; d < p; ++d)
      if (!outbound[d].empty()) out.send(d, std::move(outbound[d]));
    (void)m;
  });
  for (MachineId m = 0; m < p; ++m) {
    for_each_message(cluster_->inbox(m), [&](MachineId,
                                             std::span<const Word> pl) {
      for (std::size_t i = 0; i + 1 < pl.size(); i += 2)
        degrees[pl[i]] += static_cast<std::uint32_t>(pl[i + 1]);
    });
  }
  return degrees;
}

std::vector<std::vector<std::pair<NodeId, NodeId>>>
DistributedGraph::gather_neighbor_lists() {
  const MachineId p = cluster_->num_machines();
  std::vector<std::vector<std::pair<NodeId, NodeId>>> received(
      g_->num_nodes());
  // Round 1 of Lemma 17: the machine holding v's adjacency broadcasts
  // that list to the home machine of every neighbor u, tagged with v.
  // (We read adjacency from the host graph here; the sorted records in
  // storage carry the same content, and the message traffic — which is
  // what the space checks constrain — is identical.)
  cluster_->round([&](MachineId m, const std::vector<Word>&,
                      std::vector<Word>&, Outbox& out) {
    // Nodes homed at m send their list to each neighbor's home.
    std::vector<std::vector<Word>> outbound(p);
    for (NodeId v = m; v < g_->num_nodes(); v += p) {
      auto nb = g_->neighbors(v);
      for (NodeId u : nb) {
        auto& buf = outbound[home_of(u)];
        buf.push_back(u);          // addressee node
        buf.push_back(v);          // list owner
        buf.push_back(nb.size());  // list length
        for (NodeId w : nb) buf.push_back(w);
      }
    }
    for (MachineId d = 0; d < p; ++d)
      if (!outbound[d].empty()) out.send(d, std::move(outbound[d]));
  });
  for (MachineId m = 0; m < p; ++m) {
    for_each_message(cluster_->inbox(m), [&](MachineId,
                                             std::span<const Word> pl) {
      std::size_t i = 0;
      while (i < pl.size()) {
        NodeId addressee = static_cast<NodeId>(pl[i]);
        NodeId owner = static_cast<NodeId>(pl[i + 1]);
        Word len = pl[i + 2];
        for (Word j = 0; j < len; ++j) {
          received[addressee].emplace_back(owner,
                                           static_cast<NodeId>(pl[i + 3 + j]));
        }
        i += 3 + len;
      }
    });
  }
  return received;
}

}  // namespace pdc::mpc
