#include "pdc/mpc/cluster.hpp"

#include <sstream>

#include "pdc/mpc/substrate.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/util/timer.hpp"

namespace pdc::mpc {

Cluster::Cluster(Config cfg, bool strict)
    : cfg_(cfg), strict_(strict), storage_(cfg.num_machines),
      inbox_(cfg.num_machines), outbox_(cfg.num_machines),
      in_payload_(cfg.num_machines), in_msgs_(cfg.num_machines) {}

Cluster::~Cluster() = default;

Substrate& Cluster::substrate() {
  if (!substrate_) substrate_ = make_substrate(cfg_);
  return *substrate_;
}

const char* Cluster::substrate_name() const {
  return to_string(cfg_.substrate);
}

unsigned Cluster::substrate_concurrency() const {
  return planned_concurrency(cfg_);
}

void Cluster::check_space(MachineId m, std::uint64_t words, const char* what) {
  ledger_.observe_local_space(words);
  if (words > cfg_.local_space_words) {
    std::ostringstream os;
    os << what << " on machine " << m << ": " << words << " words > s="
       << cfg_.local_space_words;
    ledger_.record_violation(os.str());
    PDC_CHECK_MSG(!strict_, os.str());
  }
}

void Cluster::round(const StepFn& step) {
  const MachineId p = num_machines();
  Substrate& sub = substrate();
  obs::Span span("substrate.round");

  RoundBuffers buffers;
  buffers.step = &step;
  buffers.inbox = &inbox_;
  buffers.storage = &storage_;
  buffers.outbox = &outbox_;
  buffers.inbox_frame_words = &in_msgs_;  // repurposed below: frame words

  // Capacity-preserving reset of the per-machine outbox arenas; with
  // warm capacities the whole round performs no allocations (pinned by
  // tests/test_substrate.cpp).
  for (Outbox& ob : outbox_) ob.clear();

  const std::uint64_t t0 = Timer::now_us();
  sub.run_steps(buffers);
  const std::uint64_t t1 = Timer::now_us();

  // Host-side validation, identical on every substrate (machine order,
  // ledger mutations, strict-mode exceptions all on this thread).
  std::uint64_t global = 0;
  for (MachineId m = 0; m < p; ++m) {
    check_space(m, storage_[m].size(), "local storage");
    check_space(m, outbox_[m].words_sent(), "outgoing messages");
    global += storage_[m].size();
  }
  ledger_.observe_global_space(global);

  // Per-destination incoming volume: payload words for the capacity
  // check (headers ride free, as in the original simulator), payload +
  // 2-word headers for the exchange's exact inbox reservation.
  in_payload_.assign(p, 0);
  in_msgs_.assign(p, 0);
  for (MachineId m = 0; m < p; ++m) {
    for (const Outbox::Msg& msg : outbox_[m].messages()) {
      PDC_CHECK_MSG(msg.to < p, "message to nonexistent machine " << msg.to);
      in_payload_[msg.to] += msg.len;
      in_msgs_[msg.to] += 2 + msg.len;
    }
  }
  for (MachineId m = 0; m < p; ++m)
    check_space(m, in_payload_[m], "incoming messages");

  const std::uint64_t t2 = Timer::now_us();
  sub.exchange(buffers);
  const std::uint64_t t3 = Timer::now_us();
  ledger_.add_rounds(1);

  const double step_ms = static_cast<double>(t1 - t0) / 1000.0;
  const double exchange_ms = static_cast<double>(t3 - t2) / 1000.0;
  const std::uint64_t barrier_total = sub.barrier_wait_us();
  const double barrier_ms =
      static_cast<double>(barrier_total - barrier_wait_seen_us_) / 1000.0;
  barrier_wait_seen_us_ = barrier_total;
  substrate_stats_.rounds += 1;
  substrate_stats_.step_ms += step_ms;
  substrate_stats_.exchange_ms += exchange_ms;
  substrate_stats_.barrier_wait_ms += barrier_ms;

  if (span.active()) {
    span.tag("substrate", sub.name());
    span.tag_u64("machines", p);
    span.tag_u64("step_us", t1 - t0);
    span.tag_u64("exchange_us", t3 - t2);
    span.tag_u64("barrier_wait_us",
                 static_cast<std::uint64_t>(barrier_ms * 1000.0));
  }
  if (obs::metrics_enabled()) {
    obs::Metrics& metrics = obs::Metrics::global();
    const obs::Labels key{obs::current_phase(), "", "", sub.name()};
    metrics.add("mpc.substrate.rounds", key, 1);
    metrics.add_real("mpc.substrate.step_ms", key, step_ms);
    metrics.add_real("mpc.substrate.exchange_ms", key, exchange_ms);
    metrics.add_real("mpc.substrate.barrier_wait_ms", key, barrier_ms);
  }
}

}  // namespace pdc::mpc
