#include "pdc/mpc/cluster.hpp"

#include <algorithm>
#include <sstream>

#include "pdc/util/parallel.hpp"

namespace pdc::mpc {

void Cluster::check_space(MachineId m, std::uint64_t words, const char* what) {
  ledger_.observe_local_space(words);
  if (words > cfg_.local_space_words) {
    std::ostringstream os;
    os << what << " on machine " << m << ": " << words << " words > s="
       << cfg_.local_space_words;
    ledger_.record_violation(os.str());
    PDC_CHECK_MSG(!strict_, os.str());
  }
}

void Cluster::round(const StepFn& step) {
  const MachineId p = num_machines();
  std::vector<Outbox> outboxes(p);

  parallel_for(p, [&](std::size_t m) {
    step(static_cast<MachineId>(m), inbox_[m], storage_[m], outboxes[m]);
  });

  // Validate per-machine storage and outgoing volume.
  std::uint64_t global = 0;
  for (MachineId m = 0; m < p; ++m) {
    check_space(m, storage_[m].size(), "local storage");
    check_space(m, outboxes[m].words_sent(), "outgoing messages");
    global += storage_[m].size();
  }
  ledger_.observe_global_space(global);

  // Exchange: deliver messages, each with {sender, length} header.
  std::vector<std::uint64_t> incoming_words(p, 0);
  for (MachineId m = 0; m < p; ++m) {
    for (auto& [to, payload] : outboxes[m].msgs_) {
      PDC_CHECK_MSG(to < p, "message to nonexistent machine " << to);
      incoming_words[to] += payload.size();
    }
  }
  for (MachineId m = 0; m < p; ++m)
    check_space(m, incoming_words[m], "incoming messages");

  for (auto& ib : inbox_) ib.clear();
  for (MachineId m = 0; m < p; ++m) {
    for (auto& [to, payload] : outboxes[m].msgs_) {
      auto& ib = inbox_[to];
      ib.push_back(m);
      ib.push_back(payload.size());
      ib.insert(ib.end(), payload.begin(), payload.end());
    }
  }
  ledger_.add_rounds(1);
}

}  // namespace pdc::mpc
