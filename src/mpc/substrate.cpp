#include "pdc/mpc/substrate.hpp"

#include <algorithm>

#include "pdc/util/check.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pdc::mpc {

namespace {

/// Builds destination d's inbox from every machine's outbox — the one
/// implementation of the exchange, shared by both substrates so the
/// framing cannot drift. Senders are walked in ascending machine order
/// and each sender's messages in send order, reproducing exactly what
/// the original serial delivery loop produced; the write target is
/// d's inbox alone, so concurrent calls for distinct destinations are
/// race-free. The clear/reserve pair keeps steady-state rounds
/// allocation-free: capacity persists across rounds and the reserve is
/// exact (precomputed by the host validation pass).
void deliver_inbox(const RoundBuffers& r, MachineId d) {
  std::vector<Word>& ib = (*r.inbox)[d];
  ib.clear();
  ib.reserve((*r.inbox_frame_words)[d]);
  const MachineId p = static_cast<MachineId>(r.outbox->size());
  for (MachineId m = 0; m < p; ++m) {
    const Outbox& ob = (*r.outbox)[m];
    for (const Outbox::Msg& msg : ob.messages()) {
      if (msg.to != d) continue;
      ib.push_back(m);
      ib.push_back(msg.len);
      const std::span<const Word> pl = ob.payload(msg);
      ib.insert(ib.end(), pl.begin(), pl.end());
    }
  }
}

void pin_to_core(unsigned core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % std::max(1u, std::thread::hardware_concurrency()), &set);
  // Best effort: affinity may be restricted (cgroups, taskset); the
  // substrate is correct unpinned, just less cache-stable.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

}  // namespace

const char* to_string(SubstrateKind kind) {
  switch (kind) {
    case SubstrateKind::kSequential: return "sequential";
    case SubstrateKind::kThreadPool: return "thread-pool";
  }
  return "";
}

unsigned planned_concurrency(const Config& cfg) {
  if (cfg.substrate == SubstrateKind::kSequential) return 1;
  unsigned t = cfg.substrate_threads != 0
                   ? cfg.substrate_threads
                   : std::max(1u, std::thread::hardware_concurrency());
  return std::clamp(t, 1u, std::max(1u, cfg.num_machines));
}

std::unique_ptr<Substrate> make_substrate(const Config& cfg) {
  switch (cfg.substrate) {
    case SubstrateKind::kSequential:
      return std::make_unique<SequentialSubstrate>();
    case SubstrateKind::kThreadPool:
      return std::make_unique<ThreadPoolSubstrate>(
          cfg.num_machines, planned_concurrency(cfg),
          cfg.pin_substrate_threads);
  }
  PDC_CHECK_MSG(false, "unknown SubstrateKind");
  return nullptr;
}

// ---------------------------------------------------------------------
// SequentialSubstrate
// ---------------------------------------------------------------------

const char* SequentialSubstrate::name() const {
  return to_string(SubstrateKind::kSequential);
}

void SequentialSubstrate::run_steps(const RoundBuffers& r) {
  const MachineId p = static_cast<MachineId>(r.storage->size());
  for (MachineId m = 0; m < p; ++m)
    (*r.step)(m, (*r.inbox)[m], (*r.storage)[m], (*r.outbox)[m]);
}

void SequentialSubstrate::exchange(const RoundBuffers& r) {
  const MachineId p = static_cast<MachineId>(r.inbox->size());
  for (MachineId d = 0; d < p; ++d) deliver_inbox(r, d);
}

// ---------------------------------------------------------------------
// ThreadPoolSubstrate
// ---------------------------------------------------------------------

ThreadPoolSubstrate::ThreadPoolSubstrate(MachineId machines, unsigned threads,
                                         bool pin)
    : machines_(machines),
      threads_(std::clamp(threads, 1u, std::max<unsigned>(1, machines))),
      pin_(pin),
      start_(threads_ + 1),
      finish_(threads_ + 1) {
  pool_.reserve(threads_);
  for (unsigned w = 0; w < threads_; ++w)
    pool_.emplace_back([this, w] { worker_main(w); });
}

ThreadPoolSubstrate::~ThreadPoolSubstrate() {
  run_phase(Phase::kStop, nullptr);
  for (std::thread& t : pool_) t.join();
}

const char* ThreadPoolSubstrate::name() const {
  return to_string(SubstrateKind::kThreadPool);
}

void ThreadPoolSubstrate::run_phase(Phase phase, const RoundBuffers* r) {
  phase_ = phase;
  round_ = r;
  // The start barrier publishes phase_/round_ (release on arrival,
  // acquire on the workers' exit); the finish barrier publishes the
  // workers' writes back to the host. On kStop the workers exit before
  // reaching finish_, so the host skips it too.
  start_.arrive_and_wait(host_start_sense_);
  if (phase != Phase::kStop) finish_.arrive_and_wait(host_finish_sense_);
}

void ThreadPoolSubstrate::worker_main(unsigned w) {
  if (pin_) pin_to_core(w);
  bool start_sense = false;
  bool finish_sense = false;
  std::uint64_t waited_us = 0;
  for (;;) {
    // The start wait is idle time between phases (host validation,
    // cluster idle between rounds) — not a parallelism signal, so it
    // is deliberately not measured. barrier_wait_us tracks only the
    // finish barrier: workers done early waiting for stragglers.
    start_.arrive_and_wait(start_sense);
    const Phase phase = phase_;
    if (phase == Phase::kStop) break;
    const RoundBuffers& r = *round_;
    // Strided ownership: machine (and destination) m belongs to worker
    // m % threads — deterministic, and it spreads the traditionally
    // heavier low-numbered machines (roots of the aggregation trees)
    // across workers.
    if (phase == Phase::kStep) {
      for (MachineId m = w; m < machines_; m += threads_)
        (*r.step)(m, (*r.inbox)[m], (*r.storage)[m], (*r.outbox)[m]);
    } else {
      for (MachineId d = w; d < machines_; d += threads_)
        deliver_inbox(r, d);
    }
    finish_.arrive_and_wait(finish_sense, &waited_us);
    // One relaxed add per phase, not per-arrival atomics in the hot
    // wait loop.
    if (waited_us != 0) {
      barrier_wait_us_.fetch_add(waited_us, std::memory_order_relaxed);
      waited_us = 0;
    }
  }
}

void ThreadPoolSubstrate::run_steps(const RoundBuffers& r) {
  run_phase(Phase::kStep, &r);
}

void ThreadPoolSubstrate::exchange(const RoundBuffers& r) {
  run_phase(Phase::kExchange, &r);
}

}  // namespace pdc::mpc
