#pragma once
// Normal (tau, Δ)-round distributed procedures — Definition 5.
//
// A NormalProcedure is a randomized LOCAL subroutine packaged with:
//  * tau()                — its LOCAL round count;
//  * simulate()           — a deterministic function of the state and a
//                           per-node bit source (swapping the source
//                           between true randomness and a PRG seed is the
//                           derandomization);
//  * ssp(v)               — the strong success property, a predicate on
//                           the run's outputs within v's tau-hop
//                           neighborhood that holds w.h.p. under true
//                           randomness;
//  * wsp(v, defer)        — the weak success property, which must still
//                           hold when any subset of SSP-failing nodes is
//                           deferred (Definition 5's closing condition);
//  * commit()             — applies the run's outputs to the state,
//                           nullifying deferred nodes' outputs;
//  * estimator()          — optional: a pessimistic estimator for the
//                           SSP-failure objective (per-node pairwise
//                           collision terms dominating the failure
//                           indicators), letting Lemma 10 search the
//                           seed space on the engine's analytic/prefix
//                           planes with zero simulations.
//
// For the coloring procedures in this library SSP and WSP coincide up to
// the Defer extension (exactly as the paper observes for slack-generation
// subroutines: deferral removes neighbors without blocking palette
// colors, so it can only help).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pdc/derand/coloring_state.hpp"
#include "pdc/derand/estimator.hpp"
#include "pdc/prg/prg.hpp"

namespace pdc::derand {

/// Per-run outputs: a proposed color per node (kNoColor when the node
/// proposed nothing / failed its trial) plus a procedure-specific
/// auxiliary word per node (e.g. sampled-into-S markers).
struct ProcedureRun {
  std::vector<Color> proposed;
  std::vector<std::int64_t> aux;

  explicit ProcedureRun(NodeId n)
      : proposed(n, kNoColor), aux(n, 0) {}
};

class NormalProcedure {
 public:
  virtual ~NormalProcedure() = default;

  virtual std::string name() const = 0;

  /// LOCAL rounds the procedure takes (the tau of Definition 5).
  virtual int tau() const { return 1; }

  /// Declared randomness budget per node, in 64-bit words (Definition 5
  /// allows O(Δ^{2τ}) bits; the framework verifies streams stay within
  /// a multiple of this, and the PRG sizes chunks accordingly).
  virtual std::uint64_t rand_words_per_node(
      const ColoringState& state) const = 0;

  /// Deterministically simulate the procedure for all participating
  /// nodes. Must not mutate `state`; must depend on randomness only via
  /// `bits` streams (that is what makes seed search sound).
  virtual ProcedureRun simulate(const ColoringState& state,
                                const prg::BitSourceFactory& bits) const = 0;

  /// Strong success property for node v given the run (Definition 5).
  virtual bool ssp(const ColoringState& state, const ProcedureRun& run,
                   NodeId v) const = 0;

  /// Weak success property for v when nodes in `defer` (1 = deferred in
  /// this run) have their outputs nullified. Default: identical
  /// predicate to SSP but evaluated with deferred outputs removed —
  /// which, for slack properties, is implied by SSP (the paper's
  /// SSP ⇒ WSP condition); procedures with genuinely weaker WSPs
  /// override. `defer` covers exactly this run's deferrals.
  virtual bool wsp(const ColoringState& state, const ProcedureRun& run,
                   NodeId v, const std::vector<std::uint8_t>& defer) const {
    (void)defer;
    return ssp(state, run, v);
  }

  /// Optional capability: a pessimistic estimator whose per-node terms
  /// dominate this procedure's SSP-failure indicators pointwise over
  /// every chunked PRG source (the contract on PessimisticEstimator).
  /// When provided, Lemma 10 can search the seed space through
  /// SspEstimatorOracle on the analytic/prefix planes — no simulation
  /// per candidate seed, with the selection guarantee binding the
  /// estimator mean instead of the exact SSP mean. Default: none (the
  /// search falls back to the simulating oracle; EstimatorMode::kRequire
  /// fails loudly). The returned estimator may reference the
  /// procedure's configuration and must not outlive it.
  virtual std::unique_ptr<PessimisticEstimator> estimator() const {
    return nullptr;
  }

  /// Apply the run to the state for non-deferred nodes. Default: commit
  /// proposed colors.
  virtual void commit(ColoringState& state, const ProcedureRun& run,
                      const std::vector<std::uint8_t>& defer) const {
    for (NodeId v = 0; v < state.num_nodes(); ++v) {
      if (defer[v]) continue;
      if (run.proposed[v] != kNoColor && state.participates(v)) {
        state.set_color(v, run.proposed[v]);
      }
    }
  }
};

}  // namespace pdc::derand
