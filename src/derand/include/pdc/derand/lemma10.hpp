#pragma once
// Lemma 10: derandomizing one normal (tau, Δ)-round procedure.
//
// Pipeline (matching the paper's proof):
//  1. Assign pseudorandom chunks via a proper coloring of G^{4τ}
//     (distance_coloring), so nodes within distance 4τ read disjoint
//     chunks of the PRG output.
//  2. For each candidate seed of the PRG family, simulate the procedure
//     and count nodes failing their strong success property.
//  3. Select a seed with failure count <= the seed-space mean (method of
//     conditional expectations, or exhaustive argmin — both satisfy the
//     lemma's guarantee; strategies compared in E10).
//  4. Re-run under the chosen seed, mark SSP-failing nodes Deferred,
//     commit the outputs of the rest, and verify the weak success
//     property of all non-deferred participants.
//
// The chunk coloring is the expensive preprocessing; when the ball work
// n * Δ^{4τ} exceeds `chunk_work_budget` we fall back to per-node-unique
// chunks (the "lazy PRG" — a valid distance-∞ coloring whose only cost
// in the theory is PRG output length, which our lazy expansion never
// materializes). DESIGN.md §4 discusses this substitution.
//
// Estimator mode (the paper's pessimistic-estimator derandomization):
// when the procedure provides a PessimisticEstimator
// (NormalProcedure::estimator) and Lemma10Options::use_estimator is
// kPrefer/kRequire, step 2 searches the *estimator* objective through
// SspEstimatorOracle on the engine's analytic/prefix planes instead of
// simulating per seed — zero search-phase simulations; the only
// simulate() left is the step-4 commit replay. The guarantee then binds
// the estimator mean rather than the exact SSP mean:
//
//   ssp_failures(selected) <= est_total(selected) <= estimator_mean
//
// — weaker per seed (the estimator over-counts failures via its
// pairwise collision terms) but proved without running a single
// search-phase simulation; the exact-SSP simulating oracle remains as the
// differential reference (use_estimator == kOff). Reported via
// Lemma10Report::estimator_used / estimator_mean and the
// SearchStats::route plane tag.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pdc/derand/normal_procedure.hpp"
#include "pdc/engine/search.hpp"
#include "pdc/graph/power.hpp"
#include "pdc/mpc/cost_model.hpp"
#include "pdc/prg/prg.hpp"

namespace pdc::derand {

enum class SeedStrategy {
  kExhaustive,              // argmin over all seeds
  kConditionalExpectation,  // LSB-first bitwise E[...|prefix] walk
  kPrefixWalk,              // MSB-first junta-fooling prefix walk
  kFirstSeed,               // seed 0, no search (ablation: "random" seed)
  kTrueRandom,              // no PRG at all: the randomized algorithm
};

/// Whether the Lemma-10 seed search runs on the procedure's pessimistic
/// estimator (pdc/derand/estimator.hpp) instead of the simulating
/// SSP-failure oracle.
enum class EstimatorMode {
  kOff,      // always simulate per seed (exact SSP objective)
  kPrefer,   // use the estimator when the procedure provides one
  kRequire,  // fail loudly (PDC_CHECK) if the procedure provides none
};

struct Lemma10Options {
  int seed_bits = 10;
  SeedStrategy strategy = SeedStrategy::kExhaustive;
  std::uint64_t salt = 0x9E3779B97F4A7C15ULL;
  std::uint64_t true_random_seed = 1;  // master seed for kTrueRandom
  std::uint64_t chunk_work_budget = 20'000'000;
  bool force_unique_chunks = false;
  /// E10 ablation only: deliberately share chunks among nearby nodes by
  /// hashing node ids into `shared_chunk_count` chunks (violates the
  /// G^{4τ} discipline; expect correlated failures).
  std::uint32_t shared_chunk_count = 0;
  /// Defer failures? The randomized pipeline leaves failures uncolored
  /// without the Defer mark (they retry in later steps); the
  /// derandomized pipeline defers per the lemma.
  bool defer_failures = true;
  /// How the search strategies execute: backend (kSharedMemory /
  /// kSharded / kAuto), cluster, engine SearchOptions, optional stats
  /// sink. kSharded runs every totals pass as capacity-checked rounds
  /// on the cluster (machine-local shard scoring + converge-cast; see
  /// pdc::engine::sharded); Selections are bit-identical to the
  /// shared-memory engine's — the backend changes where the sums run,
  /// never what is chosen.
  engine::ExecutionPolicy search;
  /// Search the procedure's pessimistic estimator instead of the
  /// simulating SSP oracle (see the header comment). kPrefer falls
  /// back to simulation for procedures without an estimator; kRequire
  /// throws. The commit replay and deferral are unaffected.
  EstimatorMode use_estimator = EstimatorMode::kOff;
};

struct Lemma10Report {
  std::string procedure;
  std::uint64_t participants = 0;
  std::uint64_t ssp_failures = 0;   // under the executed source
  std::uint64_t deferred_new = 0;
  double defer_fraction = 0.0;      // deferred_new / participants
  /// Mean of the *searched objective* over the seed space: the exact
  /// SSP-failure mean when the simulating oracle ran, the estimator
  /// mean in estimator mode (estimator_used below says which; the
  /// guarantee ssp_failures <= mean_failures holds either way — via
  /// pointwise domination in estimator mode).
  double mean_failures = 0.0;
  /// True when the seed search ran on the procedure's pessimistic
  /// estimator (SspEstimatorOracle) instead of simulating per seed.
  bool estimator_used = false;
  /// The estimator mean the guarantee binds in estimator mode (equals
  /// mean_failures then; 0 otherwise).
  double estimator_mean = 0.0;
  std::uint64_t seed = 0;
  std::uint64_t seed_evaluations = 0;
  /// Engine accounting for the seed search: evaluations, item sweeps
  /// (node-major passes; the pre-engine path paid one per evaluation),
  /// wall time.
  engine::SearchStats search;
  std::uint32_t chunks = 0;
  bool power_coloring_used = false;
  std::uint64_t wsp_violations = 0;
  /// Lemma 10's bound on expected failures: 1/2 + n_G * Δ^{-11τ}
  /// (with the paper's idealized PRG). Reported for comparison.
  double lemma10_bound = 0.0;
};

/// Chunk assignment reused across the procedures of one algorithm run
/// (Theorem 12 computes the power-graph coloring once up front).
struct ChunkAssignment {
  std::vector<std::uint32_t> chunk_of;
  std::uint32_t num_chunks = 0;
  bool power_coloring = false;
};

/// Computes the chunk assignment for procedures with round count tau on
/// the current graph; charges the cost model for the power coloring.
ChunkAssignment assign_chunks(const Graph& g, int tau,
                              const Lemma10Options& opt,
                              mpc::CostModel* cost);

/// The PRG family Lemma 10 searches and then replays under the chosen
/// seed — a single derivation, so the selection and the commit can
/// never disagree about which family the guarantee was proved against.
inline prg::PrgFamily lemma10_family(const Lemma10Options& opt) {
  return prg::PrgFamily(opt.seed_bits, opt.salt);
}

/// Maps a search strategy to its engine route over the 2^seed_bits
/// space (the single strategy->route mapping; lemma10 and the Luby
/// call sites share it so they cannot drift).
inline engine::SearchRequest lemma10_request(SeedStrategy strategy,
                                             int seed_bits,
                                             engine::ExecutionPolicy policy) {
  switch (strategy) {
    case SeedStrategy::kConditionalExpectation:
      return engine::SearchRequest::conditional_expectation(seed_bits,
                                                            policy);
    case SeedStrategy::kPrefixWalk:
      return engine::SearchRequest::prefix_walk(seed_bits, policy);
    default:
      return engine::SearchRequest::exhaustive_bits(seed_bits, policy);
  }
}

/// The Lemma-10 seed search alone (no commit): builds the PRG family
/// via lemma10_family(opt) and searches it for the SSP-failure
/// objective — or, in estimator mode, the procedure's pessimistic
/// estimator — with the chosen strategy (kExhaustive,
/// kConditionalExpectation or kPrefixWalk) on the chosen backend.
/// Exposed so the sharded differential tests can compare whole
/// Selections; derandomize_procedure routes its search strategies
/// through here. `estimator_used` (optional) reports whether the
/// estimator plane served the search.
engine::Selection lemma10_seed_selection(const NormalProcedure& proc,
                                         const ColoringState& state,
                                         const ChunkAssignment& chunks,
                                         const Lemma10Options& opt,
                                         bool* estimator_used = nullptr);

/// Derandomizes (or, for kTrueRandom, just runs) one procedure against
/// the state: selects the seed, commits outputs, defers failures.
Lemma10Report derandomize_procedure(const NormalProcedure& proc,
                                    ColoringState& state,
                                    const ChunkAssignment& chunks,
                                    const Lemma10Options& opt,
                                    mpc::CostModel* cost);

/// Convenience: chunk assignment + derandomization in one call.
Lemma10Report derandomize_procedure(const NormalProcedure& proc,
                                    ColoringState& state,
                                    const Lemma10Options& opt,
                                    mpc::CostModel* cost);

}  // namespace pdc::derand
