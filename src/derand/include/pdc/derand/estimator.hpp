#pragma once
// Pessimistic estimators for Lemma-10 SSP objectives.
//
// The SSP events of a normal procedure have no exact closed form — a
// node's failure indicator reads the whole run, so the exact objective
// can only be evaluated by simulating the procedure once per candidate
// seed (the enumerating SspFailureOracle in lemma10.cpp). The paper
// (and the work-efficiency follow-up, arXiv:2504.15700) derandomizes
// through *pessimistic estimators* instead: per-node sums of pairwise
// collision terms that (a) upper-bound the node's failure indicator
// pointwise for every seed and (b) read the seed only through the
// node's own chunk stream and its neighbors' chunk streams — a
// per-node junta of the chunked PRG output. Searching the estimator
// needs no simulation at all, and the conditional-expectations
// guarantee binds the estimator mean:
//
//   failures(selected) <= est_total(selected) <= mean_s est_total(s)
//
// (first inequality: pointwise domination; second: the search). The
// commit/defer pipeline is unchanged — deferral is still driven by the
// *actual* SSP failures of the single commit replay.
//
// A PessimisticEstimator is the procedure-specific piece
// (NormalProcedure::estimator() constructs one); SspEstimatorOracle
// realizes it on the engine's formula planes — an AnalyticOracle
// (closed-form member evaluation from the prepared per-member local
// draws, zero enumeration sweeps) that is also a PrefixOracle
// (per-node juntas from the chunk assignment; seed-constant nodes
// answered in O(1) by the classification, active nodes by the lazy
// completion caches). On the sharded backend the estimator search
// inherits the fixed-point converge-casts unchanged — estimator terms
// are integer-valued, so Selections stay bit-identical at every
// machine count, and the prefix-walk route casts O(bits) words.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "pdc/derand/coloring_state.hpp"
#include "pdc/engine/prefix.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/prg/prg.hpp"

namespace pdc::derand {

/// Footprint ceiling shared by every estimator draw table — the flat
/// per-(member, node) SoA tables the concrete estimators build in
/// prepare() (and util::SoaTable enforces again at reset time). 2^28
/// entries is ~2 GiB of Color; past that prepare() refuses instead of
/// silently exhausting memory, and callers must search fewer members
/// at a time.
inline constexpr std::uint64_t kMaxEstimatorTableEntries = 1ULL << 28;

/// A BitSourceFactory that routes every node to its assigned chunk —
/// the Lemma-10 discipline (nodes within distance 4τ read disjoint
/// chunks). Shared by the simulating oracle, the commit replay and the
/// estimators, so all three read the identical streams for a seed.
class ChunkedSource final : public prg::BitSourceFactory {
 public:
  ChunkedSource(const prg::BitSourceFactory& inner,
                const std::vector<std::uint32_t>& chunk_of)
      : inner_(&inner), chunk_of_(&chunk_of) {}

  BitStream stream(std::uint32_t node, std::uint32_t /*chunk*/) const override {
    return inner_->stream(node, (*chunk_of_)[node]);
  }

 private:
  const prg::BitSourceFactory* inner_;
  const std::vector<std::uint32_t>* chunk_of_;
};

/// Everything an estimator may read: the state the procedure would run
/// against, the PRG family the search enumerates, the Lemma-10 chunk
/// routing, and how many family members the search will touch.
struct EstimatorContext {
  const ColoringState* state = nullptr;
  const prg::PrgFamily* family = nullptr;
  const std::vector<std::uint32_t>* chunk_of = nullptr;
  std::uint64_t num_members = 0;
};

/// A pessimistic estimator for one procedure's SSP-failure objective.
///
/// Contract (the estimator-mean guarantee rests on it, and
/// tests/test_estimator.cpp checks it seed by seed):
///
///   * DOMINATION — for every member m and node v,
///       term(m, v) >= indicator[v participates and fails the
///                               procedure's SSP under member m];
///   * LOCALITY — term(m, v) depends on m only through the chunk
///     streams of v and its neighbors (the node's junta);
///     term_from_source is the executable statement of this: called
///     with the member's chunked source it must return exactly
///     term(m, v);
///   * EXACT ARITHMETIC — terms are integer-valued, so partial sums
///     are exact in doubles and the sharded fixed-point encode is
///     lossless (the backend bit-identity argument).
///
/// prepare() runs once per search (seed-independent invariants plus
/// any per-member local-draw tables — each machine replaying its own
/// nodes' draws for each candidate is machine-local work after the
/// Lemma-10 ball gather, not a simulation: no cross-node conflict
/// resolution ever runs). term() must then be pure arithmetic over the
/// prepared state, callable concurrently for distinct nodes.
class PessimisticEstimator {
 public:
  virtual ~PessimisticEstimator() = default;

  /// One-time preparation for a search over ctx.num_members members.
  /// Overriders must call the base (it stores the context).
  virtual void prepare(const EstimatorContext& ctx) { ctx_ = ctx; }

  /// Release prepare() state. Paired with prepare by the oracle.
  virtual void release() { ctx_ = {}; }

  /// Node v's estimator term under family member `member`, from the
  /// prepared tables. Default: derive the member's chunked source and
  /// defer to term_from_source (correct for any estimator; concrete
  /// estimators override with their table fast path).
  virtual double term(std::uint64_t member, NodeId v) const;

  /// Batched counterpart: ADDS term(member_first + j, v) into sink[j]
  /// for j in [0, member_count) — the estimator half of the
  /// AnalyticOracle::eval_members contract, same exactness rule (the
  /// per-member terms must be bit-identical to term(); terms are
  /// integers, so vectorized accumulation cannot reassociate them into
  /// different doubles). Default loops term(); the concrete estimators
  /// override with member-major SIMD sweeps over their node-major draw
  /// tables.
  virtual void term_batch(std::uint64_t member_first,
                          std::size_t member_count, NodeId v,
                          double* sink) const {
    for (std::size_t j = 0; j < member_count; ++j)
      sink[j] += term(member_first + j, v);
  }

  /// Seed-constant classification: the term's value when it is the
  /// same for every member (a non-participant, a degree-exempt node,
  /// an empty available palette), else nullopt. Consulted after
  /// prepare().
  virtual std::optional<double> constant_term(NodeId v) const {
    (void)v;
    return std::nullopt;
  }

  /// Size of v's junta in the chunked PRG output: how many distinct
  /// chunk streams term(., v) reads. Default: the distinct chunks of
  /// v's closed participating neighborhood (0 for non-participants).
  /// Accounting only — the walk never dereferences chunks itself.
  virtual std::size_t junta_size(NodeId v) const;

  /// Reference semantics: the same term evaluated directly against an
  /// arbitrary bit source, with no prepared per-member tables — the
  /// executable form of the locality contract. The differential tests
  /// compare term() against term_from_source() member by member.
  virtual double term_from_source(const ColoringState& state,
                                  const prg::BitSourceFactory& bits,
                                  NodeId v) const = 0;

 protected:
  /// Valid between prepare() and release().
  const EstimatorContext& ctx() const { return ctx_; }

 private:
  EstimatorContext ctx_;
};

/// The estimator realized on the engine's formula planes: item = node,
/// cost(member, node) = estimator term. Being a PrefixOracle (hence an
/// AnalyticOracle, hence a CostOracle) it serves every engine route —
/// exhaustive / conditional-expectation searches run analytically
/// (SearchStats::analytic, zero enumeration sweeps) and prefix walks
/// run on the junta plane (SearchStats::prefix) — on both backends.
/// The estimator, state, family and chunk assignment must outlive the
/// oracle; the oracle must outlive the search.
class SspEstimatorOracle final : public engine::PrefixOracle {
 public:
  SspEstimatorOracle(PessimisticEstimator& est, const ColoringState& state,
                     const prg::PrgFamily& family,
                     const std::vector<std::uint32_t>& chunk_of)
      : est_(&est), state_(&state), family_(&family), chunk_of_(&chunk_of) {}

  std::size_t item_count() const override { return state_->num_nodes(); }
  int bit_count() const override { return family_->seed_bits(); }

  std::size_t junta_size(std::size_t item) const override {
    return est_->junta_size(static_cast<NodeId>(item));
  }
  std::optional<double> constant_cost(std::size_t item) const override {
    return est_->constant_term(static_cast<NodeId>(item));
  }

  void begin_search(std::uint64_t num_seeds) override {
    obs::Span span("estimator.prepare");
    span.tag_u64("members", num_seeds);
    EstimatorContext ctx;
    ctx.state = state_;
    ctx.family = family_;
    ctx.chunk_of = chunk_of_;
    ctx.num_members = num_seeds;
    est_->prepare(ctx);
  }
  void end_search() override {
    obs::Span span("estimator.release");
    est_->release();
  }

  void eval_analytic(std::uint64_t first, std::size_t count,
                     std::size_t item, double* sink) const override {
    const NodeId v = static_cast<NodeId>(item);
    for (std::size_t j = 0; j < count; ++j)
      sink[j] += est_->term(first + j, v);
  }

  /// SIMD member-major path: one term_batch sweep over the estimator's
  /// node-major draw tables (bit-identical to the scalar loop above by
  /// the term_batch contract).
  void eval_members(std::uint64_t first, std::size_t count, std::size_t item,
                    double* sink) const override {
    est_->term_batch(first, count, static_cast<NodeId>(item), sink);
  }

 private:
  PessimisticEstimator* est_;
  const ColoringState* state_;
  const prg::PrgFamily* family_;
  const std::vector<std::uint32_t>* chunk_of_;
};

}  // namespace pdc::derand
