#pragma once
// Mutable coloring state threaded through procedure pipelines.
//
// A ColoringState is the "current graph" of Section 2.1: as nodes commit
// colors, neighbors' effective palettes shrink and degrees drop. Deferred
// nodes (Definition 5's Defer marker) are treated as *removed* — they do
// not block palette colors and do not count toward degrees — which is
// precisely why deferral only creates slack for coloring problems (the
// observation the paper's framework rests on). Deferred nodes are
// re-instanced later via self-reducibility (Definition 11 / residual()).

#include <cstdint>
#include <span>
#include <vector>

#include "pdc/graph/coloring.hpp"
#include "pdc/graph/graph.hpp"
#include "pdc/graph/palette.hpp"
#include "pdc/util/bits.hpp"

namespace pdc::derand {

class ColoringState {
 public:
  ColoringState(const Graph& g, const PaletteSet& palettes)
      : g_(&g), palettes_(&palettes),
        colors_(g.num_nodes(), kNoColor),
        deferred_(g.num_nodes(), 0),
        active_(g.num_nodes(), 1) {}

  const Graph& graph() const { return *g_; }
  const PaletteSet& palettes() const { return *palettes_; }
  NodeId num_nodes() const { return g_->num_nodes(); }

  Color color(NodeId v) const { return colors_[v]; }
  bool is_colored(NodeId v) const { return colors_[v] != kNoColor; }
  bool is_deferred(NodeId v) const { return deferred_[v] != 0; }
  bool is_active(NodeId v) const { return active_[v] != 0; }

  /// A node participates in the current procedure iff it is marked
  /// active, still uncolored and not deferred.
  bool participates(NodeId v) const {
    return is_active(v) && !is_colored(v) && !is_deferred(v);
  }

  void set_color(NodeId v, Color c) { colors_[v] = c; }
  void set_deferred(NodeId v) { deferred_[v] = 1; }

  /// Select the node set the next procedure runs on.
  void set_active_all() { std::fill(active_.begin(), active_.end(), 1); }
  void set_active(std::span<const NodeId> nodes) {
    std::fill(active_.begin(), active_.end(), 0);
    for (NodeId v : nodes) active_[v] = 1;
  }
  void set_active_mask(std::vector<std::uint8_t> mask) {
    active_ = std::move(mask);
  }

  /// Degree of v in the current graph: neighbors that are uncolored and
  /// not deferred. (Colored and deferred neighbors are removed.)
  std::uint32_t current_degree(NodeId v) const {
    std::uint32_t d = 0;
    for (NodeId u : g_->neighbors(v))
      if (!is_colored(u) && !is_deferred(u)) ++d;
    return d;
  }

  /// Degree of v counting only neighbors participating in the current
  /// procedure. HKNT's staged coloring (Vstart before the easy sparse
  /// nodes, outliers before inliers) relies on *temporary slack*: nodes
  /// scheduled later neither contend for colors now nor shrink palettes
  /// now, so procedure-internal degree checks use this count.
  std::uint32_t participating_degree(NodeId v) const {
    std::uint32_t d = 0;
    for (NodeId u : g_->neighbors(v))
      if (participates(u)) ++d;
    return d;
  }

  /// Slack against the participating set only (temporary slack).
  std::int64_t participating_slack(NodeId v) const {
    return static_cast<std::int64_t>(available_count(v)) -
           static_cast<std::int64_t>(participating_degree(v));
  }

  /// Colors of v's palette not taken by any colored neighbor, in sorted
  /// order. (Deferred neighbors hold no color, so they block nothing.)
  std::vector<Color> available_colors(NodeId v) const;

  std::uint32_t available_count(NodeId v) const;

  /// Slack: |available palette| - current degree. The paper's procedures
  /// are all slack-generation steps; SSPs are phrased over this value.
  std::int64_t slack(NodeId v) const {
    return static_cast<std::int64_t>(available_count(v)) -
           static_cast<std::int64_t>(current_degree(v));
  }

  /// Uniformly random available color of v drawn from `bits`; kNoColor
  /// if the available palette is empty.
  Color sample_available(NodeId v, BitStream& bits) const;

  /// Sample `want` distinct available colors (or all, if fewer exist).
  std::vector<Color> sample_available_distinct(NodeId v, std::uint32_t want,
                                               BitStream& bits) const;

  const Coloring& colors() const { return colors_; }
  Coloring& mutable_colors() { return colors_; }
  const std::vector<std::uint8_t>& deferred_mask() const { return deferred_; }
  std::vector<std::uint8_t>& mutable_deferred() { return deferred_; }

  std::uint64_t count_uncolored() const;
  std::uint64_t count_deferred() const;
  std::uint64_t count_participants() const;

 private:
  const Graph* g_;
  const PaletteSet* palettes_;
  Coloring colors_;
  std::vector<std::uint8_t> deferred_;
  std::vector<std::uint8_t> active_;
};

}  // namespace pdc::derand
