#pragma once
// Theorem 12 machinery: derandomizing a *series* of normal procedures,
// deferral recursion, and the greedy finish.
//
// The theorem's shape: run Lemma 10 on each of the k procedures in order
// (deferred nodes drop out of later procedures); because the problem is
// self-reducible (Definition 11), the deferred/unfinished nodes form a
// fresh valid instance, so the caller recurses r = 1/δ = O(1) times; the
// n^{o(1)} leftovers are then collected onto one machine and completed
// greedily. The recursion itself is problem-specific (it rebuilds
// instances via residual()); the D1LC driver lives in pdc::d1lc, and the
// Luby-MIS exemplar manages its own loop. This header provides the
// shared pieces: the in-order sequence runner and the greedy completion.

#include <span>
#include <vector>

#include "pdc/derand/lemma10.hpp"

namespace pdc::derand {

struct SequenceReport {
  std::vector<Lemma10Report> steps;

  std::uint64_t total_deferred() const {
    std::uint64_t t = 0;
    for (const auto& s : steps) t += s.deferred_new;
    return t;
  }
  std::uint64_t total_wsp_violations() const {
    std::uint64_t t = 0;
    for (const auto& s : steps) t += s.wsp_violations;
    return t;
  }
};

/// Runs the procedures in order under Lemma 10 against a shared chunk
/// assignment (computed once for the maximum tau, as in the theorem's
/// proof, which colors G^{4τ} once up front).
SequenceReport derandomize_sequence(
    std::span<const NormalProcedure* const> procedures, ColoringState& state,
    const Lemma10Options& opt, mpc::CostModel* cost);

/// Greedy completion (the theorem's final step): colors every remaining
/// uncolored node — deferred or not — in index order from its available
/// palette. For a valid D1LC state this always succeeds: a node's
/// available palette always exceeds its uncolored degree. Charges the
/// cost model for collecting the residual subgraph onto one machine.
/// Returns the number of nodes colored. Throws if any node has an empty
/// available palette (impossible for valid D1LC states; indicates a
/// procedure committed conflicting colors).
std::uint64_t greedy_complete(ColoringState& state, mpc::CostModel* cost);

}  // namespace pdc::derand
