#include "pdc/derand/theorem12.hpp"

#include <algorithm>

namespace pdc::derand {

SequenceReport derandomize_sequence(
    std::span<const NormalProcedure* const> procedures, ColoringState& state,
    const Lemma10Options& opt, mpc::CostModel* cost) {
  SequenceReport rep;
  int max_tau = 1;
  for (const auto* p : procedures) max_tau = std::max(max_tau, p->tau());
  ChunkAssignment chunks =
      assign_chunks(state.graph(), max_tau, opt, cost);
  for (const auto* p : procedures) {
    rep.steps.push_back(
        derandomize_procedure(*p, state, chunks, opt, cost));
  }
  return rep;
}

std::uint64_t greedy_complete(ColoringState& state, mpc::CostModel* cost) {
  // Collect the residual (uncolored) nodes; in MPC this subgraph is
  // shipped to a single machine (charged below), which colors greedily.
  std::vector<NodeId> todo;
  std::uint64_t residual_words = 0;
  for (NodeId v = 0; v < state.num_nodes(); ++v) {
    if (!state.is_colored(v)) {
      todo.push_back(v);
      residual_words += 1 + state.graph().degree(v);
    }
  }
  if (cost) cost->charge_greedy_finish(residual_words);

  std::uint64_t colored = 0;
  for (NodeId v : todo) {
    auto avail = state.available_colors(v);
    // Prefer a color no uncolored neighbor is forced into — plain
    // first-available suffices for correctness (palette exceeds degree).
    PDC_CHECK_MSG(!avail.empty(),
                  "greedy completion found node " << v
                      << " with empty available palette — upstream "
                         "procedure committed an invalid coloring");
    state.set_color(v, avail.front());
    ++colored;
  }
  return colored;
}

}  // namespace pdc::derand
