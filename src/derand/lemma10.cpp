#include "pdc/derand/lemma10.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "pdc/derand/estimator.hpp"
#include "pdc/engine/search.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/util/parallel.hpp"

namespace pdc::derand {

namespace {

/// Decomposed Lemma-10 objective: item = node, contribution = "node
/// participates and fails its strong success property under this seed".
/// begin_sweep simulates the procedure once per seed in the block
/// (exactly the per-seed work the paper's machines do); the engine's
/// node-major sweep then aggregates all per-node failure indicators for
/// the whole block in a single pass over the nodes — the pre-engine
/// path re-walked every node once per candidate seed.
class SspFailureOracle final : public engine::CostOracle {
 public:
  SspFailureOracle(const NormalProcedure& proc, const ColoringState& state,
                   const prg::PrgFamily& family,
                   const std::vector<std::uint32_t>& chunk_of)
      : proc_(&proc), state_(&state), family_(&family), chunk_of_(&chunk_of) {}

  std::size_t item_count() const override { return state_->num_nodes(); }

  void begin_sweep(std::span<const std::uint64_t> seeds) override {
    seeds_.assign(seeds.begin(), seeds.end());
    runs_.clear();
    runs_.resize(seeds.size(), ProcedureRun(0));
    parallel_for(seeds.size(), [&](std::size_t k) {
      auto src = family_->source(seeds_[k]);
      ChunkedSource chunked(src, *chunk_of_);
      runs_[k] = proc_->simulate(*state_, chunked);
    });
  }

  void end_sweep() override {
    runs_.clear();
    seeds_.clear();
  }

  void eval_batch(std::span<const std::uint64_t> seeds, std::size_t item,
                  double* sink) const override {
    const NodeId v = static_cast<NodeId>(item);
    if (!state_->participates(v)) return;
    // Block-stateful: runs_[k] is the simulation for seeds[k].
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      if (!proc_->ssp(*state_, runs_[k], v)) sink[k] += 1.0;
    }
  }

 private:
  const NormalProcedure* proc_;
  const ColoringState* state_;
  const prg::PrgFamily* family_;
  const std::vector<std::uint32_t>* chunk_of_;
  std::vector<std::uint64_t> seeds_;
  std::vector<ProcedureRun> runs_;
};

}  // namespace

engine::Selection lemma10_seed_selection(const NormalProcedure& proc,
                                         const ColoringState& state,
                                         const ChunkAssignment& chunks,
                                         const Lemma10Options& opt,
                                         bool* estimator_used) {
  PDC_CHECK(opt.strategy == SeedStrategy::kExhaustive ||
            opt.strategy == SeedStrategy::kConditionalExpectation ||
            opt.strategy == SeedStrategy::kPrefixWalk);
  prg::PrgFamily family = lemma10_family(opt);
  const engine::SearchRequest request =
      lemma10_request(opt.strategy, opt.seed_bits, opt.search);

  std::unique_ptr<PessimisticEstimator> est;
  if (opt.use_estimator != EstimatorMode::kOff) est = proc.estimator();
  PDC_CHECK_MSG(
      opt.use_estimator != EstimatorMode::kRequire || est != nullptr,
      "Lemma 10: EstimatorMode::kRequire but procedure '"
          << proc.name() << "' provides no pessimistic estimator");
  if (estimator_used != nullptr) *estimator_used = est != nullptr;
  if (est != nullptr) {
    // Estimator plane: the search never simulates — the engine serves
    // the totals from the oracle's closed forms (or, on the prefix-walk
    // route, its junta subgrid sums). The guarantee binds the estimator
    // mean via pointwise domination.
    SspEstimatorOracle oracle(*est, state, family, chunks.chunk_of);
    return engine::search(oracle, request);
  }
  SspFailureOracle oracle(proc, state, family, chunks.chunk_of);
  return engine::search(oracle, request);
}

ChunkAssignment assign_chunks(const Graph& g, int tau,
                              const Lemma10Options& opt,
                              mpc::CostModel* cost) {
  ChunkAssignment out;
  const NodeId n = g.num_nodes();
  if (opt.strategy == SeedStrategy::kTrueRandom) {
    // True randomness ignores chunks entirely (per-node streams); skip
    // the power-graph coloring.
    out.chunk_of.resize(n);
    for (NodeId v = 0; v < n; ++v) out.chunk_of[v] = v;
    out.num_chunks = n;
    out.power_coloring = false;
    return out;
  }
  if (opt.shared_chunk_count > 0) {
    // Ablation mode: deliberately violate the disjoint-chunk discipline.
    out.chunk_of.resize(n);
    for (NodeId v = 0; v < n; ++v)
      out.chunk_of[v] =
          static_cast<std::uint32_t>(mix64(v) % opt.shared_chunk_count);
    out.num_chunks = opt.shared_chunk_count;
    out.power_coloring = false;
    return out;
  }
  const int dist = 4 * tau;
  // When Δ^{4τ} >= n the distance-4τ balls cover essentially the whole
  // graph and the proper power coloring degenerates to ~n singleton
  // classes — skip straight to per-node chunks (identical outcome,
  // none of the sequential-greedy cost).
  std::uint64_t dpow = 1;
  bool ball_covers_graph = false;
  for (int i = 0; i < dist; ++i) {
    dpow *= std::max<std::uint64_t>(1, g.max_degree());
    if (dpow >= g.num_nodes()) {
      ball_covers_graph = true;
      break;
    }
  }
  if (!opt.force_unique_chunks && !ball_covers_graph &&
      ball_work_upper_bound(g, dist) <= opt.chunk_work_budget) {
    DistanceColoring dc = distance_coloring(g, dist);
    out.chunk_of = std::move(dc.chunk_of);
    out.num_chunks = dc.num_chunks;
    out.power_coloring = true;
    if (cost) cost->charge_power_graph_coloring(tau, g.num_nodes());
  } else {
    // Lazy-PRG fallback: per-node-unique chunks (a trivially valid
    // distance coloring with n classes).
    out.chunk_of.resize(n);
    for (NodeId v = 0; v < n; ++v) out.chunk_of[v] = v;
    out.num_chunks = n;
    out.power_coloring = false;
    if (cost) cost->charge_power_graph_coloring(tau, g.num_nodes());
  }
  return out;
}

Lemma10Report derandomize_procedure(const NormalProcedure& proc,
                                    ColoringState& state,
                                    const ChunkAssignment& chunks,
                                    const Lemma10Options& opt,
                                    mpc::CostModel* cost) {
  obs::Span derand_span("lemma10.derandomize", obs::SpanKind::kPhase);
  derand_span.tag("procedure", proc.name());
  Lemma10Report rep;
  rep.procedure = proc.name();
  rep.participants = state.count_participants();
  rep.chunks = chunks.num_chunks;
  rep.power_coloring_used = chunks.power_coloring;

  const int tau = proc.tau();
  const double delta =
      std::max<double>(2.0, state.graph().max_degree());
  rep.lemma10_bound =
      0.5 + static_cast<double>(state.num_nodes()) *
                std::pow(delta, -11.0 * tau);

  if (cost) {
    // Lemma 10 preprocessing: gather 8τ-hop input information, simulate,
    // and run conditional expectations.
    std::uint64_t ball_words = std::min<std::uint64_t>(
        state.num_nodes(),
        static_cast<std::uint64_t>(
            std::pow(static_cast<double>(state.graph().max_degree()), tau)) +
            1);
    cost->charge_ball_gather(ball_words, tau);
    cost->charge_local_round(state.graph().max_degree(), tau);
  }

  ProcedureRun chosen(state.num_nodes());

  if (opt.strategy == SeedStrategy::kTrueRandom) {
    prg::TrueRandomSource src(opt.true_random_seed);
    chosen = proc.simulate(state, src);
    rep.seed_evaluations = 1;
  } else {
    prg::PrgFamily family = lemma10_family(opt);
    engine::Selection sel;
    {
      obs::Span search_span("lemma10.search");
      if (opt.strategy == SeedStrategy::kFirstSeed) {
        SspFailureOracle oracle(proc, state, family, chunks.chunk_of);
        sel.seed = 0;
        sel.cost = engine::evaluate_seed(oracle, 0, &sel.stats);
        sel.mean_cost = sel.cost;
      } else {
        sel = lemma10_seed_selection(proc, state, chunks, opt,
                                     &rep.estimator_used);
      }
      if (search_span.active()) {
        search_span.tag_u64("seed", sel.seed);
        search_span.tag("estimator", rep.estimator_used ? "yes" : "no");
      }
    }
    if (rep.estimator_used) rep.estimator_mean = sel.mean_cost;
    rep.seed = sel.seed;
    rep.mean_failures = sel.mean_cost;
    rep.seed_evaluations = sel.stats.evaluations;
    rep.search = sel.stats;
    if (cost) cost->charge_conditional_expectation(opt.seed_bits);
    obs::Span replay_span("lemma10.commit_replay");
    auto src = family.source(sel.seed);
    ChunkedSource chunked(src, chunks.chunk_of);
    chosen = proc.simulate(state, chunked);
  }

  // Mark SSP failures; defer them (derandomized mode) or leave them
  // uncolored to retry (randomized mode).
  obs::Span commit_span("lemma10.commit");
  std::vector<std::uint8_t> defer(state.num_nodes(), 0);
  for (NodeId v = 0; v < state.num_nodes(); ++v) {
    if (!state.participates(v)) continue;
    if (!proc.ssp(state, chosen, v)) {
      ++rep.ssp_failures;
      if (opt.defer_failures) defer[v] = 1;
    }
  }

  // Verify the weak success property of the surviving participants
  // before committing — this is the Definition-5 contract, checked
  // rather than assumed.
  rep.wsp_violations = parallel_count(state.num_nodes(), [&](std::size_t v) {
    NodeId node = static_cast<NodeId>(v);
    return state.participates(node) && !defer[node] &&
           !proc.wsp(state, chosen, node, defer);
  });

  proc.commit(state, chosen, defer);
  if (opt.defer_failures) {
    for (NodeId v = 0; v < state.num_nodes(); ++v)
      if (defer[v]) state.set_deferred(v);
    rep.deferred_new = rep.ssp_failures;
  }
  rep.defer_fraction =
      rep.participants
          ? static_cast<double>(rep.deferred_new) /
                static_cast<double>(rep.participants)
          : 0.0;
  if (commit_span.active()) {
    commit_span.tag_u64("ssp_failures", rep.ssp_failures);
    commit_span.tag_u64("deferred", rep.deferred_new);
  }
  if (derand_span.active()) {
    derand_span.tag_u64("participants", rep.participants);
    derand_span.tag_u64("seed_evaluations", rep.seed_evaluations);
  }

#ifndef NDEBUG
  // A correct simulate() never proposes conflicting colors; verify.
  for (NodeId v = 0; v < state.num_nodes(); ++v) {
    if (state.color(v) == kNoColor) continue;
    for (NodeId u : state.graph().neighbors(v)) {
      PDC_ASSERT(state.color(u) != state.color(v));
    }
  }
#endif
  return rep;
}

Lemma10Report derandomize_procedure(const NormalProcedure& proc,
                                    ColoringState& state,
                                    const Lemma10Options& opt,
                                    mpc::CostModel* cost) {
  ChunkAssignment chunks =
      assign_chunks(state.graph(), proc.tau(), opt, cost);
  return derandomize_procedure(proc, state, chunks, opt, cost);
}

}  // namespace pdc::derand
