#include "pdc/derand/coloring_state.hpp"

#include <algorithm>

#include "pdc/util/parallel.hpp"

namespace pdc::derand {

std::vector<Color> ColoringState::available_colors(NodeId v) const {
  auto pal = palettes_->palette(v);
  std::vector<Color> blocked;
  for (NodeId u : g_->neighbors(v))
    if (is_colored(u)) blocked.push_back(colors_[u]);
  std::sort(blocked.begin(), blocked.end());
  std::vector<Color> out;
  out.reserve(pal.size());
  for (Color c : pal)
    if (!std::binary_search(blocked.begin(), blocked.end(), c))
      out.push_back(c);
  return out;
}

std::uint32_t ColoringState::available_count(NodeId v) const {
  auto pal = palettes_->palette(v);
  std::vector<Color> blocked;
  for (NodeId u : g_->neighbors(v))
    if (is_colored(u)) blocked.push_back(colors_[u]);
  std::sort(blocked.begin(), blocked.end());
  blocked.erase(std::unique(blocked.begin(), blocked.end()), blocked.end());
  std::uint32_t cnt = 0;
  for (Color c : pal)
    if (!std::binary_search(blocked.begin(), blocked.end(), c)) ++cnt;
  return cnt;
}

Color ColoringState::sample_available(NodeId v, BitStream& bits) const {
  auto avail = available_colors(v);
  if (avail.empty()) return kNoColor;
  return avail[bits.below(avail.size())];
}

std::vector<Color> ColoringState::sample_available_distinct(
    NodeId v, std::uint32_t want, BitStream& bits) const {
  auto avail = available_colors(v);
  if (avail.size() <= want) return avail;
  // Partial Fisher–Yates over the available list.
  for (std::uint32_t i = 0; i < want; ++i) {
    std::uint64_t j = i + bits.below(avail.size() - i);
    std::swap(avail[i], avail[j]);
  }
  avail.resize(want);
  std::sort(avail.begin(), avail.end());
  return avail;
}

std::uint64_t ColoringState::count_uncolored() const {
  return parallel_count(num_nodes(), [&](std::size_t v) {
    return !is_colored(static_cast<NodeId>(v));
  });
}

std::uint64_t ColoringState::count_deferred() const {
  return parallel_count(num_nodes(), [&](std::size_t v) {
    return is_deferred(static_cast<NodeId>(v));
  });
}

std::uint64_t ColoringState::count_participants() const {
  return parallel_count(num_nodes(), [&](std::size_t v) {
    return participates(static_cast<NodeId>(v));
  });
}

}  // namespace pdc::derand
