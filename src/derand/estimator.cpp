#include "pdc/derand/estimator.hpp"

#include <algorithm>

#include "pdc/util/check.hpp"

namespace pdc::derand {

double PessimisticEstimator::term(std::uint64_t member, NodeId v) const {
  PDC_CHECK_MSG(ctx_.family != nullptr,
                "PessimisticEstimator::term called outside prepare/release");
  prg::PrgFamily::Source src = ctx_.family->source(member);
  ChunkedSource chunked(src, *ctx_.chunk_of);
  return term_from_source(*ctx_.state, chunked, v);
}

std::size_t PessimisticEstimator::junta_size(NodeId v) const {
  const ColoringState& state = *ctx_.state;
  if (!state.participates(v)) return 0;
  std::vector<std::uint32_t> chunks;
  chunks.push_back((*ctx_.chunk_of)[v]);
  for (NodeId u : state.graph().neighbors(v))
    if (state.participates(u)) chunks.push_back((*ctx_.chunk_of)[u]);
  std::sort(chunks.begin(), chunks.end());
  chunks.erase(std::unique(chunks.begin(), chunks.end()), chunks.end());
  return chunks.size();
}

}  // namespace pdc::derand
