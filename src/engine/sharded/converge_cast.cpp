#include "pdc/engine/sharded/converge_cast.hpp"

#include <algorithm>
#include <bit>

#include "pdc/obs/obs.hpp"
#include "pdc/util/check.hpp"

namespace pdc::engine::sharded {

namespace {

using mpc::MachineId;
using mpc::Word;

inline Word encode(std::int64_t v) { return std::bit_cast<Word>(v); }
inline std::int64_t decode(Word w) { return std::bit_cast<std::int64_t>(w); }

/// Folds an inbox of width-wide partials into `storage` by integer
/// addition. Returns false on a mis-framed message (wrong width)
/// instead of throwing: machine steps may run on substrate worker
/// threads (see the Substrate contract in cluster.hpp), where an
/// escaping exception would terminate the process — callers check the
/// flag host-side after the round.
[[nodiscard]] bool fold_inbox(const std::vector<Word>& inbox,
                              std::vector<Word>& storage,
                              std::size_t width) {
  bool ok = true;
  mpc::for_each_message(inbox, [&](MachineId, std::span<const Word> pl) {
    if (pl.size() != width) {
      ok = false;
      return;
    }
    for (std::size_t k = 0; k < width; ++k)
      storage[k] = encode(decode(storage[k]) + decode(pl[k]));
  });
  return ok;
}

}  // namespace

std::uint32_t pick_fan_in(const mpc::Config& cfg, std::size_t width) {
  PDC_CHECK(width >= 1);
  // A fold-round parent simultaneously holds its own width-word partial
  // (storage) and f - 1 child partials (inbox): f * width resident
  // words total, which must fit in s. The minimum viable tree (f = 2)
  // therefore needs width <= s / 2.
  PDC_CHECK_MSG(2 * static_cast<std::uint64_t>(width) <=
                    cfg.local_space_words,
                "converge-cast width " << width << " too wide for local "
                "space s=" << cfg.local_space_words
                << " (storage + one child partial must fit)");
  const std::uint64_t f = cfg.local_space_words / width;
  const std::uint64_t cap = std::max<std::uint64_t>(2, cfg.num_machines);
  return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(f, 2, cap));
}

std::uint64_t converge_cast_rounds(std::uint32_t p, std::uint32_t fan_in) {
  PDC_CHECK(fan_in >= 2);
  std::uint64_t levels = 0;
  std::uint64_t cover = 1;
  while (cover < p) {
    cover *= fan_in;
    ++levels;
  }
  return std::max<std::uint64_t>(1, levels);
}

std::vector<std::int64_t> converge_cast_sum(
    mpc::Cluster& cluster, std::size_t width, std::uint32_t fan_in,
    const std::function<void(mpc::MachineId, std::int64_t*)>& partial,
    ConvergeCastStats* stats) {
  const MachineId p = cluster.num_machines();
  PDC_CHECK(p >= 1 && fan_in >= 2 && width >= 1);
  // The cast claims every machine's storage as scratch (see the
  // storage contract in the header); refuse to destroy resident state.
  for (MachineId m = 0; m < p; ++m)
    PDC_CHECK_MSG(cluster.storage(m).empty(),
                  "machine " << m << "'s storage is in use; a converge-"
                  "cast would destroy it — stage it host-side first or "
                  "use a separate search cluster");
  // Reject space-infeasible configurations up front (callers may pass
  // an explicit fan-in that bypasses pick_fan_in): a fold-round parent
  // holds its own partial plus up to min(fan_in, p) - 1 children's.
  const std::uint64_t resident =
      std::min<std::uint64_t>(fan_in, p) * width;
  PDC_CHECK_MSG(resident <= cluster.config().local_space_words,
                "converge-cast fan-in " << fan_in << " x width " << width
                << " needs " << resident << " resident words > s="
                << cluster.config().local_space_words);
  const std::uint64_t rounds = converge_cast_rounds(p, fan_in);
  obs::Span cast_span("sharded.converge_cast");
  if (cast_span.active()) {
    cast_span.tag_u64("width", width);
    cast_span.tag_u64("fan_in", fan_in);
    cast_span.tag_u64("machines", p);
    cast_span.tag_u64("rounds", rounds);
  }
  std::vector<std::uint8_t> fold_ok(p, 1);
  // Measured (not derived) send volume: each machine writes only its
  // own slot inside the parallel step, so the counters are race-free
  // and a scheduling bug that re-sends partials shows up in the stats.
  std::vector<std::uint64_t> sent_words(p, 0);

  for (std::uint64_t r = 0; r < rounds; ++r) {
    // One span per aggregation level: r = 0 is the compute round (shard
    // scoring), later levels pure fold rounds.
    obs::Span level_span(r == 0 ? "sharded.cast_level.compute"
                                : "sharded.cast_level.fold");
    if (level_span.active()) level_span.tag_u64("level", r);
    // Senders at level r are the machines whose trailing base-fan_in
    // digits first become nonzero at r: m % f^r == 0, m % f^{r+1} != 0.
    std::uint64_t stride = 1;
    for (std::uint64_t i = 0; i < r; ++i) stride *= fan_in;
    const std::uint64_t parent_stride = stride * fan_in;

    cluster.round([&](MachineId m, const std::vector<Word>& inbox,
                      std::vector<Word>& storage, mpc::Outbox& ob) {
      if (r == 0) {
        // Compute round: every machine scores its shard into a local
        // int64 partial. Candidate seeds are consecutive integers the
        // machines derive locally, so no seed broadcast is needed.
        std::vector<std::int64_t> acc(width, 0);
        partial(m, acc.data());
        storage.resize(width);
        for (std::size_t k = 0; k < width; ++k) storage[k] = encode(acc[k]);
      } else {
        // Fold the child partials delivered by the previous level.
        if (!fold_inbox(inbox, storage, width)) fold_ok[m] = 0;
      }
      if (m != 0 && m % stride == 0 && m % parent_stride != 0) {
        const MachineId parent =
            static_cast<MachineId>(m - m % parent_stride);
        sent_words[m] += storage.size();
        ob.send(parent, storage);  // copies into the outbox arena
      }
    });
  }

  for (MachineId m = 0; m < p; ++m)
    PDC_CHECK_MSG(fold_ok[m], "converge-cast: mis-framed partial delivered "
                              "to machine " << m);

  // Root readout: the final level's partials sit in machine 0's inbox;
  // fold them host-side (the output-on-a-designated-machine convention —
  // their delivery was already capacity-checked by the last round).
  std::vector<Word> root(cluster.storage(0));
  PDC_CHECK(root.size() == width);
  PDC_CHECK_MSG(fold_inbox(cluster.inbox(0), root, width),
                "converge-cast: mis-framed partial at the root readout");
  std::vector<std::int64_t> totals(width);
  for (std::size_t k = 0; k < width; ++k) totals[k] = decode(root[k]);

  // Release the cast's scratch — storage on every machine, and the
  // root's consumed inbox — so later rounds on the same cluster are
  // neither charged for it nor at risk of mis-framing the leftovers.
  for (MachineId m = 0; m < p; ++m) cluster.storage(m).clear();
  cluster.clear_inbox(0);

  if (cast_span.active()) {
    std::uint64_t total_sent = 0;
    for (MachineId m = 0; m < p; ++m) total_sent += sent_words[m];
    cast_span.tag_u64("words", total_sent);
  }
  if (stats) {
    stats->rounds += rounds;
    // Every non-root machine ships its width-word partial exactly once,
    // so this measures (p - 1) * width — checked by the tests against
    // the formula, but reported from the actual sends.
    for (MachineId m = 0; m < p; ++m) stats->payload_words += sent_words[m];
    stats->fan_in = fan_in;
  }
  return totals;
}

}  // namespace pdc::engine::sharded
