// The engine front door (pdc/engine/search.hpp). Lives in the sharded
// layer because dispatching needs both engines; every consumer already
// links pdc_engine_sharded.

#include "pdc/engine/search.hpp"

#include <algorithm>

#include "pdc/engine/sharded/sharded_search.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/util/check.hpp"

namespace pdc::engine {

const char* to_string(SearchRoute route) {
  switch (route) {
    case SearchRoute::kExhaustive: return "exhaustive";
    case SearchRoute::kExhaustiveBits: return "exhaustive-bits";
    case SearchRoute::kConditionalExpectation: return "cond-exp";
    case SearchRoute::kPrefixWalk: return "prefix-walk";
  }
  return "";
}

SearchBackend resolve_backend(const ExecutionPolicy& policy,
                              std::size_t item_count) {
  switch (policy.backend) {
    case SearchBackend::kSharedMemory:
      return SearchBackend::kSharedMemory;
    case SearchBackend::kSharded:
      PDC_CHECK_MSG(policy.cluster != nullptr,
                    "kSharded seed search needs an mpc::Cluster");
      return SearchBackend::kSharded;
    case SearchBackend::kAuto:
      break;
  }
  if (policy.cluster == nullptr) return SearchBackend::kSharedMemory;
  const std::size_t p = policy.cluster->num_machines();
  // A parallel substrate divides the sharded backend's per-round
  // machine-step wall across its workers, so the cutover floor drops
  // proportionally: kSharded starts paying at item counts concurrency
  // times smaller than on the sequential simulator.
  const std::size_t conc =
      std::max<unsigned>(1, policy.cluster->substrate_concurrency());
  const std::size_t floor =
      std::max<std::size_t>(1, policy.auto_items_per_machine / conc);
  return item_count >= floor * p ? SearchBackend::kSharded
                                 : SearchBackend::kSharedMemory;
}

namespace {

template <typename Search>
Selection run_route(Search& search, const SearchRequest& req) {
  switch (req.route) {
    case SearchRoute::kExhaustive:
      return search.exhaustive(req.num_seeds);
    case SearchRoute::kExhaustiveBits:
      return search.exhaustive_bits(req.seed_bits);
    case SearchRoute::kConditionalExpectation:
      return search.conditional_expectation(req.seed_bits);
    case SearchRoute::kPrefixWalk:
      return search.prefix_walk(req.seed_bits);
  }
  PDC_CHECK_MSG(false, "unknown SearchRoute");
  return {};
}

/// Every search publishes its Selection's stats into the global metrics
/// registry, keyed by the innermost open phase span and the resolved
/// route/plane/backend. The counters mirror SearchStats field for
/// field (same absorb semantics: counters/reals add, batch and
/// max_machine_load are high-water gauges), so a metrics snapshot is a
/// label-partitioned view of the same accounting the reports thread by
/// hand.
void publish_search_metrics(const SearchRequest& request,
                            const SearchStats& s) {
  obs::Metrics& m = obs::Metrics::global();
  const obs::Labels key{obs::current_phase(), to_string(request.route),
                        to_string(s.route), to_string(s.backend)};
  m.add("engine.searches", key, 1);
  m.add("engine.evaluations", key, s.evaluations);
  m.add("engine.sweeps", key, s.sweeps);
  m.gauge_max("engine.batch", key, static_cast<double>(s.batch));
  m.add_real("engine.wall_ms", key, s.wall_ms);
  if (s.backend == BackendTag::kSharded) {
    m.add("engine.sharded.rounds", key, s.sharded.rounds);
    m.add("engine.sharded.words", key, s.sharded.words);
    m.gauge_max("engine.sharded.max_machine_load", key,
                static_cast<double>(s.sharded.max_machine_load));
  }
  if (s.analytic.searches != 0) {
    m.add("engine.analytic.searches", key, s.analytic.searches);
    m.add("engine.analytic.blocks", key, s.analytic.blocks);
    m.add("engine.analytic.formula_evals", key, s.analytic.formula_evals);
  }
  if (s.prefix.walks != 0) {
    m.add("engine.prefix.walks", key, s.prefix.walks);
    m.add("engine.prefix.bit_steps", key, s.prefix.bit_steps);
    m.add("engine.prefix.junta_evals", key, s.prefix.junta_evals);
  }
}

}  // namespace

Selection search(CostOracle& oracle, const SearchRequest& request) {
  obs::Span span("engine.search");
  const SearchBackend resolved =
      resolve_backend(request.policy, oracle.item_count());
  Selection sel;
  if (resolved == SearchBackend::kSharded) {
    sharded::ShardedOptions sopt;
    sopt.search = request.policy.options;
    sharded::ShardedSeedSearch search(oracle, *request.policy.cluster, sopt);
    sel = run_route(search, request);
  } else {
    SeedSearch search(oracle, request.policy.options);
    sel = run_route(search, request);
  }
  sel.stats.backend_auto =
      request.policy.backend == SearchBackend::kAuto;
  if (request.policy.stats_sink != nullptr)
    request.policy.stats_sink->absorb(sel.stats);
  if (span.active()) {
    span.tag("route", to_string(request.route));
    span.tag("plane", to_string(sel.stats.route));
    span.tag("backend", to_string(sel.stats.backend));
    span.tag_u64("items", oracle.item_count());
    span.tag_u64("evaluations", sel.stats.evaluations);
    span.tag_u64("seed", sel.seed);
  }
  if (obs::metrics_enabled()) publish_search_metrics(request, sel.stats);
  return sel;
}

}  // namespace pdc::engine
