// The engine front door (pdc/engine/search.hpp). Lives in the sharded
// layer because dispatching needs both engines; every consumer already
// links pdc_engine_sharded.

#include "pdc/engine/search.hpp"

#include "pdc/engine/sharded/sharded_search.hpp"
#include "pdc/util/check.hpp"

namespace pdc::engine {

SearchBackend resolve_backend(const ExecutionPolicy& policy,
                              std::size_t item_count) {
  switch (policy.backend) {
    case SearchBackend::kSharedMemory:
      return SearchBackend::kSharedMemory;
    case SearchBackend::kSharded:
      PDC_CHECK_MSG(policy.cluster != nullptr,
                    "kSharded seed search needs an mpc::Cluster");
      return SearchBackend::kSharded;
    case SearchBackend::kAuto:
      break;
  }
  if (policy.cluster == nullptr) return SearchBackend::kSharedMemory;
  const std::size_t p = policy.cluster->num_machines();
  return item_count >= policy.auto_items_per_machine * p
             ? SearchBackend::kSharded
             : SearchBackend::kSharedMemory;
}

namespace {

template <typename Search>
Selection run_route(Search& search, const SearchRequest& req) {
  switch (req.route) {
    case SearchRoute::kExhaustive:
      return search.exhaustive(req.num_seeds);
    case SearchRoute::kExhaustiveBits:
      return search.exhaustive_bits(req.seed_bits);
    case SearchRoute::kConditionalExpectation:
      return search.conditional_expectation(req.seed_bits);
    case SearchRoute::kPrefixWalk:
      return search.prefix_walk(req.seed_bits);
  }
  PDC_CHECK_MSG(false, "unknown SearchRoute");
  return {};
}

}  // namespace

Selection search(CostOracle& oracle, const SearchRequest& request) {
  const SearchBackend resolved =
      resolve_backend(request.policy, oracle.item_count());
  Selection sel;
  if (resolved == SearchBackend::kSharded) {
    sharded::ShardedOptions sopt;
    sopt.search = request.policy.options;
    sharded::ShardedSeedSearch search(oracle, *request.policy.cluster, sopt);
    sel = run_route(search, request);
  } else {
    SeedSearch search(oracle, request.policy.options);
    sel = run_route(search, request);
  }
  sel.stats.backend_auto =
      request.policy.backend == SearchBackend::kAuto;
  if (request.policy.stats_sink != nullptr)
    request.policy.stats_sink->absorb(sel.stats);
  return sel;
}

}  // namespace pdc::engine
