#include "pdc/engine/sharded/sharded_search.hpp"

#include <algorithm>
#include <cmath>

#include "pdc/engine/analytic.hpp"
#include "pdc/engine/prefix.hpp"
#include "pdc/engine/sharded/converge_cast.hpp"
#include "pdc/util/check.hpp"
#include "pdc/util/timer.hpp"

namespace pdc::engine::sharded {

namespace {

/// Restores the ledger's phase on scope exit, so a throwing capacity
/// check mid-search cannot leave later rounds misattributed to
/// "seed-search(sharded)".
class PhaseGuard {
 public:
  explicit PhaseGuard(mpc::Ledger& ledger)
      : ledger_(&ledger), saved_(ledger.phase()) {}
  ~PhaseGuard() { ledger_->begin_phase(saved_); }
  PhaseGuard(const PhaseGuard&) = delete;
  PhaseGuard& operator=(const PhaseGuard&) = delete;

 private:
  mpc::Ledger* ledger_;
  std::string saved_;
};

}  // namespace

ShardedOracle::ShardedOracle(CostOracle& oracle, const ShardPlan& plan,
                             int frac_bits, bool use_batched_members)
    : oracle_(&oracle), plan_(&plan), frac_bits_(frac_bits),
      use_batched_members_(use_batched_members) {
  PDC_CHECK(frac_bits >= 0 && frac_bits <= 32);
}

std::int64_t ShardedOracle::encode(double cost) const {
  return static_cast<std::int64_t>(
      std::llround(std::ldexp(cost, frac_bits_)));
}

std::int64_t ShardedOracle::encode_checked(double cost) const {
  const std::int64_t fixed = encode(cost);
  // The bit-identical-Selection guarantee rests on this conversion
  // being lossless. Cannot throw here (parallel machine step); the
  // flag surfaces as a PDC_CHECK after the sweep.
  if (std::ldexp(static_cast<double>(fixed), -frac_bits_) != cost)
    off_grid_.store(true, std::memory_order_relaxed);
  return fixed;
}

double ShardedOracle::decode(std::int64_t fixed) const {
  return std::ldexp(static_cast<double>(fixed), -frac_bits_);
}

void ShardedOracle::eval_shard(mpc::MachineId m,
                               std::span<const std::uint64_t> seeds,
                               std::int64_t* sink) const {
  if (oracle_->item_count() == 1) {
    // Opaque objective: shard the seed block instead of the items.
    const mpc::MachineId p = plan_->num_machines();
    for (std::size_t k = m; k < seeds.size(); k += p)
      sink[k] += encode_checked(oracle_->cost(seeds[k], 0));
    return;
  }
  std::vector<double> buf(seeds.size());
  for (std::uint32_t item : plan_->items_of(m)) {
    // Per-item encode keeps the shard sum an exact integer sum: the
    // order machines and items fold in can never change the total.
    std::fill(buf.begin(), buf.end(), 0.0);
    oracle_->eval_batch(seeds, item, buf.data());
    for (std::size_t k = 0; k < seeds.size(); ++k)
      sink[k] += encode_checked(buf[k]);
  }
}

void ShardedOracle::eval_shard_analytic(mpc::MachineId m, std::uint64_t first,
                                        std::size_t count,
                                        std::int64_t* sink) const {
  const AnalyticOracle* an = oracle_->as_analytic();
  PDC_CHECK_MSG(an != nullptr,
                "eval_shard_analytic on a non-analytic oracle");
  if (oracle_->item_count() == 1) {
    // Opaque objective: shard the member block instead of the items.
    const mpc::MachineId p = plan_->num_machines();
    for (std::size_t k = m; k < count; k += p) {
      double c = 0.0;
      an->eval_analytic(first + k, 1, 0, &c);
      sink[k] += encode_checked(c);
    }
    return;
  }
  std::vector<double> buf(count);
  for (std::uint32_t item : plan_->items_of(m)) {
    // Per-item encode keeps the shard sum an exact integer sum, exactly
    // as in the enumerating eval_shard. eval_members is the SIMD
    // member-major entry point; its exactness contract keeps the
    // fixed-point partials bit-identical to the scalar path.
    std::fill(buf.begin(), buf.end(), 0.0);
    if (use_batched_members_)
      an->eval_members(first, count, item, buf.data());
    else
      an->eval_analytic(first, count, item, buf.data());
    for (std::size_t k = 0; k < count; ++k)
      sink[k] += encode_checked(buf[k]);
  }
}

void ShardedOracle::eval_shard_prefix(mpc::MachineId m, std::uint64_t prefix,
                                      int bits_fixed,
                                      const MemberSubgrid& subgrid,
                                      std::int64_t* sink) const {
  const PrefixOracle* po = oracle_->as_prefix();
  PDC_CHECK_MSG(po != nullptr, "eval_shard_prefix on a non-prefix oracle");
  // Per-item encode keeps the shard sum an exact integer sum, exactly
  // as in the enumerating and analytic shard paths. (Opaque one-item
  // oracles need no special case here: item 0 homes on machine 0.)
  for (std::uint32_t item : plan_->items_of(m))
    sink[0] += encode_checked(po->eval_prefix(prefix, bits_fixed,
                                              item, subgrid));
}

std::uint64_t ShardedOracle::max_machine_load(std::size_t block) const {
  if (oracle_->item_count() == 1) {
    const mpc::MachineId p = plan_->num_machines();
    return (block + p - 1) / p;
  }
  return plan_->max_load();
}

ShardedSeedSearch::ShardedSeedSearch(CostOracle& oracle,
                                     mpc::Cluster& cluster,
                                     ShardedOptions opt)
    : oracle_(&oracle), cluster_(&cluster), opt_(opt),
      plan_(ShardPlan::make(oracle.item_count(), cluster.config())),
      adapter_(oracle, plan_, opt.frac_bits,
               opt.search.use_batched_members) {}

std::vector<double> ShardedSeedSearch::compute_totals(std::uint64_t num_seeds,
                                                      SearchStats& stats) {
  const mpc::Config& cfg = cluster_->config();
  // A fold-round parent holds its own partial plus at least one
  // child's (fan-in 2 minimum), so one block's fixed-point totals may
  // occupy at most half a machine's local space.
  std::size_t max_batch = resolve_max_batch(opt_.search,
                                            oracle_->item_count());
  max_batch = std::min<std::size_t>(
      max_batch, static_cast<std::size_t>(cfg.local_space_words / 2));
  PDC_CHECK(max_batch >= 1);

  mpc::Ledger& ledger = cluster_->ledger();
  PhaseGuard restore_phase(ledger);
  ledger.begin_phase("seed-search(sharded)");

  // Shared converge-cast step for both block paths: run `score` on
  // every machine, fold the fixed-point partials up the tree, decode
  // into `out`, and account the substrate work.
  auto cast_block =
      [&](std::size_t block, double* out,
          const std::function<void(mpc::MachineId, std::int64_t*)>& score) {
        const std::uint32_t fan_in =
            opt_.fan_in ? opt_.fan_in : pick_fan_in(cfg, block);
        ConvergeCastStats cc;
        std::vector<std::int64_t> fixed =
            converge_cast_sum(*cluster_, block, fan_in, score, &cc);
        for (std::size_t k = 0; k < block; ++k)
          out[k] = adapter_.decode(fixed[k]);
        stats.sharded.rounds += cc.rounds;
        stats.sharded.words += cc.payload_words;
        stats.sharded.max_machine_load =
            std::max(stats.sharded.max_machine_load,
                     adapter_.max_machine_load(block));
      };
  // The bit-identical-Selection guarantee rests on the fixed-point
  // encode being lossless; the adapter records violations during the
  // parallel machine steps and this raises them host-side per block.
  auto check_on_grid = [&] {
    PDC_CHECK_MSG(!adapter_.saw_off_grid_cost(),
                  "oracle produced a cost not representable on the 2^-"
                  << opt_.frac_bits << " fixed-point grid; raise "
                  "ShardedOptions::frac_bits or keep costs integral");
  };

  return detail::compute_totals_blocked(
      *oracle_, num_seeds, max_batch, opt_.search.use_analytic, stats,
      [&](std::span<const std::uint64_t> seeds, double* out) {
        adapter_.begin_sweep(seeds);
        cast_block(seeds.size(), out,
                   [&](mpc::MachineId m, std::int64_t* sink) {
                     adapter_.eval_shard(m, seeds, sink);
                   });
        adapter_.end_sweep();
        check_on_grid();
      },
      [&](std::uint64_t first, std::size_t count, double* out) {
        cast_block(count, out, [&](mpc::MachineId m, std::int64_t* sink) {
          adapter_.eval_shard_analytic(m, first, count, sink);
        });
        check_on_grid();
      });
}

Selection ShardedSeedSearch::exhaustive(std::uint64_t num_seeds) {
  Selection out = detail::run_exhaustive(
      [this](std::uint64_t n, SearchStats& s) { return compute_totals(n, s); },
      num_seeds);
  out.stats.backend = detail::merge_tag(out.stats.backend,
                                        BackendTag::kSharded);
  return out;
}

Selection ShardedSeedSearch::exhaustive_bits(int seed_bits) {
  PDC_CHECK(seed_bits >= 1 && seed_bits <= 30);
  return exhaustive(1ULL << seed_bits);
}

Selection ShardedSeedSearch::conditional_expectation(int seed_bits) {
  Selection out = detail::run_conditional_expectation(
      [this](std::uint64_t n, SearchStats& s) { return compute_totals(n, s); },
      seed_bits, opt_.search.early_exit);
  out.stats.backend = detail::merge_tag(out.stats.backend,
                                        BackendTag::kSharded);
  return out;
}

Selection ShardedSeedSearch::prefix_walk(int seed_bits) {
  PDC_CHECK(seed_bits >= 1 && seed_bits <= 30);
  PrefixOracle* po =
      opt_.search.use_prefix ? oracle_->as_prefix() : nullptr;
  if (po == nullptr) {
    // Reference semantics: the identical walk over a full sharded
    // totals pass (analytic or enumerating per use_analytic).
    Selection out = detail::run_prefix_walk_totals(
        [this](std::uint64_t n, SearchStats& s) {
          return compute_totals(n, s);
        },
        seed_bits);
    out.stats.backend = detail::merge_tag(out.stats.backend,
                                          BackendTag::kSharded);
    return out;
  }

  Timer timer;
  SearchStats stats;
  const mpc::Config& cfg = cluster_->config();
  mpc::Ledger& ledger = cluster_->ledger();
  PhaseGuard restore_phase(ledger);
  ledger.begin_phase("seed-search(prefix)");

  po->begin_walk(seed_bits);
  Selection out = detail::run_prefix_walk_oracle(
      seed_bits,
      [&](std::uint64_t child0, int fixed, const MemberSubgrid& sub0,
          const MemberSubgrid& sub1, bool need_both, double* sums) {
        // One cast of a single branch-sum word per step (two on the
        // first step) — O(bits) cast volume per walk, the junta-fooling
        // analogue of the totals routes' O(members)-word casts.
        const std::size_t width = need_both ? 2 : 1;
        const std::uint32_t fan_in =
            opt_.fan_in ? opt_.fan_in : pick_fan_in(cfg, width);
        ConvergeCastStats cc;
        std::vector<std::int64_t> fixed_sums = converge_cast_sum(
            *cluster_, width, fan_in,
            [&](mpc::MachineId m, std::int64_t* sink) {
              adapter_.eval_shard_prefix(m, child0, fixed, sub0, sink);
              if (need_both)
                adapter_.eval_shard_prefix(m, child0 | 1, fixed, sub1,
                                           sink + 1);
            },
            &cc);
        for (std::size_t k = 0; k < width; ++k)
          sums[k] = adapter_.decode(fixed_sums[k]);
        stats.sharded.rounds += cc.rounds;
        stats.sharded.words += cc.payload_words;
        stats.sharded.max_machine_load =
            std::max(stats.sharded.max_machine_load, plan_.max_load());
        PDC_CHECK_MSG(!adapter_.saw_off_grid_cost(),
                      "prefix walk produced a cost not representable on "
                      "the 2^-" << opt_.frac_bits << " fixed-point grid");
      });
  detail::stamp_prefix_walk(stats, seed_bits, po->junta_evals());
  stats.backend = BackendTag::kSharded;
  po->end_walk();
  out.stats = stats;
  out.stats.wall_ms = timer.millis();
  return out;
}

}  // namespace pdc::engine::sharded
