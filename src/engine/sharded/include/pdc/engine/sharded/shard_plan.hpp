#pragma once
// Shard plan: which MPC machine scores which oracle items.
//
// The sharded seed search evaluates a CostOracle's items machine-locally
// and converge-casts the per-seed partial totals; the plan fixes the
// item -> machine map up front so every sweep of a search reads the same
// distribution. The default map is the repo-wide home convention
// (item i lives on machine i mod p — the same `v % p` rule the Luby and
// low-degree MPC executions use for node state), which is what makes
// "score your own nodes" literal: the items a machine evaluates are the
// nodes whose state it already holds. Callers with a different owner
// map (e.g. DistributedGraph::home_of after a re-layout) pass it in;
// a capacity cap then spills overloaded machines' items to the least
// loaded ones, so no machine is asked to hold more items than its local
// space admits.

#include <cstdint>
#include <span>
#include <vector>

#include "pdc/mpc/cluster.hpp"

namespace pdc::engine::sharded {

class ShardPlan {
 public:
  /// Owner mapping: item i -> machine i % p. Load is automatically
  /// balanced (max ceil(items / p)); this is the plan every in-repo
  /// call site uses because it matches where node state lives.
  static ShardPlan owner_modulo(std::size_t item_count, mpc::MachineId p);

  /// Caller-supplied owner homes with a capacity-aware fallback: items
  /// whose home already holds `capacity` items are reassigned to the
  /// currently least-loaded machine. Requires capacity * p >= items.
  static ShardPlan from_homes(std::span<const mpc::MachineId> home_of,
                              mpc::MachineId p, std::uint64_t capacity);

  /// Default plan for a cluster: owner modulo, with the per-machine
  /// load checked against the machine's local space (a machine must be
  /// able to hold its shard's state).
  static ShardPlan make(std::size_t item_count, const mpc::Config& cfg);

  mpc::MachineId home_of(std::size_t item) const { return home_[item]; }
  std::span<const std::uint32_t> items_of(mpc::MachineId m) const {
    return std::span<const std::uint32_t>(items_.data() + offsets_[m],
                                          offsets_[m + 1] - offsets_[m]);
  }
  std::size_t item_count() const { return home_.size(); }
  mpc::MachineId num_machines() const {
    return static_cast<mpc::MachineId>(offsets_.size() - 1);
  }
  /// Items resident on the fullest machine.
  std::uint64_t max_load() const;

 private:
  ShardPlan(std::vector<mpc::MachineId> home, mpc::MachineId p);

  std::vector<mpc::MachineId> home_;   // item -> machine
  std::vector<std::size_t> offsets_;   // CSR offsets, size p + 1
  std::vector<std::uint32_t> items_;   // items grouped by machine
};

}  // namespace pdc::engine::sharded
