#pragma once
// Tree converge-cast of fixed-width integer partial vectors on the
// Cluster substrate — the aggregation step of the paper's Lemma-10
// argument, made executable: every machine computes a width-wide partial
// (its shard's contribution to each candidate seed), and the partials
// are summed to machine 0 up a fan-in-f aggregation tree.
//
// Round structure (each level is one capacity-checked Cluster::round):
//   round 0:  every machine computes its partial into local storage;
//             level-0 senders (m with m % f != 0) ship theirs to the
//             group leader.
//   round l:  leaders fold the partials delivered last round into their
//             own, then level-l senders (m % f^l == 0, m % f^{l+1} != 0)
//             ship the folded partial up.
// After ceil(log_f p) rounds only machine 0 has never sent; the host
// folds its final inbox and reads the totals off it (the model's "the
// output resides on a designated machine" convention, same as
// collect_records). Every non-root machine sends its width words
// exactly once, so the cast moves (p - 1) * width payload words, and a
// fold-round parent holds its own width-word partial plus up to
// (f - 1) * width inbox words — f * width resident words — so the
// fan-in is chosen from local space s to keep that joint footprint
// within s, with the cluster's strict capacity checks enabled.

#include <cstdint>
#include <functional>
#include <vector>

#include "pdc/mpc/cluster.hpp"

namespace pdc::engine::sharded {

/// Largest fan-in whose per-parent joint footprint (the machine's own
/// width-word partial plus f - 1 child partials: f * width words) fits
/// in local space, clamped to [2, max(2,p)]. Requires width <= s / 2
/// (the f = 2 minimum must fit; the sharded search clamps its block
/// size so it does).
std::uint32_t pick_fan_in(const mpc::Config& cfg, std::size_t width);

/// Rounds a fan_in-ary converge-cast over p machines takes:
/// max(1, ceil(log_fan_in(p))) — the compute round is folded into the
/// first send level. Tests assert the Ledger advances by exactly this.
std::uint64_t converge_cast_rounds(std::uint32_t p, std::uint32_t fan_in);

struct ConvergeCastStats {
  std::uint64_t rounds = 0;         // cluster rounds charged
  std::uint64_t payload_words = 0;  // words converge-cast (excl. headers)
  std::uint32_t fan_in = 0;
};

/// Runs the cast: `partial(m, sink)` must add machine m's width-wide
/// int64 contribution into sink (zero-initialized). Returns the summed
/// totals; charges the rounds to the cluster's ledger. Integer partials
/// make the sum exact and independent of machine count and fold order.
///
/// Storage contract: the cast uses every machine's persistent storage
/// as its scratch — round 0 fills it with the width-word partial, and
/// all storages are released (cleared) after the root readout so later
/// rounds are not charged for them. The cast REFUSES (PDC_CHECK) to
/// run if any machine's storage is non-empty, so resident state cannot
/// be silently destroyed. The Luby and low-degree MPC executions keep
/// node state host-side and compose safely; mpc::DistributedGraph does
/// NOT — it keeps its sorted edge records in machine storage, so stage
/// them host-side first or search on a separate cluster.
std::vector<std::int64_t> converge_cast_sum(
    mpc::Cluster& cluster, std::size_t width, std::uint32_t fan_in,
    const std::function<void(mpc::MachineId, std::int64_t*)>& partial,
    ConvergeCastStats* stats = nullptr);

}  // namespace pdc::engine::sharded
