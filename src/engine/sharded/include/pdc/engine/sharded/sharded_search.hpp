#pragma once
// Sharded seed search: SeedSearch's blocked sweeps executed on an
// mpc::Cluster.
//
// The paper's derandomization (Lemma 10 and its users) is an MPC
// algorithm: each machine scores the candidate seeds against the items
// it owns, and the per-seed totals are combined by converge-cast. The
// shared-memory engine computes those exact totals in-process;
// ShardedSeedSearch computes them on the substrate — a ShardPlan fixes
// each item's home machine, a ShardedOracle scores a machine's shard
// into fixed-point integer sinks, and every sweep becomes one-or-more
// capacity-checked Cluster rounds (scoring folded into the first level
// of a fan-in tree chosen from local space s; see converge_cast.hpp).
//
// Bit-identical guarantee: for oracles whose per-item costs sit on the
// fixed-point grid (2^-frac_bits steps — every production oracle is
// integer-valued), the int64 shard sums decode to exactly the doubles
// the shared-memory engine accumulates, and both backends then run the
// same selection code (engine::detail), so Selections (seed, cost,
// mean_cost) match bit for bit regardless of machine count. The
// differential tests in tests/test_sharded.cpp enforce this against
// SeedSearch with strict capacity checks enabled.
//
// Oracle contract addendum: begin_sweep/end_sweep run host-side once
// per block (they model the per-seed simulation every machine performs
// on its own shard; the block's seeds are consecutive integers each
// machine derives locally, so no broadcast round is charged), and
// eval_batch must remain callable concurrently for distinct items —
// machine steps run in parallel.
//
// Analytic oracles (pdc/engine/analytic.hpp) skip the sweep contract
// entirely: each machine evaluates its shard's closed forms
// (eval_shard_analytic) with no per-block state — which is the honest
// MPC story, since a machine cannot consult another shard's simulation
// state without a communication round — and converge-casts the same
// fixed-point partials. Routing and accounting live in the shared
// engine::detail::compute_totals_blocked layer, so both backends make
// the identical analytic-vs-enumerating decision.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "pdc/engine/search.hpp"
#include "pdc/engine/seed_search.hpp"
#include "pdc/engine/sharded/shard_plan.hpp"
#include "pdc/mpc/cluster.hpp"

namespace pdc::engine::sharded {

/// Adapter scoring one machine's shard of a CostOracle into fixed-point
/// integer sinks (the words the converge-cast moves). Opaque oracles
/// (item_count() == 1) fall back to sharding the *seed block*: machine
/// m scores seeds k with k % p == m — the only decomposition an opaque
/// objective admits.
class ShardedOracle {
 public:
  /// `use_batched_members` routes the analytic shard path through
  /// AnalyticOracle::eval_members (the SIMD member-major entry point);
  /// false forces scalar eval_analytic — differential tests only, the
  /// Selections are bit-identical either way (the eval_members
  /// exactness contract).
  ShardedOracle(CostOracle& oracle, const ShardPlan& plan, int frac_bits,
                bool use_batched_members = true);

  void begin_sweep(std::span<const std::uint64_t> seeds) {
    oracle_->begin_sweep(seeds);
  }
  void end_sweep() { oracle_->end_sweep(); }

  /// Adds machine m's contribution for every seeds[k] into sink[k]
  /// (fixed-point). Safe to call concurrently for distinct machines.
  void eval_shard(mpc::MachineId m, std::span<const std::uint64_t> seeds,
                  std::int64_t* sink) const;

  /// Analytic counterpart: adds machine m's contribution for members
  /// [first, first+count) into sink[0..count) by evaluating the
  /// oracle's closed forms over m's shard (pdc/engine/analytic.hpp) —
  /// no begin_sweep state, no simulation; the per-item fixed-point
  /// encode keeps the shard sum exact, so the converge-cast totals are
  /// bit-identical to the shared-memory analytic (and, by the
  /// AnalyticOracle exactness contract, enumerating) paths. Requires
  /// the wrapped oracle to advertise as_analytic().
  void eval_shard_analytic(mpc::MachineId m, std::uint64_t first,
                           std::size_t count, std::int64_t* sink) const;

  /// Prefix counterpart (pdc/engine/prefix.hpp): adds machine m's
  /// exact branch sum over `subgrid` (the completions of `prefix` at
  /// depth `bits_fixed`) into sink[0] — one fixed-point word per
  /// machine per walk step instead of a members-wide partial vector.
  /// Per-item encode keeps the shard sum exact, same as the other two
  /// paths. Requires the wrapped oracle to advertise as_prefix().
  void eval_shard_prefix(mpc::MachineId m, std::uint64_t prefix,
                         int bits_fixed, const MemberSubgrid& subgrid,
                         std::int64_t* sink) const;

  double decode(std::int64_t fixed) const;
  /// Items the fullest machine owns (seed-sharded mode: seeds per
  /// machine in the widest block).
  std::uint64_t max_machine_load(std::size_t block) const;
  /// True once eval_shard saw a cost the fixed-point grid cannot
  /// represent exactly. eval_shard runs inside parallel machine steps
  /// where a throw would terminate the process, so it records the
  /// violation here and the search raises it host-side after the sweep
  /// — silently quantizing would break the bit-identity guarantee.
  bool saw_off_grid_cost() const {
    return off_grid_.load(std::memory_order_relaxed);
  }

 private:
  std::int64_t encode(double cost) const;
  std::int64_t encode_checked(double cost) const;

  CostOracle* oracle_;
  const ShardPlan* plan_;
  int frac_bits_;
  bool use_batched_members_;
  mutable std::atomic<bool> off_grid_{false};
};

struct ShardedOptions {
  /// Block sizing and early-exit policy, shared with the in-process
  /// engine (max_batch == 0 resolves adaptively, then clamps so one
  /// partial vector fits in local space).
  SearchOptions search;
  /// Fixed-point fractional bits for the integer sinks. 20 keeps exact
  /// integer totals up to 2^43 — far beyond any in-repo objective —
  /// while representing sub-integer costs to ~1e-6.
  int frac_bits = 20;
  /// Aggregation-tree fan-in; 0 picks the largest fan-in whose
  /// per-parent receive volume fits in local space (pick_fan_in).
  std::uint32_t fan_in = 0;
};

/// Drives SeedSearch's three routes on a cluster. The oracle and
/// cluster must outlive the search; every sweep charges real rounds to
/// the cluster's ledger under phase "seed-search(sharded)" (the
/// caller's phase is restored afterwards). Sweeps use the machines'
/// persistent storage as converge-cast scratch — overwritten, then
/// released — so callers must not keep state resident there across a
/// search (see converge_cast.hpp's storage contract).
class ShardedSeedSearch {
 public:
  ShardedSeedSearch(CostOracle& oracle, mpc::Cluster& cluster,
                    ShardedOptions opt = {});

  // adapter_ points at this object's own plan_, so copies/moves would
  // leave it aimed at the source; a search is built, run, discarded.
  ShardedSeedSearch(const ShardedSeedSearch&) = delete;
  ShardedSeedSearch& operator=(const ShardedSeedSearch&) = delete;

  /// Index search: argmin over seeds 0..num_seeds-1.
  Selection exhaustive(std::uint64_t num_seeds);
  /// Exhaustive search over the 2^seed_bits bit-seed space.
  Selection exhaustive_bits(int seed_bits);
  /// Method of conditional expectations over 2^seed_bits seeds.
  Selection conditional_expectation(int seed_bits);
  /// Junta-fooling prefix walk over 2^seed_bits members. Oracle-backed
  /// (the oracle advertises as_prefix and use_prefix allows): each of
  /// the seed_bits steps runs one converge-cast of a single branch sum
  /// (two on the first step) — O(seed_bits) cast words per walk
  /// instead of the totals routes' O(2^seed_bits). Otherwise the walk
  /// runs over a full sharded totals pass. Selections are bit-identical
  /// to the shared-memory walk for fixed-point-exact oracles.
  Selection prefix_walk(int seed_bits);

  const ShardPlan& plan() const { return plan_; }

 private:
  std::vector<double> compute_totals(std::uint64_t num_seeds,
                                     SearchStats& stats);

  CostOracle* oracle_;
  mpc::Cluster* cluster_;
  ShardedOptions opt_;
  ShardPlan plan_;
  ShardedOracle adapter_;
};

}  // namespace pdc::engine::sharded
