#include "pdc/engine/sharded/shard_plan.hpp"

#include <algorithm>

#include "pdc/util/check.hpp"

namespace pdc::engine::sharded {

ShardPlan::ShardPlan(std::vector<mpc::MachineId> home, mpc::MachineId p)
    : home_(std::move(home)) {
  PDC_CHECK(p >= 1);
  offsets_.assign(static_cast<std::size_t>(p) + 1, 0);
  for (mpc::MachineId m : home_) {
    PDC_CHECK(m < p);
    ++offsets_[m + 1];
  }
  for (std::size_t m = 0; m < p; ++m) offsets_[m + 1] += offsets_[m];
  items_.resize(home_.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < home_.size(); ++i)
    items_[cursor[home_[i]]++] = static_cast<std::uint32_t>(i);
}

ShardPlan ShardPlan::owner_modulo(std::size_t item_count, mpc::MachineId p) {
  PDC_CHECK(p >= 1);
  std::vector<mpc::MachineId> home(item_count);
  for (std::size_t i = 0; i < item_count; ++i)
    home[i] = static_cast<mpc::MachineId>(i % p);
  return ShardPlan(std::move(home), p);
}

ShardPlan ShardPlan::from_homes(std::span<const mpc::MachineId> home_of,
                                mpc::MachineId p, std::uint64_t capacity) {
  PDC_CHECK(p >= 1 && capacity >= 1);
  PDC_CHECK_MSG(capacity * p >= home_of.size(),
                "shard plan: " << home_of.size() << " items exceed cluster "
                "capacity " << capacity << " x " << p << " machines");
  std::vector<mpc::MachineId> home(home_of.begin(), home_of.end());
  std::vector<std::uint64_t> load(p, 0);
  // First pass: honor owner homes up to capacity, in item order (the
  // spill decision must be deterministic for reproducible plans).
  std::vector<std::size_t> spilled;
  for (std::size_t i = 0; i < home.size(); ++i) {
    if (load[home[i]] < capacity) {
      ++load[home[i]];
    } else {
      spilled.push_back(i);
    }
  }
  for (std::size_t i : spilled) {
    const auto it = std::min_element(load.begin(), load.end());
    home[i] = static_cast<mpc::MachineId>(it - load.begin());
    ++(*it);
  }
  return ShardPlan(std::move(home), p);
}

ShardPlan ShardPlan::make(std::size_t item_count, const mpc::Config& cfg) {
  ShardPlan plan = owner_modulo(item_count, cfg.num_machines);
  PDC_CHECK_MSG(plan.max_load() <= cfg.local_space_words,
                "shard plan: per-machine load " << plan.max_load()
                << " exceeds local space s=" << cfg.local_space_words);
  return plan;
}

std::uint64_t ShardPlan::max_load() const {
  std::uint64_t best = 0;
  for (std::size_t m = 0; m + 1 < offsets_.size(); ++m)
    best = std::max<std::uint64_t>(best, offsets_[m + 1] - offsets_[m]);
  return best;
}

}  // namespace pdc::engine::sharded
