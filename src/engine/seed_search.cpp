#include "pdc/engine/seed_search.hpp"

#include <algorithm>
#include <bit>

#include "pdc/engine/analytic.hpp"
#include "pdc/engine/prefix.hpp"
#include "pdc/util/check.hpp"
#include "pdc/util/parallel.hpp"
#include "pdc/util/timer.hpp"

namespace pdc::engine {

const char* to_string(PlaneTag plane) {
  switch (plane) {
    case PlaneTag::kNone: return "";
    case PlaneTag::kEnumerating: return "enumerating";
    case PlaneTag::kAnalytic: return "analytic";
    case PlaneTag::kPrefix: return "prefix";
    case PlaneTag::kMixed: return "mixed";
  }
  return "";
}

const char* to_string(BackendTag backend) {
  switch (backend) {
    case BackendTag::kNone: return "";
    case BackendTag::kSharedMemory: return "shared-memory";
    case BackendTag::kSharded: return "sharded";
    case BackendTag::kMixed: return "mixed";
  }
  return "";
}

std::size_t resolve_max_batch(const SearchOptions& opt,
                              std::size_t item_count) {
  if (opt.max_batch != 0) return opt.max_batch;
  // Adaptive policy: an eighth of the item count, rounded up to a
  // power of two. The 4096-double ceiling keeps the sink within a
  // 32 KiB L1 slice; the floor of 128 keeps small searches in one or
  // two passes.
  constexpr std::size_t kFloor = 128;
  constexpr std::size_t kCeil = 32 * 1024 / sizeof(double);  // 4096
  const std::size_t target =
      std::bit_ceil(std::max<std::size_t>(1, item_count / 8));
  return std::clamp(target, kFloor, kCeil);
}

namespace detail {

Selection select_exhaustive(const std::vector<double>& totals) {
  Selection out;
  out.cost = totals[0];
  double sum = 0.0;
  for (std::uint64_t s = 0; s < totals.size(); ++s) {
    sum += totals[s];
    if (totals[s] < out.cost) {
      out.cost = totals[s];
      out.seed = s;
    }
  }
  out.mean_cost = sum / static_cast<double>(totals.size());
  return out;
}

Selection select_conditional_expectation(const std::vector<double>& totals,
                                         int seed_bits, bool early_exit) {
  const std::uint64_t n = 1ULL << seed_bits;
  PDC_CHECK(totals.size() == n);
  Selection out;

  // Bitwise walk. At bit i with prefix p (low i bits fixed), branch
  // b's completions are exactly the seeds s with s mod 2^{i+1} ==
  // p | b<<i; their totals are already in hand, so each conditional
  // expectation is a strided partial mean — no re-evaluation.
  std::uint64_t prefix = 0;
  double overall_mean = 0.0;
  for (int bit = 0; bit < seed_bits; ++bit) {
    const std::uint64_t step = 1ULL << (bit + 1);
    double branch_sum[2] = {0.0, 0.0};
    double branch_min[2];
    double branch_max[2];
    for (int b = 0; b < 2; ++b) {
      const std::uint64_t base =
          prefix | (static_cast<std::uint64_t>(b) << bit);
      branch_min[b] = totals[base];
      branch_max[b] = totals[base];
      for (std::uint64_t s = base; s < n; s += step) {
        branch_sum[b] += totals[s];
        branch_min[b] = std::min(branch_min[b], totals[s]);
        branch_max[b] = std::max(branch_max[b], totals[s]);
      }
    }
    const double completions = static_cast<double>(n >> (bit + 1));
    const double mean0 = branch_sum[0] / completions;
    const double mean1 = branch_sum[1] / completions;
    if (bit == 0) overall_mean = (mean0 + mean1) / 2.0;
    const int pick = mean1 < mean0 ? 1 : 0;
    prefix |= static_cast<std::uint64_t>(pick) << bit;
    if (early_exit && branch_min[pick] == branch_max[pick]) {
      // Flat branch: every completion attains the branch mean; the
      // first completion (remaining bits 0) is optimal within it.
      break;
    }
  }
  out.seed = prefix;
  out.cost = totals[prefix];
  out.mean_cost = overall_mean;
  return out;
}

Selection select_prefix_walk(const std::vector<double>& totals,
                             int seed_bits) {
  const std::uint64_t n = 1ULL << seed_bits;
  PDC_CHECK(totals.size() == n);
  // Mirror of run_prefix_walk_oracle over a totals vector: same branch
  // rule (compare exact sums, ties to 0), same parent-minus-child
  // derivation after the first step, same mean. For integer-valued
  // costs every quantity is an exact integer in doubles, so the two
  // walks cannot diverge.
  return run_prefix_walk_oracle(
      seed_bits,
      [&](std::uint64_t /*child0_prefix*/, int /*bits_fixed*/,
          const MemberSubgrid& sub0, const MemberSubgrid& sub1,
          bool need_both, double* out) {
        out[0] = 0.0;
        for (std::uint64_t s = sub0.first; s < sub0.first + sub0.count; ++s)
          out[0] += totals[s];
        if (!need_both) return;
        out[1] = 0.0;
        for (std::uint64_t s = sub1.first; s < sub1.first + sub1.count; ++s)
          out[1] += totals[s];
      });
}

Selection run_prefix_walk_oracle(int seed_bits,
                                 const PrefixBranchFn& branch_sums) {
  PDC_CHECK(seed_bits >= 1 && seed_bits <= 30);
  const std::uint64_t n = 1ULL << seed_bits;
  Selection out;
  std::uint64_t prefix = 0;
  double parent = 0.0;
  for (int t = 0; t < seed_bits; ++t) {
    const int fixed = t + 1;
    const std::uint64_t child0 = prefix << 1;
    const std::uint64_t width = n >> fixed;
    const MemberSubgrid sub0{child0 * width, width};
    const MemberSubgrid sub1{(child0 | 1) * width, width};
    const bool need_both = (t == 0);
    double s[2] = {0.0, 0.0};
    branch_sums(child0, fixed, sub0, sub1, need_both, s);
    if (t == 0) {
      out.mean_cost = (s[0] + s[1]) / static_cast<double>(n);
    } else {
      // The two children partition the chosen parent subgrid; for
      // integer costs the subtraction is exact, so only one branch sum
      // is ever recomputed (on the sharded backend: one cast word).
      s[1] = parent - s[0];
    }
    const int pick = s[1] < s[0] ? 1 : 0;
    prefix = child0 | static_cast<std::uint64_t>(pick);
    parent = s[pick];
  }
  // All bits fixed: the final subgrid is the singleton {prefix}, so the
  // last chosen branch sum is the seed's total.
  out.seed = prefix;
  out.cost = parent;
  return out;
}

Selection run_prefix_walk_totals(const TotalsFn& totals, int seed_bits) {
  PDC_CHECK(seed_bits >= 1 && seed_bits <= 30);
  Timer timer;
  SearchStats stats;
  Selection out =
      select_prefix_walk(totals(1ULL << seed_bits, stats), seed_bits);
  out.stats = stats;
  out.stats.wall_ms = timer.millis();
  return out;
}

void stamp_prefix_walk(SearchStats& stats, int seed_bits,
                       std::uint64_t junta_evals) {
  stats.prefix.walks = 1;
  stats.prefix.bit_steps = static_cast<std::uint64_t>(seed_bits);
  stats.prefix.junta_evals = junta_evals;
  stats.evaluations = 1ULL << seed_bits;
  stats.route = PlaneTag::kPrefix;
}

Selection run_exhaustive(const TotalsFn& totals, std::uint64_t num_seeds) {
  PDC_CHECK(num_seeds >= 1);
  Timer timer;
  SearchStats stats;
  Selection out = select_exhaustive(totals(num_seeds, stats));
  out.stats = stats;
  out.stats.wall_ms = timer.millis();
  return out;
}

Selection run_conditional_expectation(const TotalsFn& totals, int seed_bits,
                                      bool early_exit) {
  PDC_CHECK(seed_bits >= 1 && seed_bits <= 30);
  Timer timer;
  SearchStats stats;
  Selection out = select_conditional_expectation(
      totals(1ULL << seed_bits, stats), seed_bits, early_exit);
  out.stats = stats;
  out.stats.wall_ms = timer.millis();
  return out;
}

std::vector<double> compute_totals_blocked(CostOracle& oracle,
                                           std::uint64_t num_seeds,
                                           std::size_t max_batch,
                                           bool use_analytic,
                                           SearchStats& stats,
                                           const EnumerateBlockFn& enumerate,
                                           const AnalyticBlockFn& analytic) {
  PDC_CHECK(max_batch >= 1);
  // begin_search invariants are prepared whenever the oracle is
  // analytic — even when routing enumerates (use_analytic == false):
  // AnalyticOracle's default enumerating fallback derives from
  // eval_analytic, which reads those invariants.
  AnalyticOracle* prepared = oracle.as_analytic();
  AnalyticOracle* an = use_analytic ? prepared : nullptr;
  std::vector<double> totals(num_seeds, 0.0);
  if (prepared != nullptr) prepared->begin_search(num_seeds);
  if (an != nullptr) ++stats.analytic.searches;
  stats.route = merge_tag(
      stats.route, an != nullptr ? PlaneTag::kAnalytic : PlaneTag::kEnumerating);
  for (std::uint64_t s0 = 0; s0 < num_seeds; s0 += max_batch) {
    const std::size_t block = static_cast<std::size_t>(
        std::min<std::uint64_t>(max_batch, num_seeds - s0));
    if (an != nullptr) {
      analytic(s0, block, totals.data() + s0);
      ++stats.analytic.blocks;
      stats.analytic.formula_evals +=
          static_cast<std::uint64_t>(oracle.item_count()) * block;
    } else {
      std::vector<std::uint64_t> seeds(block);
      for (std::size_t k = 0; k < block; ++k) seeds[k] = s0 + k;
      enumerate(std::span<const std::uint64_t>(seeds), totals.data() + s0);
      ++stats.sweeps;
    }
    stats.evaluations += block;
    stats.batch = std::max<std::uint64_t>(stats.batch, block);
  }
  if (prepared != nullptr) prepared->end_search();
  return totals;
}

}  // namespace detail

SeedSearch::SeedSearch(CostOracle& oracle, SearchOptions opt)
    : oracle_(&oracle), opt_(opt) {}

std::vector<double> SeedSearch::compute_totals(std::uint64_t num_seeds,
                                               SearchStats& stats) {
  const std::size_t items = oracle_->item_count();
  const std::size_t max_batch = resolve_max_batch(opt_, items);
  return detail::compute_totals_blocked(
      *oracle_, num_seeds, max_batch, opt_.use_analytic, stats,
      [&](std::span<const std::uint64_t> seeds, double* out) {
        oracle_->begin_sweep(seeds);
        if (items == 1) {
          // Opaque objective: the only parallelism available is over
          // seeds (the legacy SeedCostFn contract).
          parallel_for(seeds.size(), [&](std::size_t k) {
            out[k] = oracle_->cost(seeds[k], 0);
          });
        } else {
          // Item-major sweep: one parallel pass over the items scores
          // the whole seed block.
          parallel_accumulate(items, seeds.size(), out,
                              [&](std::size_t item, double* sink) {
                                oracle_->eval_batch(seeds, item, sink);
                              });
        }
        oracle_->end_sweep();
      },
      [&](std::uint64_t first, std::size_t count, double* out) {
        AnalyticOracle* an = oracle_->as_analytic();
        const bool batched = opt_.use_batched_members;
        if (items == 1) {
          parallel_for(count, [&](std::size_t k) {
            an->eval_analytic(first + k, 1, 0, out + k);
          });
        } else {
          // eval_members is the SIMD member-major entry point; its
          // default forwards to eval_analytic, and the exactness
          // contract keeps the totals bit-identical either way.
          parallel_accumulate(items, count, out,
                              [&](std::size_t item, double* sink) {
                                if (batched)
                                  an->eval_members(first, count, item, sink);
                                else
                                  an->eval_analytic(first, count, item, sink);
                              });
        }
      });
}

namespace {

void tag_shared_memory(Selection& sel) {
  sel.stats.backend =
      detail::merge_tag(sel.stats.backend, BackendTag::kSharedMemory);
}

}  // namespace

Selection SeedSearch::exhaustive(std::uint64_t num_seeds) {
  Selection out = detail::run_exhaustive(
      [this](std::uint64_t n, SearchStats& s) { return compute_totals(n, s); },
      num_seeds);
  tag_shared_memory(out);
  return out;
}

Selection SeedSearch::exhaustive_bits(int seed_bits) {
  PDC_CHECK(seed_bits >= 1 && seed_bits <= 30);
  return exhaustive(1ULL << seed_bits);
}

Selection SeedSearch::conditional_expectation(int seed_bits) {
  Selection out = detail::run_conditional_expectation(
      [this](std::uint64_t n, SearchStats& s) { return compute_totals(n, s); },
      seed_bits, opt_.early_exit);
  tag_shared_memory(out);
  return out;
}

Selection SeedSearch::prefix_walk(int seed_bits) {
  PDC_CHECK(seed_bits >= 1 && seed_bits <= 30);
  PrefixOracle* po = opt_.use_prefix ? oracle_->as_prefix() : nullptr;
  Selection out;
  if (po == nullptr) {
    // Reference semantics: the identical walk over a full totals pass
    // (analytic or enumerating per SearchOptions::use_analytic).
    out = detail::run_prefix_walk_totals(
        [this](std::uint64_t n, SearchStats& s) {
          return compute_totals(n, s);
        },
        seed_bits);
  } else {
    Timer timer;
    const std::size_t items = oracle_->item_count();
    po->begin_walk(seed_bits);
    out = detail::run_prefix_walk_oracle(
        seed_bits,
        [&](std::uint64_t child0, int fixed, const MemberSubgrid& sub0,
            const MemberSubgrid& sub1, bool need_both, double* sums) {
          parallel_accumulate(items, need_both ? 2 : 1, sums,
                              [&](std::size_t item, double* sink) {
                                sink[0] += po->eval_prefix(child0, fixed,
                                                           item, sub0);
                                if (need_both)
                                  sink[1] += po->eval_prefix(
                                      child0 | 1, fixed, item, sub1);
                              });
        });
    detail::stamp_prefix_walk(out.stats, seed_bits, po->junta_evals());
    po->end_walk();
    out.stats.wall_ms = timer.millis();
  }
  tag_shared_memory(out);
  return out;
}

double evaluate_seed(CostOracle& oracle, std::uint64_t seed,
                     SearchStats* stats) {
  Timer timer;
  const std::uint64_t seeds[1] = {seed};
  std::span<const std::uint64_t> sp(seeds);
  // Analytic oracles' enumerating fallback reads begin_search
  // invariants; prepare them for this one-seed evaluation too.
  AnalyticOracle* an = oracle.as_analytic();
  if (an != nullptr) an->begin_search(seed + 1);
  oracle.begin_sweep(sp);
  double total = 0.0;
  const std::size_t items = oracle.item_count();
  if (items == 1) {
    total = oracle.cost(seed, 0);
  } else {
    parallel_accumulate(items, 1, &total,
                        [&](std::size_t item, double* sink) {
                          oracle.eval_batch(sp, item, sink);
                        });
  }
  oracle.end_sweep();
  if (an != nullptr) an->end_search();
  if (stats) {
    ++stats->sweeps;
    ++stats->evaluations;
    stats->batch = std::max<std::uint64_t>(stats->batch, 1);
    stats->wall_ms += timer.millis();
  }
  return total;
}

}  // namespace pdc::engine
