#include "pdc/engine/prefix.hpp"

#include <algorithm>

#include "pdc/util/check.hpp"

namespace pdc::engine {

void PrefixOracle::begin_walk(int bits) {
  PDC_CHECK(bits >= 1 && bits <= bit_count());
  walk_bits_ = bits;
  walk_members_ = 1ULL << bits;
  junta_evals_.store(0, std::memory_order_relaxed);
  begin_search(walk_members_);

  const std::size_t items = item_count();
  is_const_.assign(items, 0);
  const_cost_.assign(items, 0.0);
  cum_.assign(items, {});
  constant_items_ = 0;
  max_junta_ = 0;
  for (std::size_t i = 0; i < items; ++i) {
    max_junta_ = std::max(max_junta_, junta_size(i));
    if (std::optional<double> c = constant_cost(i)) {
      is_const_[i] = 1;
      const_cost_[i] = *c;
      ++constant_items_;
    }
  }

  // The default eval_prefix materializes one (members + 1)-entry
  // cumulative array per NON-constant item — O(active x members)
  // doubles, unlike the totals routes' single members-wide vector.
  // Refuse footprints past ~2 GiB instead of silently exhausting
  // memory; larger walks need an eval_prefix override or
  // SearchOptions::use_prefix = false. Counted after classification so
  // seed-constant items — which never allocate — don't disqualify an
  // otherwise affordable walk.
  constexpr std::uint64_t kMaxCacheEntries = 1ULL << 28;
  const std::uint64_t active = items - constant_items_;
  PDC_CHECK_MSG(active * walk_members_ <= kMaxCacheEntries,
                "prefix walk: default per-item completion caches would need "
                    << active << " x " << walk_members_
                    << " doubles; override eval_prefix or set "
                       "SearchOptions::use_prefix = false");
}

void PrefixOracle::end_walk() {
  is_const_.clear();
  const_cost_.clear();
  cum_.clear();
  walk_bits_ = 0;
  walk_members_ = 0;
  end_search();
}

double PrefixOracle::eval_prefix(std::uint64_t prefix, int bits_fixed,
                                 std::size_t item,
                                 const MemberSubgrid& subgrid) const {
  PDC_ASSERT(bits_fixed >= 1 && bits_fixed <= walk_bits_);
  PDC_ASSERT(subgrid.first ==
             prefix << static_cast<unsigned>(walk_bits_ - bits_fixed));
  PDC_ASSERT(subgrid.count == walk_members_ >> bits_fixed);
  if (is_const_[item])
    return const_cost_[item] * static_cast<double>(subgrid.count);
  std::vector<double>& cum = cum_[item];
  if (cum.empty()) {
    // First touch: materialize the item's completion sums — one junta
    // evaluation per member, the only formula work this item ever pays.
    // Filled through eval_members (the SIMD member-major entry point);
    // its exactness contract keeps the cumulative sums bit-identical
    // to a scalar eval_analytic fill.
    const std::size_t m = static_cast<std::size_t>(walk_members_);
    std::vector<double> costs(m, 0.0);
    eval_members(0, m, item, costs.data());
    junta_evals_.fetch_add(m, std::memory_order_relaxed);
    cum.resize(m + 1);
    cum[0] = 0.0;
    for (std::size_t j = 0; j < m; ++j) cum[j + 1] = cum[j] + costs[j];
  }
  return cum[subgrid.first + subgrid.count] - cum[subgrid.first];
}

}  // namespace pdc::engine
