#pragma once
// The prefix oracle plane: junta-fooling walks over seed-bit prefixes.
//
// The analytic plane (pdc/engine/analytic.hpp) removed the simulation
// from each (member, item) evaluation; the member *loop* remained — an
// analytic search still touches items x members closed forms. Harris's
// junta-fooling framework (arXiv:1610.03383) conditions on seed-bit
// prefixes instead of enumerating family members: the search walks the
// seed bits MSB -> LSB, and at each step every item contributes the
// exact sum of its costs over the completions consistent with the
// prefix. Because each item's cost is a junta — it reads the member
// only through the member's hash values on a fixed point set — an item
// can answer those conditional sums from its own junta's completions:
//
//   * items whose cost is provably seed-CONSTANT (empty junta: a
//     last-bin node, an inactive node, a degree bound no junta can
//     reach) answer every query in O(1) with zero formula work;
//   * active items evaluate each member's junta exactly once across
//     the whole walk (the base class materializes the item's
//     completion sums lazily, on first touch) and answer every later
//     query as an O(1) cumulative-sum lookup;
//   * oracles with more structure (per-item seed-bit juntas, paper
//     pessimistic estimators) may override eval_prefix outright with a
//     genuinely sublinear answer — the contract only requires the sums
//     to be exact.
//
// On the sharded backend this is the honest MPC shape of the Lemma-10
// walk: each step converge-casts ONE branch sum (two on the first
// step) instead of a members-wide totals vector, so the cast volume is
// O(bits) words per walk instead of O(members).
//
// Exactness contract: eval_prefix(prefix, bits_fixed, item, subgrid)
// must return exactly sum_{s in subgrid} cost(s, item). For
// integer-valued oracles (every production oracle) those sums are
// exact in doubles, which is what makes the oracle-backed walk select
// bit-identical seeds to the same walk run over enumerated or analytic
// totals, on both backends — the `prefix` differential tests enforce
// it at machine counts 1-17.
//
// Accounting: junta completions are counted in the same unit as
// AnalyticStats::formula_evals (one closed-form member evaluation for
// one item), so SearchStats::prefix.junta_evals is directly comparable
// with the analytic member loop — bench_e5_partition gates on the
// prefix plane doing strictly less formula work than the analytic
// plane for the same Lemma-23 search.

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "pdc/engine/analytic.hpp"

namespace pdc::engine {

/// The contiguous member range consistent with a seed-bit prefix: with
/// `bits_fixed` of `bits` total bits fixed to `prefix`, the completions
/// are members [prefix << (bits - bits_fixed), ... + 2^(bits -
/// bits_fixed)). The engine derives it once per query and hands it to
/// eval_prefix so implementations need no shift arithmetic of their own.
struct MemberSubgrid {
  std::uint64_t first = 0;
  std::uint64_t count = 0;
};

/// An AnalyticOracle that can additionally answer exact cost sums over
/// member subgrids conditioned on seed-bit prefixes — the capability
/// the prefix-walk route dispatches on.
class PrefixOracle : public AnalyticOracle {
 public:
  PrefixOracle* as_prefix() override { return this; }

  /// Width of the searchable bit-seed space (members = 2^bit_count()).
  /// Walks may fix at most this many bits.
  virtual int bit_count() const = 0;

  /// The item's junta cardinality: how many hash points its cost reads
  /// (0 for items whose cost is seed-independent). Accounting and the
  /// property bound only — the walk never dereferences junta points
  /// itself.
  virtual std::size_t junta_size(std::size_t item) const = 0;

  /// Seed-independent classification, consulted once per walk after
  /// begin_search invariants are ready: items whose cost is the same
  /// for every member return that constant and answer every
  /// eval_prefix query as value * subgrid.count with zero junta
  /// evaluations. Return nullopt for genuinely member-dependent items.
  virtual std::optional<double> constant_cost(std::size_t item) const {
    (void)item;
    return std::nullopt;
  }

  /// Walk lifecycle. begin_walk prepares begin_search invariants, runs
  /// the constant classification and allocates the per-item lazy
  /// caches; end_walk releases everything (end_search included). Both
  /// run host-side on the sharded backend — the classification and the
  /// caches are per-item, hence shard-local. The default caches cost
  /// O(active items x members) doubles (a members-wide array per
  /// active item, unlike the totals routes' single vector); begin_walk
  /// refuses footprints past ~2 GiB — larger walks need an eval_prefix
  /// override or SearchOptions::use_prefix = false.
  virtual void begin_walk(int bits);
  virtual void end_walk();

  /// Exact sum of the item's costs over the members consistent with
  /// `prefix` (`bits_fixed` high bits of the walk's bit space), i.e.
  /// over `subgrid`. Callable concurrently for distinct items; the
  /// engine queries each item from one thread at a time, so the
  /// default implementation's lazy per-item cache is race-free. The
  /// default answers from the constant classification or from the
  /// item's completion sums (built on first touch via eval_analytic —
  /// one junta evaluation per member, counted in junta_evals());
  /// override it when the oracle can answer sublinearly.
  virtual double eval_prefix(std::uint64_t prefix, int bits_fixed,
                             std::size_t item,
                             const MemberSubgrid& subgrid) const;

  // ---- Walk accounting (reset by begin_walk). ----

  /// Junta completions evaluated since begin_walk (formula_evals unit).
  std::uint64_t junta_evals() const {
    return junta_evals_.load(std::memory_order_relaxed);
  }
  /// Items the classification proved seed-constant for this walk.
  std::uint64_t constant_items() const { return constant_items_; }
  /// Largest junta_size over all items (cached by begin_walk).
  std::size_t max_junta() const { return max_junta_; }
  /// Members in the current walk's bit space (2^bits).
  std::uint64_t walk_members() const { return walk_members_; }

 private:
  int walk_bits_ = 0;
  std::uint64_t walk_members_ = 0;
  std::uint64_t constant_items_ = 0;
  std::size_t max_junta_ = 0;
  std::vector<std::uint8_t> is_const_;
  std::vector<double> const_cost_;
  // Per-item completion cache: cum_[i][j] = sum of cost(s, i) for
  // s < j, built lazily on the item's first non-constant query.
  mutable std::vector<std::vector<double>> cum_;
  mutable std::atomic<std::uint64_t> junta_evals_{0};
};

}  // namespace pdc::engine
