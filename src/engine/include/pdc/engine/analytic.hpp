#pragma once
// The analytic oracle plane: closed-form conditional expectations for
// decomposable objectives.
//
// The paper's MPC derandomization never *enumerates* seed costs: the
// objectives are built from pairwise-independent hash families, so each
// node's cost under a candidate member is a closed-form function of a
// small, seed-independent invariant (its neighbor residues, its palette,
// its availability list), and each machine evaluates those formulas
// over its local shard — no simulation state is ever built per
// candidate, and no pick tables need to be exchanged between machines.
// (See also Harris's junta-fooling framework, arXiv:1610.03383, and
// Ghaffari–Grunau's work-efficient derandomization, arXiv:2504.15700:
// analytic per-item expectations are exactly what removes the
// simulation overhead from the aggregation story.)
//
// An AnalyticOracle is a CostOracle that exposes that structure:
//
//   begin_search(num_seeds)  — one-time, seed-independent invariant
//                              preparation (availability lists, bin
//                              degrees, filtered adjacency). Runs once
//                              per search, NOT once per sweep — the
//                              enumerating path re-derives comparable
//                              state inside every begin_sweep.
//   eval_analytic(first, count, item, sink)
//                            — add cost(first + j, item) into sink[j]
//                              for j in [0, count), by pure arithmetic
//                              over the begin_search invariants. No
//                              per-call mutable state: the engine calls
//                              it concurrently for distinct items, and
//                              the sharded backend calls it per shard.
//
// Exactness contract: eval_analytic must equal the oracle's enumerating
// cost()/eval_batch() bit for bit for every (member, item). That is
// what makes the analytic route's Selections identical to the
// enumerating route's (and, through the fixed-point converge-cast, to
// the sharded backend's at every machine count) — the engine's
// differential tests in tests/test_analytic.cpp enforce it. Where an
// objective's exact cost has no closed form, expose a pessimistic
// estimator as a *separate* oracle instead of bending this contract;
// the selection guarantee (cost <= mean) then holds for the estimator.
//
// The engine consults the capability automatically: SeedSearch and
// sharded::ShardedSeedSearch route every totals block through
// eval_analytic when the oracle advertises it (CostOracle::as_analytic)
// and SearchOptions::use_analytic allows, falling back to enumerating
// sweeps otherwise. Analytic blocks are accounted in
// SearchStats::analytic and never increment SearchStats::sweeps — "zero
// enumeration sweeps" is observable, and bench_e5_partition gates on it.

#include <cmath>
#include <cstdint>

#include "pdc/engine/seed_search.hpp"

namespace pdc::engine {

class AnalyticOracle : public CostOracle {
 public:
  AnalyticOracle* as_analytic() override { return this; }

  /// One-time seed-independent preparation for a search over members
  /// [0, num_seeds). Called by the engine before the first
  /// eval_analytic (host-side on the sharded backend: it models the
  /// shard-local invariant pass every machine performs once).
  virtual void begin_search(std::uint64_t num_seeds) { (void)num_seeds; }

  /// Release begin_search state. Paired with begin_search by the engine.
  virtual void end_search() {}

  /// Closed-form evaluation: add cost(first + j, item) into sink[j] for
  /// j in [0, count). Pure arithmetic over begin_search invariants;
  /// callable concurrently for distinct items.
  virtual void eval_analytic(std::uint64_t first, std::size_t count,
                             std::size_t item, double* sink) const = 0;

  /// Batched member-major evaluation: semantically identical to
  /// eval_analytic (add cost(member_first + j, item) into sink[j] for
  /// j in [0, member_count)), but the engine's preferred entry point
  /// for whole member subgrids — implementations vectorize the member
  /// loop in SIMD lanes over structure-of-arrays invariants
  /// (pdc/util/simd.hpp, pdc/util/aligned.hpp). The default forwards
  /// to eval_analytic, so existing oracles keep working unchanged.
  ///
  /// Exactness contract, same as eval_analytic's: eval_members must
  /// equal eval_analytic bit for bit for every (member, item) — the
  /// vectorized kernels re-derive the identical arithmetic, they never
  /// reassociate floating-point sums or approximate the hash. That is
  /// what keeps Selections bit-identical when the engine routes blocks
  /// through this entry point on either backend
  /// (SearchOptions::use_batched_members forces the scalar path for
  /// differential tests; tests/test_simd_planes.cpp compares the two
  /// at member counts straddling the lane width).
  virtual void eval_members(std::uint64_t member_first,
                            std::size_t member_count, std::size_t item,
                            double* sink) const {
    eval_analytic(member_first, member_count, item, sink);
  }

  /// Enumerating fallback derived from the closed forms, so a purely
  /// analytic oracle satisfies the CostOracle contract without a
  /// second implementation (production oracles typically override this
  /// with their genuine enumerating sweep for the differential tests).
  /// Like eval_analytic this reads begin_search invariants; the engine
  /// prepares them before driving an analytic oracle down either path
  /// (including evaluate_seed), so overriders may rely on them too.
  void eval_batch(std::span<const std::uint64_t> seeds, std::size_t item,
                  double* sink) const override {
    for (std::size_t k = 0; k < seeds.size(); ++k)
      eval_analytic(seeds[k], 1, item, sink + k);
  }
};

}  // namespace pdc::engine
