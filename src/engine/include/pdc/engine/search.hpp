#pragma once
// The engine front door: one entry point for every derandomization
// search in the library.
//
//   Selection sel = pdc::engine::search(oracle, SearchRequest::
//       exhaustive(family.size(), policy));
//
// A SearchRequest names the route (exhaustive / exhaustive-bits /
// conditional-expectation / prefix-walk) and the seed space; an
// ExecutionPolicy bundles everything about *how* the search executes —
// backend (shared-memory, sharded, or kAuto), the cluster, the engine
// SearchOptions, and an optional stats sink the Selection's stats are
// absorbed into. Capability detection is the engine's job, not the call
// site's: every route climbs the oracle tier ladder
//
//   CostOracle (cost / eval_batch enumeration)
//     < AnalyticOracle (closed forms, zero enumeration sweeps)
//       < PrefixOracle (junta-fooling prefix walks)
//
// automatically, and SearchStats::route records which plane served the
// totals. Call sites hold a single ExecutionPolicy instead of loose
// backend/cluster/options fields (the transitional aliases and
// engine::sharded::search_with_backend were removed after their
// one-PR deprecation window).
//
// kAuto backend resolution (the E7-style cutover): the sharded backend
// pays one machine-step pass plus converge-cast rounds per block, so
// it only wins once every machine's shard carries enough per-member
// formula work to amortize that overhead. resolve_backend picks
// kSharded exactly when a cluster is present and the oracle's item
// count reaches auto_items_per_machine per machine — divided by the
// cluster's substrate concurrency, because a thread-pool substrate
// (mpc::SubstrateKind::kThreadPool) splits the per-round step wall
// across its workers and moves the crossover proportionally earlier.
// The decision is recorded in SearchStats::backend / backend_auto, and
// bench_e7 prints the measured crossover table (per substrate) the
// default is calibrated against.

#include <cstdint>

#include "pdc/engine/seed_search.hpp"

namespace pdc::mpc {
class Cluster;
}

namespace pdc::engine {

/// Which search route a SearchRequest runs. All four guarantee
/// cost <= mean_cost over the searched space.
enum class SearchRoute {
  kExhaustive,              // argmin over seeds [0, num_seeds)
  kExhaustiveBits,          // argmin over the 2^seed_bits bit space
  kConditionalExpectation,  // LSB-first bitwise walk over cached totals
  kPrefixWalk,              // MSB-first junta-fooling prefix walk
};

/// Stable kebab-case route names for trace tags and metric labels
/// ("exhaustive" / "exhaustive-bits" / "cond-exp" / "prefix-walk").
const char* to_string(SearchRoute route);

/// Everything about how a search executes, bundled so call sites carry
/// one field instead of backend + cluster + options triples.
struct ExecutionPolicy {
  SearchBackend backend = SearchBackend::kSharedMemory;
  /// Required for kSharded; consulted by kAuto (null => shared memory).
  /// Non-owning.
  mpc::Cluster* cluster = nullptr;
  /// Block sizing, early exit, analytic/prefix plane routing.
  SearchOptions options;
  /// Optional: the front door absorbs every Selection's stats here, so
  /// call sites stop hand-threading `report.absorb(sel.stats)`.
  SearchStats* stats_sink = nullptr;
  /// kAuto cutover: choose kSharded once item_count >=
  /// (auto_items_per_machine / substrate_concurrency) * machines —
  /// each shard must amortize the per-round substrate overhead, and a
  /// parallel substrate amortizes it substrate_concurrency times
  /// faster. Tests and benches tune it; the default is calibrated
  /// against bench_e7's crossover table (sequential substrate; see
  /// bench/snapshots/BENCH_E7.json for the measured value).
  std::size_t auto_items_per_machine = 4096;
};

/// A route plus its seed space plus the policy — the front door's whole
/// input. Use the named constructors; `num_seeds` is only read by
/// kExhaustive and `seed_bits` only by the bit routes.
struct SearchRequest {
  SearchRoute route = SearchRoute::kExhaustive;
  std::uint64_t num_seeds = 0;
  int seed_bits = 0;
  ExecutionPolicy policy;

  static SearchRequest exhaustive(std::uint64_t num_seeds,
                                  ExecutionPolicy policy = {}) {
    SearchRequest r;
    r.route = SearchRoute::kExhaustive;
    r.num_seeds = num_seeds;
    r.policy = policy;
    return r;
  }
  static SearchRequest exhaustive_bits(int seed_bits,
                                       ExecutionPolicy policy = {}) {
    SearchRequest r;
    r.route = SearchRoute::kExhaustiveBits;
    r.seed_bits = seed_bits;
    r.policy = policy;
    return r;
  }
  static SearchRequest conditional_expectation(int seed_bits,
                                               ExecutionPolicy policy = {}) {
    SearchRequest r;
    r.route = SearchRoute::kConditionalExpectation;
    r.seed_bits = seed_bits;
    r.policy = policy;
    return r;
  }
  static SearchRequest prefix_walk(int seed_bits,
                                   ExecutionPolicy policy = {}) {
    SearchRequest r;
    r.route = SearchRoute::kPrefixWalk;
    r.seed_bits = seed_bits;
    r.policy = policy;
    return r;
  }
};

/// Resolves the policy's backend against the oracle's item count:
/// kSharedMemory / kSharded pass through (kSharded checks the cluster);
/// kAuto applies the cutover documented on ExecutionPolicy.
SearchBackend resolve_backend(const ExecutionPolicy& policy,
                              std::size_t item_count);

/// The front door. Resolves the backend, constructs the right engine,
/// runs the route, tags SearchStats::backend (and backend_auto when
/// kAuto decided), and absorbs the stats into policy.stats_sink when
/// set. The oracle must outlive the call.
Selection search(CostOracle& oracle, const SearchRequest& request);

}  // namespace pdc::engine
