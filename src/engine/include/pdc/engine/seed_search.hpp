#pragma once
// Decomposable seed-search engine.
//
// Every derandomization step in this library — Lemma 10 seed selection,
// Lemma 23 hash-family selection, the derandomized Luby rounds, the
// low-degree hash trials — reduces to "pick a seed whose aggregate cost
// beats the seed-space mean". In the paper's MPC model that aggregate is
// always a *sum of per-node (per-machine) contributions*, aggregated in
// parallel: each machine scores the candidate seeds against its local
// shard, and the totals are combined by a converge-cast. The engine
// makes that structure explicit. Instead of an opaque
// `cost(seed) -> double`, callers implement a CostOracle that exposes
//
//     item_count()               — how many independent contributors
//                                  (nodes / machines) the objective has;
//     cost(seed, item)           — item's contribution under `seed`;
//     eval_batch(seeds, item, …) — optional: score *many* seeds against
//                                  one item in a single visit (amortizes
//                                  the per-item setup: neighbor scans,
//                                  palette walks, availability lists);
//     begin_sweep(seeds)         — optional: per-block precompute (e.g.
//                                  simulate a procedure run per seed).
//
// The engine then drives node-major sweeps: one parallel pass over the
// items scores a whole block of candidate seeds (cache-friendly,
// OpenMP over items instead of over seeds), which is both faithful to
// the paper's aggregation story and the main hot-path win — the legacy
// scalar interface re-walked the entire graph once per candidate seed.
//
// See src/engine/README.md for the oracle contract and guidance on when
// to implement eval_batch.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace pdc::engine {

/// Work accounting for one (or several, via absorb) seed searches.
struct SearchStats {
  /// Full-objective evaluations: one unit = all items scored for one
  /// seed. Matches the legacy `SeedChoice::evaluations` semantics.
  std::uint64_t evaluations = 0;
  /// Passes over the item set (the MPC "every machine scans its shard
  /// once" unit). The legacy scalar path paid one sweep per evaluation;
  /// batched sweeps score up to SearchOptions::max_batch seeds per pass.
  std::uint64_t sweeps = 0;
  /// Wall time spent inside the engine, milliseconds.
  double wall_ms = 0.0;

  void absorb(const SearchStats& o) {
    evaluations += o.evaluations;
    sweeps += o.sweeps;
    wall_ms += o.wall_ms;
  }
};

/// Result of a search. Both search routes guarantee cost <= mean_cost
/// (the conditional-expectations / averaging argument).
struct Selection {
  std::uint64_t seed = 0;
  double cost = 0.0;       // objective total at the chosen seed
  double mean_cost = 0.0;  // expectation over the searched seed space
  SearchStats stats;
};

/// A decomposable cost objective: total(seed) = sum_item cost(seed, item).
/// Implementations must be deterministic in (seed, item); `cost` and
/// `eval_batch` may be called concurrently for distinct items.
///
/// `cost` and `eval_batch` default to each other, so an oracle
/// overrides exactly one: `cost` when per-(seed, item) evaluation is
/// natural, `eval_batch` when one visit to the item can amortize setup
/// across a seed block (neighbor scans, palette walks, availability
/// lists). Overriding neither is a contract violation (the defaults
/// would recurse).
class CostOracle {
 public:
  virtual ~CostOracle() = default;

  /// Number of independent contributors (nodes, machines, …). An
  /// item_count of 1 marks an opaque objective: the engine then
  /// parallelizes over seeds (legacy behavior) instead of items.
  virtual std::size_t item_count() const = 0;

  /// Item's contribution to the objective under `seed`. Only called
  /// between begin_sweep/end_sweep for a block containing `seed`.
  virtual double cost(std::uint64_t seed, std::size_t item) const {
    double sink = 0.0;
    const std::uint64_t seeds[1] = {seed};
    eval_batch(std::span<const std::uint64_t>(seeds, 1), item, &sink);
    return sink;
  }

  /// Hook called once before each block of seeds is swept (and before
  /// any cost/eval_batch call for those seeds). Oracles whose per-item
  /// costs require global per-seed state (e.g. a simulated procedure
  /// run) compute it here, for the whole block at once.
  virtual void begin_sweep(std::span<const std::uint64_t> seeds) {
    (void)seeds;
  }

  /// Hook called after the block's sweep completes; release per-seed
  /// state acquired in begin_sweep.
  virtual void end_sweep() {}

  /// Add item's contribution for every seeds[k] into sink[k]. The
  /// engine always passes the exact span it gave begin_sweep, so
  /// block-stateful oracles (those caching per-seed state in
  /// begin_sweep) may index that state by k. Such oracles must be
  /// driven through the engine; the default cost() wrapper passes a
  /// singleton span and is only meaningful for oracles whose
  /// eval_batch reads the seed *values*.
  virtual void eval_batch(std::span<const std::uint64_t> seeds,
                          std::size_t item, double* sink) const {
    for (std::size_t k = 0; k < seeds.size(); ++k)
      sink[k] += cost(seeds[k], item);
  }
};

/// Adapter for the legacy opaque shape `cost(seed) -> double` (whole
/// objective in one call). item_count() == 1, so the engine evaluates
/// distinct seeds concurrently — `fn` must tolerate that, exactly as
/// the old pdc::prg::SeedCostFn contract required.
class ScalarOracle final : public CostOracle {
 public:
  explicit ScalarOracle(std::function<double(std::uint64_t)> fn)
      : fn_(std::move(fn)) {}
  std::size_t item_count() const override { return 1; }
  double cost(std::uint64_t seed, std::size_t /*item*/) const override {
    return fn_(seed);
  }

 private:
  std::function<double(std::uint64_t)> fn_;
};

struct SearchOptions {
  /// Seeds scored per item sweep. Bounds the oracle's per-block state
  /// (begin_sweep caches one entry per seed in the block) and each
  /// thread's accumulator. Must be >= 1.
  std::size_t max_batch = 128;
  /// Conditional expectations: once the chosen branch is flat (every
  /// completion has the same total — in particular an all-zero branch
  /// for non-negative costs), stop fixing bits and take its first
  /// completion; the guarantee is unaffected.
  bool early_exit = true;
};

/// Drives searches over an enumerable seed space against one oracle.
/// The oracle reference must outlive the SeedSearch.
class SeedSearch {
 public:
  explicit SeedSearch(CostOracle& oracle, SearchOptions opt = {});

  /// Index search: argmin of the total over seeds 0..num_seeds-1 (hash
  /// families index their members this way). Guarantees
  /// cost <= mean_cost.
  Selection exhaustive(std::uint64_t num_seeds);

  /// Exhaustive search over the 2^seed_bits bit-seed space.
  Selection exhaustive_bits(int seed_bits);

  /// Method of conditional expectations over 2^seed_bits seeds: fix
  /// bits b_0..b_{d-1} in order, keeping the branch with the smaller
  /// conditional expectation. Branch means share prefixes: the bit-0
  /// means already require every completion's total, so the engine
  /// computes all totals in one blocked sweep pass and derives every
  /// later branch mean from the same totals — no re-evaluation, unlike
  /// the legacy route's ~2*2^d independent full simulations. Guarantees
  /// cost <= mean_cost (mean over the full space).
  Selection conditional_expectation(int seed_bits);

 private:
  /// Blocked batched sweep filling totals[s] = sum_item cost(s, item)
  /// for s in [0, num_seeds); accounts sweeps/evaluations into `stats`.
  std::vector<double> compute_totals(std::uint64_t num_seeds,
                                     SearchStats& stats);

  CostOracle* oracle_;
  SearchOptions opt_;
};

/// Evaluates one seed's total through the oracle (one sweep). Used by
/// callers that need a cost outside a search (e.g. the first-seed
/// ablation strategy).
double evaluate_seed(CostOracle& oracle, std::uint64_t seed,
                     SearchStats* stats = nullptr);

}  // namespace pdc::engine
