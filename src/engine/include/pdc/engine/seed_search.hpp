#pragma once
// Decomposable seed-search engine.
//
// Every derandomization step in this library — Lemma 10 seed selection,
// Lemma 23 hash-family selection, the derandomized Luby rounds, the
// low-degree hash trials — reduces to "pick a seed whose aggregate cost
// beats the seed-space mean". In the paper's MPC model that aggregate is
// always a *sum of per-node (per-machine) contributions*, aggregated in
// parallel: each machine scores the candidate seeds against its local
// shard, and the totals are combined by a converge-cast. The engine
// makes that structure explicit. Instead of an opaque
// `cost(seed) -> double`, callers implement a CostOracle that exposes
//
//     item_count()               — how many independent contributors
//                                  (nodes / machines) the objective has;
//     cost(seed, item)           — item's contribution under `seed`;
//     eval_batch(seeds, item, …) — optional: score *many* seeds against
//                                  one item in a single visit (amortizes
//                                  the per-item setup: neighbor scans,
//                                  palette walks, availability lists);
//     begin_sweep(seeds)         — optional: per-block precompute (e.g.
//                                  simulate a procedure run per seed).
//
// The engine then drives node-major sweeps: one parallel pass over the
// items scores a whole block of candidate seeds (cache-friendly,
// OpenMP over items instead of over seeds), which is both faithful to
// the paper's aggregation story and the main hot-path win — the legacy
// scalar interface re-walked the entire graph once per candidate seed.
//
// See src/engine/README.md for the oracle contract and guidance on when
// to implement eval_batch.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace pdc::engine {

class AnalyticOracle;
class PrefixOracle;
struct MemberSubgrid;

/// Which substrate executes a seed search. Call sites that run on the
/// MPC cluster accept this choice: kSharedMemory keeps the in-process
/// engine (pdc::engine::SeedSearch); kSharded routes every sweep through
/// mpc::Cluster rounds (pdc::engine::sharded::ShardedSeedSearch) —
/// machine-local shard scoring plus a converge-cast of the per-seed
/// partial totals. Both backends return bit-identical Selections for
/// oracles whose costs sit on the sharded backend's fixed-point grid
/// (all production oracles are integer-valued). kAuto defers the choice
/// to the engine front door (pdc/engine/search.hpp), which sizes the
/// per-machine shard against the cluster (the E7-style cutover) and
/// records its decision in SearchStats::backend / backend_auto.
enum class SearchBackend {
  kSharedMemory,
  kSharded,
  kAuto,
};

/// Which evaluation plane served a search's totals — the capability
/// ladder's observable outcome (cost/batch enumeration < analytic
/// closed forms < prefix-conditioned junta walk). kMixed marks stats
/// absorbed from searches served by different planes.
enum class PlaneTag : std::uint8_t {
  kNone = 0,
  kEnumerating,
  kAnalytic,
  kPrefix,
  kMixed,
};

/// Which substrate a search actually ran on (after kAuto resolution).
enum class BackendTag : std::uint8_t {
  kNone = 0,
  kSharedMemory,
  kSharded,
  kMixed,
};

namespace detail {
template <typename Tag>
Tag merge_tag(Tag a, Tag b) {
  if (a == Tag::kNone) return b;
  if (b == Tag::kNone || a == b) return a;
  return Tag::kMixed;
}
}  // namespace detail

/// Stable lowercase names for reports, trace tags, and metric labels
/// ("enumerating" / "analytic" / "prefix" / "mixed"; "" for kNone).
const char* to_string(PlaneTag plane);
/// ("shared-memory" / "sharded" / "mixed"; "" for kNone).
const char* to_string(BackendTag backend);

/// Accounting for searches executed on the sharded (MPC) backend; all
/// zero when a search ran in shared memory.
struct ShardedStats {
  /// Cluster rounds consumed by the sweeps (scoring + converge-cast).
  std::uint64_t rounds = 0;
  /// Payload words converge-cast up the aggregation tree (each non-root
  /// machine sends its block-wide partial vector exactly once per sweep).
  std::uint64_t words = 0;
  /// Items resident on the fullest machine under the shard plan.
  std::uint64_t max_machine_load = 0;

  void absorb(const ShardedStats& o) {
    rounds += o.rounds;
    words += o.words;
    max_machine_load = std::max(max_machine_load, o.max_machine_load);
  }
};

/// Accounting for searches (or blocks of a search) served by the
/// analytic oracle plane — closed-form evaluation instead of
/// enumerating sweeps. All zero when every block enumerated.
struct AnalyticStats {
  /// Totals passes (one per search route invocation) that ran fully
  /// analytic.
  std::uint64_t searches = 0;
  /// Analytic block passes (the analytic counterpart of `sweeps`).
  std::uint64_t blocks = 0;
  /// (item, member) closed-form evaluations performed.
  std::uint64_t formula_evals = 0;

  void absorb(const AnalyticStats& o) {
    searches += o.searches;
    blocks += o.blocks;
    formula_evals += o.formula_evals;
  }
};

/// Accounting for searches served by the prefix plane — Harris-style
/// junta-fooling walks over seed-bit prefixes (pdc/engine/prefix.hpp).
/// All zero when no walk ran oracle-backed.
struct PrefixStats {
  /// Oracle-backed prefix walks completed.
  std::uint64_t walks = 0;
  /// Bits fixed across those walks (each step = one branch comparison).
  std::uint64_t bit_steps = 0;
  /// Junta completions evaluated: one unit = one closed-form member
  /// evaluation for one item, the same unit as
  /// AnalyticStats::formula_evals — so the two planes' formula work is
  /// directly comparable. Items classified seed-constant never
  /// contribute, so the default walk pays exactly
  /// (items - constant items) * members — strictly below the analytic
  /// member loop whenever any item is constant. The aspirational
  /// items * bits * max-junta ceiling (tight only for sublinear
  /// eval_prefix overrides) is property-tested on instances whose
  /// juntas are at least members/bits wide, where the default
  /// implementation meets it too.
  std::uint64_t junta_evals = 0;

  void absorb(const PrefixStats& o) {
    walks += o.walks;
    bit_steps += o.bit_steps;
    junta_evals += o.junta_evals;
  }
};

/// Work accounting for one (or several, via absorb) seed searches.
struct SearchStats {
  /// Full-objective evaluations: one unit = all items scored for one
  /// seed. Matches the retired prg shims' `evaluations` semantics.
  /// Counted identically on the enumerating and analytic paths.
  std::uint64_t evaluations = 0;
  /// *Enumerating* passes over the item set (the MPC "every machine
  /// simulates the block against its shard" unit). The legacy scalar
  /// path paid one sweep per evaluation; batched sweeps score up to
  /// SearchOptions::max_batch seeds per pass; the analytic plane pays
  /// none at all (its passes are counted in `analytic.blocks`).
  std::uint64_t sweeps = 0;
  /// Largest sweep block actually used (seeds scored per item pass).
  /// Records the adaptive choice when SearchOptions::max_batch == 0.
  std::uint64_t batch = 0;
  /// Wall time spent inside the engine, milliseconds.
  double wall_ms = 0.0;
  /// MPC-substrate accounting (sharded backend only).
  ShardedStats sharded;
  /// Analytic-plane accounting (closed-form oracles only).
  AnalyticStats analytic;
  /// Prefix-plane accounting (junta-fooling walks only).
  PrefixStats prefix;
  /// Which plane served the totals (set by the engine; kMixed after
  /// absorbing searches served differently). Lets reports and benches
  /// attribute every search to its rung of the capability ladder.
  PlaneTag route = PlaneTag::kNone;
  /// Which substrate the search ran on (after kAuto resolution).
  BackendTag backend = BackendTag::kNone;
  /// True when a kAuto policy made the backend choice (the front door
  /// records its E7-style cutover decision here).
  bool backend_auto = false;

  void absorb(const SearchStats& o) {
    evaluations += o.evaluations;
    sweeps += o.sweeps;
    batch = std::max(batch, o.batch);
    wall_ms += o.wall_ms;
    sharded.absorb(o.sharded);
    analytic.absorb(o.analytic);
    prefix.absorb(o.prefix);
    route = detail::merge_tag(route, o.route);
    backend = detail::merge_tag(backend, o.backend);
    backend_auto = backend_auto || o.backend_auto;
  }
};

/// Result of a search. Both search routes guarantee cost <= mean_cost
/// (the conditional-expectations / averaging argument).
struct Selection {
  std::uint64_t seed = 0;
  double cost = 0.0;       // objective total at the chosen seed
  double mean_cost = 0.0;  // expectation over the searched seed space
  SearchStats stats;
};

/// A decomposable cost objective: total(seed) = sum_item cost(seed, item).
/// Implementations must be deterministic in (seed, item); `cost` and
/// `eval_batch` may be called concurrently for distinct items.
///
/// `cost` and `eval_batch` default to each other, so an oracle
/// overrides exactly one: `cost` when per-(seed, item) evaluation is
/// natural, `eval_batch` when one visit to the item can amortize setup
/// across a seed block (neighbor scans, palette walks, availability
/// lists). Overriding neither is a contract violation (the defaults
/// would recurse).
class CostOracle {
 public:
  virtual ~CostOracle() = default;

  /// Number of independent contributors (nodes, machines, …). An
  /// item_count of 1 marks an opaque objective: the engine then
  /// parallelizes over seeds (legacy behavior) instead of items.
  virtual std::size_t item_count() const = 0;

  /// Analytic capability probe: non-null when the oracle exposes
  /// closed-form per-item evaluation (see pdc/engine/analytic.hpp —
  /// AnalyticOracle overrides this to return itself). Every search
  /// route consults it before falling back to enumerating sweeps.
  virtual AnalyticOracle* as_analytic() { return nullptr; }

  /// Prefix capability probe — the top rung of the ladder: non-null
  /// when the oracle can answer exact subgrid sums conditioned on
  /// seed-bit prefixes (see pdc/engine/prefix.hpp — PrefixOracle
  /// overrides this to return itself). Consulted by the prefix-walk
  /// route before falling back to a totals pass.
  virtual PrefixOracle* as_prefix() { return nullptr; }

  /// Item's contribution to the objective under `seed`. Only called
  /// between begin_sweep/end_sweep for a block containing `seed`.
  virtual double cost(std::uint64_t seed, std::size_t item) const {
    double sink = 0.0;
    const std::uint64_t seeds[1] = {seed};
    eval_batch(std::span<const std::uint64_t>(seeds, 1), item, &sink);
    return sink;
  }

  /// Hook called once before each block of seeds is swept (and before
  /// any cost/eval_batch call for those seeds). Oracles whose per-item
  /// costs require global per-seed state (e.g. a simulated procedure
  /// run) compute it here, for the whole block at once.
  virtual void begin_sweep(std::span<const std::uint64_t> seeds) {
    (void)seeds;
  }

  /// Hook called after the block's sweep completes; release per-seed
  /// state acquired in begin_sweep.
  virtual void end_sweep() {}

  /// Add item's contribution for every seeds[k] into sink[k]. The
  /// engine always passes the exact span it gave begin_sweep, so
  /// block-stateful oracles (those caching per-seed state in
  /// begin_sweep) may index that state by k. Such oracles must be
  /// driven through the engine; the default cost() wrapper passes a
  /// singleton span and is only meaningful for oracles whose
  /// eval_batch reads the seed *values*.
  virtual void eval_batch(std::span<const std::uint64_t> seeds,
                          std::size_t item, double* sink) const {
    for (std::size_t k = 0; k < seeds.size(); ++k)
      sink[k] += cost(seeds[k], item);
  }
};

/// Adapter for the legacy opaque shape `cost(seed) -> double` (whole
/// objective in one call). item_count() == 1, so the engine evaluates
/// distinct seeds concurrently — `fn` must tolerate that, exactly as
/// the retired pdc::prg::cond_exp callback contract required.
class ScalarOracle final : public CostOracle {
 public:
  explicit ScalarOracle(std::function<double(std::uint64_t)> fn)
      : fn_(std::move(fn)) {}
  std::size_t item_count() const override { return 1; }
  double cost(std::uint64_t seed, std::size_t /*item*/) const override {
    return fn_(seed);
  }

 private:
  std::function<double(std::uint64_t)> fn_;
};

struct SearchOptions {
  /// Seeds scored per item sweep. Bounds the oracle's per-block state
  /// (begin_sweep caches one entry per seed in the block) and each
  /// thread's accumulator. 0 (the default) derives the block size from
  /// the oracle's item_count() and a cache-footprint estimate — see
  /// resolve_max_batch(); any value >= 1 is used verbatim by the
  /// shared-memory engine. (The sharded backend additionally caps any
  /// resolved value at half the cluster's local space, a physical
  /// limit: a fold-round machine holds two block-wide partials.
  /// SearchStats::batch always reports the width actually used.)
  std::size_t max_batch = 0;
  /// Conditional expectations: once the chosen branch is flat (every
  /// completion has the same total — in particular an all-zero branch
  /// for non-negative costs), stop fixing bits and take its first
  /// completion; the guarantee is unaffected.
  bool early_exit = true;
  /// Consult the oracle's analytic plane (closed-form evaluation, zero
  /// enumeration sweeps) when it advertises one. false forces the
  /// enumerating sweeps — differential tests and ablations only; the
  /// Selections are bit-identical either way (the AnalyticOracle
  /// exactness contract).
  bool use_analytic = true;
  /// Consult the oracle's prefix plane (junta-conditioned subgrid sums)
  /// on the prefix-walk route when it advertises one. false forces the
  /// walk to run over a full totals pass (analytic or enumerating per
  /// use_analytic) — the differential reference; the Selections are
  /// bit-identical either way for integer-valued oracles (the
  /// PrefixOracle exactness contract).
  bool use_prefix = true;
  /// Route analytic blocks through AnalyticOracle::eval_members (the
  /// SIMD member-major entry point) instead of the scalar
  /// eval_analytic. false forces the scalar path — differential tests
  /// and the bench_planes scalar leg only; the Selections are
  /// bit-identical either way (the eval_members exactness contract).
  bool use_batched_members = true;
};

/// Resolves SearchOptions::max_batch against an oracle's item count.
/// Explicit values pass through; the adaptive policy (max_batch == 0)
/// targets two costs that pull in opposite directions: each additional
/// seed in the block amortizes the per-item setup (neighbor scans,
/// palette walks) one more time — so more items justify wider blocks —
/// while the per-thread sink of `block` doubles plus the oracle's
/// per-seed block state must stay cache-resident. The policy sizes the
/// block at an eighth of the item count, rounded up to a power of two
/// and clamped between a floor of 128 and a 4096-double sink (32 KiB,
/// a typical L1d's worth).
std::size_t resolve_max_batch(const SearchOptions& opt,
                              std::size_t item_count);

/// Drives searches over an enumerable seed space against one oracle.
/// The oracle reference must outlive the SeedSearch.
class SeedSearch {
 public:
  explicit SeedSearch(CostOracle& oracle, SearchOptions opt = {});

  /// Index search: argmin of the total over seeds 0..num_seeds-1 (hash
  /// families index their members this way). Guarantees
  /// cost <= mean_cost.
  Selection exhaustive(std::uint64_t num_seeds);

  /// Exhaustive search over the 2^seed_bits bit-seed space.
  Selection exhaustive_bits(int seed_bits);

  /// Method of conditional expectations over 2^seed_bits seeds: fix
  /// bits b_0..b_{d-1} in order, keeping the branch with the smaller
  /// conditional expectation. Branch means share prefixes: the bit-0
  /// means already require every completion's total, so the engine
  /// computes all totals in one blocked sweep pass and derives every
  /// later branch mean from the same totals — no re-evaluation, unlike
  /// the legacy route's ~2*2^d independent full simulations. Guarantees
  /// cost <= mean_cost (mean over the full space).
  Selection conditional_expectation(int seed_bits);

  /// Harris-style junta-fooling walk over 2^seed_bits members: fix seed
  /// bits MSB -> LSB, at each step comparing the two children's exact
  /// branch sums and keeping the smaller. When the oracle advertises the
  /// prefix capability (CostOracle::as_prefix) and
  /// SearchOptions::use_prefix allows, each step's sums come from
  /// PrefixOracle::eval_prefix — seed-constant items answer in O(1) and
  /// active items pay only their own junta's completions; no totals
  /// vector is ever materialized and no enumeration sweep runs.
  /// Otherwise the walk runs over a full totals pass (analytic or
  /// enumerating), which is the differential reference. Guarantees
  /// cost <= mean_cost (conditional expectations, full depth).
  Selection prefix_walk(int seed_bits);

 private:
  /// Blocked batched sweep filling totals[s] = sum_item cost(s, item)
  /// for s in [0, num_seeds); accounts sweeps/evaluations into `stats`.
  std::vector<double> compute_totals(std::uint64_t num_seeds,
                                     SearchStats& stats);

  CostOracle* oracle_;
  SearchOptions opt_;
};

/// Evaluates one seed's total through the oracle (one sweep). Used by
/// callers that need a cost outside a search (e.g. the first-seed
/// ablation strategy).
double evaluate_seed(CostOracle& oracle, std::uint64_t seed,
                     SearchStats* stats = nullptr);

namespace detail {

/// Selection logic shared by every backend. Both take the full vector
/// of per-seed totals (totals[s] = sum_item cost(s, item)) and return
/// the Selection *without* stats/wall accounting — the caller fills
/// those in. Keeping these as the single implementation is what makes
/// the sharded backend's "bit-identical Selection" guarantee a matter
/// of totals equality rather than re-derivation.

/// Argmin + mean over the whole space (exhaustive / index search).
Selection select_exhaustive(const std::vector<double>& totals);

/// The bitwise conditional-expectations walk over 2^seed_bits totals.
Selection select_conditional_expectation(const std::vector<double>& totals,
                                         int seed_bits, bool early_exit);

/// The MSB->LSB prefix walk over 2^seed_bits totals — the selection
/// semantics of SeedSearch::prefix_walk, expressed against a full
/// totals vector. The oracle-backed walk must pick the same seed from
/// the same costs (exact for integer-valued oracles, where partial
/// sums and parent-minus-child derivations are exact in doubles); the
/// differential tests compare the two.
Selection select_prefix_walk(const std::vector<double>& totals,
                             int seed_bits);

/// One step's exact branch sums for the oracle-backed prefix walk:
/// fill out[0] with the sum of per-item costs over `sub0` (the child
/// extending the current prefix with bit 0, whose (prefix << 1) value
/// is `child0_prefix` at depth `bits_fixed`) and, when `need_both`,
/// out[1] over `sub1`. Backends differ in where the item pass runs
/// (in-process threads vs. a converge-cast per step).
using PrefixBranchFn = std::function<void(
    std::uint64_t child0_prefix, int bits_fixed, const MemberSubgrid& sub0,
    const MemberSubgrid& sub1, bool need_both, double* out)>;

/// The walk loop shared by both oracle-backed backends: step t asks for
/// the children's branch sums (both at t = 0; afterwards only child 0,
/// deriving child 1 as parent - child0 — exact for integer costs),
/// keeps the smaller branch (ties to 0), and finishes with all bits
/// fixed, so the final branch sum *is* the chosen seed's total. Fills
/// seed/cost/mean_cost only; the backend owns stats and wall time.
Selection run_prefix_walk_oracle(int seed_bits,
                                 const PrefixBranchFn& branch_sums);

/// The oracle-backed walk's stats discipline, shared by both backends:
/// one walk of seed_bits steps, the oracle's junta work, evaluations
/// counted as the full bit space (the walk certifies branch means over
/// all of it — the same informational unit the totals routes count),
/// and the kPrefix route tag.
void stamp_prefix_walk(SearchStats& stats, int seed_bits,
                       std::uint64_t junta_evals);

/// Route drivers over an arbitrary totals producer (the one thing the
/// backends differ in): compute totals, select, fill stats and wall
/// time. Both SeedSearch and sharded::ShardedSeedSearch delegate here,
/// so route semantics cannot drift between backends.
using TotalsFn =
    std::function<std::vector<double>(std::uint64_t, SearchStats&)>;
Selection run_exhaustive(const TotalsFn& totals, std::uint64_t num_seeds);
Selection run_conditional_expectation(const TotalsFn& totals, int seed_bits,
                                      bool early_exit);
/// Totals-reference driver for the prefix-walk route (the mirror of the
/// two above): compute the backend's totals, run select_prefix_walk,
/// fill stats and wall time. Both backends' use_prefix = false
/// fallbacks delegate here so the reference semantics cannot drift
/// between them.
Selection run_prefix_walk_totals(const TotalsFn& totals, int seed_bits);

/// Scores one block of consecutive seeds through the full enumerating
/// oracle contract (begin_sweep / item sweep / end_sweep) into
/// out[0..seeds.size()). Backends differ in where the item pass runs
/// (in-process threads vs. cluster rounds).
using EnumerateBlockFn =
    std::function<void(std::span<const std::uint64_t> seeds, double* out)>;
/// Fills out[0..count) with the totals of members [first, first+count)
/// from the oracle's closed forms (pdc/engine/analytic.hpp). Backends
/// differ only in sharding and fixed-point encoding.
using AnalyticBlockFn =
    std::function<void(std::uint64_t first, std::size_t count, double* out)>;

/// The blocked totals loop shared by every backend: splits the seed
/// space into max_batch-wide blocks and routes each block to the
/// analytic plane when `use_analytic` and the oracle advertises one
/// (CostOracle::as_analytic), falling back to the backend's enumerating
/// sweep otherwise. Owns begin_search/end_search pairing and the
/// accounting rules — evaluations/batch on both paths, sweeps on the
/// enumerating path only, AnalyticStats on the analytic path only — so
/// neither the routing decision nor the stats discipline can drift
/// between the shared-memory and sharded backends. (TotalsFn producers
/// are built on top of this; the selection code then sees identical
/// totals regardless of path, which is the bit-identity argument.)
std::vector<double> compute_totals_blocked(CostOracle& oracle,
                                           std::uint64_t num_seeds,
                                           std::size_t max_batch,
                                           bool use_analytic,
                                           SearchStats& stats,
                                           const EnumerateBlockFn& enumerate,
                                           const AnalyticBlockFn& analytic);

}  // namespace detail

}  // namespace pdc::engine
