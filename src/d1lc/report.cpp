#include "pdc/d1lc/report.hpp"

#include <ostream>

#include "pdc/util/table.hpp"

namespace pdc::d1lc {

void print_summary(std::ostream& os, const D1lcInstance& inst,
                   const SolveResult& result) {
  const Graph& g = inst.graph;
  os << "instance: n=" << g.num_nodes() << " m=" << g.num_edges()
     << " Delta=" << g.max_degree() << "\n"
     << "valid:    " << (result.valid ? "yes" : "NO") << "\n"
     << "colors:   " << count_colors_used(result.coloring) << "\n"
     << "rounds:   " << result.ledger.rounds() << "\n"
     << "space:    peak local " << result.ledger.peak_local_space()
     << " words, peak global " << result.ledger.peak_global_space()
     << " words\n"
     << "colored:  middle=" << result.colored_middle
     << " low-degree=" << result.colored_low_degree
     << " greedy-tail=" << result.colored_greedy << "\n"
     << "partition levels: " << result.partition_levels
     << ", middle passes: " << result.middle_passes_run << "\n"
     << "seed search: " << result.seed_search.evaluations
     << " evaluations in " << result.seed_search.sweeps
     << " sweeps (" << Table::num(result.seed_search.wall_ms, 1)
     << " ms)\n";
  if (!result.ledger.violations().empty()) {
    os << "SPACE-MODEL VIOLATIONS (" << result.ledger.violations().size()
       << "), first: " << result.ledger.violations().front() << "\n";
  }
}

void print_detail(std::ostream& os, const SolveResult& result) {
  Table phases("rounds by phase", {"phase", "rounds"});
  for (auto& [phase, rounds] : result.ledger.rounds_by_phase())
    phases.row({phase, std::to_string(rounds)});
  phases.print(os);

  for (std::size_t i = 0; i < result.middle_reports.size(); ++i) {
    const auto& mr = result.middle_reports[i];
    os << "middle pass " << i << ": n=" << mr.n << " sparse=" << mr.sparse
       << " uneven=" << mr.uneven << " dense=" << mr.dense << " ("
       << mr.num_cliques << " cliques), vstart=" << mr.vstart
       << ", outliers=" << mr.outliers << ", put-aside=" << mr.put_aside
       << "\n  colored=" << mr.colored << " deferred=" << mr.deferred
       << " uncolored=" << mr.uncolored
       << " acd-violations=" << mr.acd_violations.total() << "\n";
    Table steps("  procedures (pass " + std::to_string(i) + ")",
                {"procedure", "participants", "failures", "defer_frac",
                 "seed_evals", "sweeps"});
    for (const auto& s : mr.steps) {
      if (s.participants == 0) continue;
      steps.row({s.procedure, std::to_string(s.participants),
                 std::to_string(s.ssp_failures),
                 Table::num(s.defer_fraction, 4),
                 std::to_string(s.seed_evaluations),
                 std::to_string(s.search.sweeps)});
    }
    steps.print(os);
  }
}

}  // namespace pdc::d1lc
