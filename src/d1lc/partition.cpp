#include "pdc/d1lc/partition.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "pdc/d1lc/partition_oracles.hpp"
#include "pdc/engine/search.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/util/hashing.hpp"
#include "pdc/util/parallel.hpp"

namespace pdc::d1lc {

std::uint64_t Partition::color_bin(Color c) const {
  return EnumerablePairwiseFamily::eval_params(
      h2_a, h2_b, static_cast<std::uint64_t>(c), color_bins);
}

Partition low_space_partition(const D1lcInstance& inst,
                              const PartitionOptions& opt,
                              mpc::CostModel* cost) {
  const Graph& g = inst.graph;
  const NodeId n = g.num_nodes();
  Partition part;
  part.nbins = opt.nbins
                   ? opt.nbins
                   : static_cast<std::uint32_t>(std::ceil(
                         std::pow(static_cast<double>(n), opt.delta)));
  part.nbins = std::max<std::uint32_t>(part.nbins, 2);
  part.color_bins = std::max<std::uint32_t>(1, part.nbins - 1);
  part.bin_of.assign(n, Partition::kMid);

  std::vector<NodeId> high;
  for (NodeId v = 0; v < n; ++v)
    if (g.degree(v) > opt.mid_degree_cap) high.push_back(v);

  if (high.empty()) return part;

  // --- Select h1: minimize nodes whose bin-internal degree breaks the
  // Lemma-23 bound d'(v) < 2 d(v) / nbins (floored at 1 for small
  // degrees so the bound is meaningful at laptop scale). Both searches
  // go through the engine front door, which climbs the oracle ladder
  // (closed forms by default — zero enumeration sweeps; the prefix walk
  // when use_prefix_walk asks for it) on the policy's backend.
  const engine::ExecutionPolicy& policy = opt.search;
  auto request = [&](int family_log2) {
    return opt.use_prefix_walk
               ? engine::SearchRequest::prefix_walk(family_log2, policy)
               : engine::SearchRequest::exhaustive(1ULL << family_log2,
                                                   policy);
  };
  EnumerablePairwiseFamily f1(hash_combine(opt.salt, 1), opt.family_log2);
  H1DegreeOracle h1_oracle(g, high, f1, part.nbins, opt.mid_degree_cap);
  engine::Selection h1 = [&] {
    PDC_SPAN_PHASE("d1lc.partition.h1");
    return engine::search(h1_oracle, request(opt.family_log2));
  }();
  part.h1_index = h1.seed;
  part.search.absorb(h1.stats);
  if (cost) {
    cost->charge_conditional_expectation(opt.family_log2);
    cost->charge_sort(g.num_edges() * 2);
  }
  for (NodeId v : high)
    part.bin_of[v] = static_cast<std::uint32_t>(
        f1.eval(h1.seed, v, part.nbins));

  // --- Select h2 (given h1): minimize nodes in bins 0..nbins-2 whose
  // restricted palette no longer exceeds their bin-degree
  // (violation: need d'(v) < p'(v)). ---
  EnumerablePairwiseFamily f2(hash_combine(opt.salt, 2), opt.family_log2);
  H2PaletteOracle h2_oracle(g, inst, high, part.bin_of, f2, part.nbins,
                            part.color_bins);
  engine::Selection h2 = [&] {
    PDC_SPAN_PHASE("d1lc.partition.h2");
    return engine::search(h2_oracle, request(opt.family_log2));
  }();
  part.h2_index = h2.seed;
  part.search.absorb(h2.stats);
  auto [a2, b2] = f2.params(h2.seed);
  part.h2_a = a2;
  part.h2_b = b2;
  if (cost) {
    cost->charge_conditional_expectation(opt.family_log2);
    cost->charge_sort(inst.palettes.total_size());
  }

  // --- Diagnostics under the chosen hashes. ---
  part.degree_violations = static_cast<std::uint64_t>(h1.cost);
  part.palette_violations = static_cast<std::uint64_t>(h2.cost);
  double worst = 0.0;
  for (NodeId v : high) {
    std::uint32_t b = part.bin_of[v];
    std::uint32_t dprime = 0;
    for (NodeId u : g.neighbors(v))
      if (part.bin_of[u] == b) ++dprime;
    double bound =
        std::max(1.0, 2.0 * static_cast<double>(g.degree(v)) / part.nbins);
    worst = std::max(worst, static_cast<double>(dprime) / bound);
  }
  part.max_degree_ratio = worst;
  return part;
}

BinInstance build_bin_instance(const D1lcInstance& inst, const Partition& part,
                               std::uint32_t bin,
                               const Coloring& parent_coloring) {
  const Graph& g = inst.graph;
  std::vector<NodeId> members;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (part.bin_of[v] == bin && parent_coloring[v] == kNoColor)
      members.push_back(v);
  }
  InducedSubgraph sub = induce(g, members);

  const bool restrict_palette =
      bin != Partition::kMid && bin + 1 < part.nbins;
  std::vector<std::vector<Color>> lists(sub.to_parent.size());
  parallel_for(sub.to_parent.size(), [&](std::size_t i) {
    NodeId p = sub.to_parent[i];
    std::vector<Color> blocked;
    for (NodeId u : g.neighbors(p))
      if (parent_coloring[u] != kNoColor) blocked.push_back(parent_coloring[u]);
    std::sort(blocked.begin(), blocked.end());
    std::vector<Color> keep, spare;
    for (Color c : inst.palettes.palette(p)) {
      if (std::binary_search(blocked.begin(), blocked.end(), c)) continue;
      if (restrict_palette && part.color_bin(c) != bin) {
        spare.push_back(c);
        continue;
      }
      keep.push_back(c);
    }
    // Lemma 23 makes d'(v) < p'(v) hold for (almost) all nodes; at
    // finite n the chosen hashes can still leave stragglers. Top those
    // palettes up with out-of-bin colors — safe because bins are solved
    // sequentially against the live parent coloring (the paper instead
    // absorbs such nodes into the asymptotic slack). The patch count is
    // surfaced by experiment E5 via Partition::palette_violations.
    const std::uint32_t need = sub.graph.degree(static_cast<NodeId>(i)) + 1;
    for (std::size_t s = 0; keep.size() < need && s < spare.size(); ++s)
      keep.push_back(spare[s]);
    lists[i] = std::move(keep);
  });
  BinInstance out;
  out.instance.graph = std::move(sub.graph);
  out.instance.palettes = PaletteSet::from_lists(std::move(lists));
  out.to_parent = std::move(sub.to_parent);
  return out;
}

}  // namespace pdc::d1lc
