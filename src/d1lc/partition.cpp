#include "pdc/d1lc/partition.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "pdc/engine/seed_search.hpp"
#include "pdc/util/hashing.hpp"
#include "pdc/util/parallel.hpp"

namespace pdc::d1lc {

namespace {

/// Lemma-23 h1 objective, decomposed per high-degree node: contribution
/// is 1 when v's bin-internal degree under candidate hash `idx` breaks
/// the d'(v) < max(1, 2 d(v)/nbins) bound. eval_batch loads v's
/// neighbor list once and tests it against the whole candidate block
/// (node-major; the scalar route re-walked the adjacency per candidate).
class H1DegreeOracle final : public engine::CostOracle {
 public:
  H1DegreeOracle(const Graph& g, const std::vector<NodeId>& high,
                 const EnumerablePairwiseFamily& family, std::uint32_t nbins,
                 std::uint32_t mid_degree_cap)
      : g_(&g), high_(&high), family_(&family), nbins_(nbins),
        mid_degree_cap_(mid_degree_cap) {}

  std::size_t item_count() const override { return high_->size(); }

  void eval_batch(std::span<const std::uint64_t> seeds, std::size_t item,
                  double* sink) const override {
    const NodeId v = (*high_)[item];
    const double bound = std::max(
        1.0, 2.0 * static_cast<double>(g_->degree(v)) / nbins_);
    my_bin_.resize(seeds.size());
    dprime_.assign(seeds.size(), 0);
    for (std::size_t k = 0; k < seeds.size(); ++k)
      my_bin_[k] = family_->eval(seeds[k], v, nbins_);
    for (NodeId u : g_->neighbors(v)) {
      if (g_->degree(u) <= mid_degree_cap_) continue;
      for (std::size_t k = 0; k < seeds.size(); ++k) {
        if (family_->eval(seeds[k], u, nbins_) == my_bin_[k]) ++dprime_[k];
      }
    }
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      if (static_cast<double>(dprime_[k]) >= bound) sink[k] += 1.0;
    }
  }

 private:
  const Graph* g_;
  const std::vector<NodeId>* high_;
  const EnumerablePairwiseFamily* family_;
  std::uint32_t nbins_;
  std::uint32_t mid_degree_cap_;
  // Per-item scratch; thread_local so concurrent items don't race.
  static thread_local std::vector<std::uint64_t> my_bin_;
  static thread_local std::vector<std::uint32_t> dprime_;
};

thread_local std::vector<std::uint64_t> H1DegreeOracle::my_bin_;
thread_local std::vector<std::uint32_t> H1DegreeOracle::dprime_;

/// Lemma-23 h2 objective (given h1): contribution is 1 when v (in bins
/// 0..nbins-2) no longer has more in-bin palette colors than in-bin
/// neighbors. v's bin and bin-degree are candidate-independent, so
/// eval_batch computes them once per item and only re-hashes the
/// palette per candidate.
class H2PaletteOracle final : public engine::CostOracle {
 public:
  H2PaletteOracle(const Graph& g, const D1lcInstance& inst,
                  const std::vector<NodeId>& high,
                  const std::vector<std::uint32_t>& bin_of,
                  const EnumerablePairwiseFamily& family, std::uint32_t nbins,
                  std::uint32_t color_bins)
      : g_(&g), inst_(&inst), high_(&high), bin_of_(&bin_of),
        family_(&family), nbins_(nbins), color_bins_(color_bins) {}

  std::size_t item_count() const override { return high_->size(); }

  void begin_sweep(std::span<const std::uint64_t> seeds) override {
    a_.resize(seeds.size());
    b_.resize(seeds.size());
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      auto [a, b] = family_->params(seeds[k]);
      a_[k] = a;
      b_[k] = b;
    }
  }

  void eval_batch(std::span<const std::uint64_t> seeds, std::size_t item,
                  double* sink) const override {
    // Block-stateful: a_[k]/b_[k] are the params of seeds[k].
    const NodeId v = (*high_)[item];
    const std::uint32_t b = (*bin_of_)[v];
    if (b + 1 >= nbins_) return;  // last bin keeps everything
    std::uint32_t dprime = 0;
    for (NodeId u : g_->neighbors(v))
      if ((*bin_of_)[u] == b) ++dprime;
    pprime_.assign(seeds.size(), 0);
    for (Color c : inst_->palettes.palette(v)) {
      const std::uint64_t cm =
          static_cast<std::uint64_t>(c) % MersenneField::kPrime;
      for (std::size_t k = 0; k < seeds.size(); ++k) {
        std::uint64_t hv =
            MersenneField::add(MersenneField::mul(a_[k], cm), b_[k]);
        std::uint64_t cb = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(hv) * color_bins_) >> 61);
        if (cb == b) ++pprime_[k];
      }
    }
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      if (pprime_[k] <= dprime) sink[k] += 1.0;
    }
  }

 private:
  const Graph* g_;
  const D1lcInstance* inst_;
  const std::vector<NodeId>* high_;
  const std::vector<std::uint32_t>* bin_of_;
  const EnumerablePairwiseFamily* family_;
  std::uint32_t nbins_;
  std::uint32_t color_bins_;
  std::vector<std::uint64_t> a_, b_;
  static thread_local std::vector<std::uint32_t> pprime_;
};

thread_local std::vector<std::uint32_t> H2PaletteOracle::pprime_;

}  // namespace

std::uint64_t Partition::color_bin(Color c) const {
  std::uint64_t v = MersenneField::add(
      MersenneField::mul(h2_a, static_cast<std::uint64_t>(c) %
                                   MersenneField::kPrime),
      h2_b);
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(v) * color_bins) >> 61);
}

Partition low_space_partition(const D1lcInstance& inst,
                              const PartitionOptions& opt,
                              mpc::CostModel* cost) {
  const Graph& g = inst.graph;
  const NodeId n = g.num_nodes();
  Partition part;
  part.nbins = opt.nbins
                   ? opt.nbins
                   : static_cast<std::uint32_t>(std::ceil(
                         std::pow(static_cast<double>(n), opt.delta)));
  part.nbins = std::max<std::uint32_t>(part.nbins, 2);
  part.color_bins = std::max<std::uint32_t>(1, part.nbins - 1);
  part.bin_of.assign(n, Partition::kMid);

  std::vector<NodeId> high;
  for (NodeId v = 0; v < n; ++v)
    if (g.degree(v) > opt.mid_degree_cap) high.push_back(v);

  if (high.empty()) return part;

  // --- Select h1: minimize nodes whose bin-internal degree breaks the
  // Lemma-23 bound d'(v) < 2 d(v) / nbins (floored at 1 for small
  // degrees so the bound is meaningful at laptop scale). ---
  EnumerablePairwiseFamily f1(hash_combine(opt.salt, 1), opt.family_log2);
  H1DegreeOracle h1_oracle(g, high, f1, part.nbins, opt.mid_degree_cap);
  engine::SeedSearch h1_search(h1_oracle);
  engine::Selection h1 = h1_search.exhaustive(f1.size());
  part.h1_index = h1.seed;
  part.search.absorb(h1.stats);
  if (cost) {
    cost->charge_conditional_expectation(opt.family_log2);
    cost->charge_sort(g.num_edges() * 2);
  }
  for (NodeId v : high)
    part.bin_of[v] = static_cast<std::uint32_t>(
        f1.eval(h1.seed, v, part.nbins));

  // --- Select h2 (given h1): minimize nodes in bins 0..nbins-2 whose
  // restricted palette no longer exceeds their bin-degree
  // (violation: need d'(v) < p'(v)). ---
  EnumerablePairwiseFamily f2(hash_combine(opt.salt, 2), opt.family_log2);
  H2PaletteOracle h2_oracle(g, inst, high, part.bin_of, f2, part.nbins,
                            part.color_bins);
  engine::SeedSearch h2_search(h2_oracle);
  engine::Selection h2 = h2_search.exhaustive(f2.size());
  part.h2_index = h2.seed;
  part.search.absorb(h2.stats);
  auto [a2, b2] = f2.params(h2.seed);
  part.h2_a = a2;
  part.h2_b = b2;
  if (cost) {
    cost->charge_conditional_expectation(opt.family_log2);
    cost->charge_sort(inst.palettes.total_size());
  }

  // --- Diagnostics under the chosen hashes. ---
  part.degree_violations = static_cast<std::uint64_t>(h1.cost);
  part.palette_violations = static_cast<std::uint64_t>(h2.cost);
  double worst = 0.0;
  for (NodeId v : high) {
    std::uint32_t b = part.bin_of[v];
    std::uint32_t dprime = 0;
    for (NodeId u : g.neighbors(v))
      if (part.bin_of[u] == b) ++dprime;
    double bound =
        std::max(1.0, 2.0 * static_cast<double>(g.degree(v)) / part.nbins);
    worst = std::max(worst, static_cast<double>(dprime) / bound);
  }
  part.max_degree_ratio = worst;
  return part;
}

BinInstance build_bin_instance(const D1lcInstance& inst, const Partition& part,
                               std::uint32_t bin,
                               const Coloring& parent_coloring) {
  const Graph& g = inst.graph;
  std::vector<NodeId> members;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (part.bin_of[v] == bin && parent_coloring[v] == kNoColor)
      members.push_back(v);
  }
  InducedSubgraph sub = induce(g, members);

  const bool restrict_palette =
      bin != Partition::kMid && bin + 1 < part.nbins;
  std::vector<std::vector<Color>> lists(sub.to_parent.size());
  parallel_for(sub.to_parent.size(), [&](std::size_t i) {
    NodeId p = sub.to_parent[i];
    std::vector<Color> blocked;
    for (NodeId u : g.neighbors(p))
      if (parent_coloring[u] != kNoColor) blocked.push_back(parent_coloring[u]);
    std::sort(blocked.begin(), blocked.end());
    std::vector<Color> keep, spare;
    for (Color c : inst.palettes.palette(p)) {
      if (std::binary_search(blocked.begin(), blocked.end(), c)) continue;
      if (restrict_palette && part.color_bin(c) != bin) {
        spare.push_back(c);
        continue;
      }
      keep.push_back(c);
    }
    // Lemma 23 makes d'(v) < p'(v) hold for (almost) all nodes; at
    // finite n the chosen hashes can still leave stragglers. Top those
    // palettes up with out-of-bin colors — safe because bins are solved
    // sequentially against the live parent coloring (the paper instead
    // absorbs such nodes into the asymptotic slack). The patch count is
    // surfaced by experiment E5 via Partition::palette_violations.
    const std::uint32_t need = sub.graph.degree(static_cast<NodeId>(i)) + 1;
    for (std::size_t s = 0; keep.size() < need && s < spare.size(); ++s)
      keep.push_back(spare[s]);
    lists[i] = std::move(keep);
  });
  BinInstance out;
  out.instance.graph = std::move(sub.graph);
  out.instance.palettes = PaletteSet::from_lists(std::move(lists));
  out.to_parent = std::move(sub.to_parent);
  return out;
}

}  // namespace pdc::d1lc
