#include "pdc/d1lc/partition.hpp"

#include <algorithm>
#include <cmath>

#include "pdc/prg/cond_exp.hpp"
#include "pdc/util/hashing.hpp"
#include "pdc/util/parallel.hpp"

namespace pdc::d1lc {

std::uint64_t Partition::color_bin(Color c) const {
  std::uint64_t v = MersenneField::add(
      MersenneField::mul(h2_a, static_cast<std::uint64_t>(c) %
                                   MersenneField::kPrime),
      h2_b);
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(v) * color_bins) >> 61);
}

Partition low_space_partition(const D1lcInstance& inst,
                              const PartitionOptions& opt,
                              mpc::CostModel* cost) {
  const Graph& g = inst.graph;
  const NodeId n = g.num_nodes();
  Partition part;
  part.nbins = opt.nbins
                   ? opt.nbins
                   : static_cast<std::uint32_t>(std::ceil(
                         std::pow(static_cast<double>(n), opt.delta)));
  part.nbins = std::max<std::uint32_t>(part.nbins, 2);
  part.color_bins = std::max<std::uint32_t>(1, part.nbins - 1);
  part.bin_of.assign(n, Partition::kMid);

  std::vector<NodeId> high;
  for (NodeId v = 0; v < n; ++v)
    if (g.degree(v) > opt.mid_degree_cap) high.push_back(v);

  if (high.empty()) return part;

  // --- Select h1: minimize nodes whose bin-internal degree breaks the
  // Lemma-23 bound d'(v) < 2 d(v) / nbins (floored at 1 for small
  // degrees so the bound is meaningful at laptop scale). ---
  EnumerablePairwiseFamily f1(hash_combine(opt.salt, 1), opt.family_log2);
  auto h1_cost = [&](std::uint64_t idx) -> double {
    return static_cast<double>(parallel_count(high.size(), [&](std::size_t i) {
      NodeId v = high[i];
      std::uint64_t my_bin = f1.eval(idx, v, part.nbins);
      std::uint32_t dprime = 0;
      for (NodeId u : g.neighbors(v)) {
        if (g.degree(u) > opt.mid_degree_cap &&
            f1.eval(idx, u, part.nbins) == my_bin)
          ++dprime;
      }
      double bound = std::max(
          1.0, 2.0 * static_cast<double>(g.degree(v)) / part.nbins);
      return static_cast<double>(dprime) >= bound;
    }));
  };
  prg::SeedChoice h1 = prg::select_index_exhaustive(f1.size(), h1_cost);
  part.h1_index = h1.seed;
  if (cost) {
    cost->charge_conditional_expectation(opt.family_log2);
    cost->charge_sort(g.num_edges() * 2);
  }
  for (NodeId v : high)
    part.bin_of[v] = static_cast<std::uint32_t>(
        f1.eval(h1.seed, v, part.nbins));

  // --- Select h2 (given h1): minimize nodes in bins 0..nbins-2 whose
  // restricted palette no longer exceeds their bin-degree. ---
  EnumerablePairwiseFamily f2(hash_combine(opt.salt, 2), opt.family_log2);
  auto palette_fail_count = [&](std::uint64_t idx) -> std::uint64_t {
    return parallel_count(high.size(), [&](std::size_t i) {
      NodeId v = high[i];
      std::uint32_t b = part.bin_of[v];
      if (b + 1 >= part.nbins) return false;  // last bin keeps everything
      std::uint32_t dprime = 0;
      for (NodeId u : g.neighbors(v))
        if (part.bin_of[u] == b) ++dprime;
      std::uint32_t pprime = 0;
      auto [a2, b2] = f2.params(idx);
      for (Color c : inst.palettes.palette(v)) {
        std::uint64_t hv = MersenneField::add(
            MersenneField::mul(a2, static_cast<std::uint64_t>(c) %
                                       MersenneField::kPrime),
            b2);
        std::uint64_t cb = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(hv) * part.color_bins) >> 61);
        if (cb == b) ++pprime;
      }
      return pprime <= dprime;  // violation: need d'(v) < p'(v)
    });
  };
  auto h2_cost = [&](std::uint64_t idx) -> double {
    return static_cast<double>(palette_fail_count(idx));
  };
  prg::SeedChoice h2 = prg::select_index_exhaustive(f2.size(), h2_cost);
  part.h2_index = h2.seed;
  auto [a2, b2] = f2.params(h2.seed);
  part.h2_a = a2;
  part.h2_b = b2;
  if (cost) {
    cost->charge_conditional_expectation(opt.family_log2);
    cost->charge_sort(inst.palettes.total_size());
  }

  // --- Diagnostics under the chosen hashes. ---
  part.degree_violations = static_cast<std::uint64_t>(h1.cost);
  part.palette_violations = static_cast<std::uint64_t>(h2.cost);
  double worst = 0.0;
  for (NodeId v : high) {
    std::uint32_t b = part.bin_of[v];
    std::uint32_t dprime = 0;
    for (NodeId u : g.neighbors(v))
      if (part.bin_of[u] == b) ++dprime;
    double bound =
        std::max(1.0, 2.0 * static_cast<double>(g.degree(v)) / part.nbins);
    worst = std::max(worst, static_cast<double>(dprime) / bound);
  }
  part.max_degree_ratio = worst;
  return part;
}

BinInstance build_bin_instance(const D1lcInstance& inst, const Partition& part,
                               std::uint32_t bin,
                               const Coloring& parent_coloring) {
  const Graph& g = inst.graph;
  std::vector<NodeId> members;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (part.bin_of[v] == bin && parent_coloring[v] == kNoColor)
      members.push_back(v);
  }
  InducedSubgraph sub = induce(g, members);

  const bool restrict_palette =
      bin != Partition::kMid && bin + 1 < part.nbins;
  std::vector<std::vector<Color>> lists(sub.to_parent.size());
  parallel_for(sub.to_parent.size(), [&](std::size_t i) {
    NodeId p = sub.to_parent[i];
    std::vector<Color> blocked;
    for (NodeId u : g.neighbors(p))
      if (parent_coloring[u] != kNoColor) blocked.push_back(parent_coloring[u]);
    std::sort(blocked.begin(), blocked.end());
    std::vector<Color> keep, spare;
    for (Color c : inst.palettes.palette(p)) {
      if (std::binary_search(blocked.begin(), blocked.end(), c)) continue;
      if (restrict_palette && part.color_bin(c) != bin) {
        spare.push_back(c);
        continue;
      }
      keep.push_back(c);
    }
    // Lemma 23 makes d'(v) < p'(v) hold for (almost) all nodes; at
    // finite n the chosen hashes can still leave stragglers. Top those
    // palettes up with out-of-bin colors — safe because bins are solved
    // sequentially against the live parent coloring (the paper instead
    // absorbs such nodes into the asymptotic slack). The patch count is
    // surfaced by experiment E5 via Partition::palette_violations.
    const std::uint32_t need = sub.graph.degree(static_cast<NodeId>(i)) + 1;
    for (std::size_t s = 0; keep.size() < need && s < spare.size(); ++s)
      keep.push_back(spare[s]);
    lists[i] = std::move(keep);
  });
  BinInstance out;
  out.instance.graph = std::move(sub.graph);
  out.instance.palettes = PaletteSet::from_lists(std::move(lists));
  out.to_parent = std::move(sub.to_parent);
  return out;
}

}  // namespace pdc::d1lc
