#pragma once
// Human-readable rendering of solver results and middle-pass reports —
// shared by the CLI, examples and experiment harnesses.

#include <iosfwd>

#include "pdc/d1lc/solver.hpp"

namespace pdc::d1lc {

/// One-paragraph summary: validity, colors, rounds, space, attribution.
void print_summary(std::ostream& os, const D1lcInstance& inst,
                   const SolveResult& result);

/// Detailed drill-down: per-phase rounds, per-middle-pass decomposition
/// stats, and the per-procedure derandomization table (participants,
/// failures, defer fraction, seed evaluations).
void print_detail(std::ostream& os, const SolveResult& result);

}  // namespace pdc::d1lc
