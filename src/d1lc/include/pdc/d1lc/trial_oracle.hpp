#pragma once
// The low-degree hash-trial objective as an analytic cost oracle,
// shared by the shared-memory phase loop (low_degree_color) and the MPC
// phase loop (low_degree_color_mpc).
//
// One trial under family member s: every active node v picks
// avail_v[h_s(v) mod |avail_v|] and keeps it unless an active neighbor
// picked the same color; the objective is -1 per kept node (the
// selector minimizes, so more colored = smaller total).
//
// The availability lists are seed-independent, so the cost is a junta
// of hash values: v's contribution under s is a pure formula over
// (avail_v, avail_u for neighbors u) and the member's (a, b) params.
// eval_analytic exploits exactly that — AvailLists are built once per
// search, then every (member, item) evaluation is O(deg) eval_params
// arithmetic with no pick tables. That is also the honest MPC story: a
// machine evaluates its shard's nodes by *recomputing* neighbor picks
// from the formula, because a remote shard's pick table would cost a
// communication round to consult.
//
// The enumerating path (begin_sweep / eval_batch) is retained: it
// builds per-block pick tables — one n-sized Color array per candidate
// — and amortizes each node's hash across its neighbors, the
// pre-analytic implementation the differential tests compare against.
// Both paths route picks through EnumerablePairwiseFamily::eval_params,
// so their totals (and hence Selections) are bit-identical.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "pdc/derand/coloring_state.hpp"
#include "pdc/engine/prefix.hpp"
#include "pdc/graph/coloring.hpp"
#include "pdc/graph/palette.hpp"
#include "pdc/util/aligned.hpp"
#include "pdc/util/hashing.hpp"

namespace pdc::d1lc {

/// One node's availability under `coloring`: palette minus the colors
/// taken by colored neighbors. The single derivation shared by the
/// trial oracle's scoring paths and the trial *executors* (pick_of in
/// low_degree_mpc.cpp) — the derandomization guarantee needs the
/// committed trial to use exactly the availability the search scored.
std::vector<Color> trial_available_colors(const D1lcInstance& inst,
                                          const Coloring& coloring, NodeId v);

/// Per-node availability lists in CSR form (empty for inactive nodes).
/// Seed-independent: built once per search, shared by both oracle paths.
/// 64-byte-aligned structure-of-arrays storage: the batched trial path
/// gathers from `colors` in its member-major inner loops.
struct AvailLists {
  util::aligned_vector<std::size_t> offset;  // size n+1
  util::aligned_vector<Color> colors;

  std::span<const Color> of(NodeId v) const {
    return {colors.data() + offset[v], offset[v + 1] - offset[v]};
  }

  /// Lists for the todo nodes of a ColoringState (the shared-memory
  /// phase loop's view); other nodes get empty lists.
  static AvailLists from_state(const derand::ColoringState& state,
                               const std::vector<NodeId>& todo);

  /// Lists for the uncolored nodes of an instance under `coloring`
  /// (palette minus colors taken by colored neighbors — the MPC phase
  /// loop's view); colored nodes get empty lists.
  static AvailLists from_instance(const D1lcInstance& inst,
                                  const Coloring& coloring);
};

class TrialOracle final : public engine::PrefixOracle {
 public:
  /// `items`: the nodes this objective scores (one item per node).
  /// `active[v]` != 0 marks trial participants (clash candidates);
  /// every active node must appear in `items` — the enumerating path's
  /// pick table only covers items, so an active non-item would make
  /// the two paths diverge (checked at construction). `avail` must
  /// hold each active node's availability list. All references must
  /// outlive the oracle.
  TrialOracle(const Graph& g, const std::vector<NodeId>& items,
              const std::vector<std::uint8_t>& active,
              const AvailLists& avail,
              const EnumerablePairwiseFamily& family);

  std::size_t item_count() const override { return items_->size(); }

  // Prefix plane: the junta is v plus its active neighbors (the picks
  // a clash can involve); inactive or empty-availability items never
  // score, so they are seed-constant 0.
  int bit_count() const override { return family_->log2(); }
  std::size_t junta_size(std::size_t item) const override;
  std::optional<double> constant_cost(std::size_t item) const override;

  void begin_search(std::uint64_t num_seeds) override;
  void end_search() override;
  void eval_analytic(std::uint64_t first, std::size_t count,
                     std::size_t item, double* sink) const override;

  /// SIMD member-major path: bucket-gathers v's picks from the SoA
  /// params table, then OR-reduces the clash flag across active
  /// neighbors — the branch-free equivalent of eval_analytic's
  /// early-break clash scan, bit-identical by the kernel contract.
  /// Falls back to eval_analytic when the table wasn't affordable.
  void eval_members(std::uint64_t first, std::size_t count, std::size_t item,
                    double* sink) const override;

  // Enumerating path: per-block pick tables.
  void begin_sweep(std::span<const std::uint64_t> seeds) override;
  void end_sweep() override;
  void eval_batch(std::span<const std::uint64_t> seeds, std::size_t item,
                  double* sink) const override;

 private:
  Color pick_params(std::uint64_t a, std::uint64_t b, NodeId v) const;

  const Graph* g_;
  const std::vector<NodeId>* items_;
  const std::vector<std::uint8_t>* active_;
  const AvailLists* avail_;
  const EnumerablePairwiseFamily* family_;
  // Structure-of-arrays member params (begin_search; empty = fall back
  // to scalar eval_analytic).
  util::aligned_vector<std::uint64_t> pa_, pb_;
  // Enumerating-path block state: picks_[k][v] = v's pick under the
  // block's k-th member (kNoColor for inactive / empty-palette nodes).
  std::vector<std::vector<Color>> picks_;
  // Batched-path per-item scratch (64-byte aligned for the SIMD lanes).
  static thread_local util::aligned_vector<std::uint64_t> bucket_batch_;
  static thread_local util::aligned_vector<Color> mine_batch_;
  static thread_local util::aligned_vector<std::uint8_t> clash_batch_;
};

}  // namespace pdc::d1lc
