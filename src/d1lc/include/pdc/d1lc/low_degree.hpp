#pragma once
// Deterministic D1LC for low-degree instances — the Lemma-14 role
// ([CDP21c], cited black-box by the paper; see DESIGN.md §4 for the
// substitution).
//
// Each phase: every uncolored node tries the color its palette gets from
// a pairwise-independent hash; the hash is chosen deterministically from
// an enumerable family as the one coloring the most nodes (>= the family
// mean, by the conditional-expectations argument). Phases shrink the
// uncolored set geometrically in practice; a guaranteed-progress fallback
// (greedy-color one node) keeps termination unconditional. Rounds charged:
// O(1) per phase (one trial exchange + one seed selection).

#include <cstdint>

#include "pdc/derand/coloring_state.hpp"
#include "pdc/engine/search.hpp"
#include "pdc/mpc/cost_model.hpp"

namespace pdc::d1lc {

struct LowDegreeReport {
  std::uint64_t phases = 0;
  std::uint64_t colored = 0;
  std::uint64_t fallback_steps = 0;  // phases that used the 1-node fallback
  /// Engine accounting summed over all per-phase hash searches.
  engine::SearchStats search;
};

/// Colors every remaining uncolored (and deferred) participant of
/// `state` deterministically. `family_log2` sizes the hash family
/// searched per phase. The per-phase trial searches execute under
/// `policy` (backend / cluster / engine options — pdc/engine/search.hpp)
/// through the analytic trial oracle (pdc/d1lc/trial_oracle.hpp) —
/// closed-form per-node costs, zero enumeration sweeps, bit-identical
/// Selections on every backend.
LowDegreeReport low_degree_color(derand::ColoringState& state,
                                 mpc::CostModel* cost, int family_log2 = 8,
                                 std::uint64_t salt = 0xC0FFEE,
                                 const engine::ExecutionPolicy& policy = {});

}  // namespace pdc::d1lc
