#pragma once
// LowSpacePartition (Algorithm 12) with deterministic hash selection
// (Lemma 23, after [CDP21d]).
//
// Nodes of degree <= mid_degree_cap form G_mid. The remaining nodes are
// hashed into `nbins` bins by h1; colors are hashed into nbins-1 bins by
// h2; nodes in bins 1..nbins-1 keep only their bin's colors, while the
// last node-bin keeps full palettes (it is colored after the others,
// against whatever its neighbors actually took). Both hashes are chosen
// deterministically from enumerable pairwise-independent families: h1
// minimizing degree-bound violations (d'(v) < 2 d(v)/nbins), then h2
// (given h1) minimizing palette violations (d'(v) < p'(v)).

#include <cstdint>
#include <vector>

#include "pdc/engine/search.hpp"
#include "pdc/graph/coloring.hpp"
#include "pdc/graph/palette.hpp"
#include "pdc/mpc/cost_model.hpp"

namespace pdc::mpc {
class Cluster;
}

namespace pdc::d1lc {

struct PartitionOptions {
  std::uint32_t nbins = 0;          // 0 => ceil(n^delta)
  double delta = 0.25;
  std::uint32_t mid_degree_cap = 32;
  int family_log2 = 7;              // hash candidates searched = 2^this
  std::uint64_t salt = 0xBEEF;
  /// How the h1/h2 index searches execute (backend, cluster, engine
  /// SearchOptions, optional stats sink — pdc/engine/search.hpp). With
  /// kSharded every totals pass runs as capacity-checked rounds on the
  /// cluster — each machine evaluates its shard of high-degree nodes
  /// through the analytic Lemma-23 closed forms
  /// (pdc/d1lc/partition_oracles.hpp) and the per-candidate partials
  /// are converge-cast. Selections are bit-identical to the
  /// shared-memory engine's at any machine count. The default consults
  /// the oracles' closed forms — zero enumeration sweeps; set
  /// search.options.use_analytic = false to force the enumerating
  /// sweeps (differential tests and ablations).
  engine::ExecutionPolicy search;
  /// Route both hash selections through the junta-fooling prefix walk
  /// (engine::SearchRoute::kPrefixWalk) instead of the exhaustive
  /// argmin. Still guarantees violations <= the family mean; selects a
  /// (generally different) walk-certified member, with
  /// SearchStats::prefix accounting the junta work. Default off — the
  /// E5 prefix leg and the `prefix` test suite exercise it.
  bool use_prefix_walk = false;
};

struct Partition {
  /// Per node: bin in [0, nbins), or kMid for the low-degree graph.
  static constexpr std::uint32_t kMid = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> bin_of;
  std::uint32_t nbins = 0;
  std::uint64_t h1_index = 0, h2_index = 0;
  /// Diagnostics for Lemma 23's guarantees.
  std::uint64_t degree_violations = 0;   // d'(v) >= 2 d(v) / nbins
  std::uint64_t palette_violations = 0;  // d'(v) >= p'(v)
  double max_degree_ratio = 0.0;         // max_v d'(v) * nbins / (2 d(v))
  /// Combined engine accounting for the h1 + h2 index searches.
  engine::SearchStats search;
  /// Color-bin of each palette color under h2 (for bins 0..nbins-2).
  std::uint64_t color_bin(Color c) const;
  std::uint64_t h2_a = 0, h2_b = 0;      // chosen h2 parameters
  std::uint32_t color_bins = 0;
};

/// Partitions the instance; charges O(1) rounds for the two hash
/// selections plus the bin-degree evaluation sorts.
Partition low_space_partition(const D1lcInstance& inst,
                              const PartitionOptions& opt,
                              mpc::CostModel* cost);

/// Builds the induced sub-instance for bin `b` (palette-restricted for
/// b < nbins-1; full palettes for the last bin and for kMid), given the
/// parent coloring so far (colors taken by already-colored neighbors are
/// removed — the "update color palettes" steps of Algorithm 11).
struct BinInstance {
  D1lcInstance instance;
  std::vector<NodeId> to_parent;
};
BinInstance build_bin_instance(const D1lcInstance& inst, const Partition& part,
                               std::uint32_t bin,
                               const Coloring& parent_coloring);

}  // namespace pdc::d1lc
