#pragma once
// Lemma-23 partition objectives as analytic cost oracles.
//
// Both hash selections of LowSpacePartition decompose per high-degree
// node, and both are *juntas of bucket values*: node v's contribution
// under family member s depends on s only through the member's buckets
// of a fixed, seed-independent point set (v and its high-degree
// neighbors for h1; v's palette colors for h2). That makes the costs
// closed-form in the sense of pdc/engine/analytic.hpp — pure arithmetic
// over invariants prepared once per search — so the engine's analytic
// plane evaluates them with zero enumeration sweeps, and the sharded
// backend evaluates each machine's shard without any cross-shard
// simulation state.
//
// Each oracle also keeps its genuine enumerating implementation
// (begin_sweep / eval_batch, the pre-analytic code path): the
// differential tests drive both paths and require bit-identical
// Selections, which holds because both route every bucket through
// EnumerablePairwiseFamily::eval_params.
//
// Both oracles additionally sit on the prefix plane
// (pdc/engine/prefix.hpp): their costs are juntas of bucket values, so
// a prefix walk classifies the seed-constant items up front — an h1
// item whose degree bound exceeds its whole junta can never violate;
// an h2 item in the last bin never restricts, and one whose bin-degree
// reaches its palette size always violates — and only the remaining
// items ever evaluate completions.

#include <cstdint>
#include <optional>
#include <vector>

#include "pdc/engine/prefix.hpp"
#include "pdc/graph/coloring.hpp"
#include "pdc/graph/palette.hpp"
#include "pdc/util/aligned.hpp"
#include "pdc/util/hashing.hpp"

namespace pdc::d1lc {

/// Lemma-23 h1 objective, decomposed per high-degree node: contribution
/// is 1 when v's bin-internal degree under candidate hash `idx` breaks
/// the d'(v) < max(1, 2 d(v)/nbins) bound.
///
/// Analytic form: begin_search filters each item's adjacency to its
/// high-degree neighbors once (the enumerating sweep re-filters per
/// block); eval_analytic then needs one eval_params per junta point.
class H1DegreeOracle final : public engine::PrefixOracle {
 public:
  H1DegreeOracle(const Graph& g, const std::vector<NodeId>& high,
                 const EnumerablePairwiseFamily& family, std::uint32_t nbins,
                 std::uint32_t mid_degree_cap);

  std::size_t item_count() const override { return high_->size(); }

  // Prefix plane: the junta is v plus its high-degree neighbors; items
  // whose bound no junta count can reach are seed-constant zero.
  int bit_count() const override { return family_->log2(); }
  std::size_t junta_size(std::size_t item) const override;
  std::optional<double> constant_cost(std::size_t item) const override;

  void begin_search(std::uint64_t num_seeds) override;
  void end_search() override;
  void eval_analytic(std::uint64_t first, std::size_t count,
                     std::size_t item, double* sink) const override;

  /// SIMD member-major path: one bucket_span over the precomputed SoA
  /// params table for v, then one bucket_match_span per high-degree
  /// neighbor. Bit-identical to eval_analytic (the simd.hpp kernel
  /// contract); falls back to it when the table wasn't affordable.
  void eval_members(std::uint64_t first, std::size_t count, std::size_t item,
                    double* sink) const override;

  /// Enumerating sweep: loads v's neighbor list once per block and
  /// tests it against the whole candidate block (node-major).
  void eval_batch(std::span<const std::uint64_t> seeds, std::size_t item,
                  double* sink) const override;

 private:
  double bound_of(std::size_t item) const;

  const Graph* g_;
  const std::vector<NodeId>* high_;
  const EnumerablePairwiseFamily* family_;
  std::uint32_t nbins_;
  std::uint32_t mid_degree_cap_;
  // begin_search invariants: per-item CSR of high-degree neighbors and
  // the per-item degree bound.
  std::vector<std::size_t> high_nbr_off_;
  std::vector<NodeId> high_nbrs_;
  std::vector<double> bound_;
  // Structure-of-arrays member params (begin_search; empty = fall back
  // to scalar eval_analytic).
  util::aligned_vector<std::uint64_t> pa_, pb_;
  // Enumerating-path per-item scratch; thread_local so concurrent items
  // don't race.
  static thread_local std::vector<std::uint64_t> my_bin_;
  static thread_local std::vector<std::uint32_t> dprime_;
  // Batched-path per-item scratch (64-byte aligned for the SIMD lanes).
  static thread_local util::aligned_vector<std::uint64_t> mine_batch_;
  static thread_local util::aligned_vector<std::uint32_t> dprime_batch_;
};

/// Lemma-23 h2 objective (given h1): contribution is 1 when v (in bins
/// 0..nbins-2) no longer has more in-bin palette colors than in-bin
/// neighbors.
///
/// Analytic form: begin_search computes each item's bin and bin-degree
/// once (both candidate-independent — the enumerating sweep recomputes
/// the bin-degree every block); eval_analytic then needs one
/// eval_params per palette color.
class H2PaletteOracle final : public engine::PrefixOracle {
 public:
  H2PaletteOracle(const Graph& g, const D1lcInstance& inst,
                  const std::vector<NodeId>& high,
                  const std::vector<std::uint32_t>& bin_of,
                  const EnumerablePairwiseFamily& family, std::uint32_t nbins,
                  std::uint32_t color_bins);

  std::size_t item_count() const override { return high_->size(); }

  // Prefix plane: the junta is v's palette; last-bin items are
  // seed-constant 0, items whose bin-degree reaches their palette size
  // are seed-constant 1 (p'(v) <= |palette| <= d'(v) for every member).
  int bit_count() const override { return family_->log2(); }
  std::size_t junta_size(std::size_t item) const override;
  std::optional<double> constant_cost(std::size_t item) const override;

  void begin_search(std::uint64_t num_seeds) override;
  void end_search() override;
  void eval_analytic(std::uint64_t first, std::size_t count,
                     std::size_t item, double* sink) const override;

  /// SIMD member-major path: one bucket_count_span per palette color
  /// over the precomputed SoA params table, counting hits on v's bin.
  /// Bit-identical to eval_analytic; falls back when no table.
  void eval_members(std::uint64_t first, std::size_t count, std::size_t item,
                    double* sink) const override;

  /// Enumerating sweep: caches the block's (a, b) params in begin_sweep
  /// and re-hashes the palette per candidate.
  void begin_sweep(std::span<const std::uint64_t> seeds) override;
  void eval_batch(std::span<const std::uint64_t> seeds, std::size_t item,
                  double* sink) const override;

 private:
  const Graph* g_;
  const D1lcInstance* inst_;
  const std::vector<NodeId>* high_;
  const std::vector<std::uint32_t>* bin_of_;
  const EnumerablePairwiseFamily* family_;
  std::uint32_t nbins_;
  std::uint32_t color_bins_;
  // begin_search invariants: per-item bin and bin-internal degree.
  std::vector<std::uint32_t> item_bin_;
  std::vector<std::uint32_t> item_dprime_;
  // Structure-of-arrays member params (begin_search; empty = fall back
  // to scalar eval_analytic).
  util::aligned_vector<std::uint64_t> pa_, pb_;
  // Enumerating-path block state (params of the block's members).
  std::vector<std::uint64_t> a_, b_;
  static thread_local std::vector<std::uint32_t> pprime_;
  // Batched-path per-item scratch (64-byte aligned for the SIMD lanes).
  static thread_local util::aligned_vector<std::uint32_t> pprime_batch_;
};

}  // namespace pdc::d1lc
