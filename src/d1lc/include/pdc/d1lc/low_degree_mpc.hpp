#pragma once
// The low-degree deterministic color-trial phase executed genuinely on
// the MPC cluster — picks, conflict sets and commits all travel as
// capacity-checked messages between home machines.
//
// Together with luby_mis_mpc this closes the loop on substrate realism:
// the same hash-trial semantics as low_degree_color()'s phases, with a
// test proving the distributed execution commits the identical node set
// for the identical family member. (The full solver uses the
// shared-memory implementation + cost model for speed; this one is the
// existence proof and the E7-style accounting witness.)

#include <cstdint>

#include "pdc/engine/search.hpp"
#include "pdc/graph/coloring.hpp"
#include "pdc/graph/palette.hpp"
#include "pdc/mpc/cluster.hpp"
#include "pdc/util/hashing.hpp"

namespace pdc::d1lc {

struct MpcTrialResult {
  Coloring committed;           // kNoColor where the trial failed
  std::uint64_t colored = 0;
  std::uint64_t mpc_rounds = 0;
};

/// One hash trial under family member `index`: every uncolored node
/// picks available[h(v) mod |available|] and commits unless an uncolored
/// neighbor picked the same color. `coloring` carries pre-existing
/// colors (their owners sit out; their colors block palettes).
/// 2 cluster rounds: pick-exchange, commit-exchange.
MpcTrialResult low_degree_trial_mpc(mpc::Cluster& cluster,
                                    const D1lcInstance& inst,
                                    const Coloring& coloring,
                                    const EnumerablePairwiseFamily& family,
                                    std::uint64_t index);

/// Shared-memory twin with identical pick semantics (exposed so the
/// equivalence test and the seed selection can reuse it).
MpcTrialResult low_degree_trial_shared(const D1lcInstance& inst,
                                       const Coloring& coloring,
                                       const EnumerablePairwiseFamily& family,
                                       std::uint64_t index);

/// Seed selection for one trial phase: index search over the family for
/// the member committing the most nodes (negated counts). Executes
/// under `policy`; on the kSharded backend every totals pass runs as
/// capacity-checked rounds on the policy's cluster (home machines score
/// their own nodes, totals converge-cast) and returns the bit-identical
/// Selection. Exposed for the sharded differential tests;
/// low_degree_color_mpc routes through here.
engine::Selection low_degree_trial_selection(
    const D1lcInstance& inst, const Coloring& coloring,
    const EnumerablePairwiseFamily& family,
    const engine::ExecutionPolicy& policy = {});

/// Full deterministic phase loop on the cluster: per phase, select the
/// winning family member (shared-memory engine by default; with
/// backend == kSharded the selection sweeps themselves run as cluster
/// rounds — the Lemma-10 aggregation story executed on the substrate),
/// then *execute* the winner through real messages. Returns the
/// complete coloring. With kSharded, `mpc_rounds` includes the search's
/// converge-cast rounds (also broken out in search.sharded.rounds).
struct MpcLowDegreeResult {
  Coloring coloring;
  std::uint64_t phases = 0;
  std::uint64_t mpc_rounds = 0;
  bool valid = false;
  /// Engine accounting summed over the per-phase family searches.
  engine::SearchStats search;
};
MpcLowDegreeResult low_degree_color_mpc(
    mpc::Cluster& cluster, const D1lcInstance& inst, int family_log2 = 6,
    std::uint64_t salt = 0xC0FFEE, engine::ExecutionPolicy policy = {});

}  // namespace pdc::d1lc
