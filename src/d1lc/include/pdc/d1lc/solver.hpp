#pragma once
// Public facade: deterministic (Theorem 1) and randomized (Lemma 4)
// D1LC in simulated sublinear-space MPC.
//
// Deterministic pipeline (LowSpaceColorReduce, Algorithm 11):
//   * while Δ exceeds the mid-degree cap (the n^{7δ} / sqrt(s) analog),
//     LowSpacePartition splits the instance into bins with
//     deterministically selected hashes (Lemma 23) — bins are solved
//     with parallel-round accounting, the unrestricted last bin and
//     G_mid afterwards;
//   * mid-degree instances run DerandomizedMidDegreeColor
//     (Algorithm 10): ColorMiddle passes under the Lemma-10/Theorem-12
//     machinery, recursing on deferred nodes via self-reducibility;
//   * the low-degree residue is finished by the deterministic
//     low-degree solver (Lemma 14 role).
//
// Randomized mode runs the same structure with true randomness and no
// deferral (failures simply retry / fall through), reproducing Lemma 4.

#include <cstdint>
#include <string>
#include <vector>

#include "pdc/d1lc/low_degree.hpp"
#include "pdc/d1lc/partition.hpp"
#include "pdc/engine/seed_search.hpp"
#include "pdc/hknt/color_middle.hpp"
#include "pdc/mpc/ledger.hpp"

namespace pdc::d1lc {

enum class Mode { kDeterministic, kRandomized };

struct SolverOptions {
  Mode mode = Mode::kDeterministic;

  // MPC geometry (DESIGN.md §5 explains the laptop-scale calibration).
  double phi = 0.75;
  double space_headroom = 8.0;

  // Partition recursion.
  double delta = 0.25;
  std::uint32_t mid_degree_cap = 0;  // 0 => sqrt(s) from the MPC config
  int partition_family_log2 = 7;

  // Mid-degree (HKNT) machinery.
  hknt::HkntConfig hknt;
  derand::Lemma10Options l10;  // seed_bits / strategy / budgets
  int middle_passes = 2;       // Theorem-12 recursion depth r

  // Low-degree finish.
  int low_degree_family_log2 = 8;

  /// How the partition h1/h2 and low-degree trial searches execute
  /// (the Lemma-10 searches carry their own policy in `l10`): backend
  /// (kSharedMemory / kSharded / kAuto), cluster, engine options. With
  /// kSharded every totals pass runs as capacity-checked rounds on the
  /// cluster — machines evaluate their shards' analytic closed forms
  /// and converge-cast the per-candidate partials. Selections (and
  /// hence the coloring) are bit-identical to the shared-memory
  /// engine's at any machine count.
  engine::ExecutionPolicy search;

  std::uint64_t seed = 1;  // randomized-mode master seed
};

struct SolveResult {
  Coloring coloring;
  mpc::Ledger ledger;
  bool valid = false;

  // Attribution.
  std::uint64_t colored_middle = 0;
  std::uint64_t colored_low_degree = 0;
  std::uint64_t colored_greedy = 0;  // final Theorem-12 tail
  std::uint64_t partition_levels = 0;
  std::uint64_t middle_passes_run = 0;
  std::uint64_t partition_degree_violations = 0;
  std::uint64_t partition_palette_violations = 0;
  std::vector<hknt::MiddleReport> middle_reports;
  /// Aggregate engine accounting across every seed/hash search the run
  /// performed (Lemma-10 procedures, partition hash selection,
  /// low-degree trials).
  engine::SearchStats seed_search;
};

SolveResult solve_d1lc(const D1lcInstance& inst, const SolverOptions& opt);

/// The Algorithm-10 stage alone (exposed for tests/benches): runs
/// ColorMiddle passes + low-degree finish on one instance, writing into
/// a fresh coloring. Used internally by solve_d1lc for each bin.
void mid_degree_color(const D1lcInstance& inst, const SolverOptions& opt,
                      mpc::CostModel& cost, Coloring& out,
                      SolveResult& agg);

}  // namespace pdc::d1lc
