#pragma once
// Public facade: deterministic (Theorem 1) and randomized (Lemma 4)
// D1LC in simulated sublinear-space MPC.
//
// Deterministic pipeline (LowSpaceColorReduce, Algorithm 11):
//   * while Δ exceeds the mid-degree cap (the n^{7δ} / sqrt(s) analog),
//     LowSpacePartition splits the instance into bins with
//     deterministically selected hashes (Lemma 23) — bins are solved
//     with parallel-round accounting, the unrestricted last bin and
//     G_mid afterwards;
//   * mid-degree instances run DerandomizedMidDegreeColor
//     (Algorithm 10): ColorMiddle passes under the Lemma-10/Theorem-12
//     machinery, recursing on deferred nodes via self-reducibility;
//   * the low-degree residue is finished by the deterministic
//     low-degree solver (Lemma 14 role).
//
// Randomized mode runs the same structure with true randomness and no
// deferral (failures simply retry / fall through), reproducing Lemma 4.

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdc/d1lc/low_degree.hpp"
#include "pdc/d1lc/partition.hpp"
#include "pdc/engine/seed_search.hpp"
#include "pdc/hknt/color_middle.hpp"
#include "pdc/mpc/ledger.hpp"

namespace pdc::d1lc {

enum class Mode { kDeterministic, kRandomized };

struct SolverOptions {
  Mode mode = Mode::kDeterministic;

  // MPC geometry (DESIGN.md §5 explains the laptop-scale calibration).
  double phi = 0.75;
  double space_headroom = 8.0;

  // Partition recursion.
  double delta = 0.25;
  std::uint32_t mid_degree_cap = 0;  // 0 => sqrt(s) from the MPC config
  int partition_family_log2 = 7;

  // Mid-degree (HKNT) machinery.
  hknt::HkntConfig hknt;
  derand::Lemma10Options l10;  // seed_bits / strategy / budgets
  int middle_passes = 2;       // Theorem-12 recursion depth r

  // Low-degree finish.
  int low_degree_family_log2 = 8;

  /// How the partition h1/h2 and low-degree trial searches execute
  /// (the Lemma-10 searches carry their own policy in `l10`): backend
  /// (kSharedMemory / kSharded / kAuto), cluster, engine options. With
  /// kSharded every totals pass runs as capacity-checked rounds on the
  /// cluster — machines evaluate their shards' analytic closed forms
  /// and converge-cast the per-candidate partials. Selections (and
  /// hence the coloring) are bit-identical to the shared-memory
  /// engine's at any machine count.
  engine::ExecutionPolicy search;

  std::uint64_t seed = 1;  // randomized-mode master seed
};

struct SolveResult {
  Coloring coloring;
  mpc::Ledger ledger;
  bool valid = false;

  // Attribution.
  std::uint64_t colored_middle = 0;
  std::uint64_t colored_low_degree = 0;
  std::uint64_t colored_greedy = 0;  // final Theorem-12 tail
  std::uint64_t partition_levels = 0;
  std::uint64_t middle_passes_run = 0;
  std::uint64_t partition_degree_violations = 0;
  std::uint64_t partition_palette_violations = 0;
  std::vector<hknt::MiddleReport> middle_reports;
  /// Aggregate engine accounting across every seed/hash search the run
  /// performed (Lemma-10 procedures, partition hash selection,
  /// low-degree trials).
  engine::SearchStats seed_search;
};

SolveResult solve_d1lc(const D1lcInstance& inst, const SolverOptions& opt);

/// The Algorithm-10 stage alone (exposed for tests/benches): runs
/// ColorMiddle passes + low-degree finish on one instance, writing into
/// a fresh coloring. Used internally by solve_d1lc for each bin.
void mid_degree_color(const D1lcInstance& inst, const SolverOptions& opt,
                      mpc::CostModel& cost, Coloring& out,
                      SolveResult& agg);

// ---------------------------------------------------------------------
// Region-constrained solving — the incremental-recoloring entry point
// (pdc::service's damaged-region recolor rides this).
// ---------------------------------------------------------------------

/// The residual instance induced by `region` inside a larger partially
/// colored graph: the region's induced subgraph, with each region
/// node's palette minus the colors held by its colored neighbors
/// OUTSIDE the region (the fixed exterior). Self-reducibility keeps
/// this a valid D1LC instance: a node loses at most one palette color
/// per colored exterior neighbor, so |Ψ'(v)| >= deg_region(v) + 1
/// survives from |Ψ(v)| >= deg(v) + 1.
struct RegionInstance {
  D1lcInstance instance;          // local ids = positions in to_parent
  std::vector<NodeId> to_parent;  // sorted ascending parent ids
};

/// Builds the region instance from any adjacency source exposing
/// `neighbors(v)` as a sorted span — pdc::Graph or the service layer's
/// DynamicGraph — and a palette callback `palette_of(v)` returning a
/// sorted span of colors. Colors of region nodes in `coloring` are
/// ignored (the region is being recolored); only colored exterior
/// neighbors constrain. `region` may arrive unsorted; duplicates are
/// rejected.
template <class GraphLike, class PaletteFn>
RegionInstance build_region_instance(const GraphLike& g,
                                     PaletteFn&& palette_of,
                                     std::span<const Color> coloring,
                                     std::span<const NodeId> region) {
  RegionInstance out;
  out.to_parent.assign(region.begin(), region.end());
  std::sort(out.to_parent.begin(), out.to_parent.end());
  PDC_CHECK_MSG(std::adjacent_find(out.to_parent.begin(),
                                   out.to_parent.end()) == out.to_parent.end(),
                "duplicate node in region");
  const NodeId n_local = static_cast<NodeId>(out.to_parent.size());
  std::unordered_map<NodeId, NodeId> local;
  local.reserve(out.to_parent.size());
  for (NodeId i = 0; i < n_local; ++i) local.emplace(out.to_parent[i], i);

  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<std::vector<Color>> lists(n_local);
  std::vector<Color> blocked;
  for (NodeId i = 0; i < n_local; ++i) {
    const NodeId v = out.to_parent[i];
    blocked.clear();
    for (NodeId u : g.neighbors(v)) {
      auto it = local.find(u);
      if (it != local.end()) {
        if (v < u) edges.emplace_back(i, it->second);
      } else if (coloring[u] != kNoColor) {
        blocked.push_back(coloring[u]);
      }
    }
    std::sort(blocked.begin(), blocked.end());
    auto pal = palette_of(v);
    std::vector<Color>& keep = lists[i];
    keep.reserve(pal.size());
    for (Color c : pal)
      if (!std::binary_search(blocked.begin(), blocked.end(), c))
        keep.push_back(c);
  }
  out.instance.graph = Graph::from_edges(n_local, std::move(edges));
  out.instance.palettes = PaletteSet::from_lists(std::move(lists));
  return out;
}

struct RegionSolveResult {
  /// The solve over the region instance (local ids; `coloring` already
  /// holds the lifted colors on return).
  SolveResult solve;
  std::vector<NodeId> region;  // sorted parent ids
};

/// Recolors exactly `region` in place: the exterior coloring is fixed,
/// region nodes are re-solved from their exterior-restricted palettes
/// with the full deterministic pipeline (same SolverOptions —
/// ExecutionPolicy, Lemma-10 strategy, backend resolution — as a
/// whole-graph solve), and the result is lifted back into `coloring`.
RegionSolveResult solve_region(const Graph& g, const PaletteSet& palettes,
                               std::span<const NodeId> region,
                               Coloring& coloring, const SolverOptions& opt);

}  // namespace pdc::d1lc
