#include "pdc/d1lc/partition_oracles.hpp"

#include <algorithm>

#include "pdc/util/simd.hpp"

namespace pdc::d1lc {

// ---- H1DegreeOracle. ----

thread_local std::vector<std::uint64_t> H1DegreeOracle::my_bin_;
thread_local std::vector<std::uint32_t> H1DegreeOracle::dprime_;
thread_local util::aligned_vector<std::uint64_t> H1DegreeOracle::mine_batch_;
thread_local util::aligned_vector<std::uint32_t> H1DegreeOracle::dprime_batch_;

H1DegreeOracle::H1DegreeOracle(const Graph& g, const std::vector<NodeId>& high,
                               const EnumerablePairwiseFamily& family,
                               std::uint32_t nbins,
                               std::uint32_t mid_degree_cap)
    : g_(&g), high_(&high), family_(&family), nbins_(nbins),
      mid_degree_cap_(mid_degree_cap) {}

double H1DegreeOracle::bound_of(std::size_t item) const {
  const NodeId v = (*high_)[item];
  return std::max(1.0,
                  2.0 * static_cast<double>(g_->degree(v)) / nbins_);
}

std::size_t H1DegreeOracle::junta_size(std::size_t item) const {
  // v itself plus its high-degree neighbors (read via begin_search's
  // CSR, which the prefix walk prepares before asking).
  return 1 + (high_nbr_off_[item + 1] - high_nbr_off_[item]);
}

std::optional<double> H1DegreeOracle::constant_cost(std::size_t item) const {
  // d'(v) can never exceed the high-degree neighbor count; when the
  // bound is out of reach the item violates under no member.
  const double max_dprime = static_cast<double>(high_nbr_off_[item + 1] -
                                                high_nbr_off_[item]);
  if (max_dprime < bound_[item]) return 0.0;
  return std::nullopt;
}

void H1DegreeOracle::begin_search(std::uint64_t num_seeds) {
  const std::size_t items = high_->size();
  high_nbr_off_.assign(items + 1, 0);
  bound_.resize(items);
  for (std::size_t i = 0; i < items; ++i) {
    const NodeId v = (*high_)[i];
    bound_[i] = bound_of(i);
    std::size_t cnt = 0;
    for (NodeId u : g_->neighbors(v)) cnt += (g_->degree(u) > mid_degree_cap_);
    high_nbr_off_[i + 1] = high_nbr_off_[i] + cnt;
  }
  high_nbrs_.resize(high_nbr_off_.back());
  for (std::size_t i = 0; i < items; ++i) {
    std::size_t at = high_nbr_off_[i];
    for (NodeId u : g_->neighbors((*high_)[i]))
      if (g_->degree(u) > mid_degree_cap_) high_nbrs_[at++] = u;
  }
  family_->params_table(num_seeds, pa_, pb_);
}

void H1DegreeOracle::end_search() {
  high_nbr_off_.clear();
  high_nbrs_.clear();
  bound_.clear();
  pa_.clear();
  pb_.clear();
}

void H1DegreeOracle::eval_analytic(std::uint64_t first, std::size_t count,
                                   std::size_t item, double* sink) const {
  const NodeId v = (*high_)[item];
  const double bound = bound_[item];
  const std::size_t lo = high_nbr_off_[item];
  const std::size_t hi = high_nbr_off_[item + 1];
  for (std::size_t j = 0; j < count; ++j) {
    auto [a, b] = family_->params(first + j);
    const std::uint64_t mine =
        EnumerablePairwiseFamily::eval_params(a, b, v, nbins_);
    std::uint32_t dprime = 0;
    for (std::size_t e = lo; e < hi; ++e) {
      dprime += (EnumerablePairwiseFamily::eval_params(a, b, high_nbrs_[e],
                                                       nbins_) == mine);
    }
    if (static_cast<double>(dprime) >= bound) sink[j] += 1.0;
  }
}

void H1DegreeOracle::eval_members(std::uint64_t first, std::size_t count,
                                  std::size_t item, double* sink) const {
  if (pa_.empty() || first + count > pa_.size()) {
    eval_analytic(first, count, item, sink);
    return;
  }
  const NodeId v = (*high_)[item];
  const double bound = bound_[item];
  const std::size_t lo = high_nbr_off_[item];
  const std::size_t hi = high_nbr_off_[item + 1];
  const std::uint64_t* a = pa_.data() + first;
  const std::uint64_t* b = pb_.data() + first;
  mine_batch_.resize(count);
  dprime_batch_.assign(count, 0);
  util::simd::bucket_span(a, b, count, util::simd::HashPoint(v, nbins_),
                          mine_batch_.data());
  for (std::size_t e = lo; e < hi; ++e) {
    util::simd::bucket_match_span(a, b, count,
                                  util::simd::HashPoint(high_nbrs_[e], nbins_),
                                  mine_batch_.data(), dprime_batch_.data());
  }
  for (std::size_t j = 0; j < count; ++j) {
    if (static_cast<double>(dprime_batch_[j]) >= bound) sink[j] += 1.0;
  }
}

void H1DegreeOracle::eval_batch(std::span<const std::uint64_t> seeds,
                                std::size_t item, double* sink) const {
  const NodeId v = (*high_)[item];
  const double bound = bound_of(item);
  my_bin_.resize(seeds.size());
  dprime_.assign(seeds.size(), 0);
  for (std::size_t k = 0; k < seeds.size(); ++k)
    my_bin_[k] = family_->eval(seeds[k], v, nbins_);
  for (NodeId u : g_->neighbors(v)) {
    if (g_->degree(u) <= mid_degree_cap_) continue;
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      if (family_->eval(seeds[k], u, nbins_) == my_bin_[k]) ++dprime_[k];
    }
  }
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    if (static_cast<double>(dprime_[k]) >= bound) sink[k] += 1.0;
  }
}

// ---- H2PaletteOracle. ----

thread_local std::vector<std::uint32_t> H2PaletteOracle::pprime_;
thread_local util::aligned_vector<std::uint32_t> H2PaletteOracle::pprime_batch_;

H2PaletteOracle::H2PaletteOracle(const Graph& g, const D1lcInstance& inst,
                                 const std::vector<NodeId>& high,
                                 const std::vector<std::uint32_t>& bin_of,
                                 const EnumerablePairwiseFamily& family,
                                 std::uint32_t nbins, std::uint32_t color_bins)
    : g_(&g), inst_(&inst), high_(&high), bin_of_(&bin_of),
      family_(&family), nbins_(nbins), color_bins_(color_bins) {}

std::size_t H2PaletteOracle::junta_size(std::size_t item) const {
  return inst_->palettes.palette((*high_)[item]).size();
}

std::optional<double> H2PaletteOracle::constant_cost(std::size_t item) const {
  const std::uint32_t b = item_bin_[item];
  if (b + 1 >= nbins_) return 0.0;  // last bin keeps everything
  // p'(v) <= |palette(v)| for every member; once the bin-degree reaches
  // the palette size the item violates under every member.
  if (item_dprime_[item] >= junta_size(item)) return 1.0;
  return std::nullopt;
}

void H2PaletteOracle::begin_search(std::uint64_t num_seeds) {
  const std::size_t items = high_->size();
  item_bin_.resize(items);
  item_dprime_.assign(items, 0);
  for (std::size_t i = 0; i < items; ++i) {
    const NodeId v = (*high_)[i];
    const std::uint32_t b = (*bin_of_)[v];
    item_bin_[i] = b;
    if (b + 1 >= nbins_) continue;  // last bin keeps everything
    std::uint32_t dprime = 0;
    for (NodeId u : g_->neighbors(v))
      if ((*bin_of_)[u] == b) ++dprime;
    item_dprime_[i] = dprime;
  }
  family_->params_table(num_seeds, pa_, pb_);
}

void H2PaletteOracle::end_search() {
  item_bin_.clear();
  item_dprime_.clear();
  pa_.clear();
  pb_.clear();
}

void H2PaletteOracle::eval_analytic(std::uint64_t first, std::size_t count,
                                    std::size_t item, double* sink) const {
  const NodeId v = (*high_)[item];
  const std::uint32_t b = item_bin_[item];
  if (b + 1 >= nbins_) return;  // last bin keeps everything
  const std::uint32_t dprime = item_dprime_[item];
  for (std::size_t j = 0; j < count; ++j) {
    auto [pa, pb] = family_->params(first + j);
    std::uint32_t pprime = 0;
    for (Color c : inst_->palettes.palette(v)) {
      pprime += (EnumerablePairwiseFamily::eval_params(
                     pa, pb, static_cast<std::uint64_t>(c), color_bins_) == b);
    }
    if (pprime <= dprime) sink[j] += 1.0;
  }
}

void H2PaletteOracle::eval_members(std::uint64_t first, std::size_t count,
                                   std::size_t item, double* sink) const {
  if (pa_.empty() || first + count > pa_.size()) {
    eval_analytic(first, count, item, sink);
    return;
  }
  const NodeId v = (*high_)[item];
  const std::uint32_t b = item_bin_[item];
  if (b + 1 >= nbins_) return;  // last bin keeps everything
  const std::uint32_t dprime = item_dprime_[item];
  const std::uint64_t* pa = pa_.data() + first;
  const std::uint64_t* pb = pb_.data() + first;
  pprime_batch_.assign(count, 0);
  for (Color c : inst_->palettes.palette(v)) {
    util::simd::bucket_count_span(
        pa, pb, count,
        util::simd::HashPoint(static_cast<std::uint64_t>(c), color_bins_), b,
        pprime_batch_.data());
  }
  for (std::size_t j = 0; j < count; ++j) {
    if (pprime_batch_[j] <= dprime) sink[j] += 1.0;
  }
}

void H2PaletteOracle::begin_sweep(std::span<const std::uint64_t> seeds) {
  a_.resize(seeds.size());
  b_.resize(seeds.size());
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    auto [a, b] = family_->params(seeds[k]);
    a_[k] = a;
    b_[k] = b;
  }
}

void H2PaletteOracle::eval_batch(std::span<const std::uint64_t> seeds,
                                 std::size_t item, double* sink) const {
  // Block-stateful: a_[k]/b_[k] are the params of seeds[k].
  const NodeId v = (*high_)[item];
  const std::uint32_t b = (*bin_of_)[v];
  if (b + 1 >= nbins_) return;  // last bin keeps everything
  std::uint32_t dprime = 0;
  for (NodeId u : g_->neighbors(v))
    if ((*bin_of_)[u] == b) ++dprime;
  pprime_.assign(seeds.size(), 0);
  for (Color c : inst_->palettes.palette(v)) {
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      if (EnumerablePairwiseFamily::eval_params(
              a_[k], b_[k], static_cast<std::uint64_t>(c), color_bins_) == b)
        ++pprime_[k];
    }
  }
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    if (pprime_[k] <= dprime) sink[k] += 1.0;
  }
}

}  // namespace pdc::d1lc
