#include "pdc/d1lc/solver.hpp"

#include <algorithm>
#include <cmath>

#include "pdc/obs/obs.hpp"
#include "pdc/util/parallel.hpp"
#include "pdc/util/rng.hpp"

namespace pdc::d1lc {

namespace {

/// Degree cap below which instances go straight to the HKNT machinery.
std::uint32_t effective_mid_cap(const SolverOptions& opt,
                                const mpc::Config& mcfg) {
  if (opt.mid_degree_cap) return opt.mid_degree_cap;
  return std::max<std::uint32_t>(
      8, static_cast<std::uint32_t>(
             std::sqrt(static_cast<double>(mcfg.local_space_words))));
}

derand::Lemma10Options mode_l10(const SolverOptions& opt,
                                std::uint64_t pass_salt) {
  derand::Lemma10Options l10 = opt.l10;
  if (opt.mode == Mode::kRandomized) {
    l10.strategy = derand::SeedStrategy::kTrueRandom;
    l10.defer_failures = false;
    l10.true_random_seed = hash_combine(opt.seed, pass_salt);
  } else {
    l10.defer_failures = true;
    l10.salt = hash_combine(l10.salt, pass_salt);
  }
  return l10;
}

struct RecursionContext {
  const SolverOptions* opt;
  SolveResult* agg;
};

void solve_rec(const D1lcInstance& inst, const SolverOptions& opt,
               mpc::CostModel& cost, Coloring& out, SolveResult& agg,
               int level);

}  // namespace

void mid_degree_color(const D1lcInstance& inst, const SolverOptions& opt,
                      mpc::CostModel& cost, Coloring& out,
                      SolveResult& agg) {
  PDC_CHECK(out.size() == inst.graph.num_nodes());

  // Theorem-12 recursion: ColorMiddle on the live instance, then rebuild
  // the residual (deferred + failed) as a fresh D1LC instance and repeat.
  D1lcInstance current = inst;
  std::vector<NodeId> to_root(inst.graph.num_nodes());
  for (NodeId v = 0; v < inst.graph.num_nodes(); ++v) to_root[v] = v;

  for (int pass = 0; pass < opt.middle_passes; ++pass) {
    if (current.graph.num_nodes() == 0) break;
    const std::uint32_t low_cap = opt.hknt.low_degree(inst.graph.num_nodes());
    if (current.graph.max_degree() < low_cap) break;  // low-degree finish

    obs::Span pass_span("d1lc.color_middle", obs::SpanKind::kPhase);
    if (pass_span.active()) {
      pass_span.tag_u64("pass", static_cast<std::uint64_t>(pass));
      pass_span.tag_u64("nodes", current.graph.num_nodes());
    }
    cost.ledger().begin_phase("color-middle");
    derand::ColoringState state(current.graph, current.palettes);
    hknt::MiddleOptions mo;
    mo.cfg = opt.hknt;
    mo.l10 = mode_l10(opt, static_cast<std::uint64_t>(pass) + 17);
    hknt::MiddleReport rep =
        hknt::color_middle(state, current, mo, &cost);
    for (const auto& step : rep.steps) agg.seed_search.absorb(step.search);
    agg.middle_reports.push_back(rep);
    ++agg.middle_passes_run;

    // Lift committed colors to the root coloring.
    std::uint64_t colored_now = 0;
    for (NodeId v = 0; v < current.graph.num_nodes(); ++v) {
      if (state.is_colored(v)) {
        out[to_root[v]] = state.color(v);
        ++colored_now;
      }
    }
    agg.colored_middle += colored_now;

    // Self-reducibility (Definition 11): residual over uncolored nodes.
    ResidualInstance res =
        residual(current.graph, current.palettes, state.colors());
    std::vector<NodeId> next_to_root(res.to_parent.size());
    for (std::size_t i = 0; i < res.to_parent.size(); ++i)
      next_to_root[i] = to_root[res.to_parent[i]];
    current = std::move(res.instance);
    to_root = std::move(next_to_root);
    if (colored_now == 0) break;  // no progress; hand off to low-degree
  }

  // Low-degree deterministic finish (Lemma 14 role). Works at any
  // degree; the pipeline arranges for the residue to be low-degree.
  if (current.graph.num_nodes() > 0) {
    obs::Span ld_span("d1lc.low_degree", obs::SpanKind::kPhase);
    if (ld_span.active()) ld_span.tag_u64("nodes", current.graph.num_nodes());
    cost.ledger().begin_phase("low-degree");
    derand::ColoringState state(current.graph, current.palettes);
    LowDegreeReport ld = low_degree_color(
        state, &cost, opt.low_degree_family_log2,
        hash_combine(0xC0FFEE, inst.graph.num_nodes()),
        opt.search);
    agg.colored_low_degree += ld.colored;
    agg.seed_search.absorb(ld.search);
    for (NodeId v = 0; v < current.graph.num_nodes(); ++v) {
      if (state.is_colored(v)) out[to_root[v]] = state.color(v);
    }
  }
}

namespace {

void solve_rec(const D1lcInstance& inst, const SolverOptions& opt,
               mpc::CostModel& cost, Coloring& out, SolveResult& agg,
               int level) {
  if (inst.graph.num_nodes() == 0) return;
  const std::uint32_t mid_cap = effective_mid_cap(opt, cost.config());

  if (inst.graph.max_degree() <= mid_cap) {
    mid_degree_color(inst, opt, cost, out, agg);
    return;
  }

  // LowSpacePartition + LowSpaceColorReduce (Algorithms 11/12). The
  // phase span covers the partition computation only, not the bin
  // recursion below (the children open their own phase spans).
  cost.ledger().begin_phase("partition(level " + std::to_string(level) + ")");
  PartitionOptions popt;
  popt.delta = opt.delta;
  popt.mid_degree_cap = mid_cap;
  popt.family_log2 = opt.partition_family_log2;
  popt.salt = hash_combine(0xBEEF, level);
  popt.search = opt.search;
  Partition part = [&] {
    obs::Span part_span("d1lc.partition", obs::SpanKind::kPhase);
    if (part_span.active()) {
      part_span.tag_u64("level", static_cast<std::uint64_t>(level));
      part_span.tag_u64("nodes", inst.graph.num_nodes());
    }
    return low_space_partition(inst, popt, &cost);
  }();
  agg.partition_levels = std::max<std::uint64_t>(
      agg.partition_levels, static_cast<std::uint64_t>(level) + 1);
  agg.partition_degree_violations += part.degree_violations;
  agg.partition_palette_violations += part.palette_violations;
  agg.seed_search.absorb(part.search);

  // Bins 0..nbins-2 run concurrently in the model: account their rounds
  // as a parallel group (max of the children).
  {
    std::vector<mpc::Ledger> child_ledgers;
    for (std::uint32_t b = 0; b + 1 < part.nbins; ++b) {
      BinInstance bi = build_bin_instance(inst, part, b, out);
      if (bi.instance.graph.num_nodes() == 0) continue;
      mpc::Ledger child;
      mpc::CostModel child_cost(cost.config(), child);
      Coloring sub(bi.instance.graph.num_nodes(), kNoColor);
      solve_rec(bi.instance, opt, child_cost, sub, agg, level + 1);
      lift_coloring(bi.to_parent, sub, out);
      child_ledgers.push_back(std::move(child));
    }
    cost.ledger().absorb_parallel(child_ledgers);
  }

  // Last bin: palettes updated against the committed bins, then solved.
  {
    BinInstance bi = build_bin_instance(inst, part, part.nbins - 1, out);
    if (bi.instance.graph.num_nodes() > 0) {
      Coloring sub(bi.instance.graph.num_nodes(), kNoColor);
      solve_rec(bi.instance, opt, cost, sub, agg, level + 1);
      lift_coloring(bi.to_parent, sub, out);
    }
  }

  // G_mid: low-degree by construction; update palettes, then solve.
  {
    BinInstance bi = build_bin_instance(inst, part, Partition::kMid, out);
    if (bi.instance.graph.num_nodes() > 0) {
      Coloring sub(bi.instance.graph.num_nodes(), kNoColor);
      mid_degree_color(bi.instance, opt, cost, sub, agg);
      lift_coloring(bi.to_parent, sub, out);
    }
  }
}

}  // namespace

SolveResult solve_d1lc(const D1lcInstance& inst, const SolverOptions& opt) {
  PDC_CHECK_MSG(inst.valid(), "input is not a valid D1LC instance");
  obs::Span solve_span("d1lc.solve", obs::SpanKind::kPhase);
  if (solve_span.active()) {
    solve_span.tag_u64("nodes", inst.graph.num_nodes());
    solve_span.tag_u64("edges", inst.graph.num_edges());
    solve_span.tag_u64("max_degree", inst.graph.max_degree());
  }
  SolveResult result;
  result.coloring.assign(inst.graph.num_nodes(), kNoColor);

  const std::uint64_t input_words =
      inst.graph.num_edges() * 2 + inst.palettes.total_size();
  mpc::Config mcfg = mpc::Config::sublinear(
      inst.graph.num_nodes(), opt.phi, input_words, opt.space_headroom);
  mpc::CostModel cost(mcfg, result.ledger);

  solve_rec(inst, opt, cost, result.coloring, result, 0);

  // Safety net: anything still uncolored (empty-pipeline corner cases)
  // is completed greedily and attributed.
  std::uint64_t missing = 0;
  for (NodeId v = 0; v < inst.graph.num_nodes(); ++v)
    if (result.coloring[v] == kNoColor) ++missing;
  if (missing > 0) {
    derand::ColoringState state(inst.graph, inst.palettes);
    for (NodeId v = 0; v < inst.graph.num_nodes(); ++v)
      if (result.coloring[v] != kNoColor)
        state.set_color(v, result.coloring[v]);
    result.colored_greedy += derand::greedy_complete(state, &cost);
    result.coloring = state.colors();
  }

  result.valid = check_coloring(inst, result.coloring).complete_proper();
  return result;
}

RegionSolveResult solve_region(const Graph& g, const PaletteSet& palettes,
                               std::span<const NodeId> region,
                               Coloring& coloring, const SolverOptions& opt) {
  obs::Span span("d1lc.solve_region", obs::SpanKind::kPhase);
  if (span.active()) {
    span.tag_u64("region", region.size());
    span.tag_u64("nodes", g.num_nodes());
  }
  RegionSolveResult out;
  RegionInstance ri = build_region_instance(
      g, [&](NodeId v) { return palettes.palette(v); }, coloring, region);
  out.solve = solve_d1lc(ri.instance, opt);
  lift_coloring(ri.to_parent, out.solve.coloring, coloring);
  out.region = std::move(ri.to_parent);
  return out;
}

}  // namespace pdc::d1lc
