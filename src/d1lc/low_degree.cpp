#include "pdc/d1lc/low_degree.hpp"

#include <algorithm>
#include <span>

#include "pdc/engine/seed_search.hpp"
#include "pdc/util/hashing.hpp"
#include "pdc/util/parallel.hpp"

namespace pdc::d1lc {

using derand::ColoringState;

namespace {

/// Simulate one trial under family member `idx`: every todo-node picks
/// available[h(v) mod |available|]; keeps it if no todo-neighbor picked
/// the same. Returns number colored (and optionally the picks).
std::uint64_t trial(const ColoringState& state,
                    const std::vector<NodeId>& todo,
                    const std::vector<std::uint8_t>& in_todo,
                    const EnumerablePairwiseFamily& family, std::uint64_t idx,
                    std::vector<Color>* out_picks) {
  const Graph& g = state.graph();
  std::vector<Color> pick(state.num_nodes(), kNoColor);
  parallel_for(todo.size(), [&](std::size_t i) {
    NodeId v = todo[i];
    auto avail = state.available_colors(v);
    if (avail.empty()) return;
    pick[v] = avail[family.eval(idx, v, avail.size())];
  });
  std::uint64_t colored = 0;
  std::vector<std::uint8_t> keep(state.num_nodes(), 0);
  for (NodeId v : todo) {
    if (pick[v] == kNoColor) continue;
    bool clash = false;
    for (NodeId u : g.neighbors(v)) {
      if (in_todo[u] && pick[u] == pick[v]) {
        clash = true;
        break;
      }
    }
    if (!clash) {
      keep[v] = 1;
      ++colored;
    }
  }
  if (out_picks) {
    out_picks->assign(state.num_nodes(), kNoColor);
    for (NodeId v : todo)
      if (keep[v]) (*out_picks)[v] = pick[v];
  }
  return colored;
}

/// Decomposed trial objective: item = todo node, contribution = -1 when
/// the node keeps its picked color under family member `idx` (the
/// selector minimizes, so more colored = smaller total). begin_sweep
/// computes each node's availability list once per block and indexes it
/// per candidate — the scalar route rebuilt every list once per
/// candidate — and eval_batch resolves clashes for the whole block in
/// one pass over v's neighbors.
class TrialOracle final : public engine::CostOracle {
 public:
  TrialOracle(const ColoringState& state, const std::vector<NodeId>& todo,
              const std::vector<std::uint8_t>& in_todo,
              const EnumerablePairwiseFamily& family)
      : state_(&state), todo_(&todo), in_todo_(&in_todo), family_(&family) {}

  std::size_t item_count() const override { return todo_->size(); }

  void begin_sweep(std::span<const std::uint64_t> seeds) override {
    seeds_.assign(seeds.begin(), seeds.end());
    picks_.assign(seeds.size(),
                  std::vector<Color>(state_->num_nodes(), kNoColor));
    parallel_for(todo_->size(), [&](std::size_t i) {
      const NodeId v = (*todo_)[i];
      auto avail = state_->available_colors(v);
      if (avail.empty()) return;
      for (std::size_t k = 0; k < seeds_.size(); ++k)
        picks_[k][v] = avail[family_->eval(seeds_[k], v, avail.size())];
    });
  }

  void end_sweep() override {
    picks_.clear();
    seeds_.clear();
  }

  void eval_batch(std::span<const std::uint64_t> seeds, std::size_t item,
                  double* sink) const override {
    for (std::size_t k = 0; k < seeds.size(); ++k)
      add_contribution(k, item, sink + k);
  }

 private:
  void add_contribution(std::size_t k, std::size_t item,
                        double* sink) const {
    const NodeId v = (*todo_)[item];
    const Color mine = picks_[k][v];
    if (mine == kNoColor) return;
    for (NodeId u : state_->graph().neighbors(v)) {
      if ((*in_todo_)[u] && picks_[k][u] == mine) return;  // clash
    }
    *sink -= 1.0;
  }

  const ColoringState* state_;
  const std::vector<NodeId>* todo_;
  const std::vector<std::uint8_t>* in_todo_;
  const EnumerablePairwiseFamily* family_;
  std::vector<std::uint64_t> seeds_;
  std::vector<std::vector<Color>> picks_;
};

}  // namespace

LowDegreeReport low_degree_color(derand::ColoringState& state,
                                 mpc::CostModel* cost, int family_log2,
                                 std::uint64_t salt) {
  LowDegreeReport rep;
  const NodeId n = state.num_nodes();

  while (true) {
    std::vector<NodeId> todo;
    std::vector<std::uint8_t> in_todo(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (!state.is_colored(v)) {
        todo.push_back(v);
        in_todo[v] = 1;
      }
    }
    if (todo.empty()) break;

    EnumerablePairwiseFamily family(hash_combine(salt, rep.phases),
                                    family_log2);
    TrialOracle oracle(state, todo, in_todo, family);
    engine::SeedSearch search(oracle);
    engine::Selection sc = search.exhaustive(family.size());
    rep.search.absorb(sc.stats);
    if (cost) {
      cost->charge_conditional_expectation(family_log2);
      cost->charge_local_round(state.graph().max_degree());
    }

    std::vector<Color> picks;
    std::uint64_t colored =
        trial(state, todo, in_todo, family, sc.seed, &picks);
    if (colored == 0) {
      // Guaranteed progress: greedily color the first todo node.
      NodeId v = todo.front();
      auto avail = state.available_colors(v);
      PDC_CHECK_MSG(!avail.empty(), "low-degree solver: empty palette");
      state.set_color(v, avail.front());
      ++rep.fallback_steps;
      ++rep.colored;
      if (cost) cost->charge_local_round(state.graph().max_degree());
    } else {
      for (NodeId v : todo) {
        if (picks[v] != kNoColor) state.set_color(v, picks[v]);
      }
      rep.colored += colored;
    }
    ++rep.phases;
  }
  return rep;
}

}  // namespace pdc::d1lc
