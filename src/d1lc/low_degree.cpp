#include "pdc/d1lc/low_degree.hpp"

#include <algorithm>
#include <span>

#include "pdc/d1lc/trial_oracle.hpp"
#include "pdc/engine/search.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/util/hashing.hpp"
#include "pdc/util/parallel.hpp"

namespace pdc::d1lc {

using derand::ColoringState;

namespace {

/// Execute one trial under family member `idx`: every todo-node picks
/// available[h(v) mod |available|]; keeps it if no todo-neighbor picked
/// the same. Returns number colored (and optionally the picks). Reads
/// the availability CSR the seed selection scored, so the committed
/// trial is exactly the searched objective by construction.
std::uint64_t trial(const ColoringState& state,
                    const std::vector<NodeId>& todo,
                    const std::vector<std::uint8_t>& in_todo,
                    const AvailLists& avail_lists,
                    const EnumerablePairwiseFamily& family, std::uint64_t idx,
                    std::vector<Color>* out_picks) {
  const Graph& g = state.graph();
  std::vector<Color> pick(state.num_nodes(), kNoColor);
  parallel_for(todo.size(), [&](std::size_t i) {
    NodeId v = todo[i];
    auto avail = avail_lists.of(v);
    if (avail.empty()) return;
    pick[v] = avail[family.eval(idx, v, avail.size())];
  });
  std::uint64_t colored = 0;
  std::vector<std::uint8_t> keep(state.num_nodes(), 0);
  for (NodeId v : todo) {
    if (pick[v] == kNoColor) continue;
    bool clash = false;
    for (NodeId u : g.neighbors(v)) {
      if (in_todo[u] && pick[u] == pick[v]) {
        clash = true;
        break;
      }
    }
    if (!clash) {
      keep[v] = 1;
      ++colored;
    }
  }
  if (out_picks) {
    out_picks->assign(state.num_nodes(), kNoColor);
    for (NodeId v : todo)
      if (keep[v]) (*out_picks)[v] = pick[v];
  }
  return colored;
}

}  // namespace

LowDegreeReport low_degree_color(derand::ColoringState& state,
                                 mpc::CostModel* cost, int family_log2,
                                 std::uint64_t salt,
                                 const engine::ExecutionPolicy& policy) {
  LowDegreeReport rep;
  const NodeId n = state.num_nodes();

  while (true) {
    std::vector<NodeId> todo;
    std::vector<std::uint8_t> in_todo(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (!state.is_colored(v)) {
        todo.push_back(v);
        in_todo[v] = 1;
      }
    }
    if (todo.empty()) break;

    obs::Span trial_span("d1lc.low_degree.trial");
    if (trial_span.active()) {
      trial_span.tag_u64("phase", rep.phases);
      trial_span.tag_u64("todo", todo.size());
    }
    EnumerablePairwiseFamily family(hash_combine(salt, rep.phases),
                                    family_log2);
    AvailLists avail = AvailLists::from_state(state, todo);
    TrialOracle oracle(state.graph(), todo, in_todo, avail, family);
    engine::Selection sc = engine::search(
        oracle, engine::SearchRequest::exhaustive(family.size(), policy));
    rep.search.absorb(sc.stats);
    if (cost) {
      cost->charge_conditional_expectation(family_log2);
      cost->charge_local_round(state.graph().max_degree());
    }

    std::vector<Color> picks;
    std::uint64_t colored =
        trial(state, todo, in_todo, avail, family, sc.seed, &picks);
    if (colored == 0) {
      // Guaranteed progress: greedily color the first todo node.
      NodeId v = todo.front();
      auto avail = state.available_colors(v);
      PDC_CHECK_MSG(!avail.empty(), "low-degree solver: empty palette");
      state.set_color(v, avail.front());
      ++rep.fallback_steps;
      ++rep.colored;
      if (cost) cost->charge_local_round(state.graph().max_degree());
    } else {
      for (NodeId v : todo) {
        if (picks[v] != kNoColor) state.set_color(v, picks[v]);
      }
      rep.colored += colored;
    }
    ++rep.phases;
  }
  return rep;
}

}  // namespace pdc::d1lc
