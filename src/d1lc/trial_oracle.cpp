#include "pdc/d1lc/trial_oracle.hpp"

#include <algorithm>

#include "pdc/util/parallel.hpp"
#include "pdc/util/simd.hpp"

namespace pdc::d1lc {

thread_local util::aligned_vector<std::uint64_t> TrialOracle::bucket_batch_;
thread_local util::aligned_vector<Color> TrialOracle::mine_batch_;
thread_local util::aligned_vector<std::uint8_t> TrialOracle::clash_batch_;

namespace {

AvailLists pack_lists(const std::vector<std::vector<Color>>& lists) {
  const std::size_t n = lists.size();
  AvailLists out;
  out.offset.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v)
    out.offset[v + 1] = out.offset[v] + lists[v].size();
  out.colors.resize(out.offset.back());
  for (std::size_t v = 0; v < n; ++v)
    std::copy(lists[v].begin(), lists[v].end(),
              out.colors.begin() + static_cast<std::ptrdiff_t>(out.offset[v]));
  return out;
}

}  // namespace

std::vector<Color> trial_available_colors(const D1lcInstance& inst,
                                          const Coloring& coloring,
                                          NodeId v) {
  std::vector<Color> blocked;
  for (NodeId u : inst.graph.neighbors(v))
    if (coloring[u] != kNoColor) blocked.push_back(coloring[u]);
  std::sort(blocked.begin(), blocked.end());
  std::vector<Color> out;
  for (Color c : inst.palettes.palette(v))
    if (!std::binary_search(blocked.begin(), blocked.end(), c))
      out.push_back(c);
  return out;
}

AvailLists AvailLists::from_state(const derand::ColoringState& state,
                                  const std::vector<NodeId>& todo) {
  std::vector<std::vector<Color>> lists(state.num_nodes());
  parallel_for(todo.size(), [&](std::size_t i) {
    lists[todo[i]] = state.available_colors(todo[i]);
  });
  return pack_lists(lists);
}

AvailLists AvailLists::from_instance(const D1lcInstance& inst,
                                     const Coloring& coloring) {
  std::vector<std::vector<Color>> lists(inst.graph.num_nodes());
  parallel_for(inst.graph.num_nodes(), [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (coloring[v] != kNoColor) return;
    lists[v] = trial_available_colors(inst, coloring, v);
  });
  return pack_lists(lists);
}

TrialOracle::TrialOracle(const Graph& g, const std::vector<NodeId>& items,
                         const std::vector<std::uint8_t>& active,
                         const AvailLists& avail,
                         const EnumerablePairwiseFamily& family)
    : g_(&g), items_(&items), active_(&active), avail_(&avail),
      family_(&family) {
  // Exactness contract guard: the enumerating pick table covers items
  // only, so an active node outside `items` would give the analytic
  // and enumerating paths different clash sets.
  std::vector<std::uint8_t> is_item(g.num_nodes(), 0);
  for (NodeId v : items) is_item[v] = 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    PDC_CHECK_MSG(!active[v] || is_item[v],
                  "TrialOracle: active node " << v << " not in items");
}

std::size_t TrialOracle::junta_size(std::size_t item) const {
  const NodeId v = (*items_)[item];
  if (!(*active_)[v] || avail_->of(v).empty()) return 0;
  std::size_t junta = 1;  // v's own pick
  for (NodeId u : g_->neighbors(v)) junta += ((*active_)[u] != 0);
  return junta;
}

std::optional<double> TrialOracle::constant_cost(std::size_t item) const {
  const NodeId v = (*items_)[item];
  if (!(*active_)[v] || avail_->of(v).empty()) return 0.0;
  return std::nullopt;
}

void TrialOracle::begin_search(std::uint64_t num_seeds) {
  family_->params_table(num_seeds, pa_, pb_);
}

void TrialOracle::end_search() {
  pa_.clear();
  pb_.clear();
}

Color TrialOracle::pick_params(std::uint64_t a, std::uint64_t b,
                               NodeId v) const {
  auto list = avail_->of(v);
  if (list.empty()) return kNoColor;
  return list[EnumerablePairwiseFamily::eval_params(a, b, v, list.size())];
}

void TrialOracle::eval_analytic(std::uint64_t first, std::size_t count,
                                std::size_t item, double* sink) const {
  const NodeId v = (*items_)[item];
  if (!(*active_)[v] || avail_->of(v).empty()) return;
  for (std::size_t j = 0; j < count; ++j) {
    auto [a, b] = family_->params(first + j);
    const Color mine = pick_params(a, b, v);
    bool clash = false;
    for (NodeId u : g_->neighbors(v)) {
      if ((*active_)[u] && pick_params(a, b, u) == mine) {
        clash = true;
        break;
      }
    }
    if (!clash) sink[j] -= 1.0;
  }
}

void TrialOracle::eval_members(std::uint64_t first, std::size_t count,
                               std::size_t item, double* sink) const {
  if (pa_.empty() || first + count > pa_.size()) {
    eval_analytic(first, count, item, sink);
    return;
  }
  const NodeId v = (*items_)[item];
  if (!(*active_)[v]) return;
  const std::span<const Color> list_v = avail_->of(v);
  if (list_v.empty()) return;
  const std::uint64_t* a = pa_.data() + first;
  const std::uint64_t* b = pb_.data() + first;
  bucket_batch_.resize(count);
  mine_batch_.resize(count);
  clash_batch_.assign(count, 0);
  util::simd::bucket_span(a, b, count,
                          util::simd::HashPoint(v, list_v.size()),
                          bucket_batch_.data());
  const Color* lv = list_v.data();
  PDC_PRAGMA_SIMD
  for (std::size_t j = 0; j < count; ++j)
    mine_batch_[j] = lv[bucket_batch_[j]];
  for (NodeId u : g_->neighbors(v)) {
    if (!(*active_)[u]) continue;
    const std::span<const Color> list_u = avail_->of(u);
    // An empty-availability neighbor picks kNoColor, which can never
    // equal v's (real) pick — same skip the scalar path takes inside
    // pick_params.
    if (list_u.empty()) continue;
    util::simd::bucket_span(a, b, count,
                            util::simd::HashPoint(u, list_u.size()),
                            bucket_batch_.data());
    const Color* lu = list_u.data();
    PDC_PRAGMA_SIMD
    for (std::size_t j = 0; j < count; ++j)
      clash_batch_[j] |= (lu[bucket_batch_[j]] == mine_batch_[j]);
  }
  for (std::size_t j = 0; j < count; ++j)
    if (!clash_batch_[j]) sink[j] -= 1.0;
}

void TrialOracle::begin_sweep(std::span<const std::uint64_t> seeds) {
  picks_.assign(seeds.size(),
                std::vector<Color>(g_->num_nodes(), kNoColor));
  std::vector<std::uint64_t> local(seeds.begin(), seeds.end());
  parallel_for(items_->size(), [&](std::size_t i) {
    const NodeId v = (*items_)[i];
    if (!(*active_)[v]) return;
    auto list = avail_->of(v);
    if (list.empty()) return;
    for (std::size_t k = 0; k < local.size(); ++k)
      picks_[k][v] = list[family_->eval(local[k], v, list.size())];
  });
}

void TrialOracle::end_sweep() { picks_.clear(); }

void TrialOracle::eval_batch(std::span<const std::uint64_t> seeds,
                             std::size_t item, double* sink) const {
  const NodeId v = (*items_)[item];
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    const Color mine = picks_[k][v];
    if (mine == kNoColor) continue;
    bool clash = false;
    for (NodeId u : g_->neighbors(v)) {
      if ((*active_)[u] && picks_[k][u] == mine) {
        clash = true;
        break;
      }
    }
    if (!clash) sink[k] -= 1.0;
  }
}

}  // namespace pdc::d1lc
