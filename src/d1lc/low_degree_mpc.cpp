#include "pdc/d1lc/low_degree_mpc.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "pdc/d1lc/trial_oracle.hpp"
#include "pdc/engine/search.hpp"
#include "pdc/util/parallel.hpp"

namespace pdc::d1lc {

namespace {

Color pick_of(const D1lcInstance& inst, const Coloring& coloring,
              const EnumerablePairwiseFamily& family, std::uint64_t index,
              NodeId v) {
  // Availability must be the exact lists the seed selection scored
  // (trial_available_colors is that single derivation) — otherwise the
  // committed trial's cost could exceed the searched mean.
  auto avail = trial_available_colors(inst, coloring, v);
  if (avail.empty()) return kNoColor;
  return avail[family.eval(index, v, avail.size())];
}

}  // namespace

engine::Selection low_degree_trial_selection(
    const D1lcInstance& inst, const Coloring& coloring,
    const EnumerablePairwiseFamily& family,
    const engine::ExecutionPolicy& policy) {
  // Item = node (each home machine scores the nodes it owns). The
  // shared analytic trial oracle carries both evaluation paths; its
  // availability lists come from the same trial_available_colors
  // derivation the executors' pick_of uses, so the scored objective is
  // exactly the committed one.
  const NodeId n = inst.graph.num_nodes();
  std::vector<NodeId> items(n);
  std::iota(items.begin(), items.end(), NodeId{0});
  std::vector<std::uint8_t> active(n, 0);
  for (NodeId v = 0; v < n; ++v) active[v] = (coloring[v] == kNoColor);
  AvailLists avail = AvailLists::from_instance(inst, coloring);
  TrialOracle oracle(inst.graph, items, active, avail, family);
  return engine::search(
      oracle, engine::SearchRequest::exhaustive(family.size(), policy));
}

MpcTrialResult low_degree_trial_shared(const D1lcInstance& inst,
                                       const Coloring& coloring,
                                       const EnumerablePairwiseFamily& family,
                                       std::uint64_t index) {
  const NodeId n = inst.graph.num_nodes();
  MpcTrialResult out;
  out.committed.assign(n, kNoColor);
  std::vector<Color> pick(n, kNoColor);
  for (NodeId v = 0; v < n; ++v) {
    if (coloring[v] != kNoColor) continue;
    pick[v] = pick_of(inst, coloring, family, index, v);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (pick[v] == kNoColor) continue;
    bool clash = false;
    for (NodeId u : inst.graph.neighbors(v)) {
      if (coloring[u] == kNoColor && pick[u] == pick[v]) {
        clash = true;
        break;
      }
    }
    if (!clash) {
      out.committed[v] = pick[v];
      ++out.colored;
    }
  }
  return out;
}

MpcTrialResult low_degree_trial_mpc(mpc::Cluster& cluster,
                                    const D1lcInstance& inst,
                                    const Coloring& coloring,
                                    const EnumerablePairwiseFamily& family,
                                    std::uint64_t index) {
  const NodeId n = inst.graph.num_nodes();
  const mpc::MachineId p = cluster.num_machines();
  auto home = [p](NodeId v) { return static_cast<mpc::MachineId>(v % p); };

  MpcTrialResult out;
  out.committed.assign(n, kNoColor);
  const std::uint64_t before = cluster.ledger().rounds();

  // R1: every uncolored node computes its pick locally at its home
  // machine (palette + committed neighbor colors are home-resident
  // inputs) and sends it to each uncolored neighbor's home.
  std::vector<Color> pick(n, kNoColor);
  std::vector<std::vector<std::pair<NodeId, Color>>> rival_picks(n);
  cluster.round([&](mpc::MachineId m, const std::vector<mpc::Word>&,
                    std::vector<mpc::Word>&, mpc::Outbox& ob) {
    std::vector<std::vector<mpc::Word>> buf(p);
    for (NodeId v = m; v < n; v += p) {
      if (coloring[v] != kNoColor) continue;
      Color c = pick_of(inst, coloring, family, index, v);
      pick[v] = c;
      if (c == kNoColor) continue;
      for (NodeId u : inst.graph.neighbors(v)) {
        if (coloring[u] != kNoColor) continue;
        auto& b = buf[home(u)];
        b.push_back(u);
        b.push_back(static_cast<mpc::Word>(c));
      }
    }
    for (mpc::MachineId d = 0; d < p; ++d)
      if (!buf[d].empty()) ob.send(d, std::move(buf[d]));
  });
  for (mpc::MachineId m = 0; m < p; ++m) {
    mpc::for_each_message(
        cluster.inbox(m),
        [&](mpc::MachineId, std::span<const mpc::Word> pl) {
          for (std::size_t i = 0; i + 1 < pl.size(); i += 2) {
            rival_picks[pl[i]].emplace_back(kInvalidNode,
                                            static_cast<Color>(pl[i + 1]));
          }
        });
  }

  // R2 (decision + announcement): commit unless a rival picked the same
  // color; committed colors are broadcast so neighbors prune palettes
  // next phase (the caller folds them into `coloring`).
  cluster.round([&](mpc::MachineId m, const std::vector<mpc::Word>&,
                    std::vector<mpc::Word>&, mpc::Outbox& ob) {
    std::vector<std::vector<mpc::Word>> buf(p);
    for (NodeId v = m; v < n; v += p) {
      if (pick[v] == kNoColor) continue;
      bool clash = false;
      for (auto& [who, c] : rival_picks[v]) {
        if (c == pick[v]) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      out.committed[v] = pick[v];
      for (NodeId u : inst.graph.neighbors(v)) {
        auto& b = buf[home(u)];
        b.push_back(u);
        b.push_back(static_cast<mpc::Word>(pick[v]));
      }
    }
    for (mpc::MachineId d = 0; d < p; ++d)
      if (!buf[d].empty()) ob.send(d, std::move(buf[d]));
  });
  for (Color c : out.committed) out.colored += (c != kNoColor);
  out.mpc_rounds = cluster.ledger().rounds() - before;
  return out;
}

MpcLowDegreeResult low_degree_color_mpc(mpc::Cluster& cluster,
                                        const D1lcInstance& inst,
                                        int family_log2, std::uint64_t salt,
                                        engine::ExecutionPolicy policy) {
  // The execution cluster doubles as the search substrate unless the
  // caller pointed the policy elsewhere.
  if (policy.cluster == nullptr) policy.cluster = &cluster;
  MpcLowDegreeResult out;
  out.coloring.assign(inst.graph.num_nodes(), kNoColor);
  const std::uint64_t before = cluster.ledger().rounds();

  std::uint64_t uncolored = inst.graph.num_nodes();
  while (uncolored > 0) {
    EnumerablePairwiseFamily family(hash_combine(salt, out.phases),
                                    family_log2);
    engine::Selection sc =
        low_degree_trial_selection(inst, out.coloring, family, policy);
    out.search.absorb(sc.stats);

    MpcTrialResult trial =
        low_degree_trial_mpc(cluster, inst, out.coloring, family, sc.seed);
    if (trial.colored == 0) {
      // Guaranteed progress: greedily color one uncolored node locally.
      for (NodeId v = 0; v < inst.graph.num_nodes(); ++v) {
        if (out.coloring[v] != kNoColor) continue;
        auto avail = trial_available_colors(inst, out.coloring, v);
        PDC_CHECK(!avail.empty());
        out.coloring[v] = avail.front();
        --uncolored;
        break;
      }
    } else {
      for (NodeId v = 0; v < inst.graph.num_nodes(); ++v) {
        if (trial.committed[v] != kNoColor) {
          out.coloring[v] = trial.committed[v];
          --uncolored;
        }
      }
    }
    ++out.phases;
  }
  out.mpc_rounds = cluster.ledger().rounds() - before;
  out.valid = check_coloring(inst, out.coloring).complete_proper();
  return out;
}

}  // namespace pdc::d1lc
