#include "pdc/d1lc/low_degree_mpc.hpp"

#include <algorithm>
#include <span>

#include "pdc/engine/seed_search.hpp"
#include "pdc/engine/sharded/sharded_search.hpp"
#include "pdc/util/parallel.hpp"

namespace pdc::d1lc {

namespace {

std::vector<Color> available_of(const D1lcInstance& inst,
                                const Coloring& coloring, NodeId v) {
  std::vector<Color> blocked;
  for (NodeId u : inst.graph.neighbors(v))
    if (coloring[u] != kNoColor) blocked.push_back(coloring[u]);
  std::sort(blocked.begin(), blocked.end());
  std::vector<Color> out;
  for (Color c : inst.palettes.palette(v))
    if (!std::binary_search(blocked.begin(), blocked.end(), c))
      out.push_back(c);
  return out;
}

Color pick_of(const D1lcInstance& inst, const Coloring& coloring,
              const EnumerablePairwiseFamily& family, std::uint64_t index,
              NodeId v) {
  auto avail = available_of(inst, coloring, v);
  if (avail.empty()) return kNoColor;
  return avail[family.eval(index, v, avail.size())];
}

/// Decomposed phase objective for the MPC loop: item = node (each home
/// machine scores the nodes it owns), contribution = -1 when the node
/// would commit under family member `idx`. Semantics are identical to
/// low_degree_trial_shared: begin_sweep builds each node's availability
/// list once per block, eval_batch resolves clashes block-wide in one
/// neighbor pass.
class MpcTrialOracle final : public engine::CostOracle {
 public:
  MpcTrialOracle(const D1lcInstance& inst, const Coloring& coloring,
                 const EnumerablePairwiseFamily& family)
      : inst_(&inst), coloring_(&coloring), family_(&family) {}

  std::size_t item_count() const override {
    return inst_->graph.num_nodes();
  }

  void begin_sweep(std::span<const std::uint64_t> seeds) override {
    seeds_.assign(seeds.begin(), seeds.end());
    picks_.assign(seeds.size(),
                  std::vector<Color>(inst_->graph.num_nodes(), kNoColor));
    parallel_for(inst_->graph.num_nodes(), [&](std::size_t vi) {
      const NodeId v = static_cast<NodeId>(vi);
      if ((*coloring_)[v] != kNoColor) return;
      auto avail = available_of(*inst_, *coloring_, v);
      if (avail.empty()) return;
      for (std::size_t k = 0; k < seeds_.size(); ++k)
        picks_[k][v] = avail[family_->eval(seeds_[k], v, avail.size())];
    });
  }

  void end_sweep() override {
    picks_.clear();
    seeds_.clear();
  }

  void eval_batch(std::span<const std::uint64_t> seeds, std::size_t item,
                  double* sink) const override {
    for (std::size_t k = 0; k < seeds.size(); ++k)
      add_contribution(k, item, sink + k);
  }

 private:
  void add_contribution(std::size_t k, std::size_t item,
                        double* sink) const {
    const NodeId v = static_cast<NodeId>(item);
    const Color mine = picks_[k][v];
    if (mine == kNoColor) return;
    for (NodeId u : inst_->graph.neighbors(v)) {
      if ((*coloring_)[u] == kNoColor && picks_[k][u] == mine) return;
    }
    *sink -= 1.0;
  }

  const D1lcInstance* inst_;
  const Coloring* coloring_;
  const EnumerablePairwiseFamily* family_;
  std::vector<std::uint64_t> seeds_;
  std::vector<std::vector<Color>> picks_;
};

}  // namespace

engine::Selection low_degree_trial_selection(
    const D1lcInstance& inst, const Coloring& coloring,
    const EnumerablePairwiseFamily& family, engine::SearchBackend backend,
    mpc::Cluster* search_cluster) {
  MpcTrialOracle oracle(inst, coloring, family);
  return engine::sharded::search_with_backend(
      oracle, backend, search_cluster,
      [&](auto& search) { return search.exhaustive(family.size()); });
}

MpcTrialResult low_degree_trial_shared(const D1lcInstance& inst,
                                       const Coloring& coloring,
                                       const EnumerablePairwiseFamily& family,
                                       std::uint64_t index) {
  const NodeId n = inst.graph.num_nodes();
  MpcTrialResult out;
  out.committed.assign(n, kNoColor);
  std::vector<Color> pick(n, kNoColor);
  for (NodeId v = 0; v < n; ++v) {
    if (coloring[v] != kNoColor) continue;
    pick[v] = pick_of(inst, coloring, family, index, v);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (pick[v] == kNoColor) continue;
    bool clash = false;
    for (NodeId u : inst.graph.neighbors(v)) {
      if (coloring[u] == kNoColor && pick[u] == pick[v]) {
        clash = true;
        break;
      }
    }
    if (!clash) {
      out.committed[v] = pick[v];
      ++out.colored;
    }
  }
  return out;
}

MpcTrialResult low_degree_trial_mpc(mpc::Cluster& cluster,
                                    const D1lcInstance& inst,
                                    const Coloring& coloring,
                                    const EnumerablePairwiseFamily& family,
                                    std::uint64_t index) {
  const NodeId n = inst.graph.num_nodes();
  const mpc::MachineId p = cluster.num_machines();
  auto home = [p](NodeId v) { return static_cast<mpc::MachineId>(v % p); };

  MpcTrialResult out;
  out.committed.assign(n, kNoColor);
  const std::uint64_t before = cluster.ledger().rounds();

  // R1: every uncolored node computes its pick locally at its home
  // machine (palette + committed neighbor colors are home-resident
  // inputs) and sends it to each uncolored neighbor's home.
  std::vector<Color> pick(n, kNoColor);
  std::vector<std::vector<std::pair<NodeId, Color>>> rival_picks(n);
  cluster.round([&](mpc::MachineId m, const std::vector<mpc::Word>&,
                    std::vector<mpc::Word>&, mpc::Outbox& ob) {
    std::vector<std::vector<mpc::Word>> buf(p);
    for (NodeId v = m; v < n; v += p) {
      if (coloring[v] != kNoColor) continue;
      Color c = pick_of(inst, coloring, family, index, v);
      pick[v] = c;
      if (c == kNoColor) continue;
      for (NodeId u : inst.graph.neighbors(v)) {
        if (coloring[u] != kNoColor) continue;
        auto& b = buf[home(u)];
        b.push_back(u);
        b.push_back(static_cast<mpc::Word>(c));
      }
    }
    for (mpc::MachineId d = 0; d < p; ++d)
      if (!buf[d].empty()) ob.send(d, std::move(buf[d]));
  });
  for (mpc::MachineId m = 0; m < p; ++m) {
    mpc::for_each_message(
        cluster.inbox(m),
        [&](mpc::MachineId, std::span<const mpc::Word> pl) {
          for (std::size_t i = 0; i + 1 < pl.size(); i += 2) {
            rival_picks[pl[i]].emplace_back(kInvalidNode,
                                            static_cast<Color>(pl[i + 1]));
          }
        });
  }

  // R2 (decision + announcement): commit unless a rival picked the same
  // color; committed colors are broadcast so neighbors prune palettes
  // next phase (the caller folds them into `coloring`).
  cluster.round([&](mpc::MachineId m, const std::vector<mpc::Word>&,
                    std::vector<mpc::Word>&, mpc::Outbox& ob) {
    std::vector<std::vector<mpc::Word>> buf(p);
    for (NodeId v = m; v < n; v += p) {
      if (pick[v] == kNoColor) continue;
      bool clash = false;
      for (auto& [who, c] : rival_picks[v]) {
        if (c == pick[v]) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      out.committed[v] = pick[v];
      for (NodeId u : inst.graph.neighbors(v)) {
        auto& b = buf[home(u)];
        b.push_back(u);
        b.push_back(static_cast<mpc::Word>(pick[v]));
      }
    }
    for (mpc::MachineId d = 0; d < p; ++d)
      if (!buf[d].empty()) ob.send(d, std::move(buf[d]));
  });
  for (Color c : out.committed) out.colored += (c != kNoColor);
  out.mpc_rounds = cluster.ledger().rounds() - before;
  return out;
}

MpcLowDegreeResult low_degree_color_mpc(mpc::Cluster& cluster,
                                        const D1lcInstance& inst,
                                        int family_log2, std::uint64_t salt,
                                        engine::SearchBackend backend) {
  MpcLowDegreeResult out;
  out.coloring.assign(inst.graph.num_nodes(), kNoColor);
  const std::uint64_t before = cluster.ledger().rounds();

  std::uint64_t uncolored = inst.graph.num_nodes();
  while (uncolored > 0) {
    EnumerablePairwiseFamily family(hash_combine(salt, out.phases),
                                    family_log2);
    engine::Selection sc = low_degree_trial_selection(
        inst, out.coloring, family, backend, &cluster);
    out.search.absorb(sc.stats);

    MpcTrialResult trial =
        low_degree_trial_mpc(cluster, inst, out.coloring, family, sc.seed);
    if (trial.colored == 0) {
      // Guaranteed progress: greedily color one uncolored node locally.
      for (NodeId v = 0; v < inst.graph.num_nodes(); ++v) {
        if (out.coloring[v] != kNoColor) continue;
        auto avail = available_of(inst, out.coloring, v);
        PDC_CHECK(!avail.empty());
        out.coloring[v] = avail.front();
        --uncolored;
        break;
      }
    } else {
      for (NodeId v = 0; v < inst.graph.num_nodes(); ++v) {
        if (trial.committed[v] != kNoColor) {
          out.coloring[v] = trial.committed[v];
          --uncolored;
        }
      }
    }
    ++out.phases;
  }
  out.mpc_rounds = cluster.ledger().rounds() - before;
  out.valid = check_coloring(inst, out.coloring).complete_proper();
  return out;
}

}  // namespace pdc::d1lc
