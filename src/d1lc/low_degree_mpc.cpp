#include "pdc/d1lc/low_degree_mpc.hpp"

#include <algorithm>

#include "pdc/prg/cond_exp.hpp"

namespace pdc::d1lc {

namespace {

template <typename Fn>
void for_each_message(const std::vector<mpc::Word>& inbox, Fn&& fn) {
  std::size_t i = 0;
  while (i < inbox.size()) {
    mpc::Word len = inbox[i + 1];
    fn(std::span<const mpc::Word>(inbox.data() + i + 2, len));
    i += 2 + len;
  }
}

std::vector<Color> available_of(const D1lcInstance& inst,
                                const Coloring& coloring, NodeId v) {
  std::vector<Color> blocked;
  for (NodeId u : inst.graph.neighbors(v))
    if (coloring[u] != kNoColor) blocked.push_back(coloring[u]);
  std::sort(blocked.begin(), blocked.end());
  std::vector<Color> out;
  for (Color c : inst.palettes.palette(v))
    if (!std::binary_search(blocked.begin(), blocked.end(), c))
      out.push_back(c);
  return out;
}

Color pick_of(const D1lcInstance& inst, const Coloring& coloring,
              const EnumerablePairwiseFamily& family, std::uint64_t index,
              NodeId v) {
  auto avail = available_of(inst, coloring, v);
  if (avail.empty()) return kNoColor;
  return avail[family.eval(index, v, avail.size())];
}

}  // namespace

MpcTrialResult low_degree_trial_shared(const D1lcInstance& inst,
                                       const Coloring& coloring,
                                       const EnumerablePairwiseFamily& family,
                                       std::uint64_t index) {
  const NodeId n = inst.graph.num_nodes();
  MpcTrialResult out;
  out.committed.assign(n, kNoColor);
  std::vector<Color> pick(n, kNoColor);
  for (NodeId v = 0; v < n; ++v) {
    if (coloring[v] != kNoColor) continue;
    pick[v] = pick_of(inst, coloring, family, index, v);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (pick[v] == kNoColor) continue;
    bool clash = false;
    for (NodeId u : inst.graph.neighbors(v)) {
      if (coloring[u] == kNoColor && pick[u] == pick[v]) {
        clash = true;
        break;
      }
    }
    if (!clash) {
      out.committed[v] = pick[v];
      ++out.colored;
    }
  }
  return out;
}

MpcTrialResult low_degree_trial_mpc(mpc::Cluster& cluster,
                                    const D1lcInstance& inst,
                                    const Coloring& coloring,
                                    const EnumerablePairwiseFamily& family,
                                    std::uint64_t index) {
  const NodeId n = inst.graph.num_nodes();
  const mpc::MachineId p = cluster.num_machines();
  auto home = [p](NodeId v) { return static_cast<mpc::MachineId>(v % p); };

  MpcTrialResult out;
  out.committed.assign(n, kNoColor);
  const std::uint64_t before = cluster.ledger().rounds();

  // R1: every uncolored node computes its pick locally at its home
  // machine (palette + committed neighbor colors are home-resident
  // inputs) and sends it to each uncolored neighbor's home.
  std::vector<Color> pick(n, kNoColor);
  std::vector<std::vector<std::pair<NodeId, Color>>> rival_picks(n);
  cluster.round([&](mpc::MachineId m, const std::vector<mpc::Word>&,
                    std::vector<mpc::Word>&, mpc::Outbox& ob) {
    std::vector<std::vector<mpc::Word>> buf(p);
    for (NodeId v = m; v < n; v += p) {
      if (coloring[v] != kNoColor) continue;
      Color c = pick_of(inst, coloring, family, index, v);
      pick[v] = c;
      if (c == kNoColor) continue;
      for (NodeId u : inst.graph.neighbors(v)) {
        if (coloring[u] != kNoColor) continue;
        auto& b = buf[home(u)];
        b.push_back(u);
        b.push_back(static_cast<mpc::Word>(c));
      }
    }
    for (mpc::MachineId d = 0; d < p; ++d)
      if (!buf[d].empty()) ob.send(d, std::move(buf[d]));
  });
  for (mpc::MachineId m = 0; m < p; ++m) {
    for_each_message(cluster.inbox(m), [&](std::span<const mpc::Word> pl) {
      for (std::size_t i = 0; i + 1 < pl.size(); i += 2) {
        rival_picks[pl[i]].emplace_back(kInvalidNode,
                                        static_cast<Color>(pl[i + 1]));
      }
    });
  }

  // R2 (decision + announcement): commit unless a rival picked the same
  // color; committed colors are broadcast so neighbors prune palettes
  // next phase (the caller folds them into `coloring`).
  cluster.round([&](mpc::MachineId m, const std::vector<mpc::Word>&,
                    std::vector<mpc::Word>&, mpc::Outbox& ob) {
    std::vector<std::vector<mpc::Word>> buf(p);
    for (NodeId v = m; v < n; v += p) {
      if (pick[v] == kNoColor) continue;
      bool clash = false;
      for (auto& [who, c] : rival_picks[v]) {
        if (c == pick[v]) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      out.committed[v] = pick[v];
      for (NodeId u : inst.graph.neighbors(v)) {
        auto& b = buf[home(u)];
        b.push_back(u);
        b.push_back(static_cast<mpc::Word>(pick[v]));
      }
    }
    for (mpc::MachineId d = 0; d < p; ++d)
      if (!buf[d].empty()) ob.send(d, std::move(buf[d]));
  });
  for (Color c : out.committed) out.colored += (c != kNoColor);
  out.mpc_rounds = cluster.ledger().rounds() - before;
  return out;
}

MpcLowDegreeResult low_degree_color_mpc(mpc::Cluster& cluster,
                                        const D1lcInstance& inst,
                                        int family_log2, std::uint64_t salt) {
  MpcLowDegreeResult out;
  out.coloring.assign(inst.graph.num_nodes(), kNoColor);
  const std::uint64_t before = cluster.ledger().rounds();

  std::uint64_t uncolored = inst.graph.num_nodes();
  while (uncolored > 0) {
    EnumerablePairwiseFamily family(hash_combine(salt, out.phases),
                                    family_log2);
    auto cost = [&](std::uint64_t idx) {
      return -static_cast<double>(
          low_degree_trial_shared(inst, out.coloring, family, idx).colored);
    };
    prg::SeedChoice sc = prg::select_index_exhaustive(family.size(), cost);

    MpcTrialResult trial =
        low_degree_trial_mpc(cluster, inst, out.coloring, family, sc.seed);
    if (trial.colored == 0) {
      // Guaranteed progress: greedily color one uncolored node locally.
      for (NodeId v = 0; v < inst.graph.num_nodes(); ++v) {
        if (out.coloring[v] != kNoColor) continue;
        auto avail = available_of(inst, out.coloring, v);
        PDC_CHECK(!avail.empty());
        out.coloring[v] = avail.front();
        --uncolored;
        break;
      }
    } else {
      for (NodeId v = 0; v < inst.graph.num_nodes(); ++v) {
        if (trial.committed[v] != kNoColor) {
          out.coloring[v] = trial.committed[v];
          --uncolored;
        }
      }
    }
    ++out.phases;
  }
  out.mpc_rounds = cluster.ledger().rounds() - before;
  out.valid = check_coloring(inst, out.coloring).complete_proper();
  return out;
}

}  // namespace pdc::d1lc
