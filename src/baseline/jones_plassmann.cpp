#include "pdc/baseline/jones_plassmann.hpp"

#include <algorithm>

#include "pdc/util/parallel.hpp"
#include "pdc/util/rng.hpp"

namespace pdc::baseline {

JonesPlassmannResult jones_plassmann(const D1lcInstance& inst,
                                     std::uint64_t seed) {
  const Graph& g = inst.graph;
  const NodeId n = g.num_nodes();
  JonesPlassmannResult out;
  out.coloring.assign(n, kNoColor);

  std::vector<std::uint64_t> priority(n);
  for (NodeId v = 0; v < n; ++v)
    priority[v] = hash_combine(seed, v);

  std::uint64_t remaining = n;
  while (remaining > 0) {
    std::vector<Color> decided(n, kNoColor);
    parallel_for(n, [&](std::size_t vi) {
      const NodeId v = static_cast<NodeId>(vi);
      if (out.coloring[v] != kNoColor) return;
      for (NodeId u : g.neighbors(v)) {
        if (out.coloring[u] == kNoColor && priority[u] > priority[v]) return;
      }
      // Local maximum: take the smallest available color.
      std::vector<Color> blocked;
      for (NodeId u : g.neighbors(v))
        if (out.coloring[u] != kNoColor) blocked.push_back(out.coloring[u]);
      std::sort(blocked.begin(), blocked.end());
      for (Color c : inst.palettes.palette(v)) {
        if (!std::binary_search(blocked.begin(), blocked.end(), c)) {
          decided[v] = c;
          break;
        }
      }
    });
    std::uint64_t colored_now = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (decided[v] != kNoColor) {
        out.coloring[v] = decided[v];
        ++colored_now;
      }
    }
    remaining -= colored_now;
    ++out.rounds;
    PDC_CHECK_MSG(colored_now > 0 || remaining == 0,
                  "Jones-Plassmann made no progress");
  }
  return out;
}

}  // namespace pdc::baseline
