#include "pdc/baseline/greedy.hpp"

#include <algorithm>
#include <numeric>

#include "pdc/util/check.hpp"

namespace pdc::baseline {

std::vector<NodeId> degeneracy_order(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> deg(n);
  std::vector<std::uint8_t> removed(n, 0);
  std::uint32_t maxd = 0;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    maxd = std::max(maxd, deg[v]);
  }
  // Bucket queue over degrees.
  std::vector<std::vector<NodeId>> bucket(maxd + 1);
  for (NodeId v = 0; v < n; ++v) bucket[deg[v]].push_back(v);
  std::vector<NodeId> order;
  order.reserve(n);
  std::uint32_t cur = 0;
  while (order.size() < n) {
    while (cur <= maxd && bucket[cur].empty()) ++cur;
    if (cur > maxd) break;
    NodeId v = bucket[cur].back();
    bucket[cur].pop_back();
    if (removed[v] || deg[v] != cur) continue;  // stale entry
    removed[v] = 1;
    order.push_back(v);
    for (NodeId u : g.neighbors(v)) {
      if (!removed[u] && deg[u] > 0) {
        --deg[u];
        bucket[deg[u]].push_back(u);
        if (deg[u] < cur) cur = deg[u];
      }
    }
  }
  // Smallest-last: reverse so low-degeneracy nodes are colored last.
  std::reverse(order.begin(), order.end());
  return order;
}

namespace {

std::vector<NodeId> make_order(const Graph& g, GreedyOrder order) {
  std::vector<NodeId> idx(g.num_nodes());
  std::iota(idx.begin(), idx.end(), NodeId{0});
  switch (order) {
    case GreedyOrder::kIndex:
      break;
    case GreedyOrder::kDegreeDesc:
      std::stable_sort(idx.begin(), idx.end(), [&](NodeId a, NodeId b) {
        return g.degree(a) > g.degree(b);
      });
      break;
    case GreedyOrder::kDegeneracy:
      idx = degeneracy_order(g);
      break;
  }
  return idx;
}

}  // namespace

void greedy_complete_partial(const D1lcInstance& inst, Coloring& coloring,
                             GreedyOrder order) {
  const Graph& g = inst.graph;
  PDC_CHECK(coloring.size() == g.num_nodes());
  for (NodeId v : make_order(g, order)) {
    if (coloring[v] != kNoColor) continue;
    std::vector<Color> blocked;
    for (NodeId u : g.neighbors(v))
      if (coloring[u] != kNoColor) blocked.push_back(coloring[u]);
    std::sort(blocked.begin(), blocked.end());
    Color chosen = kNoColor;
    for (Color c : inst.palettes.palette(v)) {
      if (!std::binary_search(blocked.begin(), blocked.end(), c)) {
        chosen = c;
        break;
      }
    }
    PDC_CHECK_MSG(chosen != kNoColor,
                  "greedy failed at node " << v
                      << " — instance violates the degree+1 invariant");
    coloring[v] = chosen;
  }
}

Coloring greedy_d1lc(const D1lcInstance& inst, GreedyOrder order) {
  Coloring c(inst.graph.num_nodes(), kNoColor);
  greedy_complete_partial(inst, c, order);
  return c;
}

}  // namespace pdc::baseline
