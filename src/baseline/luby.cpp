#include "pdc/baseline/luby.hpp"

#include <algorithm>

#include "pdc/engine/search.hpp"
#include "pdc/graph/power.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/prg/prg.hpp"
#include "pdc/util/parallel.hpp"

namespace pdc::baseline {

namespace {
constexpr std::uint8_t kUndecided = kLubyUndecided, kInMis = kLubyInMis,
                       kOut = kLubyOut;
}  // namespace

std::vector<std::uint8_t> luby_round(
    const Graph& g, const std::vector<std::uint8_t>& status,
    const prg::BitSourceFactory& bits,
    const std::vector<std::uint32_t>& chunk_of) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint8_t> marked(n, 0);
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (status[v] != kUndecided) return;
    // Live degree for the marking probability.
    std::uint32_t d = 0;
    for (NodeId u : g.neighbors(v))
      if (status[u] == kUndecided) ++d;
    BitStream bs = bits.stream(v, chunk_of[v]);
    if (d == 0) {
      marked[v] = 1;  // isolated among live nodes: join outright
      return;
    }
    marked[v] = bs.coin(1, 2ull * d) ? 1 : 0;
  });

  std::vector<std::uint8_t> next = status;
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (status[v] != kUndecided || !marked[v]) return;
    for (NodeId u : g.neighbors(v)) {
      if (status[u] != kUndecided || !marked[u]) continue;
      // Higher degree wins; ties to smaller id.
      if (g.degree(u) > g.degree(v) ||
          (g.degree(u) == g.degree(v) && u < v)) {
        return;
      }
    }
    next[v] = kInMis;
  });
  // Neighbors of new MIS nodes drop out.
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (next[v] != kUndecided) return;
    for (NodeId u : g.neighbors(v)) {
      if (next[u] == kInMis) {
        next[v] = kOut;
        return;
      }
    }
  });
  return next;
}

namespace {

std::uint64_t undecided_count(const std::vector<std::uint8_t>& status) {
  std::uint64_t c = 0;
  for (auto s : status) c += (s == kUndecided);
  return c;
}

/// Decomposed round objective: item = node, contribution = 1 when the
/// node is still undecided after a Luby round under this seed.
/// begin_sweep runs one round per seed in the block; the engine's
/// node-major sweep then counts all blocks' undecided nodes in a single
/// pass — the scalar route re-counted the whole status vector per seed.
class LubyRoundOracle final : public engine::CostOracle {
 public:
  LubyRoundOracle(const Graph& g, const std::vector<std::uint8_t>& status,
                  const prg::PrgFamily& family,
                  const std::vector<std::uint32_t>& chunk_of)
      : g_(&g), status_(&status), family_(&family), chunk_of_(&chunk_of) {}

  std::size_t item_count() const override { return g_->num_nodes(); }

  void begin_sweep(std::span<const std::uint64_t> seeds) override {
    seeds_.assign(seeds.begin(), seeds.end());
    next_.resize(seeds.size());
    for (std::size_t k = 0; k < seeds_.size(); ++k) {
      auto src = family_->source(seeds_[k]);
      next_[k] = luby_round(*g_, *status_, src, *chunk_of_);
    }
  }

  void end_sweep() override {
    next_.clear();
    seeds_.clear();
  }

  void eval_batch(std::span<const std::uint64_t> seeds, std::size_t item,
                  double* sink) const override {
    // Block-stateful: next_[k] is the round outcome for seeds[k].
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      if (next_[k][item] == kUndecided) sink[k] += 1.0;
    }
  }

 private:
  const Graph* g_;
  const std::vector<std::uint8_t>* status_;
  const prg::PrgFamily* family_;
  const std::vector<std::uint32_t>* chunk_of_;
  std::vector<std::uint64_t> seeds_;
  std::vector<std::vector<std::uint8_t>> next_;
};

}  // namespace

std::uint64_t luby_greedy_finish(const Graph& g,
                                 std::vector<std::uint8_t>& status) {
  std::uint64_t added = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (status[v] != kUndecided) continue;
    bool blocked = false;
    for (NodeId u : g.neighbors(v)) {
      if (status[u] == kInMis) {
        blocked = true;
        break;
      }
    }
    status[v] = blocked ? kOut : kInMis;
    if (!blocked) ++added;
  }
  return added;
}

engine::Selection select_luby_seed_selection(
    const Graph& g, const std::vector<std::uint8_t>& status,
    const derand::Lemma10Options& opt,
    const std::vector<std::uint32_t>& chunk_of, std::uint64_t round,
    mpc::Cluster* search_cluster) {
  prg::PrgFamily family(opt.seed_bits, hash_combine(opt.salt, round));
  LubyRoundOracle oracle(g, status, family, chunk_of);
  // A user-configured Lemma10Options cluster wins (matching
  // lemma10_seed_selection, e.g. to keep search rounds on a dedicated
  // ledger); the parameter is the call site's default substrate — the
  // cluster the MPC variant replays rounds on.
  engine::ExecutionPolicy policy = opt.search;
  if (policy.cluster == nullptr) policy.cluster = search_cluster;
  return engine::search(
      oracle, derand::lemma10_request(opt.strategy, opt.seed_bits, policy));
}

std::uint64_t select_luby_seed(const Graph& g,
                               const std::vector<std::uint8_t>& status,
                               const derand::Lemma10Options& opt,
                               const std::vector<std::uint32_t>& chunk_of,
                               std::uint64_t round,
                               engine::SearchStats* stats,
                               mpc::Cluster* search_cluster) {
  engine::Selection sel = select_luby_seed_selection(
      g, status, opt, chunk_of, round, search_cluster);
  if (stats) stats->absorb(sel.stats);
  return sel.seed;
}

std::pair<bool, bool> check_mis(const Graph& g,
                                const std::vector<std::uint8_t>& in_mis) {
  bool independent = true, maximal = true;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bool covered = in_mis[v] != 0;
    for (NodeId u : g.neighbors(v)) {
      if (in_mis[v] && in_mis[u]) independent = false;
      if (in_mis[u]) covered = true;
    }
    if (!covered) maximal = false;
  }
  return {independent, maximal};
}

MisResult luby_mis(const Graph& g, std::uint64_t seed,
                   std::uint64_t max_rounds) {
  const NodeId n = g.num_nodes();
  MisResult out;
  std::vector<std::uint8_t> status(n, kUndecided);
  std::vector<std::uint32_t> chunk_of(n);
  for (NodeId v = 0; v < n; ++v) chunk_of[v] = v;
  while (undecided_count(status) > 0 && out.rounds < max_rounds) {
    prg::TrueRandomSource src(hash_combine(seed, out.rounds));
    status = luby_round(g, status, src, chunk_of);
    ++out.rounds;
    out.undecided_after_round.push_back(
        static_cast<double>(undecided_count(status)) /
        static_cast<double>(std::max<NodeId>(n, 1)));
  }
  out.in_mis.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) out.in_mis[v] = status[v] == kInMis;
  return out;
}

MisResult luby_mis_derandomized(const Graph& g,
                                const derand::Lemma10Options& opt,
                                std::uint64_t max_rounds) {
  const NodeId n = g.num_nodes();
  MisResult out;
  std::vector<std::uint8_t> status(n, kUndecided);

  // One Luby round is a normal (1, Δ)-round procedure, so its chunks
  // need a distance-4 coloring (4τ with τ = 1).
  derand::ChunkAssignment chunks =
      derand::assign_chunks(g, /*tau=*/1, opt, nullptr);

  for (std::uint64_t r = 0;
       r < max_rounds && undecided_count(status) > 0; ++r) {
    obs::Span round_span("luby.round", obs::SpanKind::kPhase);
    if (round_span.active()) {
      round_span.tag_u64("round", r);
      round_span.tag_u64("undecided", undecided_count(status));
    }
    // Fresh PRG family per round (salted by the round index) so the
    // per-round seed searches are independent.
    const std::uint64_t seed =
        select_luby_seed(g, status, opt, chunks.chunk_of, r, &out.search);
    prg::PrgFamily family(opt.seed_bits, hash_combine(opt.salt, r));
    auto src = family.source(seed);
    status = luby_round(g, status, src, chunks.chunk_of);
    ++out.rounds;
    out.undecided_after_round.push_back(
        static_cast<double>(undecided_count(status)) /
        static_cast<double>(std::max<NodeId>(n, 1)));
  }

  // Greedy finish of deferred (undecided) nodes — the Theorem-12 tail.
  out.greedy_added = luby_greedy_finish(g, status);
  out.in_mis.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) out.in_mis[v] = status[v] == kInMis;
  return out;
}

}  // namespace pdc::baseline
