#include "pdc/baseline/luby_mpc.hpp"

#include <algorithm>

#include "pdc/baseline/luby.hpp"
#include "pdc/prg/prg.hpp"
#include "pdc/util/rng.hpp"

namespace pdc::baseline {

namespace {

constexpr std::uint8_t kUndecided = kLubyUndecided, kInMis = kLubyInMis,
                       kOut = kLubyOut;

/// One Luby round executed through home-machine messages (3 cluster
/// rounds: liveness, rivalry, membership). Coins come from
/// `bits.stream(v, chunk_of[v])` exactly as the shared-memory
/// luby_round draws them, so the status evolution is bit-identical.
void mpc_luby_round(mpc::Cluster& cluster, const Graph& g,
                    std::vector<std::uint8_t>& status,
                    const prg::BitSourceFactory& bits,
                    const std::vector<std::uint32_t>& chunk_of) {
  const NodeId n = g.num_nodes();
  const mpc::MachineId p = cluster.num_machines();
  auto home = [p](NodeId v) { return static_cast<mpc::MachineId>(v % p); };

  // R1: liveness exchange — each live node tells its neighbors' homes
  // "I am live". Homes then know each owned node's live degree.
  std::vector<std::uint32_t> live_degree(n, 0);
  cluster.round([&](mpc::MachineId m, const std::vector<mpc::Word>&,
                    std::vector<mpc::Word>&, mpc::Outbox& ob) {
    std::vector<std::vector<mpc::Word>> buf(p);
    for (NodeId v = m; v < n; v += p) {
      if (status[v] != kUndecided) continue;
      for (NodeId u : g.neighbors(v)) {
        buf[home(u)].push_back(u);
      }
    }
    for (mpc::MachineId d = 0; d < p; ++d)
      if (!buf[d].empty()) ob.send(d, std::move(buf[d]));
  });
  for (mpc::MachineId m = 0; m < p; ++m) {
    mpc::for_each_message(
        cluster.inbox(m),
        [&](mpc::MachineId, std::span<const mpc::Word> pl) {
          for (mpc::Word u : pl) ++live_degree[u];
        });
  }

  // Mark locally with the exact coin sequence of luby_round().
  std::vector<std::uint8_t> marked(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (status[v] != kUndecided) continue;
    if (live_degree[v] == 0) {
      marked[v] = 1;
      continue;
    }
    BitStream bs = bits.stream(v, chunk_of[v]);
    marked[v] = bs.coin(1, 2ull * live_degree[v]) ? 1 : 0;
  }

  // R2: marked exchange — marked nodes announce (id, static degree).
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> rivals(n);
  cluster.round([&](mpc::MachineId m, const std::vector<mpc::Word>&,
                    std::vector<mpc::Word>&, mpc::Outbox& ob) {
    std::vector<std::vector<mpc::Word>> buf(p);
    for (NodeId v = m; v < n; v += p) {
      if (status[v] != kUndecided || !marked[v]) continue;
      for (NodeId u : g.neighbors(v)) {
        auto& b = buf[home(u)];
        b.push_back(u);
        b.push_back(v);
        b.push_back(g.degree(v));
      }
    }
    for (mpc::MachineId d = 0; d < p; ++d)
      if (!buf[d].empty()) ob.send(d, std::move(buf[d]));
  });
  for (mpc::MachineId m = 0; m < p; ++m) {
    mpc::for_each_message(
        cluster.inbox(m),
        [&](mpc::MachineId, std::span<const mpc::Word> pl) {
          for (std::size_t i = 0; i + 2 < pl.size(); i += 3) {
            NodeId u = static_cast<NodeId>(pl[i]);
            rivals[u].emplace_back(static_cast<NodeId>(pl[i + 1]),
                                   static_cast<std::uint32_t>(pl[i + 2]));
          }
        });
  }
  // Decide against the round-start snapshot: every rival in rivals[v]
  // was live and marked when R2's messages were sent, so the messages
  // themselves are the snapshot — no status re-check (which would
  // race with this loop's own updates).
  std::vector<std::uint8_t> joins(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (status[v] != kUndecided || !marked[v]) continue;
    bool beaten = false;
    for (auto [w, dw] : rivals[v]) {
      if (dw > g.degree(v) || (dw == g.degree(v) && w < v)) {
        beaten = true;
        break;
      }
    }
    joins[v] = !beaten;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (joins[v]) status[v] = kInMis;
  }

  // R3: membership exchange — new MIS members knock out neighbors.
  cluster.round([&](mpc::MachineId m, const std::vector<mpc::Word>&,
                    std::vector<mpc::Word>&, mpc::Outbox& ob) {
    std::vector<std::vector<mpc::Word>> buf(p);
    for (NodeId v = m; v < n; v += p) {
      if (status[v] != kInMis) continue;
      for (NodeId u : g.neighbors(v)) buf[home(u)].push_back(u);
    }
    for (mpc::MachineId d = 0; d < p; ++d)
      if (!buf[d].empty()) ob.send(d, std::move(buf[d]));
  });
  for (mpc::MachineId m = 0; m < p; ++m) {
    mpc::for_each_message(
        cluster.inbox(m),
        [&](mpc::MachineId, std::span<const mpc::Word> pl) {
          for (mpc::Word u : pl) {
            if (status[u] == kUndecided) status[u] = kOut;
          }
        });
  }
}

std::uint64_t undecided_count(const std::vector<std::uint8_t>& status) {
  std::uint64_t c = 0;
  for (auto s : status) c += (s == kUndecided);
  return c;
}

}  // namespace

MpcMisResult luby_mis_mpc(mpc::Cluster& cluster, const Graph& g,
                          std::uint64_t seed, std::uint64_t max_rounds) {
  const NodeId n = g.num_nodes();
  MpcMisResult out;
  // status[v] is owned by home(v): that machine alone writes it during
  // machine steps; other machines learn it only through messages.
  std::vector<std::uint8_t> status(n, kUndecided);
  std::vector<std::uint32_t> chunk_of(n);
  for (NodeId v = 0; v < n; ++v) chunk_of[v] = v;

  const std::uint64_t rounds_before = cluster.ledger().rounds();
  while (undecided_count(status) > 0 && out.luby_rounds < max_rounds) {
    prg::TrueRandomSource src(hash_combine(seed, out.luby_rounds));
    mpc_luby_round(cluster, g, status, src, chunk_of);
    ++out.luby_rounds;
  }

  out.mpc_rounds = cluster.ledger().rounds() - rounds_before;
  out.in_mis.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) out.in_mis[v] = (status[v] == kInMis);
  return out;
}

MpcMisResult luby_mis_mpc_derandomized(mpc::Cluster& cluster, const Graph& g,
                                       const derand::Lemma10Options& opt,
                                       std::uint64_t max_rounds) {
  const NodeId n = g.num_nodes();
  MpcMisResult out;
  std::vector<std::uint8_t> status(n, kUndecided);

  // Same distance-4 chunk discipline as the shared-memory variant
  // (one Luby round is a normal (1, Δ)-round procedure).
  derand::ChunkAssignment chunks =
      derand::assign_chunks(g, /*tau=*/1, opt, nullptr);

  const std::uint64_t rounds_before = cluster.ledger().rounds();
  for (std::uint64_t r = 0;
       r < max_rounds && undecided_count(status) > 0; ++r) {
    // With opt.search.backend == kSharded the selection sweeps run as
    // rounds on this same cluster (counted in out.mpc_rounds and in
    // out.search.sharded) before the chosen round replays on it.
    const std::uint64_t seed = select_luby_seed(
        g, status, opt, chunks.chunk_of, r, &out.search, &cluster);
    prg::PrgFamily family(opt.seed_bits, hash_combine(opt.salt, r));
    auto src = family.source(seed);
    mpc_luby_round(cluster, g, status, src, chunks.chunk_of);
    ++out.luby_rounds;
  }
  out.mpc_rounds = cluster.ledger().rounds() - rounds_before;

  // Greedy finish of the undecided remainder — the Theorem-12 tail,
  // the same routine luby_mis_derandomized runs.
  out.greedy_added = luby_greedy_finish(g, status);
  out.in_mis.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) out.in_mis[v] = (status[v] == kInMis);
  return out;
}

}  // namespace pdc::baseline
