#include "pdc/baseline/linial.hpp"

#include <algorithm>
#include <cmath>

#include "pdc/util/check.hpp"
#include "pdc/util/parallel.hpp"

namespace pdc::baseline {

std::uint64_t next_prime(std::uint64_t x) {
  if (x <= 2) return 2;
  if (x % 2 == 0) ++x;
  while (true) {
    bool prime = true;
    for (std::uint64_t d = 3; d * d <= x; d += 2) {
      if (x % d == 0) {
        prime = false;
        break;
      }
    }
    if (prime) return x;
    x += 2;
  }
}

namespace {

/// Evaluate the base-q digit polynomial of `color` at x over F_q.
std::uint64_t poly_eval(std::uint64_t color, std::uint64_t q, int k,
                        std::uint64_t x) {
  // Digits d_0..d_{k-1}; p(x) = sum d_i x^i mod q.
  std::uint64_t acc = 0, xp = 1;
  for (int i = 0; i < k; ++i) {
    std::uint64_t digit = color % q;
    color /= q;
    acc = (acc + digit * xp) % q;
    xp = (xp * x) % q;
  }
  return acc;
}

}  // namespace

LinialResult linial_coloring(const Graph& g) {
  const NodeId n = g.num_nodes();
  LinialResult out;
  out.coloring.resize(n);
  for (NodeId v = 0; v < n; ++v) out.coloring[v] = static_cast<Color>(v);
  out.num_colors = n;
  if (n == 0) return out;

  const std::uint64_t delta = std::max<std::uint64_t>(1, g.max_degree());

  while (true) {
    const std::uint64_t c_count = out.num_colors;
    // Digits needed so that q^k >= C with q > Δ(k-1). Try growing k.
    std::uint64_t q = 0;
    int k = 2;
    for (; k <= 64; ++k) {
      q = next_prime(std::max<std::uint64_t>(
          delta * static_cast<std::uint64_t>(k - 1) + 1, 2));
      // Does q^k cover the color space?
      double bits_needed = std::log2(static_cast<double>(c_count));
      if (static_cast<double>(k) * std::log2(static_cast<double>(q)) >=
          bits_needed) {
        break;
      }
    }
    const std::uint64_t new_space = q * q;
    if (new_space >= c_count) break;  // no further reduction possible

    Coloring next(n, kNoColor);
    parallel_for(n, [&](std::size_t vi) {
      const NodeId v = static_cast<NodeId>(vi);
      const std::uint64_t mine = static_cast<std::uint64_t>(out.coloring[v]);
      for (std::uint64_t x = 0; x < q; ++x) {
        bool distinct = true;
        const std::uint64_t pv = poly_eval(mine, q, k, x);
        for (NodeId u : g.neighbors(v)) {
          const std::uint64_t other =
              static_cast<std::uint64_t>(out.coloring[u]);
          if (other == mine) continue;  // impossible for proper input
          if (poly_eval(other, q, k, x) == pv) {
            distinct = false;
            break;
          }
        }
        if (distinct) {
          next[v] = static_cast<Color>(x * q + pv);
          break;
        }
      }
      PDC_CHECK_MSG(next[v] != kNoColor,
                    "Linial step found no evaluation point (q too small)");
    });
    out.coloring = std::move(next);
    out.num_colors = new_space;
    ++out.rounds;
  }

  // Compact color values to [0, used).
  std::vector<Color> used(out.coloring.begin(), out.coloring.end());
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  parallel_for(n, [&](std::size_t v) {
    out.coloring[v] = static_cast<Color>(
        std::lower_bound(used.begin(), used.end(), out.coloring[v]) -
        used.begin());
  });
  out.num_colors = used.size();
  return out;
}

}  // namespace pdc::baseline
