#pragma once
// Sequential greedy D1LC — the correctness oracle and final-stage
// completer. Greedy always succeeds on a valid D1LC instance: when a
// node is processed, its palette exceeds its degree, so colored
// neighbors cannot exhaust it.

#include <vector>

#include "pdc/graph/coloring.hpp"
#include "pdc/graph/palette.hpp"

namespace pdc::baseline {

enum class GreedyOrder {
  kIndex,           // node id order
  kDegreeDesc,      // largest degree first (fewer colors in practice)
  kDegeneracy,      // smallest-last / degeneracy order
};

/// Colors the instance greedily; returns a complete proper coloring.
Coloring greedy_d1lc(const D1lcInstance& inst,
                     GreedyOrder order = GreedyOrder::kIndex);

/// Completes a partial coloring greedily (kNoColor entries only).
void greedy_complete_partial(const D1lcInstance& inst, Coloring& coloring,
                             GreedyOrder order = GreedyOrder::kIndex);

/// Degeneracy (smallest-last) ordering of the graph; exposed for tests.
std::vector<NodeId> degeneracy_order(const Graph& g);

}  // namespace pdc::baseline
