#pragma once
// Jones–Plassmann parallel list coloring — the standard shared-memory
// parallel baseline for experiment E6. Each round, nodes that hold a
// locally-maximal random priority among uncolored neighbors color
// themselves with their smallest available palette color.

#include <cstdint>

#include "pdc/graph/coloring.hpp"
#include "pdc/graph/palette.hpp"

namespace pdc::baseline {

struct JonesPlassmannResult {
  Coloring coloring;
  std::uint64_t rounds = 0;
};

JonesPlassmannResult jones_plassmann(const D1lcInstance& inst,
                                     std::uint64_t seed);

}  // namespace pdc::baseline
