#pragma once
// Luby's MIS executed *genuinely* on the MPC cluster substrate — every
// mark, degree and membership travels as checked messages between home
// machines (node v lives on machine v mod p). This is the end-to-end
// demonstration that the Cluster is a real execution substrate, not just
// an accounting device: the test suite verifies the distributed run
// produces bit-identical output to the shared-memory implementation
// under the same deterministic per-(round, node) coin sequence.

#include <cstdint>
#include <vector>

#include "pdc/derand/lemma10.hpp"
#include "pdc/engine/seed_search.hpp"
#include "pdc/graph/graph.hpp"
#include "pdc/mpc/cluster.hpp"

namespace pdc::baseline {

struct MpcMisResult {
  std::vector<std::uint8_t> in_mis;
  std::uint64_t luby_rounds = 0;   // algorithm rounds
  std::uint64_t mpc_rounds = 0;    // cluster communication rounds
  std::uint64_t greedy_added = 0;  // derandomized finish only
  /// Engine accounting for the per-round seed searches (derandomized
  /// variant only).
  engine::SearchStats search;
};

/// Runs Luby on `cluster` (which must have >= 1 machine and enough local
/// space for each machine's node shard: ~(n + 2m)/p words). Coins are
/// drawn deterministically from (seed, round, node) exactly as
/// luby_mis() draws them, so outputs coincide.
MpcMisResult luby_mis_mpc(mpc::Cluster& cluster, const Graph& g,
                          std::uint64_t seed,
                          std::uint64_t max_rounds = 10'000);

/// Derandomized Luby on the cluster: each round's seed is chosen by the
/// decomposable seed-search engine (select_luby_seed). With
/// opt.search.backend == kSharded the selection itself executes on this
/// cluster — home machines score the candidate block against their own
/// nodes and the per-seed totals converge-cast up an aggregation tree
/// (pdc::engine::sharded), the search's rounds landing in mpc_rounds
/// and search.sharded — then the chosen round executes genuinely
/// through home-machine messages with the same chunked PRG coins as
/// luby_mis_derandomized. Selections are bit-identical across backends,
/// so after `max_rounds` rounds and the greedy completion of the
/// undecided remainder (the Theorem-12 tail), outputs coincide
/// bit-for-bit with luby_mis_derandomized under the same options.
MpcMisResult luby_mis_mpc_derandomized(mpc::Cluster& cluster, const Graph& g,
                                       const derand::Lemma10Options& opt,
                                       std::uint64_t max_rounds = 64);

}  // namespace pdc::baseline
