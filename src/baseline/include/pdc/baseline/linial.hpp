#pragma once
// Linial's deterministic color reduction (the log*-round coloring used
// inside Theorem 12 to color power graphs).
//
// One step: with C current colors, write each color in base q (q prime,
// q > Δ·(k-1) where k = #digits), view the digits as a degree-(k-1)
// polynomial p_v over F_q, and let v pick an evaluation point x where
// p_v differs from every neighbor's polynomial (such x exists because
// two distinct polynomials agree on at most k-1 points). The new color
// (x, p_v(x)) lives in [q^2]. Iterating shrinks C to O(Δ^2 · polylog Δ)
// in log* C steps — deterministic, one LOCAL round per step.

#include <cstdint>

#include "pdc/graph/coloring.hpp"

namespace pdc::baseline {

struct LinialResult {
  Coloring coloring;          // proper, colors in [0, num_colors)
  std::uint64_t num_colors = 0;
  std::uint64_t rounds = 0;
};

/// Runs Linial color reduction from the trivial n-coloring (ids) until
/// the color count stops shrinking.
LinialResult linial_coloring(const Graph& g);

/// Smallest prime >= x (trial division; x is small here).
std::uint64_t next_prime(std::uint64_t x);

}  // namespace pdc::baseline
