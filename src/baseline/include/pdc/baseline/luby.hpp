#pragma once
// Luby's maximal independent set — the paper's own worked example of a
// normal distributed procedure (Section 4.1).
//
// Each round: every live node marks itself with probability 1/(2 d(v));
// a marked node joins the MIS unless a marked neighbor beats it
// (higher degree, ties by id); MIS nodes and their neighbors leave.
// Independence is guaranteed by construction; only maximality can fail,
// so per Section 4.1 both success properties are "v is decided" and
// deferring undecided nodes never hurts the decided ones — the defining
// normality condition.
//
// The derandomized variant replaces each round's coins with PRG chunks
// keyed by a distance-coloring of G^4 and picks the seed minimizing the
// number of still-undecided nodes (method of conditional expectations /
// exhaustive — same machinery as Lemma 10), then finishes the leftovers
// greedily. Experiment E9 measures both.

#include <cstdint>
#include <vector>

#include "pdc/derand/lemma10.hpp"
#include "pdc/graph/graph.hpp"

namespace pdc::baseline {

struct MisResult {
  std::vector<std::uint8_t> in_mis;
  std::uint64_t rounds = 0;
  std::uint64_t greedy_added = 0;  // derandomized finish only
  std::vector<double> undecided_after_round;  // fraction per round
};

/// Validates independence + maximality; returns {independent, maximal}.
std::pair<bool, bool> check_mis(const Graph& g,
                                const std::vector<std::uint8_t>& in_mis);

/// Randomized Luby (true randomness), runs until all nodes decided.
MisResult luby_mis(const Graph& g, std::uint64_t seed,
                   std::uint64_t max_rounds = 10'000);

/// Derandomized Luby: per-round PRG + seed selection, `max_rounds`
/// rounds, then greedy completion of the undecided remainder.
MisResult luby_mis_derandomized(const Graph& g,
                                const derand::Lemma10Options& opt,
                                std::uint64_t max_rounds = 64);

}  // namespace pdc::baseline
