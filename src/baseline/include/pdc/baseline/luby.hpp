#pragma once
// Luby's maximal independent set — the paper's own worked example of a
// normal distributed procedure (Section 4.1).
//
// Each round: every live node marks itself with probability 1/(2 d(v));
// a marked node joins the MIS unless a marked neighbor beats it
// (higher degree, ties by id); MIS nodes and their neighbors leave.
// Independence is guaranteed by construction; only maximality can fail,
// so per Section 4.1 both success properties are "v is decided" and
// deferring undecided nodes never hurts the decided ones — the defining
// normality condition.
//
// The derandomized variant replaces each round's coins with PRG chunks
// keyed by a distance-coloring of G^4 and picks the seed minimizing the
// number of still-undecided nodes (method of conditional expectations /
// exhaustive — same machinery as Lemma 10), then finishes the leftovers
// greedily. Experiment E9 measures both.

#include <cstdint>
#include <vector>

#include "pdc/derand/lemma10.hpp"
#include "pdc/engine/seed_search.hpp"
#include "pdc/graph/graph.hpp"

namespace pdc::baseline {

struct MisResult {
  std::vector<std::uint8_t> in_mis;
  std::uint64_t rounds = 0;
  std::uint64_t greedy_added = 0;  // derandomized finish only
  std::vector<double> undecided_after_round;  // fraction per round
  /// Engine accounting summed over the per-round seed searches
  /// (derandomized variant only).
  engine::SearchStats search;
};

/// Node status codes shared by the Luby implementations.
inline constexpr std::uint8_t kLubyUndecided = 0, kLubyInMis = 1,
                              kLubyOut = 2;

/// One Luby round under a given per-node bit stream factory; returns
/// the updated status vector (does not mutate the input). Exposed so
/// the MPC derandomized variant can score candidate seeds with the
/// exact shared-memory semantics it then executes through messages.
std::vector<std::uint8_t> luby_round(
    const Graph& g, const std::vector<std::uint8_t>& status,
    const prg::BitSourceFactory& bits,
    const std::vector<std::uint32_t>& chunk_of);

/// Greedy completion of still-undecided nodes (the Theorem-12 tail):
/// sequential scan, join unless a neighbor is already in the MIS.
/// Returns how many nodes joined. Shared by the shared-memory and MPC
/// derandomized variants so their outputs stay bit-identical.
std::uint64_t luby_greedy_finish(const Graph& g,
                                 std::vector<std::uint8_t>& status);

/// Validates independence + maximality; returns {independent, maximal}.
std::pair<bool, bool> check_mis(const Graph& g,
                                const std::vector<std::uint8_t>& in_mis);

/// Randomized Luby (true randomness), runs until all nodes decided.
MisResult luby_mis(const Graph& g, std::uint64_t seed,
                   std::uint64_t max_rounds = 10'000);

/// Derandomized Luby: per-round PRG + seed selection, `max_rounds`
/// rounds, then greedy completion of the undecided remainder.
MisResult luby_mis_derandomized(const Graph& g,
                                const derand::Lemma10Options& opt,
                                std::uint64_t max_rounds = 64);

/// Seed selection for one derandomized Luby round as a full engine
/// Selection: searches the round's PRG family (salted by `round`) for a
/// seed whose number of still-undecided nodes beats the seed-space
/// mean. Costs are integer counts, so the choice is deterministic. With
/// opt.search.backend == kSharded and a non-null `search_cluster`, the
/// sweeps execute as capacity-checked cluster rounds (home machines
/// score their own nodes, totals converge-cast) and the Selection is
/// bit-identical to the shared-memory engine's.
engine::Selection select_luby_seed_selection(
    const Graph& g, const std::vector<std::uint8_t>& status,
    const derand::Lemma10Options& opt,
    const std::vector<std::uint32_t>& chunk_of, std::uint64_t round,
    mpc::Cluster* search_cluster = nullptr);

/// Convenience wrapper returning just the seed and absorbing stats —
/// the form the Luby loops consume. The MPC derandomized variant passes
/// its cluster so a kSharded backend scores on the substrate it then
/// replays the round on.
std::uint64_t select_luby_seed(const Graph& g,
                               const std::vector<std::uint8_t>& status,
                               const derand::Lemma10Options& opt,
                               const std::vector<std::uint32_t>& chunk_of,
                               std::uint64_t round,
                               engine::SearchStats* stats,
                               mpc::Cluster* search_cluster = nullptr);

}  // namespace pdc::baseline
