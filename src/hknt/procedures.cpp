#include "pdc/hknt/procedures.hpp"

#include <algorithm>

#include "pdc/util/aligned.hpp"
#include "pdc/util/parallel.hpp"
#include "pdc/util/simd.hpp"

namespace pdc::hknt {

namespace post {

std::uint32_t degree(const ColoringState& s, const ProcedureRun& r,
                     NodeId v) {
  std::uint32_t d = 0;
  for (NodeId u : s.graph().neighbors(v)) {
    if (s.is_colored(u) || s.is_deferred(u)) continue;
    if (s.participates(u) && r.proposed[u] != kNoColor) continue;  // colors now
    ++d;
  }
  return d;
}

std::uint32_t available(const ColoringState& s, const ProcedureRun& r,
                        NodeId v) {
  auto pal = s.palettes().palette(v);
  std::vector<Color> blocked;
  for (NodeId u : s.graph().neighbors(v)) {
    if (s.is_colored(u)) {
      blocked.push_back(s.color(u));
    } else if (s.participates(u) && r.proposed[u] != kNoColor) {
      blocked.push_back(r.proposed[u]);
    }
  }
  std::sort(blocked.begin(), blocked.end());
  blocked.erase(std::unique(blocked.begin(), blocked.end()), blocked.end());
  std::uint32_t cnt = 0;
  for (Color c : pal)
    if (!std::binary_search(blocked.begin(), blocked.end(), c)) ++cnt;
  return cnt;
}

}  // namespace post

namespace {

bool degree_exempt(const HkntConfig& cfg, const ColoringState& s, NodeId v) {
  return s.graph().degree(v) < cfg.low_degree(s.num_nodes());
}

// ---------------------------------------------------- estimators (Lemma 10)
//
// Shared shape of the trial/slack estimators: a counted node (one whose
// SSP failure the Lemma-10 objective can register) fails only if it
// stays uncolored, and it stays uncolored only when its local draw is
// empty or every drawn color collides with a participating neighbor's
// draw — so the pairwise-collision count over the node's closed
// neighborhood dominates the failure indicator pointwise. prepare()
// caches the seed-independent invariants (participation, availability
// lists, counted classification) and replays each node's local draws
// once per family member into flat tables (machine-local work after
// the Lemma-10 ball gather — no conflict resolution, no ProcedureRun);
// term() is then pure table arithmetic, and every term is an integer,
// which keeps the sharded fixed-point encode exact.

class LocalDrawEstimator : public derand::PessimisticEstimator {
 public:
  void prepare(const derand::EstimatorContext& ctx) override {
    derand::PessimisticEstimator::prepare(ctx);
    const ColoringState& s = *ctx.state;
    const NodeId n = s.num_nodes();
    part_.assign(n, 0);
    counted_.assign(n, 0);
    has_active_nbr_.assign(n, 0);
    avail_.assign(n, {});
    parallel_for(n, [&](std::size_t vi) {
      const NodeId v = static_cast<NodeId>(vi);
      if (!s.participates(v)) return;
      part_[v] = 1;
      avail_[v] = s.available_colors(v);
      counted_[v] = counts(s, v) ? 1 : 0;
    });
    parallel_for(n, [&](std::size_t vi) {
      const NodeId v = static_cast<NodeId>(vi);
      for (NodeId u : s.graph().neighbors(v)) {
        if (part_[u]) {
          has_active_nbr_[v] = 1;
          break;
        }
      }
    });
    build_tables(s);
  }

  void release() override {
    part_.clear();
    counted_.clear();
    has_active_nbr_.clear();
    avail_.clear();
    clear_tables();
    derand::PessimisticEstimator::release();
  }

  std::optional<double> constant_term(NodeId v) const override {
    if (!counted_[v]) return 0.0;
    // Empty availability: the draw is always empty, the node always
    // stays uncolored — the term is identically 1.
    if (avail_[v].empty()) return 1.0;
    // No participating neighbor: nothing to collide with; procedures
    // whose draw alone decides (Try / MultiTrial) always color the
    // node. GenerateSlack still flips its sampling coin, so its term
    // varies with the seed.
    if (!has_active_nbr_[v] && colored_when_unopposed()) return 0.0;
    return std::nullopt;
  }

  std::size_t junta_size(NodeId v) const override {
    if (!counted_[v]) return 0;
    return derand::PessimisticEstimator::junta_size(v);
  }

 protected:
  /// Does the Lemma-10 objective count this node's SSP failure at all?
  virtual bool counts(const ColoringState& s, NodeId v) const = 0;
  /// True when a counted node with a non-empty draw and no
  /// participating neighbor is guaranteed to color itself.
  virtual bool colored_when_unopposed() const { return true; }
  /// Fill the per-member draw tables (ctx() is valid).
  virtual void build_tables(const ColoringState& s) = 0;
  virtual void clear_tables() = 0;

  /// Member m's chunk-routed stream for node v — exactly the stream
  /// simulate() reads through the ChunkedSource.
  BitStream node_stream(std::uint64_t member, NodeId v) const {
    prg::PrgFamily::Source src = ctx().family->source(member);
    return src.stream(v, (*ctx().chunk_of)[v]);
  }

  /// Guard against absurd table footprints (estimator searches are
  /// meant for the enumerable Lemma-10 seed spaces). Shares
  /// derand::kMaxEstimatorTableEntries with the SoaTable builder, which
  /// re-checks the padded footprint at reset time.
  void check_table_budget(std::uint64_t entries_per_member) const {
    PDC_CHECK_MSG(ctx().num_members * entries_per_member <=
                      derand::kMaxEstimatorTableEntries,
                  "estimator draw tables would need "
                      << ctx().num_members << " x " << entries_per_member
                      << " entries; use fewer seed bits or "
                         "EstimatorMode::kOff");
  }

  std::vector<std::uint8_t> part_;
  std::vector<std::uint8_t> counted_;
  std::vector<std::uint8_t> has_active_nbr_;
  std::vector<std::vector<Color>> avail_;
};

/// TryRandomColor: term = [draw empty] + #{participating neighbors
/// drawing v's color}. Failure => v uncolored => empty draw or >= 1
/// collision => term >= 1. Ssp::kNone counts nothing (all-zero
/// objective, the search is vacuously free).
class TryRandomColorEstimator final : public LocalDrawEstimator {
 public:
  TryRandomColorEstimator(const HkntConfig& cfg, TryRandomColorProc::Ssp ssp)
      : cfg_(cfg), ssp_(ssp) {}

  double term(std::uint64_t member, NodeId v) const override {
    if (!counted_[v]) return 0.0;
    const Color pv = pick_.row(v)[member];
    if (pv == kNoColor) return 1.0;
    double t = 0.0;
    for (NodeId u : ctx().state->graph().neighbors(v))
      if (pick_.row(u)[member] == pv) t += 1.0;
    return t;
  }

  void term_batch(std::uint64_t first, std::size_t count, NodeId v,
                  double* sink) const override {
    if (!counted_[v]) return;
    const Color* pv = pick_.row(v) + first;
    static thread_local util::aligned_vector<std::uint32_t> acc;
    acc.assign(count, 0);
    for (NodeId u : ctx().state->graph().neighbors(v)) {
      const Color* pu = pick_.row(u) + first;
      PDC_PRAGMA_SIMD
      for (std::size_t j = 0; j < count; ++j) acc[j] += (pu[j] == pv[j]);
    }
    // acc counts kNoColor == kNoColor matches too, but those lanes take
    // the empty-draw branch — exactly term()'s ordering.
    for (std::size_t j = 0; j < count; ++j)
      sink[j] += (pv[j] == kNoColor) ? 1.0 : static_cast<double>(acc[j]);
  }

  double term_from_source(const ColoringState& s,
                          const prg::BitSourceFactory& bits,
                          NodeId v) const override {
    if (ssp_ == TryRandomColorProc::Ssp::kNone) return 0.0;
    if (!s.participates(v) || degree_exempt(cfg_, s, v)) return 0.0;
    BitStream bv = bits.stream(v, 0);
    const Color pv = s.sample_available(v, bv);
    if (pv == kNoColor) return 1.0;
    double t = 0.0;
    for (NodeId u : s.graph().neighbors(v)) {
      if (!s.participates(u)) continue;
      BitStream bu = bits.stream(u, 0);
      if (s.sample_available(u, bu) == pv) t += 1.0;
    }
    return t;
  }

 protected:
  bool counts(const ColoringState& s, NodeId v) const override {
    return ssp_ != TryRandomColorProc::Ssp::kNone &&
           !degree_exempt(cfg_, s, v);
  }

  void build_tables(const ColoringState&) override {
    const NodeId n = static_cast<NodeId>(part_.size());
    check_table_budget(n);
    // Node-major structure of arrays: row v holds v's pick under every
    // member, so term_batch streams contiguous per-member runs.
    pick_.reset(n, ctx().num_members, kNoColor,
                derand::kMaxEstimatorTableEntries, "TryRandomColor picks");
    parallel_for(n, [&](std::size_t vi) {
      const NodeId v = static_cast<NodeId>(vi);
      if (!part_[v] || avail_[v].empty()) return;
      Color* row = pick_.row(v);
      for (std::uint64_t m = 0; m < ctx().num_members; ++m) {
        BitStream bs = node_stream(m, v);
        row[m] = avail_[v][bs.below(avail_[v].size())];
      }
    });
  }
  void clear_tables() override { pick_.clear(); }

 private:
  HkntConfig cfg_;
  TryRandomColorProc::Ssp ssp_;
  util::SoaTable<Color> pick_;  // row v = member-major picks; kNoColor = none
};

/// GenerateSlack: term = [not sampled] + [sampled, draw empty] +
/// #{sampled participating neighbors drawing v's color}. Failure =>
/// v proposed nothing => one of the three events => term >= 1.
class GenerateSlackEstimator final : public LocalDrawEstimator {
 public:
  explicit GenerateSlackEstimator(const HkntConfig& cfg) : cfg_(cfg) {}

  double term(std::uint64_t member, NodeId v) const override {
    if (!counted_[v]) return 0.0;
    if (!sampled_.row(v)[member]) return 1.0;
    const Color pv = pick_.row(v)[member];
    if (pv == kNoColor) return 1.0;
    double t = 0.0;
    for (NodeId u : ctx().state->graph().neighbors(v))
      if (pick_.row(u)[member] == pv) t += 1.0;
    return t;
  }

  void term_batch(std::uint64_t first, std::size_t count, NodeId v,
                  double* sink) const override {
    if (!counted_[v]) return;
    const std::uint8_t* sv = sampled_.row(v) + first;
    const Color* pv = pick_.row(v) + first;
    static thread_local util::aligned_vector<std::uint32_t> acc;
    acc.assign(count, 0);
    for (NodeId u : ctx().state->graph().neighbors(v)) {
      const Color* pu = pick_.row(u) + first;
      PDC_PRAGMA_SIMD
      for (std::size_t j = 0; j < count; ++j) acc[j] += (pu[j] == pv[j]);
    }
    // Unsampled neighbors hold kNoColor, which never matches a real
    // pick; lanes where v itself is unsampled or drew nothing take the
    // constant-1 branch — term()'s ordering exactly.
    for (std::size_t j = 0; j < count; ++j)
      sink[j] += (!sv[j] || pv[j] == kNoColor) ? 1.0
                                               : static_cast<double>(acc[j]);
  }

  double term_from_source(const ColoringState& s,
                          const prg::BitSourceFactory& bits,
                          NodeId v) const override {
    if (!s.participates(v) || degree_exempt(cfg_, s, v)) return 0.0;
    BitStream bv = bits.stream(v, 0);
    if (!bv.coin(cfg_.sample_num, cfg_.sample_den)) return 1.0;
    const Color pv = s.sample_available(v, bv);
    if (pv == kNoColor) return 1.0;
    double t = 0.0;
    for (NodeId u : s.graph().neighbors(v)) {
      if (!s.participates(u)) continue;
      BitStream bu = bits.stream(u, 0);
      if (!bu.coin(cfg_.sample_num, cfg_.sample_den)) continue;
      if (s.sample_available(u, bu) == pv) t += 1.0;
    }
    return t;
  }

 protected:
  bool counts(const ColoringState& s, NodeId v) const override {
    return !degree_exempt(cfg_, s, v);
  }
  bool colored_when_unopposed() const override { return false; }

  void build_tables(const ColoringState&) override {
    const NodeId n = static_cast<NodeId>(part_.size());
    check_table_budget(n);
    sampled_.reset(n, ctx().num_members, 0, derand::kMaxEstimatorTableEntries,
                   "GenerateSlack sampling");
    pick_.reset(n, ctx().num_members, kNoColor,
                derand::kMaxEstimatorTableEntries, "GenerateSlack picks");
    parallel_for(n, [&](std::size_t vi) {
      const NodeId v = static_cast<NodeId>(vi);
      if (!part_[v]) return;
      std::uint8_t* srow = sampled_.row(v);
      Color* prow = pick_.row(v);
      for (std::uint64_t m = 0; m < ctx().num_members; ++m) {
        BitStream bs = node_stream(m, v);
        if (!bs.coin(cfg_.sample_num, cfg_.sample_den)) continue;
        srow[m] = 1;
        if (!avail_[v].empty())
          prow[m] = avail_[v][bs.below(avail_[v].size())];
      }
    });
  }
  void clear_tables() override {
    sampled_.clear();
    pick_.clear();
  }

 private:
  HkntConfig cfg_;
  util::SoaTable<std::uint8_t> sampled_;  // row v = member-major coin flips
  util::SoaTable<Color> pick_;  // row v = member-major picks; kNoColor if none
};

/// MultiTrial(x): term = [no draws] + ceil(#{(c, u) collisions} / k_v)
/// with k_v = |v's draws| (seed-independent: min(x, |avail|)). Failure
/// => v uncolored => every draw clashes with some participating
/// neighbor => the collision count reaches k_v => term >= 1. The
/// ceil-division keeps the term integer (sharded-grid exact) while
/// staying k_v times tighter than the raw pair count.
class MultiTrialEstimator final : public LocalDrawEstimator {
 public:
  MultiTrialEstimator(const HkntConfig& cfg, std::uint32_t x)
      : cfg_(cfg), x_(x) {}

  double term(std::uint64_t member, NodeId v) const override {
    if (!counted_[v]) return 0.0;
    const std::uint32_t kv = k_[v];
    if (kv == 0) return 1.0;
    std::uint64_t s = 0;
    for (std::uint32_t i = 0; i < kv; ++i) {
      const Color c = picks_.row(off_[v] + i)[member];
      for (NodeId u : ctx().state->graph().neighbors(v)) {
        const std::uint32_t ku = k_[u];
        if (ku == 0) continue;  // non-participant or empty draw
        // Draws are distinct, so the membership scan counts at most one
        // hit per (i, u) — same as the binary search it replaces.
        for (std::uint32_t t = 0; t < ku; ++t) {
          if (picks_.row(off_[u] + t)[member] == c) {
            ++s;
            break;
          }
        }
      }
    }
    return static_cast<double>((s + kv - 1) / kv);
  }

  void term_batch(std::uint64_t first, std::size_t count, NodeId v,
                  double* sink) const override {
    if (!counted_[v]) return;
    const std::uint32_t kv = k_[v];
    if (kv == 0) {
      for (std::size_t j = 0; j < count; ++j) sink[j] += 1.0;
      return;
    }
    static thread_local util::aligned_vector<std::uint32_t> s;
    static thread_local util::aligned_vector<std::uint8_t> eq;
    s.assign(count, 0);
    for (std::uint32_t i = 0; i < kv; ++i) {
      const Color* pv = picks_.row(off_[v] + i) + first;
      for (NodeId u : ctx().state->graph().neighbors(v)) {
        const std::uint32_t ku = k_[u];
        if (ku == 0) continue;
        eq.assign(count, 0);
        for (std::uint32_t t = 0; t < ku; ++t) {
          const Color* pu = picks_.row(off_[u] + t) + first;
          PDC_PRAGMA_SIMD
          for (std::size_t j = 0; j < count; ++j) eq[j] |= (pu[j] == pv[j]);
        }
        PDC_PRAGMA_SIMD
        for (std::size_t j = 0; j < count; ++j) s[j] += eq[j];
      }
    }
    for (std::size_t j = 0; j < count; ++j)
      sink[j] += static_cast<double>((s[j] + kv - 1) / kv);
  }

  double term_from_source(const ColoringState& st,
                          const prg::BitSourceFactory& bits,
                          NodeId v) const override {
    if (!st.participates(v) || degree_exempt(cfg_, st, v)) return 0.0;
    BitStream bv = bits.stream(v, 0);
    const std::vector<Color> pv = st.sample_available_distinct(v, x_, bv);
    if (pv.empty()) return 1.0;
    std::uint64_t s = 0;
    for (NodeId u : st.graph().neighbors(v)) {
      if (!st.participates(u)) continue;
      BitStream bu = bits.stream(u, 0);
      const std::vector<Color> pu = st.sample_available_distinct(u, x_, bu);
      for (Color c : pv)
        if (std::binary_search(pu.begin(), pu.end(), c)) ++s;
    }
    const std::uint64_t kv = pv.size();
    return static_cast<double>((s + kv - 1) / kv);
  }

 protected:
  bool counts(const ColoringState& s, NodeId v) const override {
    return !degree_exempt(cfg_, s, v);
  }

  void build_tables(const ColoringState& s) override {
    const NodeId n = static_cast<NodeId>(part_.size());
    off_.assign(n, 0);
    k_.assign(n, 0);
    total_k_ = 0;
    for (NodeId v = 0; v < n; ++v) {
      off_[v] = static_cast<std::uint32_t>(total_k_);
      if (part_[v]) {
        k_[v] = static_cast<std::uint32_t>(
            std::min<std::size_t>(x_, avail_[v].size()));
        total_k_ += k_[v];
      }
    }
    check_table_budget(total_k_);
    // Node-major structure of arrays: row off_[v] + i holds v's i-th
    // (sorted) draw under every member.
    picks_.reset(static_cast<std::size_t>(total_k_), ctx().num_members,
                 kNoColor, derand::kMaxEstimatorTableEntries,
                 "MultiTrial picks");
    parallel_for(n, [&](std::size_t vi) {
      const NodeId v = static_cast<NodeId>(vi);
      const std::uint32_t kv = k_[v];
      if (kv == 0) return;
      std::vector<Color> scratch;
      for (std::uint64_t m = 0; m < ctx().num_members; ++m) {
        BitStream bs = node_stream(m, v);
        // Replay sample_available_distinct exactly: no bits consumed
        // when the whole list is taken, partial Fisher-Yates + sort
        // otherwise.
        if (avail_[v].size() <= x_) {
          for (std::uint32_t i = 0; i < kv; ++i)
            picks_.row(off_[v] + i)[m] = avail_[v][i];
          continue;
        }
        scratch = avail_[v];
        for (std::uint32_t i = 0; i < x_; ++i) {
          std::uint64_t j = i + bs.below(scratch.size() - i);
          std::swap(scratch[i], scratch[j]);
        }
        std::sort(scratch.begin(), scratch.begin() + kv);
        for (std::uint32_t i = 0; i < kv; ++i)
          picks_.row(off_[v] + i)[m] = scratch[i];
      }
    });
  }
  void clear_tables() override {
    off_.clear();
    k_.clear();
    picks_.clear();
    total_k_ = 0;
  }

 private:
  HkntConfig cfg_;
  std::uint32_t x_;
  std::vector<std::uint32_t> off_;  // node -> first row of its draw block
  std::vector<std::uint32_t> k_;    // node -> draws per member (fixed)
  std::uint64_t total_k_ = 0;
  util::SoaTable<Color> picks_;  // row off_[v]+i = member-major i-th draws
};

}  // namespace

std::unique_ptr<derand::PessimisticEstimator> TryRandomColorProc::estimator()
    const {
  return std::make_unique<TryRandomColorEstimator>(cfg_, ssp_);
}

std::unique_ptr<derand::PessimisticEstimator> GenerateSlackProc::estimator()
    const {
  return std::make_unique<GenerateSlackEstimator>(cfg_);
}

std::unique_ptr<derand::PessimisticEstimator> MultiTrialProc::estimator()
    const {
  return std::make_unique<MultiTrialEstimator>(cfg_, x_);
}

// ---------------------------------------------------------------- TryRandom

ProcedureRun TryRandomColorProc::simulate(
    const ColoringState& state, const prg::BitSourceFactory& bits) const {
  const NodeId n = state.num_nodes();
  ProcedureRun run(n);
  std::vector<Color> pick(n, kNoColor);
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!state.participates(v)) return;
    BitStream bs = bits.stream(v, 0);
    pick[v] = state.sample_available(v, bs);
  });
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!state.participates(v) || pick[v] == kNoColor) return;
    for (NodeId u : state.graph().neighbors(v)) {
      if (state.participates(u) && pick[u] == pick[v]) return;  // conflict
    }
    run.proposed[v] = pick[v];
  });
  return run;
}

bool TryRandomColorProc::ssp(const ColoringState& state,
                             const ProcedureRun& run, NodeId v) const {
  if (ssp_ == Ssp::kNone) return true;
  if (degree_exempt(cfg_, state, v)) return true;
  if (run.proposed[v] != kNoColor) return true;
  std::int64_t s = post::slack(state, run, v);
  std::int64_t d = post::degree(state, run, v);
  return s >= 2 * d;
}

// ------------------------------------------------------------ GenerateSlack

ProcedureRun GenerateSlackProc::simulate(
    const ColoringState& state, const prg::BitSourceFactory& bits) const {
  const NodeId n = state.num_nodes();
  ProcedureRun run(n);
  std::vector<Color> pick(n, kNoColor);
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!state.participates(v)) return;
    BitStream bs = bits.stream(v, 0);
    bool sampled = bs.coin(cfg_.sample_num, cfg_.sample_den);
    if (!sampled) return;
    run.aux[v] = 1;
    pick[v] = state.sample_available(v, bs);
  });
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (run.aux[v] != 1 || pick[v] == kNoColor) return;
    for (NodeId u : state.graph().neighbors(v)) {
      if (run.aux[u] == 1 && pick[u] == pick[v]) return;
    }
    run.proposed[v] = pick[v];
  });
  return run;
}

bool GenerateSlackProc::ssp(const ColoringState& state,
                            const ProcedureRun& run, NodeId v) const {
  if (degree_exempt(cfg_, state, v)) return true;
  if (run.proposed[v] != kNoColor) return true;
  double target =
      std::max(1.0, cfg_.slack_gen_fraction * params_->sparsity[v]);
  return static_cast<double>(post::slack(state, run, v)) >= target;
}

// --------------------------------------------------------------- MultiTrial

ProcedureRun MultiTrialProc::simulate(
    const ColoringState& state, const prg::BitSourceFactory& bits) const {
  const NodeId n = state.num_nodes();
  ProcedureRun run(n);
  std::vector<std::vector<Color>> picks(n);
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!state.participates(v)) return;
    BitStream bs = bits.stream(v, 0);
    picks[v] = state.sample_available_distinct(v, x_, bs);
  });
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!state.participates(v) || picks[v].empty()) return;
    for (Color c : picks[v]) {
      bool clash = false;
      for (NodeId u : state.graph().neighbors(v)) {
        if (state.participates(u) &&
            std::binary_search(picks[u].begin(), picks[u].end(), c)) {
          clash = true;
          break;
        }
      }
      if (!clash) {
        run.proposed[v] = c;
        break;
      }
    }
  });
  return run;
}

bool MultiTrialProc::ssp(const ColoringState& state, const ProcedureRun& run,
                         NodeId v) const {
  if (degree_exempt(cfg_, state, v)) return true;
  if (run.proposed[v] != kNoColor) return true;
  if (final_) return false;  // last MultiTrial: success means colored
  double d = static_cast<double>(post::degree(state, run, v));
  double a = static_cast<double>(post::available(state, run, v));
  return d <= a / divisor_;
}

// ---------------------------------------------------------- SynchColorTrial

ProcedureRun SynchColorTrialProc::simulate(
    const ColoringState& state, const prg::BitSourceFactory& bits) const {
  const NodeId n = state.num_nodes();
  ProcedureRun run(n);
  std::vector<Color> candidate(n, kNoColor);

  parallel_for(acd_->num_cliques, [&](std::size_t ci) {
    const NodeId x = ds_->leader[ci];
    // The leader permutes its available palette with its own randomness
    // and hands out distinct colors; if the leader is already colored or
    // deferred, the clique sits this trial out (its inliers retry via
    // SlackColor / recursion).
    if (!state.participates(x)) return;
    auto avail = state.available_colors(x);
    if (avail.empty()) return;
    BitStream bs = bits.stream(x, 0);
    for (std::size_t i = 0; i + 1 < avail.size(); ++i) {
      std::uint64_t j = i + bs.below(avail.size() - i);
      std::swap(avail[i], avail[j]);
    }
    std::size_t next = 0;
    // Leader takes the first color, inliers the rest in member order.
    candidate[x] = avail[next++];
    for (NodeId v : acd_->cliques[ci]) {
      if (next >= avail.size()) break;
      if (v == x || !ds_->inlier[v] || ds_->put_aside[v]) continue;
      if (!state.participates(v)) continue;
      candidate[v] = avail[next++];
    }
  });

  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (candidate[v] == kNoColor) return;
    // Candidate must sit in v's own available palette (leader palettes
    // only resemble inlier palettes).
    auto mine = state.available_colors(v);
    if (!std::binary_search(mine.begin(), mine.end(), candidate[v])) return;
    // Cross-clique conflicts (within a clique candidates are distinct).
    for (NodeId u : state.graph().neighbors(v)) {
      if (candidate[u] == candidate[v] && u != v) return;
    }
    run.proposed[v] = candidate[v];
  });
  return run;
}

bool SynchColorTrialProc::ssp(const ColoringState& state,
                              const ProcedureRun& run, NodeId v) const {
  if (degree_exempt(cfg_, state, v)) return true;
  const std::uint32_t ci = acd_->clique_of[v];
  if (ci == static_cast<std::uint32_t>(-1)) return true;
  std::uint64_t failed = 0;
  for (NodeId u : acd_->cliques[ci]) {
    if (!ds_->inlier[u] || ds_->put_aside[u]) continue;
    if (!state.participates(u)) continue;
    if (run.proposed[u] == kNoColor) ++failed;
  }
  double bar = std::max(4.0, cfg_.sct_fail_factor * ds_->ell);
  return static_cast<double>(failed) <= bar;
}

// ------------------------------------------------------------------ PutAside

double PutAsideProc::sample_prob(const ColoringState& state,
                                 std::uint32_t clique) const {
  std::uint32_t delta_c = 1;
  for (NodeId v : acd_->cliques[clique])
    delta_c = std::max(delta_c, state.graph().degree(v));
  double p = ds_->ell * ds_->ell /
             (cfg_.put_aside_den * static_cast<double>(delta_c));
  return std::clamp(p, 0.0, 0.5);
}

ProcedureRun PutAsideProc::simulate(const ColoringState& state,
                                    const prg::BitSourceFactory& bits) const {
  const NodeId n = state.num_nodes();
  ProcedureRun run(n);
  std::vector<double> prob(acd_->num_cliques, 0.0);
  for (std::uint32_t c = 0; c < acd_->num_cliques; ++c) {
    if (ds_->low_slackability[c]) prob[c] = sample_prob(state, c);
  }
  // Sample S.
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!state.participates(v)) return;
    const std::uint32_t ci = acd_->clique_of[v];
    if (ci == static_cast<std::uint32_t>(-1) || !ds_->low_slackability[ci])
      return;
    if (!ds_->inlier[v]) return;
    BitStream bs = bits.stream(v, 0);
    const std::uint64_t den = 1u << 20;
    if (bs.below(den) <
        static_cast<std::uint64_t>(prob[ci] * static_cast<double>(den))) {
      run.aux[v] = kSampled;
    }
  });
  // P_C = sampled nodes with no sampled neighbor outside their clique.
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (run.aux[v] != kSampled) return;
    const std::uint32_t ci = acd_->clique_of[v];
    for (NodeId u : state.graph().neighbors(v)) {
      if (run.aux[u] >= kSampled && acd_->clique_of[u] != ci) return;
    }
    run.aux[v] = kInP;
  });
  return run;
}

bool PutAsideProc::ssp(const ColoringState& state, const ProcedureRun& run,
                       NodeId v) const {
  if (degree_exempt(cfg_, state, v)) return true;
  const std::uint32_t ci = acd_->clique_of[v];
  if (ci == static_cast<std::uint32_t>(-1) || !ds_->low_slackability[ci])
    return true;
  std::uint64_t in_p = 0, inliers = 0;
  for (NodeId u : acd_->cliques[ci]) {
    if (!ds_->inlier[u]) continue;
    ++inliers;
    if (run.aux[u] == kInP) ++in_p;
  }
  double bar = std::max(
      1.0, std::min(cfg_.put_aside_min_factor * ds_->ell * ds_->ell,
                    static_cast<double>(inliers) / 8.0));
  return static_cast<double>(in_p) >= bar;
}

void PutAsideProc::commit(ColoringState& state, const ProcedureRun& run,
                          const std::vector<std::uint8_t>& defer) const {
  (void)state;
  for (NodeId v = 0; v < static_cast<NodeId>(run.aux.size()); ++v) {
    if (defer[v]) continue;
    if (run.aux[v] == kInP) ds_->put_aside[v] = 1;
  }
}

}  // namespace pdc::hknt
