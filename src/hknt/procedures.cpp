#include "pdc/hknt/procedures.hpp"

#include <algorithm>

#include "pdc/util/parallel.hpp"

namespace pdc::hknt {

namespace post {

std::uint32_t degree(const ColoringState& s, const ProcedureRun& r,
                     NodeId v) {
  std::uint32_t d = 0;
  for (NodeId u : s.graph().neighbors(v)) {
    if (s.is_colored(u) || s.is_deferred(u)) continue;
    if (s.participates(u) && r.proposed[u] != kNoColor) continue;  // colors now
    ++d;
  }
  return d;
}

std::uint32_t available(const ColoringState& s, const ProcedureRun& r,
                        NodeId v) {
  auto pal = s.palettes().palette(v);
  std::vector<Color> blocked;
  for (NodeId u : s.graph().neighbors(v)) {
    if (s.is_colored(u)) {
      blocked.push_back(s.color(u));
    } else if (s.participates(u) && r.proposed[u] != kNoColor) {
      blocked.push_back(r.proposed[u]);
    }
  }
  std::sort(blocked.begin(), blocked.end());
  blocked.erase(std::unique(blocked.begin(), blocked.end()), blocked.end());
  std::uint32_t cnt = 0;
  for (Color c : pal)
    if (!std::binary_search(blocked.begin(), blocked.end(), c)) ++cnt;
  return cnt;
}

}  // namespace post

namespace {

bool degree_exempt(const HkntConfig& cfg, const ColoringState& s, NodeId v) {
  return s.graph().degree(v) < cfg.low_degree(s.num_nodes());
}

}  // namespace

// ---------------------------------------------------------------- TryRandom

ProcedureRun TryRandomColorProc::simulate(
    const ColoringState& state, const prg::BitSourceFactory& bits) const {
  const NodeId n = state.num_nodes();
  ProcedureRun run(n);
  std::vector<Color> pick(n, kNoColor);
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!state.participates(v)) return;
    BitStream bs = bits.stream(v, 0);
    pick[v] = state.sample_available(v, bs);
  });
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!state.participates(v) || pick[v] == kNoColor) return;
    for (NodeId u : state.graph().neighbors(v)) {
      if (state.participates(u) && pick[u] == pick[v]) return;  // conflict
    }
    run.proposed[v] = pick[v];
  });
  return run;
}

bool TryRandomColorProc::ssp(const ColoringState& state,
                             const ProcedureRun& run, NodeId v) const {
  if (ssp_ == Ssp::kNone) return true;
  if (degree_exempt(cfg_, state, v)) return true;
  if (run.proposed[v] != kNoColor) return true;
  std::int64_t s = post::slack(state, run, v);
  std::int64_t d = post::degree(state, run, v);
  return s >= 2 * d;
}

// ------------------------------------------------------------ GenerateSlack

ProcedureRun GenerateSlackProc::simulate(
    const ColoringState& state, const prg::BitSourceFactory& bits) const {
  const NodeId n = state.num_nodes();
  ProcedureRun run(n);
  std::vector<Color> pick(n, kNoColor);
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!state.participates(v)) return;
    BitStream bs = bits.stream(v, 0);
    bool sampled = bs.coin(cfg_.sample_num, cfg_.sample_den);
    if (!sampled) return;
    run.aux[v] = 1;
    pick[v] = state.sample_available(v, bs);
  });
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (run.aux[v] != 1 || pick[v] == kNoColor) return;
    for (NodeId u : state.graph().neighbors(v)) {
      if (run.aux[u] == 1 && pick[u] == pick[v]) return;
    }
    run.proposed[v] = pick[v];
  });
  return run;
}

bool GenerateSlackProc::ssp(const ColoringState& state,
                            const ProcedureRun& run, NodeId v) const {
  if (degree_exempt(cfg_, state, v)) return true;
  if (run.proposed[v] != kNoColor) return true;
  double target =
      std::max(1.0, cfg_.slack_gen_fraction * params_->sparsity[v]);
  return static_cast<double>(post::slack(state, run, v)) >= target;
}

// --------------------------------------------------------------- MultiTrial

ProcedureRun MultiTrialProc::simulate(
    const ColoringState& state, const prg::BitSourceFactory& bits) const {
  const NodeId n = state.num_nodes();
  ProcedureRun run(n);
  std::vector<std::vector<Color>> picks(n);
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!state.participates(v)) return;
    BitStream bs = bits.stream(v, 0);
    picks[v] = state.sample_available_distinct(v, x_, bs);
  });
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!state.participates(v) || picks[v].empty()) return;
    for (Color c : picks[v]) {
      bool clash = false;
      for (NodeId u : state.graph().neighbors(v)) {
        if (state.participates(u) &&
            std::binary_search(picks[u].begin(), picks[u].end(), c)) {
          clash = true;
          break;
        }
      }
      if (!clash) {
        run.proposed[v] = c;
        break;
      }
    }
  });
  return run;
}

bool MultiTrialProc::ssp(const ColoringState& state, const ProcedureRun& run,
                         NodeId v) const {
  if (degree_exempt(cfg_, state, v)) return true;
  if (run.proposed[v] != kNoColor) return true;
  if (final_) return false;  // last MultiTrial: success means colored
  double d = static_cast<double>(post::degree(state, run, v));
  double a = static_cast<double>(post::available(state, run, v));
  return d <= a / divisor_;
}

// ---------------------------------------------------------- SynchColorTrial

ProcedureRun SynchColorTrialProc::simulate(
    const ColoringState& state, const prg::BitSourceFactory& bits) const {
  const NodeId n = state.num_nodes();
  ProcedureRun run(n);
  std::vector<Color> candidate(n, kNoColor);

  parallel_for(acd_->num_cliques, [&](std::size_t ci) {
    const NodeId x = ds_->leader[ci];
    // The leader permutes its available palette with its own randomness
    // and hands out distinct colors; if the leader is already colored or
    // deferred, the clique sits this trial out (its inliers retry via
    // SlackColor / recursion).
    if (!state.participates(x)) return;
    auto avail = state.available_colors(x);
    if (avail.empty()) return;
    BitStream bs = bits.stream(x, 0);
    for (std::size_t i = 0; i + 1 < avail.size(); ++i) {
      std::uint64_t j = i + bs.below(avail.size() - i);
      std::swap(avail[i], avail[j]);
    }
    std::size_t next = 0;
    // Leader takes the first color, inliers the rest in member order.
    candidate[x] = avail[next++];
    for (NodeId v : acd_->cliques[ci]) {
      if (next >= avail.size()) break;
      if (v == x || !ds_->inlier[v] || ds_->put_aside[v]) continue;
      if (!state.participates(v)) continue;
      candidate[v] = avail[next++];
    }
  });

  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (candidate[v] == kNoColor) return;
    // Candidate must sit in v's own available palette (leader palettes
    // only resemble inlier palettes).
    auto mine = state.available_colors(v);
    if (!std::binary_search(mine.begin(), mine.end(), candidate[v])) return;
    // Cross-clique conflicts (within a clique candidates are distinct).
    for (NodeId u : state.graph().neighbors(v)) {
      if (candidate[u] == candidate[v] && u != v) return;
    }
    run.proposed[v] = candidate[v];
  });
  return run;
}

bool SynchColorTrialProc::ssp(const ColoringState& state,
                              const ProcedureRun& run, NodeId v) const {
  if (degree_exempt(cfg_, state, v)) return true;
  const std::uint32_t ci = acd_->clique_of[v];
  if (ci == static_cast<std::uint32_t>(-1)) return true;
  std::uint64_t failed = 0;
  for (NodeId u : acd_->cliques[ci]) {
    if (!ds_->inlier[u] || ds_->put_aside[u]) continue;
    if (!state.participates(u)) continue;
    if (run.proposed[u] == kNoColor) ++failed;
  }
  double bar = std::max(4.0, cfg_.sct_fail_factor * ds_->ell);
  return static_cast<double>(failed) <= bar;
}

// ------------------------------------------------------------------ PutAside

double PutAsideProc::sample_prob(const ColoringState& state,
                                 std::uint32_t clique) const {
  std::uint32_t delta_c = 1;
  for (NodeId v : acd_->cliques[clique])
    delta_c = std::max(delta_c, state.graph().degree(v));
  double p = ds_->ell * ds_->ell /
             (cfg_.put_aside_den * static_cast<double>(delta_c));
  return std::clamp(p, 0.0, 0.5);
}

ProcedureRun PutAsideProc::simulate(const ColoringState& state,
                                    const prg::BitSourceFactory& bits) const {
  const NodeId n = state.num_nodes();
  ProcedureRun run(n);
  std::vector<double> prob(acd_->num_cliques, 0.0);
  for (std::uint32_t c = 0; c < acd_->num_cliques; ++c) {
    if (ds_->low_slackability[c]) prob[c] = sample_prob(state, c);
  }
  // Sample S.
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!state.participates(v)) return;
    const std::uint32_t ci = acd_->clique_of[v];
    if (ci == static_cast<std::uint32_t>(-1) || !ds_->low_slackability[ci])
      return;
    if (!ds_->inlier[v]) return;
    BitStream bs = bits.stream(v, 0);
    const std::uint64_t den = 1u << 20;
    if (bs.below(den) <
        static_cast<std::uint64_t>(prob[ci] * static_cast<double>(den))) {
      run.aux[v] = kSampled;
    }
  });
  // P_C = sampled nodes with no sampled neighbor outside their clique.
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (run.aux[v] != kSampled) return;
    const std::uint32_t ci = acd_->clique_of[v];
    for (NodeId u : state.graph().neighbors(v)) {
      if (run.aux[u] >= kSampled && acd_->clique_of[u] != ci) return;
    }
    run.aux[v] = kInP;
  });
  return run;
}

bool PutAsideProc::ssp(const ColoringState& state, const ProcedureRun& run,
                       NodeId v) const {
  if (degree_exempt(cfg_, state, v)) return true;
  const std::uint32_t ci = acd_->clique_of[v];
  if (ci == static_cast<std::uint32_t>(-1) || !ds_->low_slackability[ci])
    return true;
  std::uint64_t in_p = 0, inliers = 0;
  for (NodeId u : acd_->cliques[ci]) {
    if (!ds_->inlier[u]) continue;
    ++inliers;
    if (run.aux[u] == kInP) ++in_p;
  }
  double bar = std::max(
      1.0, std::min(cfg_.put_aside_min_factor * ds_->ell * ds_->ell,
                    static_cast<double>(inliers) / 8.0));
  return static_cast<double>(in_p) >= bar;
}

void PutAsideProc::commit(ColoringState& state, const ProcedureRun& run,
                          const std::vector<std::uint8_t>& defer) const {
  (void)state;
  for (NodeId v = 0; v < static_cast<NodeId>(run.aux.size()); ++v) {
    if (defer[v]) continue;
    if (run.aux[v] == kInP) ds_->put_aside[v] = 1;
  }
}

}  // namespace pdc::hknt
