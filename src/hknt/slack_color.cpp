#include "pdc/hknt/slack_color.hpp"

#include <algorithm>
#include <cmath>

namespace pdc::hknt {

std::uint32_t tower(int i, std::uint32_t cap) {
  double x = 1.0;
  for (int k = 0; k < i; ++k) {
    x = std::pow(2.0, x);
    if (x >= static_cast<double>(cap)) return cap;
  }
  return static_cast<std::uint32_t>(std::min<double>(x, cap));
}

int log_star_of(double x) {
  int i = 0;
  double t = 1.0;
  while (t < x && i < 6) {
    t = std::pow(2.0, t);
    ++i;
  }
  return i;
}

SlackColorSchedule make_slack_color(const derand::ColoringState& state,
                                    const HkntConfig& cfg,
                                    const std::string& label) {
  SlackColorSchedule sched;

  // s_min: minimum participating slack among current participants.
  std::int64_t smin = std::numeric_limits<std::int64_t>::max();
  bool any = false;
  for (NodeId v = 0; v < state.num_nodes(); ++v) {
    if (!state.participates(v)) continue;
    any = true;
    smin = std::min(smin, state.participating_slack(v));
  }
  if (!any) smin = 1;
  sched.smin = std::max<std::int64_t>(1, smin);
  sched.rho = std::pow(static_cast<double>(sched.smin),
                       1.0 / (1.0 + cfg.kappa));
  const double rho = std::max(1.0, sched.rho);
  const double rho_kappa = std::pow(rho, cfg.kappa);

  // 1. Amplification TryRandomColor rounds.
  for (int r = 0; r < cfg.amplify_rounds; ++r) {
    bool last = (r + 1 == cfg.amplify_rounds);
    sched.steps.push_back(std::make_unique<TryRandomColorProc>(
        cfg,
        last ? TryRandomColorProc::Ssp::kSlackTwiceDegree
             : TryRandomColorProc::Ssp::kNone,
        label + "/amp" + std::to_string(r)));
  }

  // 2. Tower loop: MultiTrial(2↑↑i) twice.
  const int lstar = log_star_of(rho);
  for (int i = 0; i <= lstar; ++i) {
    std::uint32_t x = tower(i, cfg.multitrial_cap);
    double divisor =
        std::max(1.0, std::min(2.0 * static_cast<double>(x), rho_kappa));
    for (int rep = 0; rep < 2; ++rep) {
      sched.steps.push_back(std::make_unique<MultiTrialProc>(
          cfg, x, divisor, /*final_round=*/false,
          label + "/t" + std::to_string(i) + "." + std::to_string(rep)));
    }
  }

  // 3. Geometric loop: MultiTrial(ρ^{iκ}) three times.
  const int geo = static_cast<int>(std::ceil(1.0 / cfg.kappa));
  for (int i = 1; i <= geo; ++i) {
    std::uint32_t x = static_cast<std::uint32_t>(std::clamp(
        std::pow(rho, cfg.kappa * i), 1.0,
        static_cast<double>(cfg.multitrial_cap)));
    double divisor = std::max(
        1.0, std::min(std::pow(rho, cfg.kappa * (i + 1)), rho));
    for (int rep = 0; rep < 3; ++rep) {
      sched.steps.push_back(std::make_unique<MultiTrialProc>(
          cfg, x, divisor, /*final_round=*/false,
          label + "/g" + std::to_string(i) + "." + std::to_string(rep)));
    }
  }

  // 4. Closing MultiTrial(ρ): success == colored.
  sched.steps.push_back(std::make_unique<MultiTrialProc>(
      cfg,
      static_cast<std::uint32_t>(
          std::clamp(rho, 1.0, static_cast<double>(cfg.multitrial_cap))),
      1.0, /*final_round=*/true, label + "/final"));

  return sched;
}

}  // namespace pdc::hknt
