#include "pdc/hknt/color_middle.hpp"

#include <algorithm>
#include <optional>

#include "pdc/obs/obs.hpp"
#include "pdc/util/parallel.hpp"

namespace pdc::hknt {

namespace {

using derand::ChunkAssignment;
using derand::ColoringState;
using derand::Lemma10Report;

/// Runs one procedure under the shared chunk assignment and appends its
/// report.
void run_step(const derand::NormalProcedure& proc, ColoringState& state,
              const ChunkAssignment& chunks, const MiddleOptions& opt,
              mpc::CostModel* cost, MiddleReport& rep) {
  rep.steps.push_back(
      derand::derandomize_procedure(proc, state, chunks, opt.l10, cost));
}

/// Active mask from a predicate over nodes.
template <typename Pred>
std::vector<std::uint8_t> mask_of(NodeId n, Pred&& pred) {
  std::vector<std::uint8_t> m(n, 0);
  for (NodeId v = 0; v < n; ++v) m[v] = pred(v) ? 1 : 0;
  return m;
}

void run_slack_color(ColoringState& state, const ChunkAssignment& chunks,
                     const MiddleOptions& opt, mpc::CostModel* cost,
                     MiddleReport& rep, const std::string& label) {
  SlackColorSchedule sched = make_slack_color(state, opt.cfg, label);
  for (const auto& step : sched.steps) {
    run_step(*step, state, chunks, opt, cost, rep);
  }
}

}  // namespace

MiddleReport color_middle(derand::ColoringState& state,
                          const D1lcInstance& inst, const MiddleOptions& opt,
                          mpc::CostModel* cost) {
  PDC_SPAN_PHASE("hknt.color_middle");
  // Sequential step spans: emplace/reset walks one optional through the
  // linear Step 1 -> 2 -> 3 structure (Span is neither copyable nor
  // movable by design).
  std::optional<obs::Span> step_span;
  MiddleReport rep;
  const Graph& g = inst.graph;
  const NodeId n = g.num_nodes();
  rep.n = n;

  // Remember which nodes this pass is responsible for.
  std::vector<std::uint8_t> scope(n, 0);
  for (NodeId v = 0; v < n; ++v) scope[v] = state.participates(v) ? 1 : 0;
  auto in_scope = [&](NodeId v) { return scope[v] != 0; };

  // ---- Step 1: deterministic decomposition (Lemmas 16–22). ----
  step_span.emplace("hknt.decomposition", obs::SpanKind::kPhase);
  if (cost) cost->ledger().begin_phase("decomposition");
  NodeParams params = compute_params(inst, cost);
  Acd acd = compute_acd(inst, params, opt.cfg, cost);
  StartSets start = compute_vstart(inst, params, acd, opt.cfg, cost);
  DenseStructure ds = compute_dense_structure(inst, params, acd, opt.cfg, cost);
  rep.acd_violations = check_acd(inst, params, acd, opt.cfg);
  rep.num_cliques = acd.num_cliques;
  for (NodeId v = 0; v < n; ++v) {
    switch (acd.cls[v]) {
      case NodeClass::kSparse: ++rep.sparse; break;
      case NodeClass::kUneven: ++rep.uneven; break;
      case NodeClass::kDense: ++rep.dense; break;
    }
  }
  rep.vstart = start.start_count;
  rep.outliers = ds.count_outliers();
  rep.inliers = ds.count_inliers();

  // Shared chunk assignment (Theorem 12 computes the power-graph
  // coloring once for the whole series).
  ChunkAssignment chunks = derand::assign_chunks(g, /*tau=*/1, opt.l10, cost);

  // ---- Step 2: ColorSparse (Algorithm 5). ----
  step_span.emplace("hknt.color_sparse", obs::SpanKind::kPhase);
  if (cost) cost->ledger().begin_phase("color-sparse");
  // 2a. GenerateSlack on (Vsparse ∪ Vuneven) \ Vstart.
  state.set_active_mask(mask_of(n, [&](NodeId v) {
    return in_scope(v) && !acd.is_dense(v) && !start.start[v];
  }));
  GenerateSlackProc gen_sparse(opt.cfg, params, "sparse");
  run_step(gen_sparse, state, chunks, opt, cost, rep);

  // 2b. SlackColor(Vstart) — Vstart rides on temporary slack from the
  // not-yet-colored easy nodes.
  state.set_active_mask(mask_of(n, [&](NodeId v) {
    return in_scope(v) && start.start[v] != 0;
  }));
  run_slack_color(state, chunks, opt, cost, rep, "start");

  // 2c. SlackColor on the remaining sparse/uneven nodes.
  state.set_active_mask(mask_of(n, [&](NodeId v) {
    return in_scope(v) && !acd.is_dense(v) && !start.start[v];
  }));
  run_slack_color(state, chunks, opt, cost, rep, "sparse");

  // ---- Step 3: ColorDense (Algorithm 7). ----
  step_span.emplace("hknt.color_dense", obs::SpanKind::kPhase);
  if (cost) cost->ledger().begin_phase("color-dense");
  // 3a. GenerateSlack on dense nodes.
  state.set_active_mask(mask_of(n, [&](NodeId v) {
    return in_scope(v) && acd.is_dense(v);
  }));
  GenerateSlackProc gen_dense(opt.cfg, params, "dense");
  run_step(gen_dense, state, chunks, opt, cost, rep);

  // 3b. PutAside for low-slackability cliques.
  state.set_active_mask(mask_of(n, [&](NodeId v) {
    if (!in_scope(v) || !acd.is_dense(v) || !ds.inlier[v]) return false;
    return ds.low_slackability[acd.clique_of[v]] != 0;
  }));
  PutAsideProc put_aside(opt.cfg, acd, ds);
  run_step(put_aside, state, chunks, opt, cost, rep);
  rep.put_aside = ds.count_put_aside();

  // 3c. SlackColor on the outliers (temporary slack: inliers wait).
  state.set_active_mask(mask_of(n, [&](NodeId v) {
    return in_scope(v) && acd.is_dense(v) && ds.outlier[v];
  }));
  run_slack_color(state, chunks, opt, cost, rep, "outliers");

  // 3d. SynchColorTrial on Vdense \ P.
  state.set_active_mask(mask_of(n, [&](NodeId v) {
    return in_scope(v) && acd.is_dense(v) && !ds.put_aside[v];
  }));
  SynchColorTrialProc sct(opt.cfg, acd, ds);
  run_step(sct, state, chunks, opt, cost, rep);

  // 3e. SlackColor on Vdense \ P.
  state.set_active_mask(mask_of(n, [&](NodeId v) {
    return in_scope(v) && acd.is_dense(v) && !ds.put_aside[v];
  }));
  run_slack_color(state, chunks, opt, cost, rep, "dense");

  // 3f. Leaders color the put-aside sets locally (clique-local greedy;
  // P-sets of different cliques span no edges, so order is irrelevant).
  if (cost) {
    std::uint64_t pa_words = 0;
    for (NodeId v = 0; v < n; ++v)
      if (ds.put_aside[v]) pa_words += 1 + inst.palettes.size(v);
    cost->charge_greedy_finish(pa_words);
  }
  for (std::uint32_t c = 0; c < acd.num_cliques; ++c) {
    for (NodeId v : acd.cliques[c]) {
      if (!ds.put_aside[v] || state.is_colored(v) || state.is_deferred(v))
        continue;
      auto avail = state.available_colors(v);
      PDC_CHECK_MSG(!avail.empty(), "put-aside node with empty palette");
      state.set_color(v, avail.front());
    }
  }

  // Restore the pass scope and tally the outcome.
  step_span.reset();
  state.set_active_mask(std::move(scope));
  rep.colored = parallel_count(n, [&](std::size_t v) {
    return state.is_active(static_cast<NodeId>(v)) &&
           state.is_colored(static_cast<NodeId>(v));
  });
  rep.deferred = parallel_count(n, [&](std::size_t v) {
    return state.is_active(static_cast<NodeId>(v)) &&
           state.is_deferred(static_cast<NodeId>(v));
  });
  rep.uncolored = parallel_count(n, [&](std::size_t v) {
    return state.is_active(static_cast<NodeId>(v)) &&
           !state.is_colored(static_cast<NodeId>(v)) &&
           !state.is_deferred(static_cast<NodeId>(v));
  });
  return rep;
}

}  // namespace pdc::hknt
