#include "pdc/hknt/params.hpp"

#include <algorithm>

#include "pdc/util/parallel.hpp"

namespace pdc::hknt {

namespace {

/// |sorted_a ∩ sorted_b| by merge walk.
std::uint64_t sorted_intersection_size(std::span<const NodeId> a,
                                       std::span<const NodeId> b) {
  std::uint64_t c = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++c;
      ++i;
      ++j;
    }
  }
  return c;
}

}  // namespace

double disparity(const PaletteSet& palettes, NodeId u, NodeId v) {
  auto pu = palettes.palette(u);
  auto pv = palettes.palette(v);
  if (pu.empty()) return 0.0;
  // |Ψ(u) \ Ψ(v)| via merge walk over the sorted palettes.
  std::uint64_t common = 0;
  std::size_t i = 0, j = 0;
  while (i < pu.size() && j < pv.size()) {
    if (pu[i] < pv[j]) {
      ++i;
    } else if (pu[i] > pv[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return static_cast<double>(pu.size() - common) /
         static_cast<double>(pu.size());
}

NodeParams compute_params(const D1lcInstance& inst, mpc::CostModel* cost) {
  const Graph& g = inst.graph;
  const PaletteSet& pal = inst.palettes;
  const NodeId n = g.num_nodes();

  NodeParams p;
  p.slack.resize(n);
  p.sparsity.resize(n);
  p.discrepancy.resize(n);
  p.unevenness.resize(n);
  p.slackability.resize(n);
  p.strong_slackability.resize(n);
  p.nbhd_edges.resize(n);

  if (cost) {
    // Lemma 18: slack via sorting; sparsity/disparity/unevenness via the
    // two Lemma-17 subroutines; the rest are local arithmetic.
    cost->charge_sort(g.num_edges() * 2 + pal.total_size());
    cost->charge_neighborhood_gather(g.max_degree());
    cost->charge_neighborhood_gather(g.max_degree());
  }

  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    const auto nb = g.neighbors(v);
    const double dv = static_cast<double>(nb.size());

    p.slack[v] = static_cast<std::int64_t>(pal.size(v)) -
                 static_cast<std::int64_t>(nb.size());

    // m(N(v)): each edge (u,w) inside N(v) counted from both ends.
    std::uint64_t twice = 0;
    for (NodeId u : nb)
      twice += sorted_intersection_size(g.neighbors(u), nb);
    p.nbhd_edges[v] = twice / 2;

    if (nb.size() >= 1) {
      double pairs = dv * (dv - 1.0) / 2.0;
      p.sparsity[v] =
          (pairs - static_cast<double>(p.nbhd_edges[v])) / std::max(dv, 1.0);
    } else {
      p.sparsity[v] = 0.0;
    }

    double disc = 0.0;
    double uneven = 0.0;
    for (NodeId u : nb) {
      disc += disparity(pal, u, v);
      double du = static_cast<double>(g.degree(u));
      uneven += std::max(0.0, du - dv) / (du + 1.0);
    }
    p.discrepancy[v] = disc;
    p.unevenness[v] = uneven;
    p.slackability[v] = disc + p.sparsity[v];
    p.strong_slackability[v] = uneven + p.sparsity[v];
  });

  return p;
}

}  // namespace pdc::hknt
