#include "pdc/hknt/degree_ranges.hpp"

#include <algorithm>
#include <cmath>

#include "pdc/util/parallel.hpp"

namespace pdc::hknt {

std::vector<std::uint32_t> degree_range_thresholds(
    std::uint64_t n, const RangeScheduleOptions& opt) {
  // The paper's ranges are [log^7 n, n], [ (log log n)^7, (log n)^7 ],
  // ...: the i-th threshold is (log^{(i)} n)^e — iterate the *inner*
  // logarithm, which is what makes the count O(log* n).
  std::vector<std::uint32_t> t;
  t.push_back(static_cast<std::uint32_t>(
      std::min<std::uint64_t>(n + 1, 0xFFFFFFFFull)));
  double x = static_cast<double>(n);
  for (int i = 0; i < opt.max_ranges; ++i) {
    x = std::log2(std::max(x, 2.0));
    std::uint32_t bar = std::max<std::uint32_t>(
        opt.floor,
        static_cast<std::uint32_t>(std::pow(x, opt.log_exponent)));
    if (bar >= t.back()) bar = opt.floor;
    t.push_back(bar);
    if (bar <= opt.floor) break;
  }
  if (t.back() != opt.floor) t.push_back(opt.floor);
  return t;
}

RangeScheduleReport color_by_degree_ranges(derand::ColoringState& state,
                                           const D1lcInstance& inst,
                                           const MiddleOptions& mopt,
                                           const RangeScheduleOptions& ropt,
                                           mpc::CostModel* cost) {
  RangeScheduleReport rep;
  const Graph& g = inst.graph;
  const NodeId n = g.num_nodes();

  std::vector<std::uint8_t> scope(n, 0);
  for (NodeId v = 0; v < n; ++v) scope[v] = state.participates(v) ? 1 : 0;

  auto thresholds = degree_range_thresholds(n, ropt);
  for (std::size_t i = 0; i + 1 < thresholds.size(); ++i) {
    const std::uint32_t hi = thresholds[i];
    const std::uint32_t lo = thresholds[i + 1];
    RangeReport rr;
    rr.lo = lo;
    rr.hi = hi;
    std::vector<std::uint8_t> mask(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (scope[v] && g.degree(v) >= lo && g.degree(v) < hi &&
          !state.is_colored(v) && !state.is_deferred(v)) {
        mask[v] = 1;
        ++rr.nodes;
      }
    }
    if (rr.nodes == 0) continue;
    state.set_active_mask(std::move(mask));
    rr.middle = color_middle(state, inst, mopt, cost);
    rep.ranges.push_back(std::move(rr));
  }

  state.set_active_mask(std::move(scope));
  rep.colored = parallel_count(n, [&](std::size_t v) {
    return state.is_active(static_cast<NodeId>(v)) &&
           state.is_colored(static_cast<NodeId>(v));
  });
  rep.deferred = parallel_count(n, [&](std::size_t v) {
    return state.is_active(static_cast<NodeId>(v)) &&
           state.is_deferred(static_cast<NodeId>(v));
  });
  rep.uncolored = parallel_count(n, [&](std::size_t v) {
    NodeId node = static_cast<NodeId>(v);
    return state.is_active(node) && !state.is_colored(node) &&
           !state.is_deferred(node);
  });
  return rep;
}

}  // namespace pdc::hknt
