#include "pdc/hknt/acd.hpp"

#include <algorithm>
#include <numeric>

#include "pdc/util/parallel.hpp"

namespace pdc::hknt {

namespace {

std::uint64_t sorted_intersection_size(std::span<const NodeId> a,
                                       std::span<const NodeId> b) {
  std::uint64_t c = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++c;
      ++i;
      ++j;
    }
  }
  return c;
}

/// Simple union-find for friend components.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }
  NodeId find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<NodeId> parent_;
};

}  // namespace

Acd compute_acd(const D1lcInstance& inst, const NodeParams& params,
                const HkntConfig& cfg, mpc::CostModel* cost) {
  const Graph& g = inst.graph;
  const NodeId n = g.num_nodes();
  Acd acd;
  acd.cls.assign(n, NodeClass::kSparse);
  acd.clique_of.assign(n, static_cast<std::uint32_t>(-1));

  if (cost) {
    // Lemma 19: classification from precomputed parameters is local;
    // clique identification gathers 2-hop neighborhoods (diameter of an
    // almost-clique is at most 2).
    cost->charge_neighborhood_gather(g.max_degree());
  }

  // Classification by Definition 3 (i)/(ii).
  std::vector<std::uint8_t> dense_candidate(n, 0);
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    const double dv = static_cast<double>(g.degree(v));
    if (params.sparsity[v] >= cfg.eps_sparse * dv) {
      acd.cls[v] = NodeClass::kSparse;
    } else if (params.unevenness[v] >= cfg.eps_sparse * dv) {
      acd.cls[v] = NodeClass::kUneven;
    } else {
      dense_candidate[v] = 1;
    }
  });

  // Friend edges among dense candidates.
  UnionFind uf(n);
  std::vector<std::vector<NodeId>> friend_of(n);
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!dense_candidate[v]) return;
    auto nbv = g.neighbors(v);
    for (NodeId u : nbv) {
      if (u < v || !dense_candidate[u]) continue;
      double mind = static_cast<double>(std::min(g.degree(u), g.degree(v)));
      std::uint64_t common =
          sorted_intersection_size(nbv, g.neighbors(u));
      if (static_cast<double>(common) >= (1.0 - cfg.eps_friend) * mind) {
        friend_of[v].push_back(u);
      }
    }
  });
  for (NodeId v = 0; v < n; ++v)
    for (NodeId u : friend_of[v]) uf.unite(v, u);

  // Components of size >= 2 become candidate almost-cliques; validate
  // (iii)/(iv) and demote violators (then re-validate once — demotion
  // shrinks cliques, so one extra sweep keeps things stable enough; E8
  // measures what is left).
  std::vector<std::vector<NodeId>> comp(n);
  for (NodeId v = 0; v < n; ++v)
    if (dense_candidate[v]) comp[uf.find(v)].push_back(v);

  for (int sweep = 0; sweep < 2; ++sweep) {
    for (NodeId root = 0; root < n; ++root) {
      auto& members = comp[root];
      if (members.empty()) continue;
      if (members.size() == 1) {
        acd.cls[members[0]] = NodeClass::kSparse;
        if (sweep == 0) ++acd.demoted;
        members.clear();
        continue;
      }
      std::vector<NodeId> keep;
      std::vector<NodeId> sorted_members = members;
      std::sort(sorted_members.begin(), sorted_members.end());
      const double size_c = static_cast<double>(members.size());
      for (NodeId v : members) {
        std::uint64_t inside =
            sorted_intersection_size(g.neighbors(v),
                                     std::span<const NodeId>(sorted_members));
        bool ok_iii = static_cast<double>(g.degree(v)) <=
                      (1.0 + cfg.eps_ac) * size_c;
        bool ok_iv = size_c <= (1.0 + cfg.eps_ac) *
                                   static_cast<double>(inside);
        if (ok_iii && ok_iv) {
          keep.push_back(v);
        } else {
          acd.cls[v] = NodeClass::kSparse;
          ++acd.demoted;
        }
      }
      members = std::move(keep);
    }
  }

  for (NodeId root = 0; root < n; ++root) {
    auto& members = comp[root];
    if (members.size() < 2) {
      for (NodeId v : members) acd.cls[v] = NodeClass::kSparse;
      continue;
    }
    const std::uint32_t id = acd.num_cliques++;
    for (NodeId v : members) {
      acd.cls[v] = NodeClass::kDense;
      acd.clique_of[v] = id;
    }
    acd.cliques.push_back(std::move(members));
  }
  return acd;
}

AcdViolations check_acd(const D1lcInstance& inst, const NodeParams& params,
                        const Acd& acd, const HkntConfig& cfg) {
  const Graph& g = inst.graph;
  AcdViolations out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double dv = static_cast<double>(g.degree(v));
    switch (acd.cls[v]) {
      case NodeClass::kSparse:
        // Demoted dense candidates are tolerated as "sparse" only if
        // they are at least weakly sparse; count strict violations of
        // (i) at half the threshold to flag genuinely-dense misfits.
        if (params.sparsity[v] < 0.5 * cfg.eps_sparse * dv && dv > 4)
          ++out.sparse_not_sparse;
        break;
      case NodeClass::kUneven:
        if (params.unevenness[v] < cfg.eps_sparse * dv)
          ++out.uneven_not_uneven;
        break;
      case NodeClass::kDense: {
        const auto& members = acd.cliques[acd.clique_of[v]];
        std::vector<NodeId> sorted_members = members;
        std::sort(sorted_members.begin(), sorted_members.end());
        double size_c = static_cast<double>(members.size());
        std::uint64_t inside = 0;
        for (NodeId u : g.neighbors(v))
          if (std::binary_search(sorted_members.begin(), sorted_members.end(),
                                 u))
            ++inside;
        if (dv > (1.0 + cfg.eps_ac) * size_c) ++out.degree_vs_clique;
        if (size_c > (1.0 + cfg.eps_ac) * static_cast<double>(inside))
          ++out.clique_vs_inside;
        break;
      }
    }
  }
  return out;
}

StartSets compute_vstart(const D1lcInstance& inst, const NodeParams& params,
                         const Acd& acd, const HkntConfig& cfg,
                         mpc::CostModel* cost) {
  const Graph& g = inst.graph;
  const PaletteSet& pal = inst.palettes;
  const NodeId n = g.num_nodes();
  StartSets s;
  s.balanced.assign(n, 0);
  s.disc.assign(n, 0);
  s.easy.assign(n, 0);
  s.heavy.assign(n, 0);
  s.start.assign(n, 0);

  if (cost) {
    // Lemma 21: two Lemma-17 gathers (neighbor degrees/sets, palettes).
    cost->charge_neighborhood_gather(g.max_degree());
    cost->charge_neighborhood_gather(g.max_degree());
  }

  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (acd.cls[v] != NodeClass::kSparse) return;
    const double dv = static_cast<double>(g.degree(v));
    std::uint64_t high_deg_nb = 0;
    for (NodeId u : g.neighbors(v))
      if (static_cast<double>(g.degree(u)) > 2.0 * dv / 3.0) ++high_deg_nb;
    if (static_cast<double>(high_deg_nb) >= cfg.eps1 * dv) s.balanced[v] = 1;
    if (params.discrepancy[v] >= cfg.eps2 * dv) s.disc[v] = 1;
  });

  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    const double dv = static_cast<double>(g.degree(v));
    bool easy = s.balanced[v] || s.disc[v] || acd.is_uneven(v);
    if (!easy && acd.is_sparse(v)) {
      std::uint64_t dense_nb = 0;
      for (NodeId u : g.neighbors(v))
        if (acd.is_dense(u)) ++dense_nb;
      easy = static_cast<double>(dense_nb) >= cfg.eps3 * dv;
    }
    if (easy) s.easy[v] = 1;
  });

  // Heavy colors: H(c) wrt v = Σ_{u ∈ N(v), c ∈ Ψ(u)} 1/|Ψ(u)|.
  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!acd.is_sparse(v) || s.easy[v]) return;
    const double dv = static_cast<double>(g.degree(v));
    auto pv = pal.palette(v);
    double heavy_mass = 0.0;
    for (Color c : pv) {
      double h = 0.0;
      for (NodeId u : g.neighbors(v)) {
        if (pal.contains(u, c))
          h += 1.0 / static_cast<double>(std::max<std::uint32_t>(
                   1, pal.size(u)));
      }
      if (h >= cfg.heavy_color_threshold) heavy_mass += h;
    }
    if (heavy_mass >= cfg.eps4 * dv) s.heavy[v] = 1;
  });

  parallel_for(n, [&](std::size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    if (!acd.is_sparse(v) || s.easy[v] || s.heavy[v]) return;
    const double dv = static_cast<double>(g.degree(v));
    std::uint64_t easy_nb = 0;
    for (NodeId u : g.neighbors(v))
      if (s.easy[u]) ++easy_nb;
    if (static_cast<double>(easy_nb) >= cfg.eps5 * dv) s.start[v] = 1;
  });

  s.start_count = parallel_count(n, [&](std::size_t v) {
    return s.start[v] != 0;
  });
  return s;
}

}  // namespace pdc::hknt
