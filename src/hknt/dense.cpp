#include "pdc/hknt/dense.hpp"

#include <algorithm>

#include "pdc/util/parallel.hpp"

namespace pdc::hknt {

namespace {
std::uint64_t count_mask(const std::vector<std::uint8_t>& m) {
  std::uint64_t c = 0;
  for (auto b : m) c += b;
  return c;
}
}  // namespace

std::uint64_t DenseStructure::count_outliers() const {
  return count_mask(outlier);
}
std::uint64_t DenseStructure::count_inliers() const {
  return count_mask(inlier);
}
std::uint64_t DenseStructure::count_put_aside() const {
  return count_mask(put_aside);
}

DenseStructure compute_dense_structure(const D1lcInstance& inst,
                                       const NodeParams& params,
                                       const Acd& acd, const HkntConfig& cfg,
                                       mpc::CostModel* cost) {
  const Graph& g = inst.graph;
  const NodeId n = g.num_nodes();
  DenseStructure ds;
  ds.leader.assign(acd.num_cliques, kInvalidNode);
  ds.clique_slackability.assign(acd.num_cliques, 0.0);
  ds.low_slackability.assign(acd.num_cliques, 0);
  ds.outlier.assign(n, 0);
  ds.inlier.assign(n, 0);
  ds.put_aside.assign(n, 0);
  ds.ell = cfg.ell(g.max_degree());

  if (cost) {
    // Lemma 22: slackability is already computed (Lemma 18); leader
    // election + outlier selection are clique-local once each clique is
    // gathered (diameter <= 2).
    cost->charge_neighborhood_gather(g.max_degree());
  }

  parallel_for(acd.num_cliques, [&](std::size_t ci) {
    const auto& members = acd.cliques[ci];
    // Leader: minimum slackability, ties to smaller id.
    NodeId x = members[0];
    for (NodeId v : members) {
      if (params.slackability[v] < params.slackability[x] ||
          (params.slackability[v] == params.slackability[x] && v < x)) {
        x = v;
      }
    }
    ds.leader[ci] = x;
    ds.clique_slackability[ci] = params.slackability[x];
    ds.low_slackability[ci] = ds.clique_slackability[ci] <= ds.ell ? 1 : 0;

    auto nbx = g.neighbors(x);
    const std::size_t csize = members.size();

    // Common-neighbor counts with the leader.
    std::vector<std::pair<std::uint64_t, NodeId>> by_common;
    by_common.reserve(csize);
    for (NodeId v : members) {
      if (v == x) continue;
      auto nbv = g.neighbors(v);
      std::uint64_t common = 0;
      std::size_t i = 0, j = 0;
      while (i < nbx.size() && j < nbv.size()) {
        if (nbx[i] < nbv[j]) {
          ++i;
        } else if (nbx[i] > nbv[j]) {
          ++j;
        } else {
          ++common;
          ++i;
          ++j;
        }
      }
      by_common.emplace_back(common, v);
    }
    std::sort(by_common.begin(), by_common.end());

    // (a) fewest common neighbors with x_C.
    std::size_t take_a = std::min<std::size_t>(
        by_common.size(),
        std::max<std::size_t>(g.degree(x), csize) / 3);
    for (std::size_t i = 0; i < take_a; ++i)
      ds.outlier[by_common[i].second] = 1;

    // (b) largest degree.
    std::vector<std::pair<std::uint32_t, NodeId>> by_degree;
    for (NodeId v : members)
      if (v != x) by_degree.emplace_back(g.degree(v), v);
    std::sort(by_degree.rbegin(), by_degree.rend());
    for (std::size_t i = 0; i < std::min(by_degree.size(), csize / 6); ++i)
      ds.outlier[by_degree[i].second] = 1;

    // (c) non-neighbors of the leader.
    for (NodeId v : members) {
      if (v == x) continue;
      if (!std::binary_search(nbx.begin(), nbx.end(), v)) ds.outlier[v] = 1;
    }

    for (NodeId v : members)
      if (v == x || !ds.outlier[v]) ds.inlier[v] = 1;
  });

  return ds;
}

}  // namespace pdc::hknt
