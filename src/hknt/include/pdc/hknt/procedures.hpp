#pragma once
// The randomized subroutines of [HKNT22] packaged as normal (O(1), Δ)
// distributed procedures (Lemma 13).
//
// Every procedure here:
//  * runs in O(1) LOCAL rounds and consumes O~(Δ) random bits per node,
//  * resolves its color conflicts internally (simulate never proposes a
//    monochromatic edge),
//  * exempts nodes of degree < cfg.low_degree(n) from its SSP (the paper
//    handles those with the Lemma-14 low-degree algorithm afterwards),
//  * has WSP == SSP modulo Defer extension (deferral only creates slack
//    — the property the paper highlights for coloring subroutines).
//
// The trial/slack-generation procedures (TryRandomColor, GenerateSlack,
// MultiTrial) additionally provide pessimistic estimators
// (pdc/derand/estimator.hpp): per-node pairwise-collision counts over
// the node's and its neighbors' local color draws that dominate the
// SSP-failure indicator pointwise — a node can only fail its SSP if it
// stayed uncolored, and it only stays uncolored when its draw is empty
// or collides. Lemma 10 in estimator mode searches those terms on the
// engine's analytic/prefix planes with zero simulations. The dense
// procedures (SynchColorTrial, PutAside) provide none: their SSPs are
// clique-global tail events whose local recomputation would have to
// replay leader permutations across neighboring cliques — they keep the
// simulating oracle (EstimatorMode::kRequire fails loudly on them).
//
// Conflict checks and degree/slack quantities use the *participating*
// subsets (temporary-slack semantics; see ColoringState).

#include <memory>
#include <string>
#include <vector>

#include "pdc/derand/normal_procedure.hpp"
#include "pdc/hknt/config.hpp"
#include "pdc/hknt/dense.hpp"
#include "pdc/hknt/params.hpp"

namespace pdc::hknt {

using derand::ColoringState;
using derand::NormalProcedure;
using derand::ProcedureRun;

/// Shared helpers over a run (exposed for tests).
namespace post {
/// v's degree among participants that remain uncolored after the run.
std::uint32_t degree(const ColoringState& s, const ProcedureRun& r, NodeId v);
/// v's available-palette size after the run's proposals commit.
std::uint32_t available(const ColoringState& s, const ProcedureRun& r,
                        NodeId v);
inline std::int64_t slack(const ColoringState& s, const ProcedureRun& r,
                          NodeId v) {
  return static_cast<std::int64_t>(available(s, r, v)) -
         static_cast<std::int64_t>(degree(s, r, v));
}
}  // namespace post

/// Algorithm 3 — TryRandomColor. Each participant picks a uniformly
/// random available color and keeps it unless a participating neighbor
/// picked the same. SSP selectable:
///  * kNone           — trivially true (used for the leading amplification
///                      rounds of SlackColor, whose guarantee attaches to
///                      the final round);
///  * kSlackTwiceDegree — colored, or post-run slack >= 2 * post-run
///                      degree (SlackColor line 2's continuation bar).
class TryRandomColorProc final : public NormalProcedure {
 public:
  enum class Ssp { kNone, kSlackTwiceDegree };

  TryRandomColorProc(const HkntConfig& cfg, Ssp ssp, std::string label)
      : cfg_(cfg), ssp_(ssp), label_(std::move(label)) {}

  std::string name() const override { return "TryRandomColor/" + label_; }
  std::uint64_t rand_words_per_node(const ColoringState&) const override {
    return 1;
  }
  ProcedureRun simulate(const ColoringState& state,
                        const prg::BitSourceFactory& bits) const override;
  bool ssp(const ColoringState& state, const ProcedureRun& run,
           NodeId v) const override;
  /// Estimator term: [pick empty] + #{participating neighbors picking
  /// v's color} (identically 0 for Ssp::kNone — the SSP is vacuous).
  std::unique_ptr<derand::PessimisticEstimator> estimator() const override;

 private:
  HkntConfig cfg_;
  Ssp ssp_;
  std::string label_;
};

/// Algorithm 6 — GenerateSlack. Participants are sampled into S with
/// probability 1/10; sampled nodes run one TryRandomColor among
/// themselves. SSP: post-run slack >= max(1, frac * ζ_v) (the shape of
/// [HKNT22] Lemmas 10–18's slack guarantees), or degree exempt.
class GenerateSlackProc final : public NormalProcedure {
 public:
  GenerateSlackProc(const HkntConfig& cfg, const NodeParams& params,
                    std::string label)
      : cfg_(cfg), params_(&params), label_(std::move(label)) {}

  std::string name() const override { return "GenerateSlack/" + label_; }
  std::uint64_t rand_words_per_node(const ColoringState&) const override {
    return 2;  // sampling coin + color pick
  }
  ProcedureRun simulate(const ColoringState& state,
                        const prg::BitSourceFactory& bits) const override;
  bool ssp(const ColoringState& state, const ProcedureRun& run,
           NodeId v) const override;
  /// Estimator term: [not sampled] + [sampled, pick empty] +
  /// #{sampled participating neighbors picking v's color}.
  std::unique_ptr<derand::PessimisticEstimator> estimator() const override;

 private:
  HkntConfig cfg_;
  const NodeParams* params_;
  std::string label_;
};

/// Algorithm 4 — MultiTrial(x). Each participant samples x distinct
/// available colors and keeps one sampled by no participating neighbor.
/// SSP: colored, or post-run degree <= post-run available / divisor
/// (SlackColor lines 7/12's continuation checks); `final_round` demands
/// being colored outright (line 14).
class MultiTrialProc final : public NormalProcedure {
 public:
  MultiTrialProc(const HkntConfig& cfg, std::uint32_t x, double divisor,
                 bool final_round, std::string label)
      : cfg_(cfg), x_(x), divisor_(divisor), final_(final_round),
        label_(std::move(label)) {}

  std::string name() const override { return "MultiTrial/" + label_; }
  std::uint64_t rand_words_per_node(const ColoringState&) const override {
    return x_ + 1;
  }
  std::uint32_t x() const { return x_; }
  ProcedureRun simulate(const ColoringState& state,
                        const prg::BitSourceFactory& bits) const override;
  bool ssp(const ColoringState& state, const ProcedureRun& run,
           NodeId v) const override;
  /// Estimator term: [no draws possible] + ceil(#{(c, u): u a
  /// participating neighbor whose draw contains v's drawn color c} /
  /// |v's draws|) — at least 1 whenever every draw of v clashes, i.e.
  /// whenever v stays uncolored.
  std::unique_ptr<derand::PessimisticEstimator> estimator() const override;

 private:
  HkntConfig cfg_;
  std::uint32_t x_;
  double divisor_;
  bool final_;
  std::string label_;
};

/// Algorithm 8 — SynchColorTrial. Each almost-clique's leader permutes
/// its available palette and proposes a distinct color to every
/// participating inlier (itself included); proposals survive unless an
/// adjacent participant got the same color (only possible across
/// cliques) or the color is missing from the inlier's own available
/// palette. SSP: at most max(4, f*ℓ) inliers of v's clique remain
/// uncolored, or v's degree is exempt.
class SynchColorTrialProc final : public NormalProcedure {
 public:
  SynchColorTrialProc(const HkntConfig& cfg, const Acd& acd,
                      const DenseStructure& ds)
      : cfg_(cfg), acd_(&acd), ds_(&ds) {}

  std::string name() const override { return "SynchColorTrial"; }
  std::uint64_t rand_words_per_node(const ColoringState& s) const override {
    return s.graph().max_degree() + 2;  // leader permutation
  }
  ProcedureRun simulate(const ColoringState& state,
                        const prg::BitSourceFactory& bits) const override;
  bool ssp(const ColoringState& state, const ProcedureRun& run,
           NodeId v) const override;

 private:
  HkntConfig cfg_;
  const Acd* acd_;
  const DenseStructure* ds_;
};

/// Algorithm 9 — PutAside. Participants (inliers of low-slackability
/// cliques) sample themselves with probability ℓ^2/(48 Δ_C); a sampled
/// node joins P_C if it has no sampled neighbor *outside its own clique*
/// (this is what guarantees put-aside sets of different cliques span no
/// edges; within-clique adjacency is the point of the set). Colors no
/// one; commit writes the put_aside mask into the DenseStructure. SSP:
/// |P_C| >= max(1, min(c * ℓ^2, |I_C|/8)).
class PutAsideProc final : public NormalProcedure {
 public:
  PutAsideProc(const HkntConfig& cfg, const Acd& acd, DenseStructure& ds)
      : cfg_(cfg), acd_(&acd), ds_(&ds) {}

  std::string name() const override { return "PutAside"; }
  std::uint64_t rand_words_per_node(const ColoringState&) const override {
    return 1;
  }
  ProcedureRun simulate(const ColoringState& state,
                        const prg::BitSourceFactory& bits) const override;
  bool ssp(const ColoringState& state, const ProcedureRun& run,
           NodeId v) const override;
  void commit(ColoringState& state, const ProcedureRun& run,
              const std::vector<std::uint8_t>& defer) const override;

  /// aux codes produced by simulate.
  static constexpr std::int64_t kSampled = 1;
  static constexpr std::int64_t kInP = 2;

 private:
  double sample_prob(const ColoringState& state, std::uint32_t clique) const;

  HkntConfig cfg_;
  const Acd* acd_;
  DenseStructure* ds_;
};

}  // namespace pdc::hknt
