#pragma once
// Degree-range scheduling (Section 3 / the [HKNT22] LOCAL driver).
//
// The LOCAL algorithm colors the graph in O(log* n) degree ranges:
// first nodes with degree in [f(n), n], then [f(f(n)), f(n)], and so on,
// where f is the paper's log^7 threshold. Each range runs the full
// ColorMiddle machinery restricted to its nodes; lower ranges enjoy the
// slack created by the colored higher ranges. At laptop scale we expose
// f as `threshold(x) = max(floor, log2(x)^e)` with the paper's shape.

#include <vector>

#include "pdc/hknt/color_middle.hpp"

namespace pdc::hknt {

struct RangeScheduleOptions {
  double log_exponent = 3.0;   // paper: 7; calibrated down for laptop n
  std::uint32_t floor = 8;     // stop once thresholds reach this
  int max_ranges = 8;          // O(log* n) in theory; tiny in practice
};

/// Descending degree thresholds t_0 = n+1 > t_1 > ... > t_k = floor:
/// range i covers degrees [t_{i+1}, t_i).
std::vector<std::uint32_t> degree_range_thresholds(
    std::uint64_t n, const RangeScheduleOptions& opt);

struct RangeReport {
  std::uint32_t lo = 0, hi = 0;   // degree range [lo, hi)
  std::uint64_t nodes = 0;
  MiddleReport middle;
};

struct RangeScheduleReport {
  std::vector<RangeReport> ranges;
  std::uint64_t colored = 0, deferred = 0, uncolored = 0;
};

/// Runs ColorMiddle per degree range, highest range first, over the
/// participants of `state`. Degrees are measured in the input graph
/// (the paper's ranges are over input degrees; lower-range nodes keep
/// gaining slack as higher ranges commit).
RangeScheduleReport color_by_degree_ranges(derand::ColoringState& state,
                                           const D1lcInstance& inst,
                                           const MiddleOptions& mopt,
                                           const RangeScheduleOptions& ropt,
                                           mpc::CostModel* cost);

}  // namespace pdc::hknt
