#pragma once
// ColorMiddle (Algorithm 1): the full [HKNT22] pass for one degree range,
// runnable in randomized mode (true randomness, failures retry) or
// derandomized mode (Lemma 10 per procedure, failures deferred).
//
//   1. ACD + parameters + Vstart + dense structure (Lemmas 16–22,
//      deterministic, O(1) rounds).
//   2. ColorSparse (Algorithm 5): GenerateSlack on
//      (Vsparse ∪ Vuneven) \ Vstart, then SlackColor(Vstart), then
//      SlackColor on the rest of the sparse/uneven nodes.
//   3. ColorDense (Algorithm 7): GenerateSlack on dense nodes, PutAside
//      for low-slackability cliques, SlackColor(outliers),
//      SynchColorTrial(Vdense \ P), SlackColor(Vdense \ P), then leaders
//      color the put-aside sets locally.
//
// Uncolored non-deferred nodes after the pass (randomized-mode failures)
// and deferred nodes (derandomized mode) are left to the caller, which
// recurses via self-reducibility (Theorem 12 / the d1lc driver).

#include <vector>

#include "pdc/derand/theorem12.hpp"
#include "pdc/hknt/acd.hpp"
#include "pdc/hknt/dense.hpp"
#include "pdc/hknt/slack_color.hpp"

namespace pdc::hknt {

struct MiddleOptions {
  HkntConfig cfg;
  derand::Lemma10Options l10;  // strategy kTrueRandom => randomized pass
};

struct MiddleReport {
  // Decomposition statistics.
  std::uint64_t n = 0;
  std::uint64_t sparse = 0, uneven = 0, dense = 0;
  std::uint32_t num_cliques = 0;
  std::uint64_t vstart = 0, outliers = 0, inliers = 0, put_aside = 0;
  AcdViolations acd_violations;
  // Per-procedure derandomization reports, in execution order.
  std::vector<derand::Lemma10Report> steps;
  // End-of-pass state.
  std::uint64_t colored = 0, deferred = 0, uncolored = 0;

  std::uint64_t total_ssp_failures() const {
    std::uint64_t t = 0;
    for (const auto& s : steps) t += s.ssp_failures;
    return t;
  }
};

/// Runs one ColorMiddle pass over the participants of `state` (callers
/// usually set_active_all() first). `inst` must be the instance `state`
/// was built on.
MiddleReport color_middle(derand::ColoringState& state,
                          const D1lcInstance& inst, const MiddleOptions& opt,
                          mpc::CostModel* cost);

}  // namespace pdc::hknt
