#pragma once
// SlackColor (Algorithm 2) as a schedule of normal procedures.
//
// SlackColor(s_min, κ) colors nodes whose slack is linear in their degree
// in O(log* s_min) rounds:
//   1. O(1) TryRandomColor rounds (degree amplification; the last one
//      carries the s(v) >= 2 d(v) continuation bar of line 2);
//   2. for i = 0..log* ρ: MultiTrial(x_i) twice, x_i = 2↑↑i, with the
//      line-7 check d(v) <= s(v) / min(2 x_i, ρ^κ);
//   3. for i = 1..⌈1/κ⌉: MultiTrial(ρ^{iκ}) three times, with the
//      line-12 check d(v) <= s(v) / min(ρ^{(i+1)κ}, ρ);
//   4. a final MultiTrial(ρ) whose success property is being colored.
// Here ρ = s_min^{1/(1+κ)}. Each step is a normal (O(1), Δ)-round
// procedure (Lemma 13), so the whole schedule feeds Lemma 10 directly.

#include <memory>
#include <string>
#include <vector>

#include "pdc/derand/coloring_state.hpp"
#include "pdc/hknt/procedures.hpp"

namespace pdc::hknt {

struct SlackColorSchedule {
  std::vector<std::unique_ptr<derand::NormalProcedure>> steps;
  std::int64_t smin = 1;
  double rho = 1.0;
};

/// Builds the schedule for the *current* participants of `state`
/// (s_min is their minimum participating slack, floored at 1).
SlackColorSchedule make_slack_color(const derand::ColoringState& state,
                                    const HkntConfig& cfg,
                                    const std::string& label);

/// 2↑↑i with saturation at `cap`.
std::uint32_t tower(int i, std::uint32_t cap);

/// Smallest i with 2↑↑i >= x (the log* in the schedule bound).
int log_star_of(double x);

}  // namespace pdc::hknt
