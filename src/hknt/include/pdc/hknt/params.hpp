#pragma once
// The node parameters of Definition 2 (from [HKNT22]).
//
//  slack(v)        = p(v) - d(v)
//  sparsity ζ_v    = (1/d(v)) [ C(d(v),2) - m(N(v)) ]
//  disparity η̄_uv  = |Ψ(u) \ Ψ(v)| / |Ψ(u)|
//  discrepancy η̄_v = Σ_{u∈N(v)} η̄_uv
//  unevenness η_v  = Σ_{u∈N(v)} max(0, d(u)-d(v)) / (d(u)+1)
//  slackability σ̄_v = η̄_v + ζ_v ; strong slackability σ_v = η_v + ζ_v
//
// Lemma 18 computes these in O(1) MPC rounds given Δ <= sqrt(s) via the
// Lemma-17 gathers; compute_params charges exactly those operations.

#include <cstdint>
#include <vector>

#include "pdc/graph/palette.hpp"
#include "pdc/mpc/cost_model.hpp"

namespace pdc::hknt {

struct NodeParams {
  std::vector<std::int64_t> slack;
  std::vector<double> sparsity;             // ζ_v
  std::vector<double> discrepancy;          // η̄_v
  std::vector<double> unevenness;           // η_v
  std::vector<double> slackability;         // σ̄_v
  std::vector<double> strong_slackability;  // σ_v
  std::vector<std::uint64_t> nbhd_edges;    // m(N(v))
};

/// Computes every Definition-2 parameter for all nodes in parallel.
/// Charges Lemma-17/Lemma-18 round costs when `cost` is provided.
NodeParams compute_params(const D1lcInstance& inst, mpc::CostModel* cost);

/// Disparity of a single ordered pair (helper; exposed for tests).
double disparity(const PaletteSet& palettes, NodeId u, NodeId v);

}  // namespace pdc::hknt
