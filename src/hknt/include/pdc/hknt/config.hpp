#pragma once
// Tunable constants of the HKNT22 pipeline.
//
// The paper (and [HKNT22]) fix these as unspecified "suitable constants";
// at asymptotic n any choice works, at laptop n they need calibration.
// Defaults here are the values the test suite validates; experiments
// sweep several of them.

#include <cmath>
#include <cstdint>

namespace pdc::hknt {

struct HkntConfig {
  // --- ACD (Definition 3) ---
  double eps_sparse = 0.10;  // ε_sp: v sparse iff ζ_v >= ε_sp d(v)
  double eps_ac = 0.50;      // ε_ac: clique size vs degree tolerances
  double eps_friend = 0.20;  // friend edge: |N(u)∩N(v)| >= (1-ε_f) min(d)

  // --- Vstart decomposition (Section 5.2 constants ε_1..ε_5) ---
  double eps1 = 0.30;  // Vbalanced: many similar-degree neighbors
  double eps2 = 0.30;  // Vdisc: discrepancy >= ε_2 d(v)
  double eps3 = 0.30;  // easy: many dense neighbors
  double eps4 = 0.20;  // Vheavy: total heavy-color mass >= ε_4 d(v)
  double eps5 = 0.30;  // Vstart: many easy neighbors
  double heavy_color_threshold = 1.0;  // H(c) >= this => heavy

  // --- Degree thresholds (Section 5's log^7 n analog; see DESIGN.md §5)
  // Nodes below low_degree(n) are exempted from SSPs (handled by the
  // Lemma-14 low-degree solver afterwards).
  std::uint32_t low_degree_floor = 8;
  double low_degree_log_factor = 1.0;  // low = max(floor, factor * log2 n)

  // --- GenerateSlack (Algorithm 6) ---
  std::uint64_t sample_num = 1, sample_den = 10;  // S-sampling prob 1/10
  double slack_gen_fraction = 0.02;  // SSP target: slack >= frac * ζ_v

  // --- SlackColor (Algorithm 2) ---
  int amplify_rounds = 2;      // leading TryRandomColor calls
  double kappa = 0.27;         // κ parameter
  std::uint32_t multitrial_cap = 512;  // cap on x (palette samples)

  // --- Dense coloring ---
  double ell_exponent = 2.1;   // ℓ = log^2.1 Δ
  double put_aside_den = 48.0; // sampling prob ℓ^2 / (48 Δ_C)
  double sct_fail_factor = 2.0;  // SynchColorTrial SSP: fails <= f*ℓ
  double put_aside_min_factor = 0.02;  // SSP: |P_C| >= factor * ℓ^2

  std::uint32_t low_degree(std::uint64_t n) const {
    double l = low_degree_log_factor * std::log2(std::max<double>(n, 2.0));
    return std::max<std::uint32_t>(low_degree_floor,
                                   static_cast<std::uint32_t>(l));
  }

  double ell(std::uint32_t max_degree) const {
    double lg = std::log2(std::max<double>(max_degree, 4.0));
    return std::pow(lg, ell_exponent);
  }
};

}  // namespace pdc::hknt
