#pragma once
// Almost-clique decomposition (Definition 3) and the Vstart breakdown.
//
// V is partitioned into Vsparse ⊔ Vuneven ⊔ Vdense with Vdense split into
// almost-cliques C_1..C_t satisfying, for every v in C_i,
//   (iii) d(v) <= (1+ε_ac) |C_i|   and   (iv) |C_i| <= (1+ε_ac)|N(v)∩C_i|.
//
// Construction (the classical friend-edge route, cf. [AA20, HKNT22]):
// nodes that are neither ε_sp-sparse nor ε_sp-uneven are dense
// candidates; u,v are friends when they are adjacent and share
// (1-ε_f) min(d(u), d(v)) neighbors; almost-cliques are the connected
// components of the friend graph on dense candidates. Components whose
// members violate (iii)/(iv) are demoted to Vsparse; experiment E8
// measures residual violations rather than assuming them away.

#include <cstdint>
#include <vector>

#include "pdc/hknt/config.hpp"
#include "pdc/hknt/params.hpp"
#include "pdc/mpc/cost_model.hpp"

namespace pdc::hknt {

enum class NodeClass : std::uint8_t { kSparse, kUneven, kDense };

struct Acd {
  std::vector<NodeClass> cls;
  std::vector<std::uint32_t> clique_of;  // valid where cls == kDense
  std::uint32_t num_cliques = 0;
  std::vector<std::vector<NodeId>> cliques;  // members per clique
  std::uint64_t demoted = 0;  // dense candidates pushed back to sparse

  bool is_dense(NodeId v) const { return cls[v] == NodeClass::kDense; }
  bool is_sparse(NodeId v) const { return cls[v] == NodeClass::kSparse; }
  bool is_uneven(NodeId v) const { return cls[v] == NodeClass::kUneven; }
};

/// Computes the (deg+1)-ACD. Charges Lemma-19 round costs.
Acd compute_acd(const D1lcInstance& inst, const NodeParams& params,
                const HkntConfig& cfg, mpc::CostModel* cost);

/// Property check of Definition 3 on an ACD; returns per-property
/// violation counts (0 everywhere = valid decomposition).
struct AcdViolations {
  std::uint64_t sparse_not_sparse = 0;   // (i)
  std::uint64_t uneven_not_uneven = 0;   // (ii)
  std::uint64_t degree_vs_clique = 0;    // (iii)
  std::uint64_t clique_vs_inside = 0;    // (iv)
  std::uint64_t total() const {
    return sparse_not_sparse + uneven_not_uneven + degree_vs_clique +
           clique_vs_inside;
  }
};
AcdViolations check_acd(const D1lcInstance& inst, const NodeParams& params,
                        const Acd& acd, const HkntConfig& cfg);

/// The Vstart decomposition of Section 5.2 (heavy colors, Vbalanced,
/// Vdisc, Veasy, Vheavy, Vstart). Lemma 21 computes it in O(1) rounds.
struct StartSets {
  std::vector<std::uint8_t> balanced, disc, easy, heavy, start;
  std::uint64_t start_count = 0;
};
StartSets compute_vstart(const D1lcInstance& inst, const NodeParams& params,
                         const Acd& acd, const HkntConfig& cfg,
                         mpc::CostModel* cost);

}  // namespace pdc::hknt
