#pragma once
// Leaders, outliers, inliers and put-aside bookkeeping for almost-cliques
// (Lemma 22 and Algorithm 7 context).
//
// Per clique C: the leader x_C is the member with minimum slackability;
// the outliers O_C are the union of (a) the max{d(x_C), |C|}/3 members
// with the fewest common neighbors with x_C, (b) the |C|/6 members of
// largest degree, and (c) members not adjacent to x_C. Inliers are the
// rest. A clique is low-slackability when σ̄(x_C) <= ℓ = log^2.1 Δ; those
// cliques get put-aside sets (filled in by the PutAside procedure).

#include <cstdint>
#include <vector>

#include "pdc/hknt/acd.hpp"

namespace pdc::hknt {

struct DenseStructure {
  std::vector<NodeId> leader;                 // per clique
  std::vector<double> clique_slackability;    // σ̄(x_C)
  std::vector<std::uint8_t> low_slackability; // per clique
  std::vector<std::uint8_t> outlier;          // per node
  std::vector<std::uint8_t> inlier;           // per node
  std::vector<std::uint8_t> put_aside;        // per node; set by PutAside
  double ell = 0.0;                           // ℓ = log^2.1 Δ

  std::uint64_t count_outliers() const;
  std::uint64_t count_inliers() const;
  std::uint64_t count_put_aside() const;
};

DenseStructure compute_dense_structure(const D1lcInstance& inst,
                                       const NodeParams& params,
                                       const Acd& acd, const HkntConfig& cfg,
                                       mpc::CostModel* cost);

}  // namespace pdc::hknt
