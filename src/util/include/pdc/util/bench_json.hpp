#pragma once
// Machine-readable bench output: a tiny JSON-array writer for the
// microbenches' --json <path> flag. Each record is one flat object of
// string / number fields ({plane, terms_per_sec, wall_ms} for
// bench_planes; per-row experiment records for the E-series benches),
// so CI and plotting scripts can consume throughput gates without
// scraping the human tables.

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "pdc/util/check.hpp"

namespace pdc::util {

class BenchJson {
 public:
  /// Starts a new record; subsequent field() calls attach to it.
  BenchJson& obj() {
    records_.emplace_back();
    return *this;
  }

  BenchJson& field(const std::string& name, const std::string& value) {
    return put(name, quote(value));
  }
  BenchJson& field(const std::string& name, const char* value) {
    return put(name, quote(value));
  }
  BenchJson& field(const std::string& name, double value) {
    // inf/nan are not JSON; emit null so consumers see an absent value
    // instead of a parse error. Finite values round-trip exactly.
    if (!std::isfinite(value)) return put(name, "null");
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10)
       << value;
    return put(name, os.str());
  }
  BenchJson& field(const std::string& name, std::uint64_t value) {
    return put(name, std::to_string(value));
  }
  BenchJson& field(const std::string& name, std::int64_t value) {
    return put(name, std::to_string(value));
  }
  BenchJson& field(const std::string& name, bool value) {
    return put(name, value ? "true" : "false");
  }

  /// Writes every record as a JSON array to `path`.
  void write(const std::string& path) const {
    std::ofstream out(path);
    PDC_CHECK_MSG(out.good(), "cannot open --json path " << path);
    out << "[\n";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      out << "  {";
      for (std::size_t f = 0; f < records_[r].size(); ++f) {
        if (f) out << ", ";
        out << quote(records_[r][f].first) << ": " << records_[r][f].second;
      }
      out << "}" << (r + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]\n";
  }

  bool empty() const { return records_.empty(); }

 private:
  BenchJson& put(const std::string& name, std::string rendered) {
    PDC_CHECK_MSG(!records_.empty(), "BenchJson::field before obj()");
    records_.back().emplace_back(name, std::move(rendered));
    return *this;
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

}  // namespace pdc::util
