#pragma once
// Lightweight runtime-check macros used across the library.
//
// PDC_CHECK is always-on (models invariants whose violation means the
// simulation or an algorithm's contract is broken — e.g. an MPC machine
// exceeding its local space). PDC_ASSERT compiles out in NDEBUG builds
// and guards internal consistency only.

#include <sstream>
#include <stdexcept>
#include <string>

namespace pdc {

/// Thrown when a PDC_CHECK fails. Carries the failing expression and a
/// user-supplied context message.
class check_error : public std::runtime_error {
 public:
  explicit check_error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "PDC_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw check_error(os.str());
}
}  // namespace detail

}  // namespace pdc

#define PDC_CHECK(expr)                                                 \
  do {                                                                  \
    if (!(expr)) ::pdc::detail::check_fail(#expr, __FILE__, __LINE__, {}); \
  } while (0)

#define PDC_CHECK_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream pdc_os_;                                       \
      pdc_os_ << msg;                                                   \
      ::pdc::detail::check_fail(#expr, __FILE__, __LINE__, pdc_os_.str()); \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define PDC_ASSERT(expr) ((void)0)
#else
#define PDC_ASSERT(expr) PDC_CHECK(expr)
#endif
