#pragma once
// Aligned-text table printer for the experiment harnesses (bench/).
//
// Every experiment binary prints its rows through this so that
// EXPERIMENTS.md and bench_output.txt share one stable format, and can
// optionally mirror the table to a CSV file for downstream plotting.

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pdc/util/check.hpp"

namespace pdc {

class Table {
 public:
  explicit Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  /// Append one row; the number of cells must match the header.
  Table& row(const std::vector<std::string>& cells) {
    PDC_CHECK_MSG(cells.size() == columns_.size(),
                  "row width " << cells.size() << " != header width "
                               << columns_.size());
    rows_.push_back(cells);
    return *this;
  }

  /// Format a double compactly (used by bench code building cells).
  static std::string num(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      width[c] = columns_[c].size();
      for (const auto& r : rows_) width[c] = std::max(width[c], r[c].size());
    }
    os << "== " << title_ << " ==\n";
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(width[c]) + 2)
           << cells[c];
      }
      os << '\n';
    };
    line(columns_);
    std::string rule;
    for (std::size_t c = 0; c < columns_.size(); ++c)
      rule += std::string(width[c] + 2, '-');
    os << rule << '\n';
    for (const auto& r : rows_) line(r);
    os << '\n';
  }

  /// Also mirror as CSV (no quoting; cells must not contain commas).
  void write_csv(const std::string& path) const {
    std::ofstream f(path);
    PDC_CHECK_MSG(f.good(), "cannot open " << path);
    for (std::size_t c = 0; c < columns_.size(); ++c)
      f << columns_[c] << (c + 1 < columns_.size() ? "," : "\n");
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size(); ++c)
        f << r[c] << (c + 1 < r.size() ? "," : "\n");
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdc
