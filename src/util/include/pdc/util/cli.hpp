#pragma once
// Minimal command-line flag parser for the tools and examples.
// Supports --flag=value, --flag value, and boolean --flag forms.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pdc/util/check.hpp"

namespace pdc {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) != 0) {
        positional_.push_back(std::move(a));
        continue;
      }
      a = a.substr(2);
      auto eq = a.find('=');
      if (eq != std::string::npos) {
        flags_[a.substr(0, eq)] = a.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[a] = argv[++i];
      } else {
        flags_[a] = "";  // boolean flag
      }
    }
  }

  bool has(const std::string& name) const { return flags_.count(name) > 0; }

  std::string get(const std::string& name, const std::string& dflt) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? dflt : it->second;
  }

  std::int64_t get_int(const std::string& name, std::int64_t dflt) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return dflt;
    PDC_CHECK_MSG(!it->second.empty(), "--" << name << " needs a value");
    return std::stoll(it->second);
  }

  double get_double(const std::string& name, double dflt) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return dflt;
    PDC_CHECK_MSG(!it->second.empty(), "--" << name << " needs a value");
    return std::stod(it->second);
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pdc
