#pragma once
// SIMD kernels for the formula planes.
//
// The batched member evaluators (AnalyticOracle::eval_members) stream a
// contiguous run of family members through one junta point at a time:
// for members j in a block, compute bucket_j = ((a_j·x + b_j) mod p · m)
// >> 61 and compare against a reference. This header provides that
// bucket computation in three forms sharing one 64-bit-only derivation:
//
//   * bucket_span       — fill out[j] with the bucket of (a_j, b_j);
//   * bucket_match_span — acc[j] += (bucket_j == ref[j])  (h1's d');
//   * bucket_count_span — acc[j] += (bucket_j == target)  (h2's p').
//
// The portable member loops use the same one-mulx 128-bit arithmetic
// as eval_params — their speedup over the scalar oracle paths comes
// from the hoisted junta point, the precomputed params tables and the
// independent (hence pipelineable) member iterations, not from vector
// units. Under -DPDC_ENABLE_AVX2 (CMake option, adds -mavx2) the three
// entry points instead dispatch to 4-lane AVX2 kernels built from
// _mm256_mul_epu32 partial products, since x86 has no 64×64→128
// vector multiply.
//
// Bit-identity is the hard contract: every path — scalar eval_params,
// bucket_one, and the AVX2 lanes — produces the exact same bucket for
// every (a, b, x, m). The AVX2 derivation: with p = 2^61-1, split
// a = a_hi·2^32 + a_lo and x = x_hi·2^32 + x_lo (all operands
// canonical, < p), so a·x = hi_hi·2^64 + mid·2^32 + lo_lo with
// hi_hi = a_hi·x_hi < 2^58, mid = a_lo·x_hi + a_hi·x_lo < 2^62,
// lo_lo = a_lo·x_lo < 2^64. Reducing each power of two mod p
// (2^61 ≡ 1, hence 2^64 ≡ 8 and mid·2^32 ≡ (mid mod 2^29)·2^32 +
// (mid >> 29)) gives a partial sum < 2^63; two folds and one
// conditional subtract land in [0, p), matching MersenneField::mul's
// canonical output exactly. The multiply-shift bucket (v·m) >> 61 for
// v < 2^61, m < 2^32 is ((v_hi·m + (v_lo·m >> 32)) >> 29) — exact, no
// 128-bit product needed. tests/test_simd_planes.cpp property-checks
// the identity against EnumerablePairwiseFamily::eval_params on both
// compiled paths.

#include <cstddef>
#include <cstdint>

#include "pdc/util/check.hpp"
#include "pdc/util/hashing.hpp"

#if defined(PDC_ENABLE_AVX2) && defined(__AVX2__)
#define PDC_HAVE_AVX2 1
#include <immintrin.h>
#endif

#if defined(_OPENMP)
#define PDC_PRAGMA_SIMD _Pragma("omp simd")
#else
#define PDC_PRAGMA_SIMD
#endif

namespace pdc::util::simd {

/// One junta point prepared for batched hashing: x reduced mod p and
/// split into 32-bit halves, with the bucket range m. Hoisting this out
/// of the member loop is what the batched entry points buy — the scalar
/// path redoes the reduction per (member, point) pair.
struct HashPoint {
  std::uint64_t x_lo = 0;
  std::uint64_t x_hi = 0;
  std::uint64_t m = 1;

  HashPoint() = default;
  HashPoint(std::uint64_t x, std::uint64_t m_in) {
    const std::uint64_t xr = x % MersenneField::kPrime;
    x_lo = xr & 0xFFFFFFFFULL;
    x_hi = xr >> 32;
    m = m_in;
    // The 64-bit multiply-shift below needs m < 2^32 (every in-repo
    // range is a bin count, palette size or availability-list length).
    PDC_ASSERT(m_in > 0 && m_in <= 0xFFFFFFFFULL);
  }
};

/// The scalar bucket computation — the exact eval_params arithmetic
/// (one 64×64→128 multiply plus the Mersenne fold) applied to a
/// pre-reduced point; bit-identical to
/// EnumerablePairwiseFamily::eval_params(a, b, x, m) by construction.
inline std::uint64_t bucket_one(std::uint64_t a, std::uint64_t b,
                                const HashPoint& pt) {
  const std::uint64_t x = pt.x_lo | (pt.x_hi << 32);
  const std::uint64_t v = MersenneField::add(MersenneField::mul(a, x), b);
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(v) * pt.m) >> 61);
}

#ifdef PDC_HAVE_AVX2

namespace detail {

/// Four lanes of bucket_one: a/b hold four canonical members.
inline __m256i bucket4(__m256i a, __m256i b, const HashPoint& pt) {
  const __m256i p = _mm256_set1_epi64x(
      static_cast<long long>(MersenneField::kPrime));
  const __m256i lo32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i x_lo = _mm256_set1_epi64x(static_cast<long long>(pt.x_lo));
  const __m256i x_hi = _mm256_set1_epi64x(static_cast<long long>(pt.x_hi));
  const __m256i a_lo = _mm256_and_si256(a, lo32);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  // _mm256_mul_epu32 multiplies the low 32 bits of each 64-bit lane;
  // every operand below is < 2^32, so the products are exact.
  const __m256i lo_lo = _mm256_mul_epu32(a_lo, x_lo);
  const __m256i mid = _mm256_add_epi64(_mm256_mul_epu32(a_lo, x_hi),
                                       _mm256_mul_epu32(a_hi, x_lo));
  const __m256i hi_hi = _mm256_mul_epu32(a_hi, x_hi);
  __m256i r = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_and_si256(lo_lo, p),
                       _mm256_srli_epi64(lo_lo, 61)),
      _mm256_add_epi64(
          _mm256_slli_epi64(
              _mm256_and_si256(mid, _mm256_set1_epi64x(0x1FFFFFFFLL)), 32),
          _mm256_add_epi64(_mm256_srli_epi64(mid, 29),
                           _mm256_slli_epi64(hi_hi, 3))));
  r = _mm256_add_epi64(_mm256_and_si256(r, p), _mm256_srli_epi64(r, 61));
  // r < p + 4 < 2^62, so the signed 64-bit compare is safe: subtract p
  // from lanes with r >= p (r > p - 1).
  const __m256i pm1 = _mm256_set1_epi64x(
      static_cast<long long>(MersenneField::kPrime - 1));
  r = _mm256_sub_epi64(r,
                       _mm256_and_si256(_mm256_cmpgt_epi64(r, pm1), p));
  r = _mm256_add_epi64(r, b);
  r = _mm256_sub_epi64(r,
                       _mm256_and_si256(_mm256_cmpgt_epi64(r, pm1), p));
  const __m256i m = _mm256_set1_epi64x(static_cast<long long>(pt.m));
  const __m256i lo_m = _mm256_mul_epu32(_mm256_and_si256(r, lo32), m);
  const __m256i hi_m = _mm256_mul_epu32(_mm256_srli_epi64(r, 32), m);
  return _mm256_srli_epi64(
      _mm256_add_epi64(hi_m, _mm256_srli_epi64(lo_m, 32)), 29);
}

}  // namespace detail

inline void bucket_span(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n, const HashPoint& pt,
                        std::uint64_t* out) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + j));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                        detail::bucket4(va, vb, pt));
  }
  for (; j < n; ++j) out[j] = bucket_one(a[j], b[j], pt);
}

inline void bucket_match_span(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n, const HashPoint& pt,
                              const std::uint64_t* ref, std::uint32_t* acc) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + j));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + j));
    const __m256i vref = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ref + j));
    const __m256i eq =
        _mm256_cmpeq_epi64(detail::bucket4(va, vb, pt), vref);
    // Each equal lane contributes exactly 1 to its 32-bit counter.
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), eq);
    for (int k = 0; k < 4; ++k) acc[j + k] += lanes[k] & 1u;
  }
  for (; j < n; ++j) acc[j] += (bucket_one(a[j], b[j], pt) == ref[j]);
}

inline void bucket_count_span(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n, const HashPoint& pt,
                              std::uint64_t target, std::uint32_t* acc) {
  std::size_t j = 0;
  const __m256i vt = _mm256_set1_epi64x(static_cast<long long>(target));
  for (; j + 4 <= n; j += 4) {
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + j));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + j));
    const __m256i eq = _mm256_cmpeq_epi64(detail::bucket4(va, vb, pt), vt);
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), eq);
    for (int k = 0; k < 4; ++k) acc[j + k] += lanes[k] & 1u;
  }
  for (; j < n; ++j) acc[j] += (bucket_one(a[j], b[j], pt) == target);
}

#else  // !PDC_HAVE_AVX2

// No omp-simd pragma here: the 128-bit multiply cannot be vectorized
// for baseline x86-64, and the iterations are already independent —
// out-of-order pipelining over the member loop is the whole win.

inline void bucket_span(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n, const HashPoint& pt,
                        std::uint64_t* out) {
  for (std::size_t j = 0; j < n; ++j) out[j] = bucket_one(a[j], b[j], pt);
}

inline void bucket_match_span(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n, const HashPoint& pt,
                              const std::uint64_t* ref, std::uint32_t* acc) {
  for (std::size_t j = 0; j < n; ++j)
    acc[j] += (bucket_one(a[j], b[j], pt) == ref[j]);
}

inline void bucket_count_span(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n, const HashPoint& pt,
                              std::uint64_t target, std::uint32_t* acc) {
  for (std::size_t j = 0; j < n; ++j)
    acc[j] += (bucket_one(a[j], b[j], pt) == target);
}

#endif  // PDC_HAVE_AVX2

}  // namespace pdc::util::simd
