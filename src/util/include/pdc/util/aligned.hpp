#pragma once
// 64-byte-aligned storage for the SIMD formula-plane tables.
//
// The batched member evaluators (AnalyticOracle::eval_members and the
// estimator term_batch fast paths) stream contiguous per-member runs
// through `omp simd` / AVX2 lanes. Two layout properties make those
// loops profitable: every table row starts on a cache-line boundary
// (so vector loads never split lines and adjacent rows never false-
// share between the engine's item threads), and rows of a
// structure-of-arrays table are padded to whole lines (so a row's
// length is always a multiple of the lane width for the element type).
// aligned_vector supplies the storage; SoaTable supplies the row
// discipline plus the footprint guard shared with the estimator draw
// tables (pdc/derand/estimator.hpp names the budget constant).

#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <vector>

#include "pdc/util/check.hpp"

namespace pdc::util {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal allocator giving every allocation `Alignment`-byte alignment
/// (std::vector's default allocator only guarantees alignof(T)).
template <typename T, std::size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T));

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector whose data() is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// Row stride (in elements) that pads `row_len` up to whole cache
/// lines, so consecutive rows stay line-aligned inside one allocation.
template <typename T>
constexpr std::size_t aligned_stride(std::size_t row_len) {
  static_assert(kCacheLineBytes % sizeof(T) == 0,
                "element size must divide the cache line");
  constexpr std::size_t per_line = kCacheLineBytes / sizeof(T);
  return (row_len + per_line - 1) / per_line * per_line;
}

/// Structure-of-arrays table: `rows` logical rows of `row_len` entries
/// each, every row padded to a cache-line boundary. The padded
/// footprint is checked against `max_entries` before allocation (the
/// estimator tables pass pdc::derand::kMaxEstimatorTableEntries), so a
/// search that would materialize an absurd table refuses up front
/// instead of exhausting memory.
template <typename T>
class SoaTable {
 public:
  SoaTable() = default;

  SoaTable(std::size_t rows, std::size_t row_len, T fill,
           std::uint64_t max_entries, const char* what) {
    reset(rows, row_len, fill, max_entries, what);
  }

  void reset(std::size_t rows, std::size_t row_len, T fill,
             std::uint64_t max_entries, const char* what) {
    rows_ = rows;
    row_len_ = row_len;
    stride_ = aligned_stride<T>(row_len);
    const std::uint64_t total =
        static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(stride_);
    PDC_CHECK_MSG(total <= max_entries,
                  what << ": table would need " << rows << " x " << stride_
                       << " = " << total << " entries (budget " << max_entries
                       << "); use fewer members or items");
    data_.assign(static_cast<std::size_t>(total), fill);
  }

  void clear() {
    rows_ = 0;
    row_len_ = 0;
    stride_ = 0;
    data_.clear();
    data_.shrink_to_fit();
  }

  T* row(std::size_t r) { return data_.data() + r * stride_; }
  const T* row(std::size_t r) const { return data_.data() + r * stride_; }

  std::size_t rows() const { return rows_; }
  std::size_t row_len() const { return row_len_; }
  std::size_t stride() const { return stride_; }
  bool empty() const { return data_.empty(); }

 private:
  std::size_t rows_ = 0;
  std::size_t row_len_ = 0;
  std::size_t stride_ = 0;
  aligned_vector<T> data_;
};

}  // namespace pdc::util
