#pragma once
// Sense-reversing centralized barrier for persistent worker pools.
//
// The thread-pool substrate under mpc::Cluster separates synchronous
// rounds with barriers: every worker (plus the host) arrives, and no
// one proceeds until all have. A sense-reversing barrier makes the
// episode counter implicit — each participant keeps a local sense bit
// that flips per episode, the last arriver flips the shared sense and
// resets the arrival count, and everyone else waits for the shared
// sense to match their flipped local one. No episode can overtake the
// previous: latecomers only reach the next arrive after observing the
// flip that ends the current one.
//
// Waiting is two-stage: a short spin (the common case — all workers
// reach the barrier within a round's tail) falling back to a futex
// wait (std::atomic::wait), so oversubscribed pools — more machines
// than cores, the p-workers-on-one-host shape — do not burn cores
// spinning.

#include <atomic>
#include <cstdint>

#include "pdc/util/timer.hpp"

namespace pdc {

class SenseBarrier {
 public:
  /// A barrier over `parties` participants (workers + host).
  explicit SenseBarrier(std::uint32_t parties)
      : parties_(parties), remaining_(parties) {}

  SenseBarrier(const SenseBarrier&) = delete;
  SenseBarrier& operator=(const SenseBarrier&) = delete;

  /// Arrive and block until all parties have arrived this episode.
  /// `local_sense` is the caller's per-participant sense bit: start it
  /// at false and pass the same flag to every arrival on this barrier.
  /// When `wait_us` is non-null, the microseconds this caller spent
  /// blocked (arrival to release) are accumulated into it — the
  /// barrier-wait observability the substrate's round spans report.
  void arrive_and_wait(bool& local_sense,
                       std::uint64_t* wait_us = nullptr) {
    const bool episode = !local_sense;
    local_sense = episode;
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver: reset for the next episode, then release everyone.
      // The reset is ordered before the release store, so a participant
      // that observes the flip (and only then can re-arrive) also
      // observes the reset count.
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(episode, std::memory_order_release);
      sense_.notify_all();
      return;
    }
    const std::uint64_t t0 = wait_us ? Timer::now_us() : 0;
    for (int spin = 0; spin < kSpins; ++spin) {
      if (sense_.load(std::memory_order_acquire) == episode) {
        if (wait_us) *wait_us += Timer::now_us() - t0;
        return;
      }
      cpu_relax();
    }
    while (sense_.load(std::memory_order_acquire) != episode)
      sense_.wait(!episode, std::memory_order_acquire);
    if (wait_us) *wait_us += Timer::now_us() - t0;
  }

  std::uint32_t parties() const { return parties_; }

 private:
  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
  }

  static constexpr int kSpins = 128;

  const std::uint32_t parties_;
  std::atomic<std::uint32_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace pdc
