#pragma once
// Wall-clock timer for coarse benchmark measurements. This is the one
// clock in the codebase: SearchStats::wall_ms, the bench tables, and
// the pdc::obs trace spans all read the same steady_clock through this
// class, so timelines and tables agree.

#include <chrono>
#include <cstdint>

namespace pdc {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

  /// Microseconds since the steady_clock epoch — the timestamp base of
  /// every obs::Span. Monotone, not wall time.
  static std::uint64_t now_us() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            clock::now().time_since_epoch())
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pdc
