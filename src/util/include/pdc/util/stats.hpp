#pragma once
// Streaming summary statistics used by the benchmark harnesses.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace pdc {

/// Welford-style online accumulator for mean / stddev / min / max.
class Summary {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace pdc
