#pragma once
// Bounded-independence hash families.
//
// The derandomization literature this library reproduces (Sec. 4.2 of the
// paper; CDP21b/CDP21d for the partition step) uses two seed-compression
// devices: pseudorandom generators and k-wise independent hash families.
// This header provides the latter: polynomials of degree k-1 over the
// Mersenne-prime field GF(2^61 - 1), which give exactly k-wise independent
// outputs and have seeds of k field elements — small enough to enumerate
// or to search with the method of conditional expectations.

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "pdc/util/aligned.hpp"
#include "pdc/util/check.hpp"
#include "pdc/util/rng.hpp"

namespace pdc {

/// Arithmetic over GF(p) with p = 2^61 - 1 (Mersenne prime).
struct MersenneField {
  static constexpr std::uint64_t kPrime = (1ULL << 61) - 1;

  static constexpr std::uint64_t reduce(unsigned __int128 x) {
    std::uint64_t lo = static_cast<std::uint64_t>(x & kPrime);
    std::uint64_t hi = static_cast<std::uint64_t>(x >> 61);
    std::uint64_t r = lo + hi;
    if (r >= kPrime) r -= kPrime;
    return r;
  }

  static constexpr std::uint64_t add(std::uint64_t a, std::uint64_t b) {
    std::uint64_t r = a + b;
    if (r >= kPrime) r -= kPrime;
    return r;
  }

  static constexpr std::uint64_t mul(std::uint64_t a, std::uint64_t b) {
    return reduce(static_cast<unsigned __int128>(a) * b);
  }
};

/// A k-wise independent hash function h : [2^61-1] -> [2^61-1] given by a
/// random degree-(k-1) polynomial. Evaluations at any k distinct points
/// are independent and uniform over the field.
class KWiseHash {
 public:
  /// Constructs a hash with explicit coefficients (the "seed").
  explicit KWiseHash(std::vector<std::uint64_t> coeffs)
      : coeffs_(std::move(coeffs)) {
    PDC_CHECK(!coeffs_.empty());
    for (auto& c : coeffs_) c %= MersenneField::kPrime;
  }

  /// Draws a random member of the k-wise independent family.
  static KWiseHash random(int k, Xoshiro256& rng) {
    PDC_CHECK(k >= 1);
    std::vector<std::uint64_t> c(static_cast<std::size_t>(k));
    for (auto& x : c) x = rng.below(MersenneField::kPrime);
    return KWiseHash(std::move(c));
  }

  /// Horner evaluation of the seed polynomial at x.
  std::uint64_t operator()(std::uint64_t x) const {
    x %= MersenneField::kPrime;
    std::uint64_t acc = 0;
    for (std::size_t i = coeffs_.size(); i-- > 0;) {
      acc = MersenneField::add(MersenneField::mul(acc, x), coeffs_[i]);
    }
    return acc;
  }

  /// Output reduced to [0, m). Near-uniform for m << 2^61.
  std::uint64_t bucket(std::uint64_t x, std::uint64_t m) const {
    PDC_CHECK(m > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)(x)) * m) >> 61);
  }

  int independence() const { return static_cast<int>(coeffs_.size()); }
  const std::vector<std::uint64_t>& coefficients() const { return coeffs_; }

 private:
  std::vector<std::uint64_t> coeffs_;
};

/// A small *enumerable* pairwise-independent family h : [U] -> [m], of the
/// form h(x) = ((a x + b) mod p) mod-range m, with (a, b) drawn from a
/// deterministic grid of `size()` members. Enumerability is what lets
/// deterministic algorithms try every member (or walk it with the method
/// of conditional expectations) and keep the best — the pattern used by
/// LowSpacePartition's hash selection (Lemma 23).
class EnumerablePairwiseFamily {
 public:
  /// family_log2: log2 of the number of members to expose.
  EnumerablePairwiseFamily(std::uint64_t salt, int family_log2)
      : salt_(salt), log2_(family_log2) {
    PDC_CHECK(family_log2 >= 1 && family_log2 <= 30);
  }

  std::uint64_t size() const { return 1ULL << log2_; }
  /// Bit width of the member index space (size() == 2^log2()). The
  /// prefix-walk oracles report this as their bit_count().
  int log2() const { return log2_; }

  /// The i-th member's (a, b) parameters, derived deterministically.
  std::pair<std::uint64_t, std::uint64_t> params(std::uint64_t index) const {
    PDC_CHECK(index < size());
    std::uint64_t a = mix64(hash_combine(salt_, 2 * index + 1));
    std::uint64_t b = mix64(hash_combine(salt_ ^ 0x5bf03635ULL, 2 * index));
    a %= MersenneField::kPrime;
    if (a == 0) a = 1;
    b %= MersenneField::kPrime;
    return {a, b};
  }

  /// The family's bucket map from explicit member parameters:
  /// ((a·x + b) mod p · m) >> 61. This is the *single* definition of the
  /// affine-hash bucket formula — Partition::color_bin, the enumerating
  /// partition oracles and the analytic closed forms all route through
  /// it, so their buckets agree bit for bit by construction.
  static std::uint64_t eval_params(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t x, std::uint64_t m) {
    std::uint64_t v = MersenneField::add(
        MersenneField::mul(a, x % MersenneField::kPrime), b);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(v) * m) >> 61);
  }

  /// Evaluate member `index` on x, mapping into [0, m).
  std::uint64_t eval(std::uint64_t index, std::uint64_t x,
                     std::uint64_t m) const {
    auto [a, b] = params(index);
    return eval_params(a, b, x, m);
  }

  /// Ceiling on the structure-of-arrays params tables below: 2^22
  /// members is 2 x 32 MiB, past which the batched oracles fall back
  /// to scalar evaluation rather than trade the cache for a table.
  static constexpr std::uint64_t kMaxParamTableMembers = 1ULL << 22;

  /// Materializes the (a, b) params of members [0, n) into 64-byte-
  /// aligned structure-of-arrays tables, n clamped to size(). The
  /// batched (eval_members) oracles build this once per search so the
  /// member-major inner loops read contiguous params instead of
  /// re-deriving mix64 chains per (item, member). Leaves both tables
  /// empty — the callers' scalar-fallback signal — when the table
  /// would exceed kMaxParamTableMembers.
  void params_table(std::uint64_t n,
                    util::aligned_vector<std::uint64_t>& pa,
                    util::aligned_vector<std::uint64_t>& pb) const {
    pa.clear();
    pb.clear();
    n = std::min(n, size());
    if (n > kMaxParamTableMembers) return;
    pa.resize(static_cast<std::size_t>(n));
    pb.resize(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      auto [a, b] = params(i);
      pa[static_cast<std::size_t>(i)] = a;
      pb[static_cast<std::size_t>(i)] = b;
    }
  }

  // ---- Idealized pairwise-independent expectations (closed forms). ----
  //
  // Under the *idealized* family — (a, b) uniform over F_p × F_p — the
  // pair (h(x), h(y)) for x ≠ y (mod p) is uniform over F_p², so every
  // bucket event has an exact closed form driven by how many field
  // values multiply-shift into each bucket. These are the ground-truth
  // expectations the analytic conditional-expectation oracles rest on;
  // the deterministic grid above is a finite sample of the idealized
  // family, and tests/test_analytic.cpp property-checks that its
  // empirical frequencies match these values within sampling tolerance.

  /// Exact number of field values v in [0, p) with (v·m) >> 61 == bucket.
  static std::uint64_t bucket_count(std::uint64_t bucket, std::uint64_t m) {
    PDC_CHECK(m > 0 && bucket < m);
    const unsigned __int128 q = static_cast<unsigned __int128>(1) << 61;
    auto lo = static_cast<std::uint64_t>((bucket * q + m - 1) / m);
    auto hi = static_cast<std::uint64_t>(((bucket + 1) * q + m - 1) / m);
    // v = 2^61 - 1 multiply-shifts into bucket m-1 but is not a field
    // element (the field is [0, 2^61 - 1)).
    return hi - lo - (bucket + 1 == m ? 1 : 0);
  }

  /// Pr[h(x) lands in `bucket`] under the idealized family (exact).
  static double bucket_probability(std::uint64_t bucket, std::uint64_t m) {
    return static_cast<double>(bucket_count(bucket, m)) /
           static_cast<double>(MersenneField::kPrime);
  }

  /// Pr[h(x) and h(y) land in the same bucket of [0, m)] for x ≠ y
  /// (mod p) under the idealized family: sum_B (count_B / p)². O(m).
  static double collision_probability(std::uint64_t m) {
    PDC_CHECK(m > 0);
    const double p = static_cast<double>(MersenneField::kPrime);
    double sum = 0.0;
    for (std::uint64_t bkt = 0; bkt < m; ++bkt) {
      const double w = static_cast<double>(bucket_count(bkt, m));
      sum += (w / p) * (w / p);
    }
    return sum;
  }

 private:
  std::uint64_t salt_;
  int log2_;
};

}  // namespace pdc
