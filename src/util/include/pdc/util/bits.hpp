#pragma once
// Bit-stream view over pseudorandom words.
//
// Normal distributed procedures (Definition 5) consume a bounded number
// of random bits per node. BitStream is the uniform interface through
// which procedures draw those bits, whether the backing words come from
// true (seeded) randomness or from a PRG chunk — swapping the source is
// exactly the derandomization step.

#include <cstdint>
#include <functional>

#include "pdc/util/check.hpp"

namespace pdc {

/// A deterministic stream of bits backed by a word supplier. The supplier
/// is called with an increasing word index; the stream slices words into
/// bit requests. Consuming code must bound its total draw (the procedure
/// declares rand_bits_per_node()); the stream counts consumption so the
/// framework can verify the declared bound.
class BitStream {
 public:
  using WordFn = std::function<std::uint64_t(std::uint64_t word_index)>;

  explicit BitStream(WordFn words) : words_(std::move(words)) {}

  /// Next `k` bits (1..64) as the low bits of the result.
  std::uint64_t bits(int k) {
    PDC_CHECK(k >= 1 && k <= 64);
    std::uint64_t out = 0;
    int got = 0;
    while (got < k) {
      if (avail_ == 0) {
        cur_ = words_(word_idx_++);
        avail_ = 64;
      }
      int take = std::min(k - got, avail_);
      out |= (cur_ & ((take == 64) ? ~0ULL : ((1ULL << take) - 1))) << got;
      cur_ >>= take;
      avail_ -= take;
      got += take;
    }
    consumed_ += k;
    return out;
  }

  /// Uniform value in [0, bound) using fixed 64-bit draws (Lemire map).
  /// Deterministic given the stream position.
  std::uint64_t below(std::uint64_t bound) {
    PDC_CHECK(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(bits(64)) * bound) >> 64);
  }

  bool coin(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

  std::uint64_t bits_consumed() const { return consumed_; }

 private:
  WordFn words_;
  std::uint64_t word_idx_ = 0;
  std::uint64_t cur_ = 0;
  int avail_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace pdc
