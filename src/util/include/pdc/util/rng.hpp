#pragma once
// Deterministic, splittable pseudorandom number generation.
//
// All randomness in the library flows through these generators so that
// every "randomized" run is reproducible from a single 64-bit seed, and
// so that per-node random streams can be split deterministically (node v
// in round r always sees the same stream for a given master seed).

#include <cstdint>
#include <limits>

namespace pdc {

/// SplitMix64 — used for seeding and as a cheap mixing finalizer.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
struct SplitMix64 {
  std::uint64_t state = 0;

  explicit constexpr SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
};

/// Stateless 64-bit mix; good avalanche. Used to derive independent
/// per-(seed, node, round) streams without storing per-node state.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// Combine values into one well-mixed word (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a + 0x9E3779B97F4A7C15ULL + (b << 6) + (b >> 2) + mix64(b));
}

/// xoshiro256** — the main work-horse generator. Satisfies the C++
/// UniformRandomBitGenerator concept so it can drive std::shuffle etc.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection-free mapping (bias < 2^-64 * bound, which
  /// is negligible for the bounds used here and keeps runs reproducible
  /// across platforms).
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Bernoulli trial with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Derive a generator for a (seed, stream) pair; used for per-node and
/// per-round independent streams.
inline Xoshiro256 substream(std::uint64_t master_seed, std::uint64_t stream) {
  return Xoshiro256(hash_combine(master_seed, stream));
}

}  // namespace pdc
