#pragma once
// Shared-memory parallel loop helpers (OpenMP-backed when available).
//
// The MPC and LOCAL simulators execute one step per machine / per node in
// each synchronous round; those steps are independent by construction, so
// a parallel_for over them is race-free. Keeping the OpenMP pragmas behind
// these helpers keeps the algorithm code readable and lets the library
// build without OpenMP.

#include <cstddef>
#include <cstdint>
#include <vector>

#ifdef PDC_HAVE_OPENMP
#include <omp.h>
#endif

namespace pdc {

inline int max_threads() {
#ifdef PDC_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

inline void set_threads(int t) {
#ifdef PDC_HAVE_OPENMP
  if (t > 0) omp_set_num_threads(t);
#else
  (void)t;
#endif
}

/// Parallel loop over [0, n). `fn` must be safe to run concurrently for
/// distinct indices.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
#ifdef PDC_HAVE_OPENMP
  // Guided scheduling: large early chunks shrinking towards the end.
  // (A fixed chunk size starves the pool when n is small relative to
  // chunk * threads — e.g. a 128-seed search must still fan out.)
#pragma omp parallel for schedule(guided)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    fn(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = 0; i < n; ++i) fn(i);
#endif
}

/// Parallel sum-reduction of fn(i) over [0, n).
template <typename Fn>
double parallel_sum(std::size_t n, Fn&& fn) {
  double total = 0.0;
#ifdef PDC_HAVE_OPENMP
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    total += fn(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = 0; i < n; ++i) total += fn(i);
#endif
  return total;
}

/// Parallel sweep over items accumulating into a width-sized vector of
/// doubles: fn(item, buf) adds item i's contribution into buf[0..width).
/// Each thread works on a private zero-initialized buffer; buffers are
/// summed into `out` (+= semantics, so `out` may carry prior totals).
/// This is the transposed (item-major) aggregation pattern used by the
/// seed-search engine: one pass over the items scores many candidate
/// seeds at once.
template <typename Fn>
void parallel_accumulate(std::size_t n_items, std::size_t width, double* out,
                         Fn&& fn) {
#ifdef PDC_HAVE_OPENMP
#pragma omp parallel
  {
    std::vector<double> local(width, 0.0);
#pragma omp for schedule(guided) nowait
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n_items); ++i) {
      fn(static_cast<std::size_t>(i), local.data());
    }
#pragma omp critical(pdc_parallel_accumulate)
    {
      for (std::size_t k = 0; k < width; ++k) out[k] += local[k];
    }
  }
#else
  for (std::size_t i = 0; i < n_items; ++i) fn(i, out);
#endif
}

/// Parallel count of indices in [0, n) where pred(i) is true.
template <typename Pred>
std::size_t parallel_count(std::size_t n, Pred&& pred) {
  std::int64_t total = 0;
#ifdef PDC_HAVE_OPENMP
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    if (pred(static_cast<std::size_t>(i))) ++total;
  }
#else
  for (std::size_t i = 0; i < n; ++i) {
    if (pred(i)) ++total;
  }
#endif
  return static_cast<std::size_t>(total);
}

}  // namespace pdc
