// pdc::obs implementation: per-thread span buffers merged by a leaky
// tracer singleton, a mutex-protected metrics registry, and the Chrome
// trace-event writer. See obs.hpp for the model.

#include "pdc/obs/obs.hpp"

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "pdc/util/check.hpp"
#include "pdc/util/timer.hpp"

namespace pdc::obs {

namespace {

// ---------------------------------------------------------------------
// Tracer: one buffer per thread, merged at snapshot time.
// ---------------------------------------------------------------------

struct ThreadBuf {
  std::mutex mu;  // taken per record; snapshot takes it too
  std::vector<SpanRecord> spans;
  std::uint32_t tid = 0;
};

// Leaky singleton: never destroyed, so spans finishing during static
// teardown (and the atexit PDC_TRACE writer) stay safe regardless of
// destruction order.
class Tracer {
 public:
  static Tracer& instance() {
    static Tracer* t = new Tracer();
    return *t;
  }

  ThreadBuf* register_thread() {
    std::lock_guard<std::mutex> lock(mu_);
    auto buf = std::make_unique<ThreadBuf>();
    buf->tid = next_tid_++;
    ThreadBuf* raw = buf.get();
    bufs_.push_back(std::move(buf));
    return raw;
  }

  std::vector<SpanRecord> snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SpanRecord> out;
    for (auto& buf : bufs_) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      out.insert(out.end(), buf->spans.begin(), buf->spans.end());
    }
    return out;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& buf : bufs_) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      buf->spans.clear();
    }
  }

 private:
  std::mutex mu_;  // guards bufs_ layout, not their contents
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
  std::uint32_t next_tid_ = 0;
};

ThreadBuf& thread_buf() {
  // The buffer itself is owned (and never freed) by the Tracer, so a
  // pointer cached thread_local stays valid past thread exit.
  thread_local ThreadBuf* buf = Tracer::instance().register_thread();
  return *buf;
}

// The innermost-open-phase stack; only SpanKind::kPhase spans touch it.
thread_local std::vector<const char*> t_phase_stack;

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

// ---------------------------------------------------------------------
// PDC_TRACE=path: collect from load, write at exit.
// ---------------------------------------------------------------------

std::string& env_trace_path() {
  static std::string* path = new std::string();
  return *path;
}

void write_env_trace() { write_chrome_trace(env_trace_path()); }

struct EnvTraceInit {
  EnvTraceInit() {
    if (const char* path = std::getenv("PDC_TRACE");
        path != nullptr && *path != '\0') {
      env_trace_path() = path;
      set_tracing(true);
      std::atexit(write_env_trace);
    }
  }
};
EnvTraceInit g_env_trace_init;

}  // namespace

void set_tracing(bool on) {
  detail::g_tracing.store(on, std::memory_order_relaxed);
}
void set_metrics(bool on) {
  detail::g_metrics.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------

void Span::init(const char* name, SpanKind kind) {
  name_ = name;
  active_ = true;
  phase_ = (kind == SpanKind::kPhase);
  if (phase_) t_phase_stack.push_back(name);
  start_us_ = Timer::now_us();
}

void Span::finish() {
  const std::uint64_t end_us = Timer::now_us();
  if (phase_ && !t_phase_stack.empty()) t_phase_stack.pop_back();
  // A phase span opened for metrics keying alone leaves no record.
  if (tracing_enabled()) {
    ThreadBuf& buf = thread_buf();
    std::lock_guard<std::mutex> lock(buf.mu);
    SpanRecord& rec = buf.spans.emplace_back();
    rec.name = name_;
    rec.start_us = start_us_;
    rec.dur_us = end_us - start_us_;
    rec.tid = buf.tid;
    rec.phase = phase_;
    rec.args = std::move(args_);
  }
}

void Span::tag_u64(const char* key, std::uint64_t value) {
  if (active_) args_.emplace_back(key, std::to_string(value));
}

void Span::tag_real(const char* key, double value) {
  if (active_) args_.emplace_back(key, std::to_string(value));
}

const char* current_phase() {
  return t_phase_stack.empty() ? "" : t_phase_stack.back();
}

std::vector<SpanRecord> trace_snapshot() {
  return Tracer::instance().snapshot();
}

void clear_trace() { Tracer::instance().clear(); }

void write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  PDC_CHECK_MSG(out.good(), "cannot open trace path " << path);
  std::vector<SpanRecord> spans = trace_snapshot();
  out << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    std::string line = "{\"name\":\"";
    json_escape(line, s.name);
    line += "\",\"cat\":\"pdc\",\"ph\":\"X\",\"ts\":";
    line += std::to_string(s.start_us);
    line += ",\"dur\":";
    line += std::to_string(s.dur_us);
    line += ",\"pid\":1,\"tid\":";
    line += std::to_string(s.tid);
    if (!s.args.empty()) {
      line += ",\"args\":{";
      for (std::size_t a = 0; a < s.args.size(); ++a) {
        if (a) line += ',';
        line += '"';
        json_escape(line, s.args[a].first);
        line += "\":\"";
        json_escape(line, s.args[a].second);
        line += '"';
      }
      line += '}';
    }
    line += '}';
    out << line << (i + 1 < spans.size() ? ",\n" : "\n");
  }
  out << "]}\n";
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

void MetricValue::absorb(const MetricValue& o) {
  kind = o.kind;
  switch (o.kind) {
    case MetricKind::kCounter: count += o.count; break;
    case MetricKind::kReal: real += o.real; break;
    case MetricKind::kGauge: real = std::max(real, o.real); break;
  }
}

struct Metrics::Impl {
  mutable std::mutex mu;
  // Ordered map so snapshots (and the JSON export) are deterministic.
  std::map<std::pair<std::string, Labels>, MetricValue> entries;
};

Metrics::Metrics() : impl_(new Impl()) {}
Metrics::~Metrics() { delete impl_; }

Metrics::Impl& Metrics::impl() const { return *impl_; }

void Metrics::add(const std::string& name, const Labels& labels,
                  std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(impl().mu);
  MetricValue& v = impl().entries[{name, labels}];
  v.kind = MetricKind::kCounter;
  v.count += delta;
}

void Metrics::add_real(const std::string& name, const Labels& labels,
                       double delta) {
  std::lock_guard<std::mutex> lock(impl().mu);
  MetricValue& v = impl().entries[{name, labels}];
  v.kind = MetricKind::kReal;
  v.real += delta;
}

void Metrics::gauge_max(const std::string& name, const Labels& labels,
                        double value) {
  std::lock_guard<std::mutex> lock(impl().mu);
  MetricValue& v = impl().entries[{name, labels}];
  v.kind = MetricKind::kGauge;
  v.real = std::max(v.real, value);
}

void Metrics::absorb(const Metrics& other) {
  // Copy first so self-absorb and lock ordering are non-issues.
  std::vector<Entry> theirs = other.snapshot();
  std::lock_guard<std::mutex> lock(impl().mu);
  for (const Entry& e : theirs) {
    impl().entries[{e.name, e.labels}].absorb(e.value);
  }
}

std::vector<Metrics::Entry> Metrics::snapshot() const {
  std::lock_guard<std::mutex> lock(impl().mu);
  std::vector<Entry> out;
  out.reserve(impl().entries.size());
  for (const auto& [key, value] : impl().entries) {
    out.push_back(Entry{key.first, key.second, value});
  }
  return out;
}

void Metrics::clear() {
  std::lock_guard<std::mutex> lock(impl().mu);
  impl().entries.clear();
}

std::uint64_t Metrics::counter_total(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl().mu);
  std::uint64_t total = 0;
  for (const auto& [key, value] : impl().entries) {
    if (key.first == name) total += value.count;
  }
  return total;
}

double Metrics::real_total(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl().mu);
  double total = 0.0;
  for (const auto& [key, value] : impl().entries) {
    if (key.first == name) total += value.real;
  }
  return total;
}

void Metrics::to_bench_json(util::BenchJson& json) const {
  static const char* kKindNames[] = {"counter", "real", "gauge"};
  for (const Entry& e : snapshot()) {
    json.obj()
        .field("metric", e.name)
        .field("phase", e.labels.phase)
        .field("route", e.labels.route)
        .field("plane", e.labels.plane)
        .field("backend", e.labels.backend)
        .field("kind", kKindNames[static_cast<int>(e.value.kind)]);
    if (e.value.kind == MetricKind::kCounter) {
      json.field("value", e.value.count);
    } else {
      json.field("value", e.value.real);
    }
  }
}

Metrics& Metrics::global() {
  static Metrics* m = new Metrics();  // leaky, like the Tracer
  return *m;
}

}  // namespace pdc::obs
