#pragma once
// pdc::obs — unified observability for the whole pipeline: tracing
// spans, a metrics registry, and Chrome-trace export.
//
// Spans are RAII scoped timers with parent/child nesting (nesting is
// positional: a span contained in another span's [start, start+dur)
// window on the same thread renders as its child in Perfetto / Chrome's
// about:tracing). Each thread appends finished spans to its own buffer;
// the tracer merges buffers at snapshot/export time, so recording never
// takes a global lock. When collection is disabled the entire Span
// lifecycle is one relaxed atomic load and a branch — no clock read, no
// allocation, no buffer touch (the bench_planes overhead gate holds
// this to <= 2% on every formula plane, and tests/test_obs.cpp asserts
// the no-allocation guarantee directly).
//
//   {
//     PDC_SPAN("d1lc.low_degree");           // scoped timer
//     ...
//   }                                         // recorded on scope exit
//
//   obs::Span span("engine.search");          // tagged variant
//   span.tag("route", "prefix-walk");
//
// Phase spans (SpanKind::kPhase) additionally maintain a per-thread
// phase stack; obs::current_phase() names the innermost open phase and
// is the `phase` label every metrics publication is keyed by.
//
// The metrics registry holds named counters / real-valued sums /
// high-water gauges keyed by {phase, route, plane, backend} labels,
// with an absorb-style merge mirroring the SearchStats / ShardedStats /
// Ledger discipline. engine::search() publishes every Selection's
// stats into Metrics::global() (keyed by the phase that ran it and the
// route/plane/backend that served it); mpc::Ledger::publish() mirrors
// the round/space accounting. Snapshots export through the
// util::BenchJson shape (one flat record per metric entry).
//
// Timestamps come from pdc::Timer::now_us() — the same steady clock
// behind SearchStats::wall_ms and every bench table — so tables,
// metrics and traces agree.
//
// Trace activation: programmatically (set_tracing), via the tools'
// --trace flag (obs::CliSession in pdc/obs/cli.hpp), or via the
// PDC_TRACE=path environment variable (collection starts at load and
// the trace is written at process exit).

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pdc/util/bench_json.hpp"

namespace pdc::obs {

namespace detail {
// Inline atomics so the disabled-path check compiles to one relaxed
// load at every call site, with no function-call overhead.
inline std::atomic<bool> g_tracing{false};
inline std::atomic<bool> g_metrics{false};
}  // namespace detail

/// True while span collection is on. One relaxed load.
inline bool tracing_enabled() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}
/// True while metrics publication is on. One relaxed load.
inline bool metrics_enabled() {
  return detail::g_metrics.load(std::memory_order_relaxed);
}
/// True when either collector is on — the Span fast-path gate (phase
/// spans must maintain the phase stack for metrics even without
/// tracing).
inline bool collection_active() {
  return tracing_enabled() || metrics_enabled();
}

void set_tracing(bool on);
void set_metrics(bool on);

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

enum class SpanKind : std::uint8_t {
  kScope,  // plain scoped timer
  kPhase,  // also pushes its name on the thread's phase stack
};

/// One finished span, as stored by the tracer and returned by
/// trace_snapshot().
struct SpanRecord {
  std::string name;
  std::uint64_t start_us = 0;  // Timer::now_us() at construction
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;  // small sequential id, stable per thread
  bool phase = false;
  std::vector<std::pair<std::string, std::string>> args;
};

/// RAII scoped timer. The name must outlive the span (string literals
/// throughout the library). Construction and destruction are a single
/// relaxed-atomic branch when collection is off; tag() is a no-op then.
class Span {
 public:
  explicit Span(const char* name, SpanKind kind = SpanKind::kScope) {
    if (collection_active()) init(name, kind);
  }
  ~Span() {
    if (active_) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is recording (collection was on at
  /// construction) — gate expensive tag-value construction on this.
  bool active() const { return active_; }

  /// Attach a key=value annotation (rendered as Chrome trace args).
  void tag(const char* key, const char* value) {
    if (active_) args_.emplace_back(key, value);
  }
  void tag(const char* key, std::string value) {
    if (active_) args_.emplace_back(key, std::move(value));
  }
  void tag_u64(const char* key, std::uint64_t value);
  void tag_real(const char* key, double value);

 private:
  void init(const char* name, SpanKind kind);
  void finish();

  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
  bool active_ = false;
  bool phase_ = false;
};

#define PDC_OBS_CAT2(a, b) a##b
#define PDC_OBS_CAT(a, b) PDC_OBS_CAT2(a, b)
/// Scoped span: PDC_SPAN("subsystem.action");
#define PDC_SPAN(name) \
  ::pdc::obs::Span PDC_OBS_CAT(pdc_obs_span_, __LINE__)(name)
/// Scoped phase span: also keys metrics published underneath it.
#define PDC_SPAN_PHASE(name)                             \
  ::pdc::obs::Span PDC_OBS_CAT(pdc_obs_span_, __LINE__)( \
      name, ::pdc::obs::SpanKind::kPhase)

/// Innermost open phase span's name on this thread ("" when none).
/// The `phase` label of every metrics publication.
const char* current_phase();

/// Merged view of every finished span (all threads, including exited
/// ones). Must not race with concurrent span destruction — snapshot
/// from the coordinating thread between parallel sections.
std::vector<SpanRecord> trace_snapshot();

/// Drop every recorded span (flags untouched).
void clear_trace();

/// Writes the collected spans as Chrome trace-event JSON ("X" complete
/// events; open the file in Perfetto / chrome://tracing). Same
/// quiescence requirement as trace_snapshot().
void write_chrome_trace(const std::string& path);

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// The metric key schema: every published value is attributed to the
/// pipeline phase that spent it and the engine route/plane/backend that
/// served it (empty strings where a dimension does not apply, e.g.
/// mpc.* ledger metrics carry only a phase).
struct Labels {
  std::string phase;
  std::string route;
  std::string plane;
  std::string backend;

  friend bool operator==(const Labels&, const Labels&) = default;
  friend auto operator<=>(const Labels&, const Labels&) = default;
};

enum class MetricKind : std::uint8_t {
  kCounter,  // monotone std::uint64_t; absorb adds
  kReal,     // double sum (wall-clock milliseconds); absorb adds
  kGauge,    // double high-water mark; absorb takes the max
};

struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;
  double real = 0.0;

  void absorb(const MetricValue& o);
  /// The value as a double regardless of kind (for uniform export).
  double as_double() const {
    return kind == MetricKind::kCounter ? static_cast<double>(count) : real;
  }
};

/// A registry of named counters/gauges. All operations are
/// thread-safe. Metrics::global() is the process-wide registry the
/// instrumented layers publish into; independent instances support the
/// absorb-style merge (e.g. per-shard registries folded into one).
class Metrics {
 public:
  struct Entry {
    std::string name;
    Labels labels;
    MetricValue value;
  };

  void add(const std::string& name, const Labels& labels,
           std::uint64_t delta);
  void add_real(const std::string& name, const Labels& labels, double delta);
  void gauge_max(const std::string& name, const Labels& labels, double value);

  /// Counter/real/gauge-respecting merge: counters and reals add,
  /// gauges take the max — the same semantics as SearchStats::absorb.
  void absorb(const Metrics& other);

  std::vector<Entry> snapshot() const;
  void clear();

  /// Sum of a counter across every label combination (0 when absent).
  std::uint64_t counter_total(const std::string& name) const;
  /// Sum of a real-valued metric across every label combination.
  double real_total(const std::string& name) const;

  /// One flat {metric, phase, route, plane, backend, kind, value}
  /// record per entry — the util::BenchJson shape the benches' --json
  /// flag already emits.
  void to_bench_json(util::BenchJson& json) const;

  /// The process-wide registry. Publication helpers are no-ops unless
  /// metrics_enabled().
  static Metrics& global();

 private:
  struct Impl;
  Impl& impl() const;
  mutable Impl* impl_ = nullptr;

 public:
  Metrics();
  ~Metrics();
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;
};

}  // namespace pdc::obs
