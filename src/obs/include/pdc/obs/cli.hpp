#pragma once
// Shared --trace / --metrics handling for the tools, examples, and
// benches. Construct one obs::CliSession from the parsed CliArgs at
// the top of main(); it switches the collectors on and, at scope exit
// (or an explicit flush()), writes the Chrome trace and the metrics
// report:
//
//   pdc::CliArgs args(argc, argv);
//   pdc::obs::CliSession obs_session(args);
//   ...                                  // run the workload
//   // ~CliSession writes --trace <path> and --metrics [<path>]
//
// --trace <path>    collect spans, write Chrome-trace JSON to <path>
// --metrics [path]  collect metrics; write the BenchJson records to
//                   <path>, or print a table to stdout when no path
//                   is given

#include <cstdio>
#include <string>

#include "pdc/obs/obs.hpp"
#include "pdc/util/check.hpp"
#include "pdc/util/cli.hpp"

namespace pdc::obs {

class CliSession {
 public:
  explicit CliSession(const CliArgs& args) {
    if (args.has("trace")) {
      trace_path_ = args.get("trace", "");
      PDC_CHECK_MSG(!trace_path_.empty(), "--trace needs an output path");
      set_tracing(true);
    }
    if (args.has("metrics")) {
      metrics_on_ = true;
      metrics_path_ = args.get("metrics", "");  // "" → stdout table
      set_metrics(true);
    }
  }

  ~CliSession() { flush(); }
  CliSession(const CliSession&) = delete;
  CliSession& operator=(const CliSession&) = delete;

  bool tracing() const { return !trace_path_.empty(); }
  bool metrics() const { return metrics_on_; }

  /// Help lines for the tools' --help output.
  static const char* help() {
    return "  --trace <path>    write a Chrome-trace JSON of the run "
           "(open in Perfetto)\n"
           "  --metrics [path]  report the metrics registry (JSON to "
           "path, table to stdout)\n";
  }

  /// Writes the trace / metrics reports now (idempotent; also run by
  /// the destructor). Call explicitly to flush before later output.
  void flush() {
    if (flushed_) return;
    flushed_ = true;
    if (!trace_path_.empty()) {
      write_chrome_trace(trace_path_);
      std::fprintf(stderr, "pdc: wrote trace to %s (%zu spans)\n",
                   trace_path_.c_str(), trace_snapshot().size());
    }
    if (metrics_on_) {
      if (!metrics_path_.empty()) {
        util::BenchJson json;
        Metrics::global().to_bench_json(json);
        json.write(metrics_path_);
        std::fprintf(stderr, "pdc: wrote metrics to %s\n",
                     metrics_path_.c_str());
      } else {
        print_metrics_table();
      }
    }
  }

 private:
  static void print_metrics_table() {
    std::printf("\nmetrics {phase, route, plane, backend}:\n");
    for (const Metrics::Entry& e : Metrics::global().snapshot()) {
      std::string labels;
      for (const std::string* part :
           {&e.labels.phase, &e.labels.route, &e.labels.plane,
            &e.labels.backend}) {
        if (part->empty()) continue;
        if (!labels.empty()) labels += ',';
        labels += *part;
      }
      if (e.value.kind == MetricKind::kCounter) {
        std::printf("  %-36s {%s} = %llu\n", e.name.c_str(), labels.c_str(),
                    static_cast<unsigned long long>(e.value.count));
      } else {
        std::printf("  %-36s {%s} = %.6g\n", e.name.c_str(), labels.c_str(),
                    e.value.real);
      }
    }
  }

  std::string trace_path_;
  std::string metrics_path_;
  bool metrics_on_ = false;
  bool flushed_ = false;
};

}  // namespace pdc::obs
