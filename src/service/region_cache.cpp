#include "pdc/service/region_cache.hpp"

#include "pdc/util/rng.hpp"

namespace pdc::service {

std::uint64_t RegionCache::signature(const D1lcInstance& instance,
                                     std::string_view phase) {
  std::uint64_t h = 0x5EEDFACADEULL;
  for (char c : phase)
    h = hash_combine(h, static_cast<std::uint64_t>(
                            static_cast<unsigned char>(c)));
  const Graph& g = instance.graph;
  h = hash_combine(h, g.num_nodes());
  for (std::uint64_t off : g.offsets()) h = hash_combine(h, off);
  for (NodeId u : g.adjacency()) h = hash_combine(h, u);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (Color c : instance.palettes.palette(v))
      h = hash_combine(h, static_cast<std::uint64_t>(c));
  return h;
}

const std::vector<Color>* RegionCache::lookup(std::uint64_t signature) {
  auto it = entries_.find(signature);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return &it->second->colors;
}

void RegionCache::insert(std::uint64_t signature, std::vector<Color> colors) {
  if (capacity_ == 0) return;
  auto it = entries_.find(signature);
  if (it != entries_.end()) {
    it->second->colors = std::move(colors);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back().sig);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{signature, std::move(colors)});
  entries_.emplace(signature, lru_.begin());
}

void RegionCache::clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace pdc::service
