#pragma once
// Seed/palette cache for incremental recoloring. The deterministic
// pipeline makes a region solve a pure function of its inputs: the
// region's induced subgraph plus each node's exterior-restricted
// palette fully determine every seed search and therefore the final
// region coloring. The cache keys on a signature of exactly those
// inputs (local-id structure, not parent ids — so isomorphic damage at
// different graph locations hits the same entry) and stores the solved
// region coloring, letting repeated delta shapes skip their seed
// searches entirely.
//
// Signatures are 64-bit hashes; collisions are survivable because the
// service validates every cache hit against the live graph with
// validate_partial() before committing (a mismatch counts as a miss).
// Entries are evicted LRU once `capacity` is reached.

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdc/graph/palette.hpp"

namespace pdc::service {

struct RegionCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected_hits = 0;  // signature matched, validation failed
};

class RegionCache {
 public:
  explicit RegionCache(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Signature over a region instance: size, local CSR structure, and
  /// per-node restricted palettes. `phase` salts the key so distinct
  /// solve configurations (e.g. recolor vs full) never share entries.
  static std::uint64_t signature(const D1lcInstance& instance,
                                 std::string_view phase);

  /// The cached region coloring (local ids), or nullptr. Accounting is
  /// the caller's: report the outcome via record_hit()/record_miss()
  /// once the hit has been validated (or rejected).
  const std::vector<Color>* lookup(std::uint64_t signature);

  void insert(std::uint64_t signature, std::vector<Color> colors);

  void record_hit() { ++stats_.hits; }
  void record_miss() { ++stats_.misses; }
  /// A signature hit whose colors failed live validation (collision or
  /// stale entry): counted separately AND as a miss.
  void record_rejected_hit() {
    ++stats_.rejected_hits;
    ++stats_.misses;
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const RegionCacheStats& stats() const { return stats_; }
  void clear();

 private:
  struct Entry {
    std::uint64_t sig;
    std::vector<Color> colors;
  };
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> entries_;
  RegionCacheStats stats_;
};

}  // namespace pdc::service
