#pragma once
// pdc::service — persistent coloring-as-a-service on top of the
// deterministic D1LC pipeline.
//
// A ColoringService owns a mutable graph plus a current proper
// coloring and serves two request families through one front door:
//
//   * Queries: color lookups, subgraph colorings, validity checks,
//     stats — O(degree) or better, never touch the solver, and never
//     take the writer's lock: they read the latest atomically
//     published ColoringSnapshot (see snapshot.hpp), so reads scale
//     across threads and are never blocked by an in-flight recolor.
//   * Mutations: vertex/edge insert/delete, applied as canonicalized
//     batches. A batch damages a bounded region (new vertices plus the
//     endpoints whose colors a new edge invalidated); the service
//     recolors ONLY that region with the deterministic pipeline against
//     the fixed exterior (d1lc::build_region_instance +
//     d1lc::solve_d1lc), falling back to a full re-solve when the
//     damaged region exceeds ServiceConfig::full_resolve_fraction of
//     the live graph. Region solves are memoized in a RegionCache —
//     the deterministic pipeline makes them pure functions of the
//     region instance, so repeated delta shapes skip their seed
//     searches.
//
// Concurrency contract (details in src/service/README.md): exactly one
// writer at a time — apply_batch serializes on an internal mutex and,
// before returning, publishes a new immutable snapshot carrying the
// batch's commit sequence number (MutationResult::batch_seq). Any
// number of reader threads may call the query_* methods concurrently
// with the writer; each query binds to one snapshot, so it observes a
// single complete proper coloring (possibly one batch stale, never
// torn). Publishes are monotone in epoch and batch_seq, which is what
// the Batcher's sessions build read-your-writes on. The direct state
// accessors (graph()/color_of()/colors()/palette_of()) read the
// writer's mutable arrays without synchronization — writer-thread or
// quiesced use only (tests, REPL, benches).
//
// Invariant (checked by tests after every batch): the coloring is
// complete and proper over the live graph, and every node's color lies
// in its service palette. Palettes follow the degree+1 discipline and
// grow monotonically between compactions: an edge insert extends each
// endpoint's palette with the smallest absent colors up to degree+1,
// so deletions never invalidate held colors. Heavy delete churn can
// strand the color count far above the current max degree; when
// colors_used exceeds (max live degree + 1) + compaction_slack the
// writer runs an amortized palette compaction — greedily remaps every
// color >= max-degree+1 into the dense range, shrinks palettes back to
// exactly degree+1, and republishes. Held snapshots from before the
// compaction stay internally consistent.
//
// Batch semantics (the coalescing front door contract): a batch is a
// SET of mutations applied atomically in a canonical order — vertex
// inserts, then edge inserts, then edge deletes, then vertex deletes,
// each class deduplicated — so the result is independent of arrival
// order. New vertex ids are `capacity() .. capacity()+k-1` and may be
// referenced by edge mutations in the same batch. One damaged-region
// sweep serves the whole batch: concurrent deltas amortize one blocked
// search.
//
// Observability: every request runs under a `service.request` span
// tagged with its request id; batches add `service.batch` (mutation
// count, damaged size), recolors `service.recolor` (region size,
// full/incremental, cache outcome), publishes `service.snapshot.publish`
// (epoch, chunks rebuilt/reused) and compactions `service.compact`.
// Each mutation request assembles a per-request obs::Metrics instance
// (service.* counters + recolor wall) and absorbs it into
// Metrics::global(), so a server exports per-request accounting with
// the same registry the engine publishes into. The embedded
// SolverOptions carry the engine ExecutionPolicy: recolors ride kAuto
// backend resolution and the MPC substrate exactly like one-shot
// solves.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "pdc/d1lc/solver.hpp"
#include "pdc/service/dynamic_graph.hpp"
#include "pdc/service/region_cache.hpp"
#include "pdc/service/snapshot.hpp"

namespace pdc::service {

/// Sentinel for ServiceConfig::compaction_slack: never compact.
inline constexpr std::size_t kCompactionDisabled =
    static_cast<std::size_t>(-1);

struct ServiceConfig {
  /// Pipeline options for every recolor and re-solve, including the
  /// engine ExecutionPolicy (backend / cluster / search options) and
  /// the Lemma-10 strategy.
  d1lc::SolverOptions solver;
  /// Damaged regions larger than this fraction of the live graph fall
  /// back to a full re-solve (0 forces full, 1 never falls back).
  double full_resolve_fraction = 0.25;
  /// Region-cache entries (0 disables the cache).
  std::size_t cache_capacity = 1024;
  /// Palette compaction trigger: after a batch commits, if the
  /// published colors_used exceeds (max live degree + 1) by more than
  /// this slack, the writer remaps stranded colors into the dense
  /// range, shrinks palettes to degree+1, and republishes.
  /// kCompactionDisabled turns the pass off.
  std::size_t compaction_slack = 64;
};

struct ServiceStats {
  std::uint64_t requests = 0;  // queries + mutation batches
  std::uint64_t queries = 0;
  std::uint64_t mutations = 0;  // individual mutations accepted
  std::uint64_t batches = 0;    // mutation batches applied
  std::uint64_t incremental_recolors = 0;
  std::uint64_t full_resolves = 0;
  std::uint64_t damaged_nodes = 0;    // total across batches
  std::uint64_t recolored_nodes = 0;  // total actually re-solved
  double recolor_ms = 0.0;  // incremental region solves
  double full_ms = 0.0;     // full re-solves (incl. the initial one)
  std::uint64_t snapshot_publishes = 0;
  std::uint64_t snapshot_chunks_rebuilt = 0;
  std::uint64_t snapshot_chunks_reused = 0;
  std::uint64_t compactions = 0;  // palette compaction passes
  RegionCacheStats cache;   // mirrored from the RegionCache
  /// Aggregate engine accounting across every recolor's seed searches.
  engine::SearchStats seed_search;
};

enum class MutationKind : std::uint8_t {
  kInsertVertex,
  kDeleteVertex,
  kInsertEdge,
  kDeleteEdge,
};

struct Mutation {
  MutationKind kind = MutationKind::kInsertEdge;
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  static Mutation insert_vertex() { return {MutationKind::kInsertVertex}; }
  static Mutation delete_vertex(NodeId v) {
    return {MutationKind::kDeleteVertex, v};
  }
  static Mutation insert_edge(NodeId u, NodeId v) {
    return {MutationKind::kInsertEdge, u, v};
  }
  static Mutation delete_edge(NodeId u, NodeId v) {
    return {MutationKind::kDeleteEdge, u, v};
  }
};

struct MutationResult {
  std::uint64_t request_id = 0;
  /// Ids assigned to the batch's vertex inserts (ascending).
  std::vector<NodeId> new_vertices;
  std::uint64_t applied = 0;  // mutations that changed the graph
  std::uint64_t damaged = 0;  // damaged-region size
  bool full_resolve = false;
  bool cache_hit = false;     // region served from the RegionCache
  /// Post-batch invariant (validate_partial over the damaged region;
  /// full check after a fallback re-solve).
  bool valid = false;
  /// Commit sequence number of this batch (1-based, monotone). Every
  /// snapshot loaded after apply_batch returns carries
  /// snapshot->batch_seq >= this — the read-your-writes anchor.
  std::uint64_t batch_seq = 0;
  /// Epoch of the snapshot published for this batch (after any
  /// compaction republish).
  std::uint64_t epoch = 0;
  /// The batch triggered a palette compaction pass.
  bool compacted = false;
};

class ColoringService {
 public:
  /// Loads the instance and performs the initial full solve.
  explicit ColoringService(const D1lcInstance& base, ServiceConfig cfg = {});
  /// Degree+1 palettes over `g`.
  explicit ColoringService(const Graph& g, ServiceConfig cfg = {});
  /// Warm start: adopt an existing proper coloring (checked) instead of
  /// solving — resuming a persisted service state.
  ColoringService(const D1lcInstance& base, Coloring initial,
                  ServiceConfig cfg = {});

  // --- Queries (front door: counted, span-tagged per request). ---
  // Lock-free: each call binds to the latest published snapshot and is
  // safe to run from any number of threads concurrently with a writer.
  Color query_color(NodeId v);
  std::vector<Color> query_colors(std::span<const NodeId> nodes);
  /// Colors of v and its live neighborhood (subgraph coloring lookup).
  std::vector<std::pair<NodeId, Color>> query_neighborhood(NodeId v);
  /// Full invariant check: complete + proper + palette membership over
  /// the live graph (as of one snapshot).
  bool query_validate();
  std::uint64_t query_colors_used();

  /// The latest published snapshot (never blocks on the writer's batch
  /// lock or an in-flight recolor — see SnapshotCell). Hold it to
  /// answer many reads from one consistent state.
  std::shared_ptr<const ColoringSnapshot> snapshot() const {
    return published_.load();
  }

  // --- Mutations (single writer; serialized internally). ---
  MutationResult apply(const Mutation& m) { return apply_batch({&m, 1}); }
  MutationResult apply_batch(std::span<const Mutation> batch);

  // --- Direct state access (no request accounting, no
  // synchronization: writer-thread or quiesced use only). ---
  const DynamicGraph& graph() const { return graph_; }
  bool alive(NodeId v) const { return graph_.alive(v); }
  Color color_of(NodeId v) const {
    PDC_CHECK_MSG(graph_.alive(v), "query for dead or unknown id " << v);
    return colors_[v];
  }
  std::span<const Color> colors() const { return colors_; }
  std::span<const Color> palette_of(NodeId v) const { return palettes_[v]; }
  const ServiceStats& stats() const;
  const ServiceConfig& config() const { return cfg_; }

  /// The current live instance as an immutable snapshot: a region
  /// instance over every alive node (compacted local ids plus the
  /// to_parent map) — what a fallback re-solve solves.
  d1lc::RegionInstance snapshot_instance() const;

 private:
  void init_palettes_degree_plus_one();
  void adopt_instance(const D1lcInstance& base);
  /// Extends v's palette with the smallest absent colors to deg(v)+1.
  void grow_palette(NodeId v);
  /// Uncolors + re-solves `region` (sorted) against the fixed exterior;
  /// fills MutationResult recolor fields.
  void recolor_region(std::vector<NodeId> region, MutationResult& out);
  void full_resolve(MutationResult* out);
  /// Builds + atomically publishes a snapshot of the current writer
  /// state (requires exclusive access: under write_mu_ or during
  /// construction). Consumes dirty_/dirty_full_.
  void publish_snapshot(const char* mode, std::uint64_t batch_seq,
                        MutationResult* out);
  /// Compacts stranded colors when the published census exceeds the
  /// slack; republishes on change.
  void maybe_compact(MutationResult& out);
  std::uint64_t compact_palettes();
  void mark_dirty(NodeId v) { dirty_.push_back(v); }

  ServiceConfig cfg_;
  DynamicGraph graph_;
  std::vector<std::vector<Color>> palettes_;  // sorted; grow-only
                                              // between compactions
  Coloring colors_;
  RegionCache cache_;
  mutable ServiceStats stats_;
  std::atomic<std::uint64_t> next_request_{0};
  mutable std::atomic<std::uint64_t> read_queries_{0};

  // Writer-side publication state (all guarded by write_mu_ except the
  // publication cell itself).
  mutable std::mutex write_mu_;
  SnapshotCell published_;
  std::vector<NodeId> dirty_;  // nodes touched since the last publish
  bool dirty_full_ = false;    // force a full chunk rebuild
  std::uint64_t last_batch_seq_ = 0;
};

}  // namespace pdc::service
