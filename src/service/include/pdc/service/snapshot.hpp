#pragma once
// Immutable, atomically published view of a ColoringService's state —
// the lock-free read path. The writer builds a ColoringSnapshot after
// every committed batch (and after every palette compaction) and
// publishes it through a SnapshotCell (an atomic shared_ptr slot — see
// below for why not std::atomic<std::shared_ptr>); readers load the
// latest pointer and answer every query from the frozen arrays without
// ever taking the writer's batch lock. A held snapshot stays internally
// consistent forever: colors, adjacency, palettes and the colors_used
// census all describe the same committed state, so a reader that
// grabbed epoch E mid-recolor sees the complete proper coloring of
// epoch E, never a torn mix.
//
// Snapshots are chunked so publishes are incremental: the id space is
// split into kSnapshotChunkNodes-sized chunks, each an independently
// immutable CSR slice (adjacency + colors + alive flags + flat
// palettes + a per-chunk distinct-color census and max live degree).
// A publish rebuilds only the chunks containing nodes the batch
// touched and shares every other chunk with the previous snapshot by
// shared_ptr — a single-edge delta republishes one or two chunks, not
// a full DynamicGraph::to_graph() copy. The snapshot-level colors_used
// and max_degree roll up from the per-chunk censuses, so the palette
// compaction trigger is O(#chunks) per publish.
//
// Sequencing: `epoch` increments on every publish; `batch_seq` is the
// commit sequence number of the last batch the snapshot contains.
// Publishes are monotone in both, which is what gives sessions
// read-your-writes: any snapshot loaded after a flush returned carries
// batch_seq >= that flush's sequence number.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pdc/graph/coloring.hpp"
#include "pdc/service/dynamic_graph.hpp"

namespace pdc::service {

/// Nodes per snapshot chunk (power of two; chunk index = v >> shift).
inline constexpr unsigned kSnapshotChunkShift = 10;
inline constexpr NodeId kSnapshotChunkNodes = NodeId{1} << kSnapshotChunkShift;

/// One immutable slice of the id space [base, base + count). Never
/// mutated after construction; shared between consecutive snapshots
/// whenever no node inside it changed.
struct SnapshotChunk {
  NodeId base = 0;
  std::vector<std::uint32_t> offsets;  // count + 1, into adjacency
  std::vector<NodeId> adjacency;
  std::vector<Color> colors;  // kNoColor for dead nodes
  std::vector<char> alive;
  std::vector<std::uint32_t> pal_offsets;  // count + 1, into pal_colors
  std::vector<Color> pal_colors;           // sorted per node
  std::vector<Color> used;  // sorted distinct colors of live nodes
  std::uint32_t max_degree = 0;  // over live nodes
  NodeId alive_count = 0;
};

/// Per-publish accounting (mirrored into ServiceStats and the
/// service.snapshot.* metrics).
struct SnapshotBuildStats {
  std::uint64_t chunks_rebuilt = 0;
  std::uint64_t chunks_reused = 0;
};

struct ColoringSnapshot {
  std::uint64_t epoch = 0;      // publish sequence (1 = initial solve)
  std::uint64_t batch_seq = 0;  // last committed batch (0 = none yet)
  NodeId capacity = 0;          // full id space, alive + dead
  NodeId num_alive = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t colors_used = 0;   // distinct colors over live nodes
  std::uint32_t max_degree = 0;    // over live nodes
  std::vector<std::shared_ptr<const SnapshotChunk>> chunks;

  bool alive(NodeId v) const {
    if (v >= capacity) return false;
    const SnapshotChunk& c = chunk_of(v);
    return c.alive[v - c.base] != 0;
  }
  Color color(NodeId v) const {
    PDC_ASSERT(v < capacity);
    const SnapshotChunk& c = chunk_of(v);
    return c.colors[v - c.base];
  }
  std::uint32_t degree(NodeId v) const {
    PDC_ASSERT(v < capacity);
    const SnapshotChunk& c = chunk_of(v);
    const NodeId i = v - c.base;
    return c.offsets[i + 1] - c.offsets[i];
  }
  std::span<const NodeId> neighbors(NodeId v) const {
    PDC_ASSERT(v < capacity);
    const SnapshotChunk& c = chunk_of(v);
    const NodeId i = v - c.base;
    return {c.adjacency.data() + c.offsets[i], c.offsets[i + 1] - c.offsets[i]};
  }
  std::span<const Color> palette(NodeId v) const {
    PDC_ASSERT(v < capacity);
    const SnapshotChunk& c = chunk_of(v);
    const NodeId i = v - c.base;
    return {c.pal_colors.data() + c.pal_offsets[i],
            c.pal_offsets[i + 1] - c.pal_offsets[i]};
  }

  /// Full invariant over the snapshot: every live node colored, within
  /// its palette, and conflict-free against its live neighbors. A
  /// published snapshot always passes — this is what "readers observe
  /// some complete proper coloring" means operationally.
  bool validate() const;

 private:
  const SnapshotChunk& chunk_of(NodeId v) const {
    return *chunks[v >> kSnapshotChunkShift];
  }
};

/// The publication point: one shared_ptr slot with atomic load/store.
///
/// This is deliberately NOT std::atomic<std::shared_ptr<T>>. libstdc++'s
/// _Sp_atomic releases its internal lock bit with a *relaxed* fetch_sub
/// on the load path (shared_ptr_atomic.h, load() -> unlock(relaxed)), so
/// formally there is no happens-before edge from a reader's _M_ptr read
/// to the writer's next locked _M_ptr write — a data race under the C++
/// memory model that ThreadSanitizer reports on the concurrency suite.
/// This cell implements the same protocol (the control word doubles as a
/// spin guard, held only for a pointer copy or swap) with release
/// ordering on BOTH unlock paths, which makes it TSan-clean and keeps
/// the guarantee the service documents: readers never wait on the
/// writer's batch lock or on an in-flight recolor, only (rarely) on
/// another pointer handoff a few instructions long. The displaced
/// snapshot's refcount drop happens outside the guard, so a reader can
/// never pay for a chunk teardown.
class SnapshotCell {
 public:
  SnapshotCell() = default;
  SnapshotCell(const SnapshotCell&) = delete;
  SnapshotCell& operator=(const SnapshotCell&) = delete;

  std::shared_ptr<const ColoringSnapshot> load() const {
    lock();
    std::shared_ptr<const ColoringSnapshot> out = ptr_;
    unlock();
    return out;
  }

  void store(std::shared_ptr<const ColoringSnapshot> next) {
    lock();
    ptr_.swap(next);
    unlock();
    // `next` now holds the displaced snapshot; it dies here, after the
    // guard is released.
  }

 private:
  void lock() const {
    while (guard_.exchange(true, std::memory_order_acquire)) {
      while (guard_.load(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() const { guard_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> guard_{false};
  std::shared_ptr<const ColoringSnapshot> ptr_;
};

/// Builds the snapshot for the writer's current state. When `prev` is
/// non-null, chunks containing no node in `dirty` (sorted, deduped) are
/// shared from it; pass prev == nullptr to force a full rebuild (first
/// publish, full re-solve, palette compaction).
std::shared_ptr<const ColoringSnapshot> build_snapshot(
    const DynamicGraph& g, const std::vector<std::vector<Color>>& palettes,
    std::span<const Color> colors, std::uint64_t epoch,
    std::uint64_t batch_seq, const ColoringSnapshot* prev,
    std::span<const NodeId> dirty, SnapshotBuildStats* stats);

}  // namespace pdc::service
