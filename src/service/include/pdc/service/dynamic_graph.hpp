#pragma once
// Mutable simple undirected graph backing the coloring service. The
// library's Graph is an immutable CSR (the right substrate for the
// solver's sweeps); a long-lived service needs cheap edge/vertex
// deltas, so DynamicGraph keeps one sorted neighbor vector per node and
// materializes CSR views only for the (rare) full re-solves.
//
// Node ids are append-only: add_vertex() returns capacity() and deleted
// ids are never reused, so ids handed to clients stay stable for the
// service's lifetime. Dead nodes keep their slot (degree 0, alive() ==
// false).

#include <cstdint>
#include <span>
#include <vector>

#include "pdc/graph/graph.hpp"

namespace pdc::service {

class DynamicGraph {
 public:
  DynamicGraph() = default;
  /// Adopts an existing CSR graph; every node starts alive.
  explicit DynamicGraph(const Graph& g);

  /// Total id space ever allocated (alive + dead).
  NodeId capacity() const { return static_cast<NodeId>(adj_.size()); }
  NodeId num_alive() const { return alive_count_; }
  std::uint64_t num_edges() const { return m_; }

  bool alive(NodeId v) const { return v < capacity() && alive_[v]; }
  std::uint32_t degree(NodeId v) const {
    PDC_ASSERT(v < capacity());
    return static_cast<std::uint32_t>(adj_[v].size());
  }
  std::span<const NodeId> neighbors(NodeId v) const {
    PDC_ASSERT(v < capacity());
    return adj_[v];
  }
  bool has_edge(NodeId u, NodeId v) const;

  /// New isolated vertex; returns its id (== previous capacity()).
  NodeId add_vertex();
  /// Removes v and all incident edges. Id is retired, never reused.
  void remove_vertex(NodeId v);
  /// False (no-op) if the edge exists, u == v, or an endpoint is dead.
  bool add_edge(NodeId u, NodeId v);
  /// False (no-op) if the edge does not exist.
  bool remove_edge(NodeId u, NodeId v);

  /// CSR snapshot over the full id space; dead nodes are isolated.
  Graph to_graph() const;

 private:
  std::vector<std::vector<NodeId>> adj_;  // sorted per node
  std::vector<char> alive_;
  NodeId alive_count_ = 0;
  std::uint64_t m_ = 0;
};

}  // namespace pdc::service
