#pragma once
// Batching front door for a ColoringService. Mutations from concurrent
// producers enqueue into a pending buffer instead of hitting the
// service one at a time; a flush drains the buffer into a single
// apply_batch() call, so N coalesced deltas pay for ONE damaged-region
// sweep. Because apply_batch canonicalizes its input into a set, the
// result is independent of the order producers happened to enqueue in —
// coalescing never changes the answer, only the cost.
//
// Consistency contract: queries routed through the batcher
// (query_color etc.) flush pending mutations first, so every read
// observes all writes enqueued before it. Direct reads on the
// underlying service may lag by at most the pending buffer.
//
// Flush triggers: explicitly (flush()), on any batcher query, or
// automatically once `max_pending` mutations are buffered. The batcher
// serializes access to the service: enqueue/flush/query are safe to
// call from multiple threads.

#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "pdc/service/service.hpp"

namespace pdc::service {

class Batcher {
 public:
  /// Borrows the service; `max_pending` bounds the buffer (a further
  /// enqueue flushes first). 0 means flush on every enqueue.
  explicit Batcher(ColoringService& service, std::size_t max_pending = 256)
      : service_(service), max_pending_(max_pending) {}

  /// Buffer a mutation. Returns the flush result if this enqueue
  /// tripped max_pending, otherwise nothing happened yet.
  std::optional<MutationResult> enqueue(const Mutation& m) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(m);
    if (pending_.size() > max_pending_) return flush_locked();
    return std::nullopt;
  }

  /// Apply everything pending as one batch. No-op (nullopt) when empty.
  std::optional<MutationResult> flush() {
    std::lock_guard<std::mutex> lock(mu_);
    return flush_locked();
  }

  // --- Read-your-writes queries: flush, then forward. ---
  Color query_color(NodeId v) {
    std::lock_guard<std::mutex> lock(mu_);
    flush_locked();
    return service_.query_color(v);
  }
  std::vector<std::pair<NodeId, Color>> query_neighborhood(NodeId v) {
    std::lock_guard<std::mutex> lock(mu_);
    flush_locked();
    return service_.query_neighborhood(v);
  }
  bool query_validate() {
    std::lock_guard<std::mutex> lock(mu_);
    flush_locked();
    return service_.query_validate();
  }
  std::uint64_t query_colors_used() {
    std::lock_guard<std::mutex> lock(mu_);
    flush_locked();
    return service_.query_colors_used();
  }

  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }
  ColoringService& service() { return service_; }

 private:
  std::optional<MutationResult> flush_locked() {
    if (pending_.empty()) return std::nullopt;
    std::vector<Mutation> batch = std::move(pending_);
    pending_.clear();
    return service_.apply_batch(batch);
  }

  ColoringService& service_;
  std::size_t max_pending_;
  mutable std::mutex mu_;
  std::vector<Mutation> pending_;
};

}  // namespace pdc::service
