#pragma once
// Batching front door for a ColoringService. Mutations from concurrent
// producers enqueue into per-session pending buffers instead of hitting
// the service one at a time; a flush drains ONE session's buffer into a
// single apply_batch() call, so N coalesced deltas pay for ONE
// damaged-region sweep. Because apply_batch canonicalizes its input
// into a set, the result is independent of the order producers happened
// to enqueue in — coalescing never changes the answer, only the cost.
//
// Sessions and read modes: each producer opens a Session (the
// sessionless Batcher methods are sugar for a shared default session).
// Reads never serialize through the batcher — they forward to the
// service's lock-free snapshot path — and the ReadMode knob decides
// what they observe:
//
//   * ReadMode::kFresh (default): flush THIS session's pending
//     mutations first, then read. Combined with the service's
//     monotone, sequence-numbered publishes this gives per-session
//     read-your-writes: the snapshot the read binds to carries
//     batch_seq >= the session's last flush. Other sessions' pending
//     buffers are left alone — a read no longer drains writes their
//     owners haven't committed.
//   * ReadMode::kSnapshot: no flush at all; serve from the latest
//     published snapshot as-is (the session's own unflushed mutations
//     are not yet visible). The cheapest read, and the right one for
//     monitoring traffic that must never force a commit.
//
// Flush triggers per session: explicitly (flush()), on a kFresh read,
// or automatically once `max_pending` mutations are buffered. The
// batcher's lock only guards the buffers and sequence bookkeeping —
// it is never held across a service call, so readers on other threads
// are never blocked by a session's in-flight batch; the service's own
// writer mutex serializes concurrent flushes.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pdc/service/service.hpp"

namespace pdc::service {

enum class ReadMode : std::uint8_t {
  kFresh,     // flush the calling session's pending mutations first
  kSnapshot,  // read the latest published snapshot as-is
};

class Batcher {
 public:
  /// Borrows the service; `max_pending` bounds each session's buffer (a
  /// further enqueue flushes first). 0 means flush on every enqueue.
  explicit Batcher(ColoringService& service, std::size_t max_pending = 256)
      : service_(service), max_pending_(max_pending) {
    sessions_.emplace(kDefaultSession, SessionState{});
  }

  /// A handle onto one producer's pending buffer + flush sequence.
  /// Cheap to copy; valid as long as the Batcher outlives it.
  class Session {
   public:
    std::optional<MutationResult> enqueue(const Mutation& m) {
      return batcher_->enqueue_in(id_, m);
    }
    std::optional<MutationResult> flush() { return batcher_->flush_in(id_); }

    Color query_color(NodeId v, ReadMode mode = ReadMode::kFresh) {
      batcher_->prepare_read(id_, mode);
      return batcher_->service_.query_color(v);
    }
    std::vector<Color> query_colors(std::span<const NodeId> nodes,
                                    ReadMode mode = ReadMode::kFresh) {
      batcher_->prepare_read(id_, mode);
      return batcher_->service_.query_colors(nodes);
    }
    std::vector<std::pair<NodeId, Color>> query_neighborhood(
        NodeId v, ReadMode mode = ReadMode::kFresh) {
      batcher_->prepare_read(id_, mode);
      return batcher_->service_.query_neighborhood(v);
    }
    bool query_validate(ReadMode mode = ReadMode::kFresh) {
      batcher_->prepare_read(id_, mode);
      return batcher_->service_.query_validate();
    }
    std::uint64_t query_colors_used(ReadMode mode = ReadMode::kFresh) {
      batcher_->prepare_read(id_, mode);
      return batcher_->service_.query_colors_used();
    }

    /// The snapshot this session's reads would bind to: after a kFresh
    /// prepare it satisfies snapshot->batch_seq >= last_flushed_seq().
    std::shared_ptr<const ColoringSnapshot> read_snapshot(
        ReadMode mode = ReadMode::kSnapshot) {
      batcher_->prepare_read(id_, mode);
      return batcher_->service_.snapshot();
    }

    std::size_t pending() const { return batcher_->pending_in(id_); }
    /// Commit sequence of this session's newest flushed batch (0 if
    /// none yet).
    std::uint64_t last_flushed_seq() const {
      return batcher_->last_flushed_seq_in(id_);
    }

   private:
    friend class Batcher;
    Session(Batcher* batcher, std::uint64_t id)
        : batcher_(batcher), id_(id) {}
    Batcher* batcher_;
    std::uint64_t id_;
  };

  /// Opens an isolated session. Session state lives for the batcher's
  /// lifetime (handles are cheap; open once per producer, not per op).
  Session open_session() {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t id = next_session_++;
    sessions_.emplace(id, SessionState{});
    return Session(this, id);
  }

  // --- Sessionless front door: the shared default session. ---
  std::optional<MutationResult> enqueue(const Mutation& m) {
    return enqueue_in(kDefaultSession, m);
  }
  std::optional<MutationResult> flush() { return flush_in(kDefaultSession); }
  Color query_color(NodeId v, ReadMode mode = ReadMode::kFresh) {
    prepare_read(kDefaultSession, mode);
    return service_.query_color(v);
  }
  std::vector<std::pair<NodeId, Color>> query_neighborhood(
      NodeId v, ReadMode mode = ReadMode::kFresh) {
    prepare_read(kDefaultSession, mode);
    return service_.query_neighborhood(v);
  }
  bool query_validate(ReadMode mode = ReadMode::kFresh) {
    prepare_read(kDefaultSession, mode);
    return service_.query_validate();
  }
  std::uint64_t query_colors_used(ReadMode mode = ReadMode::kFresh) {
    prepare_read(kDefaultSession, mode);
    return service_.query_colors_used();
  }

  /// Pending mutations in the default session.
  std::size_t pending() const { return pending_in(kDefaultSession); }
  /// Pending mutations across every session.
  std::size_t pending_total() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t total = 0;
    for (const auto& [id, s] : sessions_) total += s.pending.size();
    return total;
  }
  ColoringService& service() { return service_; }

 private:
  static constexpr std::uint64_t kDefaultSession = 0;

  struct SessionState {
    std::vector<Mutation> pending;
    std::uint64_t last_flushed_seq = 0;
  };

  std::optional<MutationResult> enqueue_in(std::uint64_t id,
                                           const Mutation& m) {
    std::vector<Mutation> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      SessionState& s = sessions_.at(id);
      s.pending.push_back(m);
      if (s.pending.size() <= max_pending_) return std::nullopt;
      batch = std::move(s.pending);
      s.pending.clear();
    }
    return apply(id, batch);
  }

  std::optional<MutationResult> flush_in(std::uint64_t id) {
    std::vector<Mutation> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      SessionState& s = sessions_.at(id);
      if (s.pending.empty()) return std::nullopt;
      batch = std::move(s.pending);
      s.pending.clear();
    }
    return apply(id, batch);
  }

  MutationResult apply(std::uint64_t id, std::span<const Mutation> batch) {
    // Outside mu_: the service's writer mutex serializes flushes from
    // different sessions without ever blocking readers here.
    MutationResult r = service_.apply_batch(batch);
    std::lock_guard<std::mutex> lock(mu_);
    SessionState& s = sessions_.at(id);
    s.last_flushed_seq = std::max(s.last_flushed_seq, r.batch_seq);
    return r;
  }

  void prepare_read(std::uint64_t id, ReadMode mode) {
    if (mode == ReadMode::kFresh) flush_in(id);
  }

  std::size_t pending_in(std::uint64_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return sessions_.at(id).pending.size();
  }

  std::uint64_t last_flushed_seq_in(std::uint64_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return sessions_.at(id).last_flushed_seq;
  }

  ColoringService& service_;
  std::size_t max_pending_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, SessionState> sessions_;
  std::uint64_t next_session_ = 1;
};

}  // namespace pdc::service
