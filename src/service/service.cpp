#include "pdc/service/service.hpp"

#include <algorithm>
#include <utility>

#include "pdc/graph/coloring.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/util/timer.hpp"

namespace pdc::service {

namespace {

obs::Labels service_labels() {
  return obs::Labels{.phase = "service", .route = {}, .plane = {},
                     .backend = {}};
}

/// Per-request metrics, assembled locally and absorbed into the global
/// registry in one shot — the server-side publication discipline.
/// Queries run from arbitrary reader threads; absorb() is thread-safe.
void publish_query_metrics(std::uint64_t epoch, double wall_ms) {
  obs::Metrics m;
  const obs::Labels l = service_labels();
  m.add("service.requests", l, 1);
  m.add("service.queries", l, 1);
  m.add("service.snapshot.reads", l, 1);
  m.gauge_max("service.snapshot.read_epoch", l, epoch);
  m.add_real("service.request_ms", l, wall_ms);
  obs::Metrics::global().absorb(m);
}

void publish_mutation_metrics(const MutationResult& r, std::uint64_t batch,
                              double wall_ms) {
  if (!obs::metrics_enabled()) return;
  obs::Metrics m;
  const obs::Labels l = service_labels();
  m.add("service.requests", l, 1);
  m.add("service.batches", l, 1);
  m.add("service.mutations", l, batch);
  m.add("service.mutations_applied", l, r.applied);
  m.add("service.damaged_nodes", l, r.damaged);
  if (r.damaged > 0) {
    m.add(r.full_resolve ? "service.full_resolves"
                         : "service.incremental_recolors",
          l, 1);
    m.add(r.cache_hit ? "service.cache_hits" : "service.cache_misses", l, 1);
  }
  if (r.compacted) m.add("service.compactions", l, 1);
  m.add_real("service.request_ms", l, wall_ms);
  obs::Metrics::global().absorb(m);
}

void publish_snapshot_metrics(std::uint64_t epoch,
                              const SnapshotBuildStats& bs) {
  if (!obs::metrics_enabled()) return;
  obs::Metrics m;
  const obs::Labels l = service_labels();
  m.add("service.snapshot.publishes", l, 1);
  m.add("service.snapshot.chunks_rebuilt", l, bs.chunks_rebuilt);
  m.add("service.snapshot.chunks_reused", l, bs.chunks_reused);
  m.gauge_max("service.snapshot.epoch", l, epoch);
  obs::Metrics::global().absorb(m);
}

}  // namespace

ColoringService::ColoringService(const D1lcInstance& base, ServiceConfig cfg)
    : cfg_(std::move(cfg)), cache_(cfg_.cache_capacity) {
  adopt_instance(base);
  full_resolve(nullptr);
  publish_snapshot("initial", 0, nullptr);
}

ColoringService::ColoringService(const Graph& g, ServiceConfig cfg)
    : cfg_(std::move(cfg)), cache_(cfg_.cache_capacity) {
  graph_ = DynamicGraph(g);
  colors_.assign(graph_.capacity(), kNoColor);
  init_palettes_degree_plus_one();
  full_resolve(nullptr);
  publish_snapshot("initial", 0, nullptr);
}

ColoringService::ColoringService(const D1lcInstance& base, Coloring initial,
                                 ServiceConfig cfg)
    : cfg_(std::move(cfg)), cache_(cfg_.cache_capacity) {
  adopt_instance(base);
  PDC_CHECK_MSG(is_proper_coloring(base, initial),
                "warm-start coloring is not complete and proper");
  colors_ = std::move(initial);
  dirty_full_ = true;
  publish_snapshot("initial", 0, nullptr);
}

void ColoringService::adopt_instance(const D1lcInstance& base) {
  PDC_CHECK_MSG(base.valid(), "service input is not a valid D1LC instance");
  graph_ = DynamicGraph(base.graph);
  colors_.assign(graph_.capacity(), kNoColor);
  palettes_.resize(graph_.capacity());
  for (NodeId v = 0; v < graph_.capacity(); ++v) {
    auto pal = base.palettes.palette(v);
    palettes_[v].assign(pal.begin(), pal.end());
  }
}

void ColoringService::init_palettes_degree_plus_one() {
  palettes_.assign(graph_.capacity(), {});
  for (NodeId v = 0; v < graph_.capacity(); ++v) grow_palette(v);
}

void ColoringService::grow_palette(NodeId v) {
  std::vector<Color>& pal = palettes_[v];
  const std::size_t need = static_cast<std::size_t>(graph_.degree(v)) + 1;
  // Insert the smallest absent colors, keeping the list sorted. One
  // merge-style walk: candidate c climbs past present colors.
  std::size_t i = 0;
  Color c = 0;
  while (pal.size() < need) {
    if (i < pal.size() && pal[i] <= c) {
      if (pal[i] == c) ++c;
      ++i;
      continue;
    }
    pal.insert(pal.begin() + static_cast<std::ptrdiff_t>(i), c);
    ++i;
    ++c;
  }
}

const ServiceStats& ColoringService::stats() const {
  std::lock_guard<std::mutex> lock(write_mu_);
  stats_.cache = cache_.stats();
  stats_.queries = read_queries_.load(std::memory_order_relaxed);
  stats_.requests = stats_.queries + stats_.batches;
  return stats_;
}

d1lc::RegionInstance ColoringService::snapshot_instance() const {
  std::vector<NodeId> live;
  live.reserve(graph_.num_alive());
  for (NodeId v = 0; v < graph_.capacity(); ++v)
    if (graph_.alive(v)) live.push_back(v);
  const Coloring none(graph_.capacity(), kNoColor);
  return d1lc::build_region_instance(
      graph_, [&](NodeId v) { return std::span<const Color>(palettes_[v]); },
      none, live);
}

// ---------------------------------------------------------------------
// Queries — lock-free against the published snapshot
// ---------------------------------------------------------------------

namespace {
struct QueryScope {
  obs::Span span;
  std::uint64_t start_us = 0;
  std::uint64_t epoch = 0;
  explicit QueryScope(std::uint64_t request_id, const char* kind)
      : span("service.request", obs::SpanKind::kPhase) {
    if (obs::metrics_enabled()) start_us = Timer::now_us();
    if (span.active()) {
      span.tag_u64("request_id", request_id);
      span.tag("kind", kind);
    }
  }
  void observe(const ColoringSnapshot& s) {
    epoch = s.epoch;
    if (span.active()) span.tag_u64("epoch", s.epoch);
  }
  ~QueryScope() {
    if (!obs::metrics_enabled()) return;
    publish_query_metrics(
        epoch, static_cast<double>(Timer::now_us() - start_us) / 1000.0);
  }
};
}  // namespace

Color ColoringService::query_color(NodeId v) {
  QueryScope scope(next_request_.fetch_add(1, std::memory_order_relaxed),
                   "color");
  read_queries_.fetch_add(1, std::memory_order_relaxed);
  const auto snap = snapshot();
  scope.observe(*snap);
  PDC_CHECK_MSG(snap->alive(v), "query for dead or unknown id " << v);
  return snap->color(v);
}

std::vector<Color> ColoringService::query_colors(
    std::span<const NodeId> nodes) {
  QueryScope scope(next_request_.fetch_add(1, std::memory_order_relaxed),
                   "colors");
  read_queries_.fetch_add(1, std::memory_order_relaxed);
  const auto snap = snapshot();
  scope.observe(*snap);
  std::vector<Color> out;
  out.reserve(nodes.size());
  for (NodeId v : nodes) {
    PDC_CHECK_MSG(snap->alive(v), "query for dead or unknown id " << v);
    out.push_back(snap->color(v));
  }
  return out;
}

std::vector<std::pair<NodeId, Color>> ColoringService::query_neighborhood(
    NodeId v) {
  QueryScope scope(next_request_.fetch_add(1, std::memory_order_relaxed),
                   "neighborhood");
  read_queries_.fetch_add(1, std::memory_order_relaxed);
  const auto snap = snapshot();
  scope.observe(*snap);
  PDC_CHECK_MSG(snap->alive(v), "query for dead or unknown id " << v);
  std::vector<std::pair<NodeId, Color>> out;
  const auto nb = snap->neighbors(v);
  out.reserve(nb.size() + 1u);
  out.emplace_back(v, snap->color(v));
  for (NodeId u : nb) out.emplace_back(u, snap->color(u));
  return out;
}

bool ColoringService::query_validate() {
  QueryScope scope(next_request_.fetch_add(1, std::memory_order_relaxed),
                   "validate");
  read_queries_.fetch_add(1, std::memory_order_relaxed);
  const auto snap = snapshot();
  scope.observe(*snap);
  return snap->validate();
}

std::uint64_t ColoringService::query_colors_used() {
  QueryScope scope(next_request_.fetch_add(1, std::memory_order_relaxed),
                   "colors-used");
  read_queries_.fetch_add(1, std::memory_order_relaxed);
  const auto snap = snapshot();
  scope.observe(*snap);
  return snap->colors_used;
}

// ---------------------------------------------------------------------
// Snapshot publication + palette compaction (writer side)
// ---------------------------------------------------------------------

void ColoringService::publish_snapshot(const char* mode,
                                       std::uint64_t batch_seq,
                                       MutationResult* out) {
  obs::Span span("service.snapshot.publish");
  const auto prev = published_.load();
  std::sort(dirty_.begin(), dirty_.end());
  dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
  SnapshotBuildStats bs;
  auto snap = build_snapshot(graph_, palettes_, colors_,
                             (prev ? prev->epoch : 0) + 1, batch_seq,
                             dirty_full_ ? nullptr : prev.get(), dirty_, &bs);
  published_.store(snap);
  dirty_.clear();
  dirty_full_ = false;
  ++stats_.snapshot_publishes;
  stats_.snapshot_chunks_rebuilt += bs.chunks_rebuilt;
  stats_.snapshot_chunks_reused += bs.chunks_reused;
  if (out != nullptr) out->epoch = snap->epoch;
  if (span.active()) {
    span.tag("mode", mode);
    span.tag_u64("epoch", snap->epoch);
    span.tag_u64("batch_seq", batch_seq);
    span.tag_u64("rebuilt", bs.chunks_rebuilt);
    span.tag_u64("reused", bs.chunks_reused);
    span.tag_u64("colors_used", snap->colors_used);
  }
  publish_snapshot_metrics(snap->epoch, bs);
}

std::uint64_t ColoringService::compact_palettes() {
  const NodeId cap = graph_.capacity();
  std::uint32_t maxdeg = 0;
  for (NodeId v = 0; v < cap; ++v)
    if (graph_.alive(v)) maxdeg = std::max(maxdeg, graph_.degree(v));
  const Color cutoff = static_cast<Color>(maxdeg) + 1;
  // Greedy dense remap: every live node holding a stranded color
  // (>= max degree + 1) moves to the smallest color in 0..deg(v) its
  // current neighborhood leaves free — one always exists, and each
  // step preserves properness against the colors as they stand, so
  // the final coloring is proper with every color < cutoff.
  std::uint64_t remapped = 0;
  std::vector<char> used;
  for (NodeId v = 0; v < cap; ++v) {
    if (!graph_.alive(v) || colors_[v] < cutoff) continue;
    const std::uint32_t deg = graph_.degree(v);
    used.assign(static_cast<std::size_t>(deg) + 1, 0);
    for (NodeId u : graph_.neighbors(v)) {
      const Color cu = colors_[u];
      if (cu >= 0 && cu <= static_cast<Color>(deg))
        used[static_cast<std::size_t>(cu)] = 1;
    }
    Color c = 0;
    while (used[static_cast<std::size_t>(c)] != 0) ++c;
    colors_[v] = c;
    ++remapped;
  }
  // Shrink every live palette back to exactly degree+1: the held color
  // plus the smallest absent ones. Cached region solutions were keyed
  // on the old palettes; drop them rather than let stale shapes churn
  // the validation path.
  for (NodeId v = 0; v < cap; ++v) {
    if (!graph_.alive(v)) continue;
    palettes_[v].assign(1, colors_[v]);
    grow_palette(v);
  }
  cache_.clear();
  dirty_full_ = true;
  return remapped;
}

void ColoringService::maybe_compact(MutationResult& out) {
  if (cfg_.compaction_slack == kCompactionDisabled) return;
  const auto snap = published_.load();
  const std::uint64_t budget = static_cast<std::uint64_t>(snap->max_degree) +
                               1 + cfg_.compaction_slack;
  if (snap->colors_used <= budget) return;
  obs::Span span("service.compact");
  if (span.active()) {
    span.tag_u64("request_id", out.request_id);
    span.tag_u64("colors_used_before", snap->colors_used);
    span.tag_u64("max_degree", snap->max_degree);
  }
  const std::uint64_t remapped = compact_palettes();
  ++stats_.compactions;
  out.compacted = true;
  publish_snapshot("compact", out.batch_seq, &out);
  if (span.active()) {
    span.tag_u64("remapped", remapped);
    span.tag_u64("colors_used_after", published_.load()->colors_used);
  }
}

// ---------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------

MutationResult ColoringService::apply_batch(std::span<const Mutation> batch) {
  std::lock_guard<std::mutex> lock(write_mu_);
  const std::uint64_t rid =
      next_request_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t start_us = Timer::now_us();
  obs::Span req("service.request", obs::SpanKind::kPhase);
  if (req.active()) {
    req.tag_u64("request_id", rid);
    req.tag("kind", "mutation-batch");
  }
  obs::Span bspan("service.batch");
  if (bspan.active()) {
    bspan.tag_u64("request_id", rid);
    bspan.tag_u64("mutations", batch.size());
  }

  MutationResult out;
  out.request_id = rid;
  ++stats_.batches;
  stats_.mutations += batch.size();

  // Canonicalize: a batch is a set. Vertex inserts land first (ids
  // capacity()..capacity()+k-1), then edge inserts, edge deletes, and
  // vertex deletes — each class deduplicated — so any arrival order of
  // the same multiset produces the same state and the same coloring.
  std::size_t vertex_inserts = 0;
  std::vector<std::pair<NodeId, NodeId>> edge_inserts, edge_deletes;
  std::vector<NodeId> vertex_deletes;
  for (const Mutation& mu : batch) {
    switch (mu.kind) {
      case MutationKind::kInsertVertex:
        ++vertex_inserts;
        break;
      case MutationKind::kDeleteVertex:
        vertex_deletes.push_back(mu.u);
        break;
      case MutationKind::kInsertEdge:
        edge_inserts.emplace_back(std::min(mu.u, mu.v), std::max(mu.u, mu.v));
        break;
      case MutationKind::kDeleteEdge:
        edge_deletes.emplace_back(std::min(mu.u, mu.v), std::max(mu.u, mu.v));
        break;
    }
  }
  auto canon = [](auto& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  canon(edge_inserts);
  canon(edge_deletes);
  canon(vertex_deletes);

  // Validate every reference BEFORE mutating anything, so a bad batch
  // is rejected atomically (throws with the graph and coloring
  // untouched). Ids in [capacity, capacity + vertex_inserts) refer to
  // this batch's own vertex inserts.
  const NodeId cap0 = graph_.capacity();
  auto will_exist = [&](NodeId v) {
    return v < cap0 ? graph_.alive(v) : v < cap0 + vertex_inserts;
  };
  for (auto [u, v] : edge_inserts) {
    PDC_CHECK_MSG(u != v, "self-loop edge insert on " << u);
    PDC_CHECK_MSG(will_exist(u) && will_exist(v),
                  "edge insert references dead or unknown id (" << u << ", "
                                                                << v << ")");
  }
  for (auto [u, v] : edge_deletes)
    PDC_CHECK_MSG(will_exist(u) && will_exist(v),
                  "edge delete references dead or unknown id (" << u << ", "
                                                                << v << ")");
  for (NodeId v : vertex_deletes)
    PDC_CHECK_MSG(will_exist(v),
                  "vertex delete references dead or unknown id " << v);

  for (std::size_t k = 0; k < vertex_inserts; ++k) {
    const NodeId id = graph_.add_vertex();
    colors_.push_back(kNoColor);
    palettes_.emplace_back();
    out.new_vertices.push_back(id);
    mark_dirty(id);
    ++out.applied;
  }

  std::vector<std::pair<NodeId, NodeId>> inserted;
  for (auto [u, v] : edge_inserts)
    if (graph_.add_edge(u, v)) {
      inserted.emplace_back(u, v);
      mark_dirty(u);
      mark_dirty(v);
    }
  out.applied += inserted.size();
  for (auto [u, v] : edge_deletes)
    if (graph_.remove_edge(u, v)) {
      mark_dirty(u);
      mark_dirty(v);
      ++out.applied;
    }
  for (NodeId v : vertex_deletes) {
    // Record the soon-detached neighbors before the removal clears the
    // adjacency — their snapshot chunks change too.
    for (NodeId u : graph_.neighbors(v)) mark_dirty(u);
    graph_.remove_vertex(v);
    colors_[v] = kNoColor;
    palettes_[v].clear();
    mark_dirty(v);
    ++out.applied;
  }

  // Degree+1 palette maintenance after the structure settles (final
  // degrees => deterministic palettes).
  std::vector<NodeId> touched(out.new_vertices.begin(),
                              out.new_vertices.end());
  for (auto [u, v] : inserted) {
    touched.push_back(u);
    touched.push_back(v);
  }
  canon(touched);
  for (NodeId v : touched)
    if (graph_.alive(v)) grow_palette(v);

  // Damaged region: new vertices (uncolored) plus, per surviving
  // inserted edge whose endpoints collide, the higher endpoint — a
  // deterministic choice, so the region is a function of the batch set.
  std::vector<NodeId> damaged;
  for (NodeId v : out.new_vertices)
    if (graph_.alive(v)) damaged.push_back(v);
  for (auto [u, v] : inserted) {
    if (!graph_.alive(u) || !graph_.alive(v) || !graph_.has_edge(u, v))
      continue;
    if (colors_[u] != kNoColor && colors_[u] == colors_[v])
      damaged.push_back(std::max(u, v));
  }
  canon(damaged);
  out.damaged = damaged.size();
  stats_.damaged_nodes += damaged.size();
  if (bspan.active()) bspan.tag_u64("damaged", out.damaged);
  if (req.active()) req.tag_u64("damaged", out.damaged);

  if (damaged.empty()) {
    out.valid = true;
  } else if (static_cast<double>(damaged.size()) >
             cfg_.full_resolve_fraction *
                 static_cast<double>(graph_.num_alive())) {
    full_resolve(&out);
  } else {
    recolor_region(std::move(damaged), out);
  }

  // Commit point: publish the post-batch snapshot before returning so
  // any read that starts after this call observes batch_seq >= ours.
  out.batch_seq = ++last_batch_seq_;
  publish_snapshot("batch", out.batch_seq, &out);
  maybe_compact(out);

  publish_mutation_metrics(
      out, batch.size(),
      static_cast<double>(Timer::now_us() - start_us) / 1000.0);
  return out;
}

void ColoringService::recolor_region(std::vector<NodeId> region,
                                     MutationResult& out) {
  const std::uint64_t start_us = Timer::now_us();
  obs::Span span("service.recolor");
  if (span.active()) {
    span.tag_u64("request_id", out.request_id);
    span.tag_u64("region", region.size());
    span.tag("mode", "incremental");
  }
  for (NodeId v : region) {
    colors_[v] = kNoColor;
    mark_dirty(v);
  }
  d1lc::RegionInstance ri = d1lc::build_region_instance(
      graph_, [&](NodeId v) { return std::span<const Color>(palettes_[v]); },
      colors_, region);

  const std::uint64_t sig =
      cache_.capacity() > 0 ? RegionCache::signature(ri.instance, "recolor")
                            : 0;
  bool served = false;
  if (cache_.capacity() > 0) {
    if (const std::vector<Color>* hit = cache_.lookup(sig)) {
      // The restricted palettes already encode the exterior, so a
      // proper in-palette coloring of the region instance is safe to
      // commit as-is. Collisions/stale entries fail this check and
      // fall through to a real solve.
      if (hit->size() == ri.to_parent.size() &&
          is_proper_coloring(ri.instance.graph, *hit,
                             &ri.instance.palettes)) {
        lift_coloring(ri.to_parent, *hit, colors_);
        cache_.record_hit();
        out.cache_hit = true;
        out.valid = true;
        served = true;
      } else {
        cache_.record_rejected_hit();
      }
    } else {
      cache_.record_miss();
    }
  }

  if (!served) {
    d1lc::SolveResult r = d1lc::solve_d1lc(ri.instance, cfg_.solver);
    stats_.seed_search.absorb(r.seed_search);
    out.valid = r.valid;
    lift_coloring(ri.to_parent, r.coloring, colors_);
    if (cfg_.cache_capacity > 0 && r.valid)
      cache_.insert(sig, std::move(r.coloring));
  }

  ++stats_.incremental_recolors;
  stats_.recolored_nodes += region.size();
  stats_.recolor_ms +=
      static_cast<double>(Timer::now_us() - start_us) / 1000.0;
  if (span.active()) span.tag("cache", out.cache_hit ? "hit" : "miss");
}

void ColoringService::full_resolve(MutationResult* out) {
  const std::uint64_t start_us = Timer::now_us();
  obs::Span span("service.recolor");
  std::vector<NodeId> live;
  live.reserve(graph_.num_alive());
  for (NodeId v = 0; v < graph_.capacity(); ++v)
    if (graph_.alive(v)) live.push_back(v);
  if (span.active()) {
    if (out != nullptr) span.tag_u64("request_id", out->request_id);
    span.tag_u64("region", live.size());
    span.tag("mode", "full");
  }
  for (NodeId v : live) colors_[v] = kNoColor;
  d1lc::RegionInstance ri = d1lc::build_region_instance(
      graph_, [&](NodeId v) { return std::span<const Color>(palettes_[v]); },
      colors_, live);
  d1lc::SolveResult r = d1lc::solve_d1lc(ri.instance, cfg_.solver);
  stats_.seed_search.absorb(r.seed_search);
  lift_coloring(ri.to_parent, r.coloring, colors_);
  if (out != nullptr) {
    out->full_resolve = true;
    out->valid = r.valid;
  }
  dirty_full_ = true;
  ++stats_.full_resolves;
  stats_.recolored_nodes += live.size();
  stats_.full_ms += static_cast<double>(Timer::now_us() - start_us) / 1000.0;
}

}  // namespace pdc::service
