#include "pdc/service/service.hpp"

#include <algorithm>
#include <utility>

#include "pdc/graph/coloring.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/util/timer.hpp"

namespace pdc::service {

namespace {

obs::Labels service_labels() {
  return obs::Labels{.phase = "service", .route = {}, .plane = {},
                     .backend = {}};
}

/// Per-request metrics, assembled locally and absorbed into the global
/// registry in one shot — the server-side publication discipline.
void publish_query_metrics(double wall_ms) {
  if (!obs::metrics_enabled()) return;
  obs::Metrics m;
  const obs::Labels l = service_labels();
  m.add("service.requests", l, 1);
  m.add("service.queries", l, 1);
  m.add_real("service.request_ms", l, wall_ms);
  obs::Metrics::global().absorb(m);
}

void publish_mutation_metrics(const MutationResult& r, std::uint64_t batch,
                              double wall_ms) {
  if (!obs::metrics_enabled()) return;
  obs::Metrics m;
  const obs::Labels l = service_labels();
  m.add("service.requests", l, 1);
  m.add("service.batches", l, 1);
  m.add("service.mutations", l, batch);
  m.add("service.mutations_applied", l, r.applied);
  m.add("service.damaged_nodes", l, r.damaged);
  if (r.damaged > 0) {
    m.add(r.full_resolve ? "service.full_resolves"
                         : "service.incremental_recolors",
          l, 1);
    m.add(r.cache_hit ? "service.cache_hits" : "service.cache_misses", l, 1);
  }
  m.add_real("service.request_ms", l, wall_ms);
  obs::Metrics::global().absorb(m);
}

}  // namespace

ColoringService::ColoringService(const D1lcInstance& base, ServiceConfig cfg)
    : cfg_(std::move(cfg)), cache_(cfg_.cache_capacity) {
  adopt_instance(base);
  full_resolve(nullptr);
}

ColoringService::ColoringService(const Graph& g, ServiceConfig cfg)
    : cfg_(std::move(cfg)), cache_(cfg_.cache_capacity) {
  graph_ = DynamicGraph(g);
  colors_.assign(graph_.capacity(), kNoColor);
  init_palettes_degree_plus_one();
  full_resolve(nullptr);
}

ColoringService::ColoringService(const D1lcInstance& base, Coloring initial,
                                 ServiceConfig cfg)
    : cfg_(std::move(cfg)), cache_(cfg_.cache_capacity) {
  adopt_instance(base);
  PDC_CHECK_MSG(is_proper_coloring(base, initial),
                "warm-start coloring is not complete and proper");
  colors_ = std::move(initial);
}

void ColoringService::adopt_instance(const D1lcInstance& base) {
  PDC_CHECK_MSG(base.valid(), "service input is not a valid D1LC instance");
  graph_ = DynamicGraph(base.graph);
  colors_.assign(graph_.capacity(), kNoColor);
  palettes_.resize(graph_.capacity());
  for (NodeId v = 0; v < graph_.capacity(); ++v) {
    auto pal = base.palettes.palette(v);
    palettes_[v].assign(pal.begin(), pal.end());
  }
}

void ColoringService::init_palettes_degree_plus_one() {
  palettes_.assign(graph_.capacity(), {});
  for (NodeId v = 0; v < graph_.capacity(); ++v) grow_palette(v);
}

void ColoringService::grow_palette(NodeId v) {
  std::vector<Color>& pal = palettes_[v];
  const std::size_t need = static_cast<std::size_t>(graph_.degree(v)) + 1;
  // Insert the smallest absent colors, keeping the list sorted. One
  // merge-style walk: candidate c climbs past present colors.
  std::size_t i = 0;
  Color c = 0;
  while (pal.size() < need) {
    if (i < pal.size() && pal[i] <= c) {
      if (pal[i] == c) ++c;
      ++i;
      continue;
    }
    pal.insert(pal.begin() + static_cast<std::ptrdiff_t>(i), c);
    ++i;
    ++c;
  }
}

const ServiceStats& ColoringService::stats() const {
  stats_.cache = cache_.stats();
  return stats_;
}

d1lc::RegionInstance ColoringService::snapshot_instance() const {
  std::vector<NodeId> live;
  live.reserve(graph_.num_alive());
  for (NodeId v = 0; v < graph_.capacity(); ++v)
    if (graph_.alive(v)) live.push_back(v);
  const Coloring none(graph_.capacity(), kNoColor);
  return d1lc::build_region_instance(
      graph_, [&](NodeId v) { return std::span<const Color>(palettes_[v]); },
      none, live);
}

// ---------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------

namespace {
struct QueryScope {
  obs::Span span;
  std::uint64_t start_us;
  explicit QueryScope(std::uint64_t request_id, const char* kind)
      : span("service.request", obs::SpanKind::kPhase),
        start_us(Timer::now_us()) {
    if (span.active()) {
      span.tag_u64("request_id", request_id);
      span.tag("kind", kind);
    }
  }
  ~QueryScope() {
    publish_query_metrics(
        static_cast<double>(Timer::now_us() - start_us) / 1000.0);
  }
};
}  // namespace

Color ColoringService::query_color(NodeId v) {
  QueryScope scope(next_request_++, "color");
  ++stats_.requests;
  ++stats_.queries;
  return color_of(v);
}

std::vector<Color> ColoringService::query_colors(
    std::span<const NodeId> nodes) {
  QueryScope scope(next_request_++, "colors");
  ++stats_.requests;
  ++stats_.queries;
  std::vector<Color> out;
  out.reserve(nodes.size());
  for (NodeId v : nodes) out.push_back(color_of(v));
  return out;
}

std::vector<std::pair<NodeId, Color>> ColoringService::query_neighborhood(
    NodeId v) {
  QueryScope scope(next_request_++, "neighborhood");
  ++stats_.requests;
  ++stats_.queries;
  PDC_CHECK_MSG(graph_.alive(v), "query for dead or unknown id " << v);
  std::vector<std::pair<NodeId, Color>> out;
  out.reserve(graph_.degree(v) + 1u);
  out.emplace_back(v, colors_[v]);
  for (NodeId u : graph_.neighbors(v)) out.emplace_back(u, colors_[u]);
  return out;
}

bool ColoringService::query_validate() {
  QueryScope scope(next_request_++, "validate");
  ++stats_.requests;
  ++stats_.queries;
  for (NodeId v = 0; v < graph_.capacity(); ++v) {
    if (!graph_.alive(v)) continue;
    if (colors_[v] == kNoColor) return false;
    if (!std::binary_search(palettes_[v].begin(), palettes_[v].end(),
                            colors_[v]))
      return false;
    for (NodeId u : graph_.neighbors(v))
      if (colors_[u] == colors_[v]) return false;
  }
  return true;
}

std::uint64_t ColoringService::query_colors_used() {
  QueryScope scope(next_request_++, "colors-used");
  ++stats_.requests;
  ++stats_.queries;
  std::vector<Color> live;
  live.reserve(graph_.num_alive());
  for (NodeId v = 0; v < graph_.capacity(); ++v)
    if (graph_.alive(v)) live.push_back(colors_[v]);
  return count_colors_used(live);
}

// ---------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------

MutationResult ColoringService::apply_batch(std::span<const Mutation> batch) {
  const std::uint64_t rid = next_request_++;
  const std::uint64_t start_us = Timer::now_us();
  obs::Span req("service.request", obs::SpanKind::kPhase);
  if (req.active()) {
    req.tag_u64("request_id", rid);
    req.tag("kind", "mutation-batch");
  }
  obs::Span bspan("service.batch");
  if (bspan.active()) {
    bspan.tag_u64("request_id", rid);
    bspan.tag_u64("mutations", batch.size());
  }

  MutationResult out;
  out.request_id = rid;
  ++stats_.requests;
  ++stats_.batches;
  stats_.mutations += batch.size();

  // Canonicalize: a batch is a set. Vertex inserts land first (ids
  // capacity()..capacity()+k-1), then edge inserts, edge deletes, and
  // vertex deletes — each class deduplicated — so any arrival order of
  // the same multiset produces the same state and the same coloring.
  std::size_t vertex_inserts = 0;
  std::vector<std::pair<NodeId, NodeId>> edge_inserts, edge_deletes;
  std::vector<NodeId> vertex_deletes;
  for (const Mutation& mu : batch) {
    switch (mu.kind) {
      case MutationKind::kInsertVertex:
        ++vertex_inserts;
        break;
      case MutationKind::kDeleteVertex:
        vertex_deletes.push_back(mu.u);
        break;
      case MutationKind::kInsertEdge:
        edge_inserts.emplace_back(std::min(mu.u, mu.v), std::max(mu.u, mu.v));
        break;
      case MutationKind::kDeleteEdge:
        edge_deletes.emplace_back(std::min(mu.u, mu.v), std::max(mu.u, mu.v));
        break;
    }
  }
  auto canon = [](auto& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  canon(edge_inserts);
  canon(edge_deletes);
  canon(vertex_deletes);

  // Validate every reference BEFORE mutating anything, so a bad batch
  // is rejected atomically (throws with the graph and coloring
  // untouched). Ids in [capacity, capacity + vertex_inserts) refer to
  // this batch's own vertex inserts.
  const NodeId cap0 = graph_.capacity();
  auto will_exist = [&](NodeId v) {
    return v < cap0 ? graph_.alive(v) : v < cap0 + vertex_inserts;
  };
  for (auto [u, v] : edge_inserts) {
    PDC_CHECK_MSG(u != v, "self-loop edge insert on " << u);
    PDC_CHECK_MSG(will_exist(u) && will_exist(v),
                  "edge insert references dead or unknown id (" << u << ", "
                                                                << v << ")");
  }
  for (auto [u, v] : edge_deletes)
    PDC_CHECK_MSG(will_exist(u) && will_exist(v),
                  "edge delete references dead or unknown id (" << u << ", "
                                                                << v << ")");
  for (NodeId v : vertex_deletes)
    PDC_CHECK_MSG(will_exist(v),
                  "vertex delete references dead or unknown id " << v);

  for (std::size_t k = 0; k < vertex_inserts; ++k) {
    const NodeId id = graph_.add_vertex();
    colors_.push_back(kNoColor);
    palettes_.emplace_back();
    out.new_vertices.push_back(id);
    ++out.applied;
  }

  std::vector<std::pair<NodeId, NodeId>> inserted;
  for (auto [u, v] : edge_inserts)
    if (graph_.add_edge(u, v)) inserted.emplace_back(u, v);
  out.applied += inserted.size();
  for (auto [u, v] : edge_deletes) out.applied += graph_.remove_edge(u, v);
  for (NodeId v : vertex_deletes) {
    graph_.remove_vertex(v);
    colors_[v] = kNoColor;
    palettes_[v].clear();
    ++out.applied;
  }

  // Degree+1 palette maintenance after the structure settles (final
  // degrees => deterministic palettes).
  std::vector<NodeId> touched(out.new_vertices.begin(),
                              out.new_vertices.end());
  for (auto [u, v] : inserted) {
    touched.push_back(u);
    touched.push_back(v);
  }
  canon(touched);
  for (NodeId v : touched)
    if (graph_.alive(v)) grow_palette(v);

  // Damaged region: new vertices (uncolored) plus, per surviving
  // inserted edge whose endpoints collide, the higher endpoint — a
  // deterministic choice, so the region is a function of the batch set.
  std::vector<NodeId> damaged;
  for (NodeId v : out.new_vertices)
    if (graph_.alive(v)) damaged.push_back(v);
  for (auto [u, v] : inserted) {
    if (!graph_.alive(u) || !graph_.alive(v) || !graph_.has_edge(u, v))
      continue;
    if (colors_[u] != kNoColor && colors_[u] == colors_[v])
      damaged.push_back(std::max(u, v));
  }
  canon(damaged);
  out.damaged = damaged.size();
  stats_.damaged_nodes += damaged.size();
  if (bspan.active()) bspan.tag_u64("damaged", out.damaged);
  if (req.active()) req.tag_u64("damaged", out.damaged);

  if (damaged.empty()) {
    out.valid = true;
  } else if (static_cast<double>(damaged.size()) >
             cfg_.full_resolve_fraction *
                 static_cast<double>(graph_.num_alive())) {
    full_resolve(&out);
  } else {
    recolor_region(std::move(damaged), out);
  }

  publish_mutation_metrics(
      out, batch.size(),
      static_cast<double>(Timer::now_us() - start_us) / 1000.0);
  return out;
}

void ColoringService::recolor_region(std::vector<NodeId> region,
                                     MutationResult& out) {
  const std::uint64_t start_us = Timer::now_us();
  obs::Span span("service.recolor");
  if (span.active()) {
    span.tag_u64("request_id", out.request_id);
    span.tag_u64("region", region.size());
    span.tag("mode", "incremental");
  }
  for (NodeId v : region) colors_[v] = kNoColor;
  d1lc::RegionInstance ri = d1lc::build_region_instance(
      graph_, [&](NodeId v) { return std::span<const Color>(palettes_[v]); },
      colors_, region);

  const std::uint64_t sig =
      cache_.capacity() > 0 ? RegionCache::signature(ri.instance, "recolor")
                            : 0;
  bool served = false;
  if (cache_.capacity() > 0) {
    if (const std::vector<Color>* hit = cache_.lookup(sig)) {
      // The restricted palettes already encode the exterior, so a
      // proper in-palette coloring of the region instance is safe to
      // commit as-is. Collisions/stale entries fail this check and
      // fall through to a real solve.
      if (hit->size() == ri.to_parent.size() &&
          is_proper_coloring(ri.instance.graph, *hit,
                             &ri.instance.palettes)) {
        lift_coloring(ri.to_parent, *hit, colors_);
        cache_.record_hit();
        out.cache_hit = true;
        out.valid = true;
        served = true;
      } else {
        cache_.record_rejected_hit();
      }
    } else {
      cache_.record_miss();
    }
  }

  if (!served) {
    d1lc::SolveResult r = d1lc::solve_d1lc(ri.instance, cfg_.solver);
    stats_.seed_search.absorb(r.seed_search);
    out.valid = r.valid;
    lift_coloring(ri.to_parent, r.coloring, colors_);
    if (cfg_.cache_capacity > 0 && r.valid)
      cache_.insert(sig, std::move(r.coloring));
  }

  ++stats_.incremental_recolors;
  stats_.recolored_nodes += region.size();
  stats_.recolor_ms +=
      static_cast<double>(Timer::now_us() - start_us) / 1000.0;
  if (span.active()) span.tag("cache", out.cache_hit ? "hit" : "miss");
}

void ColoringService::full_resolve(MutationResult* out) {
  const std::uint64_t start_us = Timer::now_us();
  obs::Span span("service.recolor");
  std::vector<NodeId> live;
  live.reserve(graph_.num_alive());
  for (NodeId v = 0; v < graph_.capacity(); ++v)
    if (graph_.alive(v)) live.push_back(v);
  if (span.active()) {
    if (out != nullptr) span.tag_u64("request_id", out->request_id);
    span.tag_u64("region", live.size());
    span.tag("mode", "full");
  }
  for (NodeId v : live) colors_[v] = kNoColor;
  d1lc::RegionInstance ri = d1lc::build_region_instance(
      graph_, [&](NodeId v) { return std::span<const Color>(palettes_[v]); },
      colors_, live);
  d1lc::SolveResult r = d1lc::solve_d1lc(ri.instance, cfg_.solver);
  stats_.seed_search.absorb(r.seed_search);
  lift_coloring(ri.to_parent, r.coloring, colors_);
  if (out != nullptr) {
    out->full_resolve = true;
    out->valid = r.valid;
  }
  ++stats_.full_resolves;
  stats_.recolored_nodes += live.size();
  stats_.full_ms += static_cast<double>(Timer::now_us() - start_us) / 1000.0;
}

}  // namespace pdc::service
