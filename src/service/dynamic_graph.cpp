#include "pdc/service/dynamic_graph.hpp"

#include <algorithm>

namespace pdc::service {

DynamicGraph::DynamicGraph(const Graph& g) {
  adj_.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto nb = g.neighbors(v);
    adj_[v].assign(nb.begin(), nb.end());
  }
  alive_.assign(g.num_nodes(), 1);
  alive_count_ = g.num_nodes();
  m_ = g.num_edges();
}

bool DynamicGraph::has_edge(NodeId u, NodeId v) const {
  if (u >= capacity() || v >= capacity()) return false;
  const auto& small = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const NodeId other = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::binary_search(small.begin(), small.end(), other);
}

NodeId DynamicGraph::add_vertex() {
  adj_.emplace_back();
  alive_.push_back(1);
  ++alive_count_;
  return static_cast<NodeId>(adj_.size() - 1);
}

void DynamicGraph::remove_vertex(NodeId v) {
  PDC_CHECK_MSG(alive(v), "remove_vertex: dead or unknown id " << v);
  for (NodeId u : adj_[v]) {
    auto& nb = adj_[u];
    nb.erase(std::lower_bound(nb.begin(), nb.end(), v));
  }
  m_ -= adj_[v].size();
  adj_[v].clear();
  adj_[v].shrink_to_fit();
  alive_[v] = 0;
  --alive_count_;
}

bool DynamicGraph::add_edge(NodeId u, NodeId v) {
  if (u == v || !alive(u) || !alive(v) || has_edge(u, v)) return false;
  adj_[u].insert(std::lower_bound(adj_[u].begin(), adj_[u].end(), v), v);
  adj_[v].insert(std::lower_bound(adj_[v].begin(), adj_[v].end(), u), u);
  ++m_;
  return true;
}

bool DynamicGraph::remove_edge(NodeId u, NodeId v) {
  if (!has_edge(u, v)) return false;
  auto& nu = adj_[u];
  auto& nv = adj_[v];
  nu.erase(std::lower_bound(nu.begin(), nu.end(), v));
  nv.erase(std::lower_bound(nv.begin(), nv.end(), u));
  --m_;
  return true;
}

Graph DynamicGraph::to_graph() const {
  std::vector<std::uint64_t> offsets(capacity() + 1, 0);
  for (NodeId v = 0; v < capacity(); ++v)
    offsets[v + 1] = offsets[v] + adj_[v].size();
  std::vector<NodeId> adjacency;
  adjacency.reserve(offsets.back());
  for (NodeId v = 0; v < capacity(); ++v)
    adjacency.insert(adjacency.end(), adj_[v].begin(), adj_[v].end());
  return Graph::from_csr(std::move(offsets), std::move(adjacency));
}

}  // namespace pdc::service
