#include "pdc/service/snapshot.hpp"

#include <algorithm>

namespace pdc::service {

namespace {

std::shared_ptr<const SnapshotChunk> build_chunk(
    const DynamicGraph& g, const std::vector<std::vector<Color>>& palettes,
    std::span<const Color> colors, NodeId base, NodeId count) {
  auto ch = std::make_shared<SnapshotChunk>();
  ch->base = base;
  ch->offsets.reserve(count + 1);
  ch->pal_offsets.reserve(count + 1);
  ch->colors.reserve(count);
  ch->alive.reserve(count);
  ch->offsets.push_back(0);
  ch->pal_offsets.push_back(0);
  for (NodeId i = 0; i < count; ++i) {
    const NodeId v = base + i;
    const bool live = g.alive(v);
    ch->alive.push_back(live ? 1 : 0);
    ch->colors.push_back(colors[v]);
    const auto nb = g.neighbors(v);
    ch->adjacency.insert(ch->adjacency.end(), nb.begin(), nb.end());
    ch->offsets.push_back(static_cast<std::uint32_t>(ch->adjacency.size()));
    const auto& pal = palettes[v];
    ch->pal_colors.insert(ch->pal_colors.end(), pal.begin(), pal.end());
    ch->pal_offsets.push_back(static_cast<std::uint32_t>(ch->pal_colors.size()));
    if (live) {
      ++ch->alive_count;
      ch->max_degree =
          std::max(ch->max_degree, static_cast<std::uint32_t>(nb.size()));
      if (colors[v] != kNoColor) ch->used.push_back(colors[v]);
    }
  }
  std::sort(ch->used.begin(), ch->used.end());
  ch->used.erase(std::unique(ch->used.begin(), ch->used.end()),
                 ch->used.end());
  return ch;
}

}  // namespace

bool ColoringSnapshot::validate() const {
  for (const auto& ch : chunks) {
    const NodeId count = static_cast<NodeId>(ch->colors.size());
    for (NodeId i = 0; i < count; ++i) {
      if (!ch->alive[i]) continue;
      const NodeId v = ch->base + i;
      const Color c = ch->colors[i];
      if (c == kNoColor) return false;
      const auto pal = palette(v);
      if (!std::binary_search(pal.begin(), pal.end(), c)) return false;
      for (const NodeId u : neighbors(v)) {
        if (color(u) == c) return false;
      }
    }
  }
  return true;
}

std::shared_ptr<const ColoringSnapshot> build_snapshot(
    const DynamicGraph& g, const std::vector<std::vector<Color>>& palettes,
    std::span<const Color> colors, std::uint64_t epoch,
    std::uint64_t batch_seq, const ColoringSnapshot* prev,
    std::span<const NodeId> dirty, SnapshotBuildStats* stats) {
  auto snap = std::make_shared<ColoringSnapshot>();
  snap->epoch = epoch;
  snap->batch_seq = batch_seq;
  snap->capacity = g.capacity();
  snap->num_edges = g.num_edges();

  const std::size_t num_chunks =
      (static_cast<std::size_t>(snap->capacity) + kSnapshotChunkNodes - 1) >>
      kSnapshotChunkShift;
  snap->chunks.reserve(num_chunks);

  // A previous chunk is reusable only if it is full-width (capacity
  // growth into a partial tail chunk changes its node count) and no
  // dirty node falls inside it. New vertices are always dirty, so the
  // partial-tail case is belt and braces.
  std::vector<char> chunk_dirty(num_chunks, prev == nullptr ? 1 : 0);
  if (prev != nullptr) {
    for (const NodeId v : dirty) {
      chunk_dirty[v >> kSnapshotChunkShift] = 1;
    }
    if (prev->capacity != snap->capacity) {
      const std::size_t prev_full_chunks =
          static_cast<std::size_t>(prev->capacity) >> kSnapshotChunkShift;
      for (std::size_t c = prev_full_chunks; c < num_chunks; ++c) {
        chunk_dirty[c] = 1;
      }
    }
  }

  for (std::size_t c = 0; c < num_chunks; ++c) {
    const NodeId base = static_cast<NodeId>(c << kSnapshotChunkShift);
    const NodeId count =
        std::min(kSnapshotChunkNodes, static_cast<NodeId>(snap->capacity - base));
    if (!chunk_dirty[c]) {
      snap->chunks.push_back(prev->chunks[c]);
      if (stats != nullptr) ++stats->chunks_reused;
    } else {
      snap->chunks.push_back(build_chunk(g, palettes, colors, base, count));
      if (stats != nullptr) ++stats->chunks_rebuilt;
    }
  }

  // Roll up the census: distinct colors over all live nodes, max live
  // degree, alive count.
  std::vector<Color> all_used;
  for (const auto& ch : snap->chunks) {
    snap->num_alive += ch->alive_count;
    snap->max_degree = std::max(snap->max_degree, ch->max_degree);
    all_used.insert(all_used.end(), ch->used.begin(), ch->used.end());
  }
  std::sort(all_used.begin(), all_used.end());
  all_used.erase(std::unique(all_used.begin(), all_used.end()),
                 all_used.end());
  snap->colors_used = all_used.size();
  return snap;
}

}  // namespace pdc::service
