// Tests for the genuinely-distributed low-degree color trials:
// bit-identical equivalence with the shared-memory twin, full-phase
// validity, and the round accounting (2 cluster rounds per trial).

#include <gtest/gtest.h>

#include "pdc/d1lc/low_degree_mpc.hpp"
#include "pdc/graph/generators.hpp"

namespace pdc::d1lc {
namespace {

mpc::Config config_for(const D1lcInstance& inst, std::uint32_t machines) {
  mpc::Config c;
  c.n = inst.graph.num_nodes();
  c.phi = 0.5;
  c.local_space_words = std::max<std::uint64_t>(
      4096, 16 * inst.graph.num_edges() / machines + 4096);
  c.num_machines = machines;
  return c;
}

class MpcTrialEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(MpcTrialEquivalence, DistributedMatchesSharedBitForBit) {
  auto [seed, machines] = GetParam();
  Graph g = gen::gnp(300, 0.03, seed);
  D1lcInstance inst = make_degree_plus_one(g);
  EnumerablePairwiseFamily family(seed, 6);

  Coloring none(g.num_nodes(), kNoColor);
  mpc::Cluster cluster(config_for(inst, static_cast<std::uint32_t>(machines)));
  for (std::uint64_t idx : {0ull, 5ull, 31ull}) {
    MpcTrialResult shared =
        low_degree_trial_shared(inst, none, family, idx);
    MpcTrialResult dist =
        low_degree_trial_mpc(cluster, inst, none, family, idx);
    EXPECT_EQ(dist.committed, shared.committed) << "family index " << idx;
    EXPECT_EQ(dist.colored, shared.colored);
    EXPECT_EQ(dist.mpc_rounds, 2u);
  }
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMachines, MpcTrialEquivalence,
    ::testing::Combine(::testing::Values(std::uint64_t{1}, std::uint64_t{9}),
                       ::testing::Values(2, 7)));

TEST(MpcLowDegree, FullPhaseLoopColorsEverything) {
  Graph g = gen::gnp(250, 0.02, 5);
  D1lcInstance inst = make_degree_plus_one(g);
  mpc::Cluster cluster(config_for(inst, 5));
  MpcLowDegreeResult r = low_degree_color_mpc(cluster, inst);
  EXPECT_TRUE(r.valid);
  EXPECT_LT(r.phases, 50u);
  EXPECT_EQ(r.mpc_rounds, 2 * r.phases);
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

TEST(MpcLowDegree, RespectsPartialColorings) {
  Graph g = gen::cycle(30);
  D1lcInstance inst = make_degree_plus_one(g);
  Coloring partial(30, kNoColor);
  partial[0] = 2;
  EnumerablePairwiseFamily family(3, 5);
  mpc::Cluster cluster(config_for(inst, 3));
  auto trial = low_degree_trial_mpc(cluster, inst, partial, family, 7);
  EXPECT_EQ(trial.committed[0], kNoColor);  // precolored nodes sit out
  for (NodeId v : {NodeId{1}, NodeId{29}}) {
    if (trial.committed[v] != kNoColor) {
      EXPECT_NE(trial.committed[v], 2);  // blocked by the precolor
    }
  }
}

TEST(MpcLowDegree, DeterministicAcrossClusterShapes) {
  // The committed coloring must not depend on the machine count.
  Graph g = gen::gnp(200, 0.03, 13);
  D1lcInstance inst = make_degree_plus_one(g);
  mpc::Cluster c3(config_for(inst, 3)), c11(config_for(inst, 11));
  MpcLowDegreeResult a = low_degree_color_mpc(c3, inst);
  MpcLowDegreeResult b = low_degree_color_mpc(c11, inst);
  EXPECT_TRUE(a.valid);
  EXPECT_EQ(a.coloring, b.coloring);
}

}  // namespace
}  // namespace pdc::d1lc
