// Tests for pdc::obs: span nesting and cross-thread merge, the phase
// stack that keys metrics, counter/real/gauge absorb semantics, the
// disabled-mode no-allocation guarantee, Chrome-trace JSON structure,
// and the headline accounting contract — metrics published by
// engine::search() and Ledger::publish() must equal the SearchStats /
// Lemma10Report / Ledger numbers the harnesses already trust.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pdc/d1lc/solver.hpp"
#include "pdc/d1lc/trial_oracle.hpp"
#include "pdc/derand/coloring_state.hpp"
#include "pdc/derand/lemma10.hpp"
#include "pdc/engine/search.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/procedures.hpp"
#include "pdc/mpc/cluster.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/util/bench_json.hpp"
#include "pdc/util/hashing.hpp"

// Global allocation counter for the disabled-mode no-allocation test.
// Default operator new[] forwards here, so this covers both forms.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace pdc::obs {
namespace {

/// Every obs test starts from a clean slate: collection off, no spans,
/// empty global registry.
struct ObsTest : ::testing::Test {
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    set_tracing(false);
    set_metrics(false);
    clear_trace();
    Metrics::global().clear();
  }
};

const SpanRecord* find(const std::vector<SpanRecord>& recs,
                       const std::string& name) {
  for (const auto& r : recs)
    if (r.name == name) return &r;
  return nullptr;
}

using ObsSpans = ObsTest;

TEST_F(ObsSpans, NestingIsPositionalOnOneThread) {
  set_tracing(true);
  {
    Span outer("outer");
    outer.tag("route", "cond-exp");
    outer.tag_u64("items", 17);
    {
      Span inner("inner");
      volatile std::uint64_t sink = 0;
      for (std::uint64_t i = 0; i < 1000; ++i) sink = sink + i;
    }
  }
  auto recs = trace_snapshot();
  const SpanRecord* outer = find(recs, "outer");
  const SpanRecord* inner = find(recs, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->tid, inner->tid);
  // Chrome renders parent/child by interval containment.
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->dur_us,
            outer->start_us + outer->dur_us);
  ASSERT_EQ(outer->args.size(), 2u);
  EXPECT_EQ(outer->args[0].first, "route");
  EXPECT_EQ(outer->args[0].second, "cond-exp");
  EXPECT_EQ(outer->args[1].second, "17");
}

TEST_F(ObsSpans, CrossThreadSpansMergeIntoOneSnapshot) {
  set_tracing(true);
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i) {
    workers.emplace_back([i] {
      Span span("worker");
      span.tag_u64("index", static_cast<std::uint64_t>(i));
    });
  }
  for (auto& w : workers) w.join();
  {
    PDC_SPAN("coordinator");
  }
  auto recs = trace_snapshot();
  std::set<std::uint32_t> tids;
  int workers_seen = 0;
  for (const auto& r : recs) {
    if (r.name == "worker") {
      ++workers_seen;
      tids.insert(r.tid);
    }
  }
  EXPECT_EQ(workers_seen, 4);
  EXPECT_EQ(tids.size(), 4u);  // one buffer per thread, all merged
  EXPECT_NE(find(recs, "coordinator"), nullptr);
}

TEST_F(ObsSpans, PhaseStackTracksInnermostPhase) {
  set_metrics(true);  // phase stack runs whenever collection is active
  EXPECT_STREQ(current_phase(), "");
  {
    PDC_SPAN_PHASE("solve");
    EXPECT_STREQ(current_phase(), "solve");
    {
      PDC_SPAN("scoped-not-a-phase");
      EXPECT_STREQ(current_phase(), "solve");
      PDC_SPAN_PHASE("partition");
      EXPECT_STREQ(current_phase(), "partition");
    }
    EXPECT_STREQ(current_phase(), "solve");
  }
  EXPECT_STREQ(current_phase(), "");
  // Metrics-only mode maintains phases without recording spans.
  EXPECT_TRUE(trace_snapshot().empty());
}

TEST_F(ObsSpans, DisabledModeDoesNotAllocateOrRecord) {
  // Warm the thread's buffer registration so the measured loop is the
  // steady-state disabled path.
  set_tracing(true);
  { PDC_SPAN("warmup"); }
  set_tracing(false);
  clear_trace();

  const std::uint64_t before = g_allocs.load();
  for (int i = 0; i < 1000; ++i) {
    Span span("disabled");
    span.tag("key", "value");
    span.tag_u64("n", 42);
    PDC_SPAN_PHASE("also-disabled");
  }
  EXPECT_EQ(g_allocs.load() - before, 0u);
  EXPECT_TRUE(trace_snapshot().empty());
}

TEST_F(ObsSpans, ChromeTraceJsonIsStructurallyValid) {
  set_tracing(true);
  {
    PDC_SPAN_PHASE("phase \"quoted\\name");  // exercise escaping
    Span span("child");
    span.tag("k", "v\nw");
  }
  const std::string path = ::testing::TempDir() + "pdc_obs_trace.json";
  write_chrome_trace(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  EXPECT_EQ(text.rfind("{\"traceEvents\":", 0), 0u);
  EXPECT_NE(text.find("\"child\""), std::string::npos);
  EXPECT_NE(text.find("\\\"quoted\\\\name"), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);

  // Structural pass: braces/brackets balance outside string literals,
  // and strings contain no raw control characters.
  int depth = 0;
  bool in_string = false, escaped = false, bad = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      else if (static_cast<unsigned char>(c) < 0x20) bad = true;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    if (depth < 0) bad = true;
  }
  EXPECT_FALSE(bad);
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  std::remove(path.c_str());
}

using ObsMetrics = ObsTest;

TEST_F(ObsMetrics, CounterRealGaugeAbsorbSemantics) {
  Metrics a, b;
  const Labels solve{.phase = "solve"};
  const Labels part{.phase = "partition"};
  a.add("engine.evaluations", solve, 10);
  a.add_real("engine.wall_ms", solve, 1.5);
  a.gauge_max("engine.batch", solve, 64.0);
  b.add("engine.evaluations", solve, 5);
  b.add("engine.evaluations", part, 7);
  b.add_real("engine.wall_ms", solve, 2.25);
  b.gauge_max("engine.batch", solve, 32.0);

  a.absorb(b);
  EXPECT_EQ(a.counter_total("engine.evaluations"), 22u);  // 10 + 5 + 7
  EXPECT_DOUBLE_EQ(a.real_total("engine.wall_ms"), 3.75);
  auto snap = a.snapshot();
  bool saw_gauge = false;
  for (const auto& e : snap) {
    if (e.name == "engine.batch") {
      saw_gauge = true;
      EXPECT_EQ(e.value.kind, MetricKind::kGauge);
      EXPECT_DOUBLE_EQ(e.value.real, 64.0);  // max, not sum
    }
  }
  EXPECT_TRUE(saw_gauge);
  // Per-label entries stay distinct under the {phase,...} key.
  int eval_entries = 0;
  for (const auto& e : snap)
    if (e.name == "engine.evaluations") ++eval_entries;
  EXPECT_EQ(eval_entries, 2);

  // Self-absorb doubles counters without deadlock or corruption.
  a.absorb(a);
  EXPECT_EQ(a.counter_total("engine.evaluations"), 44u);
}

TEST_F(ObsMetrics, BenchJsonExportIsOneFlatRecordPerEntry) {
  Metrics m;
  m.add("mpc.rounds", {.phase = "low_degree"}, 12);
  m.gauge_max("mpc.peak_local_space", {}, 4096.0);
  util::BenchJson json;
  m.to_bench_json(json);
  const std::string path = ::testing::TempDir() + "pdc_obs_metrics.json";
  json.write(path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("\"metric\": \"mpc.rounds\""), std::string::npos);
  EXPECT_NE(text.find("\"phase\": \"low_degree\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"gauge\""), std::string::npos);
  std::remove(path.c_str());
}

// ---- The accounting contract with the instrumented layers. ----

using ObsEngine = ObsTest;

TEST_F(ObsEngine, SearchPublishesItsSelectionStatsExactly) {
  set_metrics(true);
  Graph g = gen::gnp(400, 0.02, 11);
  D1lcInstance inst = make_degree_plus_one(g);
  EnumerablePairwiseFamily family(0xAB, 6);
  Coloring none(g.num_nodes(), kNoColor);
  std::vector<NodeId> items(g.num_nodes());
  std::iota(items.begin(), items.end(), NodeId{0});
  std::vector<std::uint8_t> active(g.num_nodes(), 1);
  d1lc::AvailLists avail = d1lc::AvailLists::from_instance(inst, none);
  d1lc::TrialOracle oracle(g, items, active, avail, family);

  engine::Selection sel = engine::search(
      oracle, engine::SearchRequest::exhaustive(family.size(),
                                                engine::ExecutionPolicy{}));

  const Metrics& m = Metrics::global();
  EXPECT_EQ(m.counter_total("engine.searches"), 1u);
  EXPECT_EQ(m.counter_total("engine.evaluations"), sel.stats.evaluations);
  EXPECT_EQ(m.counter_total("engine.sweeps"), sel.stats.sweeps);
  EXPECT_DOUBLE_EQ(m.real_total("engine.wall_ms"), sel.stats.wall_ms);
}

TEST_F(ObsEngine, ShardedCountersMatchSelectionAndLedger) {
  set_metrics(true);
  Graph g = gen::gnp(600, 0.015, 13);
  D1lcInstance inst = make_degree_plus_one(g);
  EnumerablePairwiseFamily family(0xCD, 6);
  Coloring none(g.num_nodes(), kNoColor);
  std::vector<NodeId> items(g.num_nodes());
  std::iota(items.begin(), items.end(), NodeId{0});
  std::vector<std::uint8_t> active(g.num_nodes(), 1);
  d1lc::AvailLists avail = d1lc::AvailLists::from_instance(inst, none);
  d1lc::TrialOracle oracle(g, items, active, avail, family);

  mpc::Config cfg;
  cfg.n = g.num_nodes();
  cfg.phi = 0.5;
  cfg.local_space_words = 1 << 14;
  cfg.num_machines = 8;
  mpc::Cluster cluster(cfg);

  engine::ExecutionPolicy policy;
  policy.backend = engine::SearchBackend::kSharded;
  policy.cluster = &cluster;
  const std::uint64_t rounds_before = cluster.ledger().rounds();
  engine::Selection sel = engine::search(
      oracle, engine::SearchRequest::exhaustive(family.size(), policy));
  const std::uint64_t ledger_rounds =
      cluster.ledger().rounds() - rounds_before;

  // The acceptance contract: the published sharded counters equal the
  // Selection's ShardedStats, which equal the rounds the Ledger charged.
  const Metrics& m = Metrics::global();
  EXPECT_GT(sel.stats.sharded.rounds, 0u);
  EXPECT_EQ(m.counter_total("engine.sharded.rounds"),
            sel.stats.sharded.rounds);
  EXPECT_EQ(m.counter_total("engine.sharded.words"), sel.stats.sharded.words);
  EXPECT_EQ(sel.stats.sharded.rounds, ledger_rounds);
}

TEST_F(ObsEngine, Lemma10ReportMatchesPublishedMetrics) {
  set_metrics(true);
  Graph g = gen::gnp(300, 0.02, 5);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 60, 20, 7);
  derand::ColoringState state(inst.graph, inst.palettes);
  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc proc(
      cfg, hknt::TryRandomColorProc::Ssp::kSlackTwiceDegree, "obs");
  derand::Lemma10Options opt;
  opt.seed_bits = 6;
  opt.strategy = derand::SeedStrategy::kConditionalExpectation;
  derand::Lemma10Report rep =
      derand::derandomize_procedure(proc, state, opt, nullptr);

  const Metrics& m = Metrics::global();
  EXPECT_EQ(m.counter_total("engine.searches"), 1u);
  EXPECT_EQ(m.counter_total("engine.evaluations"), rep.search.evaluations);
  EXPECT_EQ(m.counter_total("engine.sweeps"), rep.search.sweeps);
  // The search ran under the lemma10.derandomize phase span, so the
  // published entries carry that phase label.
  bool phase_label_seen = false;
  for (const auto& e : m.snapshot()) {
    if (e.name == "engine.evaluations") {
      EXPECT_EQ(e.labels.phase, "lemma10.derandomize");
      phase_label_seen = true;
    }
  }
  EXPECT_TRUE(phase_label_seen);
}

TEST_F(ObsEngine, LedgerPublishMirrorsRoundAndSpaceAccounting) {
  set_metrics(true);
  Graph g = gen::gnp(500, 0.02, 17);
  D1lcInstance inst = make_degree_plus_one(g);
  d1lc::SolverOptions opt;
  opt.mode = d1lc::Mode::kDeterministic;
  opt.l10.seed_bits = 4;
  opt.middle_passes = 1;
  d1lc::SolveResult r = solve_d1lc(inst, opt);
  ASSERT_TRUE(r.valid);

  Metrics m;  // fresh registry: publish() must be exact on its own
  r.ledger.publish(m);
  EXPECT_EQ(m.counter_total("mpc.rounds"), r.ledger.rounds());
  EXPECT_EQ(m.counter_total("mpc.violations"), r.ledger.violations().size());
  double peak_local = 0.0;
  for (const auto& e : m.snapshot())
    if (e.name == "mpc.peak_local_space") peak_local = e.value.real;
  EXPECT_DOUBLE_EQ(peak_local,
                   static_cast<double>(r.ledger.peak_local_space()));

  // Per-phase entries mirror rounds_by_phase (zero-round phases elided).
  for (const auto& [phase, rounds] : r.ledger.rounds_by_phase()) {
    if (rounds == 0) continue;
    bool found = false;
    for (const auto& e : m.snapshot()) {
      if (e.name == "mpc.rounds" && e.labels.phase == phase) {
        EXPECT_EQ(e.value.count, rounds);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "missing mpc.rounds entry for phase " << phase;
  }
}

TEST_F(ObsEngine, SolverEmitsNestedPhaseSpansForEveryPhase) {
  set_tracing(true);
  Graph g = gen::gnp(500, 0.02, 23);
  D1lcInstance inst = make_degree_plus_one(g);
  d1lc::SolverOptions opt;
  opt.mode = d1lc::Mode::kDeterministic;
  opt.l10.seed_bits = 4;
  opt.middle_passes = 1;
  d1lc::SolveResult r = solve_d1lc(inst, opt);
  ASSERT_TRUE(r.valid);
  // Second solve forced above the straight-to-HKNT degree cap, so the
  // partition phase (skipped on the small default path) also traces.
  d1lc::SolverOptions part_opt = opt;
  part_opt.mid_degree_cap = 4;
  ASSERT_TRUE(solve_d1lc(inst, part_opt).valid);

  auto recs = trace_snapshot();
  std::vector<const SpanRecord*> solves;
  for (const auto& rec : recs)
    if (rec.name == "d1lc.solve") solves.push_back(&rec);
  ASSERT_EQ(solves.size(), 2u);
  // Every phase span nests inside one of the two solve spans.
  for (const char* name :
       {"d1lc.partition", "d1lc.color_middle", "d1lc.low_degree",
        "lemma10.derandomize", "engine.search"}) {
    const SpanRecord* rec = find(recs, name);
    ASSERT_NE(rec, nullptr) << name;
    bool contained = false;
    for (const SpanRecord* solve : solves) {
      contained |= rec->start_us >= solve->start_us &&
                   rec->start_us + rec->dur_us <=
                       solve->start_us + solve->dur_us;
    }
    EXPECT_TRUE(contained) << name;
  }
  // Every engine.search span carries the route/plane/backend tags.
  for (const auto& rec : recs) {
    if (rec.name != "engine.search") continue;
    bool has_route = false;
    for (const auto& [k, v] : rec.args) has_route |= (k == "route");
    EXPECT_TRUE(has_route);
  }
}

}  // namespace
}  // namespace pdc::obs
