// Tests for the synchronous LOCAL engine: message delivery semantics,
// double buffering, and a multi-round BFS-style program.

#include <gtest/gtest.h>

#include <atomic>

#include "pdc/graph/generators.hpp"
#include "pdc/local/engine.hpp"

namespace pdc::local {
namespace {

TEST(Engine, BroadcastReachesExactlyNeighbors) {
  Graph g = gen::cycle(6);
  Engine e(g);
  e.round([](Engine::Context& ctx) {
    ctx.broadcast({static_cast<std::int64_t>(ctx.self())});
  });
  // Deliver happened; run a read-only round to inspect inboxes.
  std::vector<std::vector<NodeId>> senders(g.num_nodes());
  e.round([&](Engine::Context& ctx) {
    for (const auto& m : ctx.inbox()) senders[ctx.self()].push_back(m.from);
  });
  for (NodeId v = 0; v < 6; ++v) {
    ASSERT_EQ(senders[v].size(), 2u);
    std::sort(senders[v].begin(), senders[v].end());
    std::vector<NodeId> expect{static_cast<NodeId>((v + 5) % 6),
                               static_cast<NodeId>((v + 1) % 6)};
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(senders[v], expect);
  }
}

TEST(Engine, MessagesAreDoubleBuffered) {
  // A message sent in round r must NOT be readable in round r by the
  // receiver (synchronous semantics).
  Graph g = Graph::from_edges(2, {{0, 1}});
  Engine e(g);
  std::atomic<int> seen_in_same_round{0};
  e.round([&](Engine::Context& ctx) {
    ctx.send(1 - ctx.self(), {42});
    if (!ctx.inbox().empty()) seen_in_same_round.fetch_add(1);
  });
  EXPECT_EQ(seen_in_same_round.load(), 0);
  e.round([&](Engine::Context& ctx) {
    if (ctx.self() == 0) {
      ASSERT_EQ(ctx.inbox().size(), 1u);
      EXPECT_EQ(ctx.inbox()[0].payload[0], 42);
    }
  });
}

TEST(Engine, FloodComputesEccentricityOnPath) {
  // Distance propagation: node 0 floods; after k rounds nodes at
  // distance <= k know their distance.
  const NodeId n = 8;
  Graph g = gen::grid(1, n);  // a path
  Engine e(g);
  std::vector<std::int64_t> dist(n, -1);
  dist[0] = 0;
  e.round([&](Engine::Context& ctx) {
    if (ctx.self() == 0) ctx.broadcast({0});
  });
  for (int r = 1; r < static_cast<int>(n); ++r) {
    e.round([&](Engine::Context& ctx) {
      NodeId v = ctx.self();
      for (const auto& m : ctx.inbox()) {
        std::int64_t d = m.payload[0] + 1;
        if (dist[v] == -1 || d < dist[v]) {
          dist[v] = d;
          ctx.broadcast({d});
        }
      }
    });
  }
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(dist[v], static_cast<std::int64_t>(v));
  EXPECT_EQ(e.rounds_run(), n);
}

}  // namespace
}  // namespace pdc::local
