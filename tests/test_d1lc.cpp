// Tests for the top-level D1LC pipeline: the low-degree deterministic
// solver, LowSpacePartition (Lemma 23 properties), and the public
// solve_d1lc facade in both modes over a family sweep.

#include <gtest/gtest.h>

#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/generators.hpp"

namespace pdc::d1lc {
namespace {

// ---- Low-degree solver. ----

TEST(LowDegree, ColorsEverythingDeterministically) {
  Graph g = gen::gnp(500, 0.015, 3);
  D1lcInstance inst = make_degree_plus_one(g);
  auto run = [&]() {
    derand::ColoringState state(inst.graph, inst.palettes);
    LowDegreeReport rep = low_degree_color(state, nullptr);
    EXPECT_EQ(rep.colored, g.num_nodes());
    EXPECT_TRUE(check_coloring(inst, state.colors()).complete_proper());
    return std::make_pair(state.colors(), rep.phases);
  };
  auto [c1, p1] = run();
  auto [c2, p2] = run();
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(p1, p2);
  // Geometric progress: phases should be far below n.
  EXPECT_LT(p1, 60u);
}

TEST(LowDegree, RespectsPreexistingColors) {
  Graph g = gen::gnp(200, 0.03, 5);
  D1lcInstance inst = make_degree_plus_one(g);
  derand::ColoringState state(inst.graph, inst.palettes);
  // Pre-color node 0.
  Color pre = inst.palettes.palette(0)[0];
  state.set_color(0, pre);
  low_degree_color(state, nullptr);
  EXPECT_EQ(state.color(0), pre);
  EXPECT_TRUE(check_coloring(inst, state.colors()).complete_proper());
}

TEST(LowDegree, WorksOnAdversarialShapes) {
  for (auto make : {+[]() { return gen::complete(40); },
                    +[]() { return gen::star(60); },
                    +[]() { return gen::cycle(81); }}) {
    Graph g = make();
    D1lcInstance inst = make_degree_plus_one(g);
    derand::ColoringState state(inst.graph, inst.palettes);
    low_degree_color(state, nullptr);
    EXPECT_TRUE(check_coloring(inst, state.colors()).complete_proper());
  }
}

// ---- Partition (Lemma 23). ----

TEST(Partition, SplitsHighDegreeNodesAndKeepsMidAside) {
  Graph g = gen::core_periphery(800, 120, 0.01, 2.0, 7);
  D1lcInstance inst = make_degree_plus_one(g);
  PartitionOptions opt;
  opt.mid_degree_cap = 40;
  opt.delta = 0.3;
  Partition part = low_space_partition(inst, opt, nullptr);
  ASSERT_GE(part.nbins, 2u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) <= 40) {
      EXPECT_EQ(part.bin_of[v], Partition::kMid);
    } else {
      EXPECT_LT(part.bin_of[v], part.nbins);
    }
  }
}

TEST(Partition, DegreeReductionHoldsForAlmostAllNodes) {
  // The Lemma-23 guarantee: d'(v) < 2 d(v)/nbins (floored) for all but
  // a vanishing set under the selected h1.
  Graph g = gen::gnp(1500, 0.04, 11);  // Δ ≈ 60
  D1lcInstance inst = make_degree_plus_one(g);
  PartitionOptions opt;
  opt.mid_degree_cap = 20;
  opt.delta = 0.3;
  Partition part = low_space_partition(inst, opt, nullptr);
  std::uint64_t high = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    high += (g.degree(v) > opt.mid_degree_cap);
  ASSERT_GT(high, 500u);
  EXPECT_LT(part.degree_violations, high / 10);
}

TEST(Partition, BinInstancesAreValidD1lc) {
  Graph g = gen::gnp(1000, 0.05, 13);
  D1lcInstance inst = make_degree_plus_one(g);
  PartitionOptions opt;
  opt.mid_degree_cap = 25;
  Partition part = low_space_partition(inst, opt, nullptr);
  Coloring none(g.num_nodes(), kNoColor);
  std::uint64_t total_nodes = 0;
  for (std::uint32_t b = 0; b < part.nbins; ++b) {
    BinInstance bi = build_bin_instance(inst, part, b, none);
    EXPECT_TRUE(bi.instance.valid()) << "bin " << b;
    total_nodes += bi.instance.graph.num_nodes();
  }
  BinInstance mid = build_bin_instance(inst, part, Partition::kMid, none);
  EXPECT_TRUE(mid.instance.valid());
  total_nodes += mid.instance.graph.num_nodes();
  EXPECT_EQ(total_nodes, g.num_nodes());
}

TEST(Partition, RestrictedBinsUseMostlyOwnColorBins) {
  Graph g = gen::gnp(1200, 0.05, 17);
  D1lcInstance inst = make_degree_plus_one(g);
  PartitionOptions opt;
  opt.mid_degree_cap = 20;
  Partition part = low_space_partition(inst, opt, nullptr);
  if (part.nbins < 3) GTEST_SKIP() << "need >= 3 bins for this property";
  Coloring none(g.num_nodes(), kNoColor);
  BinInstance bi = build_bin_instance(inst, part, 0, none);
  std::uint64_t own = 0, foreign = 0;
  for (NodeId i = 0; i < bi.instance.graph.num_nodes(); ++i) {
    for (Color c : bi.instance.palettes.palette(i)) {
      (part.color_bin(c) == 0 ? own : foreign) += 1;
    }
  }
  // Foreign colors only appear via the finite-n patch; they must be rare.
  EXPECT_LT(foreign, (own + foreign) / 5 + 10);
}

TEST(Partition, HashSelectionIsDeterministic) {
  Graph g = gen::gnp(800, 0.05, 19);
  D1lcInstance inst = make_degree_plus_one(g);
  PartitionOptions opt;
  opt.mid_degree_cap = 20;
  Partition a = low_space_partition(inst, opt, nullptr);
  Partition b = low_space_partition(inst, opt, nullptr);
  EXPECT_EQ(a.h1_index, b.h1_index);
  EXPECT_EQ(a.h2_index, b.h2_index);
  EXPECT_EQ(a.bin_of, b.bin_of);
}

// ---- Full solver, parameterized over instances and modes. ----

struct SolveCase {
  const char* name;
  Graph (*make)();
  std::uint32_t extra_colors;
};

Graph sc_gnp() { return gen::gnp(800, 0.02, 3); }
Graph sc_dense() { return gen::planted_cliques(5, 18, 0.4, 5).graph; }
Graph sc_mixed() { return gen::core_periphery(600, 50, 0.02, 2.0, 7); }
Graph sc_star() { return gen::star(300); }
Graph sc_grid() { return gen::grid(20, 30); }
Graph sc_powerlaw() { return gen::power_law(500, 2.5, 8.0, 9); }

class SolverTest
    : public ::testing::TestWithParam<std::tuple<SolveCase, Mode>> {};

TEST_P(SolverTest, ProducesValidColoring) {
  auto [c, mode] = GetParam();
  Graph g = c.make();
  D1lcInstance inst =
      c.extra_colors == 0
          ? make_degree_plus_one(g)
          : make_random_lists(g,
                              static_cast<Color>(g.max_degree()) + 30,
                              c.extra_colors, 11);
  SolverOptions opt;
  opt.mode = mode;
  opt.l10.seed_bits = 4;  // keep tests fast
  opt.middle_passes = 2;
  SolveResult r = solve_d1lc(inst, opt);
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(check_coloring(inst, r.coloring).complete_proper());
  EXPECT_GT(r.ledger.rounds(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverTest,
    ::testing::Combine(
        ::testing::Values(SolveCase{"gnp", sc_gnp, 0},
                          SolveCase{"dense", sc_dense, 0},
                          SolveCase{"mixed", sc_mixed, 0},
                          SolveCase{"star", sc_star, 0},
                          SolveCase{"grid", sc_grid, 0},
                          SolveCase{"powerlaw", sc_powerlaw, 4}),
        ::testing::Values(Mode::kDeterministic, Mode::kRandomized)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) +
             (std::get<1>(info.param) == Mode::kDeterministic ? "_det"
                                                              : "_rand");
    });

TEST(Solver, DeterministicModeIsReproducible) {
  Graph g = gen::gnp(400, 0.03, 21);
  D1lcInstance inst = make_degree_plus_one(g);
  SolverOptions opt;
  opt.l10.seed_bits = 4;
  SolveResult a = solve_d1lc(inst, opt);
  SolveResult b = solve_d1lc(inst, opt);
  EXPECT_EQ(a.coloring, b.coloring);
  EXPECT_EQ(a.ledger.rounds(), b.ledger.rounds());
}

TEST(Solver, HighDegreeInstanceTriggersPartition) {
  // A large star forces Δ >> sqrt(s): the pipeline must partition.
  Graph g = gen::core_periphery(900, 200, 0.005, 1.0, 23);
  D1lcInstance inst = make_degree_plus_one(g);
  SolverOptions opt;
  opt.phi = 0.5;  // small s => low mid-degree cap
  opt.space_headroom = 2.0;
  opt.l10.seed_bits = 4;
  SolveResult r = solve_d1lc(inst, opt);
  EXPECT_TRUE(r.valid);
  EXPECT_GE(r.partition_levels, 1u);
}

TEST(Solver, AttributionSumsToN) {
  Graph g = gen::gnp(500, 0.03, 25);
  D1lcInstance inst = make_degree_plus_one(g);
  SolverOptions opt;
  opt.l10.seed_bits = 4;
  SolveResult r = solve_d1lc(inst, opt);
  EXPECT_EQ(r.colored_middle + r.colored_low_degree + r.colored_greedy,
            g.num_nodes());
}

TEST(Solver, EmptyAndTinyInstances) {
  for (NodeId n : {0u, 1u, 2u}) {
    Graph g = Graph::from_edges(n, n >= 2 ? std::vector<std::pair<NodeId,
                                            NodeId>>{{0, 1}}
                                          : std::vector<std::pair<NodeId,
                                            NodeId>>{});
    D1lcInstance inst = make_degree_plus_one(g);
    SolverOptions opt;
    SolveResult r = solve_d1lc(inst, opt);
    EXPECT_TRUE(r.valid) << "n=" << n;
  }
}

}  // namespace
}  // namespace pdc::d1lc
