// Tests for the PRG family and seed selection: chunk disjointness /
// sharing semantics, determinism, and the conditional-expectations
// guarantee (chosen cost <= mean cost) on synthetic objectives.
//
// The pdc::prg::cond_exp shims are retired; the seed-selection
// regression suite now drives the engine directly through the same
// opaque-callback shape (engine::ScalarOracle + SeedSearch), keeping
// the historical assertions — including the degenerate-space
// regressions the shims used to carry.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <map>

#include "pdc/engine/seed_search.hpp"
#include "pdc/prg/prg.hpp"

namespace pdc::prg {
namespace {

/// The retired shims' result shape, reconstructed from a Selection so
/// the historical assertions read unchanged.
struct SeedChoice {
  std::uint64_t seed = 0;
  double cost = 0.0;
  double mean_cost = 0.0;
  std::uint64_t evaluations = 0;
};

using SeedCostFn = std::function<double(std::uint64_t)>;

SeedChoice to_choice(const engine::Selection& sel) {
  return {sel.seed, sel.cost, sel.mean_cost, sel.stats.evaluations};
}

SeedChoice select_seed_exhaustive(int seed_bits, const SeedCostFn& cost) {
  engine::ScalarOracle oracle(cost);
  return to_choice(engine::SeedSearch(oracle).exhaustive_bits(seed_bits));
}

SeedChoice select_seed_conditional_expectation(int seed_bits,
                                               const SeedCostFn& cost) {
  engine::ScalarOracle oracle(cost);
  return to_choice(
      engine::SeedSearch(oracle).conditional_expectation(seed_bits));
}

SeedChoice select_index_exhaustive(std::uint64_t family_size,
                                   const SeedCostFn& cost) {
  engine::ScalarOracle oracle(cost);
  return to_choice(engine::SeedSearch(oracle).exhaustive(family_size));
}

TEST(PrgFamily, SameSeedSameChunkSameStream) {
  PrgFamily fam(8, 99);
  auto s1 = fam.source(5);
  auto s2 = fam.source(5);
  BitStream a = s1.stream(1, 3), b = s2.stream(2, 3);  // node id ignored
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.bits(64), b.bits(64));
}

TEST(PrgFamily, DifferentChunksDiffer) {
  PrgFamily fam(8, 99);
  auto s = fam.source(5);
  BitStream a = s.stream(0, 3), b = s.stream(0, 4);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.bits(64) == b.bits(64));
  EXPECT_LT(same, 2);
}

TEST(PrgFamily, DifferentSeedsDiffer) {
  PrgFamily fam(8, 99);
  auto s1 = fam.source(1);
  auto s2 = fam.source(2);
  BitStream a = s1.stream(0, 0), b = s2.stream(0, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.bits(64) == b.bits(64));
  EXPECT_LT(same, 2);
}

TEST(PrgFamily, OutputBitsLookBalanced) {
  PrgFamily fam(6, 7);
  auto s = fam.source(3);
  std::uint64_t ones = 0, total = 0;
  for (std::uint32_t chunk = 0; chunk < 64; ++chunk) {
    BitStream bs = s.stream(0, chunk);
    for (int w = 0; w < 8; ++w) {
      ones += __builtin_popcountll(bs.bits(64));
      total += 64;
    }
  }
  double frac = static_cast<double>(ones) / static_cast<double>(total);
  EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(TrueRandomSource, PerNodeStreamsIndependentOfChunk) {
  TrueRandomSource src(11);
  BitStream a = src.stream(7, 0), b = src.stream(7, 12345);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.bits(64), b.bits(64));
  BitStream c = src.stream(8, 0);
  BitStream d = src.stream(7, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c.bits(64) == d.bits(64));
  EXPECT_LT(same, 2);
}

// ---- Seed selection on synthetic cost landscapes. ----

double bumpy_cost(std::uint64_t seed) {
  // Deterministic pseudo-random landscape with a known minimum at 37.
  if (seed == 37) return 0.0;
  return 1.0 + static_cast<double>(mix64(seed) % 1000) / 1000.0;
}

TEST(SelectSeed, ExhaustiveFindsGlobalMinimum) {
  SeedChoice c = select_seed_exhaustive(8, bumpy_cost);
  EXPECT_EQ(c.seed, 37u);
  EXPECT_DOUBLE_EQ(c.cost, 0.0);
  EXPECT_EQ(c.evaluations, 256u);
  EXPECT_GE(c.mean_cost, c.cost);
}

TEST(SelectSeed, ConditionalExpectationNeverWorseThanMean) {
  for (int trial = 0; trial < 10; ++trial) {
    std::uint64_t salt = 1000 + trial;
    auto cost = [salt](std::uint64_t seed) {
      return static_cast<double>(mix64(seed ^ salt) % 100);
    };
    SeedChoice c = select_seed_conditional_expectation(8, cost);
    EXPECT_LE(c.cost, c.mean_cost) << "trial " << trial;
  }
}

TEST(SelectSeed, ConditionalExpectationExactOnLinearObjective) {
  // For cost(seed) = popcount(seed), each bit contributes independently;
  // the bitwise walk must find cost 0 (all bits 0).
  auto cost = [](std::uint64_t seed) {
    return static_cast<double>(__builtin_popcountll(seed));
  };
  SeedChoice c = select_seed_conditional_expectation(10, cost);
  EXPECT_EQ(c.seed, 0u);
  EXPECT_DOUBLE_EQ(c.cost, 0.0);
  EXPECT_DOUBLE_EQ(c.mean_cost, 5.0);  // E[popcount of 10 bits] = 5
}

TEST(SelectSeed, BothStrategiesAgreeOnSeparableObjectives) {
  auto cost = [](std::uint64_t seed) {
    // Separable: sum over bits of a per-bit penalty.
    double t = 0;
    for (int b = 0; b < 8; ++b) {
      bool bit = (seed >> b) & 1;
      t += bit == (b % 2 == 0) ? 0.0 : 1.0;
    }
    return t;
  };
  SeedChoice ex = select_seed_exhaustive(8, cost);
  SeedChoice ce = select_seed_conditional_expectation(8, cost);
  EXPECT_DOUBLE_EQ(ex.cost, 0.0);
  EXPECT_DOUBLE_EQ(ce.cost, 0.0);
  EXPECT_EQ(ex.seed, ce.seed);
}

TEST(SelectIndex, ArgminOverFamily) {
  auto cost = [](std::uint64_t i) {
    return std::abs(static_cast<double>(i) - 12.0);
  };
  SeedChoice c = select_index_exhaustive(40, cost);
  EXPECT_EQ(c.seed, 12u);
  EXPECT_DOUBLE_EQ(c.cost, 0.0);
}

// ---- Degenerate seed spaces (regression: the pre-engine
// implementation over-counted evaluations on the 1-bit walk and the
// engine must keep means well-defined on singleton families). ----

TEST(SelectSeed, OneBitSpaceIsExact) {
  std::atomic<int> calls{0};
  auto cost = [&calls](std::uint64_t seed) {
    ++calls;
    return seed == 0 ? 4.0 : 2.0;
  };
  SeedChoice c = select_seed_conditional_expectation(1, cost);
  EXPECT_EQ(c.seed, 1u);
  EXPECT_DOUBLE_EQ(c.cost, 2.0);
  EXPECT_DOUBLE_EQ(c.mean_cost, 3.0);
  // Two seeds exist; both are evaluated exactly once (the legacy walk
  // re-evaluated the chosen seed, reporting 3).
  EXPECT_EQ(c.evaluations, 2u);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_LE(c.cost, c.mean_cost);
}

TEST(SelectSeed, OneBitExhaustiveIsExact) {
  auto cost = [](std::uint64_t seed) { return seed == 0 ? 4.0 : 2.0; };
  SeedChoice c = select_seed_exhaustive(1, cost);
  EXPECT_EQ(c.seed, 1u);
  EXPECT_DOUBLE_EQ(c.cost, 2.0);
  EXPECT_DOUBLE_EQ(c.mean_cost, 3.0);
  EXPECT_EQ(c.evaluations, 2u);
}

TEST(SelectIndex, SingletonFamilyIsWellDefined) {
  std::atomic<int> calls{0};
  auto cost = [&calls](std::uint64_t) {
    ++calls;
    return 7.5;
  };
  SeedChoice c = select_index_exhaustive(1, cost);
  EXPECT_EQ(c.seed, 0u);
  EXPECT_DOUBLE_EQ(c.cost, 7.5);
  EXPECT_DOUBLE_EQ(c.mean_cost, 7.5);
  EXPECT_EQ(c.evaluations, 1u);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_FALSE(std::isnan(c.mean_cost));
}

}  // namespace
}  // namespace pdc::prg
