// Tests for the batched member-evaluation plane (the SIMD +
// structure-of-arrays pass):
//
//  * the span kernels' bucket computation is bit-identical to
//    EnumerablePairwiseFamily::eval_params over random (a, b, x, m) —
//    the property that holds on both compiled paths (portable and
//    -DPDC_ENABLE_AVX2=ON; CI runs this suite in both configs);
//  * eval_members == eval_analytic, sink slot by sink slot with ==,
//    for every plane oracle (h1, h2, trial, and the Lemma-10
//    pessimistic estimators) at member counts {1, 7, 8, 9, 128} and
//    offsets straddling the 4-lane boundaries;
//  * engine-level Selections with SearchOptions::use_batched_members
//    on vs off are bit-identical on the shared-memory and sharded
//    backends at machine counts {1, 4, 9};
//  * the 64-byte-aligned SoA storage: aligned_vector / SoaTable row
//    alignment, and the shared kMaxEstimatorTableEntries budget —
//    SoaTable::reset and estimator prepare() must refuse over-budget
//    tables with check_error instead of exhausting memory.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "pdc/d1lc/partition.hpp"
#include "pdc/d1lc/partition_oracles.hpp"
#include "pdc/d1lc/trial_oracle.hpp"
#include "pdc/derand/estimator.hpp"
#include "pdc/derand/lemma10.hpp"
#include "pdc/engine/sharded/sharded_search.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/params.hpp"
#include "pdc/hknt/procedures.hpp"
#include "pdc/util/aligned.hpp"
#include "pdc/util/hashing.hpp"
#include "pdc/util/rng.hpp"
#include "pdc/util/simd.hpp"

namespace pdc::engine {
namespace {

mpc::Config cluster_config(std::uint32_t machines, std::uint64_t n) {
  mpc::Config c;
  c.n = n;
  c.phi = 0.5;
  c.local_space_words = 1 << 15;
  c.num_machines = machines;
  return c;
}

void expect_same_selection(const Selection& a, const Selection& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.cost, b.cost);            // bit-identical, not just near
  EXPECT_EQ(a.mean_cost, b.mean_cost);  // (doubles compared with ==)
}

// The member counts every batched path must agree on: 1 (degenerate),
// 7/9 (straddle the 4-lane AVX2 width), 8 (exact lanes), 128 (bulk).
const std::size_t kCounts[] = {1, 7, 8, 9, 128};
// Offsets exercise unaligned starts into the params tables.
const std::uint64_t kFirsts[] = {0, 1, 5};

/// Drives eval_members vs eval_analytic over every item of `oracle`
/// at each (first, count), comparing sinks with ==. The non-zero
/// sentinel prefill also catches paths that assign instead of add.
void expect_batched_matches_scalar(const AnalyticOracle& oracle,
                                   std::uint64_t num_members) {
  for (std::uint64_t first : kFirsts) {
    for (std::size_t count : kCounts) {
      if (first + count > num_members) continue;
      std::vector<double> scalar(count), batched(count);
      for (std::size_t item = 0; item < oracle.item_count(); ++item) {
        for (std::size_t j = 0; j < count; ++j) {
          scalar[j] = 0.25 * static_cast<double>(j);
          batched[j] = 0.25 * static_cast<double>(j);
        }
        oracle.eval_analytic(first, count, item, scalar.data());
        oracle.eval_members(first, count, item, batched.data());
        for (std::size_t j = 0; j < count; ++j) {
          ASSERT_EQ(scalar[j], batched[j])
              << "item " << item << " first " << first << " member-offset "
              << j;
        }
      }
    }
  }
}

/// Selections with the batched member path on vs off must be
/// bit-identical on both backends.
void expect_batched_selections_identical(CostOracle& oracle,
                                         std::uint64_t num_members,
                                         std::uint64_t n) {
  SearchOptions on;  // default: use_batched_members = true
  SearchOptions off;
  off.use_batched_members = false;
  Selection sel_on = SeedSearch(oracle, on).exhaustive(num_members);
  Selection sel_off = SeedSearch(oracle, off).exhaustive(num_members);
  expect_same_selection(sel_on, sel_off);

  for (std::uint32_t p : {1u, 4u, 9u}) {
    SCOPED_TRACE(p);
    mpc::Cluster cluster(cluster_config(p, n), /*strict=*/true);
    sharded::ShardedOptions sopt_on, sopt_off;
    sopt_off.search.use_batched_members = false;
    sharded::ShardedSeedSearch s_on(oracle, cluster, sopt_on);
    Selection sh_on = s_on.exhaustive(num_members);
    sharded::ShardedSeedSearch s_off(oracle, cluster, sopt_off);
    Selection sh_off = s_off.exhaustive(num_members);
    expect_same_selection(sh_on, sh_off);
    expect_same_selection(sel_on, sh_on);
  }
}

// ---- Kernel property: bucket_one == eval_params everywhere. ----

TEST(SimdKernel, BucketMatchesEvalParamsOnRandomPoints) {
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::uint64_t a = rng.below(MersenneField::kPrime - 1) + 1;
    const std::uint64_t b = rng.below(MersenneField::kPrime);
    const std::uint64_t x = rng();  // HashPoint reduces mod p
    const std::uint64_t m = rng.below((1ULL << 32) - 1) + 1;
    ASSERT_EQ(util::simd::bucket_one(a, b, util::simd::HashPoint(x, m)),
              EnumerablePairwiseFamily::eval_params(a, b, x, m))
        << "a=" << a << " b=" << b << " x=" << x << " m=" << m;
  }
}

TEST(SimdKernel, SpanKernelsMatchScalarTailAndBulk) {
  Xoshiro256 rng(77);
  EnumerablePairwiseFamily fam(42, 8);
  util::aligned_vector<std::uint64_t> pa, pb;
  fam.params_table(fam.size(), pa, pb);
  for (std::size_t n : kCounts) {
    SCOPED_TRACE(n);
    const util::simd::HashPoint pt(rng(), 1 + rng.below(1000));
    std::vector<std::uint64_t> out(n), ref(n);
    util::simd::bucket_span(pa.data(), pb.data(), n, pt, out.data());
    for (std::size_t j = 0; j < n; ++j) {
      ref[j] = util::simd::bucket_one(pa[j], pb[j], pt);
      ASSERT_EQ(out[j], ref[j]);
    }
    std::vector<std::uint32_t> acc_match(n, 3), acc_count(n, 3);
    util::simd::bucket_match_span(pa.data(), pb.data(), n, pt, ref.data(),
                                  acc_match.data());
    util::simd::bucket_count_span(pa.data(), pb.data(), n, pt, ref[0],
                                  acc_count.data());
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(acc_match[j], 4u);  // every bucket matches its own ref
      ASSERT_EQ(acc_count[j], 3u + (ref[j] == ref[0] ? 1u : 0u));
    }
  }
}

// ---- Partition planes: h1 / h2. ----

struct PartitionFixture {
  Graph g;
  D1lcInstance inst;
  std::vector<NodeId> high;
  std::uint32_t nbins = 6;
  std::uint32_t color_bins = 5;
  std::uint32_t cap = 8;
  std::vector<std::uint32_t> bin_of;

  explicit PartitionFixture(std::uint64_t seed)
      : g(gen::gnp(260, 0.05, seed)), inst(make_degree_plus_one(g)) {
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if (g.degree(v) > cap) high.push_back(v);
    EnumerablePairwiseFamily f1(77, 6);
    bin_of.assign(g.num_nodes(), d1lc::Partition::kMid);
    for (NodeId v : high)
      bin_of[v] = static_cast<std::uint32_t>(f1.eval(3, v, nbins));
  }
};

TEST(SimdPlanes, H1BatchedMatchesScalarOnEveryMemberCount) {
  PartitionFixture fx(21);
  ASSERT_GT(fx.high.size(), 20u);
  EnumerablePairwiseFamily f1(101, 8);
  d1lc::H1DegreeOracle h1(fx.g, fx.high, f1, fx.nbins, fx.cap);
  h1.begin_search(f1.size());
  expect_batched_matches_scalar(h1, f1.size());
  h1.end_search();
  expect_batched_selections_identical(h1, f1.size(), fx.g.num_nodes());
}

TEST(SimdPlanes, H2BatchedMatchesScalarOnEveryMemberCount) {
  PartitionFixture fx(22);
  EnumerablePairwiseFamily f2(102, 8);
  d1lc::H2PaletteOracle h2(fx.g, fx.inst, fx.high, fx.bin_of, f2, fx.nbins,
                           fx.color_bins);
  h2.begin_search(f2.size());
  expect_batched_matches_scalar(h2, f2.size());
  h2.end_search();
  expect_batched_selections_identical(h2, f2.size(), fx.g.num_nodes());
}

// The oversized-family fallback: when the params table would exceed
// kMaxParamTableMembers the tables stay empty and eval_members must
// silently take the scalar path — same results, no table.
TEST(SimdPlanes, OversizedFamilyFallsBackToScalar) {
  EnumerablePairwiseFamily huge(9, 23);  // 2^23 > kMaxParamTableMembers
  util::aligned_vector<std::uint64_t> pa, pb;
  huge.params_table(huge.size(), pa, pb);
  EXPECT_TRUE(pa.empty());
  EXPECT_TRUE(pb.empty());

  PartitionFixture fx(23);
  d1lc::H1DegreeOracle h1(fx.g, fx.high, huge, fx.nbins, fx.cap);
  h1.begin_search(huge.size());
  // Compare a window well past any table: must agree via the fallback.
  std::vector<double> scalar(16, 0.0), batched(16, 0.0);
  h1.eval_analytic((1ULL << 22) + 3, 16, 0, scalar.data());
  h1.eval_members((1ULL << 22) + 3, 16, 0, batched.data());
  for (std::size_t j = 0; j < 16; ++j) EXPECT_EQ(scalar[j], batched[j]);
  h1.end_search();
}

// ---- Trial plane. ----

struct TrialFixture {
  Graph g;
  D1lcInstance inst;
  EnumerablePairwiseFamily family;
  Coloring none;
  std::vector<NodeId> items;
  std::vector<std::uint8_t> active;
  d1lc::AvailLists avail;

  TrialFixture()
      : g(gen::gnp(300, 0.03, 31)),
        inst(make_degree_plus_one(g)),
        family(55, 8),
        none(g.num_nodes(), kNoColor),
        items(g.num_nodes()),
        active(g.num_nodes(), 1),
        avail(d1lc::AvailLists::from_instance(inst, none)) {
    std::iota(items.begin(), items.end(), NodeId{0});
  }
};

TEST(SimdPlanes, TrialBatchedMatchesScalarOnEveryMemberCount) {
  TrialFixture fx;
  d1lc::TrialOracle oracle(fx.g, fx.items, fx.active, fx.avail, fx.family);
  oracle.begin_search(fx.family.size());
  expect_batched_matches_scalar(oracle, fx.family.size());
  oracle.end_search();
  expect_batched_selections_identical(oracle, fx.family.size(),
                                      fx.g.num_nodes());
}

// ---- Estimator planes (term_batch under SspEstimatorOracle). ----

struct EstimatorFixture {
  Graph g;
  D1lcInstance inst;
  derand::ColoringState state;
  hknt::HkntConfig cfg;
  hknt::NodeParams params;
  hknt::TryRandomColorProc try_slack;
  hknt::GenerateSlackProc gen_slack;
  hknt::MultiTrialProc multi;

  EstimatorFixture()
      : g(gen::gnp(180, 0.035, 13)),
        inst(make_random_lists(g, static_cast<Color>(g.max_degree()) + 25,
                               12, 5)),
        state(inst.graph, inst.palettes),
        params(hknt::compute_params(inst, nullptr)),
        try_slack(cfg, hknt::TryRandomColorProc::Ssp::kSlackTwiceDegree,
                  "est"),
        gen_slack(cfg, params, "est"),
        multi(cfg, 3, 1.0, /*final=*/false, "est") {}
};

TEST(SimdPlanes, EstimatorTermBatchMatchesTermOnEveryProcedure) {
  EstimatorFixture fx;
  derand::Lemma10Options opt;
  opt.seed_bits = 8;
  derand::ChunkAssignment chunks =
      derand::assign_chunks(fx.g, /*tau=*/1, opt, nullptr);
  prg::PrgFamily family = derand::lemma10_family(opt);

  const derand::NormalProcedure* procs[] = {&fx.try_slack, &fx.gen_slack,
                                            &fx.multi};
  for (const derand::NormalProcedure* proc : procs) {
    SCOPED_TRACE(proc->name());
    std::unique_ptr<derand::PessimisticEstimator> est = proc->estimator();
    ASSERT_NE(est, nullptr);
    derand::SspEstimatorOracle oracle(*est, fx.state, family,
                                      chunks.chunk_of);
    oracle.begin_search(family.num_seeds());
    expect_batched_matches_scalar(oracle, family.num_seeds());
    oracle.end_search();
    expect_batched_selections_identical(oracle, family.num_seeds(),
                                        fx.g.num_nodes());
  }
}

// ---- Aligned SoA storage and the shared table budget. ----

TEST(AlignedStorage, VectorAndTableRowsAre64ByteAligned) {
  util::aligned_vector<std::uint64_t> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) %
                util::kCacheLineBytes,
            0u);

  util::SoaTable<std::uint32_t> t(5, 33, 7u, 1ULL << 20, "test table");
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.row_len(), 33u);
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.row(r)) %
                  util::kCacheLineBytes,
              0u);
    for (std::size_t i = 0; i < t.row_len(); ++i) EXPECT_EQ(t.row(r)[i], 7u);
  }
}

TEST(AlignedStorage, SoaTableRefusesOverBudgetTables) {
  util::SoaTable<Color> t;
  // 2^15 rows x 2^14 entries = 2^29 > kMaxEstimatorTableEntries = 2^28:
  // must throw before allocating.
  EXPECT_THROW(t.reset(1ULL << 15, 1ULL << 14, kNoColor,
                       derand::kMaxEstimatorTableEntries, "over budget"),
               check_error);
  EXPECT_TRUE(t.empty());
}

TEST(AlignedStorage, EstimatorPrepareRefusesOverBudgetMemberCounts) {
  EstimatorFixture fx;
  derand::Lemma10Options opt;
  opt.seed_bits = 4;
  derand::ChunkAssignment chunks = derand::assign_chunks(fx.g, 1, opt, nullptr);
  prg::PrgFamily family = derand::lemma10_family(opt);
  std::unique_ptr<derand::PessimisticEstimator> est = fx.try_slack.estimator();
  ASSERT_NE(est, nullptr);
  derand::EstimatorContext ctx;
  ctx.state = &fx.state;
  ctx.family = &family;
  ctx.chunk_of = &chunks.chunk_of;
  // 180 nodes x 2^22 members = 7.5e8 entries > 2^28: the shared budget
  // constant must reject the table before any allocation happens.
  ctx.num_members = 1ULL << 22;
  EXPECT_THROW(est->prepare(ctx), check_error);
}

}  // namespace
}  // namespace pdc::engine
