// Tests for the full ColorMiddle pass (Algorithm 1): randomized and
// derandomized executions on sparse, dense and mixed instances, validity
// of whatever got committed, and the decomposition statistics.

#include <gtest/gtest.h>

#include "pdc/graph/generators.hpp"
#include "pdc/hknt/color_middle.hpp"

namespace pdc::hknt {
namespace {

using derand::ColoringState;
using derand::SeedStrategy;

MiddleOptions randomized_opts(std::uint64_t seed) {
  MiddleOptions mo;
  mo.l10.strategy = SeedStrategy::kTrueRandom;
  mo.l10.defer_failures = false;
  mo.l10.true_random_seed = seed;
  return mo;
}

MiddleOptions derandomized_opts(int seed_bits = 5) {
  MiddleOptions mo;
  mo.l10.strategy = SeedStrategy::kExhaustive;
  mo.l10.defer_failures = true;
  mo.l10.seed_bits = seed_bits;
  return mo;
}

struct MiddleCase {
  const char* name;
  Graph (*make)();
};

Graph mc_sparse() { return gen::gnp(600, 0.02, 5); }
Graph mc_dense() { return gen::planted_cliques(6, 18, 0.4, 9).graph; }
Graph mc_mixed() { return gen::core_periphery(500, 40, 0.02, 2.0, 13); }

class ColorMiddleTest : public ::testing::TestWithParam<MiddleCase> {};

TEST_P(ColorMiddleTest, RandomizedPassCommitsOnlyValidColors) {
  Graph g = GetParam().make();
  D1lcInstance inst = make_degree_plus_one(g);
  ColoringState state(inst.graph, inst.palettes);
  MiddleReport rep = color_middle(state, inst, randomized_opts(3), nullptr);

  auto check = check_coloring(inst, state.colors());
  EXPECT_EQ(check.monochromatic_edges, 0u);
  EXPECT_EQ(check.palette_violations, 0u);
  EXPECT_EQ(rep.deferred, 0u);  // randomized mode never defers
  EXPECT_EQ(rep.colored + rep.uncolored, rep.n);
  // The pass makes real progress.
  EXPECT_GT(rep.colored, rep.n / 3);
}

TEST_P(ColorMiddleTest, DerandomizedPassCommitsOnlyValidColors) {
  Graph g = GetParam().make();
  D1lcInstance inst = make_degree_plus_one(g);
  ColoringState state(inst.graph, inst.palettes);
  MiddleReport rep = color_middle(state, inst, derandomized_opts(), nullptr);

  auto check = check_coloring(inst, state.colors());
  EXPECT_EQ(check.monochromatic_edges, 0u);
  EXPECT_EQ(check.palette_violations, 0u);
  EXPECT_EQ(rep.colored + rep.deferred + rep.uncolored, rep.n);
  // Everything unfinished is explicitly deferred, nothing dangles.
  EXPECT_EQ(rep.uncolored, 0u);
  // WSP must hold for all survivors of every step.
  for (const auto& step : rep.steps) EXPECT_EQ(step.wsp_violations, 0u);
  EXPECT_GT(rep.colored, rep.n / 4);
}

TEST_P(ColorMiddleTest, DerandomizedPassIsDeterministic) {
  Graph g = GetParam().make();
  D1lcInstance inst = make_degree_plus_one(g);
  auto run = [&]() {
    ColoringState state(inst.graph, inst.palettes);
    color_middle(state, inst, derandomized_opts(4), nullptr);
    return state.colors();
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Instances, ColorMiddleTest,
    ::testing::Values(MiddleCase{"sparse", mc_sparse},
                      MiddleCase{"dense", mc_dense},
                      MiddleCase{"mixed", mc_mixed}),
    [](const auto& info) { return info.param.name; });

TEST(ColorMiddle, DecompositionStatsAreConsistent) {
  Graph g = mc_mixed();
  D1lcInstance inst = make_degree_plus_one(g);
  ColoringState state(inst.graph, inst.palettes);
  MiddleReport rep = color_middle(state, inst, randomized_opts(5), nullptr);
  EXPECT_EQ(rep.sparse + rep.uneven + rep.dense, rep.n);
  EXPECT_LE(rep.vstart, rep.sparse);
  EXPECT_EQ(rep.outliers + rep.inliers, rep.dense);
  EXPECT_LE(rep.put_aside, rep.inliers);
}

TEST(ColorMiddle, ChargesRoundsToPhases) {
  Graph g = gen::gnp(300, 0.03, 7);
  D1lcInstance inst = make_degree_plus_one(g);
  ColoringState state(inst.graph, inst.palettes);
  mpc::Config cfg = mpc::Config::sublinear(300, 0.75, 20'000, 8.0);
  mpc::Ledger ledger;
  mpc::CostModel cost(cfg, ledger);
  color_middle(state, inst, randomized_opts(7), &cost);
  EXPECT_GT(ledger.rounds(), 0u);
  EXPECT_TRUE(ledger.rounds_by_phase().count("decomposition"));
  EXPECT_TRUE(ledger.rounds_by_phase().count("color-sparse"));
  EXPECT_TRUE(ledger.rounds_by_phase().count("color-dense"));
}

TEST(ColorMiddle, ScopeRestrictedPassLeavesOthersUntouched) {
  Graph g = gen::gnp(200, 0.04, 9);
  D1lcInstance inst = make_degree_plus_one(g);
  ColoringState state(inst.graph, inst.palettes);
  // Restrict the pass to even nodes only.
  std::vector<NodeId> evens;
  for (NodeId v = 0; v < g.num_nodes(); v += 2) evens.push_back(v);
  state.set_active(evens);
  color_middle(state, inst, randomized_opts(11), nullptr);
  for (NodeId v = 1; v < g.num_nodes(); v += 2) {
    EXPECT_FALSE(state.is_colored(v)) << "odd node " << v << " was touched";
    EXPECT_FALSE(state.is_deferred(v));
  }
}

}  // namespace
}  // namespace pdc::hknt
