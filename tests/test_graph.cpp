// Unit + property tests for the graph substrate: CSR construction,
// generators, palettes, residual instances (self-reducibility), coloring
// validation, balls and distance colorings.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pdc/graph/coloring.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/graph/graph.hpp"
#include "pdc/graph/palette.hpp"
#include "pdc/graph/power.hpp"

namespace pdc {
namespace {

TEST(Graph, FromEdgesDedupsAndSymmetrizes) {
  Graph g = Graph::from_edges(4, {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);  // self-loop dropped, dup collapsed
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, NeighborsSorted) {
  Graph g = gen::gnp(200, 0.05, 1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto nb = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  }
}

TEST(Graph, InducedEdgeCount) {
  Graph g = gen::complete(6);
  std::vector<NodeId> sub{0, 1, 2, 3};
  EXPECT_EQ(g.induced_edge_count(sub), 6u);  // K4
}

TEST(Graph, InduceMapsEdgesCorrectly) {
  Graph g = gen::cycle(10);
  std::vector<NodeId> nodes{0, 1, 2, 5, 6};
  InducedSubgraph s = induce(g, nodes);
  EXPECT_EQ(s.graph.num_nodes(), 5u);
  // Edges kept: (0,1), (1,2), (5,6) => 3 edges.
  EXPECT_EQ(s.graph.num_edges(), 3u);
  // Mapping round-trips.
  for (NodeId i = 0; i < s.graph.num_nodes(); ++i) {
    for (NodeId j : s.graph.neighbors(i)) {
      EXPECT_TRUE(g.has_edge(s.to_parent[i], s.to_parent[j]));
    }
  }
}

// ---- Generator properties, parameterized over families. ----

struct GenCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

Graph make_gnp(std::uint64_t s) { return gen::gnp(500, 0.02, s); }
Graph make_reg(std::uint64_t s) { return gen::near_regular(400, 8, s); }
Graph make_pl(std::uint64_t s) { return gen::power_law(400, 2.5, 6.0, s); }
Graph make_cp(std::uint64_t s) {
  return gen::core_periphery(400, 40, 0.02, 1.0, s);
}

class GeneratorTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorTest, SimpleUndirectedNoSelfLoops) {
  Graph g = GetParam().make(7);
  std::uint64_t degree_sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto nb = g.neighbors(v);
    degree_sum += nb.size();
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    EXPECT_TRUE(std::adjacent_find(nb.begin(), nb.end()) == nb.end());
    for (NodeId u : nb) {
      EXPECT_NE(u, v);
      EXPECT_TRUE(g.has_edge(u, v));
    }
  }
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

TEST_P(GeneratorTest, SeedDeterminism) {
  Graph a = GetParam().make(11), b = GetParam().make(11);
  EXPECT_EQ(a.adjacency(), b.adjacency());
  Graph c = GetParam().make(12);
  EXPECT_NE(a.adjacency(), c.adjacency());
}

INSTANTIATE_TEST_SUITE_P(
    Families, GeneratorTest,
    ::testing::Values(GenCase{"gnp", make_gnp}, GenCase{"near_regular", make_reg},
                      GenCase{"power_law", make_pl},
                      GenCase{"core_periphery", make_cp}),
    [](const auto& info) { return info.param.name; });

TEST(Generators, GnpDensityMatchesP) {
  const NodeId n = 600;
  const double p = 0.03;
  Graph g = gen::gnp(n, p, 3);
  double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.15);
}

TEST(Generators, NearRegularDegreesTight) {
  Graph g = gen::near_regular(500, 10, 2);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(g.degree(v), 10u);
    EXPECT_GE(g.degree(v), 6u);
  }
}

TEST(Generators, PlantedCliquesStructure) {
  auto pc = gen::planted_cliques(5, 20, 0.0, 1);
  EXPECT_EQ(pc.graph.num_nodes(), 100u);
  EXPECT_EQ(pc.graph.num_edges(), 5ull * (20 * 19 / 2));
  for (NodeId v = 0; v < 100; ++v) EXPECT_EQ(pc.graph.degree(v), 19u);
}

TEST(Generators, StarAndGridShapes) {
  Graph s = gen::star(10);
  EXPECT_EQ(s.degree(0), 9u);
  for (NodeId v = 1; v < 10; ++v) EXPECT_EQ(s.degree(v), 1u);
  Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 4u * 2);  // 9 horizontal + 8 vertical
}

// ---- Palettes & instances. ----

TEST(Palette, DegreePlusOneIsTightAndValid) {
  Graph g = gen::gnp(300, 0.03, 4);
  D1lcInstance inst = make_degree_plus_one(g);
  EXPECT_TRUE(inst.valid());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(inst.palettes.size(v), g.degree(v) + 1);
}

TEST(Palette, RandomListsValidAndWithinUniverse) {
  Graph g = gen::gnp(300, 0.03, 4);
  Color universe = static_cast<Color>(g.max_degree()) + 40;
  D1lcInstance inst = make_random_lists(g, universe, 3, 9);
  EXPECT_TRUE(inst.valid());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(inst.palettes.size(v), g.degree(v) + 4);
    for (Color c : inst.palettes.palette(v)) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, universe);
    }
  }
}

TEST(Palette, ContainsAgreesWithPaletteScan) {
  Graph g = gen::gnp(100, 0.05, 5);
  D1lcInstance inst = make_random_lists(g, 200, 2, 6);
  for (NodeId v = 0; v < 20; ++v) {
    auto pal = inst.palettes.palette(v);
    std::set<Color> set(pal.begin(), pal.end());
    for (Color c = 0; c < 50; ++c)
      EXPECT_EQ(inst.palettes.contains(v, c), set.count(c) > 0);
  }
}

TEST(Residual, SelfReducibilityPreservesValidity) {
  // Color a subset arbitrarily-but-properly, then check the residual is
  // a valid D1LC instance (Definition 11's requirement for D1LC).
  Graph g = gen::gnp(400, 0.03, 8);
  D1lcInstance inst = make_degree_plus_one(g);
  Coloring partial(g.num_nodes(), kNoColor);
  // Greedy-color even nodes only.
  for (NodeId v = 0; v < g.num_nodes(); v += 2) {
    std::set<Color> blocked;
    for (NodeId u : g.neighbors(v))
      if (partial[u] != kNoColor) blocked.insert(partial[u]);
    for (Color c : inst.palettes.palette(v)) {
      if (!blocked.count(c)) {
        partial[v] = c;
        break;
      }
    }
  }
  ResidualInstance res = residual(g, inst.palettes, partial);
  EXPECT_TRUE(res.instance.valid());
  // Residual nodes are exactly the uncolored ones.
  std::uint64_t uncolored = 0;
  for (auto c : partial) uncolored += (c == kNoColor);
  EXPECT_EQ(res.to_parent.size(), uncolored);
  // Completing the residual greedily and lifting yields a proper total
  // coloring of the original instance.
  Coloring sub(res.instance.graph.num_nodes(), kNoColor);
  for (NodeId v = 0; v < res.instance.graph.num_nodes(); ++v) {
    std::set<Color> blocked;
    for (NodeId u : res.instance.graph.neighbors(v))
      if (sub[u] != kNoColor) blocked.insert(sub[u]);
    for (Color c : res.instance.palettes.palette(v)) {
      if (!blocked.count(c)) {
        sub[v] = c;
        break;
      }
    }
    ASSERT_NE(sub[v], kNoColor);
  }
  lift_coloring(res.to_parent, sub, partial);
  EXPECT_TRUE(check_coloring(inst, partial).complete_proper());
}

// ---- Coloring checks. ----

TEST(ColoringCheck, DetectsEachViolationKind) {
  Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  D1lcInstance inst = make_degree_plus_one(g);
  Coloring c{0, 0, 1};  // (0,1) monochromatic
  auto r1 = check_coloring(inst, c);
  EXPECT_EQ(r1.monochromatic_edges, 1u);
  c = {0, 1, kNoColor};
  auto r2 = check_coloring(inst, c);
  EXPECT_EQ(r2.uncolored, 1u);
  EXPECT_TRUE(r2.proper_partial());
  c = {0, 99, 1};  // 99 outside palette
  auto r3 = check_coloring(inst, c);
  EXPECT_EQ(r3.palette_violations, 1u);
}

TEST(ColoringCheck, CountColorsUsed) {
  Coloring c{2, 2, 5, kNoColor, 7};
  EXPECT_EQ(count_colors_used(c), 3u);
}

// ---- Balls and distance colorings. ----

TEST(Power, BallOnCycleHasExpectedSize) {
  Graph g = gen::cycle(20);
  for (int d = 1; d <= 4; ++d) {
    auto b = ball(g, 0, d);
    EXPECT_EQ(b.size(), static_cast<std::size_t>(2 * d));
  }
}

class DistanceColoringTest : public ::testing::TestWithParam<int> {};

TEST_P(DistanceColoringTest, NoTwoNodesWithinDistShareChunk) {
  const int dist = GetParam();
  Graph g = gen::gnp(150, 0.03, 13);
  DistanceColoring dc = distance_coloring(g, dist);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : ball(g, v, dist)) {
      EXPECT_NE(dc.chunk_of[u], dc.chunk_of[v])
          << "nodes " << u << "," << v << " within distance " << dist;
    }
  }
  EXPECT_GE(dc.num_chunks, 1u);
}

INSTANTIATE_TEST_SUITE_P(Distances, DistanceColoringTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(Power, DistanceColoringChunkCountBounded) {
  // Greedy distance-d coloring uses at most (ball size bound)+1 chunks.
  Graph g = gen::near_regular(200, 4, 3);
  DistanceColoring dc = distance_coloring(g, 2);
  // Δ=4, dist=2: ball <= 4 + 4*3 = 16, so <= 17 chunks.
  EXPECT_LE(dc.num_chunks, 21u);
}

TEST(Power, BallWorkUpperBoundMonotone) {
  Graph g = gen::gnp(200, 0.05, 21);
  EXPECT_LE(ball_work_upper_bound(g, 1), ball_work_upper_bound(g, 2));
  EXPECT_LE(ball_work_upper_bound(g, 2), ball_work_upper_bound(g, 4));
}

}  // namespace
}  // namespace pdc
