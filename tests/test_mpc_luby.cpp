// Tests for the genuinely-distributed Luby MIS on the Cluster substrate
// and the bounded-independence bit source.
//
// The headline property: with the same deterministic coin sequence, the
// message-passing execution must produce *bit-identical* output to the
// shared-memory implementation — the substrate changes, the algorithm
// does not.

#include <gtest/gtest.h>

#include "pdc/baseline/luby.hpp"
#include "pdc/baseline/luby_mpc.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/procedures.hpp"
#include "pdc/prg/kwise_source.hpp"

namespace pdc {
namespace {

mpc::Config cluster_config(const Graph& g, std::uint32_t machines) {
  mpc::Config c;
  c.n = g.num_nodes();
  c.phi = 0.5;
  // Per-machine shard of the liveness/marked traffic: ~3 * 2m / p words
  // at worst in one exchange; generous headroom.
  c.local_space_words = std::max<std::uint64_t>(
      4096, 12 * g.num_edges() / machines + 4096);
  c.num_machines = machines;
  return c;
}

class MpcLubyEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(MpcLubyEquivalence, MatchesSharedMemoryBitForBit) {
  auto [seed, machines] = GetParam();
  Graph g = gen::gnp(400, 0.02, seed);
  baseline::MisResult shared = baseline::luby_mis(g, seed);

  mpc::Cluster cluster(cluster_config(g, static_cast<std::uint32_t>(machines)));
  baseline::MpcMisResult dist = baseline::luby_mis_mpc(cluster, g, seed);

  EXPECT_EQ(dist.in_mis, shared.in_mis);
  EXPECT_EQ(dist.luby_rounds, shared.rounds);
  // 3 cluster rounds per Luby round.
  EXPECT_EQ(dist.mpc_rounds, 3 * dist.luby_rounds);
  EXPECT_TRUE(cluster.ledger().violations().empty());
  auto [indep, maximal] = baseline::check_mis(g, dist.in_mis);
  EXPECT_TRUE(indep);
  EXPECT_TRUE(maximal);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMachines, MpcLubyEquivalence,
    ::testing::Combine(::testing::Values(1ull, 7ull, 42ull),
                       ::testing::Values(2, 5, 16)));

class MpcDerandLubyEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(MpcDerandLubyEquivalence, MatchesSharedMemoryBitForBit) {
  // The derandomized variant must also survive the substrate swap: the
  // engine's seed selection is deterministic (integer totals), so the
  // distributed execution replays the exact rounds of
  // luby_mis_derandomized and lands on the same MIS.
  auto [salt, machines] = GetParam();
  Graph g = gen::gnp(250, 0.03, salt);
  derand::Lemma10Options opt;
  opt.seed_bits = 4;
  opt.salt = salt;
  opt.strategy = derand::SeedStrategy::kConditionalExpectation;

  baseline::MisResult shared = baseline::luby_mis_derandomized(g, opt, 8);
  mpc::Cluster cluster(
      cluster_config(g, static_cast<std::uint32_t>(machines)));
  baseline::MpcMisResult dist =
      baseline::luby_mis_mpc_derandomized(cluster, g, opt, 8);

  EXPECT_EQ(dist.in_mis, shared.in_mis);
  EXPECT_EQ(dist.luby_rounds, shared.rounds);
  EXPECT_EQ(dist.greedy_added, shared.greedy_added);
  EXPECT_TRUE(cluster.ledger().violations().empty());
  auto [indep, maximal] = baseline::check_mis(g, dist.in_mis);
  EXPECT_TRUE(indep);
  EXPECT_TRUE(maximal);
  // Engine accounting is threaded through: every round searched 2^4
  // seeds in batched sweeps.
  EXPECT_EQ(dist.search.evaluations, shared.search.evaluations);
  EXPECT_GE(dist.search.evaluations, 16u * dist.luby_rounds);
  EXPECT_LT(dist.search.sweeps, dist.search.evaluations);
}

INSTANTIATE_TEST_SUITE_P(
    SaltsAndMachines, MpcDerandLubyEquivalence,
    ::testing::Combine(::testing::Values(2ull, 19ull),
                       ::testing::Values(3, 8)));

TEST(MpcLuby, HandlesDegenerateGraphs) {
  // Edgeless graph: everyone joins in round 1.
  Graph g0 = Graph::from_edges(10, {});
  mpc::Cluster c0(cluster_config(g0, 3));
  auto r0 = baseline::luby_mis_mpc(c0, g0, 1);
  for (auto b : r0.in_mis) EXPECT_EQ(b, 1);
  // Complete graph: exactly one member, same as shared memory.
  Graph g1 = gen::complete(12);
  mpc::Cluster c1(cluster_config(g1, 4));
  auto r1 = baseline::luby_mis_mpc(c1, g1, 3);
  EXPECT_EQ(r1.in_mis, baseline::luby_mis(g1, 3).in_mis);
}

// ---- Bounded-independence source. ----

TEST(KWiseSource, DeterministicPerSeedAndNode) {
  prg::KWiseSource a(4, 99), b(4, 99);
  BitStream s1 = a.stream(5, 0), s2 = b.stream(5, 0);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(s1.bits(64), s2.bits(64));
  BitStream s3 = a.stream(6, 0);
  BitStream s4 = a.stream(5, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (s3.bits(64) == s4.bits(64));
  EXPECT_LT(same, 2);
}

TEST(KWiseSource, PairwiseCollisionRateMatchesUniform) {
  // For k=2, the first draws of two fixed nodes collide in an m-bucket
  // reduction with probability ~1/m over the seed choice.
  const std::uint64_t m = 16;
  int collisions = 0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    prg::KWiseSource src(2, 1000 + t);
    BitStream a = src.stream(3, 0), b = src.stream(77, 0);
    if (a.below(m) == b.below(m)) ++collisions;
  }
  EXPECT_NEAR(static_cast<double>(collisions) / trials, 1.0 / m, 0.02);
}

TEST(KWiseSource, DrivesColoringProceduresWithoutBias) {
  // A TryRandomColor round under 8-wise independence should commit a
  // fraction comparable to full independence on a sparse instance.
  Graph g = gen::gnp(500, 0.02, 5);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 40, 15, 7);
  derand::ColoringState state(inst.graph, inst.palettes);
  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc proc(cfg, hknt::TryRandomColorProc::Ssp::kNone,
                                "kwise");
  auto committed_under = [&](const prg::BitSourceFactory& src) {
    auto run = proc.simulate(state, src);
    std::uint64_t c = 0;
    for (auto x : run.proposed) c += (x != kNoColor);
    return c;
  };
  prg::KWiseSource kwise(8, 11);
  prg::TrueRandomSource full(11);
  double k8 = static_cast<double>(committed_under(kwise));
  double f = static_cast<double>(committed_under(full));
  EXPECT_NEAR(k8 / g.num_nodes(), f / g.num_nodes(), 0.08);
}

}  // namespace
}  // namespace pdc
