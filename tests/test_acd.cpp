// Tests for the almost-clique decomposition (Definition 3), its
// validation, the Vstart decomposition, and the dense structure
// (leaders / outliers / inliers, Lemma 22).

#include <gtest/gtest.h>

#include "pdc/graph/generators.hpp"
#include "pdc/hknt/acd.hpp"
#include "pdc/hknt/dense.hpp"

namespace pdc::hknt {
namespace {

TEST(Acd, PlantedCliquesRecoveredExactly) {
  auto pc = gen::planted_cliques(6, 15, 0.0, 1);
  D1lcInstance inst = make_degree_plus_one(pc.graph);
  NodeParams p = compute_params(inst, nullptr);
  HkntConfig cfg;
  Acd acd = compute_acd(inst, p, cfg, nullptr);
  EXPECT_EQ(acd.num_cliques, 6u);
  for (NodeId v = 0; v < pc.graph.num_nodes(); ++v) {
    EXPECT_TRUE(acd.is_dense(v)) << "node " << v;
  }
  // Clique labels agree with ground truth up to renaming.
  for (NodeId v = 0; v < pc.graph.num_nodes(); ++v) {
    for (NodeId u = v + 1; u < pc.graph.num_nodes(); ++u) {
      EXPECT_EQ(acd.clique_of[u] == acd.clique_of[v],
                pc.clique_of[u] == pc.clique_of[v]);
    }
  }
  AcdViolations viol = check_acd(inst, p, acd, cfg);
  EXPECT_EQ(viol.total(), 0u);
}

TEST(Acd, NoisyPlantedCliquesStillRecovered) {
  auto pc = gen::planted_cliques(5, 20, 0.5, 3);
  D1lcInstance inst = make_degree_plus_one(pc.graph);
  NodeParams p = compute_params(inst, nullptr);
  HkntConfig cfg;
  Acd acd = compute_acd(inst, p, cfg, nullptr);
  EXPECT_EQ(acd.num_cliques, 5u);
  std::uint64_t dense = 0;
  for (NodeId v = 0; v < pc.graph.num_nodes(); ++v)
    dense += acd.is_dense(v);
  EXPECT_GT(dense, pc.graph.num_nodes() * 9 / 10);
}

TEST(Acd, SparseGnpIsAllSparse) {
  Graph g = gen::gnp(400, 0.02, 5);
  D1lcInstance inst = make_degree_plus_one(g);
  NodeParams p = compute_params(inst, nullptr);
  HkntConfig cfg;
  Acd acd = compute_acd(inst, p, cfg, nullptr);
  EXPECT_EQ(acd.num_cliques, 0u);
  std::uint64_t sparse = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) sparse += acd.is_sparse(v);
  // Degree-0/1 stragglers may classify as uneven; everything of real
  // degree must be sparse.
  EXPECT_GE(sparse, g.num_nodes() * 95 / 100);
}

TEST(Acd, StarLeavesClassifiedUneven) {
  Graph g = gen::star(40);
  D1lcInstance inst = make_degree_plus_one(g);
  NodeParams p = compute_params(inst, nullptr);
  HkntConfig cfg;
  Acd acd = compute_acd(inst, p, cfg, nullptr);
  std::uint64_t uneven = 0;
  for (NodeId v = 1; v < 40; ++v) uneven += acd.is_uneven(v);
  EXPECT_GT(uneven, 35u);
}

TEST(Acd, CorePeripheryMixesClasses) {
  // Light attachment (0.3): heavy attachment dilutes the core's local
  // density until it is legitimately ε-sparse — covered elsewhere.
  Graph g = gen::core_periphery(500, 50, 0.015, 0.3, 7);
  D1lcInstance inst = make_degree_plus_one(g);
  NodeParams p = compute_params(inst, nullptr);
  HkntConfig cfg;
  Acd acd = compute_acd(inst, p, cfg, nullptr);
  std::uint64_t dense = 0, sparse = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    dense += acd.is_dense(v);
    sparse += acd.is_sparse(v);
  }
  EXPECT_GT(dense, 30u);   // most of the planted core
  EXPECT_GT(sparse, 300u); // most of the periphery
}

// ---- Vstart decomposition. ----

TEST(Vstart, SubsetChainHolds) {
  Graph g = gen::core_periphery(400, 40, 0.02, 2.0, 9);
  D1lcInstance inst = make_degree_plus_one(g);
  NodeParams p = compute_params(inst, nullptr);
  HkntConfig cfg;
  Acd acd = compute_acd(inst, p, cfg, nullptr);
  StartSets s = compute_vstart(inst, p, acd, cfg, nullptr);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // Vbalanced, Vdisc ⊆ Vsparse.
    if (s.balanced[v] || s.disc[v]) {
      EXPECT_TRUE(acd.is_sparse(v));
    }
    // Vstart ⊆ Vsparse \ (Veasy ∪ Vheavy).
    if (s.start[v]) {
      EXPECT_TRUE(acd.is_sparse(v));
      EXPECT_FALSE(s.easy[v]);
      EXPECT_FALSE(s.heavy[v]);
    }
    // balanced/disc/uneven nodes are all easy.
    if (s.balanced[v] || s.disc[v] || acd.is_uneven(v)) {
      EXPECT_TRUE(s.easy[v]);
    }
  }
  EXPECT_EQ(s.start_count, static_cast<std::uint64_t>(std::count(
                               s.start.begin(), s.start.end(), 1)));
}

TEST(Vstart, IdenticalPalettesMakeDiscEmpty) {
  Graph g = gen::gnp(200, 0.05, 3);
  D1lcInstance inst = make_delta_plus_one(g);  // identical palettes
  NodeParams p = compute_params(inst, nullptr);
  HkntConfig cfg;
  Acd acd = compute_acd(inst, p, cfg, nullptr);
  StartSets s = compute_vstart(inst, p, acd, cfg, nullptr);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(s.disc[v], 0);
}

// ---- Dense structure (Lemma 22). ----

TEST(DenseStructure, LeaderMinimizesSlackabilityAndSetsPartition) {
  auto pc = gen::planted_cliques(4, 18, 0.2, 11);
  D1lcInstance inst = make_degree_plus_one(pc.graph);
  NodeParams p = compute_params(inst, nullptr);
  HkntConfig cfg;
  Acd acd = compute_acd(inst, p, cfg, nullptr);
  ASSERT_EQ(acd.num_cliques, 4u);
  DenseStructure ds = compute_dense_structure(inst, p, acd, cfg, nullptr);

  for (std::uint32_t c = 0; c < acd.num_cliques; ++c) {
    NodeId x = ds.leader[c];
    ASSERT_NE(x, kInvalidNode);
    EXPECT_EQ(acd.clique_of[x], c);
    for (NodeId v : acd.cliques[c]) {
      EXPECT_LE(p.slackability[x], p.slackability[v]);
      // Outlier xor inlier, never both; leader is an inlier.
      EXPECT_EQ(ds.outlier[v] + ds.inlier[v], 1);
    }
    EXPECT_TRUE(ds.inlier[x]);
  }
  // Outliers exist (|C|/6 largest-degree members at least).
  EXPECT_GT(ds.count_outliers(), 0u);
  EXPECT_GT(ds.count_inliers(), ds.count_outliers());
}

TEST(DenseStructure, NonNeighborsOfLeaderAreOutliers) {
  // Barbell: bridge path nodes may join a clique component; any clique
  // member not adjacent to its leader must be an outlier.
  Graph g = gen::clique_barbell(12, 2);
  D1lcInstance inst = make_degree_plus_one(g);
  NodeParams p = compute_params(inst, nullptr);
  HkntConfig cfg;
  Acd acd = compute_acd(inst, p, cfg, nullptr);
  DenseStructure ds = compute_dense_structure(inst, p, acd, cfg, nullptr);
  for (std::uint32_t c = 0; c < acd.num_cliques; ++c) {
    NodeId x = ds.leader[c];
    for (NodeId v : acd.cliques[c]) {
      if (v != x && !g.has_edge(x, v)) {
        EXPECT_TRUE(ds.outlier[v]);
      }
    }
  }
}

TEST(DenseStructure, EllGrowsWithDegree) {
  HkntConfig cfg;
  EXPECT_LT(cfg.ell(8), cfg.ell(64));
  EXPECT_GT(cfg.ell(16), 1.0);
}

}  // namespace
}  // namespace pdc::hknt
