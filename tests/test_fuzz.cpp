// Randomized robustness sweep ("fuzz") across the public surface: many
// small random instances with random shapes, palettes, and solver knobs,
// asserting the unconditional invariants — every mode produces a valid
// complete coloring, deterministic mode reproduces itself, and committed
// intermediate states are always proper partial colorings.

#include <gtest/gtest.h>

#include "pdc/baseline/greedy.hpp"
#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/color_middle.hpp"
#include "pdc/util/rng.hpp"

namespace pdc {
namespace {

/// Random instance whose shape is itself drawn from the seed.
D1lcInstance random_instance(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const NodeId n = 20 + static_cast<NodeId>(rng.below(400));
  Graph g;
  switch (rng.below(7)) {
    case 0: g = gen::gnp(n, 4.0 / n + 0.02 * double(rng.below(4)), seed); break;
    case 1: g = gen::near_regular(n, 3 + static_cast<std::uint32_t>(rng.below(6)), seed); break;
    case 2: g = gen::planted_cliques(2 + static_cast<NodeId>(rng.below(4)),
                                     4 + static_cast<NodeId>(rng.below(10)),
                                     0.3, seed).graph; break;
    case 3: g = gen::random_tree(n, seed); break;
    case 4: g = gen::star(n); break;
    case 5: g = gen::small_world(std::max<NodeId>(n, 20), 2, 0.2, seed); break;
    default: g = gen::power_law(n, 2.4, 5.0, seed); break;
  }
  if (rng.below(2) == 0) return make_degree_plus_one(g);
  std::uint32_t extra = 1 + static_cast<std::uint32_t>(rng.below(8));
  return make_random_lists(
      g, static_cast<Color>(g.max_degree()) + 2 * extra + 1, extra, seed + 1);
}

class FuzzSolve : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSolve, DeterministicModeAlwaysValidAndReproducible) {
  D1lcInstance inst = random_instance(GetParam());
  d1lc::SolverOptions opt;
  opt.l10.seed_bits = 3;
  opt.middle_passes = 1 + static_cast<int>(GetParam() % 2);
  d1lc::SolveResult a = d1lc::solve_d1lc(inst, opt);
  EXPECT_TRUE(a.valid) << "seed " << GetParam();
  d1lc::SolveResult b = d1lc::solve_d1lc(inst, opt);
  EXPECT_EQ(a.coloring, b.coloring) << "seed " << GetParam();
}

TEST_P(FuzzSolve, RandomizedModeAlwaysValid) {
  D1lcInstance inst = random_instance(GetParam() + 5000);
  d1lc::SolverOptions opt;
  opt.mode = d1lc::Mode::kRandomized;
  opt.seed = GetParam();
  d1lc::SolveResult r = d1lc::solve_d1lc(inst, opt);
  EXPECT_TRUE(r.valid) << "seed " << GetParam();
}

TEST_P(FuzzSolve, MiddlePassNeverCommitsImproperColors) {
  D1lcInstance inst = random_instance(GetParam() + 9000);
  derand::ColoringState state(inst.graph, inst.palettes);
  hknt::MiddleOptions mo;
  mo.l10.seed_bits = 3;
  mo.l10.strategy = (GetParam() % 2) ? derand::SeedStrategy::kExhaustive
                                     : derand::SeedStrategy::kTrueRandom;
  mo.l10.defer_failures = (GetParam() % 2) != 0;
  hknt::color_middle(state, inst, mo, nullptr);
  auto check = check_coloring(inst, state.colors());
  EXPECT_EQ(check.monochromatic_edges, 0u) << "seed " << GetParam();
  EXPECT_EQ(check.palette_violations, 0u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzSolve,
    ::testing::Range(std::uint64_t{1}, std::uint64_t{25}));

TEST(FuzzGreedy, OracleAgreesOnEveryFuzzInstance) {
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    D1lcInstance inst = random_instance(seed);
    Coloring c = baseline::greedy_d1lc(inst);
    EXPECT_TRUE(check_coloring(inst, c).complete_proper()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace pdc
