// End-to-end integration tests crossing module boundaries: the
// deterministic pipeline against the greedy oracle, self-reducibility
// through partial runs, MPC accounting plausibility for Theorem 1's
// bounds, and failure injection (deliberately broken chunk discipline).

#include <gtest/gtest.h>

#include "pdc/baseline/greedy.hpp"
#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/color_middle.hpp"

namespace pdc {
namespace {

TEST(Integration, DeterministicSolverMatchesGreedyOnValidity) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = gen::gnp(600, 0.025, seed);
    D1lcInstance inst = make_random_lists(
        g, static_cast<Color>(g.max_degree()) + 25, 2, seed);
    d1lc::SolverOptions opt;
    opt.l10.seed_bits = 4;
    auto ours = d1lc::solve_d1lc(inst, opt);
    auto greedy = baseline::greedy_d1lc(inst);
    EXPECT_TRUE(ours.valid);
    EXPECT_TRUE(check_coloring(inst, greedy).complete_proper());
    // Same problem solved; both must color everything.
    EXPECT_EQ(check_coloring(inst, ours.coloring).uncolored, 0u);
  }
}

TEST(Integration, RoundsGrowSlowlyWithN) {
  // Theorem 1's shape: rounds are O(log log log n) — in practice the
  // charged rounds should grow far slower than log n. We check the
  // ratio of rounds at n and 8n stays near 1 (within 2x).
  auto rounds_at = [](NodeId n) {
    Graph g = gen::gnp(n, 12.0 / static_cast<double>(n), 5);
    D1lcInstance inst = make_degree_plus_one(g);
    d1lc::SolverOptions opt;
    opt.l10.seed_bits = 4;
    opt.middle_passes = 1;
    auto r = d1lc::solve_d1lc(inst, opt);
    EXPECT_TRUE(r.valid);
    return r.ledger.rounds();
  };
  const double r1 = static_cast<double>(rounds_at(300));
  const double r2 = static_cast<double>(rounds_at(2400));
  EXPECT_LT(r2, 2.5 * r1) << "rounds grew too fast: " << r1 << " -> " << r2;
}

TEST(Integration, LedgerTracksSpaceWithinBudget) {
  Graph g = gen::gnp(1000, 0.01, 7);
  D1lcInstance inst = make_degree_plus_one(g);
  d1lc::SolverOptions opt;
  opt.phi = 0.75;
  opt.space_headroom = 8.0;
  opt.l10.seed_bits = 4;
  auto r = d1lc::solve_d1lc(inst, opt);
  EXPECT_TRUE(r.valid);
  // No space violations under the configured budget.
  EXPECT_TRUE(r.ledger.violations().empty())
      << "first violation: " << r.ledger.violations().front();
  EXPECT_GT(r.ledger.peak_local_space(), 0u);
}

TEST(Integration, SelfReducibilityAcrossPartialMiddlePass) {
  // Run a scope-restricted middle pass, then verify the residual is a
  // valid instance whose greedy completion extends the partial coloring
  // to a proper total coloring (Definition 11 in action).
  Graph g = gen::core_periphery(500, 40, 0.02, 2.0, 9);
  D1lcInstance inst = make_degree_plus_one(g);
  derand::ColoringState state(inst.graph, inst.palettes);
  hknt::MiddleOptions mo;
  mo.l10.strategy = derand::SeedStrategy::kTrueRandom;
  mo.l10.defer_failures = false;
  mo.l10.true_random_seed = 13;
  hknt::color_middle(state, inst, mo, nullptr);

  ResidualInstance res = residual(g, inst.palettes, state.colors());
  EXPECT_TRUE(res.instance.valid());
  Coloring sub = baseline::greedy_d1lc(res.instance);
  Coloring total = state.colors();
  lift_coloring(res.to_parent, sub, total);
  EXPECT_TRUE(check_coloring(inst, total).complete_proper());
}

TEST(Integration, BrokenChunkDisciplineDegradesButStaysSafe) {
  // Failure injection: force nearby nodes to share PRG chunks. The
  // committed output must STILL be a proper partial coloring (safety is
  // unconditional); what degrades is progress (more SSP failures).
  Graph g = gen::gnp(400, 0.03, 11);
  D1lcInstance inst = make_degree_plus_one(g);

  auto failures_with = [&](std::uint32_t shared_chunks) {
    derand::ColoringState state(inst.graph, inst.palettes);
    hknt::HkntConfig cfg;
    hknt::TryRandomColorProc proc(cfg, hknt::TryRandomColorProc::Ssp::kNone,
                                  "inj");
    derand::Lemma10Options opt;
    opt.seed_bits = 5;
    opt.shared_chunk_count = shared_chunks;
    auto rep = derand::derandomize_procedure(proc, state, opt, nullptr);
    auto check = check_coloring(inst, state.colors());
    EXPECT_EQ(check.monochromatic_edges, 0u);
    EXPECT_EQ(check.palette_violations, 0u);
    // Return uncolored count as the progress metric.
    return state.count_uncolored();
  };
  std::uint64_t healthy = failures_with(0);
  std::uint64_t broken = failures_with(2);  // massive chunk sharing
  // Sharing 2 chunks => adjacent same-chunk nodes draw identical colors
  // from identical palettes far more often => way less progress.
  EXPECT_GT(broken, healthy);
}

TEST(Integration, DeterministicBeatsItsOwnSeedSpaceMean) {
  // The Lemma-10 guarantee surfaced end-to-end: in every derandomized
  // step that searched seeds, chosen failures <= mean failures.
  Graph g = gen::core_periphery(400, 40, 0.02, 2.0, 15);
  D1lcInstance inst = make_degree_plus_one(g);
  derand::ColoringState state(inst.graph, inst.palettes);
  hknt::MiddleOptions mo;
  mo.l10.strategy = derand::SeedStrategy::kExhaustive;
  mo.l10.seed_bits = 4;
  auto rep = hknt::color_middle(state, inst, mo, nullptr);
  for (const auto& step : rep.steps) {
    EXPECT_LE(static_cast<double>(step.ssp_failures),
              step.mean_failures + 1e-9)
        << "step " << step.procedure;
  }
}

}  // namespace
}  // namespace pdc
