// Exercises the full generality of Definition 5: a procedure whose weak
// success property is strictly weaker than its strong success property
// (the paper allows WSP ⊊ SSP "which can provide some leeway"), plus
// MPC-substrate edge cases not covered by the main suites.

#include <gtest/gtest.h>

#include "pdc/derand/lemma10.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/mpc/cluster.hpp"
#include "pdc/mpc/primitives.hpp"

namespace pdc {
namespace {

using derand::ColoringState;
using derand::Lemma10Options;
using derand::NormalProcedure;
using derand::ProcedureRun;

/// A deliberately strict/loose split: SSP demands the node colored
/// itself this run; WSP only demands its post-run slack is positive
/// once SSP-failures are deferred. SSP ⇒ WSP holds (a colored node's
/// slack constraint is vacuous), and deferral only raises slack, so the
/// procedure is normal — but the two predicates genuinely differ.
class StrictTrialProc final : public NormalProcedure {
 public:
  std::string name() const override { return "StrictTrial"; }
  std::uint64_t rand_words_per_node(const ColoringState&) const override {
    return 1;
  }
  ProcedureRun simulate(const ColoringState& state,
                        const prg::BitSourceFactory& bits) const override {
    const NodeId n = state.num_nodes();
    ProcedureRun run(n);
    std::vector<Color> pick(n, kNoColor);
    for (NodeId v = 0; v < n; ++v) {
      if (!state.participates(v)) continue;
      BitStream bs = bits.stream(v, 0);
      pick[v] = state.sample_available(v, bs);
    }
    for (NodeId v = 0; v < n; ++v) {
      if (pick[v] == kNoColor) continue;
      bool clash = false;
      for (NodeId u : state.graph().neighbors(v)) {
        if (state.participates(u) && pick[u] == pick[v]) clash = true;
      }
      if (!clash) run.proposed[v] = pick[v];
    }
    return run;
  }
  bool ssp(const ColoringState& state, const ProcedureRun& run,
           NodeId v) const override {
    (void)state;
    return run.proposed[v] != kNoColor;  // strict: must have colored
  }
  bool wsp(const ColoringState& state, const ProcedureRun& run, NodeId v,
           const std::vector<std::uint8_t>& defer) const override {
    if (run.proposed[v] != kNoColor) return true;
    // Weak: positive slack counting deferred neighbors as removed.
    std::int64_t avail = state.available_count(v);
    std::int64_t deg = 0;
    for (NodeId u : state.graph().neighbors(v)) {
      if (state.is_colored(u) || defer[u] || state.is_deferred(u)) continue;
      if (state.participates(u) && run.proposed[u] != kNoColor) continue;
      ++deg;
    }
    return avail - deg > 0;
  }
};

TEST(WeakSuccess, WspHoldsForSurvivorsEvenWhenSspIsStrict) {
  Graph g = gen::gnp(400, 0.02, 3);
  D1lcInstance inst = make_degree_plus_one(g);
  ColoringState state(inst.graph, inst.palettes);
  StrictTrialProc proc;
  Lemma10Options opt;
  opt.seed_bits = 6;
  auto rep = derand::derandomize_procedure(proc, state, opt, nullptr);
  // Plenty of nodes fail the strict SSP and defer...
  EXPECT_GT(rep.deferred_new, 0u);
  // ...but the weak property holds for every survivor (D1LC instances
  // always leave positive slack once failures are deferred).
  EXPECT_EQ(rep.wsp_violations, 0u);
  // And the two predicates differed in this run: some non-deferred
  // participant satisfied WSP without SSP? All SSP-failures were
  // deferred, so survivors all satisfy SSP here; the distinction shows
  // in randomized mode below.
  ColoringState state2(inst.graph, inst.palettes);
  Lemma10Options opt2;
  opt2.strategy = derand::SeedStrategy::kTrueRandom;
  opt2.defer_failures = false;
  auto rep2 = derand::derandomize_procedure(proc, state2, opt2, nullptr);
  EXPECT_GT(rep2.ssp_failures, 0u);
  EXPECT_EQ(rep2.wsp_violations, 0u);  // weak property still universal
}

// ---- MPC substrate edge cases. ----

TEST(MpcEdge, SingleMachineClusterStillWorks) {
  mpc::Config cfg;
  cfg.n = 10;
  cfg.local_space_words = 4096;
  cfg.num_machines = 1;
  mpc::Cluster c(cfg);
  std::vector<mpc::Record> recs{{3, 0}, {1, 1}, {2, 2}};
  mpc::scatter_records(c, recs);
  mpc::sample_sort(c);
  auto sorted = mpc::collect_records(c);
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].key, 1u);
  EXPECT_EQ(sorted[2].key, 3u);
}

TEST(MpcEdge, EmptyPayloadAndSelfMessages) {
  mpc::Config cfg;
  cfg.n = 10;
  cfg.local_space_words = 64;
  cfg.num_machines = 3;
  mpc::Cluster c(cfg);
  c.round([](mpc::MachineId m, const std::vector<mpc::Word>&,
             std::vector<mpc::Word>&, mpc::Outbox& out) {
    out.send(m, {});            // self-message, empty payload
    out.send((m + 1) % 3, {7});
  });
  for (mpc::MachineId m = 0; m < 3; ++m) {
    // Two messages each: one empty self, one single-word neighbor.
    const auto& ib = c.inbox(m);
    EXPECT_EQ(ib.size(), 2u + 3u);  // {sender,0} + {sender,1,7}
  }
}

TEST(MpcEdge, DuplicateKeysSortStably) {
  mpc::Config cfg;
  cfg.n = 100;
  cfg.local_space_words = 4096;
  cfg.num_machines = 4;
  mpc::Cluster c(cfg);
  std::vector<mpc::Record> recs;
  for (int i = 0; i < 200; ++i)
    recs.push_back({static_cast<mpc::Word>(i % 3),
                    static_cast<mpc::Word>(i)});
  mpc::scatter_records(c, recs);
  mpc::sample_sort(c);
  auto sorted = mpc::collect_records(c);
  EXPECT_EQ(sorted.size(), recs.size());
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

}  // namespace
}  // namespace pdc
