// Differential suite for the Lemma-10 pessimistic-estimator plane
// (pdc/derand/estimator.hpp):
//
//  * DOMINATION, seed by seed — every procedure's estimator total must
//    upper-bound the simulated SSP-failure count for every family
//    member (the inequality the estimator-mean guarantee rests on),
//    with the table fast path (term) agreeing exactly with the
//    source-replay reference (term_from_source) and the seed-constant
//    classification honest;
//  * the estimator-selected seed satisfies failures <= estimator_mean
//    on every procedure, with zero enumeration sweeps and the search
//    attributed to the analytic (or prefix) plane;
//  * estimator-vs-estimator Selections are bit-identical across the
//    shared-memory and sharded backends at machine counts {1, 4, 9,
//    17} on every search strategy;
//  * EstimatorMode::kRequire fails loudly (PDC_CHECK -> check_error)
//    on a procedure without an estimator, while kPrefer falls back to
//    the simulating oracle.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "pdc/derand/estimator.hpp"
#include "pdc/derand/lemma10.hpp"
#include "pdc/derand/theorem12.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/params.hpp"
#include "pdc/hknt/procedures.hpp"
#include "pdc/mpc/cluster.hpp"

namespace pdc::derand {
namespace {

using engine::BackendTag;
using engine::PlaneTag;
using engine::SearchBackend;
using engine::Selection;

mpc::Config cluster_config(std::uint32_t machines, std::uint64_t s,
                           std::uint64_t n) {
  mpc::Config c;
  c.n = n;
  c.phi = 0.5;
  c.local_space_words = s;
  c.num_machines = machines;
  return c;
}

void expect_same_selection(const Selection& a, const Selection& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.cost, b.cost);            // bit-identical, not just near
  EXPECT_EQ(a.mean_cost, b.mean_cost);  // (doubles compared with ==)
}

/// A normal procedure that deliberately provides no estimator (the
/// dense procedures' situation): kPrefer must fall back to the
/// simulating oracle, kRequire must throw.
class NoEstimatorProc final : public NormalProcedure {
 public:
  std::string name() const override { return "NoEstimator"; }
  std::uint64_t rand_words_per_node(const ColoringState&) const override {
    return 1;
  }
  ProcedureRun simulate(const ColoringState& state,
                        const prg::BitSourceFactory& bits) const override {
    ProcedureRun run(state.num_nodes());
    for (NodeId v = 0; v < state.num_nodes(); ++v) {
      if (!state.participates(v)) continue;
      BitStream bs = bits.stream(v, 0);
      run.aux[v] = static_cast<std::int64_t>(bs.bits(1));
    }
    return run;
  }
  bool ssp(const ColoringState& state, const ProcedureRun& run,
           NodeId v) const override {
    (void)state;
    return run.aux[v] == 0;  // coin flip: a non-flat objective
  }
};

/// The shared fixture: a slack-rich instance plus every estimator-
/// providing procedure (both TryRandomColor SSP modes, GenerateSlack,
/// MultiTrial final and non-final).
struct Fixture {
  Fixture()
      : g(gen::gnp(180, 0.035, 13)),
        inst(make_random_lists(g, static_cast<Color>(g.max_degree()) + 25,
                               12, 5)),
        state(inst.graph, inst.palettes),
        params(hknt::compute_params(inst, nullptr)),
        try_slack(cfg, hknt::TryRandomColorProc::Ssp::kSlackTwiceDegree,
                  "est"),
        try_none(cfg, hknt::TryRandomColorProc::Ssp::kNone, "est"),
        gen_slack(cfg, params, "est"),
        multi(cfg, 3, 1.0, /*final=*/false, "est"),
        multi_final(cfg, 2, 1.0, /*final=*/true, "est") {
    procs = {&try_slack, &try_none, &gen_slack, &multi, &multi_final};
  }

  Graph g;
  D1lcInstance inst;
  ColoringState state;
  hknt::HkntConfig cfg;
  hknt::NodeParams params;
  hknt::TryRandomColorProc try_slack;
  hknt::TryRandomColorProc try_none;
  hknt::GenerateSlackProc gen_slack;
  hknt::MultiTrialProc multi;
  hknt::MultiTrialProc multi_final;
  std::vector<const NormalProcedure*> procs;
};

// ---- Domination + table-vs-source exactness, member by member. ----

TEST(EstimatorContract, DominatesSimulatedFailuresOnEveryMember) {
  Fixture fx;
  Lemma10Options opt;
  opt.seed_bits = 5;
  ChunkAssignment chunks =
      assign_chunks(fx.g, /*tau=*/1, opt, nullptr);
  prg::PrgFamily family = lemma10_family(opt);

  for (const NormalProcedure* proc : fx.procs) {
    SCOPED_TRACE(proc->name());
    std::unique_ptr<PessimisticEstimator> est = proc->estimator();
    ASSERT_NE(est, nullptr);
    EstimatorContext ctx;
    ctx.state = &fx.state;
    ctx.family = &family;
    ctx.chunk_of = &chunks.chunk_of;
    ctx.num_members = family.num_seeds();
    est->prepare(ctx);

    for (std::uint64_t m = 0; m < family.num_seeds(); ++m) {
      auto src = family.source(m);
      ChunkedSource chunked(src, chunks.chunk_of);
      ProcedureRun run = proc->simulate(fx.state, chunked);
      double failures = 0.0, total = 0.0;
      for (NodeId v = 0; v < fx.state.num_nodes(); ++v) {
        if (fx.state.participates(v) && !proc->ssp(fx.state, run, v))
          failures += 1.0;
        const double t = est->term(m, v);
        // Pointwise: the table fast path equals the source-replay
        // reference, terms are non-negative integers, and any constant
        // classification tells the truth.
        EXPECT_EQ(t, est->term_from_source(fx.state, chunked, v))
            << "member " << m << " node " << v;
        EXPECT_GE(t, 0.0);
        EXPECT_EQ(t, std::floor(t));
        if (std::optional<double> c = est->constant_term(v))
          EXPECT_EQ(t, *c) << "member " << m << " node " << v;
        total += t;
      }
      EXPECT_LE(failures, total) << "member " << m;
    }
    est->release();
  }
}

// ---- The selected seed beats the estimator mean on every procedure. ----

TEST(EstimatorSelection, FailuresBoundedByEstimatorMeanOnEveryProcedure) {
  Fixture fx;
  for (const NormalProcedure* proc : fx.procs) {
    SCOPED_TRACE(proc->name());
    ColoringState state(fx.inst.graph, fx.inst.palettes);
    Lemma10Options opt;
    opt.seed_bits = 6;
    opt.strategy = SeedStrategy::kConditionalExpectation;
    opt.use_estimator = EstimatorMode::kPrefer;
    Lemma10Report rep = derandomize_procedure(*proc, state, opt, nullptr);

    EXPECT_TRUE(rep.estimator_used);
    EXPECT_EQ(rep.estimator_mean, rep.mean_failures);
    // The estimator-mean guarantee (domination + conditional
    // expectations), and the zero-simulation claim: no enumeration
    // sweeps — the totals came from the analytic plane.
    EXPECT_LE(static_cast<double>(rep.ssp_failures),
              rep.estimator_mean + 1e-9);
    EXPECT_EQ(rep.search.sweeps, 0u);
    EXPECT_GE(rep.search.analytic.searches, 1u);
    EXPECT_EQ(rep.search.route, PlaneTag::kAnalytic);
    EXPECT_EQ(rep.wsp_violations, 0u);
    auto check = check_coloring(fx.inst, state.colors());
    EXPECT_EQ(check.monochromatic_edges, 0u);
    EXPECT_EQ(check.palette_violations, 0u);
  }
}

TEST(EstimatorSelection, PrefixWalkStrategyRunsOnTheJuntaPlane) {
  Fixture fx;
  ColoringState state(fx.inst.graph, fx.inst.palettes);
  Lemma10Options opt;
  opt.seed_bits = 6;
  opt.strategy = SeedStrategy::kPrefixWalk;
  opt.use_estimator = EstimatorMode::kPrefer;
  Lemma10Report rep =
      derandomize_procedure(fx.try_slack, state, opt, nullptr);

  EXPECT_TRUE(rep.estimator_used);
  EXPECT_EQ(rep.search.route, PlaneTag::kPrefix);
  EXPECT_EQ(rep.search.prefix.walks, 1u);
  EXPECT_EQ(rep.search.sweeps, 0u);
  EXPECT_LE(static_cast<double>(rep.ssp_failures),
            rep.estimator_mean + 1e-9);

  // Bit-identity against the walk's totals reference (use_prefix off
  // forces the identical MSB-first walk over a full analytic totals
  // pass).
  ChunkAssignment chunks = assign_chunks(fx.g, 1, opt, nullptr);
  ColoringState fresh(fx.inst.graph, fx.inst.palettes);
  Selection oracle_walk =
      lemma10_seed_selection(fx.try_slack, fresh, chunks, opt);
  Lemma10Options ref = opt;
  ref.search.options.use_prefix = false;
  Selection totals_walk =
      lemma10_seed_selection(fx.try_slack, fresh, chunks, ref);
  expect_same_selection(oracle_walk, totals_walk);
}

// ---- Backend bit-identity at machine counts {1, 4, 9, 17}. ----

class EstimatorBackends : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EstimatorBackends, SelectionsBitIdenticalSharedVsSharded) {
  const std::uint32_t p = GetParam();
  Fixture fx;
  for (SeedStrategy strategy :
       {SeedStrategy::kExhaustive, SeedStrategy::kConditionalExpectation,
        SeedStrategy::kPrefixWalk}) {
    Lemma10Options opt;
    opt.seed_bits = 5;
    opt.strategy = strategy;
    opt.use_estimator = EstimatorMode::kRequire;
    ChunkAssignment chunks = assign_chunks(fx.g, 1, opt, nullptr);

    bool shared_est = false;
    Selection shared = lemma10_seed_selection(fx.try_slack, fx.state,
                                              chunks, opt, &shared_est);
    EXPECT_TRUE(shared_est);
    EXPECT_EQ(shared.stats.sweeps, 0u);

    mpc::Cluster cluster(cluster_config(p, 8192, fx.g.num_nodes()),
                         /*strict=*/true);
    Lemma10Options sopt = opt;
    sopt.search.backend = SearchBackend::kSharded;
    sopt.search.cluster = &cluster;
    bool dist_est = false;
    Selection dist = lemma10_seed_selection(fx.try_slack, fx.state,
                                            chunks, sopt, &dist_est);
    EXPECT_TRUE(dist_est);
    expect_same_selection(shared, dist);
    EXPECT_EQ(dist.stats.backend, BackendTag::kSharded);
    EXPECT_EQ(dist.stats.sweeps, 0u);
    EXPECT_GT(dist.stats.sharded.rounds, 0u);
    EXPECT_TRUE(cluster.ledger().violations().empty());
    if (strategy == SeedStrategy::kPrefixWalk) {
      // The junta walk converge-casts one branch sum per bit step (two
      // on the first), p-1 words per cast — O(bits), not O(members).
      EXPECT_LE(dist.stats.sharded.words,
                static_cast<std::uint64_t>(p - 1) *
                    (static_cast<std::uint64_t>(opt.seed_bits) + 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MachineCounts, EstimatorBackends,
                         ::testing::Values(1, 4, 9, 17));

// ---- Modes: kRequire fails loudly, kPrefer falls back. ----

TEST(EstimatorModes, RequireThrowsOnProcedureWithoutEstimator) {
  Fixture fx;
  NoEstimatorProc proc;
  Lemma10Options opt;
  opt.seed_bits = 4;
  opt.strategy = SeedStrategy::kExhaustive;
  opt.use_estimator = EstimatorMode::kRequire;
  ChunkAssignment chunks = assign_chunks(fx.g, 1, opt, nullptr);
  EXPECT_THROW(lemma10_seed_selection(proc, fx.state, chunks, opt),
               check_error);
}

TEST(EstimatorModes, PreferFallsBackToTheSimulatingOracle) {
  Fixture fx;
  NoEstimatorProc proc;
  Lemma10Options opt;
  opt.seed_bits = 4;
  opt.strategy = SeedStrategy::kExhaustive;
  opt.use_estimator = EstimatorMode::kPrefer;
  ChunkAssignment chunks = assign_chunks(fx.g, 1, opt, nullptr);
  bool used = true;
  Selection sel =
      lemma10_seed_selection(proc, fx.state, chunks, opt, &used);
  EXPECT_FALSE(used);
  EXPECT_GT(sel.stats.sweeps, 0u);  // the enumerating sweeps ran
  EXPECT_LE(sel.cost, sel.mean_cost + 1e-9);

  // And a full estimator-mode derandomization reports the fallback.
  ColoringState state(fx.inst.graph, fx.inst.palettes);
  Lemma10Report rep = derandomize_procedure(proc, state, opt, nullptr);
  EXPECT_FALSE(rep.estimator_used);
  EXPECT_EQ(rep.estimator_mean, 0.0);
}

// ---- Sequences: mixed procedures under one chunk assignment. ----

TEST(EstimatorSequence, MixedSequenceKeepsTheColoringValid) {
  Fixture fx;
  ColoringState state(fx.inst.graph, fx.inst.palettes);
  const NormalProcedure* seq[] = {&fx.try_none, &fx.try_slack, &fx.multi};
  Lemma10Options opt;
  opt.seed_bits = 5;
  opt.strategy = SeedStrategy::kConditionalExpectation;
  opt.use_estimator = EstimatorMode::kPrefer;
  SequenceReport rep = derandomize_sequence(seq, state, opt, nullptr);
  ASSERT_EQ(rep.steps.size(), 3u);
  for (const Lemma10Report& step : rep.steps) {
    EXPECT_TRUE(step.estimator_used) << step.procedure;
    EXPECT_EQ(step.search.sweeps, 0u) << step.procedure;
    EXPECT_LE(static_cast<double>(step.ssp_failures),
              step.estimator_mean + 1e-9)
        << step.procedure;
  }
  EXPECT_EQ(rep.total_wsp_violations(), 0u);
  auto check = check_coloring(fx.inst, state.colors());
  EXPECT_EQ(check.monochromatic_edges, 0u);
  EXPECT_EQ(check.palette_violations, 0u);
}

}  // namespace
}  // namespace pdc::derand
