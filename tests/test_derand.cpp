// Tests for the derandomization framework: ColoringState semantics
// (deferral creates slack), Lemma-10 derandomization of a simple normal
// procedure, WSP verification, chunk-assignment modes, the sequence
// runner, and greedy completion.

#include <gtest/gtest.h>

#include "pdc/derand/coloring_state.hpp"
#include "pdc/derand/lemma10.hpp"
#include "pdc/derand/theorem12.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/procedures.hpp"

namespace pdc::derand {
namespace {

D1lcInstance triangle_instance() {
  Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  return make_degree_plus_one(g);
}

TEST(ColoringState, AvailableShrinksWithColoredNeighbors) {
  D1lcInstance inst = triangle_instance();
  ColoringState s(inst.graph, inst.palettes);
  EXPECT_EQ(s.available_count(0), 3u);
  EXPECT_EQ(s.slack(0), 1);  // 3 available - 2 uncolored neighbors
  s.set_color(1, 0);
  EXPECT_EQ(s.available_count(0), 2u);
  EXPECT_EQ(s.current_degree(0), 1u);
  EXPECT_EQ(s.slack(0), 1);
}

TEST(ColoringState, DeferralRemovesNeighborsWithoutBlockingColors) {
  D1lcInstance inst = triangle_instance();
  ColoringState s(inst.graph, inst.palettes);
  s.set_deferred(1);
  // Deferred neighbor: degree drops, palette untouched => slack grows.
  EXPECT_EQ(s.current_degree(0), 1u);
  EXPECT_EQ(s.available_count(0), 3u);
  EXPECT_EQ(s.slack(0), 2);
  EXPECT_FALSE(s.participates(1));
}

TEST(ColoringState, ParticipatingDegreeTracksActiveSet) {
  Graph g = gen::star(5);
  D1lcInstance inst = make_degree_plus_one(g);
  ColoringState s(inst.graph, inst.palettes);
  EXPECT_EQ(s.participating_degree(0), 4u);
  s.set_active(std::vector<NodeId>{0, 1});
  EXPECT_EQ(s.participating_degree(0), 1u);
  EXPECT_GT(s.participating_slack(0), s.slack(0));
}

TEST(ColoringState, SampleAvailableIsUniformish) {
  Graph g = gen::star(4);
  D1lcInstance inst = make_degree_plus_one(g);
  ColoringState s(inst.graph, inst.palettes);
  prg::TrueRandomSource src(3);
  std::map<Color, int> hist;
  for (int i = 0; i < 4000; ++i) {
    BitStream bs = src.stream(static_cast<std::uint32_t>(i), 0);
    ++hist[s.sample_available(0, bs)];
  }
  for (auto& [c, cnt] : hist)
    EXPECT_NEAR(cnt / 4000.0, 0.25, 0.05) << "color " << c;
}

TEST(ColoringState, SampleDistinctReturnsSortedSubset) {
  Graph g = gen::star(12);
  D1lcInstance inst = make_degree_plus_one(g);
  ColoringState s(inst.graph, inst.palettes);
  prg::TrueRandomSource src(5);
  BitStream bs = src.stream(0, 0);
  auto sample = s.sample_available_distinct(0, 5, bs);
  EXPECT_EQ(sample.size(), 5u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) ==
              sample.end());
  for (Color c : sample) EXPECT_TRUE(inst.palettes.contains(0, c));
}

// ---- Lemma 10 on TryRandomColor over a slack-rich instance. ----

class Lemma10Strategy : public ::testing::TestWithParam<SeedStrategy> {};

TEST_P(Lemma10Strategy, TryRandomColorDerandomizesWithoutConflicts) {
  Graph g = gen::gnp(300, 0.02, 5);
  // Extra palette colors => linear slack => TryRandomColor succeeds a lot.
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 60, 20, 7);
  ColoringState state(inst.graph, inst.palettes);

  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc proc(
      cfg, hknt::TryRandomColorProc::Ssp::kSlackTwiceDegree, "test");

  Lemma10Options opt;
  opt.seed_bits = 6;
  opt.strategy = GetParam();
  Lemma10Report rep = derandomize_procedure(proc, state, opt, nullptr);

  EXPECT_EQ(rep.participants, 300u);
  EXPECT_EQ(rep.wsp_violations, 0u);
  // Committed colors are conflict-free and palette-respecting.
  auto check = check_coloring(inst, state.colors());
  EXPECT_EQ(check.monochromatic_edges, 0u);
  EXPECT_EQ(check.palette_violations, 0u);
  // With 20 extra colors, the vast majority succeed under any strategy.
  EXPECT_LT(rep.defer_fraction, 0.25);
  if (GetParam() != SeedStrategy::kTrueRandom &&
      GetParam() != SeedStrategy::kFirstSeed) {
    // Search strategies must achieve cost <= seed-space mean.
    EXPECT_LE(static_cast<double>(rep.ssp_failures), rep.mean_failures + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, Lemma10Strategy,
    ::testing::Values(SeedStrategy::kExhaustive,
                      SeedStrategy::kConditionalExpectation,
                      SeedStrategy::kPrefixWalk, SeedStrategy::kFirstSeed,
                      SeedStrategy::kTrueRandom));

TEST(Lemma10Estimator, EstimatorModeSimulatesOnlyTheCommitReplay) {
  Graph g = gen::gnp(300, 0.02, 5);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 60, 20, 7);
  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc proc(
      cfg, hknt::TryRandomColorProc::Ssp::kSlackTwiceDegree, "est");

  for (SeedStrategy s :
       {SeedStrategy::kExhaustive, SeedStrategy::kConditionalExpectation,
        SeedStrategy::kPrefixWalk}) {
    ColoringState state(inst.graph, inst.palettes);
    Lemma10Options opt;
    opt.seed_bits = 6;
    opt.strategy = s;
    opt.use_estimator = EstimatorMode::kPrefer;
    Lemma10Report rep = derandomize_procedure(proc, state, opt, nullptr);

    EXPECT_TRUE(rep.estimator_used);
    // Zero search-phase simulations: no enumerating sweep ever ran —
    // the only simulate() is the commit replay. The guarantee binds
    // the estimator mean (domination + conditional expectations).
    EXPECT_EQ(rep.search.sweeps, 0u);
    EXPECT_LE(static_cast<double>(rep.ssp_failures),
              rep.estimator_mean + 1e-9);
    EXPECT_TRUE(rep.search.route == engine::PlaneTag::kAnalytic ||
                rep.search.route == engine::PlaneTag::kPrefix);
    EXPECT_EQ(rep.wsp_violations, 0u);
    auto check = check_coloring(inst, state.colors());
    EXPECT_EQ(check.monochromatic_edges, 0u);
    EXPECT_EQ(check.palette_violations, 0u);
  }
}

TEST(Lemma10, RandomizedModeDoesNotDefer) {
  Graph g = gen::gnp(200, 0.03, 9);
  D1lcInstance inst = make_degree_plus_one(g);
  ColoringState state(inst.graph, inst.palettes);
  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc proc(cfg, hknt::TryRandomColorProc::Ssp::kNone,
                                "rand");
  Lemma10Options opt;
  opt.strategy = SeedStrategy::kTrueRandom;
  opt.defer_failures = false;
  Lemma10Report rep = derandomize_procedure(proc, state, opt, nullptr);
  EXPECT_EQ(rep.deferred_new, 0u);
  EXPECT_EQ(state.count_deferred(), 0u);
}

TEST(Lemma10, ChunkAssignmentRespectsDistance) {
  // Needs Δ^4 < n for the proper power coloring path (otherwise the
  // balls cover the graph and per-node chunks are used instead).
  Graph g = gen::near_regular(3000, 3, 3);
  Lemma10Options opt;
  ChunkAssignment ca = assign_chunks(g, 1, opt, nullptr);
  EXPECT_TRUE(ca.power_coloring);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : ball(g, v, 4)) {
      EXPECT_NE(ca.chunk_of[u], ca.chunk_of[v]);
    }
  }
}

TEST(Lemma10, ChunkBudgetFallsBackToUniqueChunks) {
  Graph g = gen::gnp(400, 0.05, 3);
  Lemma10Options opt;
  opt.chunk_work_budget = 10;  // force fallback
  ChunkAssignment ca = assign_chunks(g, 1, opt, nullptr);
  EXPECT_FALSE(ca.power_coloring);
  EXPECT_EQ(ca.num_chunks, g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(ca.chunk_of[v], v);
}

TEST(Lemma10, SharedChunkAblationModeIsWiredThrough) {
  Graph g = gen::gnp(100, 0.05, 3);
  Lemma10Options opt;
  opt.shared_chunk_count = 4;
  ChunkAssignment ca = assign_chunks(g, 1, opt, nullptr);
  EXPECT_EQ(ca.num_chunks, 4u);
  EXPECT_FALSE(ca.power_coloring);
}

TEST(Theorem12, SequenceDefersMonotonicallyAndCommitsProperly) {
  Graph g = gen::gnp(250, 0.03, 11);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 50, 15, 3);
  ColoringState state(inst.graph, inst.palettes);
  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc p1(cfg, hknt::TryRandomColorProc::Ssp::kNone, "a");
  hknt::TryRandomColorProc p2(cfg, hknt::TryRandomColorProc::Ssp::kNone, "b");
  hknt::MultiTrialProc p3(cfg, 4, 1.0, /*final=*/true, "c");
  const NormalProcedure* seq[] = {&p1, &p2, &p3};
  Lemma10Options opt;
  opt.seed_bits = 5;
  SequenceReport rep = derandomize_sequence(seq, state, opt, nullptr);
  ASSERT_EQ(rep.steps.size(), 3u);
  EXPECT_EQ(rep.total_wsp_violations(), 0u);
  auto check = check_coloring(inst, state.colors());
  EXPECT_EQ(check.monochromatic_edges, 0u);
  EXPECT_EQ(check.palette_violations, 0u);
  // Most nodes got colored across three trials on a slack-rich instance.
  EXPECT_GT(state.num_nodes() - state.count_uncolored(),
            state.num_nodes() / 2);
}

TEST(Theorem12, GreedyCompleteAlwaysFinishesValidInstances) {
  Graph g = gen::gnp(300, 0.04, 13);
  D1lcInstance inst = make_degree_plus_one(g);
  ColoringState state(inst.graph, inst.palettes);
  // Defer a third of the nodes, color nothing else: greedy must finish.
  for (NodeId v = 0; v < g.num_nodes(); v += 3) state.set_deferred(v);
  std::uint64_t done = greedy_complete(state, nullptr);
  EXPECT_EQ(done, g.num_nodes());
  EXPECT_TRUE(check_coloring(inst, state.colors()).complete_proper());
}

TEST(Theorem12, DerandomizedRunsAreReproducible) {
  Graph g = gen::gnp(150, 0.04, 17);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 30, 10, 5);
  auto run = [&]() {
    ColoringState state(inst.graph, inst.palettes);
    hknt::HkntConfig cfg;
    hknt::TryRandomColorProc proc(cfg, hknt::TryRandomColorProc::Ssp::kNone,
                                  "det");
    Lemma10Options opt;
    opt.seed_bits = 6;
    derandomize_procedure(proc, state, opt, nullptr);
    return state.colors();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace pdc::derand
