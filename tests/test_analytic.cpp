// Tests for the analytic oracle plane: engine routing (closed forms
// consulted before enumerating sweeps, zero enumeration sweeps on the
// analytic path, enumerating fallback when disabled), the differential
// guarantee — analytic and enumerating paths must return bit-identical
// Selections on both backends at machine counts 1–17 for the production
// Lemma-23 and low-degree-trial oracles — the cluster-aware partition /
// low-degree call sites, and the property tests grounding the closed
// forms: the deterministic family grid's empirical bucket / collision
// frequencies must match the idealized pairwise-independent
// expectations within sampling tolerance.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "pdc/d1lc/low_degree.hpp"
#include "pdc/d1lc/low_degree_mpc.hpp"
#include "pdc/d1lc/partition.hpp"
#include "pdc/d1lc/partition_oracles.hpp"
#include "pdc/d1lc/solver.hpp"
#include "pdc/d1lc/trial_oracle.hpp"
#include "pdc/engine/analytic.hpp"
#include "pdc/engine/sharded/sharded_search.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/util/hashing.hpp"

namespace pdc::engine {
namespace {

mpc::Config cluster_config(std::uint32_t machines, std::uint64_t s,
                           std::uint64_t n = 1000) {
  mpc::Config c;
  c.n = n;
  c.phi = 0.5;
  c.local_space_words = s;
  c.num_machines = machines;
  return c;
}

void expect_same_selection(const Selection& a, const Selection& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.cost, b.cost);            // bit-identical, not just near
  EXPECT_EQ(a.mean_cost, b.mean_cost);  // (doubles compared with ==)
  EXPECT_EQ(a.stats.evaluations, b.stats.evaluations);
}

/// The analytic path must never enumerate: that is the observable
/// "zero enumeration sweeps" claim (also gated in CI by
/// bench_e5_partition).
void expect_fully_analytic(const SearchStats& st) {
  EXPECT_EQ(st.sweeps, 0u);
  EXPECT_GT(st.analytic.searches, 0u);
  EXPECT_GT(st.analytic.blocks, 0u);
  EXPECT_GT(st.analytic.formula_evals, 0u);
}

/// Synthetic analytic objective: node v contributes 1 under member s
/// when its hashed slot collides with a neighbor's. eval_analytic and
/// the inherited enumerating fallback evaluate the same formula, so
/// the two paths must agree bit for bit.
class AnalyticCollisionOracle final : public AnalyticOracle {
 public:
  AnalyticCollisionOracle(const Graph& g, std::uint64_t slots)
      : g_(&g), slots_(slots) {}
  std::size_t item_count() const override { return g_->num_nodes(); }

  void eval_analytic(std::uint64_t first, std::size_t count,
                     std::size_t item, double* sink) const override {
    const NodeId v = static_cast<NodeId>(item);
    for (std::size_t j = 0; j < count; ++j) {
      const std::uint64_t mine = slot(first + j, v);
      for (NodeId u : g_->neighbors(v)) {
        if (slot(first + j, u) == mine) {
          sink[j] += 1.0;
          break;
        }
      }
    }
  }

 private:
  std::uint64_t slot(std::uint64_t seed, NodeId v) const {
    return mix64(hash_combine(seed, v)) % slots_;
  }
  const Graph* g_;
  std::uint64_t slots_;
};

// ---- Engine routing. ----

TEST(AnalyticEngine, AnalyticPathHasZeroEnumerationSweeps) {
  Graph g = gen::gnp(240, 0.04, 5);
  AnalyticCollisionOracle oracle(g, 16);
  SeedSearch search(oracle);  // use_analytic defaults to true
  Selection sel = search.exhaustive(96);
  expect_fully_analytic(sel.stats);
  EXPECT_EQ(sel.stats.evaluations, 96u);
  EXPECT_EQ(sel.stats.analytic.formula_evals, 96u * g.num_nodes());
  EXPECT_LE(sel.cost, sel.mean_cost);
}

TEST(AnalyticEngine, DisablingAnalyticFallsBackToEnumeratingSweeps) {
  Graph g = gen::gnp(200, 0.04, 9);
  AnalyticCollisionOracle analytic_oracle(g, 16), enum_oracle(g, 16);
  SeedSearch analytic(analytic_oracle);
  SearchOptions off;
  off.use_analytic = false;
  SeedSearch enumerating(enum_oracle, off);

  Selection a = analytic.exhaustive(64);
  Selection b = enumerating.exhaustive(64);
  expect_same_selection(a, b);
  expect_fully_analytic(a.stats);
  EXPECT_GT(b.stats.sweeps, 0u);
  EXPECT_EQ(b.stats.analytic.searches, 0u);
  EXPECT_EQ(b.stats.analytic.formula_evals, 0u);
}

TEST(AnalyticEngine, AllRoutesAgreeAcrossPathsAndRespectBlocks) {
  Graph g = gen::gnp(180, 0.05, 13);
  AnalyticCollisionOracle a_oracle(g, 8), e_oracle(g, 8);
  SearchOptions small;
  small.max_batch = 16;
  SearchOptions small_off = small;
  small_off.use_analytic = false;
  SeedSearch analytic(a_oracle, small);
  SeedSearch enumerating(e_oracle, small_off);

  expect_same_selection(analytic.exhaustive(64), enumerating.exhaustive(64));
  expect_same_selection(analytic.exhaustive_bits(6),
                        enumerating.exhaustive_bits(6));
  expect_same_selection(analytic.conditional_expectation(6),
                        enumerating.conditional_expectation(6));
  // Analytic blocks respect max_batch: 64 members in 4 blocks of 16.
  Selection sel = analytic.exhaustive(64);
  EXPECT_EQ(sel.stats.analytic.blocks, 4u);
  EXPECT_EQ(sel.stats.batch, 16u);
  EXPECT_EQ(sel.stats.sweeps, 0u);
}

// ---- Differential: production Lemma-23 oracles, both backends,
// analytic on/off, machine counts 1-17. ----

struct PartitionFixture {
  Graph g;
  D1lcInstance inst;
  std::vector<NodeId> high;
  std::uint32_t nbins = 6;
  std::uint32_t color_bins = 5;
  std::uint32_t cap = 8;
  std::vector<std::uint32_t> bin_of;

  explicit PartitionFixture(std::uint64_t seed)
      : g(gen::gnp(260, 0.05, seed)),
        inst(make_degree_plus_one(g)) {
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if (g.degree(v) > cap) high.push_back(v);
    // A fixed h1 assignment so the H2 objective is well-defined.
    EnumerablePairwiseFamily f1(77, 6);
    bin_of.assign(g.num_nodes(), d1lc::Partition::kMid);
    for (NodeId v : high)
      bin_of[v] = static_cast<std::uint32_t>(f1.eval(3, v, nbins));
  }
};

class AnalyticDifferential : public ::testing::TestWithParam<int> {};

TEST_P(AnalyticDifferential, PartitionOraclesMatchEverywhere) {
  const std::uint32_t p = static_cast<std::uint32_t>(GetParam());
  PartitionFixture fx(21);
  ASSERT_GT(fx.high.size(), 20u);
  EnumerablePairwiseFamily f1(101, 6), f2(102, 6);

  d1lc::H1DegreeOracle h1_ref(fx.g, fx.high, f1, fx.nbins, fx.cap);
  SearchOptions off;
  off.use_analytic = false;
  Selection ref1 = SeedSearch(h1_ref, off).exhaustive(f1.size());
  EXPECT_GT(ref1.stats.sweeps, 0u);  // the enumerating reference

  d1lc::H2PaletteOracle h2_ref(fx.g, fx.inst, fx.high, fx.bin_of, f2,
                               fx.nbins, fx.color_bins);
  Selection ref2 = SeedSearch(h2_ref, off).exhaustive(f2.size());

  // Shared-memory analytic.
  d1lc::H1DegreeOracle h1_an(fx.g, fx.high, f1, fx.nbins, fx.cap);
  Selection an1 = SeedSearch(h1_an).exhaustive(f1.size());
  expect_same_selection(ref1, an1);
  expect_fully_analytic(an1.stats);

  d1lc::H2PaletteOracle h2_an(fx.g, fx.inst, fx.high, fx.bin_of, f2,
                              fx.nbins, fx.color_bins);
  Selection an2 = SeedSearch(h2_an).exhaustive(f2.size());
  expect_same_selection(ref2, an2);
  expect_fully_analytic(an2.stats);

  // Sharded analytic: each machine evaluates its shard's closed forms,
  // converge-casting the same fixed-point partials.
  mpc::Cluster cluster(cluster_config(p, 4096, fx.g.num_nodes()),
                       /*strict=*/true);
  d1lc::H1DegreeOracle h1_sh(fx.g, fx.high, f1, fx.nbins, fx.cap);
  sharded::ShardedSeedSearch s1(h1_sh, cluster);
  Selection sh1 = s1.exhaustive(f1.size());
  expect_same_selection(ref1, sh1);
  expect_fully_analytic(sh1.stats);
  EXPECT_GT(sh1.stats.sharded.rounds, 0u);

  d1lc::H2PaletteOracle h2_sh(fx.g, fx.inst, fx.high, fx.bin_of, f2,
                              fx.nbins, fx.color_bins);
  sharded::ShardedSeedSearch s2(h2_sh, cluster);
  Selection sh2 = s2.exhaustive(f2.size());
  expect_same_selection(ref2, sh2);
  expect_fully_analytic(sh2.stats);
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

TEST_P(AnalyticDifferential, LowDegreeTrialMatchesEverywhere) {
  const std::uint32_t p = static_cast<std::uint32_t>(GetParam());
  Graph g = gen::gnp(200, 0.04, 31);
  D1lcInstance inst = make_degree_plus_one(g);
  EnumerablePairwiseFamily family(55, 6);
  Coloring none(g.num_nodes(), kNoColor);
  std::vector<NodeId> items(g.num_nodes());
  std::iota(items.begin(), items.end(), NodeId{0});
  std::vector<std::uint8_t> active(g.num_nodes(), 1);
  d1lc::AvailLists avail = d1lc::AvailLists::from_instance(inst, none);

  d1lc::TrialOracle ref_oracle(g, items, active, avail, family);
  SearchOptions off;
  off.use_analytic = false;
  Selection ref = SeedSearch(ref_oracle, off).exhaustive(family.size());
  EXPECT_GT(ref.stats.sweeps, 0u);

  d1lc::TrialOracle an_oracle(g, items, active, avail, family);
  Selection an = SeedSearch(an_oracle).exhaustive(family.size());
  expect_same_selection(ref, an);
  expect_fully_analytic(an.stats);

  mpc::Cluster cluster(cluster_config(p, 4096, g.num_nodes()),
                       /*strict=*/true);
  ExecutionPolicy pol;
  pol.backend = SearchBackend::kSharded;
  pol.cluster = &cluster;
  Selection dist =
      d1lc::low_degree_trial_selection(inst, none, family, pol);
  expect_same_selection(ref, dist);
  expect_fully_analytic(dist.stats);
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

INSTANTIATE_TEST_SUITE_P(MachineCounts, AnalyticDifferential,
                         ::testing::Values(1, 3, 8, 17));

// ---- Cluster-aware call sites. ----

TEST(AnalyticCallSites, ShardedPartitionMatchesSharedMemory) {
  Graph g = gen::gnp(400, 0.05, 17);
  D1lcInstance inst = make_degree_plus_one(g);
  d1lc::PartitionOptions opt;
  opt.mid_degree_cap = 10;
  opt.family_log2 = 6;

  d1lc::Partition shared = d1lc::low_space_partition(inst, opt, nullptr);
  expect_fully_analytic(shared.search);
  EXPECT_EQ(shared.search.analytic.searches, 2u);  // h1 + h2

  for (std::uint32_t p : {1u, 5u, 17u}) {
    mpc::Cluster cluster(cluster_config(p, 8192, g.num_nodes()),
                         /*strict=*/true);
    d1lc::PartitionOptions sopt = opt;
    sopt.search.backend = SearchBackend::kSharded;
    sopt.search.cluster = &cluster;
    d1lc::Partition dist = d1lc::low_space_partition(inst, sopt, nullptr);

    EXPECT_EQ(dist.h1_index, shared.h1_index) << "p=" << p;
    EXPECT_EQ(dist.h2_index, shared.h2_index) << "p=" << p;
    EXPECT_EQ(dist.bin_of, shared.bin_of);
    EXPECT_EQ(dist.degree_violations, shared.degree_violations);
    EXPECT_EQ(dist.palette_violations, shared.palette_violations);
    expect_fully_analytic(dist.search);
    EXPECT_GT(dist.search.sharded.rounds, 0u);
    EXPECT_EQ(cluster.ledger().rounds(), dist.search.sharded.rounds);
    EXPECT_TRUE(cluster.ledger().violations().empty());
  }
}

TEST(AnalyticCallSites, ShardedLowDegreeSolverMatchesSharedMemory) {
  Graph g = gen::gnp(150, 0.04, 23);
  D1lcInstance inst = make_degree_plus_one(g);

  derand::ColoringState shared_state(inst.graph, inst.palettes);
  d1lc::LowDegreeReport shared =
      d1lc::low_degree_color(shared_state, nullptr, 6, 0xFEED);
  expect_fully_analytic(shared.search);

  mpc::Cluster cluster(cluster_config(4, 8192, g.num_nodes()),
                       /*strict=*/true);
  derand::ColoringState dist_state(inst.graph, inst.palettes);
  ExecutionPolicy pol;
  pol.backend = SearchBackend::kSharded;
  pol.cluster = &cluster;
  d1lc::LowDegreeReport dist =
      d1lc::low_degree_color(dist_state, nullptr, 6, 0xFEED, pol);

  EXPECT_EQ(dist_state.colors(), shared_state.colors());
  EXPECT_EQ(dist.phases, shared.phases);
  EXPECT_EQ(dist.colored, shared.colored);
  expect_fully_analytic(dist.search);
  EXPECT_GT(dist.search.sharded.rounds, 0u);
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

TEST(AnalyticCallSites, SolverCarriesTheClusterThroughEveryPartitionLevel) {
  // End-to-end: the full deterministic solver with the partition /
  // low-degree searches on the sharded backend must reproduce the
  // shared-memory coloring exactly (the Lemma-10 searches stay
  // shared-memory here; their backend is chosen via l10).
  Graph g = gen::core_periphery(400, 80, 0.01, 0.5, 19);
  D1lcInstance inst = make_degree_plus_one(g);
  d1lc::SolverOptions opt;
  opt.phi = 0.5;
  opt.space_headroom = 2.0;
  opt.l10.seed_bits = 4;

  d1lc::SolveResult shared = d1lc::solve_d1lc(inst, opt);
  ASSERT_TRUE(shared.valid);

  mpc::Cluster cluster(cluster_config(6, 1 << 16, g.num_nodes()));
  d1lc::SolverOptions sopt = opt;
  sopt.search.backend = SearchBackend::kSharded;
  sopt.search.cluster = &cluster;
  d1lc::SolveResult dist = d1lc::solve_d1lc(inst, sopt);

  EXPECT_TRUE(dist.valid);
  EXPECT_EQ(dist.coloring, shared.coloring);
  EXPECT_EQ(dist.partition_levels, shared.partition_levels);
  EXPECT_GT(dist.seed_search.sharded.rounds, 0u);
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

// ---- The fallback smoke: analytic-capable oracles must never
// enumerate on the default configuration. ----

TEST(AnalyticFallbackSmoke, ProductionSearchesNeverEnumerate) {
  Graph g = gen::gnp(300, 0.05, 29);
  D1lcInstance inst = make_degree_plus_one(g);

  d1lc::PartitionOptions popt;
  popt.mid_degree_cap = 10;
  d1lc::Partition part = d1lc::low_space_partition(inst, popt, nullptr);
  EXPECT_EQ(part.search.sweeps, 0u)
      << "partition hash search fell back to enumeration";
  EXPECT_EQ(part.search.analytic.searches, 2u);

  derand::ColoringState state(inst.graph, inst.palettes);
  d1lc::LowDegreeReport ld = d1lc::low_degree_color(state, nullptr, 6);
  EXPECT_EQ(ld.search.sweeps, 0u)
      << "low-degree trial search fell back to enumeration";
  EXPECT_EQ(ld.search.analytic.searches, ld.phases);
}

// ---- Property tests: the grid's empirical frequencies vs the
// idealized pairwise-independent closed forms. ----

TEST(AnalyticExpectations, BucketCountsPartitionTheField) {
  for (std::uint64_t m : {1ull, 2ull, 3ull, 7ull, 64ull, 1000ull,
                          (1ull << 40) + 17}) {
    unsigned __int128 total = 0;
    // Spot the first/last few buckets exactly, and the full sum for
    // small m.
    if (m <= 1000) {
      for (std::uint64_t bkt = 0; bkt < m; ++bkt)
        total += EnumerablePairwiseFamily::bucket_count(bkt, m);
      EXPECT_EQ(static_cast<std::uint64_t>(total), MersenneField::kPrime)
          << "m=" << m;
    }
    // Every bucket's width is within 1 of the ideal 2^61 / m.
    const std::uint64_t ideal = (1ull << 61) / m;
    for (std::uint64_t bkt : {std::uint64_t{0}, m / 2, m - 1}) {
      const std::uint64_t w = EnumerablePairwiseFamily::bucket_count(bkt, m);
      EXPECT_GE(w + 1, ideal) << "m=" << m << " bucket=" << bkt;
      EXPECT_LE(w, ideal + 1) << "m=" << m << " bucket=" << bkt;
    }
  }
}

TEST(AnalyticExpectations, GridBucketFrequenciesMatchClosedForm) {
  // Empirical Pr[h(x) == B] over the deterministic 2^12-member grid vs
  // the idealized bucket_probability. The grid is a pseudorandom sample
  // of the idealized family: with N = 4096 and per-bucket probability
  // ~1/m, sampling noise is ~sqrt(p(1-p)/N) ~ 0.005; tolerance 0.03 is
  // ~6 sigma and still catches any systematic bias.
  const std::uint64_t m = 8;
  EnumerablePairwiseFamily family(0xA11CE, 12);
  for (std::uint64_t x : {1ull, 12345ull, 0xDEADBEEFull}) {
    std::vector<std::uint64_t> freq(m, 0);
    for (std::uint64_t i = 0; i < family.size(); ++i)
      ++freq[family.eval(i, x, m)];
    for (std::uint64_t bkt = 0; bkt < m; ++bkt) {
      const double emp =
          static_cast<double>(freq[bkt]) / static_cast<double>(family.size());
      const double ana = EnumerablePairwiseFamily::bucket_probability(bkt, m);
      EXPECT_NEAR(emp, ana, 0.03) << "x=" << x << " bucket=" << bkt;
    }
  }
}

TEST(AnalyticExpectations, GridCollisionFrequenciesMatchClosedForm) {
  // Empirical Pr[h(x) and h(y) share a bucket] over the grid vs the
  // exact sum_B (count_B / p)^2. Collision probability ~1/m, same
  // sampling-noise argument as above.
  EnumerablePairwiseFamily family(0xB0B, 12);
  for (std::uint64_t m : {2ull, 5ull, 16ull}) {
    const double ana = EnumerablePairwiseFamily::collision_probability(m);
    EXPECT_NEAR(ana, 1.0 / static_cast<double>(m),
                0.5 / static_cast<double>(m));
    for (auto [x, y] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
             {3, 1031}, {77, 12345678}, {500, 501}}) {
      std::uint64_t hits = 0;
      for (std::uint64_t i = 0; i < family.size(); ++i)
        hits += (family.eval(i, x, m) == family.eval(i, y, m));
      const double emp =
          static_cast<double>(hits) / static_cast<double>(family.size());
      EXPECT_NEAR(emp, ana, 0.04) << "m=" << m << " x=" << x << " y=" << y;
    }
  }
}

}  // namespace
}  // namespace pdc::engine
