// Tests for the prefix oracle plane and the engine front door: the
// junta-fooling walk's routing (oracle-backed walks pay zero
// enumeration sweeps and tag PlaneTag::kPrefix), the differential
// guarantee — the oracle-backed walk must select bit-identical
// Selections to the same walk run over analytic and enumerating
// totals, on the shared-memory AND sharded backends at machine counts
// 1-17, for the production Lemma-23 and trial oracles — the property
// bounds on junta work (junta_evals <= items * bits * max-junta, and
// strictly below the analytic member loop when seed-constant items
// exist), and the engine::search() front door (route dispatch, kAuto
// backend resolution, stats sinks, legacy aliases).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <optional>
#include <vector>

#include "pdc/d1lc/low_degree_mpc.hpp"
#include "pdc/d1lc/partition.hpp"
#include "pdc/d1lc/partition_oracles.hpp"
#include "pdc/d1lc/trial_oracle.hpp"
#include "pdc/engine/prefix.hpp"
#include "pdc/engine/search.hpp"
#include "pdc/engine/sharded/sharded_search.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/util/hashing.hpp"

namespace pdc::engine {
namespace {

mpc::Config cluster_config(std::uint32_t machines, std::uint64_t s,
                           std::uint64_t n = 1000) {
  mpc::Config c;
  c.n = n;
  c.phi = 0.5;
  c.local_space_words = s;
  c.num_machines = machines;
  return c;
}

void expect_same_selection(const Selection& a, const Selection& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.cost, b.cost);            // bit-identical, not just near
  EXPECT_EQ(a.mean_cost, b.mean_cost);  // (doubles compared with ==)
}

/// The oracle-backed walk's observable discipline: no enumeration
/// sweeps, no analytic blocks — the prefix plane served everything.
void expect_fully_prefix(const SearchStats& st, int bits) {
  EXPECT_EQ(st.sweeps, 0u);
  EXPECT_EQ(st.analytic.blocks, 0u);
  EXPECT_EQ(st.route, PlaneTag::kPrefix);
  EXPECT_EQ(st.prefix.walks, 1u);
  EXPECT_EQ(st.prefix.bit_steps, static_cast<std::uint64_t>(bits));
}

/// Synthetic prefix objective: item v contributes 1 under member s when
/// its hashed slot collides with a neighbor's; items with index < n/4
/// are declared seed-constant 0 (modeling last-bin / inactive items).
/// eval_analytic stays the ground truth for every path.
class PrefixCollisionOracle final : public PrefixOracle {
 public:
  PrefixCollisionOracle(const Graph& g, std::uint64_t slots, int bits)
      : g_(&g), slots_(slots), bits_(bits) {}
  std::size_t item_count() const override { return g_->num_nodes(); }
  int bit_count() const override { return bits_; }
  std::size_t junta_size(std::size_t item) const override {
    return constant_cost(item) ? 0 : 1 + g_->degree(static_cast<NodeId>(item));
  }
  std::optional<double> constant_cost(std::size_t item) const override {
    if (item < g_->num_nodes() / 4) return 0.0;
    return std::nullopt;
  }

  void eval_analytic(std::uint64_t first, std::size_t count,
                     std::size_t item, double* sink) const override {
    if (item < g_->num_nodes() / 4) return;  // matches constant_cost
    const NodeId v = static_cast<NodeId>(item);
    for (std::size_t j = 0; j < count; ++j) {
      const std::uint64_t mine = slot(first + j, v);
      for (NodeId u : g_->neighbors(v)) {
        if (slot(first + j, u) == mine) {
          sink[j] += 1.0;
          break;
        }
      }
    }
  }

 private:
  std::uint64_t slot(std::uint64_t seed, NodeId v) const {
    return mix64(hash_combine(seed, v)) % slots_;
  }
  const Graph* g_;
  std::uint64_t slots_;
  int bits_;
};

// ---- Engine routing. ----

TEST(PrefixEngine, OracleBackedWalkServesThePrefixPlane) {
  Graph g = gen::gnp(240, 0.04, 5);
  const int bits = 6;
  PrefixCollisionOracle oracle(g, 16, bits);
  SeedSearch search(oracle);  // use_prefix defaults to true
  Selection sel = search.prefix_walk(bits);
  expect_fully_prefix(sel.stats, bits);
  EXPECT_LE(sel.cost, sel.mean_cost);
  EXPECT_EQ(sel.stats.backend, BackendTag::kSharedMemory);
  // Constant items never evaluate; every active item pays its junta's
  // completions exactly once across the whole walk.
  const std::uint64_t active = g.num_nodes() - g.num_nodes() / 4;
  EXPECT_EQ(sel.stats.prefix.junta_evals, active * (1ull << bits));
}

TEST(PrefixEngine, WalkMatchesBothTotalsReferences) {
  Graph g = gen::gnp(200, 0.05, 9);
  const int bits = 7;
  PrefixCollisionOracle o1(g, 8, bits), o2(g, 8, bits), o3(g, 8, bits);

  Selection walk = SeedSearch(o1).prefix_walk(bits);

  SearchOptions no_prefix;
  no_prefix.use_prefix = false;
  Selection analytic_ref = SeedSearch(o2, no_prefix).prefix_walk(bits);
  EXPECT_EQ(analytic_ref.stats.route, PlaneTag::kAnalytic);
  EXPECT_EQ(analytic_ref.stats.sweeps, 0u);

  SearchOptions enumerating = no_prefix;
  enumerating.use_analytic = false;
  Selection enum_ref = SeedSearch(o3, enumerating).prefix_walk(bits);
  EXPECT_EQ(enum_ref.stats.route, PlaneTag::kEnumerating);
  EXPECT_GT(enum_ref.stats.sweeps, 0u);

  expect_same_selection(walk, analytic_ref);
  expect_same_selection(walk, enum_ref);
  EXPECT_LE(walk.cost, walk.mean_cost);
}

TEST(PrefixEngine, AllConstantObjectiveDoesZeroJuntaWork) {
  // Every item constant: the walk must answer purely from the
  // classification.
  class AllConstant final : public PrefixOracle {
   public:
    std::size_t item_count() const override { return 50; }
    int bit_count() const override { return 5; }
    std::size_t junta_size(std::size_t) const override { return 0; }
    std::optional<double> constant_cost(std::size_t item) const override {
      return item % 3 == 0 ? 2.0 : 1.0;
    }
    void eval_analytic(std::uint64_t, std::size_t count, std::size_t item,
                       double* sink) const override {
      for (std::size_t j = 0; j < count; ++j)
        sink[j] += item % 3 == 0 ? 2.0 : 1.0;
    }
  } oracle;
  Selection sel = SeedSearch(oracle).prefix_walk(5);
  EXPECT_EQ(sel.stats.prefix.junta_evals, 0u);
  EXPECT_EQ(sel.seed, 0u);  // flat landscape: ties resolve to branch 0
  EXPECT_DOUBLE_EQ(sel.cost, sel.mean_cost);
}

// ---- Differential: production oracles, both backends, oracle-backed
// vs analytic-totals vs enumerating-totals, machine counts 1-17. ----

struct PartitionFixture {
  Graph g;
  D1lcInstance inst;
  std::vector<NodeId> high;
  std::uint32_t nbins = 6;
  std::uint32_t color_bins = 5;
  std::uint32_t cap = 8;
  std::vector<std::uint32_t> bin_of;

  explicit PartitionFixture(std::uint64_t seed)
      : g(gen::gnp(260, 0.05, seed)), inst(make_degree_plus_one(g)) {
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if (g.degree(v) > cap) high.push_back(v);
    EnumerablePairwiseFamily f1(77, 6);
    bin_of.assign(g.num_nodes(), d1lc::Partition::kMid);
    for (NodeId v : high)
      bin_of[v] = static_cast<std::uint32_t>(f1.eval(3, v, nbins));
  }
};

class PrefixDifferential : public ::testing::TestWithParam<int> {};

/// Runs the walk four ways over fresh instances of `make` and checks
/// bit-identical Selections: shared-memory oracle-backed, shared-memory
/// totals reference, sharded oracle-backed, sharded totals reference.
template <typename MakeOracle>
void check_prefix_differential(std::uint32_t p, int bits, std::size_t n,
                               const MakeOracle& make) {
  auto o_walk = make();
  Selection walk = SeedSearch(*o_walk).prefix_walk(bits);
  expect_fully_prefix(walk.stats, bits);

  SearchOptions no_prefix;
  no_prefix.use_prefix = false;
  auto o_ref = make();
  Selection ref = SeedSearch(*o_ref, no_prefix).prefix_walk(bits);
  expect_same_selection(walk, ref);

  mpc::Cluster cluster(cluster_config(p, 4096, n), /*strict=*/true);
  auto o_sh = make();
  sharded::ShardedSeedSearch sh(*o_sh, cluster);
  Selection sh_walk = sh.prefix_walk(bits);
  expect_same_selection(walk, sh_walk);
  expect_fully_prefix(sh_walk.stats, bits);
  EXPECT_GT(sh_walk.stats.sharded.rounds, 0u);
  // Junta work is shard-local, so the total matches shared memory.
  EXPECT_EQ(sh_walk.stats.prefix.junta_evals, walk.stats.prefix.junta_evals);

  sharded::ShardedOptions sopt;
  sopt.search.use_prefix = false;
  auto o_shref = make();
  sharded::ShardedSeedSearch shref(*o_shref, cluster, sopt);
  Selection sh_ref = shref.prefix_walk(bits);
  expect_same_selection(walk, sh_ref);
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

TEST_P(PrefixDifferential, H1DegreeOracleMatchesEverywhere) {
  const std::uint32_t p = static_cast<std::uint32_t>(GetParam());
  PartitionFixture fx(21);
  ASSERT_GT(fx.high.size(), 20u);
  EnumerablePairwiseFamily f1(101, 6);
  check_prefix_differential(p, 6, fx.g.num_nodes(), [&] {
    return std::make_unique<d1lc::H1DegreeOracle>(fx.g, fx.high, f1,
                                                  fx.nbins, fx.cap);
  });
}

TEST_P(PrefixDifferential, H2PaletteOracleMatchesEverywhere) {
  const std::uint32_t p = static_cast<std::uint32_t>(GetParam());
  PartitionFixture fx(33);
  ASSERT_GT(fx.high.size(), 20u);
  EnumerablePairwiseFamily f2(102, 6);
  check_prefix_differential(p, 6, fx.g.num_nodes(), [&] {
    return std::make_unique<d1lc::H2PaletteOracle>(
        fx.g, fx.inst, fx.high, fx.bin_of, f2, fx.nbins, fx.color_bins);
  });
}

TEST_P(PrefixDifferential, TrialOracleMatchesEverywhere) {
  const std::uint32_t p = static_cast<std::uint32_t>(GetParam());
  Graph g = gen::gnp(200, 0.04, 31);
  D1lcInstance inst = make_degree_plus_one(g);
  EnumerablePairwiseFamily family(55, 6);
  Coloring none(g.num_nodes(), kNoColor);
  std::vector<NodeId> items(g.num_nodes());
  std::iota(items.begin(), items.end(), NodeId{0});
  // A genuinely mixed active set so the trial oracle has seed-constant
  // items to skip.
  std::vector<std::uint8_t> active(g.num_nodes(), 1);
  for (NodeId v = 0; v < g.num_nodes(); v += 5) active[v] = 0;
  d1lc::AvailLists avail = d1lc::AvailLists::from_instance(inst, none);
  check_prefix_differential(p, 6, g.num_nodes(), [&] {
    return std::make_unique<d1lc::TrialOracle>(g, items, active, avail,
                                               family);
  });
}

INSTANTIATE_TEST_SUITE_P(MachineCounts, PrefixDifferential,
                         ::testing::Values(1, 4, 9, 17));

// ---- Property: junta work bounds on the family grid. ----

TEST(PrefixProperty, JuntaEvalsBoundedAndBelowTheAnalyticMemberLoop) {
  // The acceptance bound at family 2^7: the walk's junta work must stay
  // under items * bits * max-junta, and strictly under the analytic
  // member loop (items * members) for the same Lemma-23 search.
  PartitionFixture fx(47);
  ASSERT_GT(fx.high.size(), 30u);
  const int bits = 7;
  EnumerablePairwiseFamily f2(0xFACE, bits);
  const std::uint64_t items = fx.high.size();

  d1lc::H2PaletteOracle an(fx.g, fx.inst, fx.high, fx.bin_of, f2, fx.nbins,
                           fx.color_bins);
  SearchOptions no_prefix;
  no_prefix.use_prefix = false;
  Selection analytic = SeedSearch(an, no_prefix).exhaustive(f2.size());
  EXPECT_EQ(analytic.stats.analytic.formula_evals, items * f2.size());

  d1lc::H2PaletteOracle po(fx.g, fx.inst, fx.high, fx.bin_of, f2, fx.nbins,
                           fx.color_bins);
  Selection walk = SeedSearch(po).prefix_walk(bits);
  // Strictly below the member loop: the fixture's h1 assignment puts
  // high nodes in the last bin, and those items are seed-constant.
  EXPECT_LT(walk.stats.prefix.junta_evals,
            analytic.stats.analytic.formula_evals);

  // The contract ceiling, measured against the oracle's own junta
  // report (begin_walk caches max_junta; re-derive it here). The
  // default implementation pays exactly (items - constants) * members,
  // so the items * bits * max-junta ceiling only binds on instances
  // whose juntas are at least members/bits wide — assert that fixture
  // precondition explicitly so a sparser graph fails loudly here
  // rather than making the ceiling check pass (or fail) by accident.
  po.begin_walk(bits);
  const std::uint64_t max_junta = po.max_junta();
  const std::uint64_t constants = po.constant_items();
  EXPECT_GT(constants, 0u);
  po.end_walk();
  ASSERT_GE(max_junta * static_cast<std::uint64_t>(bits), f2.size())
      << "fixture too sparse for the ceiling property";
  EXPECT_EQ(walk.stats.prefix.junta_evals, (items - constants) * f2.size());
  EXPECT_LE(walk.stats.prefix.junta_evals,
            items * static_cast<std::uint64_t>(bits) * max_junta);
}

TEST(PrefixProperty, WalkGuaranteeHoldsAcrossSalts) {
  // cost <= mean on every instance: the conditional-expectations
  // argument, checked across several family salts.
  Graph g = gen::gnp(150, 0.06, 3);
  D1lcInstance inst = make_degree_plus_one(g);
  std::vector<NodeId> high;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (g.degree(v) > 6) high.push_back(v);
  for (std::uint64_t salt = 1; salt <= 8; ++salt) {
    EnumerablePairwiseFamily f1(salt, 6);
    d1lc::H1DegreeOracle oracle(g, high, f1, 5, 6);
    Selection sel = SeedSearch(oracle).prefix_walk(6);
    EXPECT_LE(sel.cost, sel.mean_cost) << "salt " << salt;
  }
}

// ---- The engine front door. ----

TEST(FrontDoor, RoutesMatchTheDirectEngines) {
  Graph g = gen::gnp(180, 0.05, 13);
  PrefixCollisionOracle a(g, 8, 6), b(g, 8, 6);
  expect_same_selection(search(a, SearchRequest::exhaustive(64)),
                        SeedSearch(b).exhaustive(64));
  expect_same_selection(search(a, SearchRequest::exhaustive_bits(6)),
                        SeedSearch(b).exhaustive_bits(6));
  expect_same_selection(search(a, SearchRequest::conditional_expectation(6)),
                        SeedSearch(b).conditional_expectation(6));
  expect_same_selection(search(a, SearchRequest::prefix_walk(6)),
                        SeedSearch(b).prefix_walk(6));
}

TEST(FrontDoor, StatsSinkAbsorbsEverySearch) {
  Graph g = gen::gnp(120, 0.05, 7);
  PrefixCollisionOracle oracle(g, 8, 6);
  SearchStats sink;
  ExecutionPolicy policy;
  policy.stats_sink = &sink;
  search(oracle, SearchRequest::exhaustive(32, policy));
  search(oracle, SearchRequest::prefix_walk(6, policy));
  EXPECT_EQ(sink.evaluations, 32u + 64u);
  EXPECT_EQ(sink.prefix.walks, 1u);
  EXPECT_EQ(sink.route, PlaneTag::kMixed);  // analytic + prefix
}

TEST(FrontDoor, AutoBackendAppliesTheCutover) {
  Graph g = gen::gnp(200, 0.05, 11);
  PrefixCollisionOracle oracle(g, 8, 6);
  mpc::Cluster cluster(cluster_config(4, 4096, g.num_nodes()),
                       /*strict=*/true);

  // No cluster: kAuto must fall back to shared memory.
  ExecutionPolicy none;
  none.backend = SearchBackend::kAuto;
  EXPECT_EQ(resolve_backend(none, g.num_nodes()),
            SearchBackend::kSharedMemory);

  // Default cutover (4096 items/machine): 200 items on 4 machines is
  // far below the floor — shared memory, decision recorded.
  ExecutionPolicy small;
  small.backend = SearchBackend::kAuto;
  small.cluster = &cluster;
  Selection sm = search(oracle, SearchRequest::exhaustive(64, small));
  EXPECT_EQ(sm.stats.backend, BackendTag::kSharedMemory);
  EXPECT_TRUE(sm.stats.backend_auto);
  EXPECT_EQ(sm.stats.sharded.rounds, 0u);

  // Lowered cutover: the same search crosses over to the cluster and
  // still selects the identical seed (the backend bit-identity).
  ExecutionPolicy crossed = small;
  crossed.auto_items_per_machine = 1;
  Selection sh = search(oracle, SearchRequest::exhaustive(64, crossed));
  EXPECT_EQ(sh.stats.backend, BackendTag::kSharded);
  EXPECT_TRUE(sh.stats.backend_auto);
  EXPECT_GT(sh.stats.sharded.rounds, 0u);
  expect_same_selection(sm, sh);
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

TEST(FrontDoor, ExplicitBackendsAreNotMarkedAuto) {
  Graph g = gen::gnp(100, 0.05, 17);
  PrefixCollisionOracle oracle(g, 8, 6);
  Selection sel = search(oracle, SearchRequest::exhaustive(32));
  EXPECT_EQ(sel.stats.backend, BackendTag::kSharedMemory);
  EXPECT_FALSE(sel.stats.backend_auto);
}

// ---- Call sites: ExecutionPolicy plumbing. ----

TEST(CallSites, PartitionPolicyRoutesTheSearchesToTheCluster) {
  Graph g = gen::gnp(300, 0.05, 17);
  D1lcInstance inst = make_degree_plus_one(g);
  d1lc::PartitionOptions base;
  base.mid_degree_cap = 10;
  base.family_log2 = 6;
  d1lc::Partition shared = d1lc::low_space_partition(inst, base, nullptr);

  mpc::Cluster c1(cluster_config(5, 8192, g.num_nodes()), /*strict=*/true);
  d1lc::PartitionOptions via_policy = base;
  via_policy.search.backend = SearchBackend::kSharded;
  via_policy.search.cluster = &c1;
  d1lc::Partition p1 = d1lc::low_space_partition(inst, via_policy, nullptr);

  EXPECT_EQ(p1.h1_index, shared.h1_index);
  EXPECT_EQ(p1.h2_index, shared.h2_index);
  EXPECT_GT(p1.search.sharded.rounds, 0u);
  EXPECT_EQ(p1.search.backend, BackendTag::kSharded);
}

TEST(CallSites, PartitionPrefixWalkMatchesItsTotalsReference) {
  Graph g = gen::gnp(400, 0.05, 23);
  D1lcInstance inst = make_degree_plus_one(g);
  d1lc::PartitionOptions opt;
  opt.mid_degree_cap = 10;
  opt.family_log2 = 7;
  opt.use_prefix_walk = true;
  d1lc::Partition walk = d1lc::low_space_partition(inst, opt, nullptr);
  EXPECT_EQ(walk.search.sweeps, 0u);
  EXPECT_EQ(walk.search.route, PlaneTag::kPrefix);
  EXPECT_EQ(walk.search.prefix.walks, 2u);  // h1 + h2

  d1lc::PartitionOptions ref = opt;
  ref.search.options.use_prefix = false;  // same walk over totals
  d1lc::Partition totals = d1lc::low_space_partition(inst, ref, nullptr);
  EXPECT_EQ(walk.h1_index, totals.h1_index);
  EXPECT_EQ(walk.h2_index, totals.h2_index);
  EXPECT_EQ(walk.bin_of, totals.bin_of);
  EXPECT_EQ(walk.degree_violations, totals.degree_violations);
  EXPECT_EQ(walk.palette_violations, totals.palette_violations);
}

TEST(CallSites, LowDegreeTrialPolicySelectsTheShardedBackend) {
  Graph g = gen::gnp(150, 0.04, 29);
  D1lcInstance inst = make_degree_plus_one(g);
  EnumerablePairwiseFamily family(55, 6);
  Coloring none(g.num_nodes(), kNoColor);
  Selection by_default =
      d1lc::low_degree_trial_selection(inst, none, family);
  mpc::Cluster cluster(cluster_config(3, 4096, g.num_nodes()),
                       /*strict=*/true);
  ExecutionPolicy pol;
  pol.backend = SearchBackend::kSharded;
  pol.cluster = &cluster;
  Selection by_policy =
      d1lc::low_degree_trial_selection(inst, none, family, pol);
  expect_same_selection(by_default, by_policy);
  EXPECT_EQ(by_policy.stats.backend, BackendTag::kSharded);
}

}  // namespace
}  // namespace pdc::engine
