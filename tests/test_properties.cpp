// Cross-cutting property sweeps (TEST_P grids over generator × palette):
// the Lemma-10 guarantee, solver-vs-oracle agreement, Linial properness,
// and parameter invariants — each property checked across the whole
// instance zoo rather than a single fixture.

#include <gtest/gtest.h>

#include "pdc/baseline/greedy.hpp"
#include "pdc/baseline/linial.hpp"
#include "pdc/d1lc/solver.hpp"
#include "pdc/derand/lemma10.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/params.hpp"
#include "pdc/hknt/procedures.hpp"

namespace pdc {
namespace {

enum class Family { kGnp, kRegular, kCliques, kTree, kSmallWorld, kBa };
enum class Lists { kDegreePlusOne, kRandomLists };

Graph make_family(Family f, std::uint64_t seed) {
  switch (f) {
    case Family::kGnp: return gen::gnp(350, 0.03, seed);
    case Family::kRegular: return gen::near_regular(300, 6, seed);
    case Family::kCliques:
      return gen::planted_cliques(4, 14, 0.3, seed).graph;
    case Family::kTree: return gen::random_tree(300, seed);
    case Family::kSmallWorld: return gen::small_world(300, 3, 0.15, seed);
    case Family::kBa: return gen::preferential_attachment(300, 3, seed);
  }
  return {};
}

const char* family_name(Family f) {
  switch (f) {
    case Family::kGnp: return "gnp";
    case Family::kRegular: return "regular";
    case Family::kCliques: return "cliques";
    case Family::kTree: return "tree";
    case Family::kSmallWorld: return "smallworld";
    case Family::kBa: return "ba";
  }
  return "?";
}

D1lcInstance make_lists(const Graph& g, Lists l, std::uint64_t seed) {
  if (l == Lists::kDegreePlusOne) return make_degree_plus_one(g);
  return make_random_lists(g, static_cast<Color>(g.max_degree()) + 20, 4,
                           seed);
}

class PropertyGrid
    : public ::testing::TestWithParam<std::tuple<Family, Lists>> {};

TEST_P(PropertyGrid, Lemma10GuaranteeHolds) {
  auto [fam, lists] = GetParam();
  Graph g = make_family(fam, 3);
  D1lcInstance inst = make_lists(g, lists, 5);
  derand::ColoringState state(inst.graph, inst.palettes);
  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc proc(cfg, hknt::TryRandomColorProc::Ssp::kNone,
                                "grid");
  derand::Lemma10Options opt;
  opt.seed_bits = 4;
  auto rep = derand::derandomize_procedure(proc, state, opt, nullptr);
  // Core guarantee: chosen seed no worse than the seed-space mean, no
  // weak-success violations, committed output proper.
  EXPECT_LE(static_cast<double>(rep.ssp_failures), rep.mean_failures + 1e-9);
  EXPECT_EQ(rep.wsp_violations, 0u);
  auto check = check_coloring(inst, state.colors());
  EXPECT_EQ(check.monochromatic_edges, 0u);
  EXPECT_EQ(check.palette_violations, 0u);
}

TEST_P(PropertyGrid, SolverMatchesGreedyOracleOnCompleteness) {
  auto [fam, lists] = GetParam();
  Graph g = make_family(fam, 7);
  D1lcInstance inst = make_lists(g, lists, 9);
  d1lc::SolverOptions opt;
  opt.l10.seed_bits = 3;
  opt.middle_passes = 1;
  auto ours = d1lc::solve_d1lc(inst, opt);
  auto oracle = baseline::greedy_d1lc(inst);
  EXPECT_TRUE(ours.valid);
  EXPECT_TRUE(check_coloring(inst, oracle).complete_proper());
}

TEST_P(PropertyGrid, ParameterInvariants) {
  auto [fam, lists] = GetParam();
  Graph g = make_family(fam, 11);
  D1lcInstance inst = make_lists(g, lists, 13);
  hknt::NodeParams p = hknt::compute_params(inst, nullptr);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // slack >= 1 on every valid instance; all Definition-2 quantities
    // within their structural ranges.
    EXPECT_GE(p.slack[v], 1);
    EXPECT_GE(p.sparsity[v], 0.0);
    EXPECT_GE(p.unevenness[v], 0.0);
    double dv = g.degree(v);
    EXPECT_LE(p.unevenness[v], dv + 1e-9);
    EXPECT_LE(p.discrepancy[v], dv + 1e-9);
    // m(N(v)) can't exceed the pair count.
    EXPECT_LE(static_cast<double>(p.nbhd_edges[v]), dv * (dv - 1) / 2 + 1e-9);
  }
}

TEST_P(PropertyGrid, LinialProperAcrossFamilies) {
  auto [fam, lists] = GetParam();
  (void)lists;
  Graph g = make_family(fam, 17);
  auto r = baseline::linial_coloring(g);
  EXPECT_EQ(check_coloring(g, r.coloring, nullptr).monochromatic_edges, 0u);
  EXPECT_LE(r.rounds, 8u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PropertyGrid,
    ::testing::Combine(::testing::Values(Family::kGnp, Family::kRegular,
                                         Family::kCliques, Family::kTree,
                                         Family::kSmallWorld, Family::kBa),
                       ::testing::Values(Lists::kDegreePlusOne,
                                         Lists::kRandomLists)),
    [](const auto& info) {
      return std::string(family_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) == Lists::kDegreePlusOne ? "_deg"
                                                               : "_lists");
    });

}  // namespace
}  // namespace pdc
